module wayplace

go 1.22
