// Quickstart: the paper's figure 1, executable.
//
// Three instructions — an add at 0x04, a branch at 0x08 and a mul at
// 0x20 — are fetched from a two-set, four-way cache. A conventional
// access searches all four tags of the indexed set, costing 12
// comparisons for the three fetches; with way-placement the address
// bits name the exact way, costing 3.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"wayplace/internal/cache"
)

func main() {
	// Two sets x four ways, one instruction per line, as drawn in
	// figure 1 of the paper.
	cfg := cache.Config{SizeBytes: 32, Ways: 4, LineBytes: 4}
	addrs := []uint32{0x04, 0x08, 0x20}
	names := []string{"add", "br ", "mul"}

	fmt.Println("figure 1(b): conventional accesses")
	baseline, err := cache.NewBaseline(cfg)
	if err != nil {
		panic(err)
	}
	for i, a := range addrs {
		before := baseline.Cache().Stats.TagComparisons
		baseline.Fetch(a, false)
		fmt.Printf("  fetch %s @%#04x  set %d: %d tags compared\n",
			names[i], a, cfg.SetOf(a), baseline.Cache().Stats.TagComparisons-before)
	}
	fmt.Printf("  total: %d tag comparisons\n\n", baseline.Cache().Stats.TagComparisons)

	fmt.Println("figure 1(c): way-placement accesses")
	// Every address is inside the way-placement area; the way hint is
	// warm, as in the figure's steady state.
	wp, err := cache.NewWayPlacement(cfg, cache.WPOracleFunc(func(uint32) bool { return true }))
	if err != nil {
		panic(err)
	}
	wp.Fetch(0x3c, false) // warm the way hint on an unrelated WP fetch
	warmup := wp.Cache().Stats.TagComparisons
	for i, a := range addrs {
		before := wp.Cache().Stats.TagComparisons
		wp.Fetch(a, false)
		fmt.Printf("  fetch %s @%#04x  set %d way %d: %d tag compared\n",
			names[i], a, cfg.SetOf(a), cfg.WayOf(a), wp.Cache().Stats.TagComparisons-before)
	}
	total := wp.Cache().Stats.TagComparisons - warmup
	fmt.Printf("  total: %d tag comparisons — a saving of %.0f%%\n",
		total, 100*(1-float64(total)/float64(baseline.Cache().Stats.TagComparisons)))
}
