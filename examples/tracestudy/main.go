// Tracestudy characterises the fetch streams of several benchmarks —
// the stream properties (hot-line concentration, same-line run
// lengths, prefix coverage) that determine how much each scheme can
// save. It is the measurement behind the paper's premise that "the
// most frequently executed instructions cause the majority of
// instruction cache accesses".
//
// Run with:
//
//	go run ./examples/tracestudy [bench ...]
package main

import (
	"fmt"
	"os"

	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/experiment"
	"wayplace/internal/mem"
	"wayplace/internal/sim"
	"wayplace/internal/trace"
)

func main() {
	names := []string{"crc", "sha", "susan_c", "patricia", "tiffmedian"}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}

	fmt.Printf("%-12s %9s %9s %9s %9s %11s\n",
		"benchmark", "fetches", "ws lines", "90% conc", "mean run", "1KB prefix")
	for _, name := range names {
		w, err := experiment.Prepare(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestudy: %v\n", err)
			os.Exit(1)
		}
		cfg := sim.Default()
		inner, err := cache.NewBaseline(cfg.ICache)
		if err != nil {
			panic(err)
		}
		rec := trace.Wrap(inner)
		core := cpu.New(w.Placed, mem.New(cfg.Mem))
		core.IFetch = rec
		if _, err := core.Run(experiment.MaxInstrs); err != nil {
			fmt.Fprintf(os.Stderr, "tracestudy: %s: %v\n", name, err)
			os.Exit(1)
		}
		lb := cfg.ICache.LineBytes
		fmt.Printf("%-12s %9d %9d %9d %9.2f %10.1f%%\n",
			name,
			len(rec.Addrs),
			trace.WorkingSet(rec.Addrs, lb),
			trace.Concentration(rec.Addrs, lb, 0.90),
			trace.MeanRunLength(rec.Addrs, lb),
			100*trace.PrefixCoverage(rec.Addrs, w.Placed.Base, 1<<10))
	}
	fmt.Println("\nws = working set; conc = lines covering 90% of fetches;")
	fmt.Println("prefix coverage is over the way-placement layout, so a hot")
	fmt.Println("1KB area already captures most fetches for small kernels.")
}
