// Adaptivewp demonstrates the paper's OS extension (section 4.1): the
// way-placement area can be adjusted during program execution without
// recompiling — the layout already ordered code best-first, so any
// prefix of the binary is a valid area. An adaptive OS policy starts
// from a single 1KB page, watches the fraction of fetches landing in
// the area, and grows it until the hot code is covered.
//
// Run with:
//
//	go run ./examples/adaptivewp [benchmark]
package main

import (
	"context"
	"fmt"
	"os"

	"wayplace/internal/energy"
	"wayplace/internal/experiment"
	"wayplace/internal/sim"
)

func main() {
	name := "rijndael_e" // ~4.9KB of hot code: several growth steps
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := experiment.Prepare(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivewp: %v\n", err)
		os.Exit(1)
	}

	cfg, err := sim.New(sim.WithMaxInstrs(experiment.MaxInstrs))
	if err != nil {
		panic(err)
	}
	base, err := sim.RunContext(context.Background(), w.Original, cfg)
	if err != nil {
		panic(err)
	}
	staticCfg, err := sim.New(
		sim.WithMaxInstrs(experiment.MaxInstrs),
		sim.WithScheme(energy.WayPlacement),
		sim.WithWPSize(experiment.InitialWPSize))
	if err != nil {
		panic(err)
	}
	static, err := sim.RunContext(context.Background(), w.Placed, staticCfg)
	if err != nil {
		panic(err)
	}

	pol := sim.DefaultAdaptivePolicy(cfg.ICache, cfg.ITLB.PageBytes)
	adaptive, changes, err := sim.RunAdaptive(context.Background(), w.Placed, cfg, pol)
	if err != nil {
		panic(err)
	}
	if adaptive.Checksum != base.Checksum {
		panic("adaptive resizing changed the program's result")
	}

	fmt.Printf("%s: OS area trajectory (decision every %d instructions)\n", name, pol.IntervalInstrs)
	for _, ch := range changes {
		fmt.Printf("  @%9d instrs: area -> %2dKB\n", ch.AtInstr, ch.Size>>10)
	}
	fmt.Printf("\nI-cache energy vs baseline:\n")
	fmt.Printf("  static 16KB area: %.1f%%\n", 100*energy.NormICache(static.Energy, base.Energy))
	fmt.Printf("  adaptive area:    %.1f%%  (final size %dKB, %d resizes, %d flushes)\n",
		100*energy.NormICache(adaptive.Energy, base.Energy),
		changes[len(changes)-1].Size>>10, len(changes)-1, adaptive.IStats.Flushes)
	fmt.Printf("  checksum %#x identical in all runs\n", adaptive.Checksum)
}
