// Layoutdemo walks the paper's full compiler flow on a program built
// with the public program-builder API: write a program, profile it on
// a training input, relink it with the way-placement pass and watch
// the hot code migrate to the front of the binary — then simulate both
// layouts and compare instruction-cache energy.
//
// Run with:
//
//	go run ./examples/layoutdemo
package main

import (
	"context"
	"fmt"

	"wayplace/internal/asm"
	"wayplace/internal/energy"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/sim"
)

// buildApp constructs a small application whose source order is
// pessimal: initialisation and rarely-used command handlers come
// first, the hot scoring kernel last — the situation the paper's
// pass exists to fix.
func buildApp(iters uint16) *asm.Builder {
	b := asm.NewBuilder("demo")
	table := b.Words(7, 11, 13, 17, 19, 23, 29, 31)
	buf := b.Zeros(512)

	f := b.Func("main")
	f.Call("setup")
	f.Movi(isa.R5, iters)
	f.Block("outer")
	f.Call("score") // hot
	f.Subi(isa.R5, isa.R5, 1)
	f.Cmpi(isa.R5, 0)
	f.Bgt("outer")
	f.Halt()

	// Cold command handlers — none of them run on this input, but in
	// source order they occupy the first ~4KB of the binary, burying
	// the hot kernel (real applications look like this: most text is
	// cold).
	for i := 0; i < 16; i++ {
		h := b.Func(fmt.Sprintf("handler_%d", i))
		for k := 0; k < 60; k++ {
			h.Addi(isa.R9, isa.R9, int32(k))
		}
		h.Ret()
	}

	s := b.Func("setup")
	s.Li(isa.R1, buf)
	s.Movi(isa.R2, 128)
	s.Movi(isa.R3, 3)
	s.Block("fill")
	s.Str(isa.R3, isa.R1, 0)
	s.Addi(isa.R1, isa.R1, 4)
	s.Addi(isa.R3, isa.R3, 5)
	s.Subi(isa.R2, isa.R2, 1)
	s.Cmpi(isa.R2, 0)
	s.Bgt("fill")
	s.Ret()

	// The hot kernel: table-driven scoring over the buffer.
	k := b.Func("score")
	k.Li(isa.R1, buf)
	k.Li(isa.R6, table)
	k.Movi(isa.R2, 128)
	k.Block("loop")
	k.Ldr(isa.R3, isa.R1, 0)
	k.OpI(isa.ANDI, isa.R4, isa.R3, 28)
	k.Ldrx(isa.R4, isa.R6, isa.R4)
	k.Mul(isa.R3, isa.R3, isa.R4)
	k.Add(isa.R0, isa.R0, isa.R3)
	k.Addi(isa.R1, isa.R1, 4)
	k.Subi(isa.R2, isa.R2, 1)
	k.Cmpi(isa.R2, 0)
	k.Bgt("loop")
	k.Ret()

	return b
}

func main() {
	const base = 0x0001_0000

	// 1. Profile on the training input (small iteration count).
	small := buildApp(50).MustBuild()
	smallProg, err := layout.LinkOriginal(small, base)
	if err != nil {
		panic(err)
	}
	prof, _, err := sim.ProfileRun(smallProg, 10_000_000)
	if err != nil {
		panic(err)
	}

	// 2. Relink the reference build with the way-placement ordering.
	large := buildApp(2000).MustBuild()
	orig, err := layout.LinkOriginal(large, base)
	if err != nil {
		panic(err)
	}
	placed, err := layout.Link(large, prof, base)
	if err != nil {
		panic(err)
	}

	fmt.Println("where did the hot kernel land?")
	for _, sym := range []string{"score", "handler_0", "setup", "main"} {
		o, _ := orig.AddrOf(sym)
		p, _ := placed.AddrOf(sym)
		fmt.Printf("  %-10s original %#06x -> placed %#06x\n", sym, o, p)
	}
	fmt.Printf("1KB-area coverage: original %.1f%%, placed %.1f%%\n\n",
		100*layout.Coverage(orig, prof, 1<<10),
		100*layout.Coverage(placed, prof, 1<<10))

	// 3. Simulate both layouts under the way-placement scheme with a
	// deliberately small 1KB area, plus the baseline.
	cfg, err := sim.New(sim.WithMaxInstrs(100_000_000))
	if err != nil {
		panic(err)
	}
	baseRun, err := sim.RunContext(context.Background(), orig, cfg)
	if err != nil {
		panic(err)
	}
	wpCfg, err := sim.New(
		sim.WithMaxInstrs(100_000_000),
		sim.WithScheme(energy.WayPlacement),
		sim.WithWPSize(1<<10))
	if err != nil {
		panic(err)
	}
	origRun, err := sim.RunContext(context.Background(), orig, wpCfg)
	if err != nil {
		panic(err)
	}
	placedRun, err := sim.RunContext(context.Background(), placed, wpCfg)
	if err != nil {
		panic(err)
	}
	if origRun.Checksum != placedRun.Checksum || origRun.Checksum != baseRun.Checksum {
		panic("layouts changed program semantics")
	}

	fmt.Println("way-placement hardware, 32KB/32-way cache, 1KB WP area:")
	fmt.Printf("  original layout: I$ energy %.1f%% of baseline\n",
		100*energy.NormICache(origRun.Energy, baseRun.Energy))
	fmt.Printf("  placed layout:   I$ energy %.1f%% of baseline\n",
		100*energy.NormICache(placedRun.Energy, baseRun.Energy))
	fmt.Printf("  (checksum %#x identical across all runs)\n", placedRun.Checksum)
}
