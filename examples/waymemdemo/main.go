// Waymemdemo shows the comparison hardware scheme — Ma et al.'s way
// memoization — at the event level: how links warm up over loop
// iterations, how returns defeat them, and how line evictions
// invalidate them.
//
// Run with:
//
//	go run ./examples/waymemdemo
package main

import (
	"fmt"

	"wayplace/internal/cache"
)

func main() {
	cfg := cache.Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32}
	e, err := cache.NewWayMemoization(cfg)
	if err != nil {
		panic(err)
	}

	// A loop spanning three cache lines: 0x000..0x05f, branch back.
	loop := func() {
		for a := uint32(0x000); a < 0x060; a += 4 {
			e.Fetch(a, false)
		}
	}
	snap := func(label string) {
		s := e.Cache().Stats
		fmt.Printf("%-34s cmp=%4d linked=%3d sameline=%3d linkwrites=%2d stale=%d\n",
			label, s.TagComparisons, s.LinkedAccesses, s.SameLineHits, s.LinkWrites, s.StaleLinks)
	}

	fmt.Println("a 24-instruction loop over three cache lines (4-way cache):")
	loop()
	snap("pass 1 (cold: fills + link writes)")
	loop()
	snap("pass 2 (back-edge link cold)")
	loop()
	snap("pass 3 (fully linked: no tags)")

	// Returns are indirect: their targets cannot be memoized, so the
	// fetch after a return always pays a full search.
	fmt.Println("\nsame loop, but entered via a 'return' each pass:")
	e2, _ := cache.NewWayMemoization(cfg)
	for pass := 0; pass < 3; pass++ {
		for a := uint32(0x000); a < 0x060; a += 4 {
			e2.Fetch(a, a == 0)
		}
	}
	s := e2.Cache().Stats
	fmt.Printf("after 3 passes: %d comparisons (the per-pass full search never amortises)\n",
		s.TagComparisons)

	// Eviction kills links: conflicting lines in the same set.
	fmt.Println("\nlink invalidation by eviction:")
	e3, _ := cache.NewWayMemoization(cfg)
	e3.Fetch(0x000, false)
	e3.Fetch(0x020, false) // seq link 0x000 -> 0x020 written
	pre := e3.Cache().Stats.TagComparisons
	e3.Fetch(0x000, false)
	e3.Fetch(0x020, false) // follows the link: 0 comparisons... after the branch back
	fmt.Printf("  warm crossing cost %d comparisons\n", e3.Cache().Stats.TagComparisons-pre-4)
	// Evict line 0x020 by filling its set (set index of 0x020 repeats
	// every 8 lines at this geometry).
	for k := uint32(1); k <= 4; k++ {
		e3.Fetch(0x020+k*256, false)
	}
	pre = e3.Cache().Stats.TagComparisons
	preStale := e3.Cache().Stats.StaleLinks
	e3.Fetch(0x000, false)
	e3.Fetch(0x020, false)
	fmt.Printf("  after eviction: %d comparisons, %d stale link detected\n",
		e3.Cache().Stats.TagComparisons-pre-4,
		e3.Cache().Stats.StaleLinks-preStale)
}
