// Cachesweep runs one suite benchmark across cache sizes and
// associativities — a miniature of the paper's figure 6 — printing
// normalised instruction-cache energy and the ED product for
// way-placement and way-memoization.
//
// Run with:
//
//	go run ./examples/cachesweep [benchmark]
package main

import (
	"context"
	"fmt"
	"os"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/experiment"
)

func main() {
	name := "sha"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	suite, err := experiment.NewSuiteOf([]string{name})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cachesweep: %v\n", err)
		os.Exit(1)
	}
	w := suite.Workloads[0]
	ctx := context.Background()

	// Submit the whole sweep as one grid: the engine runs the cells in
	// parallel and returns them in input order.
	var specs []engine.RunSpec
	var cfgs []cache.Config
	for _, kb := range []int{8, 16, 32} {
		for _, ways := range []int{8, 16, 32} {
			icfg := cache.Config{SizeBytes: kb << 10, Ways: ways, LineBytes: 32}
			cfgs = append(cfgs, icfg)
			specs = append(specs,
				engine.RunSpec{Workload: w.Name, ICache: icfg, Scheme: energy.Baseline},
				engine.RunSpec{Workload: w.Name, ICache: icfg, Scheme: energy.WayMemoization},
				engine.RunSpec{Workload: w.Name, ICache: icfg, Scheme: energy.WayPlacement,
					WPSize: experiment.InitialWPSize})
		}
	}
	res, err := suite.RunBatch(ctx, specs)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%s across cache configurations (16KB way-placement area)\n", name)
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "config", "waymem E", "wayplc E", "waymem ED", "wayplc ED")
	for i, icfg := range cfgs {
		base, wm, wp := res[3*i].Stats, res[3*i+1].Stats, res[3*i+2].Stats
		fmt.Printf("%3dKB %2d-way  %9.1f%% %9.1f%% %10.3f %10.3f\n",
			icfg.SizeBytes>>10, icfg.Ways,
			100*energy.NormICache(wm.Energy, base.Energy),
			100*energy.NormICache(wp.Energy, base.Energy),
			energy.EDProduct(wm.Energy, wm.Cycles, base.Energy, base.Cycles),
			energy.EDProduct(wp.Energy, wp.Cycles, base.Energy, base.Cycles))
	}
	fmt.Println("\nnote the shape of the paper's figure 6: way-placement always wins,")
	fmt.Println("savings grow with associativity, and at 8 ways way-memoization's")
	fmt.Println("link storage costs more than its avoided tag checks.")
}
