// Command waydump inspects (and optionally executes) a linked binary
// image written by waylink -o: header, symbols, block map,
// disassembly and a functional run.
//
// Usage:
//
//	waylink -bench sha -o sha.wpl
//	waydump -in sha.wpl -blocks -disas 12 -run
package main

import (
	"flag"
	"fmt"
	"os"

	"wayplace/internal/cpu"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
)

func main() {
	in := flag.String("in", "", "image file to inspect")
	showSyms := flag.Bool("syms", false, "list symbols")
	showBlocks := flag.Bool("blocks", false, "list placed blocks")
	disas := flag.Int("disas", 0, "disassemble the first N instructions")
	doRun := flag.Bool("run", false, "execute the image functionally and print the checksum")
	flag.Parse()

	if *in == "" {
		fail(fmt.Errorf("need -in <file>"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	p, err := obj.ReadImage(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s: %d instructions (%d bytes) at base %#x, entry %#x\n",
		*in, len(p.Code), p.Size(), p.Base, p.Entry)
	fmt.Printf("data: %d bytes at %#x; %d symbols, %d blocks\n",
		len(p.Data), p.DataBase, len(p.Syms), len(p.Placed))

	if *showSyms {
		fmt.Println("\nsymbols:")
		for _, pl := range p.Placed {
			fmt.Printf("  %08x %s\n", pl.Addr, pl.Block.Sym)
		}
	}
	if *showBlocks {
		fmt.Println("\nblocks:")
		for _, pl := range p.Placed {
			kind := "fall"
			switch {
			case pl.Block.IsCall:
				kind = "call " + pl.Block.BranchSym
			case pl.Block.BranchSym != "":
				kind = "br " + pl.Block.BranchSym
			case pl.Block.FallSym == "":
				kind = "end"
			}
			fmt.Printf("  %08x %-28s %3d instrs  %s\n",
				pl.Addr, pl.Block.Sym, pl.Block.NumInstrs(), kind)
		}
	}
	if *disas > 0 {
		fmt.Println("\ndisassembly:")
		for i := 0; i < *disas && i < len(p.Code); i++ {
			addr := p.Base + uint32(4*i)
			if blk := p.BlockAt(i); blk != nil && blk.Addr == addr {
				fmt.Printf("%s:\n", blk.Block.Sym)
			}
			fmt.Printf("  %08x: %08x  %v\n", addr, p.Words[i], p.Code[i])
		}
	}
	if *doRun {
		c := cpu.New(p, mem.New(mem.DefaultConfig()))
		res, err := c.Run(2_000_000_000)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nrun: %d instructions, checksum %#x\n", res.Instrs, c.Regs[0])
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "waydump: %v\n", err)
	os.Exit(1)
}
