// Command wpexplore explores design-space dimensions around the
// paper's configuration that the evaluation holds fixed: cache line
// size, page size (way-placement-bit granularity), replacement policy
// and array organisation. Each sweep varies one dimension with
// everything else at the Table 1 defaults and reports suite-average
// normalised I-cache energy for way-placement (16KB area).
//
// Usage:
//
//	wpexplore [-dim line|page|policy|style|all] [-benchmarks a,b,c]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wayplace/internal/bench"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/experiment"
	"wayplace/internal/sim"
	"wayplace/internal/tlb"
)

func main() {
	dim := flag.String("dim", "all", "dimension to sweep: line, page, policy, style or all")
	subset := flag.String("benchmarks", "sha,susan_c,crc,patricia", "benchmark subset")
	flag.Parse()

	names := bench.Names()
	if *subset != "" {
		names = strings.Split(*subset, ",")
	}
	suite, err := experiment.NewSuiteOf(names)
	if err != nil {
		fail(err)
	}

	avg := func(mutate func(*sim.Config)) (float64, float64) {
		var eSum, edSum float64
		for _, w := range suite.Workloads {
			cfg := sim.Default()
			cfg.MaxInstrs = experiment.MaxInstrs
			mutate(&cfg)

			baseCfg := cfg
			baseCfg.Scheme = energy.Baseline
			baseCfg.WPSize = 0
			base, err := sim.Run(w.Original, baseCfg)
			if err != nil {
				fail(err)
			}
			wpCfg := cfg
			wpCfg.Scheme = energy.WayPlacement
			if wpCfg.WPSize == 0 {
				wpCfg.WPSize = experiment.InitialWPSize
			}
			wp, err := sim.Run(w.Placed, wpCfg)
			if err != nil {
				fail(err)
			}
			if wp.Checksum != base.Checksum {
				fail(fmt.Errorf("%s: checksum mismatch", w.Name))
			}
			eSum += energy.NormICache(wp.Energy, base.Energy)
			edSum += energy.EDProduct(wp.Energy, wp.Cycles, base.Energy, base.Cycles)
		}
		n := float64(len(suite.Workloads))
		return eSum / n, edSum / n
	}

	want := func(d string) bool { return *dim == "all" || *dim == d }

	if want("line") {
		fmt.Println("line-size sweep (32KB, 32-way):")
		for _, lb := range []int{16, 32, 64} {
			e, ed := avg(func(c *sim.Config) {
				c.ICache.LineBytes = lb
				c.DCache.LineBytes = lb
			})
			fmt.Printf("  %2dB lines: I$ energy %.1f%%  ED %.3f\n", lb, 100*e, ed)
		}
		fmt.Println()
	}
	if want("page") {
		fmt.Println("page-size sweep (way-placement-bit granularity):")
		for _, pb := range []int{1 << 10, 2 << 10, 4 << 10} {
			e, ed := avg(func(c *sim.Config) {
				c.ITLB = tlb.Config{Entries: 32, PageBytes: pb}
			})
			fmt.Printf("  %2dKB pages: I$ energy %.1f%%  ED %.3f\n", pb>>10, 100*e, ed)
		}
		fmt.Println()
	}
	if want("policy") {
		fmt.Println("replacement-policy sweep:")
		for _, p := range []cache.Policy{cache.RoundRobin, cache.LRU} {
			e, ed := avg(func(c *sim.Config) { c.ICache.Policy = p })
			fmt.Printf("  %-12s I$ energy %.1f%%  ED %.3f\n", p, 100*e, ed)
		}
		fmt.Println()
	}
	if want("style") {
		fmt.Println("array-organisation sweep (8-way, where RAM-tag caches live):")
		for _, st := range []energy.ArrayStyle{energy.CAMTag, energy.RAMTag} {
			e, ed := avg(func(c *sim.Config) {
				c.ICache.Ways = 8
				c.DCache.Ways = 8
				c.Style = st
			})
			fmt.Printf("  %-8s I$ energy %.1f%%  ED %.3f\n", st, 100*e, ed)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wpexplore: %v\n", err)
	os.Exit(1)
}
