// Command wpexplore explores design-space dimensions around the
// paper's configuration that the evaluation holds fixed: cache line
// size, page size (way-placement-bit granularity), replacement policy
// and array organisation. Each sweep varies one dimension with
// everything else at the Table 1 defaults and reports suite-average
// normalised I-cache energy for way-placement (16KB area).
//
// Sweep points run as engine grids (parallel, memoised): the run
// cache is keyed by the fully resolved machine configuration, so the
// default point shared by several sweeps is simulated once.
//
// Usage:
//
//	wpexplore [-dim line|page|policy|style|all] [-benchmarks a,b,c] [-jobs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"wayplace/internal/bench"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/experiment"
	"wayplace/internal/sim"
	"wayplace/internal/tlb"
)

func main() {
	dim := flag.String("dim", "all", "dimension to sweep: line, page, policy, style or all")
	subset := flag.String("benchmarks", "sha,susan_c,crc,patricia", "benchmark subset")
	jobs := flag.Int("jobs", 0, "simulation cells to run concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	names := bench.Names()
	if *subset != "" {
		names = strings.Split(*subset, ",")
	}
	suite, err := experiment.NewSuiteOf(names, engine.WithWorkers(*jobs))
	if err != nil {
		fail(err)
	}

	// avg runs the suite at one sweep point: a (baseline, way-placement)
	// pair per workload against the mutated machine template, averaged
	// in workload order.
	avg := func(mutate func(*sim.Config)) (float64, float64) {
		cfg := sim.Default()
		cfg.MaxInstrs = experiment.MaxInstrs
		mutate(&cfg)
		wpSize := cfg.WPSize
		if wpSize == 0 {
			wpSize = experiment.InitialWPSize
		}
		specs := make([]engine.RunSpec, 0, 2*len(suite.Workloads))
		for _, w := range suite.Workloads {
			specs = append(specs,
				engine.RunSpec{Workload: w.Name, ICache: cfg.ICache, Scheme: energy.Baseline},
				engine.RunSpec{Workload: w.Name, ICache: cfg.ICache, Scheme: energy.WayPlacement, WPSize: wpSize})
		}
		res, err := suite.RunBatch(ctx, specs, engine.WithBaseConfig(cfg))
		if err != nil {
			fail(err)
		}
		var eSum, edSum float64
		for i, w := range suite.Workloads {
			base, wp := res[2*i].Stats, res[2*i+1].Stats
			if wp.Checksum != base.Checksum {
				fail(fmt.Errorf("%s: checksum mismatch", w.Name))
			}
			eSum += energy.NormICache(wp.Energy, base.Energy)
			edSum += energy.EDProduct(wp.Energy, wp.Cycles, base.Energy, base.Cycles)
		}
		n := float64(len(suite.Workloads))
		return eSum / n, edSum / n
	}

	want := func(d string) bool { return *dim == "all" || *dim == d }

	if want("line") {
		fmt.Println("line-size sweep (32KB, 32-way):")
		for _, lb := range []int{16, 32, 64} {
			e, ed := avg(func(c *sim.Config) {
				c.ICache.LineBytes = lb
				c.DCache.LineBytes = lb
			})
			fmt.Printf("  %2dB lines: I$ energy %.1f%%  ED %.3f\n", lb, 100*e, ed)
		}
		fmt.Println()
	}
	if want("page") {
		fmt.Println("page-size sweep (way-placement-bit granularity):")
		for _, pb := range []int{1 << 10, 2 << 10, 4 << 10} {
			e, ed := avg(func(c *sim.Config) {
				c.ITLB = tlb.Config{Entries: 32, PageBytes: pb}
			})
			fmt.Printf("  %2dKB pages: I$ energy %.1f%%  ED %.3f\n", pb>>10, 100*e, ed)
		}
		fmt.Println()
	}
	if want("policy") {
		fmt.Println("replacement-policy sweep:")
		for _, p := range []cache.Policy{cache.RoundRobin, cache.LRU} {
			p := p
			e, ed := avg(func(c *sim.Config) { c.ICache.Policy = p })
			fmt.Printf("  %-12s I$ energy %.1f%%  ED %.3f\n", p, 100*e, ed)
		}
		fmt.Println()
	}
	if want("style") {
		fmt.Println("array-organisation sweep (8-way, where RAM-tag caches live):")
		for _, st := range []energy.ArrayStyle{energy.CAMTag, energy.RAMTag} {
			st := st
			e, ed := avg(func(c *sim.Config) {
				c.ICache.Ways = 8
				c.DCache.Ways = 8
				c.Style = st
			})
			fmt.Printf("  %-8s I$ energy %.1f%%  ED %.3f\n", st, 100*e, ed)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wpexplore: %v\n", err)
	os.Exit(1)
}
