// Command wpexplore explores design-space dimensions around the
// paper's configuration that the evaluation holds fixed: cache line
// size, page size (way-placement-bit granularity), replacement policy
// and array organisation. Each sweep varies one dimension with
// everything else at the Table 1 defaults and reports suite-average
// normalised I-cache energy for way-placement (16KB area).
//
// Sweep points run as engine grids (parallel, memoised): the run
// cache is keyed by the fully resolved machine configuration, so the
// default point shared by several sweeps is simulated once.
//
// Observability mirrors cmd/wpbench: -metrics dumps the engine's
// instruments at exit (Prometheus text, or JSON for .json paths),
// -snapshot writes a machine-readable run record, -pprof serves
// net/http/pprof.
//
// Usage:
//
//	wpexplore [-dim line|page|policy|style|all] [-benchmarks a,b,c] [-jobs N]
//	          [-metrics file] [-snapshot file] [-pprof addr]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/bench"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/experiment"
	"wayplace/internal/obs"
	"wayplace/internal/sim"
	"wayplace/internal/tlb"
)

func main() {
	dim := flag.String("dim", "all", "dimension to sweep: line, page, policy, style or all")
	subset := flag.String("benchmarks", "sha,susan_c,crc,patricia", "benchmark subset")
	jobs := flag.Int("jobs", 0, "simulation cells to run concurrently (0 = GOMAXPROCS)")
	metricsOut := flag.String("metrics", "", `write engine metrics to this file at exit ("-" for stderr; a .json path selects JSON, anything else Prometheus text)`)
	snapshotOut := flag.String("snapshot", "", "write the machine-readable run snapshot (BENCH_wpbench.json format) to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "wpexplore: pprof: %v\n", err)
			}
		}()
	}

	// Validate the subset up front (trimmed, typos rejected with the
	// valid names) instead of failing per cell inside the provider.
	names, err := bench.ParseSubset(*subset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpexplore: %v\n", err)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metricsOut != "" || *snapshotOut != "" {
		reg = obs.NewRegistry()
	}

	start := time.Now()
	suite, err := experiment.NewSuiteOf(names, engine.WithWorkers(*jobs), engine.WithObserver(reg))
	if err != nil {
		fail(err)
	}
	sections := []obs.Section{{Name: "prepare", Seconds: time.Since(start).Seconds()}}

	// avg runs the suite at one sweep point: a (baseline, way-placement)
	// pair per workload against the mutated machine template, averaged
	// in workload order. Cells are described in the wire schema
	// (api.RunRequest) — the same form wpserved accepts — and validated
	// field-by-field before anything runs; the mutated base template is
	// a per-batch engine option, so these sweeps execute locally.
	avg := func(mutate func(*sim.Config)) (float64, float64) {
		cfg := sim.Default()
		cfg.MaxInstrs = experiment.MaxInstrs
		mutate(&cfg)
		wpSize := cfg.WPSize
		if wpSize == 0 {
			wpSize = experiment.InitialWPSize
		}
		icache := api.GeometryOf(cfg.ICache)
		reqs := make([]api.RunRequest, 0, 2*len(suite.Workloads))
		for _, w := range suite.Workloads {
			reqs = append(reqs,
				api.RunRequest{Workload: w.Name, ICache: icache, Scheme: api.SchemeBaseline},
				api.RunRequest{Workload: w.Name, ICache: icache, Scheme: api.SchemeWayPlacement, WPSizeBytes: wpSize})
		}
		res, err := suite.RunRequests(ctx, reqs, engine.WithBaseConfig(cfg))
		if err != nil {
			fail(err)
		}
		var eSum, edSum float64
		for i, w := range suite.Workloads {
			base, wp := res[2*i].Stats, res[2*i+1].Stats
			if wp.Checksum != base.Checksum {
				fail(fmt.Errorf("%s: checksum mismatch", w.Name))
			}
			eSum += energy.NormICache(wp.Energy, base.Energy)
			edSum += energy.EDProduct(wp.Energy, wp.Cycles, base.Energy, base.Cycles)
		}
		n := float64(len(suite.Workloads))
		return eSum / n, edSum / n
	}

	want := func(d string) bool { return *dim == "all" || *dim == d }

	// sweep times one dimension for the -snapshot section record.
	sweep := func(name string, fn func()) {
		s := time.Now()
		fn()
		sections = append(sections, obs.Section{Name: name, Seconds: time.Since(s).Seconds()})
	}

	if want("line") {
		sweep("line", func() {
			fmt.Println("line-size sweep (32KB, 32-way):")
			for _, lb := range []int{16, 32, 64} {
				e, ed := avg(func(c *sim.Config) {
					c.ICache.LineBytes = lb
					c.DCache.LineBytes = lb
				})
				fmt.Printf("  %2dB lines: I$ energy %.1f%%  ED %.3f\n", lb, 100*e, ed)
			}
			fmt.Println()
		})
	}
	if want("page") {
		sweep("page", func() {
			fmt.Println("page-size sweep (way-placement-bit granularity):")
			for _, pb := range []int{1 << 10, 2 << 10, 4 << 10} {
				e, ed := avg(func(c *sim.Config) {
					c.ITLB = tlb.Config{Entries: 32, PageBytes: pb}
				})
				fmt.Printf("  %2dKB pages: I$ energy %.1f%%  ED %.3f\n", pb>>10, 100*e, ed)
			}
			fmt.Println()
		})
	}
	if want("policy") {
		sweep("policy", func() {
			fmt.Println("replacement-policy sweep:")
			for _, p := range []cache.Policy{cache.RoundRobin, cache.LRU} {
				p := p
				e, ed := avg(func(c *sim.Config) { c.ICache.Policy = p })
				fmt.Printf("  %-12s I$ energy %.1f%%  ED %.3f\n", p, 100*e, ed)
			}
			fmt.Println()
		})
	}
	if want("style") {
		sweep("style", func() {
			fmt.Println("array-organisation sweep (8-way, where RAM-tag caches live):")
			for _, st := range []energy.ArrayStyle{energy.CAMTag, energy.RAMTag} {
				st := st
				e, ed := avg(func(c *sim.Config) {
					c.ICache.Ways = 8
					c.DCache.Ways = 8
					c.Style = st
				})
				fmt.Printf("  %-8s I$ energy %.1f%%  ED %.3f\n", st, 100*e, ed)
			}
		})
	}

	if *snapshotOut != "" {
		command := strings.TrimSpace("wpexplore " + strings.Join(os.Args[1:], " "))
		snap := experiment.NewSnapshot(command, suite, reg, time.Since(start), sections)
		if err := snap.WriteFile(*snapshotOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot: %s (%d cells, %.1f cells/sec, %.0f%% run-cache hits)\n",
			*snapshotOut, snap.Grid.Cells, snap.CellsPerSecond, 100*snap.CacheHitRatio)
	}
	if *metricsOut != "" {
		out := io.Writer(os.Stderr)
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			out = f
		}
		var err error
		if strings.HasSuffix(*metricsOut, ".json") {
			err = reg.WriteJSON(out)
		} else {
			err = reg.WritePrometheus(out)
		}
		if err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wpexplore: %v\n", err)
	os.Exit(1)
}
