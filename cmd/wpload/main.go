// Command wpload is the concurrent-client load harness for wpserved.
// It drives a fleet of independent HTTP clients — hundreds by default
// — against a daemon, each submitting sync and async batches drawn
// zipfian-hot from a fixed pool of canonical cells, honouring 429
// backpressure with capped Retry-After backoff and (with -churn)
// hanging up mid-request to exercise abandoned-connection paths. The
// run's latency quantiles, 429/retry/error rates and throughput land
// in a machine-readable BENCH_wpload.json snapshot, optionally
// checked against p50/p99 SLOs.
//
// Usage:
//
//	wpload [-addr URL] [-clients N] [-duration d] [-async F]
//	       [-batch N] [-zipf S] [-churn F] [-retries N]
//	       [-workloads N] [-pool a,b,...] [-queue N] [-jobs N]
//	       [-snapshot file] [-metrics file] [-seed N]
//	       [-slo-p50 d] [-slo-p99 d] [-slo-cell-p99 d]
//	       [-slo-429 F] [-slo-errors F] [-smoke] [-crash]
//
// With no -addr, wpload starts an in-process wpserved over tiny
// synthetic workloads on a loopback socket — the full HTTP stack with
// none of the network or benchmark-preparation noise, which is what
// CI wants. With -addr it targets a running daemon; -pool then names
// the workloads to draw cells from (default: the daemon's standard
// benchmark set is NOT assumed — the flag is required).
//
// -smoke is the tier-1 CI gate: loopback target, 200 clients for 2
// seconds, generous SLOs that catch breakage (orphaned async jobs,
// starved sync callers, buffered encodes) without flaking on slow
// runners. Exit status 1 on any SLO violation.
//
// -crash is the durability gate: wpload re-execs itself as a
// store-backed daemon, submits async batches, SIGKILLs the daemon the
// moment the last 202 lands, restarts it on the same store and
// asserts every pre-kill job id resolves to results byte-identical to
// a direct engine run — then proves a third, cold-memory daemon
// serves the warm store without re-simulating a single cell.
//
// -tenants N is the fairness gate: one hog fleet an order of
// magnitude past its per-tenant quota and N-1 polite fleets run
// concurrently against a quota'd loopback; each polite tenant must
// keep the latency and throughput a solo baseline run measured,
// while the hog — and only the hog — absorbs over_quota 429s.
// -tenants-smoke is the tier-1 short form (3 tenants, short legs).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/experiment"
	"wayplace/internal/load"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
)

func main() {
	// Re-exec'd as a crash-choreography daemon child? Then this call
	// runs the daemon and never returns.
	load.MaybeDaemonChild()

	addr := flag.String("addr", "", "target wpserved base URL, e.g. http://127.0.0.1:8100 (empty = in-process loopback server)")
	clients := flag.Int("clients", 256, "concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "how long clients keep submitting")
	async := flag.Float64("async", 0.25, "fraction of batches submitted async (202 + poll)")
	batch := flag.Int("batch", 8, "max cells per batch (sizes are uniform 1..N)")
	zipf := flag.Float64("zipf", 1.2, "zipfian skew over pool ranks (>1; larger = hotter hot set)")
	churn := flag.Float64("churn", 0.02, "probability a client abandons a submission mid-request")
	retries := flag.Int("retries", 8, "resubmissions after 429 before a batch counts as dropped")
	workloads := flag.Int("workloads", 4, "synthetic workloads behind the loopback server")
	poolNames := flag.String("pool", "", "comma-separated workload names for the cell pool (required with -addr)")
	queue := flag.Int("queue", 64, "loopback server queue depth")
	jobs := flag.Int("jobs", 0, "loopback engine workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "client RNG seed")
	snapshotPath := flag.String("snapshot", "BENCH_wpload.json", "write the run snapshot here (empty = skip)")
	metricsPath := flag.String("metrics", "", "also dump the client-side load_* registry as JSON here")
	smoke := flag.Bool("smoke", false, "CI smoke: loopback, 200 clients, 2s, SLOs asserted, exit 1 on violation")
	crash := flag.Bool("crash", false, "kill/restart durability choreography: SIGKILL a store-backed daemon mid-load, restart, assert nothing observable was lost")
	fleetN := flag.Int("fleet", 0, "fleet mode: N loopback backends behind an in-process coordinator; measures 1-vs-N cold-pool scaling, asserts once-per-fleet, then load-tests the fleet")
	fleetSmoke := flag.Bool("fleet-smoke", false, "CI fleet smoke: 3 backends, once-per-fleet invariant plus a 2s SLO-checked load run (no scaling measurement)")
	minSpeedup := flag.Float64("fleet-speedup", 2.5, "minimum fleet/single cells-per-second ratio -fleet must reach")
	tenantsN := flag.Int("tenants", 0, "fairness mode: 1 hog + N-1 polite tenant fleets against a quota'd loopback; asserts polite p99/throughput within a band of a solo baseline, then runs the standard load leg")
	tenantsSmoke := flag.Bool("tenants-smoke", false, "CI fairness smoke: 3 tenants with short legs plus a 2s SLO-checked load run")

	sloP50 := flag.Duration("slo-p50", 0, "max HTTP p50 (0 = unchecked)")
	sloP99 := flag.Duration("slo-p99", 0, "max HTTP p99 (0 = unchecked)")
	sloCellP99 := flag.Duration("slo-cell-p99", 0, "max per-cell p99 (0 = unchecked)")
	slo429 := flag.Float64("slo-429", -1, "max 429s per HTTP request (negative = unchecked)")
	sloErrors := flag.Float64("slo-errors", -1, "max batch error rate (negative = unchecked)")
	flag.Parse()

	if *crash {
		if err := load.RunCrash(context.Background(), load.CrashOptions{Log: os.Stderr}); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "wpload: crash choreography ok")
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *smoke || *fleetSmoke || *tenantsSmoke {
		// Presets only where the user did not choose: -smoke -clients 500
		// smokes with 500 clients.
		if !set["clients"] {
			*clients = 200
		}
		if !set["duration"] {
			*duration = 2 * time.Second
		}
		if !set["slo-p50"] {
			*sloP50 = 250 * time.Millisecond
			if *fleetSmoke {
				// The coordinator hop re-encodes every batch both ways,
				// which on a starved CI core lands the median one
				// latency bucket higher than a direct backend's.
				*sloP50 = 500 * time.Millisecond
			}
		}
		if !set["slo-p99"] {
			*sloP99 = 2 * time.Second
		}
		if !set["slo-cell-p99"] {
			*sloCellP99 = time.Second
		}
		if !set["slo-429"] {
			// Backpressure is expected under a 200-client burst; what the
			// gate rejects is every request bouncing.
			*slo429 = 0.95
		}
		if !set["slo-errors"] {
			*sloErrors = 0.01
		}
	}

	if *tenantsN > 0 || *tenantsSmoke {
		n := *tenantsN
		if n == 0 {
			n = 3 // -tenants-smoke default
		}
		benchDuration := 3 * time.Second
		if *tenantsSmoke && *tenantsN == 0 {
			benchDuration = 1200 * time.Millisecond
		}
		code := runTenants(tenantsRun{
			tenants:       n,
			benchDuration: benchDuration,
			workloads:     *workloads,
			clients:       *clients,
			duration:      *duration,
			async:         *async,
			batch:         *batch,
			zipf:          *zipf,
			churn:         *churn,
			retries:       *retries,
			seed:          *seed,
			snapshotPath:  *snapshotPath,
			metricsPath:   *metricsPath,
			slo: load.SLO{
				HTTPP50Max:   *sloP50,
				HTTPP99Max:   *sloP99,
				CellP99Max:   *sloCellP99,
				Max429Rate:   *slo429,
				MaxErrorRate: *sloErrors,
			},
			sloChecked: *smoke || *tenantsSmoke || *sloP50 > 0 || *sloP99 > 0 ||
				*sloCellP99 > 0 || *slo429 >= 0 || *sloErrors >= 0,
		})
		os.Exit(code)
	}

	if *fleetN > 0 || *fleetSmoke {
		n := *fleetN
		if n == 0 {
			n = 3 // -fleet-smoke default
		}
		if n < 2 {
			fail(fmt.Errorf("-fleet needs >= 2 backends, got %d", n))
		}
		code := runFleet(fleetRun{
			backends:     n,
			smokeOnly:    *fleetSmoke && *fleetN == 0,
			minSpeedup:   *minSpeedup,
			workloads:    *workloads,
			queue:        *queue,
			clients:      *clients,
			duration:     *duration,
			async:        *async,
			batch:        *batch,
			zipf:         *zipf,
			churn:        *churn,
			retries:      *retries,
			seed:         *seed,
			snapshotPath: *snapshotPath,
			metricsPath:  *metricsPath,
			slo: load.SLO{
				HTTPP50Max:   *sloP50,
				HTTPP99Max:   *sloP99,
				CellP99Max:   *sloCellP99,
				Max429Rate:   *slo429,
				MaxErrorRate: *sloErrors,
			},
			sloChecked: *smoke || *fleetSmoke || *sloP50 > 0 || *sloP99 > 0 ||
				*sloCellP99 > 0 || *slo429 >= 0 || *sloErrors >= 0,
		})
		os.Exit(code)
	}

	// The pool: synthetic cells on the loopback geometry, or the named
	// daemon workloads on the paper's XScale geometry.
	var pool []api.RunRequest
	target := *addr
	serverReg := obs.NewRegistry()
	if *addr == "" {
		lb, err := load.StartLoopback(load.LoopbackOptions{
			Workloads:  *workloads,
			Workers:    *jobs,
			QueueDepth: *queue,
			Registry:   serverReg,
		})
		if err != nil {
			fail(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			lb.Close(ctx)
		}()
		target = lb.URL
		names := lb.Workloads
		if *poolNames != "" {
			names = strings.Split(*poolNames, ",")
		}
		pool = load.Pool(names, load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
		fmt.Fprintf(os.Stderr, "wpload: loopback wpserved on %s (%d synthetic workloads, queue %d)\n",
			lb.URL, *workloads, *queue)
	} else {
		if *poolNames == "" {
			fail(fmt.Errorf("-addr needs -pool: which workloads should the cells name?"))
		}
		icache := api.GeometryOf(experiment.XScaleICache())
		pool = load.Pool(strings.Split(*poolNames, ","), icache,
			[]uint32{experiment.InitialWPSize, experiment.InitialWPSize / 2})
	}

	opt := load.Options{
		BaseURL:       target,
		Pool:          pool,
		Clients:       *clients,
		Duration:      *duration,
		AsyncFraction: *async,
		MaxBatchCells: *batch,
		ZipfS:         *zipf,
		Churn:         *churn,
		MaxRetries:    *retries,
		Seed:          *seed,
	}
	gen, err := load.New(opt)
	if err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "wpload: %d clients for %v against %s (%d-cell pool, async %.2f, churn %.2f)\n",
		*clients, *duration, targetLabel(*addr), len(pool), *async, *churn)
	report, err := gen.Run(context.Background())
	if err != nil {
		fail(err)
	}

	slo := load.SLO{
		HTTPP50Max:   *sloP50,
		HTTPP99Max:   *sloP99,
		CellP99Max:   *sloCellP99,
		Max429Rate:   *slo429,
		MaxErrorRate: *sloErrors,
	}
	checked := *smoke || *sloP50 > 0 || *sloP99 > 0 || *sloCellP99 > 0 || *slo429 >= 0 || *sloErrors >= 0

	printReport(report)

	var sloPtr *load.SLO
	if checked {
		sloPtr = &slo
	}
	snap := report.Snapshot(commandLine(), targetLabel(*addr), api.Version, opt, sloPtr)
	snap.UnixTime = time.Now().Unix()
	if *snapshotPath != "" {
		if err := snap.WriteFile(*snapshotPath); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wpload: snapshot written to %s\n", *snapshotPath)
	}
	if *metricsPath != "" {
		if err := writeMetrics(gen.Registry(), *metricsPath); err != nil {
			fail(err)
		}
	}

	if checked {
		if violations := slo.Check(report); len(violations) != 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "wpload: SLO VIOLATION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wpload: SLOs ok\n")
	}
}

// tenantsRun carries the resolved flag values for a
// -tenants/-tenants-smoke run.
type tenantsRun struct {
	tenants       int
	benchDuration time.Duration
	workloads     int

	clients  int
	duration time.Duration
	async    float64
	batch    int
	zipf     float64
	churn    float64
	retries  int
	seed     int64

	snapshotPath string
	metricsPath  string
	slo          load.SLO
	sloChecked   bool
}

// runTenants is the fairness harness: (1) measure quota isolation —
// a solo polite baseline, then 1 hog + N-1 polite fleets against a
// quota'd loopback, gated on each polite tenant keeping solo-like
// p99 and throughput; (2) drive the standard zipfian load at a plain
// (tenancy-off) loopback and check the SLOs, proving the tenant-aware
// admission path costs the single-tenant baseline nothing. Returns
// the process exit code.
func runTenants(cfg tenantsRun) int {
	ctx := context.Background()

	bench, err := load.TenantBench(ctx, load.TenantBenchOptions{
		Tenants:  cfg.tenants,
		Duration: cfg.benchDuration,
		Log:      os.Stderr,
	})
	if err != nil && bench == nil {
		fail(err)
	}
	failed := false
	for _, v := range bench.Violations {
		fmt.Fprintf(os.Stderr, "wpload: FAIRNESS VIOLATION: %s\n", v)
		failed = true
	}
	if !failed {
		fmt.Fprintf(os.Stderr, "wpload: fairness ok: %d polite tenants held the solo band (p99 %v) against the hog (%d over-quota rejections)\n",
			cfg.tenants-1, bench.Solo.BatchP99, bench.Hog.OverQuota)
	}

	// The standard zipfian load leg on a plain loopback — the
	// single-tenant baseline the redesign must not perturb.
	serverReg := obs.NewRegistry()
	lb, err := load.StartLoopback(load.LoopbackOptions{
		Workloads: cfg.workloads,
		Registry:  serverReg,
	})
	if err != nil {
		fail(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		lb.Close(sctx)
	}()
	pool := load.Pool(lb.Workloads, load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
	opt := load.Options{
		BaseURL:       lb.URL,
		Pool:          pool,
		Clients:       cfg.clients,
		Duration:      cfg.duration,
		AsyncFraction: cfg.async,
		MaxBatchCells: cfg.batch,
		ZipfS:         cfg.zipf,
		Churn:         cfg.churn,
		MaxRetries:    cfg.retries,
		Seed:          cfg.seed,
	}
	gen, err := load.New(opt)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wpload: %d clients for %v against loopback (%d-cell pool, async %.2f, churn %.2f)\n",
		cfg.clients, cfg.duration, len(pool), cfg.async, cfg.churn)
	report, err := gen.Run(ctx)
	if err != nil {
		fail(err)
	}
	printReport(report)

	var sloPtr *load.SLO
	if cfg.sloChecked {
		sloPtr = &cfg.slo
	}
	snap := report.Snapshot(commandLine(), fmt.Sprintf("tenants:%d", cfg.tenants), api.Version, opt, sloPtr)
	snap.UnixTime = time.Now().Unix()
	snap.Tenants = bench.TenantsSection()
	if cfg.snapshotPath != "" {
		if err := snap.WriteFile(cfg.snapshotPath); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wpload: snapshot written to %s\n", cfg.snapshotPath)
	}
	if cfg.metricsPath != "" {
		if err := writeMetrics(gen.Registry(), cfg.metricsPath); err != nil {
			fail(err)
		}
	}
	if cfg.sloChecked {
		if violations := cfg.slo.Check(report); len(violations) != 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "wpload: SLO VIOLATION: %s\n", v)
			}
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "wpload: SLOs ok\n")
		}
	}
	if failed {
		return 1
	}
	return 0
}

// fleetRun carries the resolved flag values for a -fleet/-fleet-smoke
// run.
type fleetRun struct {
	backends   int
	smokeOnly  bool // -fleet-smoke: skip the 1-vs-N scaling measurement
	minSpeedup float64
	workloads  int
	queue      int

	clients  int
	duration time.Duration
	async    float64
	batch    int
	zipf     float64
	churn    float64
	retries  int
	seed     int64

	snapshotPath string
	metricsPath  string
	slo          load.SLO
	sloChecked   bool
}

// runFleet is the fleet harness: (1) with -fleet, measure 1-vs-N
// backend cold-pool throughput and require -fleet-speedup; (2) prove
// the once-per-fleet invariant deterministically — the whole pool
// pushed through the coordinator twice simulates each cell exactly
// once fleet-wide; (3) drive the normal zipfian client load at the
// coordinator and check the SLOs. Returns the process exit code.
func runFleet(cfg fleetRun) int {
	ctx := context.Background()

	// Scaling measurement on dedicated cold fleets (1 backend, then
	// N), each backend pinned to one engine worker so backends are the
	// unit of parallelism.
	var fleetSection *load.FleetSnapshot
	if !cfg.smokeOnly {
		bench, err := load.FleetBench(ctx, load.FleetBenchOptions{
			Backends:   cfg.backends,
			MinSpeedup: cfg.minSpeedup,
			Log:        os.Stderr,
		})
		if err != nil {
			fail(err)
		}
		fleetSection = bench.FleetSection(cfg.minSpeedup)
		fmt.Fprintf(os.Stderr, "wpload: fleet scaling: %d backends %.2fx over 1 (%.0f vs %.0f cells/s), once-per-fleet ok (%d cells simulated for a %d-cell pool)\n",
			bench.Backends, bench.Speedup, bench.FleetCellsPerSecond, bench.SingleCellsPerSecond,
			bench.SimulatedCells, bench.PoolCells)
	}

	// The serving fleet for the load leg.
	serverReg := obs.NewRegistry()
	f, err := load.StartFleet(load.FleetOptions{
		Backends:     cfg.backends,
		Workloads:    cfg.workloads,
		BackendQueue: cfg.queue,
		Registry:     serverReg,
	})
	if err != nil {
		fail(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		f.Close(sctx)
	}()
	pool := load.Pool(load.SyntheticNames(cfg.workloads), load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
	fmt.Fprintf(os.Stderr, "wpload: fleet of %d backends behind coordinator %s (%d-cell pool)\n",
		cfg.backends, f.URL, len(pool))

	// Once-per-fleet, deterministically: every pool cell through the
	// coordinator twice, before any client can abandon a request
	// mid-simulation. Exactly len(pool) simulations may happen, all on
	// the first pass.
	client := serve.NewClient(f.URL)
	for pass := 0; pass < 2; pass++ {
		resp, err := client.Run(ctx, pool)
		if err != nil {
			fail(err)
		}
		if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
			fail(fmt.Errorf("fleet warm-up pass %d ended %q with %d failures", pass, resp.Status, len(resp.Errors)))
		}
	}
	if sim := f.SimulatedCells(); sim != uint64(len(pool)) {
		fail(fmt.Errorf("fleet simulated %d cells for a %d-cell pool — the once-per-fleet invariant is broken", sim, len(pool)))
	}
	fmt.Fprintf(os.Stderr, "wpload: once-per-fleet ok (%d cells simulated once across %d backends)\n",
		len(pool), cfg.backends)
	if fleetSection == nil {
		fleetSection = &load.FleetSnapshot{
			Backends:       cfg.backends,
			ScalePoolCells: len(pool),
			SimulatedCells: uint64(len(pool)),
			OncePerFleet:   true,
		}
	}

	// The standard zipfian client load, aimed at the coordinator.
	opt := load.Options{
		BaseURL:       f.URL,
		Pool:          pool,
		Clients:       cfg.clients,
		Duration:      cfg.duration,
		AsyncFraction: cfg.async,
		MaxBatchCells: cfg.batch,
		ZipfS:         cfg.zipf,
		Churn:         cfg.churn,
		MaxRetries:    cfg.retries,
		Seed:          cfg.seed,
	}
	gen, err := load.New(opt)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wpload: %d clients for %v against the %d-backend fleet (async %.2f, churn %.2f)\n",
		cfg.clients, cfg.duration, cfg.backends, cfg.async, cfg.churn)
	report, err := gen.Run(ctx)
	if err != nil {
		fail(err)
	}
	printReport(report)

	var sloPtr *load.SLO
	if cfg.sloChecked {
		sloPtr = &cfg.slo
	}
	snap := report.Snapshot(commandLine(), fmt.Sprintf("fleet:%d", cfg.backends), api.Version, opt, sloPtr)
	snap.UnixTime = time.Now().Unix()
	snap.Fleet = fleetSection
	if cfg.snapshotPath != "" {
		if err := snap.WriteFile(cfg.snapshotPath); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wpload: snapshot written to %s\n", cfg.snapshotPath)
	}
	if cfg.metricsPath != "" {
		if err := writeMetrics(gen.Registry(), cfg.metricsPath); err != nil {
			fail(err)
		}
	}
	if cfg.sloChecked {
		if violations := cfg.slo.Check(report); len(violations) != 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "wpload: SLO VIOLATION: %s\n", v)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "wpload: SLOs ok\n")
	}
	return 0
}

func printReport(r *load.Report) {
	fmt.Fprintf(os.Stderr,
		"wpload: %d batches (%d cells) in %.2fs — %.0f batches/s, %.0f cells/s\n"+
			"wpload: http %d requests, p50 %v, p99 %v; batch p50 %v, p99 %v; cell p50 %v, p99 %v\n"+
			"wpload: 429s %d (rate %.3f), retries %d, dropped %d, errors %d (rate %.4f), aborts %d, polls %d\n",
		r.Batches, r.Cells, r.Elapsed.Seconds(), r.BatchesPerSecond, r.CellsPerSecond,
		r.Requests, r.HTTPP50, r.HTTPP99, r.BatchP50, r.BatchP99, r.CellP50, r.CellP99,
		r.Status429, r.Rate429, r.Retries, r.Dropped, r.Errors, r.ErrorRate, r.Aborts, r.AsyncPolls)
}

func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func targetLabel(addr string) string {
	if addr == "" {
		return "loopback"
	}
	return addr
}

func commandLine() string {
	// os.Args[0] is a temp path under `go run`; normalise it.
	return strings.Join(append([]string{"wpload"}, os.Args[1:]...), " ")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wpload: %v\n", err)
	os.Exit(1)
}
