// Command wpload is the concurrent-client load harness for wpserved.
// It drives a fleet of independent HTTP clients — hundreds by default
// — against a daemon, each submitting sync and async batches drawn
// zipfian-hot from a fixed pool of canonical cells, honouring 429
// backpressure with capped Retry-After backoff and (with -churn)
// hanging up mid-request to exercise abandoned-connection paths. The
// run's latency quantiles, 429/retry/error rates and throughput land
// in a machine-readable BENCH_wpload.json snapshot, optionally
// checked against p50/p99 SLOs.
//
// Usage:
//
//	wpload [-addr URL] [-clients N] [-duration d] [-async F]
//	       [-batch N] [-zipf S] [-churn F] [-retries N]
//	       [-workloads N] [-pool a,b,...] [-queue N] [-jobs N]
//	       [-snapshot file] [-metrics file] [-seed N]
//	       [-slo-p50 d] [-slo-p99 d] [-slo-cell-p99 d]
//	       [-slo-429 F] [-slo-errors F] [-smoke] [-crash]
//
// With no -addr, wpload starts an in-process wpserved over tiny
// synthetic workloads on a loopback socket — the full HTTP stack with
// none of the network or benchmark-preparation noise, which is what
// CI wants. With -addr it targets a running daemon; -pool then names
// the workloads to draw cells from (default: the daemon's standard
// benchmark set is NOT assumed — the flag is required).
//
// -smoke is the tier-1 CI gate: loopback target, 200 clients for 2
// seconds, generous SLOs that catch breakage (orphaned async jobs,
// starved sync callers, buffered encodes) without flaking on slow
// runners. Exit status 1 on any SLO violation.
//
// -crash is the durability gate: wpload re-execs itself as a
// store-backed daemon, submits async batches, SIGKILLs the daemon the
// moment the last 202 lands, restarts it on the same store and
// asserts every pre-kill job id resolves to results byte-identical to
// a direct engine run — then proves a third, cold-memory daemon
// serves the warm store without re-simulating a single cell.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/experiment"
	"wayplace/internal/load"
	"wayplace/internal/obs"
)

func main() {
	// Re-exec'd as a crash-choreography daemon child? Then this call
	// runs the daemon and never returns.
	load.MaybeDaemonChild()

	addr := flag.String("addr", "", "target wpserved base URL, e.g. http://127.0.0.1:8100 (empty = in-process loopback server)")
	clients := flag.Int("clients", 256, "concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "how long clients keep submitting")
	async := flag.Float64("async", 0.25, "fraction of batches submitted async (202 + poll)")
	batch := flag.Int("batch", 8, "max cells per batch (sizes are uniform 1..N)")
	zipf := flag.Float64("zipf", 1.2, "zipfian skew over pool ranks (>1; larger = hotter hot set)")
	churn := flag.Float64("churn", 0.02, "probability a client abandons a submission mid-request")
	retries := flag.Int("retries", 8, "resubmissions after 429 before a batch counts as dropped")
	workloads := flag.Int("workloads", 4, "synthetic workloads behind the loopback server")
	poolNames := flag.String("pool", "", "comma-separated workload names for the cell pool (required with -addr)")
	queue := flag.Int("queue", 64, "loopback server queue depth")
	jobs := flag.Int("jobs", 0, "loopback engine workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "client RNG seed")
	snapshotPath := flag.String("snapshot", "BENCH_wpload.json", "write the run snapshot here (empty = skip)")
	metricsPath := flag.String("metrics", "", "also dump the client-side load_* registry as JSON here")
	smoke := flag.Bool("smoke", false, "CI smoke: loopback, 200 clients, 2s, SLOs asserted, exit 1 on violation")
	crash := flag.Bool("crash", false, "kill/restart durability choreography: SIGKILL a store-backed daemon mid-load, restart, assert nothing observable was lost")

	sloP50 := flag.Duration("slo-p50", 0, "max HTTP p50 (0 = unchecked)")
	sloP99 := flag.Duration("slo-p99", 0, "max HTTP p99 (0 = unchecked)")
	sloCellP99 := flag.Duration("slo-cell-p99", 0, "max per-cell p99 (0 = unchecked)")
	slo429 := flag.Float64("slo-429", -1, "max 429s per HTTP request (negative = unchecked)")
	sloErrors := flag.Float64("slo-errors", -1, "max batch error rate (negative = unchecked)")
	flag.Parse()

	if *crash {
		if err := load.RunCrash(context.Background(), load.CrashOptions{Log: os.Stderr}); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "wpload: crash choreography ok")
		return
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *smoke {
		// Presets only where the user did not choose: -smoke -clients 500
		// smokes with 500 clients.
		if !set["clients"] {
			*clients = 200
		}
		if !set["duration"] {
			*duration = 2 * time.Second
		}
		if !set["slo-p50"] {
			*sloP50 = 250 * time.Millisecond
		}
		if !set["slo-p99"] {
			*sloP99 = 2 * time.Second
		}
		if !set["slo-cell-p99"] {
			*sloCellP99 = time.Second
		}
		if !set["slo-429"] {
			// Backpressure is expected under a 200-client burst; what the
			// gate rejects is every request bouncing.
			*slo429 = 0.95
		}
		if !set["slo-errors"] {
			*sloErrors = 0.01
		}
	}

	// The pool: synthetic cells on the loopback geometry, or the named
	// daemon workloads on the paper's XScale geometry.
	var pool []api.RunRequest
	target := *addr
	serverReg := obs.NewRegistry()
	if *addr == "" {
		lb, err := load.StartLoopback(load.LoopbackOptions{
			Workloads:  *workloads,
			Workers:    *jobs,
			QueueDepth: *queue,
			Registry:   serverReg,
		})
		if err != nil {
			fail(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			lb.Close(ctx)
		}()
		target = lb.URL
		names := lb.Workloads
		if *poolNames != "" {
			names = strings.Split(*poolNames, ",")
		}
		pool = load.Pool(names, load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
		fmt.Fprintf(os.Stderr, "wpload: loopback wpserved on %s (%d synthetic workloads, queue %d)\n",
			lb.URL, *workloads, *queue)
	} else {
		if *poolNames == "" {
			fail(fmt.Errorf("-addr needs -pool: which workloads should the cells name?"))
		}
		icache := api.GeometryOf(experiment.XScaleICache())
		pool = load.Pool(strings.Split(*poolNames, ","), icache,
			[]uint32{experiment.InitialWPSize, experiment.InitialWPSize / 2})
	}

	opt := load.Options{
		BaseURL:       target,
		Pool:          pool,
		Clients:       *clients,
		Duration:      *duration,
		AsyncFraction: *async,
		MaxBatchCells: *batch,
		ZipfS:         *zipf,
		Churn:         *churn,
		MaxRetries:    *retries,
		Seed:          *seed,
	}
	gen, err := load.New(opt)
	if err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "wpload: %d clients for %v against %s (%d-cell pool, async %.2f, churn %.2f)\n",
		*clients, *duration, targetLabel(*addr), len(pool), *async, *churn)
	report, err := gen.Run(context.Background())
	if err != nil {
		fail(err)
	}

	slo := load.SLO{
		HTTPP50Max:   *sloP50,
		HTTPP99Max:   *sloP99,
		CellP99Max:   *sloCellP99,
		Max429Rate:   *slo429,
		MaxErrorRate: *sloErrors,
	}
	checked := *smoke || *sloP50 > 0 || *sloP99 > 0 || *sloCellP99 > 0 || *slo429 >= 0 || *sloErrors >= 0

	printReport(report)

	var sloPtr *load.SLO
	if checked {
		sloPtr = &slo
	}
	snap := report.Snapshot(commandLine(), targetLabel(*addr), api.Version, opt, sloPtr)
	snap.UnixTime = time.Now().Unix()
	if *snapshotPath != "" {
		if err := snap.WriteFile(*snapshotPath); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wpload: snapshot written to %s\n", *snapshotPath)
	}
	if *metricsPath != "" {
		if err := writeMetrics(gen.Registry(), *metricsPath); err != nil {
			fail(err)
		}
	}

	if checked {
		if violations := slo.Check(report); len(violations) != 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "wpload: SLO VIOLATION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wpload: SLOs ok\n")
	}
}

func printReport(r *load.Report) {
	fmt.Fprintf(os.Stderr,
		"wpload: %d batches (%d cells) in %.2fs — %.0f batches/s, %.0f cells/s\n"+
			"wpload: http %d requests, p50 %v, p99 %v; batch p50 %v, p99 %v; cell p50 %v, p99 %v\n"+
			"wpload: 429s %d (rate %.3f), retries %d, dropped %d, errors %d (rate %.4f), aborts %d, polls %d\n",
		r.Batches, r.Cells, r.Elapsed.Seconds(), r.BatchesPerSecond, r.CellsPerSecond,
		r.Requests, r.HTTPP50, r.HTTPP99, r.BatchP50, r.BatchP99, r.CellP50, r.CellP99,
		r.Status429, r.Rate429, r.Retries, r.Dropped, r.Errors, r.ErrorRate, r.Aborts, r.AsyncPolls)
}

func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func targetLabel(addr string) string {
	if addr == "" {
		return "loopback"
	}
	return addr
}

func commandLine() string {
	// os.Args[0] is a temp path under `go run`; normalise it.
	return strings.Join(append([]string{"wpload"}, os.Args[1:]...), " ")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wpload: %v\n", err)
	os.Exit(1)
}
