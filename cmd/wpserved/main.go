// Command wpserved is the experiment service: a long-running daemon
// that owns one shared experiment engine and exposes it over HTTP as
// the versioned JSON run API (internal/api). Every client — wpbench
// -server sweeps, wpexplore, curl — shares the daemon's memoized run
// cache, so a cell any client has requested is simulated exactly once
// for the life of the process.
//
// Endpoints:
//
//	POST /v1/runs      run a batch of cells (async with "async": true)
//	GET  /v1/runs/{id} poll an async job
//	GET  /healthz      liveness, queue level, cache totals
//	GET  /metrics      Prometheus text (?format=json for JSON)
//
// Backpressure: -queue bounds concurrently queued batches and
// -maxbatch the cells per batch; beyond either the server answers 429
// with Retry-After instead of accumulating work. On SIGINT/SIGTERM
// the daemon stops accepting batches and drains in-flight cells for
// up to -drain before exiting.
//
// Multi-tenancy: requests carry an identity in X-WP-Tenant (default:
// the caller's remote address). -tenantslots caps the queue slots one
// tenant may hold — past it that tenant alone gets 429 over_quota
// while others keep admitting; -tenantwait parks briefly-contended
// admissions in per-tenant sub-queues drained deficit-round-robin,
// weighted by -tenantweights.
//
// Durability: with -store DIR the daemon layers a disk-backed
// content-addressed result store under the engine run cache (one file
// per canonical cell key, atomic fsync'd writes) and journals every
// accepted async batch to DIR/journal.wal before answering 202. A
// SIGKILL loses nothing a client can observe: on restart the journal
// is replayed — unfinished jobs resume, finished ones stay pollable
// until -jobttl — and warm-store cells are served from disk instead
// of re-simulated. -store-fsck verifies the store and exits.
//
// Usage:
//
//	wpserved [-addr host:port] [-jobs N] [-queue N] [-asyncslots N]
//	         [-maxbatch N] [-jobttl d] [-timeout d] [-drain d]
//	         [-tenantslots N] [-tenantwait d] [-tenantweights a=4,b=1]
//	         [-store DIR] [-journal FILE] [-store-fsck]
//	         [-noverify] [-oneshot]
//
// -oneshot is the self-test: the daemon binds a loopback port, pushes
// one small coalescible batch (cells sharing a fetch stream, so the
// engine's single-pass grouping is on the path) through the full HTTP
// stack, compares the wire results byte-for-byte against a direct
// engine run of the same cells, and exits non-zero on any mismatch.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/check"
	"wayplace/internal/engine"
	"wayplace/internal/experiment"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
	"wayplace/internal/sim"
	"wayplace/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "listen address")
	jobs := flag.Int("jobs", 0, "simulation cells to run concurrently (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 8, "batches queued or running before new ones get 429")
	asyncSlots := flag.Int("asyncslots", 0, "queue slots async batches may hold at once (0 = queue-1, so sync callers always have one)")
	maxBatch := flag.Int("maxbatch", 4096, "max cells per batch")
	jobTTL := flag.Duration("jobttl", 10*time.Minute, "how long finished async jobs stay pollable (negative = forever)")
	timeout := flag.Duration("timeout", 0, "per-batch run timeout (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight cells")
	noverify := flag.Bool("noverify", false, "skip the per-cell invariant checker (check.VerifyCell)")
	oneshot := flag.Bool("oneshot", false, "bind a loopback port, run one smoke batch through the HTTP path and exit")
	storeDir := flag.String("store", "", "persistent result store directory (empty = in-memory only)")
	journalPath := flag.String("journal", "", "async-job journal file (default <store>/journal.wal; requires -store)")
	storeFsck := flag.Bool("store-fsck", false, "verify every CAS object in -store re-hashes to its key, then exit (non-zero on corruption)")
	tenantSlots := flag.Int("tenantslots", 0, "queue slots one tenant (X-WP-Tenant, or remote addr) may hold at once; past it that tenant gets 429 over_quota while others keep admitting (0 = no per-tenant quota)")
	tenantWait := flag.Duration("tenantwait", 0, "how long an admission may park in its tenant sub-queue for the weighted-fair dispatcher before 429 queue_full (0 = no parking, pre-tenancy behaviour)")
	tenantWeights := flag.String("tenantweights", "", "per-tenant dequeue weights as name=w,name=w (unlisted tenants weigh 1)")
	flag.Parse()

	weights, err := parseWeights(*tenantWeights)
	if err != nil {
		fail(err)
	}

	if *storeFsck {
		os.Exit(runFsck(*storeDir))
	}

	reg := obs.NewRegistry()
	base := sim.Default()
	base.MaxInstrs = experiment.MaxInstrs
	opts := []engine.Option{
		engine.WithWorkers(*jobs),
		engine.WithBaseConfig(base),
		engine.WithObserver(reg),
	}
	if !*noverify {
		opts = append(opts, engine.WithVerify(check.VerifyCell))
	}

	// Persistence: the CAS store slots under the engine run cache, the
	// journal under the async job table. Both live in -store so one
	// directory is the whole durable state of a daemon.
	var st *store.Store
	var journal *store.Journal
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{
			Dir:         *storeDir,
			Registry:    reg,
			Fingerprint: store.Fingerprint(base),
		})
		if err != nil {
			fail(err)
		}
		defer st.Close()
		opts = append(opts, engine.WithStore(st))
		jp := *journalPath
		if jp == "" {
			jp = filepath.Join(*storeDir, "journal.wal")
		}
		journal, err = store.OpenJournal(jp, reg)
		if err != nil {
			fail(err)
		}
		defer journal.Close()
	} else if *journalPath != "" {
		fail(fmt.Errorf("-journal requires -store (results a replayed job needs must be durable too)"))
	}

	// The provider is lazy: a workload is built, profiled and relaid
	// the first time any client names it, then memoized by the engine.
	eng := engine.New(provider, opts...)

	srv, err := serve.New(serve.Options{
		Engine:        eng,
		Registry:      reg,
		QueueDepth:    *queue,
		AsyncSlots:    *asyncSlots,
		MaxBatchCells: *maxBatch,
		JobTTL:        *jobTTL,
		RunTimeout:    *timeout,
		Journal:       journal,
		Tenancy: serve.TenancyOptions{
			Slots:     *tenantSlots,
			AdmitWait: *tenantWait,
			Weights:   weights,
		},
	})
	if err != nil {
		fail(err)
	}

	if *oneshot {
		os.Exit(runOneshot(srv, eng, base))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "wpserved: api %s listening on http://%s\n", api.Version, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Drain: stop the listener without cancelling in-flight request
	// contexts, then wait for queued and async batches to finish.
	fmt.Fprintf(os.Stderr, "wpserved: draining in-flight batches (up to %v)...\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "wpserved: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fail(err)
	}
	if st != nil {
		// Flush write-behind saves so the next boot's store is as warm
		// as this process's run cache was.
		st.Flush()
	}
	fmt.Fprintf(os.Stderr, "wpserved: drained (%d simulated, %d cache hits)\n",
		eng.Misses(), eng.Hits())
}

// parseWeights turns "teamA=4,teamB=1" into the tenancy weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-tenantweights: %q is not name=weight", pair)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-tenantweights: %q: weight must be a positive integer", pair)
		}
		if _, err := api.ParseTenant(name); err != nil {
			return nil, fmt.Errorf("-tenantweights: %w", err)
		}
		weights[name] = n
	}
	return weights, nil
}

// runFsck walks the store and verifies every CAS object decodes and
// re-hashes to its filename; the exit status is the integrity verdict
// CI and operators script against.
func runFsck(dir string) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "wpserved: -store-fsck requires -store DIR")
		return 2
	}
	rep, err := store.Fsck(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpserved: %v\n", err)
		return 2
	}
	for _, c := range rep.Corrupt {
		fmt.Fprintf(os.Stderr, "wpserved: store-fsck: CORRUPT %s\n", c)
	}
	fmt.Fprintf(os.Stderr, "wpserved: store-fsck: %d objects ok, %d corrupt in %s\n",
		rep.Objects, len(rep.Corrupt), dir)
	if len(rep.Corrupt) > 0 {
		return 1
	}
	return 0
}

// provider is the daemon's workload source: the full benchmark
// preparation pipeline (build, profile on the small input, relink),
// invoked lazily and memoized per name by the engine.
func provider(ctx context.Context, name string) (*engine.Workload, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w, err := experiment.Prepare(name)
	if err != nil {
		return nil, err
	}
	return &engine.Workload{Name: name, Original: w.Original, Placed: w.Placed}, nil
}

// runOneshot is the smoke test behind ROADMAP's tier-1 gate: serve
// one small batch over a real loopback socket and demand the wire
// results match a direct engine run of the same cells exactly.
func runOneshot(srv *serve.Server, eng *engine.Engine, base sim.Config) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "wpserved: oneshot smoke on %s\n", url)

	// The batch is deliberately coalescible: baseline and waymem share
	// the original binary, the two way-placement sizes share the relaid
	// one, so the server must form two single-pass groups and still
	// answer per-cell results identical to a direct run.
	icache := api.GeometryOf(experiment.XScaleICache())
	reqs := []api.RunRequest{
		{Workload: "crc", ICache: icache, Scheme: api.SchemeBaseline},
		{Workload: "crc", ICache: icache, Scheme: api.SchemeWayMemoization},
		{Workload: "crc", ICache: icache, Scheme: api.SchemeWayPlacement,
			WPSizeBytes: experiment.InitialWPSize},
		{Workload: "crc", ICache: icache, Scheme: api.SchemeWayPlacement,
			WPSizeBytes: experiment.InitialWPSize / 2},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	resp, err := serve.NewClient(url).Run(ctx, reqs)
	if err != nil {
		fail(err)
	}
	if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
		fmt.Fprintf(os.Stderr, "wpserved: oneshot batch ended %q: %+v\n", resp.Status, resp.Errors)
		return 1
	}
	if eng.Groups() != 2 {
		fmt.Fprintf(os.Stderr, "wpserved: oneshot: server formed %d single-pass groups, want 2\n", eng.Groups())
		return 1
	}

	// Reference: the same cells on a fresh engine, no HTTP involved.
	specs, err := api.ToSpecs(reqs)
	if err != nil {
		fail(err)
	}
	ref := engine.New(provider, engine.WithBaseConfig(base), engine.WithVerify(check.VerifyCell))
	want, err := ref.Run(ctx, specs)
	if err != nil {
		fail(err)
	}

	code := 0
	for i := range specs {
		got := resp.Results[i]
		if got.Key != specs[i].Key() {
			fmt.Fprintf(os.Stderr, "wpserved: oneshot: cell %d key %q != %q\n", i, got.Key, specs[i].Key())
			code = 1
		}
		if got.GroupID == "" {
			fmt.Fprintf(os.Stderr, "wpserved: oneshot: cell %d missing group_id\n", i)
			code = 1
		}
		if !reflect.DeepEqual(got.Stats, want[i].Stats) {
			g, _ := json.Marshal(got.Stats)
			w, _ := json.Marshal(want[i].Stats)
			fmt.Fprintf(os.Stderr, "wpserved: oneshot: cell %d stats diverge over the wire:\n served %s\n direct %s\n", i, g, w)
			code = 1
		}
	}
	if code == 0 {
		fmt.Fprintf(os.Stderr, "wpserved: oneshot ok (%d cells in %d single-pass groups, byte-identical to a direct engine run)\n",
			len(specs), eng.Groups())
	}
	return code
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wpserved: %v\n", err)
	os.Exit(1)
}
