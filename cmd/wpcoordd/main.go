// Command wpcoordd is the fleet coordinator: a daemon that owns a
// consistent-hash ring over N wpserved backends and speaks the same
// versioned JSON run API (internal/api) on its front side. Clients
// point serve.Client (or curl) at the coordinator exactly as they
// would at a single wpserved — zero client changes — and every batch
// is split into per-backend sub-batches by each cell's canonical
// RunSpec key, fanned out concurrently, and merged back in original
// cell order.
//
// Sharding by canonical key turns the N backends into one logical
// cache: every repeat of a cell routes to the same backend, so the
// fleet simulates a cold cell exactly once and answers all later
// requests from that backend's warm run cache or persistent store.
//
// Endpoints (identical surface to wpserved):
//
//	POST /v1/runs      run a batch (async with "async": true)
//	GET  /v1/runs/{id} poll an async job (scatter-gathers backend jobs)
//	GET  /healthz      coordinator + ring + per-backend health
//	GET  /metrics      fleet_* metrics incl. per-backend series
//
// Overload and failure: a backend 429 is retried against the same
// backend with its Retry-After hint and then propagated upstream as a
// coordinator 429 — busy shards get backpressure, never migration,
// which preserves cache affinity. Hard failures (connection refused,
// 5xx) fail over to up to -failover successor ring nodes; cells whose
// whole failover sequence is down come back as per-cell failures.
//
// Usage:
//
//	wpcoordd -backends http://h1:8100,http://h2:8100[,...]
//	         [-addr host:port] [-queue N] [-maxbatch N] [-failover N]
//	         [-retries N] [-vnodes N] [-jobttl d] [-retryafter d]
//	         [-tenantslots N] [-drain d]
//	wpcoordd -oneshot
//
// Tenant identity (X-WP-Tenant, defaulting to the caller's remote
// address) is forwarded on every scattered sub-batch, so backend-side
// quotas and weighted-fair dequeue see the real client, not the
// coordinator. -tenantslots additionally caps, per tenant, how many
// batches the coordinator itself will hold in flight: the tenant at
// its cap gets 429 over_quota while others keep admitting.
//
// -oneshot is the self-test behind ROADMAP's tier-1 gate: it boots
// three in-process wpserved backends over synthetic workloads, drives
// the canonical wpload cell pool through the coordinator — sync and
// async — and demands the merged wire results be identical to a
// direct single-engine run of the same cells, that the batch spread
// over at least two backends, and that the fleet simulated each cell
// exactly once. Exits non-zero on any mismatch.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/engine"
	"wayplace/internal/fleet"
	"wayplace/internal/load"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
	"wayplace/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8200", "listen address")
	backends := flag.String("backends", "", "comma-separated wpserved base URLs forming the ring")
	queue := flag.Int("queue", 64, "batches coordinated concurrently before new ones get 429")
	maxBatch := flag.Int("maxbatch", 4096, "max cells per batch (must not exceed the backends' -maxbatch)")
	failover := flag.Int("failover", 1, "successor ring nodes tried after a backend hard-fails (negative = none)")
	retries := flag.Int("retries", 4, "429 retries per backend before propagating busy upstream")
	vnodes := flag.Int("vnodes", 0, "virtual ring points per backend (0 = default)")
	jobTTL := flag.Duration("jobttl", 10*time.Minute, "how long finished async jobs stay pollable (negative = forever)")
	retryAfter := flag.Duration("retryafter", time.Second, "the coordinator's own 429 backoff hint")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight scatters")
	tenantSlots := flag.Int("tenantslots", 0, "coordination slots one tenant (X-WP-Tenant, or remote addr) may hold at once; past it that tenant alone gets 429 over_quota (0 = no per-tenant cap)")
	oneshot := flag.Bool("oneshot", false, "boot 3 loopback backends, prove coordinated results identical to a direct engine run, and exit")
	flag.Parse()

	if *oneshot {
		os.Exit(runOneshot())
	}
	if *backends == "" {
		fail(fmt.Errorf("-backends is required (or use -oneshot)"))
	}

	reg := obs.NewRegistry()
	coord, err := fleet.New(fleet.Options{
		Backends:       strings.Split(*backends, ","),
		Registry:       reg,
		VNodes:         *vnodes,
		QueueDepth:     *queue,
		MaxBatchCells:  *maxBatch,
		Failover:       *failover,
		BackendRetries: *retries,
		RetryAfter:     *retryAfter,
		JobTTL:         *jobTTL,
		TenantSlots:    *tenantSlots,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	fmt.Fprintf(os.Stderr, "wpcoordd: api %s coordinating %d backends on http://%s\n",
		api.Version, coord.Ring().Len(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "wpcoordd: draining in-flight scatters (up to %v)...\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "wpcoordd: %v\n", err)
	}
	if err := coord.Shutdown(drainCtx); err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "wpcoordd: drained")
}

// runOneshot proves the coordinator's core contract: results merged
// from a sharded fleet are indistinguishable from a direct engine run.
func runOneshot() int {
	const (
		nBackends = 3
		workloads = 4
	)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Backends: in-process wpserved instances over the same synthetic
	// workload set, each with its own engine and run cache.
	backs := make([]*load.Loopback, nBackends)
	urls := make([]string, nBackends)
	for i := range backs {
		lb, err := load.StartLoopback(load.LoopbackOptions{Workloads: workloads})
		if err != nil {
			fail(err)
		}
		defer lb.Close(ctx)
		backs[i] = lb
		urls[i] = lb.URL
	}

	reg := obs.NewRegistry()
	coord, err := fleet.New(fleet.Options{Backends: urls, Registry: reg})
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "wpcoordd: oneshot on %s over %d loopback backends\n", url, nBackends)

	// The canonical wpload pool: every scheme x WP-size cell for each
	// synthetic workload — the same key population the ring is balanced
	// against.
	reqs := load.Pool(load.SyntheticNames(workloads), load.SyntheticGeometry(),
		[]uint32{1 << 10, 4 << 10, 8 << 10, 16 << 10})
	specs, err := api.ToSpecs(reqs)
	if err != nil {
		fail(err)
	}

	// Ground truth: the same cells on one fresh local engine.
	ref := engine.New(load.SyntheticProvider(workloads), engine.WithBaseConfig(sim.Default()))
	want, err := ref.Run(ctx, specs)
	if err != nil {
		fail(err)
	}

	code := 0
	check := func(leg string, resp *api.BatchResponse) {
		if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
			fmt.Fprintf(os.Stderr, "wpcoordd: oneshot %s: batch ended %q: %+v\n", leg, resp.Status, resp.Errors)
			code = 1
			return
		}
		if len(resp.Results) != len(specs) {
			fmt.Fprintf(os.Stderr, "wpcoordd: oneshot %s: %d results for %d cells\n", leg, len(resp.Results), len(specs))
			code = 1
			return
		}
		for i := range specs {
			got := resp.Results[i]
			if got.Key != specs[i].Key() {
				fmt.Fprintf(os.Stderr, "wpcoordd: oneshot %s: cell %d key %q != %q (merge order broken)\n",
					leg, i, got.Key, specs[i].Key())
				code = 1
			}
			if !reflect.DeepEqual(got.Stats, want[i].Stats) {
				g, _ := json.Marshal(got.Stats)
				w, _ := json.Marshal(want[i].Stats)
				fmt.Fprintf(os.Stderr, "wpcoordd: oneshot %s: cell %d stats diverge:\n  fleet %s\n direct %s\n", leg, i, g, w)
				code = 1
			}
		}
	}

	// Leg 1: sync scatter-gather.
	resp, err := serve.NewClient(url).Run(ctx, reqs)
	if err != nil {
		fail(err)
	}
	check("sync", resp)

	// The ring must actually have sharded the batch...
	spread := 0
	var fleetMisses uint64
	for _, lb := range backs {
		if lb.Engine.Misses() > 0 {
			spread++
		}
		fleetMisses += lb.Engine.Misses()
	}
	if spread < 2 {
		fmt.Fprintf(os.Stderr, "wpcoordd: oneshot: batch landed on %d backend(s), want >= 2\n", spread)
		code = 1
	}
	// ...and simulated each cell exactly once across the fleet.
	if fleetMisses != uint64(len(reqs)) {
		fmt.Fprintf(os.Stderr, "wpcoordd: oneshot: fleet simulated %d cells for %d unique cells\n",
			fleetMisses, len(reqs))
		code = 1
	}

	// Leg 2: async submit + poll through the coordinator; the whole
	// pool is now warm, so this also proves gathered cache hits merge
	// identically.
	resp, err = runAsync(ctx, url, reqs)
	if err != nil {
		fail(err)
	}
	check("async", resp)
	if got := uint64(len(reqs)); fleetSimulated(backs) != got {
		fmt.Fprintf(os.Stderr, "wpcoordd: oneshot: async leg re-simulated cells (%d total, want %d)\n",
			fleetSimulated(backs), got)
		code = 1
	}

	if code == 0 {
		fmt.Fprintf(os.Stderr, "wpcoordd: oneshot ok (%d cells over %d backends, sync+async merged results identical to a direct engine run, each cell simulated once fleet-wide)\n",
			len(reqs), spread)
	}
	return code
}

func fleetSimulated(backs []*load.Loopback) uint64 {
	var n uint64
	for _, lb := range backs {
		n += lb.Engine.Misses()
	}
	return n
}

// runAsync submits the batch with "async": true and polls the
// coordinator until the job finishes.
func runAsync(ctx context.Context, url string, reqs []api.RunRequest) (*api.BatchResponse, error) {
	body, err := json.Marshal(api.BatchRequest{APIVersion: api.Version, Requests: reqs, Async: true})
	if err != nil {
		return nil, err
	}
	httpResp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	var shell api.BatchResponse
	derr := json.NewDecoder(httpResp.Body).Decode(&shell)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("async submit answered %d", httpResp.StatusCode)
	}
	if derr != nil {
		return nil, derr
	}
	if want := api.BatchKey(reqs); shell.JobID != want {
		return nil, fmt.Errorf("async job id %q, want deterministic %q", shell.JobID, want)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pr, err := http.Get(url + "/v1/runs/" + shell.JobID)
		if err != nil {
			return nil, err
		}
		var resp api.BatchResponse
		derr := json.NewDecoder(pr.Body).Decode(&resp)
		pr.Body.Close()
		if pr.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("poll answered %d", pr.StatusCode)
		}
		if derr != nil {
			return nil, derr
		}
		if resp.Status == api.StatusDone || resp.Status == api.StatusFailed {
			return &resp, nil
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wpcoordd: %v\n", err)
	os.Exit(1)
}
