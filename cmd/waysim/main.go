// Command waysim runs one benchmark of the suite on the simulated
// platform under a chosen fetch scheme and prints the detailed
// statistics behind the paper's figures.
//
// Usage:
//
//	waysim -bench crc [-scheme baseline|wayplace|waymem]
//	       [-size 32] [-ways 32] [-wp 16] [-layout placed|original]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/energy"
	"wayplace/internal/experiment"
	"wayplace/internal/mem"
	"wayplace/internal/sim"
	"wayplace/internal/trace"
)

func main() {
	name := flag.String("bench", "crc", "benchmark name (see wpbench for the list)")
	scheme := flag.String("scheme", "wayplace", "fetch scheme: baseline, wayplace or waymem")
	sizeKB := flag.Int("size", 32, "I-cache size in KB")
	ways := flag.Int("ways", 32, "I-cache associativity")
	wpKB := flag.Int("wp", 16, "way-placement area size in KB (wayplace only)")
	layoutSel := flag.String("layout", "", "binary layout: placed (default for wayplace) or original")
	doTrace := flag.Bool("trace", false, "record the fetch stream and print a trace analysis")
	flag.Parse()

	w, err := experiment.Prepare(*name)
	if err != nil {
		fail(err)
	}

	icfg := cache.Config{SizeBytes: *sizeKB << 10, Ways: *ways, LineBytes: 32, Policy: cache.RoundRobin}
	opts := []sim.Option{sim.WithICache(icfg), sim.WithMaxInstrs(experiment.MaxInstrs)}
	prog := w.Original
	switch *scheme {
	case "baseline":
		opts = append(opts, sim.WithScheme(energy.Baseline))
	case "waymem":
		opts = append(opts, sim.WithScheme(energy.WayMemoization))
	case "wayplace":
		opts = append(opts, sim.WithScheme(energy.WayPlacement), sim.WithWPSize(uint32(*wpKB)<<10))
		prog = w.Placed
	default:
		fail(fmt.Errorf("unknown scheme %q", *scheme))
	}
	cfg, err := sim.New(opts...)
	if err != nil {
		fail(err)
	}
	switch *layoutSel {
	case "":
	case "placed":
		prog = w.Placed
	case "original":
		prog = w.Original
	default:
		fail(fmt.Errorf("unknown layout %q", *layoutSel))
	}

	rs, err := sim.RunContext(context.Background(), prog, cfg)
	if err != nil {
		fail(err)
	}
	baseCfg, err := sim.New(sim.WithICache(icfg), sim.WithMaxInstrs(experiment.MaxInstrs))
	if err != nil {
		fail(err)
	}
	base, err := sim.RunContext(context.Background(), w.Original, baseCfg)
	if err != nil {
		fail(err)
	}

	var rec *trace.Recorder
	if *doTrace {
		// Re-run with a recording engine wrapped around a fresh
		// baseline cache (the analysis is about the address stream,
		// which is scheme-independent).
		inner, err := cache.NewBaseline(cfg.ICache)
		if err != nil {
			fail(err)
		}
		rec = trace.Wrap(inner)
		m := mem.New(cfg.Mem)
		core := cpu.New(prog, m)
		core.IFetch = rec
		if _, err := core.Run(cfg.MaxInstrs); err != nil {
			fail(err)
		}
	}

	fmt.Printf("%s on %dKB/%d-way I-cache, scheme %s\n", *name, *sizeKB, *ways, *scheme)
	fmt.Printf("  instructions        %12d\n", rs.Instrs)
	fmt.Printf("  cycles              %12d  (CPI %.3f)\n", rs.Cycles, rs.CPI())
	fmt.Printf("  checksum            %#12x\n", rs.Checksum)
	s := rs.IStats
	fmt.Printf("I-cache events\n")
	fmt.Printf("  fetches             %12d\n", s.Fetches)
	fmt.Printf("  same-line skips     %12d  (%.1f%%)\n", s.SameLineHits, pct(s.SameLineHits, s.Fetches))
	fmt.Printf("  full searches       %12d  (%.1f%%)\n", s.FullSearches, pct(s.FullSearches, s.Fetches))
	fmt.Printf("  single-tag probes   %12d  (%.1f%%)\n", s.SingleSearches, pct(s.SingleSearches, s.Fetches))
	fmt.Printf("  linked accesses     %12d  (%.1f%%)\n", s.LinkedAccesses, pct(s.LinkedAccesses, s.Fetches))
	fmt.Printf("  tag comparisons     %12d  (%.2f per fetch)\n", s.TagComparisons,
		float64(s.TagComparisons)/float64(max64(s.Fetches, 1)))
	fmt.Printf("  misses              %12d  (%.3f%%)\n", s.Misses, 100*s.MissRate())
	if cfg.Scheme == energy.WayPlacement {
		fmt.Printf("  WP-area fetches     %12d  (%.1f%%)\n", s.WPAreaFetches, pct(s.WPAreaFetches, s.Fetches))
		wrong := s.HintMissedSaving + s.HintExtraAccess
		fmt.Printf("  way-hint wrong      %12d  (%.4f%%)\n", wrong, pct(wrong, s.Fetches))
		fmt.Printf("  designated fills    %12d\n", s.DesignatedFills)
	}
	if cfg.Scheme == energy.WayMemoization {
		fmt.Printf("  link writes         %12d\n", s.LinkWrites)
		fmt.Printf("  stale links         %12d\n", s.StaleLinks)
	}
	fmt.Printf("energy (arbitrary units)\n")
	fmt.Printf("  I-cache             %14.0f  (%.1f%% of baseline I-cache)\n",
		rs.Energy.ICache(), 100*energy.NormICache(rs.Energy, base.Energy))
	fmt.Printf("    tag               %14.0f\n", rs.Energy.ICacheTag)
	fmt.Printf("    data              %14.0f\n", rs.Energy.ICacheData)
	fmt.Printf("    fills             %14.0f\n", rs.Energy.ICacheFill)
	fmt.Printf("    links             %14.0f\n", rs.Energy.ICacheLink)
	fmt.Printf("  processor total     %14.0f\n", rs.Energy.Total())
	fmt.Printf("  ED product vs base  %14.3f\n",
		energy.EDProduct(rs.Energy, rs.Cycles, base.Energy, base.Cycles))
	if rec != nil {
		fmt.Printf("fetch-trace analysis (%dB lines)\n", cfg.ICache.LineBytes)
		fmt.Print(indent(trace.Summary(rec.Addrs, cfg.ICache.LineBytes, prog.Base)))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "waysim: %v\n", err)
	os.Exit(1)
}
