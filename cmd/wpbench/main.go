// Command wpbench regenerates the paper's evaluation: Table 1 and
// figures 4, 5 and 6. With no flags it runs everything.
//
// Usage:
//
//	wpbench [-table1] [-fig4] [-fig5] [-fig6] [-benchmarks a,b,c]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wayplace/internal/bench"
	"wayplace/internal/experiment"
)

func main() {
	table1 := flag.Bool("table1", false, "print the baseline configuration table")
	fig4 := flag.Bool("fig4", false, "reproduce figure 4 (initial evaluation)")
	fig5 := flag.Bool("fig5", false, "reproduce figure 5 (way-placement area sweep)")
	fig6 := flag.Bool("fig6", false, "reproduce figure 6 (cache parameter sweep)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	extensions := flag.Bool("extensions", false, "run the RAM-tag and adaptive-area extensions")
	subset := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 23)")
	csvDir := flag.String("csv", "", "also write figN.csv files into this directory")
	flag.Parse()

	all := !*table1 && !*fig4 && !*fig5 && !*fig6 && !*ablations && !*extensions
	names := bench.Names()
	if *subset != "" {
		names = strings.Split(*subset, ",")
	}

	if *table1 || all {
		fmt.Print(experiment.Table1(experiment.XScaleICache()))
		fmt.Println()
	}
	if !*fig4 && !*fig5 && !*fig6 && !*ablations && !*extensions && !all {
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %d benchmarks (build, profile, relink)...\n", len(names))
	suite, err := experiment.NewSuiteOf(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "prepared in %v\n", time.Since(start).Round(time.Millisecond))

	if *fig4 || all {
		run("figure 4", func() (string, error) {
			r, err := suite.Figure4()
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig4.csv", func(w io.Writer) error {
				return experiment.CSVFig4(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig4(r), nil
		})
	}
	if *fig5 || all {
		run("figure 5", func() (string, error) {
			r, err := suite.Figure5()
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig5.csv", func(w io.Writer) error {
				return experiment.CSVFig5(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig5(r), nil
		})
	}
	if *fig6 || all {
		run("figure 6", func() (string, error) {
			r, err := suite.Figure6()
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig6.csv", func(w io.Writer) error {
				return experiment.CSVFig6(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig6(r), nil
		})
	}
	if *extensions || all {
		run("extension: RAM-tag arrays", func() (string, error) {
			rows, err := suite.ExtensionRAMTag()
			if err != nil {
				return "", err
			}
			return experiment.FormatRAMTag(rows), nil
		})
		run("extension: adaptive area", func() (string, error) {
			rows, err := suite.ExtensionAdaptive()
			if err != nil {
				return "", err
			}
			return experiment.FormatAdaptive(rows), nil
		})
		run("extension: profile transfer", func() (string, error) {
			rows, err := suite.ExtensionProfileTransfer()
			if err != nil {
				return "", err
			}
			return experiment.FormatTransfer(rows), nil
		})
	}
	if *ablations || all {
		type abl struct {
			title string
			fn    func() ([]experiment.AblationRow, error)
		}
		for _, a := range []abl{
			{"code layout", suite.AblationLayout},
			{"way-hint prediction", suite.AblationHint},
			{"same-line tag skip", suite.AblationSameLine},
			{"replacement policy", suite.AblationReplacement},
		} {
			a := a
			run("ablation: "+a.title, func() (string, error) {
				rows, err := a.fn()
				if err != nil {
					return "", err
				}
				return experiment.FormatAblation(a.title, rows), nil
			})
		}
	}
}

// writeCSV writes one figure's CSV file when -csv is set.
func writeCSV(dir, name string, emit func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(name string, f func() (string, error)) {
	start := time.Now()
	out, err := f()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Print(out)
	fmt.Fprintf(os.Stderr, "%s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	fmt.Println()
}
