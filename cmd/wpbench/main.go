// Command wpbench regenerates the paper's evaluation: Table 1 and
// figures 4, 5 and 6. With no flags it runs everything.
//
// Simulation cells are scheduled on the concurrent experiment engine
// (internal/engine): -jobs caps the worker pool, -progress streams
// per-cell completions, and overlapping cells between figures are
// simulated once and served from the run cache thereafter. Output is
// byte-identical for every -jobs value.
//
// Every simulation cell is additionally passed through the runtime
// invariant checker (internal/check): a run whose statistics violate
// the conservation laws fails its cell rather than silently feeding a
// figure. -selfcheck goes further and runs the full differential
// harness — every benchmark under every scheme variant on the Large
// input, demanding architectural equivalence — exiting non-zero on
// any violation.
//
// Usage:
//
//	wpbench [-table1] [-fig4] [-fig5] [-fig6] [-ablations] [-extensions]
//	        [-selfcheck] [-benchmarks a,b,c] [-csv dir] [-jobs N] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"wayplace/internal/bench"
	"wayplace/internal/check"
	"wayplace/internal/engine"
	"wayplace/internal/experiment"
)

// exitCode aggregates emitter failures: a broken figure no longer
// hides the remaining figures, but the process still reports failure
// to CI.
var exitCode int

func main() {
	table1 := flag.Bool("table1", false, "print the baseline configuration table")
	fig4 := flag.Bool("fig4", false, "reproduce figure 4 (initial evaluation)")
	fig5 := flag.Bool("fig5", false, "reproduce figure 5 (way-placement area sweep)")
	fig6 := flag.Bool("fig6", false, "reproduce figure 6 (cache parameter sweep)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	extensions := flag.Bool("extensions", false, "run the RAM-tag and adaptive-area extensions")
	selfcheck := flag.Bool("selfcheck", false, "run the differential self-check suite and exit")
	subset := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 23)")
	csvDir := flag.String("csv", "", "also write figN.csv files into this directory")
	jobs := flag.Int("jobs", 0, "simulation cells to run concurrently (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-cell progress on stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	all := !*table1 && !*fig4 && !*fig5 && !*fig6 && !*ablations && !*extensions && !*selfcheck
	names := bench.Names()
	if *subset != "" {
		names = strings.Split(*subset, ",")
	}

	if *selfcheck {
		os.Exit(runSelfCheck(ctx, names, *jobs))
	}

	if *table1 || all {
		fmt.Print(experiment.Table1(experiment.XScaleICache()))
		fmt.Println()
	}
	if !*fig4 && !*fig5 && !*fig6 && !*ablations && !*extensions && !all {
		return
	}

	opts := []engine.Option{
		engine.WithWorkers(*jobs),
		engine.WithVerify(check.VerifyCell),
	}
	if *progress {
		opts = append(opts, engine.WithProgress(func(p engine.Progress) {
			cached := ""
			if p.CacheHit {
				cached = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %v%s\n",
				p.Done, p.Total, p.Spec, p.Wall.Round(time.Millisecond), cached)
		}))
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %d benchmarks (build, profile, relink)...\n", len(names))
	suite, err := experiment.NewSuiteOf(names, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "prepared in %v\n", time.Since(start).Round(time.Millisecond))

	if *fig4 || all {
		run("figure 4", func() (string, error) {
			r, err := suite.Figure4(ctx)
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig4.csv", func(w io.Writer) error {
				return experiment.CSVFig4(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig4(r), nil
		})
	}
	if *fig5 || all {
		run("figure 5", func() (string, error) {
			r, err := suite.Figure5(ctx)
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig5.csv", func(w io.Writer) error {
				return experiment.CSVFig5(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig5(r), nil
		})
	}
	if *fig6 || all {
		run("figure 6", func() (string, error) {
			r, err := suite.Figure6(ctx)
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig6.csv", func(w io.Writer) error {
				return experiment.CSVFig6(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig6(r), nil
		})
	}
	if *extensions || all {
		run("extension: RAM-tag arrays", func() (string, error) {
			rows, err := suite.ExtensionRAMTag(ctx)
			if err != nil {
				return "", err
			}
			return experiment.FormatRAMTag(rows), nil
		})
		run("extension: adaptive area", func() (string, error) {
			rows, err := suite.ExtensionAdaptive(ctx)
			if err != nil {
				return "", err
			}
			return experiment.FormatAdaptive(rows), nil
		})
		run("extension: profile transfer", func() (string, error) {
			rows, err := suite.ExtensionProfileTransfer(ctx)
			if err != nil {
				return "", err
			}
			return experiment.FormatTransfer(rows), nil
		})
	}
	if *ablations || all {
		type abl struct {
			title string
			fn    func(context.Context) ([]experiment.AblationRow, error)
		}
		for _, a := range []abl{
			{"code layout", suite.AblationLayout},
			{"way-hint prediction", suite.AblationHint},
			{"same-line tag skip", suite.AblationSameLine},
			{"replacement policy", suite.AblationReplacement},
		} {
			a := a
			run("ablation: "+a.title, func() (string, error) {
				rows, err := a.fn(ctx)
				if err != nil {
					return "", err
				}
				return experiment.FormatAblation(a.title, rows), nil
			})
		}
	}
	if hits := suite.Engine().Hits(); hits > 0 {
		fmt.Fprintf(os.Stderr, "run cache: %d simulated, %d served from cache\n",
			suite.Engine().Misses(), hits)
	}
	os.Exit(exitCode)
}

// writeCSV writes one figure's CSV file when -csv is set.
func writeCSV(dir, name string, emit func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSelfCheck prepares the named benchmarks and pushes each one, on
// its Large (reference) input, through the differential harness: all
// five scheme variants must agree architecturally and every runtime
// invariant must hold. Returns the process exit code: 0 only if every
// benchmark passes.
func runSelfCheck(ctx context.Context, names []string, jobs int) int {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %d benchmarks (build, profile, relink)...\n", len(names))
	suite, err := experiment.NewSuiteOf(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "prepared in %v\n", time.Since(start).Round(time.Millisecond))

	base := suite.Base
	base.MaxInstrs = experiment.MaxInstrs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}

	type outcome struct {
		name string
		err  error
	}
	results := make([]outcome, len(suite.Workloads))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, w := range suite.Workloads {
		wg.Add(1)
		go func(i int, w *experiment.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, err := check.Differential(ctx, w.Original, w.Placed, base, experiment.InitialWPSize)
			results[i] = outcome{name: w.Name, err: err}
		}(i, w)
	}
	wg.Wait()

	code := 0
	for _, r := range results {
		if r.err != nil {
			fmt.Printf("FAIL %-12s %v\n", r.name, r.err)
			code = 1
		} else {
			fmt.Printf("ok   %s\n", r.name)
		}
	}
	fmt.Fprintf(os.Stderr, "self-check done in %v\n", time.Since(start).Round(time.Millisecond))
	return code
}

// run executes one figure emitter. A failure is reported on stderr
// and recorded in the process exit code, but the remaining emitters
// still run.
func run(name string, f func() (string, error)) {
	start := time.Now()
	out, err := f()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %s: %v\n", name, err)
		exitCode = 1
		return
	}
	fmt.Print(out)
	fmt.Fprintf(os.Stderr, "%s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	fmt.Println()
}
