// Command wpbench regenerates the paper's evaluation: Table 1 and
// figures 4, 5 and 6. With no flags it runs everything.
//
// Simulation cells are scheduled on the concurrent experiment engine
// (internal/engine): -jobs caps the worker pool, -progress streams
// per-cell completions, and overlapping cells between figures are
// simulated once and served from the run cache thereafter. Cells that
// share a workload and fetch stream execute as single-pass multi-model
// groups (sim.RunMulti); a full run submits the union of every grid as
// a warmup batch first, so the whole evaluation costs roughly two
// producer passes per workload. Output is byte-identical for every
// -jobs value and with grouping disabled.
//
// Every simulation cell is additionally passed through the runtime
// invariant checker (internal/check): a run whose statistics violate
// the conservation laws fails its cell rather than silently feeding a
// figure. -selfcheck goes further and runs the full differential
// harness — every benchmark under every scheme variant on the Large
// input, demanding architectural equivalence — plus an execution-shape
// check that the figure 4/5 CSVs are byte-identical with single-pass
// grouping on and off, exiting non-zero on any violation.
//
// Observability (internal/obs): -metrics writes the engine's
// counters, gauges and latency histograms at exit (Prometheus text,
// or JSON for .json paths), -snapshot writes the machine-readable
// run record (BENCH_wpbench.json: grid shape, wall time, cells/sec,
// run-cache hit ratio, per-section timings), and -pprof serves
// net/http/pprof. Metrics never perturb results: figure output is
// byte-identical with and without them, and with neither flag set the
// engine runs with a nil registry that costs nothing per cell.
//
// Usage:
//
//	wpbench [-table1] [-fig4] [-fig5] [-fig6] [-ablations] [-extensions]
//	        [-selfcheck] [-benchmarks a,b,c] [-csv dir] [-jobs N] [-progress]
//	        [-metrics file] [-snapshot file] [-pprof addr]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"wayplace/internal/bench"
	"wayplace/internal/check"
	"wayplace/internal/engine"
	"wayplace/internal/experiment"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
)

// exitCode aggregates emitter failures: a broken figure no longer
// hides the remaining figures, but the process still reports failure
// to CI.
var exitCode int

// sections collects per-phase wall times (prepare, each figure /
// ablation / extension) for the -snapshot record.
var sections []obs.Section

func main() {
	table1 := flag.Bool("table1", false, "print the baseline configuration table")
	fig4 := flag.Bool("fig4", false, "reproduce figure 4 (initial evaluation)")
	fig5 := flag.Bool("fig5", false, "reproduce figure 5 (way-placement area sweep)")
	fig6 := flag.Bool("fig6", false, "reproduce figure 6 (cache parameter sweep)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	extensions := flag.Bool("extensions", false, "run the RAM-tag and adaptive-area extensions")
	selfcheck := flag.Bool("selfcheck", false, "run the differential self-check suite and exit")
	subset := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 23)")
	csvDir := flag.String("csv", "", "also write figN.csv files into this directory")
	jobs := flag.Int("jobs", 0, "simulation cells to run concurrently (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-cell progress on stderr")
	metricsOut := flag.String("metrics", "", `write engine metrics to this file at exit ("-" for stderr; a .json path selects JSON, anything else Prometheus text)`)
	snapshotOut := flag.String("snapshot", "", "write the machine-readable run snapshot (BENCH_wpbench.json format) to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	server := flag.String("server", "", "run standard grids on this wpserved instance (e.g. http://127.0.0.1:8100) so concurrent sweeps share one run cache")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "wpbench: pprof: %v\n", err)
			}
		}()
	}

	all := !*table1 && !*fig4 && !*fig5 && !*fig6 && !*ablations && !*extensions && !*selfcheck
	// Validate the benchmark subset up front: a typo or stray
	// whitespace fails here with the valid names, not deep inside the
	// workload provider as a per-cell error.
	names, err := bench.ParseSubset(*subset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %v\n", err)
		os.Exit(2)
	}

	if *selfcheck {
		os.Exit(runSelfCheck(ctx, names, *jobs))
	}

	if *table1 || all {
		fmt.Print(experiment.Table1(experiment.XScaleICache()))
		fmt.Println()
	}
	if !*fig4 && !*fig5 && !*fig6 && !*ablations && !*extensions && !all {
		return
	}

	// The registry exists only when an observability output was
	// requested; otherwise the engine sees nil and the per-cell path
	// pays nothing.
	var reg *obs.Registry
	if *metricsOut != "" || *snapshotOut != "" {
		reg = obs.NewRegistry()
	}

	opts := []engine.Option{
		engine.WithWorkers(*jobs),
		engine.WithVerify(check.VerifyCell),
		engine.WithObserver(reg),
	}
	if *progress {
		opts = append(opts, engine.WithProgress(func(p engine.Progress) {
			// Failed cells report too (engine.Progress.Err), so the
			// counter always reaches Total instead of appearing hung.
			if p.Err != nil {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s FAILED: %v\n",
					p.Done, p.Total, p.Spec, p.Err)
				return
			}
			cached := ""
			if p.CacheHit {
				cached = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %v%s\n",
				p.Done, p.Total, p.Spec, p.Wall.Round(time.Millisecond), cached)
		}))
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %d benchmarks (build, profile, relink)...\n", len(names))
	suite, err := experiment.NewSuiteOf(names, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %v\n", err)
		os.Exit(1)
	}
	prepared := time.Since(start)
	sections = append(sections, obs.Section{Name: "prepare", Seconds: prepared.Seconds()})
	fmt.Fprintf(os.Stderr, "prepared in %v\n", prepared.Round(time.Millisecond))

	if *server != "" {
		// Standard grids — every figure, the RAM-tag and adaptive
		// extensions, the flag ablations and the warmup batch — execute
		// on the shared server engine; only the layout ablation and the
		// profile-transfer extension (custom binaries) stay local. The
		// aggregation path is identical either way, so figure and CSV
		// output is byte-for-byte the same as an offline run.
		client := serve.NewClient(*server)
		if _, err := client.Health(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "wpbench: -server %s: %v\n", *server, err)
			os.Exit(1)
		}
		suite.SetRunner(serve.NewRemoteRunner(client))
		fmt.Fprintf(os.Stderr, "standard grids run on %s (shared run cache)\n", *server)
	}

	if all {
		// Full evaluation: submit the union of every grid first. The
		// engine coalesces all cells sharing a workload and fetch stream
		// into single-pass multi-model groups — roughly two producer
		// passes per workload instead of one per cell — and every figure
		// section below becomes a run-cache hit.
		run("single-pass warmup", func() (string, error) {
			specs := suite.WarmupSpecs()
			res, err := suite.RunBatch(ctx, specs)
			if err != nil {
				return "", err
			}
			groups := map[string]bool{}
			cached := 0
			for _, r := range res {
				if r.GroupID != "" {
					groups[r.GroupID] = true
				}
				if r.CacheHit {
					cached++
				}
			}
			return fmt.Sprintf("warmup: %d cells (%d unique) in %d single-pass groups, %d already cached\n",
				len(specs), len(specs)-cached, len(groups), cached), nil
		})
	}
	if *fig4 || all {
		run("figure 4", func() (string, error) {
			r, err := suite.Figure4(ctx)
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig4.csv", func(w io.Writer) error {
				return experiment.CSVFig4(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig4(r), nil
		})
	}
	if *fig5 || all {
		run("figure 5", func() (string, error) {
			r, err := suite.Figure5(ctx)
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig5.csv", func(w io.Writer) error {
				return experiment.CSVFig5(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig5(r), nil
		})
	}
	if *fig6 || all {
		run("figure 6", func() (string, error) {
			r, err := suite.Figure6(ctx)
			if err != nil {
				return "", err
			}
			if err := writeCSV(*csvDir, "fig6.csv", func(w io.Writer) error {
				return experiment.CSVFig6(w, r)
			}); err != nil {
				return "", err
			}
			return experiment.FormatFig6(r), nil
		})
	}
	if *extensions || all {
		run("extension: RAM-tag arrays", func() (string, error) {
			rows, err := suite.ExtensionRAMTag(ctx)
			if err != nil {
				return "", err
			}
			return experiment.FormatRAMTag(rows), nil
		})
		run("extension: adaptive area", func() (string, error) {
			rows, err := suite.ExtensionAdaptive(ctx)
			if err != nil {
				return "", err
			}
			return experiment.FormatAdaptive(rows), nil
		})
		run("extension: profile transfer", func() (string, error) {
			rows, err := suite.ExtensionProfileTransfer(ctx)
			if err != nil {
				return "", err
			}
			return experiment.FormatTransfer(rows), nil
		})
	}
	if *ablations || all {
		type abl struct {
			title string
			fn    func(context.Context) ([]experiment.AblationRow, error)
		}
		for _, a := range []abl{
			{"code layout", suite.AblationLayout},
			{"way-hint prediction", suite.AblationHint},
			{"same-line tag skip", suite.AblationSameLine},
			{"replacement policy", suite.AblationReplacement},
		} {
			a := a
			run("ablation: "+a.title, func() (string, error) {
				rows, err := a.fn(ctx)
				if err != nil {
					return "", err
				}
				return experiment.FormatAblation(a.title, rows), nil
			})
		}
	}
	if hits := suite.Engine().Hits(); hits > 0 {
		fmt.Fprintf(os.Stderr, "run cache: %d simulated, %d served from cache\n",
			suite.Engine().Misses(), hits)
	}
	if err := writeObservability(reg, suite, *metricsOut, *snapshotOut, time.Since(start)); err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %v\n", err)
		exitCode = 1
	}
	os.Exit(exitCode)
}

// writeObservability writes the -snapshot and -metrics outputs after
// the run completes. Both are pure observers of state the engine
// accumulated — nothing here touches figure output.
func writeObservability(reg *obs.Registry, suite *experiment.Suite, metricsOut, snapshotOut string, wall time.Duration) error {
	if snapshotOut != "" {
		command := strings.TrimSpace("wpbench " + strings.Join(os.Args[1:], " "))
		snap := experiment.NewSnapshot(command, suite, reg, wall, sections)
		if err := snap.WriteFile(snapshotOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot: %s (%d cells, %.1f cells/sec, %.0f%% run-cache hits)\n",
			snapshotOut, snap.Grid.Cells, snap.CellsPerSecond, 100*snap.CacheHitRatio)
	}
	if metricsOut != "" {
		out := io.Writer(os.Stderr)
		if metricsOut != "-" {
			f, err := os.Create(metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if strings.HasSuffix(metricsOut, ".json") {
			return reg.WriteJSON(out)
		}
		return reg.WritePrometheus(out)
	}
	return nil
}

// writeCSV writes one figure's CSV file when -csv is set.
func writeCSV(dir, name string, emit func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSelfCheck prepares the named benchmarks and pushes each one, on
// its Large (reference) input, through the differential harness: all
// five scheme variants must agree architecturally and every runtime
// invariant must hold. Returns the process exit code: 0 only if every
// benchmark passes.
func runSelfCheck(ctx context.Context, names []string, jobs int) int {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %d benchmarks (build, profile, relink)...\n", len(names))
	suite, err := experiment.NewSuiteOf(names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "prepared in %v\n", time.Since(start).Round(time.Millisecond))

	base := suite.Base
	base.MaxInstrs = experiment.MaxInstrs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}

	type outcome struct {
		name string
		err  error
	}
	results := make([]outcome, len(suite.Workloads))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, w := range suite.Workloads {
		wg.Add(1)
		go func(i int, w *experiment.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, err := check.Differential(ctx, w.Original, w.Placed, base, experiment.InitialWPSize)
			results[i] = outcome{name: w.Name, err: err}
		}(i, w)
	}
	wg.Wait()

	code := 0
	for _, r := range results {
		if r.err != nil {
			fmt.Printf("FAIL %-12s %v\n", r.name, r.err)
			code = 1
		} else {
			fmt.Printf("ok   %s\n", r.name)
		}
	}

	// Execution-shape check: the figure CSVs must be byte-identical
	// whether the engine coalesces cells into single-pass multi-model
	// groups (the default) or simulates every cell separately.
	if err := csvIdentity(ctx, suite); err != nil {
		fmt.Printf("FAIL %-12s %v\n", "csv-identity", err)
		code = 1
	} else {
		fmt.Printf("ok   csv-identity (coalesced and per-cell figure CSVs byte-identical)\n")
	}
	fmt.Fprintf(os.Stderr, "self-check done in %v\n", time.Since(start).Round(time.Millisecond))
	return code
}

// engineRunner routes a suite's standard grids onto a bespoke local
// engine (csvIdentity uses fresh engines so the comparison is not
// served from an already-warm run cache).
type engineRunner struct{ eng *engine.Engine }

func (r engineRunner) Run(ctx context.Context, specs []engine.RunSpec, opts ...engine.Option) ([]*engine.Result, error) {
	return r.eng.Run(ctx, specs, opts...)
}

// csvIdentity renders the figure 4 and 5 CSVs twice on fresh engines —
// once with single-pass grouping, once per-cell — and demands the
// bytes match exactly.
func csvIdentity(ctx context.Context, suite *experiment.Suite) error {
	wl := make(map[string]*engine.Workload, len(suite.Workloads))
	for _, w := range suite.Workloads {
		wl[w.Name] = &engine.Workload{Name: w.Name, Original: w.Original, Placed: w.Placed}
	}
	provider := func(ctx context.Context, name string) (*engine.Workload, error) {
		w, ok := wl[name]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		return w, nil
	}
	base := suite.Base
	base.MaxInstrs = experiment.MaxInstrs
	render := func(coalesce bool) ([]byte, error) {
		eng := engine.New(provider, engine.WithBaseConfig(base),
			engine.WithVerify(check.VerifyCell), engine.WithCoalesce(coalesce))
		suite.SetRunner(engineRunner{eng})
		defer suite.SetRunner(nil)
		var buf bytes.Buffer
		r4, err := suite.Figure4(ctx)
		if err != nil {
			return nil, err
		}
		if err := experiment.CSVFig4(&buf, r4); err != nil {
			return nil, err
		}
		r5, err := suite.Figure5(ctx)
		if err != nil {
			return nil, err
		}
		if err := experiment.CSVFig5(&buf, r5); err != nil {
			return nil, err
		}
		if coalesce && eng.Groups() == 0 {
			return nil, fmt.Errorf("coalesced sweep formed no single-pass groups")
		}
		if !coalesce && eng.Groups() != 0 {
			return nil, fmt.Errorf("per-cell sweep formed %d single-pass groups", eng.Groups())
		}
		return buf.Bytes(), nil
	}
	co, err := render(true)
	if err != nil {
		return err
	}
	pc, err := render(false)
	if err != nil {
		return err
	}
	if !bytes.Equal(co, pc) {
		return fmt.Errorf("figure CSVs differ between coalesced and per-cell execution")
	}
	return nil
}

// run executes one figure emitter. A failure is reported on stderr
// and recorded in the process exit code, but the remaining emitters
// still run.
func run(name string, f func() (string, error)) {
	start := time.Now()
	out, err := f()
	sections = append(sections, obs.Section{Name: name, Seconds: time.Since(start).Seconds()})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpbench: %s: %v\n", name, err)
		exitCode = 1
		return
	}
	fmt.Print(out)
	fmt.Fprintf(os.Stderr, "%s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	fmt.Println()
}
