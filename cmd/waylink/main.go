// Command waylink exercises the link-time way-placement pass on one
// benchmark: it profiles the training input, relays the binary and
// prints what the pass did — chain weights, where the hot code landed
// and the way-placement-area coverage at each candidate size.
//
// Usage:
//
//	waylink -bench sha [-top 12] [-disas 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"wayplace/internal/bench"
	"wayplace/internal/cfg"
	"wayplace/internal/experiment"
	"wayplace/internal/layout"
	"wayplace/internal/profile"
	"wayplace/internal/sim"
)

func main() {
	name := flag.String("bench", "sha", "benchmark name")
	top := flag.Int("top", 12, "how many chains to list")
	disas := flag.Int("disas", 0, "disassemble the first N instructions of the placed binary")
	saveProfile := flag.String("saveprofile", "", "write the training profile to this file")
	loadProfile := flag.String("loadprofile", "", "read the profile from this file instead of profiling")
	out := flag.String("o", "", "write the placed binary image to this file (inspect with waydump)")
	flag.Parse()

	bm, err := bench.ByName(*name)
	if err != nil {
		fail(err)
	}
	unit, err := bm.Build(bench.Small)
	if err != nil {
		fail(err)
	}
	var prof *profile.Profile
	if *loadProfile != "" {
		f, err := os.Open(*loadProfile)
		if err != nil {
			fail(err)
		}
		prof, err = profile.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		small, err := layout.LinkOriginal(unit, experiment.TextBase)
		if err != nil {
			fail(err)
		}
		prof, _, err = sim.ProfileRun(small, experiment.MaxInstrs)
		if err != nil {
			fail(err)
		}
	}
	if *saveProfile != "" {
		f, err := os.Create(*saveProfile)
		if err != nil {
			fail(err)
		}
		if _, err := prof.WriteTo(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "profile written to %s"+"\n", *saveProfile)
	}

	largeUnit, err := bm.Build(bench.Large)
	if err != nil {
		fail(err)
	}
	g, err := cfg.Build(largeUnit)
	if err != nil {
		fail(err)
	}
	chains := cfg.Chains(g)
	sort.SliceStable(chains, func(i, j int) bool {
		return chains[i].Weight(prof) > chains[j].Weight(prof)
	})

	placed, err := layout.Link(largeUnit, prof, experiment.TextBase)
	if err != nil {
		fail(err)
	}
	orig, err := layout.LinkOriginal(largeUnit, experiment.TextBase)
	if err != nil {
		fail(err)
	}

	total := prof.TotalInstrs(largeUnit)
	fmt.Printf("%s: %d blocks in %d chains, image %d bytes\n",
		*name, len(g.Nodes), len(chains), placed.Size())
	fmt.Printf("profiled dynamic instructions (training input): %d\n\n", total)

	fmt.Printf("%-4s %-28s %10s %8s %7s\n", "#", "chain head", "weight", "bytes", "share")
	for i, c := range chains {
		if i >= *top {
			fmt.Printf("     ... %d more chains\n", len(chains)-*top)
			break
		}
		w := c.Weight(prof)
		fmt.Printf("%-4d %-28s %10d %8d %6.2f%%\n",
			i+1, c.First().Block.Sym, w, c.Size(), 100*float64(w)/float64(total))
	}

	fmt.Printf("\nway-placement-area coverage (dynamic instructions inside the area)\n")
	fmt.Printf("%-10s %12s %12s\n", "area", "placed", "original")
	for _, kb := range []uint32{1, 2, 4, 8, 16} {
		fmt.Printf("%7dKB %11.2f%% %11.2f%%\n", kb,
			100*layout.Coverage(placed, prof, kb<<10),
			100*layout.Coverage(orig, prof, kb<<10))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := placed.WriteImage(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "placed binary written to %s"+"\n", *out)
	}

	if *disas > 0 {
		fmt.Printf("\nfirst %d instructions of the placed binary\n", *disas)
		for i := 0; i < *disas && i < len(placed.Code); i++ {
			addr := placed.Base + uint32(4*i)
			if blk := placed.BlockAt(i); blk != nil && blk.Addr == addr {
				fmt.Printf("%s:\n", blk.Block.Sym)
			}
			fmt.Printf("  %08x: %08x  %v\n", addr, placed.Words[i], placed.Code[i])
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "waylink: %v\n", err)
	os.Exit(1)
}
