package tlb

import (
	"testing"
	"testing/quick"
)

func cfg32() Config { return Config{Entries: 32, PageBytes: 1 << 10} }

func TestLookupHitMiss(t *testing.T) {
	b := MustNew(cfg32())
	if miss, _ := b.Lookup(0x1234); !miss {
		t.Error("cold lookup should miss")
	}
	if miss, _ := b.Lookup(0x1234); miss {
		t.Error("warm lookup should hit")
	}
	if miss, _ := b.Lookup(0x1234 + 0x400); !miss {
		t.Error("next page should miss")
	}
	if b.Stats.Accesses != 3 || b.Stats.Hits != 1 || b.Stats.Misses != 2 {
		t.Errorf("stats = %+v", b.Stats)
	}
	if mr := b.Stats.MissRate(); mr < 0.66 || mr > 0.67 {
		t.Errorf("miss rate = %f", mr)
	}
}

func TestLRUEviction(t *testing.T) {
	b := MustNew(Config{Entries: 2, PageBytes: 1 << 10})
	b.Lookup(0x0000) // page 0
	b.Lookup(0x0400) // page 1
	b.Lookup(0x0000) // touch page 0
	b.Lookup(0x0800) // page 2 evicts page 1 (LRU)
	if miss, _ := b.Lookup(0x0000); miss {
		t.Error("recently used page was evicted")
	}
	if miss, _ := b.Lookup(0x0400); !miss {
		t.Error("LRU page survived")
	}
}

func TestWPAreaBit(t *testing.T) {
	b := MustNew(cfg32())
	if err := b.SetWPArea(0x1_0000, 4<<10); err != nil {
		t.Fatalf("SetWPArea: %v", err)
	}
	cases := []struct {
		addr uint32
		want bool
	}{
		{0x1_0000, true},
		{0x1_0000 + 4<<10 - 1, true},
		{0x1_0000 + 4<<10, false},
		{0x0_ffff, false},
		{0, false},
	}
	for _, c := range cases {
		if got := b.WayPlaced(c.addr); got != c.want {
			t.Errorf("WayPlaced(%#x) = %v, want %v", c.addr, got, c.want)
		}
		// The bit delivered by a lookup must agree with the oracle.
		_, bit := b.Lookup(c.addr)
		if bit != c.want {
			t.Errorf("Lookup(%#x) bit = %v, want %v", c.addr, bit, c.want)
		}
	}
}

func TestWPAreaBitSurvivesRefill(t *testing.T) {
	// After an entry is evicted and refilled, the bit must still be
	// right (it comes from the page tables, not from stale state).
	b := MustNew(Config{Entries: 1, PageBytes: 1 << 10})
	if err := b.SetWPArea(0, 1<<10); err != nil {
		t.Fatal(err)
	}
	if _, bit := b.Lookup(0x000); !bit {
		t.Error("page 0 should be way-placed")
	}
	if _, bit := b.Lookup(0x400); bit {
		t.Error("page 1 should not be way-placed")
	}
	if _, bit := b.Lookup(0x000); !bit {
		t.Error("page 0 bit lost after refill")
	}
}

func TestSetWPAreaValidation(t *testing.T) {
	for _, tc := range []struct {
		name        string
		start, size uint32
		ok          bool
	}{
		{"zero size disables", 0, 0, true},
		{"one page", 0, 1 << 10, true},
		{"many pages", 0x1_0000, 16 << 10, true},
		{"non-page-multiple size", 0, 1000, false},
		{"sub-page size", 0, 512, false},
		{"unaligned start", 512, 1 << 10, false},
		{"unaligned start and size", 100, 100, false},
		{"last page of the address space", 0xffff_fc00, 1 << 10, true},
		{"area ends exactly at 2^32", 0xffff_f000, 4 << 10, true},
		{"area wraps past 2^32", 0xffff_fc00, 2 << 10, false},
		{"maximal wrap", 0xffff_fc00, 0xffff_fc00, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := MustNew(cfg32())
			err := b.SetWPArea(tc.start, tc.size)
			if tc.ok && err != nil {
				t.Fatalf("SetWPArea(%#x, %#x) rejected: %v", tc.start, tc.size, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("SetWPArea(%#x, %#x) accepted", tc.start, tc.size)
			}
		})
	}

	b := MustNew(cfg32())
	if err := b.SetWPArea(0, 0); err != nil {
		t.Fatalf("zero size (disabled) rejected: %v", err)
	}
	if b.WayPlaced(0) {
		t.Error("zero-size area still marks pages")
	}
}

// TestWPAreaAtTopOfAddressSpace pins the unsigned-overflow hazard:
// with the area touching the top of the 32-bit space, start+size is
// exactly 2^32 (i.e. 0 in uint32 arithmetic), and a naive
// `addr < start+size` bound would mark NO page way-placed — or, with
// a wrapped area, every low page. The page-table predicate must get
// both edges right.
func TestWPAreaAtTopOfAddressSpace(t *testing.T) {
	b := MustNew(cfg32())
	if err := b.SetWPArea(0xffff_f000, 4<<10); err != nil {
		t.Fatalf("SetWPArea: %v", err)
	}
	for _, tc := range []struct {
		addr uint32
		want bool
	}{
		{0xffff_f000, true},
		{0xffff_ffff, true}, // very last byte
		{0xffff_efff, false},
		{0x0000_0000, false}, // no wrap-around marking
		{0x0001_0000, false},
	} {
		if got := b.WayPlaced(tc.addr); got != tc.want {
			t.Errorf("WayPlaced(%#x) = %v, want %v", tc.addr, got, tc.want)
		}
		if got := b.PageWayPlaced(tc.addr); got != tc.want {
			t.Errorf("PageWayPlaced(%#x) = %v, want %v", tc.addr, got, tc.want)
		}
		if _, bit := b.Lookup(tc.addr); bit != tc.want {
			t.Errorf("Lookup(%#x) bit = %v, want %v", tc.addr, bit, tc.want)
		}
	}
}

func TestInvalidate(t *testing.T) {
	b := MustNew(Config{Entries: 4, PageBytes: 1 << 10})
	if err := b.SetWPArea(0, 2<<10); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint32{0x000, 0x400, 0x800} {
		b.Lookup(addr)
	}
	if got := len(b.Resident()); got != 3 {
		t.Fatalf("%d resident entries before invalidate, want 3", got)
	}

	b.Invalidate()
	if got := len(b.Resident()); got != 0 {
		t.Fatalf("%d resident entries after invalidate, want 0", got)
	}
	if b.Stats.Invalidates != 1 {
		t.Errorf("Invalidates = %d, want 1", b.Stats.Invalidates)
	}
	// The same-page fast path must be cleared too: the very next
	// lookup is a miss even for the page the last lookup touched.
	before := b.Stats.Misses
	if miss, _ := b.Lookup(0x800); !miss {
		t.Error("lookup after invalidate hit a dead entry")
	}
	if b.Stats.Misses != before+1 {
		t.Errorf("Misses = %d, want %d", b.Stats.Misses, before+1)
	}
	// And refills deliver the page-table truth.
	if _, bit := b.Lookup(0x400); !bit {
		t.Error("refilled entry lost the way-placed bit")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, c := range []Config{{Entries: 0, PageBytes: 1024}, {Entries: 4, PageBytes: 1000}, {Entries: 4, PageBytes: 0}} {
		if _, err := New(c); err == nil {
			t.Errorf("New(%+v) accepted invalid config", c)
		}
	}
}

// Property: a second consecutive lookup of the same address always
// hits, regardless of history.
func TestRelookupAlwaysHits(t *testing.T) {
	b := MustNew(Config{Entries: 4, PageBytes: 1 << 10})
	f := func(addr uint32) bool {
		b.Lookup(addr)
		miss, _ := b.Lookup(addr)
		return !miss
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageShift(t *testing.T) {
	if got := cfg32().PageShift(); got != 10 {
		t.Errorf("PageShift = %d, want 10", got)
	}
}
