// Package tlb models the instruction and data translation lookaside
// buffers of the simulated platform: small fully-associative arrays
// (32 entries on the paper's machine).
//
// The I-TLB carries the paper's single-bit extension: a way-placement
// bit per page, set by the operating system for every page inside the
// way-placement area (section 4.1). The area is a multiple of the page
// size, so one bit per page suffices, and the OS can resize it per
// program — or per cache configuration — without touching the binary.
package tlb

import (
	"fmt"
	"math/bits"
)

// Config describes a TLB.
type Config struct {
	Entries   int
	PageBytes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb: need at least one entry, got %d", c.Entries)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("tlb: page size must be a power of two, got %d", c.PageBytes)
	}
	return nil
}

// PageShift returns log2 of the page size.
func (c Config) PageShift() int { return bits.TrailingZeros(uint(c.PageBytes)) }

// Stats counts TLB events.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	// Invalidates counts whole-TLB invalidations (the OS must issue
	// one whenever it rewrites way-placement bits in the page tables,
	// or resident entries keep delivering the old bits).
	Invalidates uint64
}

// MissRate returns misses/accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type entry struct {
	valid   bool
	vpn     uint32
	wayBit  bool
	lastUse uint64
}

// TLB is a fully-associative translation buffer with true-LRU
// replacement. Translation itself is the identity (the simulated
// system runs physically mapped); what matters to the evaluation is
// hit/miss timing and the way-placement bit.
type TLB struct {
	Cfg   Config
	Stats Stats

	entries []entry
	tick    uint64

	lastValid bool
	lastVPN   uint32
	lastIdx   int

	// Way-placement area: [wpStart, wpStart+wpSize). Pages whose first
	// byte lies inside get the way-placement bit. Zero size disables.
	wpStart uint32
	wpSize  uint32
}

// New builds an empty TLB.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &TLB{Cfg: cfg, entries: make([]entry, cfg.Entries)}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// SetWPArea installs the operating system's way-placement area
// decision. size must be a multiple of the page size (the paper makes
// the area page-granular so one bit per I-TLB entry suffices), and the
// area must fit below the top of the 32-bit address space.
//
// SetWPArea only rewrites the page-table side of the bit. Entries
// already resident in the TLB keep the bit they were filled with —
// exactly like hardware — so an OS that changes the area mid-run must
// also call Invalidate, or stale bits survive until eviction.
func (t *TLB) SetWPArea(start, size uint32) error {
	if size%uint32(t.Cfg.PageBytes) != 0 {
		return fmt.Errorf("tlb: way-placement area size %d is not a multiple of the %dB page",
			size, t.Cfg.PageBytes)
	}
	if start%uint32(t.Cfg.PageBytes) != 0 {
		return fmt.Errorf("tlb: way-placement area start %#x is not page-aligned", start)
	}
	if uint64(start)+uint64(size) > 1<<32 {
		return fmt.Errorf("tlb: way-placement area [%#x, %#x+%#x) wraps the 32-bit address space",
			start, start, size)
	}
	t.wpStart, t.wpSize = start, size
	return nil
}

// Invalidate drops every resident entry and the single-entry fast-path
// cache, as an OS TLB-invalidate instruction would. The operating
// system must issue one after any SetWPArea change during execution:
// resident entries carry the way-placement bit they were filled with,
// and serving a stale bit makes the hardware's placement disagree with
// the page tables (see internal/check's coherence invariant).
func (t *TLB) Invalidate() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.lastValid, t.lastVPN, t.lastIdx = false, 0, 0
	t.Stats.Invalidates++
}

// WPArea returns the installed way-placement area.
func (t *TLB) WPArea() (start, size uint32) { return t.wpStart, t.wpSize }

// pageWayPlaced is what the OS writes into the page tables: the
// way-placement bit for the page containing addr.
func (t *TLB) pageWayPlaced(addr uint32) bool {
	if t.wpSize == 0 {
		return false
	}
	page := addr &^ uint32(t.Cfg.PageBytes-1)
	return page >= t.wpStart && page-t.wpStart < t.wpSize
}

// Lookup translates addr, returning whether it missed (requiring a
// page-table walk) and the page's way-placement bit.
func (t *TLB) Lookup(addr uint32) (miss bool, wayPlaced bool) {
	t.Stats.Accesses++
	t.tick++
	vpn := addr >> t.Cfg.PageShift()
	// Fast path: consecutive fetches overwhelmingly stay on one page.
	if t.lastValid && t.lastVPN == vpn {
		t.Stats.Hits++
		t.entries[t.lastIdx].lastUse = t.tick
		return false, t.entries[t.lastIdx].wayBit
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			t.Stats.Hits++
			e.lastUse = t.tick
			t.lastValid, t.lastVPN, t.lastIdx = true, vpn, i
			return false, e.wayBit
		}
	}
	t.Stats.Misses++
	// Walk and refill: choose the LRU (or first invalid) entry.
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lastUse < t.entries[victim].lastUse {
			victim = i
		}
	}
	bit := t.pageWayPlaced(addr)
	t.entries[victim] = entry{valid: true, vpn: vpn, wayBit: bit, lastUse: t.tick}
	t.lastValid, t.lastVPN, t.lastIdx = true, vpn, victim
	return true, bit
}

// BulkHits charges n further accesses to the page of the most recent
// Lookup, all hits. It is the batched equivalent of n Lookup calls
// that stay on one page: the single-entry fast path would serve each
// of them, so only the entry's recency and the counters change. The
// caller must have completed at least one Lookup and guarantee the n
// accesses address the same page (sim.RunMulti segments the fetch
// stream so a run never crosses a page boundary).
func (t *TLB) BulkHits(n uint64) {
	if n == 0 || !t.lastValid {
		return
	}
	t.Stats.Accesses += n
	t.Stats.Hits += n
	t.tick += n
	t.entries[t.lastIdx].lastUse = t.tick
}

// WayPlaced implements cache.WPOracle: the way-placement bit the
// I-TLB delivers for addr. The bit comes from the *resident entry*
// when the page is in the TLB — the hardware reads it from the entry
// in parallel with the cache probe, so a stale entry delivers a stale
// bit. Non-resident pages fall back to the page-table property: the
// walk (charged by the CPU via Lookup, which runs first) installs the
// entry with the current bit before the fetch consumes it. No stats
// are charged; the access was already counted by Lookup.
func (t *TLB) WayPlaced(addr uint32) bool {
	vpn := addr >> t.Cfg.PageShift()
	if t.lastValid && t.lastVPN == vpn {
		return t.entries[t.lastIdx].wayBit
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			return e.wayBit
		}
	}
	return t.pageWayPlaced(addr)
}

// ResidentPage describes one valid TLB entry: the virtual page number
// and the way-placement bit the entry would deliver.
type ResidentPage struct {
	VPN    uint32
	WayBit bool
}

// Resident returns every valid entry, in no particular order, without
// charging any events. Diagnostic helper: internal/check compares each
// resident bit against PageWayPlaced to detect stale way-bits.
func (t *TLB) Resident() []ResidentPage {
	var out []ResidentPage
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid {
			out = append(out, ResidentPage{VPN: e.vpn, WayBit: e.wayBit})
		}
	}
	return out
}

// PageWayPlaced exposes the page-table side of the bit for the page
// containing addr — what a fresh walk would install, independent of
// any resident entry. Diagnostic helper for coherence checks.
func (t *TLB) PageWayPlaced(addr uint32) bool { return t.pageWayPlaced(addr) }
