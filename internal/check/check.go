// Package check is the repository's correctness layer: runtime
// invariants over simulation statistics and a differential harness
// that cross-examines the fetch schemes against each other.
//
// The paper's saving rests on bookkeeping that is easy to silently get
// wrong — the I-TLB way-placement bit must agree with the page tables,
// the hint counters must partition the fetch stream, the energy model
// must only ever be fed event counts that add up. Each invariant here
// is a conservation law the simulator must obey on *every* run, so a
// future change that breaks the accounting is caught mechanically
// rather than by a reviewer squinting at a figure. The differential
// harness (diff.go) layers architectural equivalence on top: every
// scheme must compute the same answer.
//
// The invariant entry point, Run (aliased VerifyCell), has exactly the
// shape engine.WithVerify expects, so any experiment grid can opt in
// to per-cell verification.
package check

import (
	"errors"
	"fmt"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/sim"
	"wayplace/internal/tlb"
)

// eq records one violated equality.
func eq(errs *[]error, what string, got, want uint64) {
	if got != want {
		*errs = append(*errs, fmt.Errorf("%s: got %d, want %d", what, got, want))
	}
}

// le records one violated ordering.
func le(errs *[]error, what string, got, bound uint64) {
	if got > bound {
		*errs = append(*errs, fmt.Errorf("%s: %d exceeds %d", what, got, bound))
	}
}

// ICacheStats checks the instruction-side conservation laws for one
// scheme's fetch engine:
//
//   - Fetches = Hits + Misses, and every miss fills exactly one line;
//   - the access kinds (same-line, single-probe, full-search, linked)
//     account for every fetch, per scheme;
//   - the four hint counters partition the non-same-line fetches
//     (way-placement only), with HintCorrectWP = WPAccesses;
//   - TagComparisons = W*FullSearches + SingleSearches — the energy
//     model charges per comparison, so this sum is what keeps the
//     reported saving honest;
//   - fills split exactly into designated and policy-chosen ways.
//
// oracleHint asserts the stricter laws of the perfect-hint ablation
// (the hint can then never mispredict).
func ICacheStats(cfg cache.Config, scheme energy.Scheme, oracleHint bool, s cache.Stats) error {
	var errs []error
	w := uint64(cfg.Ways)

	eq(&errs, "I$ hits+misses vs fetches", s.Hits+s.Misses, s.Fetches)
	eq(&errs, "I$ line fills vs misses", s.LineFills, s.Misses)
	eq(&errs, "I$ designated+non-designated fills vs fills",
		s.DesignatedFills+s.NonDesignatedFills, s.LineFills)
	eq(&errs, "I$ tag comparisons", s.TagComparisons, w*s.FullSearches+s.SingleSearches)
	eq(&errs, "I$ data writes on the instruction side", s.DataWrites, 0)
	eq(&errs, "I$ writebacks on the instruction side", s.Writebacks, 0)
	le(&errs, "I$ WP-area fetches vs fetches", s.WPAreaFetches, s.Fetches)

	switch scheme {
	case energy.Baseline:
		eq(&errs, "baseline full searches vs fetches", s.FullSearches, s.Fetches)
		eq(&errs, "baseline same-line hits", s.SameLineHits, 0)
		eq(&errs, "baseline single searches", s.SingleSearches, 0)
		eq(&errs, "baseline linked accesses", s.LinkedAccesses, 0)
		eq(&errs, "baseline hint counters",
			s.HintCorrectWP+s.HintCorrectNon+s.HintMissedSaving+s.HintExtraAccess, 0)
		eq(&errs, "baseline WP accesses", s.WPAccesses, 0)
		eq(&errs, "baseline designated fills", s.DesignatedFills, 0)
		eq(&errs, "baseline data reads vs fetches", s.DataReads, s.Fetches)

	case energy.WayPlacement:
		// The hint counters partition the non-same-line fetches.
		eq(&errs, "WP hint counters vs non-same-line fetches",
			s.HintCorrectWP+s.HintCorrectNon+s.HintMissedSaving+s.HintExtraAccess,
			s.Fetches-s.SameLineHits)
		eq(&errs, "WP single-tag accesses vs correct-WP hints", s.WPAccesses, s.HintCorrectWP)
		eq(&errs, "WP single searches", s.SingleSearches, s.HintCorrectWP+s.HintExtraAccess)
		eq(&errs, "WP full searches", s.FullSearches,
			s.HintCorrectNon+s.HintMissedSaving+s.HintExtraAccess)
		eq(&errs, "WP linked accesses", s.LinkedAccesses, 0)
		eq(&errs, "WP link writes", s.LinkWrites, 0)
		// A wrong WP-predicted hint costs a wasted probe *and* read
		// before the full access: one extra data read per extra access.
		eq(&errs, "WP data reads vs fetches+extras", s.DataReads, s.Fetches+s.HintExtraAccess)
		le(&errs, "WP single-tag accesses vs WP-area fetches", s.WPAccesses, s.WPAreaFetches)
		if oracleHint {
			eq(&errs, "oracle hint extra accesses", s.HintExtraAccess, 0)
			eq(&errs, "oracle hint missed savings", s.HintMissedSaving, 0)
		}

	case energy.WayMemoization:
		eq(&errs, "waymem access kinds vs fetches",
			s.SameLineHits+s.LinkedAccesses+s.FullSearches, s.Fetches)
		eq(&errs, "waymem single searches", s.SingleSearches, 0)
		eq(&errs, "waymem hint counters",
			s.HintCorrectWP+s.HintCorrectNon+s.HintMissedSaving+s.HintExtraAccess, 0)
		eq(&errs, "waymem WP accesses", s.WPAccesses, 0)
		eq(&errs, "waymem designated fills", s.DesignatedFills, 0)
		eq(&errs, "waymem data reads vs fetches", s.DataReads, s.Fetches)
		le(&errs, "waymem stale links vs full searches", s.StaleLinks, s.FullSearches)
		le(&errs, "waymem linked accesses vs hits", s.LinkedAccesses, s.Hits)

	default:
		errs = append(errs, fmt.Errorf("unknown scheme %v", scheme))
	}
	return errors.Join(errs...)
}

// DCacheStats checks the data-side conservation laws: one probe-all
// access per load or store, write-allocate fills on every miss, and
// writebacks only for previously filled dirty lines.
func DCacheStats(cfg cache.Config, s cache.Stats) error {
	var errs []error
	eq(&errs, "D$ accesses vs hits+misses", s.DataReads+s.DataWrites, s.Hits+s.Misses)
	eq(&errs, "D$ full searches vs accesses", s.FullSearches, s.Hits+s.Misses)
	eq(&errs, "D$ tag comparisons", s.TagComparisons, uint64(cfg.Ways)*s.FullSearches)
	eq(&errs, "D$ line fills vs misses", s.LineFills, s.Misses)
	eq(&errs, "D$ instruction fetches on the data side", s.Fetches, 0)
	eq(&errs, "D$ same-line hits", s.SameLineHits, 0)
	eq(&errs, "D$ single searches", s.SingleSearches, 0)
	eq(&errs, "D$ linked accesses", s.LinkedAccesses, 0)
	le(&errs, "D$ writebacks vs fills", s.Writebacks, s.LineFills)
	return errors.Join(errs...)
}

// TLBStats checks that every access is either a hit or a miss.
func TLBStats(name string, s tlb.Stats) error {
	var errs []error
	eq(&errs, name+" hits+misses vs accesses", s.Hits+s.Misses, s.Accesses)
	return errors.Join(errs...)
}

// EnergyBreakdown rejects negative or non-finite energy components —
// the model is a sum of non-negative per-event charges, so a negative
// component always means corrupted event counts.
func EnergyBreakdown(b energy.Breakdown) error {
	var errs []error
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"I$ tag", b.ICacheTag}, {"I$ data", b.ICacheData},
		{"I$ fill", b.ICacheFill}, {"I$ link", b.ICacheLink},
		{"D$", b.DCache}, {"I-TLB", b.ITLB}, {"D-TLB", b.DTLB}, {"core", b.Core},
	} {
		if !(c.v >= 0) { // catches negatives and NaNs
			errs = append(errs, fmt.Errorf("energy component %s is %v", c.name, c.v))
		}
	}
	return errors.Join(errs...)
}

// WPBijective verifies the paper's placement property: when the
// way-placement area does not exceed the cache capacity, every line of
// the area must have its own designated (set, way) — the address bits
// used as set index and way selector must not alias inside the area.
// Checked by enumeration, not by trusting the bit arithmetic.
func WPBijective(cfg cache.Config, start, size uint32) error {
	if size == 0 {
		return nil
	}
	lines := size / uint32(cfg.LineBytes)
	capacity := uint32(cfg.Sets() * cfg.Ways)
	if lines > capacity {
		// Over-committed areas alias by pigeonhole; the scheme accepts
		// that (the shrink heuristic exists for it), so nothing to check.
		return nil
	}
	seen := make(map[[2]int]uint32, lines)
	for i := uint32(0); i < lines; i++ {
		addr := start + i*uint32(cfg.LineBytes)
		key := [2]int{cfg.SetOf(addr), cfg.WayOf(addr)}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("WP area [%#x,+%#x) not bijective: lines %#x and %#x share (set %d, way %d)",
				start, size, prev, addr, key[0], key[1])
		}
		seen[key] = addr
	}
	return nil
}

// TLBCoherence verifies that every resident I-TLB entry delivers the
// way-placement bit the page tables currently hold. This is the
// invariant the stale-way-bit bug broke: an OS that resizes the area
// without invalidating the TLB leaves entries whose bit reflects the
// *previous* area, and the hardware places lines where the OS no
// longer expects them.
func TLBCoherence(t *tlb.TLB) error {
	var errs []error
	shift := t.Cfg.PageShift()
	for _, r := range t.Resident() {
		addr := r.VPN << shift
		if want := t.PageWayPlaced(addr); r.WayBit != want {
			errs = append(errs, fmt.Errorf(
				"stale I-TLB way-bit: page %#x resident with bit %v, page tables say %v",
				addr, r.WayBit, want))
		}
	}
	return errors.Join(errs...)
}

// Run checks every invariant that holds after any completed simulation
// run: per-structure conservation laws, cross-structure accounting
// (one I-fetch and one I-TLB access per instruction, one D-TLB access
// per data-cache access), WP-area bijectivity and non-negative energy.
func Run(cfg sim.Config, rs *sim.RunStats) error {
	if rs == nil {
		return errors.New("check: nil run stats")
	}
	var errs []error

	if rs.Instrs == 0 {
		errs = append(errs, errors.New("run retired no instructions"))
	}
	if rs.Cycles < rs.Instrs {
		errs = append(errs, fmt.Errorf("cycles %d below instruction count %d (single-issue core)",
			rs.Cycles, rs.Instrs))
	}
	eq(&errs, "I-fetches vs instructions", rs.IStats.Fetches, rs.Instrs)
	eq(&errs, "I-TLB accesses vs instructions", rs.ITLBStats.Accesses, rs.Instrs)
	eq(&errs, "D-TLB accesses vs D$ accesses",
		rs.DTLBStats.Accesses, rs.DStats.Hits+rs.DStats.Misses)

	if err := ICacheStats(cfg.ICache, rs.Scheme, cfg.OracleHint, rs.IStats); err != nil {
		errs = append(errs, err)
	}
	if err := DCacheStats(cfg.DCache, rs.DStats); err != nil {
		errs = append(errs, err)
	}
	if err := TLBStats("I-TLB", rs.ITLBStats); err != nil {
		errs = append(errs, err)
	}
	if err := TLBStats("D-TLB", rs.DTLBStats); err != nil {
		errs = append(errs, err)
	}
	if err := EnergyBreakdown(rs.Energy); err != nil {
		errs = append(errs, err)
	}
	if rs.Scheme == energy.WayPlacement {
		// Bijectivity depends only on the line index modulo the cache
		// capacity, so the image base does not matter; callers that
		// know the real base can also check it directly.
		if err := WPBijective(cfg.ICache, 0, cfg.WPSize); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("check: %s/%v: %w", sizeName(cfg), rs.Scheme, errors.Join(errs...))
	}
	return nil
}

// VerifyCell is Run under the name and shape engine.WithVerify
// expects, so experiment grids can enable per-cell verification with
// engine.WithVerify(check.VerifyCell).
func VerifyCell(cfg sim.Config, rs *sim.RunStats) error { return Run(cfg, rs) }

// sizeName renders the machine geometry for error messages.
func sizeName(cfg sim.Config) string {
	return fmt.Sprintf("%dKB-%dway", cfg.ICache.SizeBytes>>10, cfg.ICache.Ways)
}
