package check

import (
	"strings"
	"testing"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/layout"
	"wayplace/internal/progen"
	"wayplace/internal/sim"
	"wayplace/internal/tlb"
)

const textBase = 0x0001_0000

// runProgen executes one progen program under the given scheme and
// returns the (config, stats) pair the invariants consume.
func runProgen(t *testing.T, seed uint64, scheme energy.Scheme, mutate func(*sim.Config)) (sim.Config, *sim.RunStats) {
	t.Helper()
	p := progen.Program(seed, progen.DefaultOptions(), textBase)
	cfg := sim.Default()
	cfg.MaxInstrs = 10_000_000
	cfg.Scheme = scheme
	if scheme == energy.WayPlacement {
		cfg.WPSize = 2 << 10
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rs, err := sim.Run(p, cfg)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return cfg, rs
}

func TestRunInvariantsHoldPerScheme(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme energy.Scheme
		mutate func(*sim.Config)
	}{
		{"baseline", energy.Baseline, nil},
		{"waymem", energy.WayMemoization, nil},
		{"wayplace", energy.WayPlacement, nil},
		{"wayplace-oracle", energy.WayPlacement, func(c *sim.Config) { c.OracleHint = true }},
		{"wayplace-nosameline", energy.WayPlacement, func(c *sim.Config) { c.NoSameLine = true }},
		{"wayplace-lru", energy.WayPlacement, func(c *sim.Config) {
			c.ICache.Policy = cache.LRU
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				cfg, rs := runProgen(t, seed, tc.scheme, tc.mutate)
				if err := Run(cfg, rs); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestRunCatchesCorruptedStats corrupts one counter at a time and
// demands a violation: the invariants must have teeth, not just pass
// on healthy runs.
func TestRunCatchesCorruptedStats(t *testing.T) {
	for _, tc := range []struct {
		name    string
		scheme  energy.Scheme
		corrupt func(*sim.RunStats)
		want    string
	}{
		{"lost fetch", energy.Baseline,
			func(rs *sim.RunStats) { rs.IStats.Fetches++ }, "hits+misses"},
		{"phantom hit", energy.WayPlacement,
			func(rs *sim.RunStats) { rs.IStats.Hits++ }, "hits+misses"},
		{"uncounted tag compare", energy.WayPlacement,
			func(rs *sim.RunStats) { rs.IStats.TagComparisons-- }, "tag comparisons"},
		{"fill without miss", energy.WayMemoization,
			func(rs *sim.RunStats) { rs.IStats.LineFills++ }, "line fills"},
		{"hint counter drift", energy.WayPlacement,
			func(rs *sim.RunStats) { rs.IStats.HintCorrectNon++ }, "hint counters"},
		{"WP access without hint", energy.WayPlacement,
			func(rs *sim.RunStats) { rs.IStats.WPAccesses++ }, "correct-WP hints"},
		{"dcache access drift", energy.Baseline,
			func(rs *sim.RunStats) { rs.DStats.DataReads++ }, "D$ accesses"},
		{"tlb access drift", energy.Baseline,
			func(rs *sim.RunStats) { rs.ITLBStats.Misses-- }, "I-TLB"},
		{"time ran backwards", energy.Baseline,
			func(rs *sim.RunStats) { rs.Cycles = rs.Instrs - 1 }, "cycles"},
		{"negative energy", energy.Baseline,
			func(rs *sim.RunStats) { rs.Energy.Core = -1 }, "energy component"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, rs := runProgen(t, 3, tc.scheme, nil)
			tc.corrupt(rs)
			err := Run(cfg, rs)
			if err == nil {
				t.Fatal("corrupted stats passed the invariants")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("violation %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWPBijective cross-checks the closed-form placement property by
// brute force on several geometries: any page-aligned area up to the
// cache capacity gets distinct designated (set, way) pairs, and
// over-committed areas are accepted (the shrink heuristic owns them).
func TestWPBijective(t *testing.T) {
	geoms := []cache.Config{
		{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32, Policy: cache.RoundRobin},
		{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32, Policy: cache.RoundRobin},
		{SizeBytes: 4 << 10, Ways: 4, LineBytes: 16, Policy: cache.RoundRobin},
		{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, Policy: cache.RoundRobin},
	}
	starts := []uint32{0, textBase, 0xfff0_0000}
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		capacity := uint32(g.Sets() * g.Ways * g.LineBytes)
		for _, start := range starts {
			for _, size := range []uint32{0, uint32(g.LineBytes), capacity / 2, capacity, capacity * 2} {
				if err := WPBijective(g, start, size); err != nil {
					t.Errorf("%+v start=%#x size=%d: %v", g, start, size, err)
				}
			}
		}
	}
}

func TestTLBCoherence(t *testing.T) {
	b := tlb.MustNew(tlb.Config{Entries: 8, PageBytes: 1 << 10})
	if err := b.SetWPArea(textBase, 2<<10); err != nil {
		t.Fatal(err)
	}
	// Make both area pages and one outside page resident.
	for _, addr := range []uint32{textBase, textBase + 1<<10, textBase + 4<<10} {
		b.Lookup(addr)
	}
	if err := TLBCoherence(b); err != nil {
		t.Fatalf("fresh entries reported stale: %v", err)
	}
	// The OS shrinks the area without invalidating: the second page's
	// resident bit is now stale.
	if err := b.SetWPArea(textBase, 1<<10); err != nil {
		t.Fatal(err)
	}
	err := TLBCoherence(b)
	if err == nil {
		t.Fatal("stale way-bit not detected after resize without invalidate")
	}
	if !strings.Contains(err.Error(), "stale I-TLB way-bit") {
		t.Errorf("unexpected violation text: %v", err)
	}
	// The fix: invalidate restores coherence.
	b.Invalidate()
	if err := TLBCoherence(b); err != nil {
		t.Fatalf("coherence violated after invalidate: %v", err)
	}
	if b.Stats.Invalidates != 1 {
		t.Errorf("Invalidates = %d, want 1", b.Stats.Invalidates)
	}
}

func TestRunRejectsNil(t *testing.T) {
	if err := Run(sim.Default(), nil); err == nil {
		t.Error("nil stats accepted")
	}
}

// TestVerifyCellOnRelaidBinary runs the invariants over a profile-
// guided relaid program, the combination the engine verifies in
// production grids.
func TestVerifyCellOnRelaidBinary(t *testing.T) {
	p := progen.Program(7, progen.DefaultOptions(), textBase)
	prof, _, err := sim.ProfileRun(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	u := progen.Unit(7, progen.DefaultOptions())
	placed, err := layout.Link(u, prof, textBase)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.MaxInstrs = 10_000_000
	cfg.Scheme = energy.WayPlacement
	cfg.WPSize = 1 << 10
	rs, err := sim.Run(placed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCell(cfg, rs); err != nil {
		t.Errorf("VerifyCell: %v", err)
	}
}
