package check

import (
	"context"
	"testing"

	"wayplace/internal/layout"
	"wayplace/internal/progen"
	"wayplace/internal/sim"
)

// FuzzDifferential drives randomly generated programs through the
// full differential harness: whatever control flow and memory traffic
// progen emits, all five scheme variants must agree architecturally
// and every stat invariant must hold. The seed parity picks the
// single-pass execution shape — coalesced multi-model passes or
// per-cell single-model passes — so both shapes of sim.RunMulti are
// fuzzed against the coupled reference. The seed corpus runs on every
// plain `go test`, so the harness is exercised on each tier-1 pass
// even without -fuzz.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		u := progen.Unit(seed, progen.DefaultOptions())
		original, err := layout.LinkOriginal(u, textBase)
		if err != nil {
			t.Fatalf("link original: %v", err)
		}
		cfg := sim.Default()
		cfg.MaxInstrs = 10_000_000
		prof, _, err := sim.ProfileRun(original, cfg.MaxInstrs)
		if err != nil {
			// progen guarantees termination, so a budget blowout here
			// is a generator bug worth failing on.
			t.Fatalf("profile: %v", err)
		}
		placed, err := layout.Link(u, prof, textBase)
		if err != nil {
			t.Fatalf("link placed: %v", err)
		}
		if _, err := DifferentialMode(context.Background(), original, placed, cfg, 2<<10, seed%2 == 0); err != nil {
			t.Fatalf("differential (seed %d): %v", seed, err)
		}
	})
}
