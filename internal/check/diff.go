package check

// The differential harness: run one program under every fetch scheme
// and layout combination the repository evaluates and demand that they
// agree wherever the architecture says they must. The fetch schemes
// are pure cache-management policies — none of them may change what
// the program computes — so the checksum, the retired instruction
// count and the final memory contents must be identical across all of
// them, and a handful of orderings must hold between their statistics
// (a scheme that claims to save tag comparisons must actually perform
// fewer). Every variant's statistics additionally pass the full
// invariant suite of check.go.

import (
	"context"
	"errors"
	"fmt"

	"wayplace/internal/energy"
	"wayplace/internal/obj"
	"wayplace/internal/sim"
)

// Variant is one scheme/layout combination executed by Differential.
type Variant struct {
	Name  string
	Stats *sim.RunStats
	// Changes is the OS resize trace (adaptive variant only).
	Changes []sim.AreaChange
}

// Differential runs original and placed images of one program under
// all five scheme variants — baseline, way-memoization, way-placement,
// way-placement with the oracle hint, and way-placement under the
// OS-adaptive area policy — and checks per-variant invariants plus
// cross-variant architectural equivalence. The returned variants are
// always complete when err reports only check violations; a nil stats
// slice means a variant failed to execute at all.
func Differential(ctx context.Context, original, placed *obj.Program, base sim.Config, wpSize uint32) ([]Variant, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type runSpec struct {
		name   string
		prog   *obj.Program
		cfg    sim.Config
		oracle bool
	}
	mk := func(name string, prog *obj.Program, scheme energy.Scheme, wp uint32, oracle bool) runSpec {
		cfg := base
		cfg.Scheme = scheme
		cfg.WPSize = wp
		cfg.OracleHint = oracle
		return runSpec{name: name, prog: prog, cfg: cfg, oracle: oracle}
	}
	specs := []runSpec{
		mk("baseline", original, energy.Baseline, 0, false),
		mk("waymem", original, energy.WayMemoization, 0, false),
		mk("wayplace", placed, energy.WayPlacement, wpSize, false),
		mk("wayplace-oracle", placed, energy.WayPlacement, wpSize, true),
	}

	var errs []error
	variants := make([]Variant, 0, len(specs)+1)
	for _, s := range specs {
		rs, err := sim.RunContext(ctx, s.prog, s.cfg)
		if err != nil {
			return variants, fmt.Errorf("check: differential %s: %w", s.name, err)
		}
		if err := Run(s.cfg, rs); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", s.name, err))
		}
		variants = append(variants, Variant{Name: s.name, Stats: rs})
	}

	// Adaptive variant: the OS resizes the area mid-run, so on top of
	// the per-run invariants every area the OS ever installed must
	// place bijectively while it fits the cache.
	acfg := base
	acfg.Scheme = energy.WayPlacement
	pol := sim.DefaultAdaptivePolicy(base.ICache, base.ITLB.PageBytes)
	ars, changes, err := sim.RunAdaptive(ctx, placed, acfg, pol)
	if err != nil {
		return variants, fmt.Errorf("check: differential wayplace-adaptive: %w", err)
	}
	acfg.WPSize = pol.StartSize
	if err := Run(acfg, ars); err != nil {
		errs = append(errs, fmt.Errorf("wayplace-adaptive: %w", err))
	}
	for _, ch := range changes {
		if err := WPBijective(base.ICache, placed.Base, ch.Size); err != nil {
			errs = append(errs, fmt.Errorf("wayplace-adaptive at instr %d: %w", ch.AtInstr, err))
		}
	}
	variants = append(variants, Variant{Name: "wayplace-adaptive", Stats: ars, Changes: changes})

	errs = append(errs, equivalence(variants)...)
	if len(errs) > 0 {
		return variants, fmt.Errorf("check: differential: %w", errors.Join(errs...))
	}
	return variants, nil
}

// equivalence holds the cross-variant laws: identical architectural
// outcome everywhere, and the stat orderings the schemes' saving
// claims rest on.
func equivalence(vs []Variant) []error {
	var errs []error
	byName := make(map[string]*sim.RunStats, len(vs))
	ref := vs[0]
	for _, v := range vs {
		byName[v.Name] = v.Stats
		if v.Stats.Checksum != ref.Stats.Checksum {
			errs = append(errs, fmt.Errorf("%s checksum %#x diverges from %s checksum %#x",
				v.Name, v.Stats.Checksum, ref.Name, ref.Stats.Checksum))
		}
		if v.Stats.Instrs != ref.Stats.Instrs {
			errs = append(errs, fmt.Errorf("%s retired %d instructions, %s retired %d",
				v.Name, v.Stats.Instrs, ref.Name, ref.Stats.Instrs))
		}
		if v.Stats.MemHash != ref.Stats.MemHash {
			errs = append(errs, fmt.Errorf("%s memory state %#x diverges from %s memory state %#x",
				v.Name, v.Stats.MemHash, ref.Name, ref.Stats.MemHash))
		}
	}

	base, wp, oracle := byName["baseline"], byName["wayplace"], byName["wayplace-oracle"]
	if base == nil || wp == nil || oracle == nil {
		return errs
	}
	// The scheme's whole point: fewer tag comparisons than the
	// baseline's W-per-fetch.
	if wp.IStats.TagComparisons > base.IStats.TagComparisons {
		errs = append(errs, fmt.Errorf("way-placement performed %d tag comparisons, baseline only %d",
			wp.IStats.TagComparisons, base.IStats.TagComparisons))
	}
	// The 1-bit hint only ever *adds* mispredicted accesses on top of
	// what perfect knowledge would do, so the oracle bounds it from
	// below, event-for-event and in I-cache energy.
	if oracle.IStats.TagComparisons > wp.IStats.TagComparisons {
		errs = append(errs, fmt.Errorf("oracle hint performed %d tag comparisons, 1-bit hint only %d",
			oracle.IStats.TagComparisons, wp.IStats.TagComparisons))
	}
	if oracle.Energy.ICache() > wp.Energy.ICache()*(1+1e-12) {
		errs = append(errs, fmt.Errorf("oracle hint I$ energy %g above 1-bit hint's %g",
			oracle.Energy.ICache(), wp.Energy.ICache()))
	}
	// Hint quality cannot change what the cache holds — fills are
	// placed by address, not by probe path — so the miss streams of
	// the two hint variants must be identical.
	if oracle.IStats.Misses != wp.IStats.Misses {
		errs = append(errs, fmt.Errorf("oracle hint saw %d I$ misses, 1-bit hint %d — cache contents diverged",
			oracle.IStats.Misses, wp.IStats.Misses))
	}
	return errs
}
