package check

// The differential harness: run one program under every fetch scheme
// and layout combination the repository evaluates and demand that they
// agree wherever the architecture says they must. The fetch schemes
// are pure cache-management policies — none of them may change what
// the program computes — so the checksum, the retired instruction
// count and the final memory contents must be identical across all of
// them, and a handful of orderings must hold between their statistics
// (a scheme that claims to save tag comparisons must actually perform
// fewer). Every variant's statistics additionally pass the full
// invariant suite of check.go.
//
// Since the sim package split into fetch-stream production and cache
// modelling, the harness is also a cross-implementation check: every
// variant executes twice — once through the coupled reference loop
// (sim.RunCoupled / sim.RunAdaptive) and once through the single-pass
// machinery (sim.RunMulti) — and the two statistics must match field
// for field, bit for bit. A defect in either implementation surfaces
// as a divergence here instead of a silently wrong figure.

import (
	"context"
	"errors"
	"fmt"
	"reflect"

	"wayplace/internal/energy"
	"wayplace/internal/obj"
	"wayplace/internal/sim"
)

// Variant is one scheme/layout combination executed by Differential.
type Variant struct {
	Name  string
	Stats *sim.RunStats
	// Changes is the OS resize trace (adaptive variant only).
	Changes []sim.AreaChange
}

// Differential runs original and placed images of one program under
// all five scheme variants — baseline, way-memoization, way-placement,
// way-placement with the oracle hint, and way-placement under the
// OS-adaptive area policy — and checks per-variant invariants,
// cross-variant architectural equivalence, and coupled-vs-single-pass
// implementation agreement. The returned variants are always complete
// when err reports only check violations; a shorter slice means a
// variant failed to execute at all.
//
// The single-pass leg runs coalesced: variants sharing a binary are
// evaluated by one sim.RunMulti pass, exactly as the engine's
// grouping planner batches grid cells. DifferentialMode exposes the
// per-cell alternative.
func Differential(ctx context.Context, original, placed *obj.Program, base sim.Config, wpSize uint32) ([]Variant, error) {
	return DifferentialMode(ctx, original, placed, base, wpSize, true)
}

// DifferentialMode is Differential with the single-pass execution
// shape under caller control: coalesced (one multi-model pass per
// binary) or per-cell (one single-model pass per variant). Both shapes
// must agree with the coupled reference; the fuzzer alternates them.
func DifferentialMode(ctx context.Context, original, placed *obj.Program, base sim.Config, wpSize uint32, coalesce bool) ([]Variant, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pol := sim.DefaultAdaptivePolicy(base.ICache, base.ITLB.PageBytes)
	type variantSpec struct {
		name     string
		prog     *obj.Program
		cfg      sim.Config // resolved configuration of the coupled run
		model    sim.ModelSpec
		adaptive bool
	}
	mk := func(name string, prog *obj.Program, scheme energy.Scheme, wp uint32, oracle bool) variantSpec {
		cfg := base
		cfg.Scheme = scheme
		cfg.WPSize = wp
		cfg.OracleHint = oracle
		return variantSpec{name: name, prog: prog, cfg: cfg, model: sim.ModelSpecOf(cfg)}
	}
	acfg := base
	acfg.Scheme = energy.WayPlacement
	acfg.WPSize = pol.StartSize
	specs := []variantSpec{
		mk("baseline", original, energy.Baseline, 0, false),
		mk("waymem", original, energy.WayMemoization, 0, false),
		mk("wayplace", placed, energy.WayPlacement, wpSize, false),
		mk("wayplace-oracle", placed, energy.WayPlacement, wpSize, true),
		{name: "wayplace-adaptive", prog: placed, cfg: acfg,
			model: sim.ModelSpec{Geometry: base.ICache, Adaptive: &pol}, adaptive: true},
	}

	// Single-pass leg. Coalesced mode batches the variants sharing a
	// binary into one RunMulti pass each.
	single := make([]*sim.ModelResult, len(specs))
	if coalesce {
		for _, prog := range []*obj.Program{original, placed} {
			var idx []int
			var models []sim.ModelSpec
			for i, s := range specs {
				if s.prog == prog {
					idx = append(idx, i)
					models = append(models, s.model)
				}
			}
			res, err := sim.RunMulti(ctx, prog, base, models)
			if err != nil {
				return nil, fmt.Errorf("check: differential single-pass: %w", err)
			}
			for j, i := range idx {
				single[i] = res[j]
			}
		}
	} else {
		for i, s := range specs {
			res, err := sim.RunMulti(ctx, s.prog, base, []sim.ModelSpec{s.model})
			if err != nil {
				return nil, fmt.Errorf("check: differential single-pass %s: %w", s.name, err)
			}
			single[i] = res[0]
		}
	}

	var errs []error
	variants := make([]Variant, 0, len(specs))
	for i, s := range specs {
		// Coupled reference leg.
		var rs *sim.RunStats
		var changes []sim.AreaChange
		var err error
		if s.adaptive {
			rs, changes, err = sim.RunAdaptive(ctx, s.prog, base, pol)
		} else {
			rs, err = sim.RunCoupled(ctx, s.prog, s.cfg)
		}
		if err != nil {
			return variants, fmt.Errorf("check: differential %s: %w", s.name, err)
		}

		// Implementation agreement: single-pass vs coupled, bit for bit.
		if serr := single[i].Err; serr != nil {
			errs = append(errs, fmt.Errorf("%s: single-pass failed where coupled succeeded: %w", s.name, serr))
		} else {
			for _, d := range StatDiffs(single[i].Stats, rs) {
				errs = append(errs, fmt.Errorf("%s: single-pass diverges from coupled: %s", s.name, d))
			}
			if s.adaptive && !reflect.DeepEqual(single[i].AreaChanges, changes) {
				errs = append(errs, fmt.Errorf("%s: single-pass area trace %v diverges from coupled %v",
					s.name, single[i].AreaChanges, changes))
			}
		}

		if err := Run(s.cfg, rs); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", s.name, err))
		}
		if s.adaptive {
			// The OS resizes the area mid-run, so on top of the per-run
			// invariants every area the OS ever installed must place
			// bijectively while it fits the cache.
			for _, ch := range changes {
				if err := WPBijective(base.ICache, placed.Base, ch.Size); err != nil {
					errs = append(errs, fmt.Errorf("%s at instr %d: %w", s.name, ch.AtInstr, err))
				}
			}
		}
		variants = append(variants, Variant{Name: s.name, Stats: rs, Changes: changes})
	}

	errs = append(errs, equivalence(variants)...)
	if len(errs) > 0 {
		return variants, fmt.Errorf("check: differential: %w", errors.Join(errs...))
	}
	return variants, nil
}

// StatDiffs compares two run-statistic records field by field and
// describes every top-level field that differs. Empty means identical.
func StatDiffs(got, want *sim.RunStats) []string {
	var diffs []string
	gv, wv := reflect.ValueOf(*got), reflect.ValueOf(*want)
	t := gv.Type()
	for i := 0; i < t.NumField(); i++ {
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			diffs = append(diffs, fmt.Sprintf("%s: got %+v, want %+v",
				t.Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface()))
		}
	}
	return diffs
}

// equivalence holds the cross-variant laws: identical architectural
// outcome everywhere, and the stat orderings the schemes' saving
// claims rest on.
func equivalence(vs []Variant) []error {
	var errs []error
	byName := make(map[string]*sim.RunStats, len(vs))
	ref := vs[0]
	for _, v := range vs {
		byName[v.Name] = v.Stats
		if v.Stats.Checksum != ref.Stats.Checksum {
			errs = append(errs, fmt.Errorf("%s checksum %#x diverges from %s checksum %#x",
				v.Name, v.Stats.Checksum, ref.Name, ref.Stats.Checksum))
		}
		if v.Stats.Instrs != ref.Stats.Instrs {
			errs = append(errs, fmt.Errorf("%s retired %d instructions, %s retired %d",
				v.Name, v.Stats.Instrs, ref.Name, ref.Stats.Instrs))
		}
		if v.Stats.MemHash != ref.Stats.MemHash {
			errs = append(errs, fmt.Errorf("%s memory state %#x diverges from %s memory state %#x",
				v.Name, v.Stats.MemHash, ref.Name, ref.Stats.MemHash))
		}
	}

	base, wp, oracle := byName["baseline"], byName["wayplace"], byName["wayplace-oracle"]
	if base == nil || wp == nil || oracle == nil {
		return errs
	}
	// The scheme's whole point: fewer tag comparisons than the
	// baseline's W-per-fetch.
	if wp.IStats.TagComparisons > base.IStats.TagComparisons {
		errs = append(errs, fmt.Errorf("way-placement performed %d tag comparisons, baseline only %d",
			wp.IStats.TagComparisons, base.IStats.TagComparisons))
	}
	// The 1-bit hint only ever *adds* mispredicted accesses on top of
	// what perfect knowledge would do, so the oracle bounds it from
	// below, event-for-event and in I-cache energy.
	if oracle.IStats.TagComparisons > wp.IStats.TagComparisons {
		errs = append(errs, fmt.Errorf("oracle hint performed %d tag comparisons, 1-bit hint only %d",
			oracle.IStats.TagComparisons, wp.IStats.TagComparisons))
	}
	if oracle.Energy.ICache() > wp.Energy.ICache()*(1+1e-12) {
		errs = append(errs, fmt.Errorf("oracle hint I$ energy %g above 1-bit hint's %g",
			oracle.Energy.ICache(), wp.Energy.ICache()))
	}
	// Hint quality cannot change what the cache holds — fills are
	// placed by address, not by probe path — so the miss streams of
	// the two hint variants must be identical.
	if oracle.IStats.Misses != wp.IStats.Misses {
		errs = append(errs, fmt.Errorf("oracle hint saw %d I$ misses, 1-bit hint %d — cache contents diverged",
			oracle.IStats.Misses, wp.IStats.Misses))
	}
	return errs
}
