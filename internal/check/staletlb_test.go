package check

// The stale-way-bit regression, demonstrated at the machine level:
// this file rebuilds the exact OS behaviour sim.RunAdaptive had before
// the fix — resize the way-placement area, flush the I-cache, leave
// the I-TLB alone — on a live machine, and shows that the coherence
// invariant catches the divergence mechanically. The second test shows
// the fixed sequence (flush + invalidate) satisfies the same
// invariant, so the bug cannot return silently.

import (
	"context"
	"testing"

	"wayplace/internal/asm"
	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/sim"
	"wayplace/internal/tlb"
)

// buildSpanningProgram returns a program whose hot loop touches two
// 1KB I-TLB pages every iteration (main on the first page, a helper
// pushed past the boundary by never-executed padding).
func buildSpanningProgram(t *testing.T, iters uint16) *obj.Program {
	t.Helper()
	b := asm.NewBuilder("stale")
	f := b.Func("main")
	f.Movi(isa.R10, iters)
	f.Block("loop")
	f.Call("far")
	f.Add(isa.R0, isa.R0, isa.R10)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("loop")
	f.Halt()

	p := b.Func("pad")
	for i := 0; i < 300; i++ {
		p.Addi(isa.R1, isa.R1, 1)
	}
	p.Ret()

	h := b.Func("far")
	h.Movi(isa.R11, 8)
	h.Block("work")
	h.Addi(isa.R0, isa.R0, 5)
	h.Subi(isa.R11, isa.R11, 1)
	h.Cmpi(isa.R11, 0)
	h.Bgt("work")
	h.Ret()

	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Size() <= 1<<10 {
		t.Fatalf("program must span two pages, got %d bytes", prog.Size())
	}
	return prog
}

// staleMachine is the hand-wired way-placement machine the tests drive
// through an OS resize.
type staleMachine struct {
	cpu    *cpu.CPU
	itlb   *tlb.TLB
	engine *cache.WayPlacementEngine
}

func newStaleMachine(t *testing.T, prog *obj.Program, areaSize uint32) *staleMachine {
	t.Helper()
	cfg := sim.Default()
	m := mem.New(cfg.Mem)
	c := cpu.New(prog, m)
	itlb := tlb.MustNew(cfg.ITLB)
	if err := itlb.SetWPArea(prog.Base, areaSize); err != nil {
		t.Fatal(err)
	}
	engine, err := cache.NewWayPlacement(cfg.ICache, itlb)
	if err != nil {
		t.Fatal(err)
	}
	c.IFetch = engine
	c.ITLB = itlb
	return &staleMachine{cpu: c, itlb: itlb, engine: engine}
}

// TestStaleWayBitCaughtByCoherenceCheck reproduces the pre-fix OS
// sequence and asserts internal/check flags it: after the resize the
// helper's page is still resident with the old area's bit, so the bit
// an I-TLB lookup delivers contradicts the page tables — the exact
// divergence that made the simulated hardware disagree with what the
// OS installed.
func TestStaleWayBitCaughtByCoherenceCheck(t *testing.T) {
	prog := buildSpanningProgram(t, 2000)
	sm := newStaleMachine(t, prog, 2<<10) // both pages way-placed

	// Run until both pages are resident.
	if _, err := sm.cpu.RunInstrs(5_000); err != nil {
		t.Fatal(err)
	}
	if err := TLBCoherence(sm.itlb); err != nil {
		t.Fatalf("coherent machine reported stale: %v", err)
	}

	// Pre-fix OS resize: shrink the area to one page, flush the
	// I-cache — and forget the I-TLB.
	if err := sm.itlb.SetWPArea(prog.Base, 1<<10); err != nil {
		t.Fatal(err)
	}
	sm.engine.Cache().Flush()

	if err := TLBCoherence(sm.itlb); err == nil {
		t.Fatal("stale way-bit after resize-without-invalidate not caught")
	}
	// The divergence is architectural, not just bookkeeping: the bit a
	// lookup delivers for the helper's page is the old area's.
	farPage := prog.Base + 1<<10
	if _, bit := sm.itlb.Lookup(farPage); !bit {
		t.Fatal("expected the resident entry to deliver the stale (old-area) bit")
	}
	if sm.itlb.PageWayPlaced(farPage) {
		t.Fatal("page tables should say the helper page left the area")
	}

	// The fix: the OS invalidates the I-TLB with the flush.
	sm.itlb.Invalidate()
	if err := TLBCoherence(sm.itlb); err != nil {
		t.Fatalf("coherence still violated after invalidate: %v", err)
	}
	if _, bit := sm.itlb.Lookup(farPage); bit {
		t.Fatal("lookup still delivers the old bit after invalidate")
	}
}

// TestAdaptiveRunStaysCoherent asserts the fixed sim.RunAdaptive keeps
// the I-TLB coherent at every OS decision point while actually
// resizing, and that the run passes the full invariant suite.
func TestAdaptiveRunStaysCoherent(t *testing.T) {
	prog := buildSpanningProgram(t, 2000)
	cfg := sim.Default()
	cfg.MaxInstrs = 10_000_000
	pol := sim.DefaultAdaptivePolicy(cfg.ICache, cfg.ITLB.PageBytes)
	pol.IntervalInstrs = 2_000
	pol.Inspect = func(itlb *tlb.TLB, _ *cache.Cache) {
		if err := TLBCoherence(itlb); err != nil {
			t.Fatalf("mid-run: %v", err)
		}
	}
	rs, changes, err := sim.RunAdaptive(context.Background(), prog, cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) < 2 {
		t.Fatalf("area never resized, coherence check had no teeth: %+v", changes)
	}
	acfg := cfg
	acfg.Scheme = 1 // energy.WayPlacement
	acfg.WPSize = pol.StartSize
	if err := Run(acfg, rs); err != nil {
		t.Errorf("adaptive run violates invariants: %v", err)
	}
}
