package check

import (
	"context"
	"testing"

	"wayplace/internal/bench"
	"wayplace/internal/layout"
	"wayplace/internal/sim"
)

// shortSuite is the subset exercised under -short: one benchmark per
// broad shape class (bit-twiddling loop, table cipher, image kernel,
// pointer-chasing trie).
var shortSuite = map[string]bool{
	"bitcount": true,
	"sha":      true,
	"susan_s":  true,
	"patricia": true,
}

// TestDifferentialAllBenchmarks is the acceptance gate: every
// benchmark in the suite, on its Small input, must be architecturally
// identical under all five scheme variants and satisfy every stat
// invariant. Small is the profiling input, so the runs are quick
// enough to sweep the whole suite here; the Large input is swept by
// `wpbench -selfcheck`.
func TestDifferentialAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		if testing.Short() && !shortSuite[b.Name] {
			continue
		}
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			u, err := b.Build(bench.Small)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			original, err := layout.LinkOriginal(u, textBase)
			if err != nil {
				t.Fatalf("link original: %v", err)
			}
			cfg := sim.Default()
			cfg.MaxInstrs = 200_000_000
			prof, _, err := sim.ProfileRun(original, cfg.MaxInstrs)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			placed, err := layout.Link(u, prof, textBase)
			if err != nil {
				t.Fatalf("link placed: %v", err)
			}
			vs, err := Differential(context.Background(), original, placed, cfg, 2<<10)
			if err != nil {
				t.Fatalf("differential: %v", err)
			}
			if len(vs) != 5 {
				t.Fatalf("got %d variants, want 5", len(vs))
			}
		})
	}
}

// TestDifferentialCatchesDivergence feeds the equivalence layer a
// variant set where one scheme "computed" a different checksum and
// memory image, and demands both diverges are reported.
func TestDifferentialCatchesDivergence(t *testing.T) {
	u, err := bench.All()[0].Build(bench.Small)
	if err != nil {
		t.Fatal(err)
	}
	original, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.MaxInstrs = 200_000_000
	rs, err := sim.Run(original, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := *rs
	bad.Checksum ^= 1
	bad.MemHash ^= 1
	bad.Instrs++
	errs := equivalence([]Variant{
		{Name: "baseline", Stats: rs},
		{Name: "wayplace", Stats: &bad},
	})
	if len(errs) != 3 {
		t.Fatalf("got %d equivalence violations, want 3 (checksum, instrs, memory): %v", len(errs), errs)
	}
}
