package check

import (
	"context"
	"testing"

	"wayplace/internal/bench"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/layout"
	"wayplace/internal/sim"
)

// TestSinglePassMatchesPerCell sweeps the whole benchmark suite on the
// Small inputs and compares one coalesced sim.RunMulti pass per binary
// — mixed geometries, line sizes, schemes, ablation switches and the
// adaptive policy all sharing a single fetch stream — field by field
// against sequential per-cell execution through the coupled reference
// loop. Zero divergence in any statistic is the acceptance bar for the
// single-pass machinery.
func TestSinglePassMatchesPerCell(t *testing.T) {
	base := sim.Default()
	base.MaxInstrs = 200_000_000

	// Geometry zoo: the default 32KB/32-way, a small low-associativity
	// corner, a wide-line configuration (line larger than the
	// segmentation block of line-32 models), and an LRU variant.
	geoDefault := base.ICache
	geoSmall := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32, Policy: cache.RoundRobin}
	geoWide := cache.Config{SizeBytes: 16 << 10, Ways: 16, LineBytes: 64, Policy: cache.RoundRobin}
	geoLRU := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32, Policy: cache.LRU}

	pol := sim.DefaultAdaptivePolicy(geoDefault, base.ITLB.PageBytes)

	originalModels := []sim.ModelSpec{
		{Geometry: geoDefault, Scheme: energy.Baseline},
		{Geometry: geoSmall, Scheme: energy.Baseline},
		{Geometry: geoWide, Scheme: energy.Baseline, Style: energy.RAMTag},
		{Geometry: geoLRU, Scheme: energy.Baseline},
		{Geometry: geoDefault, Scheme: energy.WayMemoization},
		{Geometry: geoWide, Scheme: energy.WayMemoization},
	}
	placedModels := []sim.ModelSpec{
		{Geometry: geoDefault, Scheme: energy.WayPlacement, WPSize: 16 << 10},
		{Geometry: geoDefault, Scheme: energy.WayPlacement, WPSize: 2 << 10},
		{Geometry: geoDefault, Scheme: energy.WayPlacement, WPSize: 2 << 10, OracleHint: true},
		{Geometry: geoDefault, Scheme: energy.WayPlacement, WPSize: 16 << 10, NoSameLine: true},
		{Geometry: geoSmall, Scheme: energy.WayPlacement, WPSize: 4 << 10},
		{Geometry: geoWide, Scheme: energy.WayPlacement, WPSize: 8 << 10},
		{Geometry: geoDefault, Adaptive: &pol},
	}

	for _, b := range bench.All() {
		b := b
		if testing.Short() && !shortSuite[b.Name] {
			continue
		}
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			u, err := b.Build(bench.Small)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			original, err := layout.LinkOriginal(u, textBase)
			if err != nil {
				t.Fatalf("link original: %v", err)
			}
			prof, _, err := sim.ProfileRun(original, base.MaxInstrs)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			placed, err := layout.Link(u, prof, textBase)
			if err != nil {
				t.Fatalf("link placed: %v", err)
			}

			ctx := context.Background()
			legs := []struct {
				kind   string
				models []sim.ModelSpec
			}{
				{"original", originalModels},
				{"placed", placedModels},
			}
			for _, leg := range legs {
				prog := original
				if leg.kind == "placed" {
					prog = placed
				}
				multi, err := sim.RunMulti(ctx, prog, base, leg.models)
				if err != nil {
					t.Fatalf("%s: RunMulti: %v", leg.kind, err)
				}
				for i, spec := range leg.models {
					if multi[i].Err != nil {
						t.Errorf("%s model %d: %v", leg.kind, i, multi[i].Err)
						continue
					}
					var want *sim.RunStats
					var wantChanges []sim.AreaChange
					if spec.Adaptive != nil {
						want, wantChanges, err = sim.RunAdaptive(ctx, prog, base, *spec.Adaptive)
					} else {
						cfg := base
						cfg.ICache = spec.Geometry
						cfg.Scheme = spec.Scheme
						cfg.Style = spec.Style
						cfg.WPSize = spec.WPSize
						cfg.OracleHint = spec.OracleHint
						cfg.NoSameLine = spec.NoSameLine
						want, err = sim.RunCoupled(ctx, prog, cfg)
					}
					if err != nil {
						t.Fatalf("%s model %d: per-cell reference: %v", leg.kind, i, err)
					}
					for _, d := range StatDiffs(multi[i].Stats, want) {
						t.Errorf("%s model %d (%+v): %s", leg.kind, i, spec, d)
					}
					if spec.Adaptive != nil {
						if len(multi[i].AreaChanges) != len(wantChanges) {
							t.Errorf("%s model %d: %d area changes, want %d",
								leg.kind, i, len(multi[i].AreaChanges), len(wantChanges))
						} else {
							for j := range wantChanges {
								if multi[i].AreaChanges[j] != wantChanges[j] {
									t.Errorf("%s model %d: area change %d = %+v, want %+v",
										leg.kind, i, j, multi[i].AreaChanges[j], wantChanges[j])
								}
							}
						}
					}
				}
			}
		})
	}
}
