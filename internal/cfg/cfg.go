// Package cfg builds the interprocedural control-flow graph (ICFG)
// over an object unit and derives the basic-block chains that the
// way-placement layout pass reorders.
//
// This mirrors section 3 of the paper: "First we read in the object
// files ... constructing an interprocedural control-flow graph (ICFG)
// where each node is a basic block. ... We then construct chains of
// basic blocks, linking blocks when they have a predefined ordering
// that we must respect (i.e. call/return site pairs or blocks that
// have a fall-through edge between them). Once this is complete, all
// remaining basic blocks are considered as chains by themselves."
package cfg

import (
	"fmt"

	"wayplace/internal/isa"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
)

// EdgeKind classifies ICFG edges.
type EdgeKind uint8

// Edge kinds. Fall edges (including call continuations) are layout
// constraints; Branch/Call/Return edges are free.
const (
	EdgeFall   EdgeKind = iota // physical fall-through, must stay adjacent
	EdgeBranch                 // taken direction of a branch
	EdgeCall                   // call site -> callee entry
	EdgeReturn                 // callee return block -> call continuation
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeBranch:
		return "branch"
	case EdgeCall:
		return "call"
	case EdgeReturn:
		return "return"
	}
	return fmt.Sprintf("edge(%d)", uint8(k))
}

// Edge is one directed ICFG edge.
type Edge struct {
	To   *Node
	Kind EdgeKind
}

// Node is one basic block in the ICFG.
type Node struct {
	Block *obj.Block
	Order int // global original order, used as a deterministic tie-break
	Succs []Edge
	Preds []Edge
}

// Graph is the interprocedural CFG of one unit.
type Graph struct {
	Unit  *obj.Unit
	Nodes []*Node
	bySym map[string]*Node
}

// NodeOf returns the node for a block symbol.
func (g *Graph) NodeOf(sym string) *Node { return g.bySym[sym] }

// Build constructs the ICFG.
func Build(u *obj.Unit) (*Graph, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{Unit: u, bySym: make(map[string]*Node)}
	for i, b := range u.Blocks() {
		n := &Node{Block: b, Order: i}
		g.Nodes = append(g.Nodes, n)
		g.bySym[b.Sym] = n
	}
	addEdge := func(from *Node, toSym string, kind EdgeKind) error {
		to := g.bySym[toSym]
		if to == nil {
			return fmt.Errorf("cfg: edge from %s to undefined %s", from.Block.Sym, toSym)
		}
		from.Succs = append(from.Succs, Edge{To: to, Kind: kind})
		to.Preds = append(to.Preds, Edge{To: from, Kind: kind})
		return nil
	}

	// Collect each function's return blocks for return edges.
	returns := make(map[string][]*Node)
	for _, f := range u.Funcs {
		for _, b := range f.Blocks {
			last := b.Instrs[len(b.Instrs)-1]
			if last.Op == isa.RET {
				returns[f.Name] = append(returns[f.Name], g.bySym[b.Sym])
			}
		}
	}

	for _, n := range g.Nodes {
		b := n.Block
		if b.FallSym != "" {
			if err := addEdge(n, b.FallSym, EdgeFall); err != nil {
				return nil, err
			}
		}
		if b.BranchSym != "" {
			kind := EdgeBranch
			if b.IsCall {
				kind = EdgeCall
			}
			if err := addEdge(n, b.BranchSym, kind); err != nil {
				return nil, err
			}
			if b.IsCall {
				// Return edges: from every return block of the callee
				// back to this call's continuation.
				for _, ret := range returns[b.BranchSym] {
					if b.FallSym != "" {
						if err := addEdge(ret, b.FallSym, EdgeReturn); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return g, nil
}

// Chain is a maximal run of blocks glued by fall-through (and
// call/return-site) constraints. The layout pass may reorder chains
// but never the blocks inside one.
type Chain struct {
	Nodes []*Node
}

// Weight returns the chain's dynamic instruction count under the
// profile: the sum over member blocks of execution count x block size.
func (c *Chain) Weight(p *profile.Profile) uint64 {
	var w uint64
	for _, n := range c.Nodes {
		w += p.InstrWeight(n.Block)
	}
	return w
}

// Size returns the chain's static size in bytes.
func (c *Chain) Size() uint32 {
	var s uint32
	for _, n := range c.Nodes {
		s += n.Block.Size()
	}
	return s
}

// Blocks returns the chain's blocks in order.
func (c *Chain) Blocks() []*obj.Block {
	out := make([]*obj.Block, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Block
	}
	return out
}

// First returns the chain's first node.
func (c *Chain) First() *Node { return c.Nodes[0] }

// Chains partitions the graph into chains. Every block belongs to
// exactly one chain; a block with no fall-through constraints forms a
// singleton chain. Chains are returned in original program order of
// their first block, so the result is deterministic.
func Chains(g *Graph) []*Chain {
	// A node is a chain head iff nothing falls through into it.
	fallIn := make(map[*Node]bool)
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			if e.Kind == EdgeFall {
				fallIn[e.To] = true
			}
		}
	}
	var chains []*Chain
	seen := make(map[*Node]bool)
	for _, n := range g.Nodes {
		if fallIn[n] {
			continue // interior of some chain
		}
		c := &Chain{}
		for cur := n; cur != nil; {
			if seen[cur] {
				// A fall-through cycle would be a malformed unit; the
				// validator prevents it (FallSym follows textual order),
				// but guard anyway.
				break
			}
			seen[cur] = true
			c.Nodes = append(c.Nodes, cur)
			var next *Node
			for _, e := range cur.Succs {
				if e.Kind == EdgeFall {
					next = e.To
					break
				}
			}
			cur = next
		}
		chains = append(chains, c)
	}
	return chains
}
