package cfg

import (
	"testing"
	"testing/quick"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
)

// buildTestUnit builds: main -> {hot loop with call to leaf} -> halt,
// plus a cold error-handling function never referenced by profile.
func buildTestUnit(t *testing.T) *obj.Unit {
	t.Helper()
	b := asm.NewBuilder("t")

	f := b.Func("main")
	f.Movi(isa.R4, 100)
	f.Block("loop")
	f.Call("leaf")
	f.Subi(isa.R4, isa.R4, 1)
	f.Cmpi(isa.R4, 0)
	f.Bgt("loop")
	f.Call("cold")
	f.Halt()

	l := b.Func("leaf")
	l.Addi(isa.R0, isa.R0, 1)
	l.Ret()

	c := b.Func("cold")
	c.Movi(isa.R1, 0)
	c.Ret()

	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return u
}

func TestBuildGraphEdges(t *testing.T) {
	u := buildTestUnit(t)
	g, err := Build(u)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Nodes) != len(u.Blocks()) {
		t.Fatalf("node count %d, want %d", len(g.Nodes), len(u.Blocks()))
	}

	// Locate the call-to-leaf block: it branches to "leaf" with a call
	// edge and falls through to its continuation.
	var callBlk *Node
	for _, n := range g.Nodes {
		if n.Block.IsCall && n.Block.BranchSym == "leaf" {
			callBlk = n
		}
	}
	if callBlk == nil {
		t.Fatal("no call block for leaf")
	}
	kinds := map[EdgeKind]int{}
	for _, e := range callBlk.Succs {
		kinds[e.Kind]++
	}
	if kinds[EdgeCall] != 1 || kinds[EdgeFall] != 1 {
		t.Errorf("call block edges = %v, want one call and one fall", kinds)
	}

	// leaf's return block must have a return edge to each call
	// continuation (two call sites: loop and cold path... cold calls
	// "cold", so just one continuation for leaf).
	leafRet := g.NodeOf("leaf.$1")
	if leafRet == nil {
		// leaf is a single block ending in ret: entry block is it.
		leafRet = g.NodeOf("leaf")
	}
	var retEdges int
	for _, e := range leafRet.Succs {
		if e.Kind == EdgeReturn {
			retEdges++
		}
	}
	if retEdges != 1 {
		t.Errorf("leaf return edges = %d, want 1", retEdges)
	}
}

func TestChainsPartition(t *testing.T) {
	u := buildTestUnit(t)
	g, err := Build(u)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	chains := Chains(g)
	seen := make(map[string]int)
	for _, c := range chains {
		if len(c.Nodes) == 0 {
			t.Fatal("empty chain")
		}
		for _, n := range c.Nodes {
			seen[n.Block.Sym]++
		}
	}
	for _, b := range u.Blocks() {
		if seen[b.Sym] != 1 {
			t.Errorf("block %s appears in %d chains, want 1", b.Sym, seen[b.Sym])
		}
	}
	// Inside each chain, every non-final block must fall through to
	// the next one.
	for _, c := range chains {
		for i := 0; i < len(c.Nodes)-1; i++ {
			if c.Nodes[i].Block.FallSym != c.Nodes[i+1].Block.Sym {
				t.Errorf("chain broken between %s and %s",
					c.Nodes[i].Block.Sym, c.Nodes[i+1].Block.Sym)
			}
		}
		last := c.Nodes[len(c.Nodes)-1]
		if last.Block.FallSym != "" {
			t.Errorf("chain ends at %s which still has a fall-through", last.Block.Sym)
		}
	}
}

func TestChainWeightAndSize(t *testing.T) {
	u := buildTestUnit(t)
	g, _ := Build(u)
	chains := Chains(g)
	prof := profile.New()
	prof.Add("main", 1)
	prof.Add("leaf", 100)

	var leafChain *Chain
	for _, c := range chains {
		if c.First().Block.Sym == "leaf" {
			leafChain = c
		}
	}
	if leafChain == nil {
		t.Fatal("no chain starting at leaf")
	}
	wantW := uint64(100 * leafChain.First().Block.NumInstrs())
	// leaf is one block (addi; ret).
	if got := leafChain.Weight(prof); got != wantW {
		t.Errorf("leaf chain weight = %d, want %d", got, wantW)
	}
	if got := leafChain.Size(); got != uint32(leafChain.First().Block.NumInstrs())*isa.InstrBytes {
		t.Errorf("leaf chain size = %d", got)
	}
}

// TestChainsPartitionProperty checks the partition invariant over
// randomly shaped (but valid) programs.
func TestChainsPartitionProperty(t *testing.T) {
	f := func(seed uint16) bool {
		u := randomUnit(uint64(seed))
		g, err := Build(u)
		if err != nil {
			return false
		}
		chains := Chains(g)
		count := 0
		seen := make(map[string]bool)
		for _, c := range chains {
			for _, n := range c.Nodes {
				if seen[n.Block.Sym] {
					return false
				}
				seen[n.Block.Sym] = true
				count++
			}
		}
		return count == len(g.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomUnit generates a random valid program: a main plus a few
// helper functions with random branchy bodies.
func randomUnit(seed uint64) *obj.Unit {
	s := seed*2654435761 + 1
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	b := asm.NewBuilder("rand")
	nHelpers := 1 + next(4)
	names := []string{"h0", "h1", "h2", "h3"}[:nHelpers]

	f := b.Func("main")
	nBlocks := 1 + next(5)
	for i := 0; i < nBlocks; i++ {
		f.Addi(isa.R1, isa.R1, 1)
		switch next(3) {
		case 0:
			f.Call(names[next(nHelpers)])
		case 1:
			f.Cmpi(isa.R1, int32(next(10)))
			// Forward label emitted below.
		}
	}
	f.Halt()

	for _, name := range names {
		h := b.Func(name)
		if next(2) == 0 { // loopy helper
			h.Movi(isa.R2, uint16(1+next(5)))
			h.Block("loop")
			h.Subi(isa.R2, isa.R2, 1)
			h.Cmpi(isa.R2, 0)
			h.Bgt("loop")
		} else { // branchy helper
			h.Cmpi(isa.R0, int32(next(10)))
			h.Beq("out")
			h.Addi(isa.R2, isa.R2, 1)
			h.Block("out")
			h.Addi(isa.R2, isa.R2, 2)
		}
		h.Ret()
	}
	u, err := b.Build()
	if err != nil {
		panic(err)
	}
	return u
}
