package layout

import (
	"sort"

	"wayplace/internal/cfg"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
)

// OrderPettisHansen computes a Pettis/Hansen-style affinity layout:
// chains are greedily merged so that blocks with hot control-flow
// transitions between them end up adjacent. This is the classical
// code-placement objective (cache-line and page locality), and the
// repository implements it as a comparison point for the ablation: it
// shows that way-placement needs the paper's *front-loading* order
// (heaviest chains first) rather than the classical adjacency order —
// affinity placement interleaves warm and hot code, so a small
// way-placement area covers less of the execution.
//
// The affinity between two chains is the sum over inter-chain branch
// and call edges of min(exec(src), exec(dst)) — the standard
// approximation when only node counts (not edge counts) are profiled.
func OrderPettisHansen(u *obj.Unit, prof *profile.Profile) ([]*obj.Block, error) {
	g, err := cfg.Build(u)
	if err != nil {
		return nil, err
	}
	chains := cfg.Chains(g)

	// Map each node to its chain index.
	chainOf := make(map[*cfg.Node]int)
	for ci, c := range chains {
		for _, n := range c.Nodes {
			chainOf[n] = ci
		}
	}

	// Union-find over chains as they merge; each root keeps an ordered
	// list of chain indices.
	parent := make([]int, len(chains))
	seq := make([][]int, len(chains))
	for i := range parent {
		parent[i] = i
		seq[i] = []int{i}
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Collect inter-chain affinities.
	type edge struct {
		a, b int
		w    uint64
	}
	aff := make(map[[2]int]uint64)
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			if e.Kind != cfg.EdgeBranch && e.Kind != cfg.EdgeCall {
				continue
			}
			ca, cb := chainOf[n], chainOf[e.To]
			if ca == cb {
				continue
			}
			w := min64(prof.Count(n.Block.Sym), prof.Count(e.To.Block.Sym))
			if w == 0 {
				continue
			}
			key := [2]int{ca, cb}
			if cb < ca {
				key = [2]int{cb, ca}
			}
			aff[key] += w
		}
	}
	edges := make([]edge, 0, len(aff))
	for k, w := range aff {
		edges = append(edges, edge{k[0], k[1], w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Greedy merge, strongest affinity first.
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		parent[rb] = ra
		seq[ra] = append(seq[ra], seq[rb]...)
		seq[rb] = nil
	}

	// Emit merged groups ordered by their heaviest member (so the
	// hottest locality cluster still leads), then original order.
	type group struct {
		chains []int
		weight uint64
		first  int
	}
	var groups []group
	for i := range chains {
		if find(i) != i {
			continue
		}
		gr := group{chains: seq[i], first: chains[seq[i][0]].First().Order}
		for _, ci := range seq[i] {
			if w := chains[ci].Weight(prof); w > gr.weight {
				gr.weight = w
			}
		}
		groups = append(groups, gr)
	}
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].weight != groups[j].weight {
			return groups[i].weight > groups[j].weight
		}
		return groups[i].first < groups[j].first
	})

	var order []*obj.Block
	for _, gr := range groups {
		for _, ci := range gr.chains {
			order = append(order, chains[ci].Blocks()...)
		}
	}
	return order, nil
}

// LinkPettisHansen links the unit with the affinity layout.
func LinkPettisHansen(u *obj.Unit, prof *profile.Profile, base uint32) (*obj.Program, error) {
	order, err := OrderPettisHansen(u, prof)
	if err != nil {
		return nil, err
	}
	return obj.Link(u, order, base)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
