package layout

import (
	"testing"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
)

// hotColdUnit builds a program whose source order is pessimal: a cold
// init function and cold error paths come first, the hot kernel last.
func hotColdUnit(t *testing.T) (*obj.Unit, *profile.Profile) {
	t.Helper()
	b := asm.NewBuilder("hotcold")

	f := b.Func("main")
	f.Call("init")
	f.Call("kernel")
	f.Halt()

	ini := b.Func("init")
	for i := 0; i < 40; i++ {
		ini.Addi(isa.R1, isa.R1, 1)
	}
	ini.Ret()

	e := b.Func("errpath")
	for i := 0; i < 40; i++ {
		e.Addi(isa.R2, isa.R2, 1)
	}
	e.Ret()

	k := b.Func("kernel")
	k.Movi(isa.R3, 1000)
	k.Block("loop")
	k.Addi(isa.R0, isa.R0, 7)
	k.Subi(isa.R3, isa.R3, 1)
	k.Cmpi(isa.R3, 0)
	k.Bgt("loop")
	k.Ret()

	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	prof := profile.New()
	prof.Add("main", 1)
	prof.Add("main.$1", 1)
	prof.Add("main.$2", 1)
	prof.Add("init", 1)
	prof.Add("kernel", 1)
	prof.Add("kernel.$1", 1)
	prof.Add("kernel.loop", 1000)
	return u, prof
}

func TestOrderPutsHotChainFirst(t *testing.T) {
	u, prof := hotColdUnit(t)
	order, err := Order(u, prof)
	if err != nil {
		t.Fatalf("Order: %v", err)
	}
	if len(order) != len(u.Blocks()) {
		t.Fatalf("order has %d blocks, want %d", len(order), len(u.Blocks()))
	}
	// The heaviest chain is the kernel: its entry block (which falls
	// through into the loop) must be placed first.
	if order[0].Sym != "kernel" || order[1].Sym != "kernel.loop" {
		t.Errorf("first blocks are %s, %s; want kernel, kernel.loop", order[0].Sym, order[1].Sym)
	}
	// The cold error path must come last (weight 0, latest original
	// position among zero-weight chains is not guaranteed — but it must
	// come after the kernel loop).
	posOf := func(sym string) int {
		for i, blk := range order {
			if blk.Sym == sym {
				return i
			}
		}
		return -1
	}
	if posOf("errpath") < posOf("kernel.loop") {
		t.Errorf("cold errpath placed before hot kernel loop")
	}
}

func TestLinkRespectsConstraintsAndRuns(t *testing.T) {
	u, prof := hotColdUnit(t)
	p, err := Link(u, prof, 0x1000)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	// Link itself verifies fall-through constraints; also check the
	// hot block is at the image base.
	if addr, _ := p.AddrOf("kernel"); addr != p.Base {
		t.Errorf("kernel at %#x, want base %#x", addr, p.Base)
	}
	if addr, _ := p.AddrOf("kernel.loop"); addr != p.Base+4 {
		t.Errorf("kernel.loop at %#x, want base+4", addr)
	}
}

func TestCoverageImprovesOverOriginal(t *testing.T) {
	u, prof := hotColdUnit(t)
	orig, err := LinkOriginal(u, 0)
	if err != nil {
		t.Fatalf("LinkOriginal: %v", err)
	}
	opt, err := Link(u, prof, 0)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	const wp = 64 // tiny WP area: only ~16 instructions
	co, cp := Coverage(orig, prof, wp), Coverage(opt, prof, wp)
	if cp <= co {
		t.Errorf("way-placement coverage %.3f not better than original %.3f", cp, co)
	}
	if cp < 0.95 {
		t.Errorf("optimised 64B coverage = %.3f, want >= 0.95 (hot loop is 4 instrs)", cp)
	}
	// Full-image coverage is 1 for any layout.
	if c := Coverage(opt, prof, opt.Size()); c < 0.999 {
		t.Errorf("full-image coverage = %.3f, want 1", c)
	}
}

func TestCoverageMonotoneInWPSize(t *testing.T) {
	u, prof := hotColdUnit(t)
	p, err := Link(u, prof, 0)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	prev := -1.0
	for wp := uint32(0); wp <= p.Size()+64; wp += 32 {
		c := Coverage(p, prof, wp)
		if c < prev-1e-9 {
			t.Fatalf("coverage decreased at wp=%d: %.4f -> %.4f", wp, prev, c)
		}
		prev = c
	}
}

func TestLinkPermutedIsValidAndDeterministic(t *testing.T) {
	u, _ := hotColdUnit(t)
	p1, err := LinkPermuted(u, 42, 0)
	if err != nil {
		t.Fatalf("LinkPermuted: %v", err)
	}
	p2, err := LinkPermuted(u, 42, 0)
	if err != nil {
		t.Fatalf("LinkPermuted: %v", err)
	}
	if len(p1.Words) != len(p2.Words) {
		t.Fatal("permuted links differ in size")
	}
	for i := range p1.Words {
		if p1.Words[i] != p2.Words[i] {
			t.Fatalf("permuted link not deterministic at word %d", i)
		}
	}
	// A different seed should (for this program) give a different image.
	p3, err := LinkPermuted(u, 43, 0)
	if err != nil {
		t.Fatalf("LinkPermuted: %v", err)
	}
	same := true
	for i := range p1.Words {
		if p1.Words[i] != p3.Words[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("seeds 42 and 43 produced identical layouts (possible but unlikely)")
	}
}

func TestOrderDeterminism(t *testing.T) {
	u, prof := hotColdUnit(t)
	o1, _ := Order(u, prof)
	o2, _ := Order(u, prof)
	for i := range o1 {
		if o1[i].Sym != o2[i].Sym {
			t.Fatalf("order not deterministic at %d: %s vs %s", i, o1[i].Sym, o2[i].Sym)
		}
	}
}

func TestDescribeMentionsChainCount(t *testing.T) {
	u, prof := hotColdUnit(t)
	p, _ := Link(u, prof, 0)
	s := Describe(u, prof, p)
	if s == "" {
		t.Fatal("empty description")
	}
}
