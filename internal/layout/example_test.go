package layout_test

import (
	"fmt"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/profile"
)

// Example shows the full public flow: build a program whose hot loop
// sits behind cold code, attach a profile, and let the way-placement
// pass move the hot chain to the front of the binary.
func Example() {
	b := asm.NewBuilder("example")

	f := b.Func("main")
	f.Call("coldinit")
	f.Call("hotloop")
	f.Halt()

	ci := b.Func("coldinit")
	for i := 0; i < 16; i++ {
		ci.Nop()
	}
	ci.Ret()

	h := b.Func("hotloop")
	h.Movi(isa.R1, 1000)
	h.Block("spin")
	h.Addi(isa.R0, isa.R0, 1)
	h.Subi(isa.R1, isa.R1, 1)
	h.Cmpi(isa.R1, 0)
	h.Bgt("spin")
	h.Ret()

	unit := b.MustBuild()

	// A profile (normally collected by a training run).
	prof := profile.New()
	prof.Add("main", 1)
	prof.Add("coldinit", 1)
	prof.Add("hotloop", 1)
	prof.Add("hotloop.spin", 1000)

	placed, err := layout.Link(unit, prof, 0x1000)
	if err != nil {
		panic(err)
	}
	hot, _ := placed.AddrOf("hotloop")
	cold, _ := placed.AddrOf("coldinit")
	fmt.Printf("hotloop at %#x (image base %#x)\n", hot, placed.Base)
	fmt.Printf("coldinit placed after the hot chain: %v\n", cold > hot)
	fmt.Printf("64-byte area coverage: %.0f%%\n", 100*layout.Coverage(placed, prof, 64))
	// Output:
	// hotloop at 0x1000 (image base 0x1000)
	// coldinit placed after the hot chain: true
	// 64-byte area coverage: 100%
}
