// Package layout implements the paper's core contribution: the
// profile-guided way-placement code layout pass.
//
// The pass orders basic-block chains by decreasing dynamic instruction
// weight and concatenates them, so the most frequently executed code
// lands at the start of the binary. At run time the leading N bytes
// (the way-placement area, N chosen by the OS per cache configuration)
// are mapped to explicit cache ways by their address bits, letting the
// cache check a single tag per fetch.
//
// Because chain weights come from the profile alone, one layout serves
// every cache size, associativity and way-placement-area size — the
// "no recompilation" property of section 4.1.
package layout

import (
	"fmt"
	"sort"

	"wayplace/internal/cfg"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
)

// Order computes the way-placement block ordering for a unit: chains
// sorted heaviest-first (deterministically tie-broken by original
// position), then concatenated.
func Order(u *obj.Unit, prof *profile.Profile) ([]*obj.Block, error) {
	g, err := cfg.Build(u)
	if err != nil {
		return nil, err
	}
	chains := cfg.Chains(g)
	sort.SliceStable(chains, func(i, j int) bool {
		wi, wj := chains[i].Weight(prof), chains[j].Weight(prof)
		if wi != wj {
			return wi > wj
		}
		return chains[i].First().Order < chains[j].First().Order
	})
	var order []*obj.Block
	for _, c := range chains {
		order = append(order, c.Blocks()...)
	}
	return order, nil
}

// Link is the full link-time pipeline: compute the way-placement
// order and produce the final executable image based at base.
func Link(u *obj.Unit, prof *profile.Profile, base uint32) (*obj.Program, error) {
	order, err := Order(u, prof)
	if err != nil {
		return nil, err
	}
	return obj.Link(u, order, base)
}

// LinkOriginal links the unit in its original (compilation) order —
// the paper's baseline binary.
func LinkOriginal(u *obj.Unit, base uint32) (*obj.Program, error) {
	return obj.Link(u, obj.OriginalOrder(u), base)
}

// LinkPermuted links the unit with its chains in an arbitrary
// deterministic permutation driven by seed. It is used by the layout
// ablation: it respects all fall-through constraints (the binary is
// still correct) but ignores the profile entirely.
func LinkPermuted(u *obj.Unit, seed uint64, base uint32) (*obj.Program, error) {
	g, err := cfg.Build(u)
	if err != nil {
		return nil, err
	}
	chains := cfg.Chains(g)
	// Deterministic pseudo-shuffle (xorshift) so runs are repeatable.
	s := seed | 1
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	for i := len(chains) - 1; i > 0; i-- {
		j := next(i + 1)
		chains[i], chains[j] = chains[j], chains[i]
	}
	var order []*obj.Block
	for _, c := range chains {
		order = append(order, c.Blocks()...)
	}
	return obj.Link(u, order, base)
}

// Coverage reports, for a linked program and a profile, the fraction
// of profiled dynamic instructions whose addresses fall inside a
// way-placement area of wpSize bytes from the image base. It is the
// quantity the layout pass maximises, and the examples and tests use
// it to show that heaviest-first ordering concentrates execution at
// the front of the binary.
func Coverage(p *obj.Program, prof *profile.Profile, wpSize uint32) float64 {
	var in, total uint64
	limit := uint64(p.Base) + uint64(wpSize)
	for _, pl := range p.Placed {
		w := prof.InstrWeight(pl.Block)
		total += w
		// A block straddling the boundary contributes the covered
		// prefix of its instructions, matching per-fetch accounting.
		end := uint64(pl.Addr) + uint64(pl.Block.Size())
		switch {
		case end <= limit:
			in += w
		case uint64(pl.Addr) >= limit:
			// outside entirely
		default:
			frac := float64(limit-uint64(pl.Addr)) / float64(pl.Block.Size())
			in += uint64(float64(w) * frac)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

// Describe returns a short human-readable summary of a layout:
// chain count, hot-front concentration and image size. Used by
// cmd/waylink and the examples.
func Describe(u *obj.Unit, prof *profile.Profile, p *obj.Program) string {
	g, err := cfg.Build(u)
	if err != nil {
		return fmt.Sprintf("layout: %v", err)
	}
	chains := cfg.Chains(g)
	return fmt.Sprintf("%d blocks in %d chains, image %d bytes, 4KB coverage %.1f%%",
		len(g.Nodes), len(chains), p.Size(), 100*Coverage(p, prof, 4096))
}
