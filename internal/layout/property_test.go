package layout

import (
	"testing"
	"testing/quick"

	"wayplace/internal/cfg"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
	"wayplace/internal/progen"
)

// fakeProfile gives every block a pseudo-random count derived from its
// symbol, so orderings are exercised under arbitrary weights.
func fakeProfile(u *obj.Unit, seed uint32) *profile.Profile {
	p := profile.New()
	h := seed | 1
	for _, b := range u.Blocks() {
		for _, c := range b.Sym {
			h = h*31 + uint32(c)
		}
		p.Add(b.Sym, uint64(h%1000))
	}
	return p
}

// TestOrderIsValidPermutationProperty: for random programs and random
// profiles, every ordering strategy must produce a linkable order
// (obj.Link verifies permutation-ness and every fall-through
// constraint).
func TestOrderIsValidPermutationProperty(t *testing.T) {
	f := func(seed uint16, pseed uint32) bool {
		u := progen.Unit(uint64(seed), progen.Options{
			MaxHelpers: 4, MaxOuterTrip: 3, MaxBlockOps: 10, ColdFuncs: 3,
		})
		prof := fakeProfile(u, pseed)
		for _, link := range []func() (*obj.Program, error){
			func() (*obj.Program, error) { return Link(u, prof, 0x1000) },
			func() (*obj.Program, error) { return LinkPettisHansen(u, prof, 0x1000) },
			func() (*obj.Program, error) { return LinkPermuted(u, uint64(pseed), 0x1000) },
			func() (*obj.Program, error) { return LinkOriginal(u, 0x1000) },
		} {
			if _, err := link(); err != nil {
				t.Logf("seed %d/%d: %v", seed, pseed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestHeaviestChainLeadsProperty: the way-placement order must start
// with a block belonging to a maximal-weight chain, and the chain
// weights must be non-increasing along the emitted order.
func TestHeaviestChainLeadsProperty(t *testing.T) {
	f := func(seed uint16, pseed uint32) bool {
		u := progen.Unit(uint64(seed), progen.DefaultOptions())
		prof := fakeProfile(u, pseed)
		order, err := Order(u, prof)
		if err != nil {
			return false
		}
		g, err := cfg.Build(u)
		if err != nil {
			return false
		}
		chains := cfg.Chains(g)
		weightOfHead := make(map[string]uint64) // chain head sym -> weight
		heads := make(map[string]bool)
		var maxW uint64
		for _, c := range chains {
			w := c.Weight(prof)
			weightOfHead[c.First().Block.Sym] = w
			heads[c.First().Block.Sym] = true
			if w > maxW {
				maxW = w
			}
		}
		if weightOfHead[order[0].Sym] != maxW {
			return false
		}
		prev := maxW
		for _, b := range order {
			if heads[b.Sym] {
				w := weightOfHead[b.Sym]
				if w > prev {
					return false
				}
				prev = w
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageBoundsProperty: coverage is always within [0, 1] and
// equals 1 at the full image for any layout.
func TestCoverageBoundsProperty(t *testing.T) {
	f := func(seed uint16, pseed uint32, wp uint16) bool {
		u := progen.Unit(uint64(seed), progen.DefaultOptions())
		prof := fakeProfile(u, pseed)
		p, err := LinkPermuted(u, uint64(pseed)+7, 0)
		if err != nil {
			return false
		}
		c := Coverage(p, prof, uint32(wp))
		if c < 0 || c > 1 {
			return false
		}
		return Coverage(p, prof, p.Size()) > 0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPettisHansenDeterminism: affinity layout must be reproducible.
func TestPettisHansenDeterminism(t *testing.T) {
	u := progen.Unit(42, progen.DefaultOptions())
	prof := fakeProfile(u, 99)
	a, err := OrderPettisHansen(u, prof)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OrderPettisHansen(u, prof)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Sym != b[i].Sym {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, a[i].Sym, b[i].Sym)
		}
	}
}
