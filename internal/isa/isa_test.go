package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		cond Cond
		f    Flags
		want bool
	}{
		{AL, Flags{}, true},
		{AL, Flags{N: true, Z: true, C: true, V: true}, true},
		{EQ, Flags{Z: true}, true},
		{EQ, Flags{}, false},
		{NE, Flags{}, true},
		{NE, Flags{Z: true}, false},
		{LT, Flags{N: true}, true},
		{LT, Flags{N: true, V: true}, false},
		{LT, Flags{V: true}, true},
		{LE, Flags{Z: true}, true},
		{LE, Flags{N: true, V: true}, false},
		{GT, Flags{}, true},
		{GT, Flags{Z: true}, false},
		{GT, Flags{N: true, V: true}, true},
		{GE, Flags{}, true},
		{GE, Flags{N: true}, false},
		{LO, Flags{}, true},
		{LO, Flags{C: true}, false},
		{HS, Flags{C: true}, true},
		{HI, Flags{C: true}, true},
		{HI, Flags{C: true, Z: true}, false},
		{LS, Flags{Z: true}, true},
		{LS, Flags{C: true}, false},
		{MI, Flags{N: true}, true},
		{PL, Flags{}, true},
		{PL, Flags{N: true}, false},
	}
	for _, c := range cases {
		if got := c.cond.Eval(c.f); got != c.want {
			t.Errorf("%v.Eval(%+v) = %v, want %v", c.cond, c.f, got, c.want)
		}
	}
}

func TestCondComplementPairs(t *testing.T) {
	// Each condition and its complement must partition every flag state.
	pairs := [][2]Cond{{EQ, NE}, {LT, GE}, {LE, GT}, {LO, HS}, {LS, HI}, {MI, PL}}
	for n := 0; n < 16; n++ {
		f := Flags{N: n&1 != 0, Z: n&2 != 0, C: n&4 != 0, V: n&8 != 0}
		for _, p := range pairs {
			if p[0].Eval(f) == p[1].Eval(f) {
				t.Errorf("conditions %v and %v agree under %+v", p[0], p[1], f)
			}
		}
	}
}

// randomInstr builds a random but encodable instruction.
func randomInstr(r *rand.Rand) Instr {
	for {
		i := Instr{
			Op:   Op(r.Intn(int(numOps))),
			Cond: Cond(r.Intn(int(numConds))),
			Rd:   Reg(r.Intn(16)),
			Rn:   Reg(r.Intn(16)),
			Rm:   Reg(r.Intn(16)),
		}
		switch opFormat(i.Op) {
		case fmtMovI:
			i.Imm = int32(r.Intn(0x10000))
		case fmtBr:
			i.Imm = int32(r.Intn(dispMax-dispMin+1) + dispMin)
		default:
			i.Imm = int32(r.Intn(immMax-immMin+1) + immMin)
		}
		return i
	}
}

// canonical zeroes the fields an operation's format does not encode, so
// that decode(encode(i)) can be compared against it.
func canonical(i Instr) Instr {
	c := Instr{Op: i.Op, Cond: AL}
	switch opFormat(i.Op) {
	case fmt3R, fmtMemX:
		c.Rd, c.Rn, c.Rm = i.Rd, i.Rn, i.Rm
	case fmtImm, fmtMem:
		c.Rd, c.Rn, c.Imm = i.Rd, i.Rn, i.Imm
	case fmtMov:
		c.Rd, c.Rm = i.Rd, i.Rm
	case fmtMovI:
		c.Rd, c.Imm = i.Rd, i.Imm
	case fmtCmp:
		c.Rn, c.Rm = i.Rn, i.Rm
	case fmtCmpI:
		c.Rn, c.Imm = i.Rn, i.Imm
	case fmtBr:
		c.Cond, c.Imm = i.Cond, i.Imm
	}
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 20000; n++ {
		in := randomInstr(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) from %v: %v", w, in, err)
		}
		if out != canonical(in) {
			t.Fatalf("round trip %v -> %#08x -> %v (want %v)", in, w, out, canonical(in))
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Property: any word that decodes successfully re-encodes to a word
	// that decodes to the same instruction (decode is a retraction of
	// encode over the valid subset).
	f := func(w uint32) bool {
		i, err := Decode(w)
		if err != nil {
			return true // invalid words are out of scope
		}
		w2, err := Encode(i)
		if err != nil {
			return false
		}
		i2, err := Decode(w2)
		return err == nil && i2 == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	cases := []Instr{
		{Op: ADDI, Rd: R0, Rn: R1, Imm: 1 << 15},
		{Op: ADDI, Rd: R0, Rn: R1, Imm: -(1 << 15) - 1},
		{Op: MOVW, Rd: R0, Imm: -1},
		{Op: MOVW, Rd: R0, Imm: 0x10000},
		{Op: B, Cond: AL, Imm: dispMax + 1},
		{Op: B, Cond: AL, Imm: dispMin - 1},
		{Op: numOps},
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%v) succeeded, want range error", c)
		}
	}
}

func TestBranchDispSignExtension(t *testing.T) {
	for _, d := range []int32{0, 1, -1, 100, -100, dispMax, dispMin} {
		w := MustEncode(Instr{Op: B, Cond: NE, Imm: d})
		i, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if i.Imm != d || i.Cond != NE {
			t.Errorf("disp %d decoded to %d (cond %v)", d, i.Imm, i.Cond)
		}
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{ADD, ClassALU}, {MOVW, ClassALU}, {CMP, ClassALU},
		{MUL, ClassMul}, {MLA, ClassMul},
		{LDR, ClassLoad}, {LDRB, ClassLoad}, {LDRX, ClassLoad},
		{STR, ClassStore}, {STRB, ClassStore}, {STRX, ClassStore},
		{B, ClassBranch}, {BL, ClassBranch}, {RET, ClassBranch},
		{NOP, ClassMisc}, {HALT, ClassMisc},
	}
	for _, c := range cases {
		if got := OpClass(c.op); got != c.want {
			t.Errorf("OpClass(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestIsUncond(t *testing.T) {
	cases := []struct {
		i    Instr
		want bool
	}{
		{Instr{Op: B, Cond: AL}, true},
		{Instr{Op: B, Cond: EQ}, false},
		{Instr{Op: BL, Cond: AL}, true},
		{Instr{Op: RET}, true},
		{Instr{Op: HALT}, true},
		{Instr{Op: ADD}, false},
	}
	for _, c := range cases {
		if got := c.i.IsUncond(); got != c.want {
			t.Errorf("(%v).IsUncond() = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		i    Instr
		want string
	}{
		{Instr{Op: ADD, Rd: R1, Rn: R2, Rm: R3}, "add r1, r2, r3"},
		{Instr{Op: ADDI, Rd: R1, Rn: R2, Imm: -4}, "addi r1, r2, #-4"},
		{Instr{Op: MOV, Rd: R1, Rm: LR}, "mov r1, lr"},
		{Instr{Op: MOVW, Rd: R7, Imm: 0xffff}, "movw r7, #65535"},
		{Instr{Op: CMPI, Rn: R4, Imm: 10}, "cmpi r4, #10"},
		{Instr{Op: LDR, Rd: R0, Rn: SP, Imm: 8}, "ldr r0, [sp, #8]"},
		{Instr{Op: LDRX, Rd: R0, Rn: R1, Rm: R2}, "ldrx r0, [r1, r2]"},
		{Instr{Op: B, Cond: AL, Imm: 5}, "b +5"},
		{Instr{Op: B, Cond: NE, Imm: -3}, "bne -3"},
		{Instr{Op: RET}, "ret"},
		{Instr{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.i.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode on invalid instruction did not panic")
		}
	}()
	MustEncode(Instr{Op: numOps})
}
