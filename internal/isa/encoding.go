package isa

import "fmt"

// Binary encoding. Every instruction packs into one little-endian
// 32-bit word:
//
//	[31:26] opcode
//	[25:22] rd            (or branch condition)
//	[21:18] rn
//	[17:14] rm
//	[15:0]  imm16         (signed except MOVW/MOVT)
//	[21:0]  branch disp   (signed, in instructions)
//
// rn and imm16 never coexist with rm in the same format, so the field
// overlap between [17:14] and [15:0] is harmless.

// EncodingError reports a field that does not fit its encoding slot.
type EncodingError struct {
	Instr Instr
	Field string
	Value int64
}

func (e *EncodingError) Error() string {
	return fmt.Sprintf("isa: cannot encode %v: field %s value %d out of range",
		e.Instr, e.Field, e.Value)
}

const (
	immMin  = -(1 << 15)
	immMax  = 1<<15 - 1
	dispMin = -(1 << 21)
	dispMax = 1<<21 - 1
)

// Encode packs the instruction into its 32-bit binary form.
func Encode(i Instr) (uint32, error) {
	if !i.Op.Valid() {
		return 0, &EncodingError{i, "op", int64(i.Op)}
	}
	if i.Rd >= NumRegs || i.Rn >= NumRegs || i.Rm >= NumRegs {
		return 0, &EncodingError{i, "reg", int64(i.Rd)}
	}
	w := uint32(i.Op) << 26
	switch opFormat(i.Op) {
	case fmt3R:
		w |= uint32(i.Rd)<<22 | uint32(i.Rn)<<18 | uint32(i.Rm)<<14
	case fmtImm, fmtMem:
		if i.Imm < immMin || i.Imm > immMax {
			return 0, &EncodingError{i, "imm16", int64(i.Imm)}
		}
		w |= uint32(i.Rd)<<22 | uint32(i.Rn)<<18 | uint32(uint16(i.Imm))
	case fmtMov:
		w |= uint32(i.Rd)<<22 | uint32(i.Rm)<<14
	case fmtMovI:
		if i.Imm < 0 || i.Imm > 0xffff {
			return 0, &EncodingError{i, "uimm16", int64(i.Imm)}
		}
		w |= uint32(i.Rd)<<22 | uint32(i.Imm)
	case fmtCmp:
		w |= uint32(i.Rn)<<18 | uint32(i.Rm)<<14
	case fmtCmpI:
		if i.Imm < immMin || i.Imm > immMax {
			return 0, &EncodingError{i, "imm16", int64(i.Imm)}
		}
		w |= uint32(i.Rn)<<18 | uint32(uint16(i.Imm))
	case fmtMemX:
		w |= uint32(i.Rd)<<22 | uint32(i.Rn)<<18 | uint32(i.Rm)<<14
	case fmtBr:
		if !i.Cond.Valid() {
			return 0, &EncodingError{i, "cond", int64(i.Cond)}
		}
		if i.Imm < dispMin || i.Imm > dispMax {
			return 0, &EncodingError{i, "disp22", int64(i.Imm)}
		}
		w |= uint32(i.Cond)<<22 | uint32(i.Imm)&0x3fffff
	case fmtNone:
		// opcode only
	}
	return w, nil
}

// MustEncode is Encode for instructions known to be well-formed;
// it panics on error. The assembler validates fields before emitting,
// so this is the common path.
func MustEncode(i Instr) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) (Instr, error) {
	op := Op(w >> 26)
	if !op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d in word %#08x", uint8(op), w)
	}
	i := Instr{Op: op, Cond: AL}
	switch opFormat(op) {
	case fmt3R:
		i.Rd = Reg(w >> 22 & 0xf)
		i.Rn = Reg(w >> 18 & 0xf)
		i.Rm = Reg(w >> 14 & 0xf)
	case fmtImm, fmtMem:
		i.Rd = Reg(w >> 22 & 0xf)
		i.Rn = Reg(w >> 18 & 0xf)
		i.Imm = int32(int16(w))
	case fmtMov:
		i.Rd = Reg(w >> 22 & 0xf)
		i.Rm = Reg(w >> 14 & 0xf)
	case fmtMovI:
		i.Rd = Reg(w >> 22 & 0xf)
		i.Imm = int32(w & 0xffff)
	case fmtCmp:
		i.Rn = Reg(w >> 18 & 0xf)
		i.Rm = Reg(w >> 14 & 0xf)
	case fmtCmpI:
		i.Rn = Reg(w >> 18 & 0xf)
		i.Imm = int32(int16(w))
	case fmtMemX:
		i.Rd = Reg(w >> 22 & 0xf)
		i.Rn = Reg(w >> 18 & 0xf)
		i.Rm = Reg(w >> 14 & 0xf)
	case fmtBr:
		c := Cond(w >> 22 & 0xf)
		if !c.Valid() {
			return Instr{}, fmt.Errorf("isa: invalid condition %d in word %#08x", uint8(c), w)
		}
		i.Cond = c
		i.Imm = int32(w<<10) >> 10 // sign-extend 22 bits
	}
	return i, nil
}
