// Package isa defines the instruction set of the ARM-like embedded core
// used throughout this repository.
//
// The machine is a load/store RISC with fixed 32-bit instructions,
// sixteen general-purpose registers and a four-flag condition register,
// closely following the subset of the ARM architecture that the paper's
// evaluation platform (Intel XScale) executes. Fixed-width instructions
// are what the way-placement scheme relies on: instruction addresses
// advance by exactly four bytes, so the compiler can steer code into
// cache ways purely by choosing byte offsets in the binary.
package isa

import "fmt"

// InstrBytes is the size in bytes of every encoded instruction.
const InstrBytes = 4

// Reg names one of the sixteen general-purpose registers.
// R13 is the conventional stack pointer, R14 the link register.
type Reg uint8

// Register aliases following ARM conventions.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13: stack pointer
	LR // R14: link register
	R15
	NumRegs = 16
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Op enumerates every operation the core executes.
type Op uint8

// Operation codes. The groupings matter to the decoder and to the
// CPU's timing model (multiplies have a longer result latency, loads
// go through the D-cache, branches steer fetch).
const (
	// Three-register ALU operations: rd = rn OP rm.
	ADD Op = iota
	SUB
	RSB // rd = rm - rn (reverse subtract)
	MUL
	MLA // rd = rn*rm + rd (multiply-accumulate)
	AND
	ORR
	EOR
	BIC // rd = rn &^ rm
	LSL
	LSR
	ASR
	ROR

	// Register-immediate ALU operations: rd = rn OP simm16.
	ADDI
	SUBI
	ANDI
	ORRI
	EORI
	LSLI
	LSRI
	ASRI

	// Moves.
	MOV  // rd = rm
	MVN  // rd = ^rm
	MOVW // rd = uimm16 (zero-extended)
	MOVT // rd = (rd & 0xffff) | uimm16<<16

	// Comparisons: set NZCV only.
	CMP  // flags(rn - rm)
	CMPI // flags(rn - simm16)
	TST  // flags(rn & rm)

	// Memory: address = rn + simm16.
	LDR  // rd = mem32[addr]
	STR  // mem32[addr] = rd
	LDRB // rd = zext(mem8[addr])
	STRB // mem8[addr] = rd & 0xff
	LDRX // rd = mem32[rn + rm] (register-indexed load)
	STRX // mem32[rn + rm] = rd

	// Control flow. Branch displacements are instruction-relative:
	// target = pc + 4 + disp*4.
	B   // conditional or unconditional PC-relative branch
	BL  // branch and link: lr = pc + 4
	RET // return: pc = lr

	// Miscellaneous.
	NOP
	HALT // stop the machine; R0 conventionally holds a result checksum

	numOps
)

var opNames = [numOps]string{
	ADD: "add", SUB: "sub", RSB: "rsb", MUL: "mul", MLA: "mla",
	AND: "and", ORR: "orr", EOR: "eor", BIC: "bic",
	LSL: "lsl", LSR: "lsr", ASR: "asr", ROR: "ror",
	ADDI: "addi", SUBI: "subi", ANDI: "andi", ORRI: "orri", EORI: "eori",
	LSLI: "lsli", LSRI: "lsri", ASRI: "asri",
	MOV: "mov", MVN: "mvn", MOVW: "movw", MOVT: "movt",
	CMP: "cmp", CMPI: "cmpi", TST: "tst",
	LDR: "ldr", STR: "str", LDRB: "ldrb", STRB: "strb",
	LDRX: "ldrx", STRX: "strx",
	B: "b", BL: "bl", RET: "ret",
	NOP: "nop", HALT: "halt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o names a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Cond is a branch condition evaluated against the NZCV flags.
type Cond uint8

// Branch conditions (ARM semantics over the NZCV flags).
const (
	AL Cond = iota // always
	EQ             // Z
	NE             // !Z
	LT             // N != V (signed <)
	LE             // Z || N != V
	GT             // !Z && N == V
	GE             // N == V
	LO             // !C (unsigned <)
	HS             // C (unsigned >=)
	HI             // C && !Z (unsigned >)
	LS             // !C || Z (unsigned <=)
	MI             // N
	PL             // !N
	numConds
)

var condNames = [numConds]string{
	AL: "al", EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge",
	LO: "lo", HS: "hs", HI: "hi", LS: "ls", MI: "mi", PL: "pl",
}

// String returns the condition suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c names a defined condition.
func (c Cond) Valid() bool { return c < numConds }

// Flags holds the NZCV condition flags.
type Flags struct {
	N, Z, C, V bool
}

// Eval reports whether condition c holds under flags f.
func (c Cond) Eval(f Flags) bool {
	switch c {
	case AL:
		return true
	case EQ:
		return f.Z
	case NE:
		return !f.Z
	case LT:
		return f.N != f.V
	case LE:
		return f.Z || f.N != f.V
	case GT:
		return !f.Z && f.N == f.V
	case GE:
		return f.N == f.V
	case LO:
		return !f.C
	case HS:
		return f.C
	case HI:
		return f.C && !f.Z
	case LS:
		return !f.C || f.Z
	case MI:
		return f.N
	case PL:
		return !f.N
	}
	return false
}

// Instr is one decoded instruction. Rd/Rn/Rm and Imm are interpreted
// per the operation's format (see the Op constants).
type Instr struct {
	Op   Op
	Cond Cond  // branches only
	Rd   Reg   // destination (or store source for STR*)
	Rn   Reg   // first source / base register
	Rm   Reg   // second source / index register
	Imm  int32 // immediate, branch displacement (in instructions)
}

// Class partitions operations by how the CPU handles them.
type Class uint8

// Instruction classes used by the execution and timing models.
const (
	ClassALU    Class = iota // single-cycle integer
	ClassMul                 // multiply: longer result latency
	ClassLoad                // D-cache read
	ClassStore               // D-cache write
	ClassBranch              // redirects fetch
	ClassMisc                // nop, halt
)

// Class returns the class of the instruction's operation.
func (i Instr) Class() Class { return OpClass(i.Op) }

// OpClass returns the execution class of an operation.
func OpClass(o Op) Class {
	switch o {
	case MUL, MLA:
		return ClassMul
	case LDR, LDRB, LDRX:
		return ClassLoad
	case STR, STRB, STRX:
		return ClassStore
	case B, BL, RET:
		return ClassBranch
	case NOP, HALT:
		return ClassMisc
	default:
		return ClassALU
	}
}

// IsBranch reports whether the instruction can redirect control flow.
func (i Instr) IsBranch() bool { return i.Class() == ClassBranch }

// IsCall reports whether the instruction is a call.
func (i Instr) IsCall() bool { return i.Op == BL }

// IsReturn reports whether the instruction is a return.
func (i Instr) IsReturn() bool { return i.Op == RET }

// IsUncond reports whether the instruction unconditionally leaves the
// fall-through path (an always-taken branch, call or return).
func (i Instr) IsUncond() bool {
	switch i.Op {
	case B, BL:
		return i.Cond == AL
	case RET, HALT:
		return true
	}
	return false
}

// Format classes describe which fields an operation encodes.
type format uint8

const (
	fmt3R   format = iota // rd, rn, rm
	fmtImm                // rd, rn, imm16
	fmtMov                // rd, rm
	fmtMovI               // rd, imm16
	fmtCmp                // rn, rm
	fmtCmpI               // rn, imm16
	fmtMem                // rd, rn, imm16
	fmtMemX               // rd, rn, rm
	fmtBr                 // cond, disp
	fmtNone               // no operands
)

func opFormat(o Op) format {
	switch o {
	case ADD, SUB, RSB, MUL, AND, ORR, EOR, BIC, LSL, LSR, ASR, ROR:
		return fmt3R
	case MLA:
		return fmt3R // rd is also a source
	case ADDI, SUBI, ANDI, ORRI, EORI, LSLI, LSRI, ASRI:
		return fmtImm
	case MOV, MVN:
		return fmtMov
	case MOVW, MOVT:
		return fmtMovI
	case CMP, TST:
		return fmtCmp
	case CMPI:
		return fmtCmpI
	case LDR, STR, LDRB, STRB:
		return fmtMem
	case LDRX, STRX:
		return fmtMemX
	case B, BL:
		return fmtBr
	default:
		return fmtNone
	}
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch opFormat(i.Op) {
	case fmt3R:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rn, i.Rm)
	case fmtImm:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, i.Rd, i.Rn, i.Imm)
	case fmtMov:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rm)
	case fmtMovI:
		return fmt.Sprintf("%s %s, #%d", i.Op, i.Rd, uint32(i.Imm)&0xffff)
	case fmtCmp:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rn, i.Rm)
	case fmtCmpI:
		return fmt.Sprintf("%s %s, #%d", i.Op, i.Rn, i.Imm)
	case fmtMem:
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.Rd, i.Rn, i.Imm)
	case fmtMemX:
		return fmt.Sprintf("%s %s, [%s, %s]", i.Op, i.Rd, i.Rn, i.Rm)
	case fmtBr:
		if i.Cond == AL {
			return fmt.Sprintf("%s %+d", i.Op, i.Imm)
		}
		return fmt.Sprintf("%s%s %+d", i.Op, i.Cond, i.Imm)
	default:
		return i.Op.String()
	}
}
