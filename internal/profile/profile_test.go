package profile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"unicode"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func TestAddAndCount(t *testing.T) {
	p := New()
	p.Add("a", 3)
	p.Add("a", 4)
	p.Add("b", 1)
	if p.Count("a") != 7 || p.Count("b") != 1 || p.Count("absent") != 0 {
		t.Errorf("counts wrong: a=%d b=%d absent=%d", p.Count("a"), p.Count("b"), p.Count("absent"))
	}
}

func TestRoundTripSerialisation(t *testing.T) {
	p := New()
	p.Add("main", 1)
	p.Add("kernel.loop", 123456789)
	p.Add("f.$2", 42)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(q.Counts) != len(p.Counts) {
		t.Fatalf("count mismatch: %d vs %d", len(q.Counts), len(p.Counts))
	}
	for s, n := range p.Counts {
		if q.Counts[s] != n {
			t.Errorf("sym %s: %d != %d", s, q.Counts[s], n)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(counts map[string]uint64) bool {
		p := New()
		for s, n := range counts {
			// Restrict to symbols the assembler can actually produce:
			// no whitespace of any kind and no comment marker.
			if s == "" || strings.HasPrefix(s, "#") ||
				strings.IndexFunc(s, unicode.IsSpace) >= 0 {
				continue
			}
			p.Add(s, n)
		}
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			return false
		}
		q, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(q.Counts) != len(p.Counts) {
			return false
		}
		for s, n := range p.Counts {
			if q.Counts[s] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, in := range []string{"onlyonefield\n", "a b c\n", "sym notanumber\n", "sym -1\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	p, err := Read(strings.NewReader("# comment\n\nmain 5\n"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if p.Count("main") != 5 {
		t.Errorf("main = %d, want 5", p.Count("main"))
	}
}

func TestFromInstrCountsAndWeights(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main")
	f.Movi(isa.R0, 3) // block main: 1 instr + loop label starts new block
	f.Block("loop")
	f.Subi(isa.R0, isa.R0, 1)
	f.Cmpi(isa.R0, 0)
	f.Bgt("loop")
	f.Halt()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := obj.Link(u, obj.OriginalOrder(u), 0)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	// Simulated per-instruction counts: movi once, loop body 3 times,
	// halt once.
	counts := []uint64{1, 3, 3, 3, 1}
	prof := FromInstrCounts(p, counts)
	if prof.Count("main") != 1 {
		t.Errorf("main count = %d, want 1", prof.Count("main"))
	}
	if prof.Count("main.loop") != 3 {
		t.Errorf("loop count = %d, want 3", prof.Count("main.loop"))
	}
	// InstrWeight: loop block is 3 instructions, executed 3 times.
	for _, blk := range u.Blocks() {
		if blk.Sym == "main.loop" {
			if w := prof.InstrWeight(blk); w != 9 {
				t.Errorf("loop InstrWeight = %d, want 9", w)
			}
		}
	}
	if total := prof.TotalInstrs(u); total != 1+9+1 {
		t.Errorf("TotalInstrs = %d, want 11", total)
	}
}
