// Package profile represents basic-block execution profiles.
//
// The paper's flow is profile-guided: each benchmark is first run on
// its small (training) input to collect per-block execution counts,
// which the link-time way-placement pass then uses to weight chains.
// Profiles are keyed by block symbol, so they survive relinking — the
// same profile drives layout for any cache configuration, which is
// what lets the paper resize the way-placement area with no
// recompilation.
package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"wayplace/internal/obj"
)

// Profile maps block symbols to execution counts.
type Profile struct {
	Counts map[string]uint64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{Counts: make(map[string]uint64)}
}

// Add increments the count for a block symbol.
func (p *Profile) Add(sym string, n uint64) {
	p.Counts[sym] += n
}

// Count returns the execution count recorded for a block symbol.
func (p *Profile) Count(sym string) uint64 { return p.Counts[sym] }

// InstrWeight returns the block's dynamic instruction count: its
// execution count times its static size. This is the chain weight
// contribution defined in section 3 of the paper ("a weight ... equal
// to the sum of the instruction counts in that chain").
func (p *Profile) InstrWeight(b *obj.Block) uint64 {
	return p.Counts[b.Sym] * uint64(b.NumInstrs())
}

// TotalInstrs returns the profiled dynamic instruction count of the
// whole unit.
func (p *Profile) TotalInstrs(u *obj.Unit) uint64 {
	var total uint64
	for _, b := range u.Blocks() {
		total += p.InstrWeight(b)
	}
	return total
}

// FromInstrCounts aggregates a per-instruction execution count vector
// (indexed like prog.Code) into per-block counts. The block count is
// the execution count of its first instruction — the number of times
// the block was entered.
func FromInstrCounts(prog *obj.Program, counts []uint64) *Profile {
	p := New()
	for _, pl := range prog.Placed {
		idx, ok := prog.IndexOf(pl.Addr)
		if !ok {
			continue
		}
		if idx < len(counts) {
			p.Add(pl.Block.Sym, counts[idx])
		}
	}
	return p
}

// WriteTo serialises the profile as sorted "sym count" lines.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	syms := make([]string, 0, len(p.Counts))
	for s := range p.Counts {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	var n int64
	for _, s := range syms {
		k, err := fmt.Fprintf(w, "%s %d\n", s, p.Counts[s])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Read parses the serialised form produced by WriteTo.
func Read(r io.Reader) (*Profile, error) {
	p := New()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("profile: line %d: want 'sym count', got %q", line, text)
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("profile: line %d: bad count: %v", line, err)
		}
		p.Add(fields[0], n)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: %v", err)
	}
	return p, nil
}
