package cache

// Instruction-fetch engines. Each engine owns a Cache and implements
// one of the three fetch disciplines the paper evaluates. Engines
// return what happened per fetch; the CPU turns that into stall
// cycles, and internal/energy turns the accumulated Stats into energy.

// FetchResult describes one instruction fetch.
type FetchResult struct {
	Hit         bool // line was present (possibly after the extra access)
	Filled      bool // a line fill happened (miss serviced)
	ExtraAccess bool // way-hint mispredict forced a second cache access
}

// FetchEngine is the instruction-side cache interface used by the CPU.
type FetchEngine interface {
	// Fetch performs the instruction fetch for addr. indirect reports
	// that control arrived via an indirect transfer (a return): the
	// previous instruction could not name this target statically.
	// Way-memoization needs this — a link can only be followed
	// blindly when the transfer it memoizes is static, so indirect
	// targets always take the full-search path. The other engines
	// ignore it.
	Fetch(addr uint32, indirect bool) FetchResult
	// Cache exposes the underlying array for statistics.
	Cache() *Cache
	// Name identifies the scheme in reports.
	Name() string
}

// --- baseline ---

// BaselineEngine performs a full W-way tag search on every fetch, the
// paper's unmodified instruction cache (figure 1(b): three fetches on
// a 2-set/4-way cache cost 12 comparisons).
type BaselineEngine struct {
	c *Cache

	// Way holding the most recently fetched line, for FetchSameLine.
	lastSet int
	lastWay int
}

// NewBaseline returns the baseline fetch engine.
func NewBaseline(cfg Config) (*BaselineEngine, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &BaselineEngine{c: c}, nil
}

// Cache returns the underlying array.
func (e *BaselineEngine) Cache() *Cache { return e.c }

// Name returns "baseline".
func (e *BaselineEngine) Name() string { return "baseline" }

// Fetch performs a full-search access.
func (e *BaselineEngine) Fetch(addr uint32, indirect bool) FetchResult {
	c := e.c
	c.Stats.Fetches++
	set, tag := c.setOf(addr), c.tagOf(addr)
	way, hit := c.probeAll(set, tag)
	if hit {
		c.Stats.Hits++
		c.touch(set, way)
		c.Stats.DataReads++
		e.lastSet, e.lastWay = set, way
		return FetchResult{Hit: true}
	}
	c.Stats.Misses++
	w := c.victim(set)
	c.fillAt(set, w, tag)
	c.Stats.NonDesignatedFills++
	c.Stats.DataReads++
	e.lastSet, e.lastWay = set, w
	return FetchResult{Filled: true}
}

// FetchSameLine charges n further fetches of the line the previous
// Fetch touched, in bulk. The caller guarantees every one of the n
// addresses lies in that line (sim.RunMulti's stream segmentation):
// the line is resident — nothing was filled since — so each fetch is a
// full-search hit, and the bulk update leaves every counter and every
// replacement-relevant field (recency, generation, victim pointers)
// exactly as n individual Fetch calls would.
func (e *BaselineEngine) FetchSameLine(n int) {
	c := e.c
	un := uint64(n)
	c.Stats.Fetches += un
	c.Stats.TagComparisons += uint64(c.Cfg.Ways) * un
	c.Stats.FullSearches += un
	c.Stats.Hits += un
	c.Stats.DataReads += un
	c.tick += un
	c.sets[e.lastSet][e.lastWay].lastUse = c.tick
	c.mru[e.lastSet] = e.lastWay
}

// --- way-placement ---

// WPOracle answers whether an address lies in the way-placement area.
// In hardware this is the way-placement bit read from the I-TLB in
// parallel with the cache access (internal/tlb implements it); tests
// can plug in a plain function.
type WPOracle interface {
	WayPlaced(addr uint32) bool
}

// WPOracleFunc adapts a function to the WPOracle interface.
type WPOracleFunc func(addr uint32) bool

// WayPlaced calls f.
func (f WPOracleFunc) WayPlaced(addr uint32) bool { return f(addr) }

// WayPlacementEngine implements the paper's scheme: fetches predicted
// (by the 1-bit way hint) to be inside the way-placement area probe
// only the way named by the address's tag bits; everything else falls
// back to a full search. Sequential fetches within the current line
// skip tag checks entirely (section 4.2's "further modification").
type WayPlacementEngine struct {
	c      *Cache
	oracle WPOracle
	hint   bool // way-hint bit: was the previous fetch way-placed?

	// OracleHint replaces the 1-bit way hint with perfect knowledge
	// of the way-placement bit before the access (as if the I-TLB
	// were read first, at a latency cost the paper rejects). Used by
	// the way-hint ablation.
	OracleHint bool
	// NoSameLine disables the same-line tag-check skip of section
	// 4.2. Used by the same-line ablation.
	NoSameLine bool

	haveLine bool
	lineAddr uint32
	lineSet  int
	lineWay  int
	lineGen  uint64
}

// NewWayPlacement returns the way-placement fetch engine.
func NewWayPlacement(cfg Config, oracle WPOracle) (*WayPlacementEngine, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &WayPlacementEngine{c: c, oracle: oracle}, nil
}

// Cache returns the underlying array.
func (e *WayPlacementEngine) Cache() *Cache { return e.c }

// Name returns "wayplace".
func (e *WayPlacementEngine) Name() string { return "wayplace" }

// sameLine reports whether addr lies in the line buffer established by
// the previous fetch and that line is still resident.
func (e *WayPlacementEngine) sameLine(addr uint32) bool {
	if !e.haveLine || e.c.lineAddr(addr) != e.lineAddr {
		return false
	}
	return e.c.lineRef(e.lineSet, e.lineWay).gen == e.lineGen
}

func (e *WayPlacementEngine) noteLine(addr uint32, set, way int) {
	e.haveLine = true
	e.lineAddr = e.c.lineAddr(addr)
	e.lineSet, e.lineWay = set, way
	e.lineGen = e.c.lineRef(set, way).gen
}

// Fetch performs one way-placement-aware fetch.
func (e *WayPlacementEngine) Fetch(addr uint32, indirect bool) FetchResult {
	c := e.c
	c.Stats.Fetches++
	inWP := e.oracle.WayPlaced(addr)
	if inWP {
		c.Stats.WPAreaFetches++
	}

	if !e.NoSameLine && e.sameLine(addr) {
		c.Stats.SameLineHits++
		c.Stats.Hits++
		c.Stats.DataReads++
		c.touch(e.lineSet, e.lineWay)
		// The way hint tracks the last *fetched* page kind; same-line
		// accesses are on the same page, so the hint is unchanged and
		// stays consistent.
		return FetchResult{Hit: true}
	}

	set, tag := c.setOf(addr), c.tagOf(addr)
	res := FetchResult{}

	hint := e.hint
	if e.OracleHint {
		hint = inWP
	}

	switch {
	case hint && inWP:
		// Predicted way-placed, and it is: single-tag probe.
		c.Stats.HintCorrectWP++
		c.Stats.WPAccesses++
		way := c.wayOf(addr)
		if c.probeOne(set, way, tag) {
			c.Stats.Hits++
			c.touch(set, way)
			c.Stats.DataReads++
			res.Hit = true
			e.noteLine(addr, set, way)
		} else {
			c.Stats.Misses++
			c.fillAt(set, way, tag)
			c.Stats.DesignatedFills++
			c.Stats.DataReads++
			res.Filled = true
			e.noteLine(addr, set, way)
		}

	case hint && !inWP:
		// Predicted way-placed but the I-TLB bit says otherwise: the
		// single-way access already happened and must be discarded; a
		// second, full access follows (cycle + energy penalty, both
		// charged — section 4.1's second scenario).
		c.Stats.HintExtraAccess++
		way := c.wayOf(addr)
		c.probeOne(set, way, tag) // wasted probe
		c.Stats.DataReads++       // wasted data read
		res.ExtraAccess = true
		res = e.fullAccess(addr, set, tag, inWP, res)

	case !hint && inWP:
		// Predicted normal but actually way-placed: we only lose the
		// energy saving (section 4.1's first scenario).
		c.Stats.HintMissedSaving++
		res = e.fullAccess(addr, set, tag, inWP, res)

	default:
		c.Stats.HintCorrectNon++
		res = e.fullAccess(addr, set, tag, inWP, res)
	}

	e.hint = inWP
	return res
}

// FetchSameLine charges n further fetches inside the current line
// buffer, in bulk. The caller guarantees every address lies in the
// line of the previous fetch, on the same page (lastAddr is one of
// them, used for the way-placement-area check — the whole run shares
// its page, so one oracle consultation covers all n), and that the
// engine's same-line optimisation is enabled. Each fetch would take
// the SameLineHits path: no tag check, hint unchanged.
func (e *WayPlacementEngine) FetchSameLine(n int, lastAddr uint32) {
	c := e.c
	un := uint64(n)
	c.Stats.Fetches += un
	if e.oracle.WayPlaced(lastAddr) {
		c.Stats.WPAreaFetches += un
	}
	c.Stats.SameLineHits += un
	c.Stats.Hits += un
	c.Stats.DataReads += un
	c.tick += un
	c.sets[e.lineSet][e.lineWay].lastUse = c.tick
	c.mru[e.lineSet] = e.lineWay
}

// fullAccess performs a conventional all-ways access. Lines belonging
// to the way-placement area are still filled into their designated
// way: placement is a property of the address, not of how the access
// that missed happened to be performed.
func (e *WayPlacementEngine) fullAccess(addr uint32, set int, tag uint32, inWP bool, res FetchResult) FetchResult {
	c := e.c
	if way, hit := c.probeAll(set, tag); hit {
		c.Stats.Hits++
		c.touch(set, way)
		c.Stats.DataReads++
		res.Hit = true
		e.noteLine(addr, set, way)
		return res
	}
	c.Stats.Misses++
	var way int
	if inWP {
		way = c.wayOf(addr)
		c.Stats.DesignatedFills++
	} else {
		way = c.victim(set)
		c.Stats.NonDesignatedFills++
	}
	c.fillAt(set, way, tag)
	c.Stats.DataReads++
	res.Filled = true
	e.noteLine(addr, set, way)
	return res
}

// --- way-memoization ---

// WayMemoizationEngine implements Ma et al.'s scheme: every line
// carries a link per instruction slot (plus one sequential link)
// naming the way the next fetch will hit. A valid link skips all tag
// comparisons; an invalid one falls back to a full search and then
// writes the link. Links die when their target line is evicted
// (modelled precisely with per-line generation numbers).
type WayMemoizationEngine struct {
	c *Cache

	havePrev bool
	prevAddr uint32
	prevSet  int
	prevWay  int
	prevGen  uint64
}

// NewWayMemoization returns the way-memoization fetch engine.
func NewWayMemoization(cfg Config) (*WayMemoizationEngine, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &WayMemoizationEngine{c: c}, nil
}

// Cache returns the underlying array.
func (e *WayMemoizationEngine) Cache() *Cache { return e.c }

// Name returns "waymem".
func (e *WayMemoizationEngine) Name() string { return "waymem" }

func (e *WayMemoizationEngine) prevLine() *line {
	return e.c.lineRef(e.prevSet, e.prevWay)
}

// slotOf returns the instruction slot index of addr within its line.
func (e *WayMemoizationEngine) slotOf(addr uint32) int {
	return e.c.slotOf(addr)
}

// linkFor returns the link the previous fetch provides for the
// current one: the sequential link when execution ran off the end of
// the previous line, or the previous slot's branch link otherwise.
func (e *WayMemoizationEngine) linkFor(addr uint32) *link {
	prev := e.prevLine()
	if prev.gen != e.prevGen {
		// The previous line was replaced between fetches; its links
		// are gone with it.
		return nil
	}
	if addr == e.prevAddr+4 {
		return &prev.seq
	}
	if prev.slots == nil {
		return nil
	}
	return &prev.slots[e.slotOf(e.prevAddr)]
}

// Fetch performs one way-memoizing fetch.
func (e *WayMemoizationEngine) Fetch(addr uint32, indirect bool) FetchResult {
	c := e.c
	c.Stats.Fetches++
	cfg := c.Cfg
	set, tag := c.setOf(addr), c.tagOf(addr)

	// Intra-line sequential fetch: no tag check (the same optimisation
	// the paper applies to its own scheme, section 4.2 / ref [12]).
	if e.havePrev && c.lineAddr(addr) == c.lineAddr(e.prevAddr) &&
		e.prevLine().gen == e.prevGen {
		c.Stats.SameLineHits++
		c.Stats.Hits++
		c.Stats.DataReads++
		c.touch(e.prevSet, e.prevWay)
		e.prevAddr = addr
		return FetchResult{Hit: true}
	}

	// Cross-line: consult the link left by the previous fetch.
	// Indirect transfers (returns) cannot be memoized: the link in the
	// return instruction's slot names whatever call site ran last, and
	// following it blindly would deliver the wrong line, so the
	// hardware always takes the verified full-search path for them.
	if e.havePrev && !indirect {
		if lk := e.linkFor(addr); lk != nil && lk.valid {
			if lk.gen == c.lineRef(lk.set, lk.way).gen && lk.set == set &&
				c.lineRef(lk.set, lk.way).tag == tag {
				// Valid link: zero tag comparisons.
				c.Stats.LinkedAccesses++
				c.Stats.Hits++
				c.Stats.DataReads++
				c.touch(lk.set, lk.way)
				e.note(addr, lk.set, lk.way)
				return FetchResult{Hit: true}
			}
			// Link points at a replaced or mismatching line: it has
			// been invalidated by the eviction logic.
			c.Stats.StaleLinks++
			lk.valid = false
		}
	}

	// No usable link: conventional access, then memoize.
	res := FetchResult{}
	way, hit := c.probeAll(set, tag)
	if hit {
		c.Stats.Hits++
		c.touch(set, way)
		c.Stats.DataReads++
		res.Hit = true
	} else {
		c.Stats.Misses++
		way = c.victim(set)
		c.fillAt(set, way, tag)
		c.Stats.NonDesignatedFills++
		c.Stats.DataReads++
		res.Filled = true
	}
	// Write the link into the previous line (if it survived). Links
	// are only written for static transfers, matching the follow rule.
	if e.havePrev && !indirect {
		prev := e.prevLine()
		if prev.gen == e.prevGen {
			target := link{valid: true, set: set, way: way, gen: c.lineRef(set, way).gen}
			if addr == e.prevAddr+4 {
				prev.seq = target
			} else {
				if prev.slots == nil {
					prev.slots = make([]link, cfg.InstrsPerLine())
				}
				prev.slots[e.slotOf(e.prevAddr)] = target
			}
			c.Stats.LinkWrites++
		}
	}
	e.note(addr, set, way)
	return res
}

// FetchSameLine charges n further fetches inside the previous fetch's
// line, in bulk. The caller guarantees every address lies in that line
// (the intra-line path ignores the indirect flag, so any same-line
// transfer qualifies). lastAddr must be the last of the n addresses:
// the next cross-line fetch consults the link slot of the previous
// *address*, so the memoization state has to end exactly where n
// individual Fetch calls would leave it.
func (e *WayMemoizationEngine) FetchSameLine(n int, lastAddr uint32) {
	c := e.c
	un := uint64(n)
	c.Stats.Fetches += un
	c.Stats.SameLineHits += un
	c.Stats.Hits += un
	c.Stats.DataReads += un
	c.tick += un
	c.sets[e.prevSet][e.prevWay].lastUse = c.tick
	c.mru[e.prevSet] = e.prevWay
	e.prevAddr = lastAddr
}

func (e *WayMemoizationEngine) note(addr uint32, set, way int) {
	e.havePrev = true
	e.prevAddr = addr
	e.prevSet, e.prevWay = set, way
	e.prevGen = e.c.lineRef(set, way).gen
}
