package cache

import "testing"

func TestFlushInvalidatesEverything(t *testing.T) {
	e, _ := NewBaseline(Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32})
	for a := uint32(0); a < 1<<10; a += 32 {
		e.Fetch(a, false)
	}
	if _, ok := e.Cache().Contains(0); !ok {
		t.Fatal("line not resident before flush")
	}
	e.Cache().Flush()
	for a := uint32(0); a < 1<<10; a += 32 {
		if _, ok := e.Cache().Contains(a); ok {
			t.Fatalf("line %#x survived the flush", a)
		}
	}
	if e.Cache().Stats.Flushes != 1 {
		t.Errorf("flush count = %d", e.Cache().Stats.Flushes)
	}
	// Refetching works and counts as misses again.
	pre := e.Cache().Stats.Misses
	e.Fetch(0, false)
	if e.Cache().Stats.Misses != pre+1 {
		t.Error("post-flush fetch did not miss")
	}
}

func TestFlushKillsSameLineBufferAndLinks(t *testing.T) {
	cfg := Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32}

	// Way-placement: the line buffer must not serve a flushed line.
	wp, _ := NewWayPlacement(cfg, WPOracleFunc(func(uint32) bool { return true }))
	wp.Fetch(0x00, false)
	wp.Fetch(0x04, false) // same-line path armed
	wp.Cache().Flush()
	res := wp.Fetch(0x08, false)
	if res.Hit {
		t.Error("same-line buffer served a flushed line")
	}
	if !res.Filled {
		t.Error("post-flush fetch did not refill")
	}

	// Way-memoization: links to flushed lines must be stale.
	wm, _ := NewWayMemoization(cfg)
	wm.Fetch(0x1c, false)
	wm.Fetch(0x20, false) // seq link written
	wm.Fetch(0x1c, false)
	wm.Fetch(0x20, false) // linked
	if wm.Cache().Stats.LinkedAccesses == 0 {
		t.Fatal("link never armed")
	}
	wm.Cache().Flush()
	pre := wm.Cache().Stats.LinkedAccesses
	wm.Fetch(0x1c, false)
	wm.Fetch(0x20, false)
	if wm.Cache().Stats.LinkedAccesses != pre {
		t.Error("a link survived the flush")
	}
}

// TestWPAreaLargerThanCacheAliases: when the OS overcommits the area,
// distinct way-placed lines share a designated slot and evict each
// other — correct but wasteful, which is why the adaptive policy
// shrinks the area in that regime.
func TestWPAreaLargerThanCacheAliases(t *testing.T) {
	cfg := Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32}
	e, _ := NewWayPlacement(cfg, WPOracleFunc(func(a uint32) bool { return a < 2<<10 }))
	a, b := uint32(0x000), uint32(0x400) // 1KB apart: same (set, way)
	if cfg.SetOf(a) != cfg.SetOf(b) || cfg.WayOf(a) != cfg.WayOf(b) {
		t.Fatal("test addresses do not alias")
	}
	e.Fetch(a, false)
	e.Fetch(b, false) // evicts a from the shared designated way
	if _, ok := e.Cache().Contains(a); ok {
		t.Error("aliasing line was not evicted from the designated way")
	}
	r := e.Fetch(a, false)
	if !r.Filled {
		t.Error("re-fetch of evicted aliasing line did not refill")
	}
	// Semantics stay correct throughout: the line now resident is a's.
	if _, ok := e.Cache().Contains(a); !ok {
		t.Error("line a not resident after refill")
	}
}

// TestWayMemConditionalBranchAlternation: a conditional branch whose
// taken path crosses lines uses its slot link; the not-taken path
// crossing sequentially uses the seq link. Alternating directions must
// not thrash either link.
func TestWayMemConditionalBranchAlternation(t *testing.T) {
	cfg := Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32}
	e, _ := NewWayMemoization(cfg)
	const brAddr = 0x1c   // last slot of line 0
	const seqTgt = 0x20   // sequential successor (next line)
	const takenTgt = 0x80 // branch target (different line)

	warm := func(taken bool) {
		e.Fetch(brAddr, false)
		if taken {
			e.Fetch(takenTgt, false)
		} else {
			e.Fetch(seqTgt, false)
		}
	}
	// Arm both links.
	warm(false)
	warm(true)
	pre := e.Cache().Stats.TagComparisons
	// Alternate; both directions should now be linked (0 comparisons
	// except the fetch OF brAddr itself, which is a cross-line
	// transfer from the previous target... warm that too).
	for i := 0; i < 8; i++ {
		warm(i%2 == 0)
	}
	got := e.Cache().Stats.TagComparisons - pre
	// Transfers back to brAddr from the two targets also become
	// linked after one round each; allow those two cold searches.
	if got > uint64(2*cfg.Ways) {
		t.Errorf("alternating branch cost %d comparisons, want <= %d (links must not thrash)",
			got, 2*cfg.Ways)
	}
}

func TestProbeCountsPerKind(t *testing.T) {
	cfg := Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32}
	e, _ := NewWayPlacement(cfg, WPOracleFunc(func(a uint32) bool { return a < 512 }))
	e.Fetch(0x000, false) // hint cold, in area: missed saving, full search, designated fill
	e.Fetch(0x200, false) // hint now WP but outside: wasted probe + full search, policy fill
	e.Fetch(0x000, false) // hint non-WP, in area: missed saving again, full search, hit
	e.Fetch(0x020, false) // hint WP, in area: single probe, designated fill
	s := e.Cache().Stats
	if s.FullSearches != 3 || s.SingleSearches != 2 {
		t.Errorf("searches = %d full / %d single, want 3/2 (one probe was the wasted hint access)",
			s.FullSearches, s.SingleSearches)
	}
	if s.DesignatedFills != 2 || s.NonDesignatedFills != 1 {
		t.Errorf("fills = %d designated / %d policy, want 2/1",
			s.DesignatedFills, s.NonDesignatedFills)
	}
	if s.HintMissedSaving != 2 || s.HintCorrectWP != 1 || s.HintExtraAccess != 1 {
		t.Errorf("hint stats = %+v", s)
	}
}
