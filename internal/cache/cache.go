// Package cache models the set-associative, CAM-tagged instruction
// and data caches of the paper's XScale-like platform, together with
// the three instruction-fetch disciplines the evaluation compares:
//
//   - baseline: every fetch searches all W tags of one set;
//   - way-placement (the paper's scheme): fetches inside the
//     way-placement area probe exactly one way, selected by address
//     bits, steered by the 1-bit way hint;
//   - way-memoization (Ma et al.): cache lines carry links naming the
//     way of the next fetch, skipping tag checks when a link is valid
//     at the price of a wider data array.
//
// The cache core only records *events* (tag comparisons, data reads,
// fills, link writes); internal/energy turns events into energy.
package cache

import (
	"fmt"
	"math/bits"
)

// Policy selects the replacement policy.
type Policy uint8

// Replacement policies. XScale uses round-robin; LRU exists for the
// replacement ablation.
const (
	RoundRobin Policy = iota
	LRU
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LRU:
		return "lru"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Config describes one cache's geometry.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
	Policy    Policy
}

// Validate checks that the geometry is realisable (power-of-two
// fields, at least one set).
func (c Config) Validate() error {
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	if !pow2(c.SizeBytes) || !pow2(c.Ways) || !pow2(c.LineBytes) {
		return fmt.Errorf("cache: size/ways/line must be powers of two, got %d/%d/%d",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	if c.LineBytes < 4 {
		return fmt.Errorf("cache: line size %d below word size", c.LineBytes)
	}
	if c.SizeBytes < c.Ways*c.LineBytes {
		return fmt.Errorf("cache: %dB/%d-way/%dB-line leaves no full set",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// OffsetBits returns the number of line-offset address bits.
func (c Config) OffsetBits() int { return bits.TrailingZeros(uint(c.LineBytes)) }

// SetBits returns the number of set-index address bits.
func (c Config) SetBits() int { return bits.TrailingZeros(uint(c.Sets())) }

// WayBits returns the number of way-select bits used by a
// way-placement access (the tag's least significant bits).
func (c Config) WayBits() int { return bits.TrailingZeros(uint(c.Ways)) }

// TagBits returns the tag width for 32-bit addresses. The paper keeps
// the tag full length: the way-placement bits are *also* part of the
// tag, so a WP probe still verifies the full tag.
func (c Config) TagBits() int { return 32 - c.SetBits() - c.OffsetBits() }

// SetOf returns the set index of an address.
func (c Config) SetOf(addr uint32) int {
	return int(addr>>c.OffsetBits()) & (c.Sets() - 1)
}

// TagOf returns the tag of an address.
func (c Config) TagOf(addr uint32) uint32 {
	return addr >> (c.OffsetBits() + c.SetBits())
}

// WayOf returns the way a way-placed address maps to: the least
// significant WayBits of the tag (section 4.2: "the least significant
// bits from the address tag ... a simple multiplexor can be used to
// select one of 2^N ways given N bits from the tag").
func (c Config) WayOf(addr uint32) int {
	return int(c.TagOf(addr)) & (c.Ways - 1)
}

// LineAddr returns the address of the line containing addr.
func (c Config) LineAddr(addr uint32) uint32 {
	return addr &^ uint32(c.LineBytes-1)
}

// InstrsPerLine returns how many 4-byte instructions fit in a line.
func (c Config) InstrsPerLine() int { return c.LineBytes / 4 }

// LinkBits returns the width of one way-memoization link: way-select
// bits plus a valid bit (6 bits for a 32-way cache).
func (c Config) LinkBits() int { return c.WayBits() + 1 }

// LinkOverhead returns the fraction by which way-memoization links
// enlarge the data array: (instrsPerLine+1) links per line over the
// line's data bits. For 32B lines and 32 ways this is 9*6/256 = 21%,
// the figure quoted in section 5.
func (c Config) LinkOverhead() float64 {
	linkBits := (c.InstrsPerLine() + 1) * c.LinkBits()
	return float64(linkBits) / float64(c.LineBytes*8)
}

// Stats counts the events the energy model charges for.
type Stats struct {
	Fetches uint64 // instruction fetches requested (I-side)

	SameLineHits   uint64 // sequential fetches served without any tag check
	FullSearches   uint64 // accesses comparing all W tags
	SingleSearches uint64 // way-placement accesses comparing 1 tag
	LinkedAccesses uint64 // way-memoization accesses comparing 0 tags
	TagComparisons uint64 // total individual tag comparisons

	Hits      uint64
	Misses    uint64
	LineFills uint64

	DataReads  uint64 // data-array word reads
	DataWrites uint64 // data-array word writes (D-cache)
	Writebacks uint64 // dirty line writebacks (D-cache)

	LinkWrites uint64 // way-memoization link updates
	StaleLinks uint64 // links found invalidated by eviction

	Flushes uint64 // whole-cache invalidations (OS area resizes)

	HintCorrectWP      uint64 // hint=WP and access was WP
	HintCorrectNon     uint64 // hint=non-WP and access was non-WP
	HintMissedSaving   uint64 // hint=non-WP but access was WP (lost saving)
	HintExtraAccess    uint64 // hint=WP but access was non-WP (second access)
	WPAccesses         uint64 // fetches that used the single-tag path
	WPAreaFetches      uint64 // fetches whose address lies in the WP area
	DesignatedFills    uint64 // fills forced into the way-placed way
	NonDesignatedFills uint64 // fills chosen by the replacement policy
}

// MissRate returns misses / (hits+misses).
func (s *Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type link struct {
	valid bool
	set   int
	way   int
	gen   uint64 // matches the target line's generation when still valid
}

type line struct {
	valid   bool
	tag     uint32
	dirty   bool
	lastUse uint64
	gen     uint64 // bumped on every (re)fill, invalidating inbound links
	seq     link   // way-memoization: way of the next sequential line
	slots   []link // way-memoization: per-instruction branch links
}

// Cache is one cache array instance.
type Cache struct {
	Cfg   Config
	Stats Stats

	sets [][]line
	rr   []int // round-robin victim pointer per set
	mru  []int // most recently touched/filled way per set (probe shortcut)
	tick uint64
	gen  uint64

	// Address decomposition, precomputed from Cfg at construction: the
	// Config methods derive shifts and masks from first principles on
	// every call, which is measurable on the per-fetch path.
	offBits  uint32
	setMask  uint32
	tagShift uint32
	lineMask uint32
	wayMask  uint32
	slotMask uint32
}

// setOf/tagOf/wayOf/lineAddr/slotOf mirror the Config methods of the
// same names using the precomputed masks (hot-path variants).
func (c *Cache) setOf(addr uint32) int       { return int((addr >> c.offBits) & c.setMask) }
func (c *Cache) tagOf(addr uint32) uint32    { return addr >> c.tagShift }
func (c *Cache) wayOf(addr uint32) int       { return int((addr >> c.tagShift) & c.wayMask) }
func (c *Cache) lineAddr(addr uint32) uint32 { return addr & c.lineMask }
func (c *Cache) slotOf(addr uint32) int      { return int((addr >> 2) & c.slotMask) }

// New builds an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{Cfg: cfg}
	c.offBits = uint32(cfg.OffsetBits())
	c.setMask = uint32(cfg.Sets() - 1)
	c.tagShift = uint32(cfg.OffsetBits() + cfg.SetBits())
	c.lineMask = ^uint32(cfg.LineBytes - 1)
	c.wayMask = uint32(cfg.Ways - 1)
	c.slotMask = uint32(cfg.InstrsPerLine() - 1)
	c.sets = make([][]line, cfg.Sets())
	storage := make([]line, cfg.Sets()*cfg.Ways)
	for i := range c.sets {
		c.sets[i], storage = storage[:cfg.Ways:cfg.Ways], storage[cfg.Ways:]
	}
	c.rr = make([]int, cfg.Sets())
	c.mru = make([]int, cfg.Sets())
	return c, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// probeAll compares the tag against every way of the set, counting W
// comparisons, and returns the matching way.
func (c *Cache) probeAll(set int, tag uint32) (int, bool) {
	c.Stats.TagComparisons += uint64(c.Cfg.Ways)
	c.Stats.FullSearches++
	// Most-recently-used shortcut. All W comparisons are charged above
	// regardless — in hardware they happen in parallel — and a tag is
	// resident in at most one way (fills only follow a full-search
	// miss, and way-placed lines only ever fill their designated way),
	// so checking the MRU way first cannot change the outcome.
	if w := c.mru[set]; w < len(c.sets[set]) {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return w, true
		}
	}
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return w, true
		}
	}
	return -1, false
}

// probeOne compares the tag against a single way, counting one
// comparison.
func (c *Cache) probeOne(set, way int, tag uint32) bool {
	c.Stats.TagComparisons++
	c.Stats.SingleSearches++
	l := &c.sets[set][way]
	return l.valid && l.tag == tag
}

// Contains reports (without charging any events) whether the line
// holding addr is present, and in which way. Test/diagnostic helper.
func (c *Cache) Contains(addr uint32) (way int, ok bool) {
	set, tag := c.Cfg.SetOf(addr), c.Cfg.TagOf(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return w, true
		}
	}
	return -1, false
}

// victim selects a way to evict in the set according to the policy.
func (c *Cache) victim(set int) int {
	ways := c.sets[set]
	// Prefer an invalid way.
	for w := range ways {
		if !ways[w].valid {
			return w
		}
	}
	switch c.Cfg.Policy {
	case LRU:
		best, bestUse := 0, ways[0].lastUse
		for w := 1; w < len(ways); w++ {
			if ways[w].lastUse < bestUse {
				best, bestUse = w, ways[w].lastUse
			}
		}
		return best
	default: // round-robin
		w := c.rr[set]
		c.rr[set] = (w + 1) % c.Cfg.Ways
		return w
	}
}

// fillAt installs the line for addr into (set, way), returning whether
// a dirty line was evicted. The line's generation is bumped so that
// way-memoization links into the old occupant die.
func (c *Cache) fillAt(set, way int, tag uint32) (evictedDirty bool) {
	l := &c.sets[set][way]
	evictedDirty = l.valid && l.dirty
	c.gen++
	*l = line{valid: true, tag: tag, lastUse: c.tick, gen: c.gen}
	c.Stats.LineFills++
	c.mru[set] = way
	return evictedDirty
}

// touch updates LRU state for a hit.
func (c *Cache) touch(set, way int) {
	c.tick++
	c.sets[set][way].lastUse = c.tick
	c.mru[set] = way
}

// lineRef returns the line at (set, way).
func (c *Cache) lineRef(set, way int) *line { return &c.sets[set][way] }

// Flush invalidates every line. The operating system flushes the
// instruction cache when it resizes the way-placement area (section
// 4.1 lets the OS adjust the area during execution; a flush keeps
// "designated way" placement consistent across the change). Flushes
// are counted so their refill cost shows up in energy and cycles.
func (c *Cache) Flush() {
	for set := range c.sets {
		for way := range c.sets[set] {
			l := &c.sets[set][way]
			if l.valid {
				c.gen++
				*l = line{gen: c.gen}
			}
		}
	}
	c.Stats.Flushes++
}
