package cache

// DataCache wraps a Cache with conventional read/write-allocate,
// write-back data-side behaviour. The paper leaves the D-cache
// untouched; it exists so the whole-processor energy and the ED
// product include realistic data-side activity.
type DataCache struct {
	c *Cache
}

// NewData builds a data cache.
func NewData(cfg Config) (*DataCache, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &DataCache{c: c}, nil
}

// Cache returns the underlying array.
func (d *DataCache) Cache() *Cache { return d.c }

// AccessResult describes one data access.
type AccessResult struct {
	Hit       bool
	Filled    bool
	Writeback bool // a dirty victim was written back
}

func (d *DataCache) access(addr uint32, write bool) AccessResult {
	c := d.c
	set, tag := c.setOf(addr), c.tagOf(addr)
	way, hit := c.probeAll(set, tag)
	res := AccessResult{Hit: hit}
	if !hit {
		c.Stats.Misses++
		way = c.victim(set)
		res.Writeback = c.fillAt(set, way, tag)
		if res.Writeback {
			c.Stats.Writebacks++
		}
		c.Stats.NonDesignatedFills++
		res.Filled = true
	} else {
		c.Stats.Hits++
	}
	c.touch(set, way)
	if write {
		c.sets[set][way].dirty = true
		c.Stats.DataWrites++
	} else {
		c.Stats.DataReads++
	}
	return res
}

// Read performs a load access.
func (d *DataCache) Read(addr uint32) AccessResult { return d.access(addr, false) }

// Write performs a store access (write-allocate, write-back).
func (d *DataCache) Write(addr uint32) AccessResult { return d.access(addr, true) }
