package cache

import (
	"testing"
	"testing/quick"
)

// xscale32 is the paper's initial configuration: 32KB, 32-way, 32B
// lines (XScale I-cache).
func xscale32() Config {
	return Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32, Policy: RoundRobin}
}

func TestGeometry(t *testing.T) {
	cfg := xscale32()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.Sets() != 32 {
		t.Errorf("Sets = %d, want 32", cfg.Sets())
	}
	if cfg.OffsetBits() != 5 || cfg.SetBits() != 5 || cfg.WayBits() != 5 {
		t.Errorf("bits = %d/%d/%d, want 5/5/5", cfg.OffsetBits(), cfg.SetBits(), cfg.WayBits())
	}
	if cfg.TagBits() != 22 {
		t.Errorf("TagBits = %d, want 22", cfg.TagBits())
	}
	if cfg.InstrsPerLine() != 8 {
		t.Errorf("InstrsPerLine = %d, want 8", cfg.InstrsPerLine())
	}
	if cfg.LinkBits() != 6 {
		t.Errorf("LinkBits = %d, want 6", cfg.LinkBits())
	}
	// The paper: 9 links x 6 bits over a 256-bit line = 21%.
	if ov := cfg.LinkOverhead(); ov < 0.21 || ov > 0.212 {
		t.Errorf("LinkOverhead = %.4f, want ~0.211", ov)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 3000, Ways: 4, LineBytes: 32},
		{SizeBytes: 4096, Ways: 3, LineBytes: 32},
		{SizeBytes: 4096, Ways: 4, LineBytes: 24},
		{SizeBytes: 4096, Ways: 4, LineBytes: 2},
		{SizeBytes: 64, Ways: 32, LineBytes: 32},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid geometry", cfg)
		}
	}
}

func TestAddressDecomposition(t *testing.T) {
	cfg := xscale32()
	addr := uint32(0x0001_2345)
	set, tag, way := cfg.SetOf(addr), cfg.TagOf(addr), cfg.WayOf(addr)
	if got := cfg.LineAddr(addr); got != 0x0001_2340 {
		t.Errorf("LineAddr = %#x", got)
	}
	if set != int(addr>>5)&31 {
		t.Errorf("SetOf = %d", set)
	}
	if tag != addr>>10 {
		t.Errorf("TagOf = %#x", tag)
	}
	if way != int(addr>>10)&31 {
		t.Errorf("WayOf = %d", way)
	}
}

// TestWPRegionBijection verifies the core property the scheme relies
// on: a region of exactly cache-size bytes maps bijectively onto the
// (set, way) grid, so way-placed hot code never self-conflicts.
func TestWPRegionBijection(t *testing.T) {
	for _, cfg := range []Config{
		xscale32(),
		{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32},
		{SizeBytes: 16 << 10, Ways: 16, LineBytes: 32},
	} {
		seen := make(map[[2]int]bool)
		base := uint32(0x0040_0000)
		for off := uint32(0); off < uint32(cfg.SizeBytes); off += uint32(cfg.LineBytes) {
			key := [2]int{cfg.SetOf(base + off), cfg.WayOf(base + off)}
			if seen[key] {
				t.Fatalf("cfg %+v: offset %#x collides at set/way %v", cfg, off, key)
			}
			seen[key] = true
		}
		if len(seen) != cfg.Sets()*cfg.Ways {
			t.Fatalf("cfg %+v: %d distinct slots, want %d", cfg, len(seen), cfg.Sets()*cfg.Ways)
		}
	}
}

func TestWPRegionBijectionProperty(t *testing.T) {
	// For any power-of-two geometry and any aligned base, distinct
	// lines within one cache-size window never share (set, way).
	f := func(sizeLog, wayLog uint8, baseSel uint16) bool {
		size := 1 << (10 + sizeLog%6) // 1KB..32KB
		ways := 1 << (wayLog % 6)     // 1..32
		cfg := Config{SizeBytes: size, Ways: ways, LineBytes: 32}
		if cfg.Validate() != nil {
			return true
		}
		base := uint32(baseSel) * uint32(size) // window-aligned base
		seen := make(map[[2]int]bool)
		for off := uint32(0); off < uint32(size); off += 32 {
			key := [2]int{cfg.SetOf(base + off), cfg.WayOf(base + off)}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// fig1Config is the figure 1 cache: two sets, four ways. One
// instruction per line so every fetch is a distinct cache access.
func fig1Config() Config {
	return Config{SizeBytes: 32, Ways: 4, LineBytes: 4, Policy: RoundRobin}
}

// TestFigure1Baseline reproduces figure 1(b): fetching the add (0x04),
// br (0x08) and mul (0x20) from a 2-set, 4-way cache costs 12 tag
// comparisons with conventional accesses.
func TestFigure1Baseline(t *testing.T) {
	e, err := NewBaseline(fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []uint32{0x04, 0x08, 0x20} {
		e.Fetch(a, false)
	}
	if got := e.Cache().Stats.TagComparisons; got != 12 {
		t.Errorf("baseline tag comparisons = %d, want 12", got)
	}
}

// TestFigure1WayPlacement reproduces figure 1(c): with all three
// instructions way-placed, the same fetches cost 3 tag comparisons.
func TestFigure1WayPlacement(t *testing.T) {
	e, err := NewWayPlacement(fig1Config(), WPOracleFunc(func(uint32) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	e.hint = true // warm hint, as in the figure's steady state
	for _, a := range []uint32{0x04, 0x08, 0x20} {
		e.Fetch(a, false)
	}
	if got := e.Cache().Stats.TagComparisons; got != 3 {
		t.Errorf("way-placement tag comparisons = %d, want 3", got)
	}
	if e.Cache().Stats.SingleSearches != 3 {
		t.Errorf("single searches = %d, want 3", e.Cache().Stats.SingleSearches)
	}
}

func TestBaselineHitMiss(t *testing.T) {
	e, _ := NewBaseline(xscale32())
	r1 := e.Fetch(0x1000, false)
	if r1.Hit || !r1.Filled {
		t.Errorf("cold fetch: %+v, want miss+fill", r1)
	}
	r2 := e.Fetch(0x1000, false)
	if !r2.Hit || r2.Filled {
		t.Errorf("warm fetch: %+v, want hit", r2)
	}
	s := e.Cache().Stats
	if s.Hits != 1 || s.Misses != 1 || s.LineFills != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Same line, different word: baseline still does a full search.
	e.Fetch(0x1004, false)
	if e.Cache().Stats.FullSearches != 3 {
		t.Errorf("full searches = %d, want 3 (baseline has no same-line skip)",
			e.Cache().Stats.FullSearches)
	}
}

func TestWayPlacementSameLineSkip(t *testing.T) {
	e, _ := NewWayPlacement(xscale32(), WPOracleFunc(func(uint32) bool { return true }))
	e.Fetch(0x1000, false) // miss, fill
	e.Fetch(0x1004, false) // same line: no tag check
	e.Fetch(0x1008, false)
	s := e.Cache().Stats
	if s.SameLineHits != 2 {
		t.Errorf("same-line hits = %d, want 2", s.SameLineHits)
	}
	// First fetch: hint=false, inWP=true -> missed saving, full search.
	if s.HintMissedSaving != 1 {
		t.Errorf("missed savings = %d, want 1", s.HintMissedSaving)
	}
	if s.TagComparisons != uint64(e.Cache().Cfg.Ways) {
		t.Errorf("tag comparisons = %d, want %d", s.TagComparisons, e.Cache().Cfg.Ways)
	}
}

func TestWayPlacementDesignatedWay(t *testing.T) {
	cfg := xscale32()
	e, _ := NewWayPlacement(cfg, WPOracleFunc(func(a uint32) bool { return a < 16<<10 }))
	addr := uint32(0x2f40) // inside the 16KB WP area
	e.Fetch(addr, false)
	way, ok := e.Cache().Contains(addr)
	if !ok {
		t.Fatal("line not resident after fill")
	}
	if way != cfg.WayOf(addr) {
		t.Errorf("filled way %d, want designated way %d", way, cfg.WayOf(addr))
	}
	if e.Cache().Stats.DesignatedFills != 1 {
		t.Errorf("designated fills = %d, want 1", e.Cache().Stats.DesignatedFills)
	}
	// A warm re-fetch (after touching another WP line so the hint is
	// set and the line buffer points elsewhere) probes one way only.
	e.Fetch(addr+uint32(cfg.LineBytes)*64, false) // different line, also WP
	pre := e.Cache().Stats.TagComparisons
	e.Fetch(addr, false)
	if got := e.Cache().Stats.TagComparisons - pre; got != 1 {
		t.Errorf("warm WP fetch cost %d comparisons, want 1", got)
	}
}

func TestWayPlacementHintMispredict(t *testing.T) {
	cfg := xscale32()
	wpLimit := uint32(4 << 10)
	e, _ := NewWayPlacement(cfg, WPOracleFunc(func(a uint32) bool { return a < wpLimit }))

	// Establish hint=true by fetching a WP line twice (second fetch is
	// the WP access).
	e.Fetch(0x100, false)
	// Now fetch a non-WP address: hint says WP -> extra access.
	res := e.Fetch(wpLimit+0x100, false)
	if !res.ExtraAccess {
		t.Errorf("expected extra access on hint mispredict, got %+v", res)
	}
	s := e.Cache().Stats
	if s.HintExtraAccess != 1 {
		t.Errorf("HintExtraAccess = %d, want 1", s.HintExtraAccess)
	}
	// And coming back to WP code with hint=false loses a saving.
	e.Fetch(0x200, false)
	if e.Cache().Stats.HintMissedSaving != 2 {
		// First fetch ever also misses a saving (hint starts false).
		t.Errorf("HintMissedSaving = %d, want 2", e.Cache().Stats.HintMissedSaving)
	}
}

// TestWayPlacementNoSelfConflict: streaming over a WP area equal to
// the cache size twice must miss only on the first pass.
func TestWayPlacementNoSelfConflict(t *testing.T) {
	cfg := Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32, Policy: RoundRobin}
	e, _ := NewWayPlacement(cfg, WPOracleFunc(func(a uint32) bool { return a < 8<<10 }))
	fetchAll := func() {
		for a := uint32(0); a < 8<<10; a += 4 {
			e.Fetch(a, false)
		}
	}
	fetchAll()
	missesAfterFirst := e.Cache().Stats.Misses
	fetchAll()
	if e.Cache().Stats.Misses != missesAfterFirst {
		t.Errorf("second pass missed: %d -> %d", missesAfterFirst, e.Cache().Stats.Misses)
	}
	if want := uint64(8 << 10 / 32); missesAfterFirst != want {
		t.Errorf("first pass misses = %d, want %d (one per line)", missesAfterFirst, want)
	}
}

func TestWayMemoizationLinks(t *testing.T) {
	cfg := xscale32()
	e, _ := NewWayMemoization(cfg)
	lineInstrs := uint32(cfg.LineBytes)

	// Walk three consecutive lines twice. Second pass: line-to-line
	// transitions follow sequential links with zero tag comparisons.
	walk := func() {
		for a := uint32(0x1000); a < 0x1000+3*lineInstrs; a += 4 {
			e.Fetch(a, false)
		}
		// Jump back to start (a "branch").
	}
	walk()
	s1 := e.Cache().Stats
	if s1.LinkWrites == 0 {
		t.Error("no links written on first pass")
	}
	pre := e.Cache().Stats.TagComparisons
	// Branch back: the branch link from the last slot is cold, so one
	// full search, then sequential links cover the line crossings.
	walk()
	s2 := e.Cache().Stats
	gotCmp := s2.TagComparisons - pre
	// Second pass: 1 full search (branch back) + 2 linked crossings.
	if want := uint64(cfg.Ways); gotCmp != want {
		t.Errorf("second pass comparisons = %d, want %d", gotCmp, want)
	}
	if s2.LinkedAccesses != 2 {
		t.Errorf("linked accesses = %d, want 2", s2.LinkedAccesses)
	}
	// Third pass: now even the branch back is linked.
	pre = e.Cache().Stats.TagComparisons
	walk()
	if got := e.Cache().Stats.TagComparisons - pre; got != 0 {
		t.Errorf("third pass comparisons = %d, want 0", got)
	}
}

func TestWayMemoizationStaleLinkAfterEviction(t *testing.T) {
	// Tiny cache: 2 sets, 2 ways, 8B lines -> easy to evict.
	cfg := Config{SizeBytes: 32, Ways: 2, LineBytes: 8, Policy: RoundRobin}
	e, _ := NewWayMemoization(cfg)

	// a and b are consecutive lines; walk a->b to create a seq link.
	e.Fetch(0x00, false)
	e.Fetch(0x08, false) // crosses into line 1, set 1; link written in line 0
	// Evict line 0x08 by filling its set with conflicting lines.
	e.Fetch(0x18, false) // set 1
	e.Fetch(0x28, false) // set 1 -> evicts one of them
	e.Fetch(0x38, false) // set 1 -> evicts the other
	// Now walk a->b again: the link in line 0 (if line 0 survived) or
	// the rebuild path must not produce a wrong hit.
	e.Fetch(0x00, false)
	r := e.Fetch(0x08, false)
	if !r.Hit && !r.Filled {
		t.Errorf("fetch neither hit nor filled: %+v", r)
	}
	// The data delivered must be for the right line: Contains agrees.
	if _, ok := e.Cache().Contains(0x08); !ok {
		t.Error("line 0x08 not resident after fetch")
	}
}

func TestDataCacheWriteback(t *testing.T) {
	cfg := Config{SizeBytes: 64, Ways: 2, LineBytes: 16, Policy: LRU}
	d, err := NewData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a line, then evict it with two conflicting fills.
	if r := d.Write(0x00); r.Hit {
		t.Error("cold write hit")
	}
	d.Read(0x40) // same set (2 sets: set = (addr>>4)&1 -> 0x00,0x40 set 0)
	r := d.Read(0x80)
	if !r.Filled {
		t.Fatalf("expected fill, got %+v", r)
	}
	if !r.Writeback {
		t.Errorf("expected dirty writeback on eviction, got %+v", r)
	}
	s := d.Cache().Stats
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	if s.DataWrites != 1 || s.DataReads != 2 {
		t.Errorf("reads/writes = %d/%d, want 2/1", s.DataReads, s.DataWrites)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := Config{SizeBytes: 64, Ways: 2, LineBytes: 16, Policy: LRU}
	d, _ := NewData(cfg)
	d.Read(0x00) // set 0, fill
	d.Read(0x40) // set 0, fill (set full)
	d.Read(0x00) // touch 0x00 -> 0x40 is LRU
	d.Read(0x80) // evicts 0x40
	if _, ok := d.Cache().Contains(0x00); !ok {
		t.Error("LRU evicted the recently used line")
	}
	if _, ok := d.Cache().Contains(0x40); ok {
		t.Error("LRU kept the least recently used line")
	}
}

func TestRoundRobinReplacement(t *testing.T) {
	cfg := Config{SizeBytes: 64, Ways: 2, LineBytes: 16, Policy: RoundRobin}
	d, _ := NewData(cfg)
	d.Read(0x00)
	d.Read(0x40)
	d.Read(0x00) // touching does not matter for round-robin
	d.Read(0x80) // evicts way 0 (0x00)
	if _, ok := d.Cache().Contains(0x00); ok {
		t.Error("round-robin should have evicted the first-filled way")
	}
	if _, ok := d.Cache().Contains(0x40); !ok {
		t.Error("round-robin evicted the wrong way")
	}
}

// TestEngineEquivalence: all three engines must agree on which lines
// are resident being irrelevant — they must all *hit eventually* and
// deliver correct lines; here we check hit/miss totals are plausible
// and every fetched address ends resident.
func TestEngineResidencyInvariant(t *testing.T) {
	cfg := Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32, Policy: RoundRobin}
	engines := []FetchEngine{
		must(NewBaseline(cfg)),
		must(NewWayPlacement(cfg, WPOracleFunc(func(a uint32) bool { return a < 512 }))),
		must(NewWayMemoization(cfg)),
	}
	// A pseudo-random but fixed fetch trace with loops and jumps.
	var trace []uint32
	s := uint64(12345)
	pc := uint32(0)
	for i := 0; i < 5000; i++ {
		trace = append(trace, pc)
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s%8 == 0 {
			pc = uint32(s>>20) % 4096 &^ 3
		} else {
			pc += 4
		}
	}
	for _, e := range engines {
		for _, a := range trace {
			e.Fetch(a, false)
			if _, ok := e.Cache().Contains(a); !ok {
				t.Fatalf("%s: address %#x not resident after fetch", e.Name(), a)
			}
		}
		st := e.Cache().Stats
		if st.Fetches != uint64(len(trace)) {
			t.Errorf("%s: fetches = %d, want %d", e.Name(), st.Fetches, len(trace))
		}
		if st.Hits+st.Misses != st.Fetches {
			t.Errorf("%s: hits+misses = %d, want %d", e.Name(), st.Hits+st.Misses, st.Fetches)
		}
	}
}

func must[E FetchEngine](e E, err error) E {
	if err != nil {
		panic(err)
	}
	return e
}
