package cache_test

import (
	"fmt"

	"wayplace/internal/cache"
)

// Example reproduces the paper's figure 1 through the public API:
// three fetches cost 12 tag comparisons on a conventional 2-set,
// 4-way cache and 3 with way-placement.
func Example() {
	cfg := cache.Config{SizeBytes: 32, Ways: 4, LineBytes: 4}

	baseline, _ := cache.NewBaseline(cfg)
	for _, a := range []uint32{0x04, 0x08, 0x20} {
		baseline.Fetch(a, false)
	}
	fmt.Println("baseline comparisons:", baseline.Cache().Stats.TagComparisons)

	wp, _ := cache.NewWayPlacement(cfg, cache.WPOracleFunc(func(uint32) bool { return true }))
	wp.Fetch(0x3c, false) // warm the way hint
	before := wp.Cache().Stats.TagComparisons
	for _, a := range []uint32{0x04, 0x08, 0x20} {
		wp.Fetch(a, false)
	}
	fmt.Println("way-placement comparisons:", wp.Cache().Stats.TagComparisons-before)
	// Output:
	// baseline comparisons: 12
	// way-placement comparisons: 3
}
