// Engine tests cover the three properties the scheduler promises:
// determinism across worker counts, prompt cancellation, and a run
// cache that never repeats a simulation.
//
// The workloads are tiny synthetic programs built directly with the
// assembler, so the tests exercise the scheduling machinery rather
// than the benchmark suite (internal/experiment has that covered).
package engine_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"wayplace/internal/asm"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/obs"
	"wayplace/internal/sim"
)

const textBase = 0x0001_0000

// buildHot assembles a small program with a clear hot/cold split: cold
// handlers first in source order, then a kernel that runs iters times.
func buildHot(name string, iters uint16) *obj.Unit {
	b := asm.NewBuilder(name)
	buf := b.Zeros(256)

	f := b.Func("main")
	f.Call("setup")
	f.Movi(isa.R5, iters)
	f.Block("outer")
	f.Call("kernel")
	f.Subi(isa.R5, isa.R5, 1)
	f.Cmpi(isa.R5, 0)
	f.Bgt("outer")
	f.Halt()

	for i := 0; i < 8; i++ {
		h := b.Func(fmt.Sprintf("cold_%d", i))
		for k := 0; k < 40; k++ {
			h.Addi(isa.R9, isa.R9, 1)
		}
		h.Ret()
	}

	s := b.Func("setup")
	s.Li(isa.R1, buf)
	s.Movi(isa.R2, 64)
	s.Block("fill")
	s.Str(isa.R2, isa.R1, 0)
	s.Addi(isa.R1, isa.R1, 4)
	s.Subi(isa.R2, isa.R2, 1)
	s.Cmpi(isa.R2, 0)
	s.Bgt("fill")
	s.Ret()

	k := b.Func("kernel")
	k.Li(isa.R1, buf)
	k.Movi(isa.R2, 64)
	k.Block("loop")
	k.Ldr(isa.R3, isa.R1, 0)
	k.Add(isa.R0, isa.R0, isa.R3)
	k.Addi(isa.R1, isa.R1, 4)
	k.Subi(isa.R2, isa.R2, 1)
	k.Cmpi(isa.R2, 0)
	k.Bgt("loop")
	k.Ret()

	return b.MustBuild()
}

// buildSpin assembles a program that runs for billions of instructions
// — effectively forever at test timescales — so cancellation tests
// have something to interrupt.
func buildSpin() *obj.Unit {
	b := asm.NewBuilder("spin")
	f := b.Func("main")
	f.Movi(isa.R5, 60000)
	f.Block("outer")
	f.Movi(isa.R6, 60000)
	f.Block("inner")
	f.Addi(isa.R1, isa.R1, 1)
	f.Subi(isa.R6, isa.R6, 1)
	f.Cmpi(isa.R6, 0)
	f.Bgt("inner")
	f.Subi(isa.R5, isa.R5, 1)
	f.Cmpi(isa.R5, 0)
	f.Bgt("outer")
	f.Halt()
	return b.MustBuild()
}

var (
	workloadsOnce sync.Once
	workloads     map[string]*engine.Workload
	workloadsErr  error
)

// prepareWorkloads builds the shared test programs once: two hot/cold
// programs (profiled and relaid, so way-placement cells are real) and
// the spinner (original layout only).
func prepareWorkloads() {
	workloads = make(map[string]*engine.Workload)
	for name, iters := range map[string]uint16{"tiny1": 300, "tiny2": 170} {
		u := buildHot(name, iters)
		orig, err := layout.LinkOriginal(u, textBase)
		if err != nil {
			workloadsErr = err
			return
		}
		prof, _, err := sim.ProfileRun(orig, 50_000_000)
		if err != nil {
			workloadsErr = err
			return
		}
		placed, err := layout.Link(u, prof, textBase)
		if err != nil {
			workloadsErr = err
			return
		}
		workloads[name] = &engine.Workload{Name: name, Original: orig, Placed: placed}
	}
	spin, err := layout.LinkOriginal(buildSpin(), textBase)
	if err != nil {
		workloadsErr = err
		return
	}
	workloads["spin"] = &engine.Workload{Name: "spin", Original: spin}
}

func testProvider(t *testing.T) engine.Provider {
	t.Helper()
	workloadsOnce.Do(prepareWorkloads)
	if workloadsErr != nil {
		t.Fatalf("building test workloads: %v", workloadsErr)
	}
	return func(ctx context.Context, name string) (*engine.Workload, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w, ok := workloads[name]
		if !ok {
			return nil, fmt.Errorf("no such workload %q", name)
		}
		return w, nil
	}
}

// grid is the test evaluation grid: workloads x cache geometries x
// schemes, mirroring the shape of the paper's figures.
func grid() []engine.RunSpec {
	var specs []engine.RunSpec
	for _, w := range []string{"tiny1", "tiny2"} {
		for _, icfg := range []cache.Config{
			{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32},
			{SizeBytes: 16 << 10, Ways: 16, LineBytes: 32},
		} {
			specs = append(specs,
				engine.RunSpec{Workload: w, ICache: icfg, Scheme: energy.Baseline},
				engine.RunSpec{Workload: w, ICache: icfg, Scheme: energy.WayMemoization},
				engine.RunSpec{Workload: w, ICache: icfg, Scheme: energy.WayPlacement, WPSize: 2 << 10},
			)
		}
	}
	return specs
}

// TestDeterministicAcrossWorkerCounts is the acceptance property: a
// grid run with one worker and with eight must produce identical
// statistics in identical order.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	provider := testProvider(t)
	specs := grid()

	run := func(workers int) []*engine.Result {
		t.Helper()
		e := engine.New(provider, engine.WithWorkers(workers))
		res, err := e.Run(context.Background(), specs)
		if err != nil {
			t.Fatalf("Run with %d workers: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)

	for i := range specs {
		if serial[i].Spec != specs[i] {
			t.Fatalf("result %d out of order: got %v want %v", i, serial[i].Spec, specs[i])
		}
		if !reflect.DeepEqual(serial[i].Stats, parallel[i].Stats) {
			t.Errorf("%v: stats differ between 1 and 8 workers", specs[i])
		}
	}
}

func TestRunCache(t *testing.T) {
	e := engine.New(testProvider(t), engine.WithWorkers(4))
	ctx := context.Background()
	icfg := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
	spec := engine.RunSpec{Workload: "tiny1", ICache: icfg, Scheme: energy.Baseline}

	a, err := e.RunOne(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit {
		t.Error("first run reported as a cache hit")
	}
	if e.Misses() != 1 || e.Hits() != 0 {
		t.Errorf("after first run: hits=%d misses=%d, want 0/1", e.Hits(), e.Misses())
	}

	b, err := e.RunOne(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Error("repeated run not served from the cache")
	}
	if b.Stats != a.Stats {
		t.Error("cache returned a different stats object")
	}
	if e.Misses() != 1 {
		t.Errorf("repeated spec re-simulated: misses=%d, want 1", e.Misses())
	}
	if b.Wall != 0 {
		t.Errorf("cache hit reports wall time %v, want 0", b.Wall)
	}

	// A batch containing duplicates simulates each distinct cell once
	// and marks the duplicates as hits.
	other := engine.RunSpec{Workload: "tiny2", ICache: icfg, Scheme: energy.Baseline}
	res, err := e.Run(ctx, []engine.RunSpec{spec, other, spec, other})
	if err != nil {
		t.Fatal(err)
	}
	if e.Misses() != 2 {
		t.Errorf("batch with duplicates: misses=%d, want 2", e.Misses())
	}
	if !res[0].CacheHit || !res[2].CacheHit || !res[3].CacheHit {
		t.Error("duplicate occurrences not marked as cache hits")
	}
	if res[2].Stats != res[0].Stats || res[3].Stats != res[1].Stats {
		t.Error("duplicate occurrences do not share the memoised stats")
	}
}

// TestRunCacheKeyedByBaseConfig: the same spec against two different
// machine templates must be two cache entries, not one.
func TestRunCacheKeyedByBaseConfig(t *testing.T) {
	e := engine.New(testProvider(t))
	ctx := context.Background()
	spec := engine.RunSpec{
		Workload: "tiny1",
		ICache:   cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32},
		Scheme:   energy.Baseline,
	}
	ram := sim.Default()
	ram.Style = energy.RAMTag

	a, err := e.RunOne(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunOne(ctx, spec, engine.WithBaseConfig(ram))
	if err != nil {
		t.Fatal(err)
	}
	if b.CacheHit {
		t.Error("different base config aliased onto the cached run")
	}
	if a.Stats.Energy == b.Stats.Energy {
		t.Error("CAM and RAM runs returned identical energy — base config ignored")
	}
}

func TestProgressCallback(t *testing.T) {
	specs := grid()
	var mu sync.Mutex
	var seen []engine.Progress
	e := engine.New(testProvider(t), engine.WithWorkers(8),
		engine.WithProgress(func(p engine.Progress) {
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		}))
	if _, err := e.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(specs) {
		t.Fatalf("progress reported %d cells, want %d", len(seen), len(specs))
	}
	for i, p := range seen {
		if p.Done != i+1 || p.Total != len(specs) {
			t.Errorf("progress %d: done=%d total=%d", i, p.Done, p.Total)
		}
	}
}

func TestCancellationPreCancelled(t *testing.T) {
	e := engine.New(testProvider(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Run(ctx, grid())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}
}

// TestCancellationMidRun cancels while the spinner is deep in its
// instruction loop; the engine must return promptly (the loop checks
// the context every 50k instructions) with context.Canceled.
func TestCancellationMidRun(t *testing.T) {
	e := engine.New(testProvider(t), engine.WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	spec := engine.RunSpec{
		Workload: "spin",
		ICache:   cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32},
		Scheme:   energy.Baseline,
	}
	errc := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx, []engine.RunSpec{spec})
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not return within 10s of cancellation")
	}

	// The failed cell must not be cached: a fresh context re-runs it.
	if e.Hits() != 0 {
		t.Errorf("cancelled cell produced a cache hit (hits=%d)", e.Hits())
	}
}

// TestPerCellFailures: a bad cell must not abort the grid — good cells
// still complete and the failure arrives as a CellError inside a
// MultiError.
func TestPerCellFailures(t *testing.T) {
	e := engine.New(testProvider(t), engine.WithWorkers(4))
	icfg := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
	good := engine.RunSpec{Workload: "tiny1", ICache: icfg, Scheme: energy.Baseline}
	bad := engine.RunSpec{Workload: "missing", ICache: icfg, Scheme: energy.Baseline}

	res, err := e.Run(context.Background(), []engine.RunSpec{good, bad})
	if err == nil {
		t.Fatal("grid with a bad cell returned nil error")
	}
	var merr *engine.MultiError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *engine.MultiError", err)
	}
	var cerr *engine.CellError
	if !errors.As(err, &cerr) || cerr.Spec != bad {
		t.Fatalf("MultiError does not carry the failing cell: %v", err)
	}
	if res[0] == nil || res[0].Stats == nil {
		t.Error("good cell was aborted by the bad one")
	}
	if res[1] != nil {
		t.Error("failed cell produced a result")
	}
}

func TestPrepare(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	base := testProvider(t)
	counting := func(ctx context.Context, name string) (*engine.Workload, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return base(ctx, name)
	}
	e := engine.New(counting, engine.WithWorkers(4))
	ctx := context.Background()
	if err := e.Prepare(ctx, []string{"tiny1", "tiny2"}); err != nil {
		t.Fatal(err)
	}
	// Cells reuse the prepared workloads: the provider is not called again.
	if _, err := e.Run(ctx, grid()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := calls
	mu.Unlock()
	if n != 2 {
		t.Errorf("provider called %d times, want 2 (once per workload)", n)
	}

	if err := e.Prepare(ctx, []string{"missing"}); err == nil {
		t.Fatal("Prepare of unknown workload returned nil error")
	}
}

// TestProgressReportsFailedCells is the regression test for the
// -progress stall: a grid containing a failing cell must still drive
// Done all the way to Total, with the failure visible as a non-nil
// Progress.Err. Before the fix, only successful cells reported, so
// the display hung short of Total whenever any cell failed.
func TestProgressReportsFailedCells(t *testing.T) {
	icfg := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
	specs := []engine.RunSpec{
		{Workload: "tiny1", ICache: icfg, Scheme: energy.Baseline},
		{Workload: "missing", ICache: icfg, Scheme: energy.Baseline},
		{Workload: "tiny2", ICache: icfg, Scheme: energy.Baseline},
	}
	var mu sync.Mutex
	var seen []engine.Progress
	e := engine.New(testProvider(t), engine.WithWorkers(2),
		engine.WithProgress(func(p engine.Progress) {
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		}))
	_, err := e.Run(context.Background(), specs)
	if err == nil {
		t.Fatal("grid with a bad cell returned nil error")
	}

	if len(seen) != len(specs) {
		t.Fatalf("progress reported %d cells, want %d (failed cells must report too)", len(seen), len(specs))
	}
	last := seen[len(seen)-1]
	if last.Done != last.Total || last.Total != len(specs) {
		t.Errorf("final progress done=%d total=%d, want %d/%d", last.Done, last.Total, len(specs), len(specs))
	}
	failed := 0
	for _, p := range seen {
		if p.Err != nil {
			failed++
			if p.Spec.Workload != "missing" {
				t.Errorf("unexpected failing cell %v: %v", p.Spec, p.Err)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d progress reports carry an error, want 1", failed)
	}
}

// TestProgressReportsVerifyFailures: cells rejected by the verifier
// must also advance the progress counter.
func TestProgressReportsVerifyFailures(t *testing.T) {
	icfg := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
	specs := []engine.RunSpec{
		{Workload: "tiny1", ICache: icfg, Scheme: energy.Baseline},
		{Workload: "tiny2", ICache: icfg, Scheme: energy.Baseline},
	}
	rejected := errors.New("synthetic invariant violation")
	var mu sync.Mutex
	var seen []engine.Progress
	e := engine.New(testProvider(t),
		engine.WithVerify(func(cfg sim.Config, st *sim.RunStats) error { return rejected }),
		engine.WithProgress(func(p engine.Progress) {
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		}))
	_, err := e.Run(context.Background(), specs)
	if err == nil {
		t.Fatal("verify-rejected grid returned nil error")
	}
	if len(seen) != len(specs) {
		t.Fatalf("progress reported %d cells, want %d", len(seen), len(specs))
	}
	for _, p := range seen {
		if p.Err == nil {
			t.Errorf("%v: verify failure not reflected in Progress.Err", p.Spec)
		}
	}
}

// TestObserverInstrumentation: with a registry installed, the engine
// must account cells, cache hits/misses, instructions, per-scheme
// energy and latency spans — and the instrumented results must be
// identical to an uninstrumented run.
func TestObserverInstrumentation(t *testing.T) {
	specs := grid()
	reg := obs.NewRegistry()
	provider := testProvider(t)
	plain := engine.New(provider, engine.WithWorkers(4))
	observed := engine.New(provider, engine.WithWorkers(4), engine.WithObserver(reg))

	want, err := plain.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := observed.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(want[i].Stats, got[i].Stats) {
			t.Errorf("%v: instrumented run perturbed the statistics", specs[i])
		}
	}

	if n := reg.Counter(engine.MetricCells).Value(); n != uint64(len(specs)) {
		t.Errorf("%s = %d, want %d", engine.MetricCells, n, len(specs))
	}
	if n := reg.Counter(engine.MetricCacheMisses).Value(); n != observed.Misses() {
		t.Errorf("%s = %d, want %d", engine.MetricCacheMisses, n, observed.Misses())
	}
	if n := reg.Counter(engine.MetricInstructions).Value(); n == 0 {
		t.Errorf("%s not recorded", engine.MetricInstructions)
	}
	if h := reg.Histogram(engine.MetricCellNS); h.Count() != observed.Misses() {
		t.Errorf("%s recorded %d spans, want %d", engine.MetricCellNS, h.Count(), observed.Misses())
	}
	for _, scheme := range []energy.Scheme{energy.Baseline, energy.WayMemoization, energy.WayPlacement} {
		if v := reg.Gauge(engine.MetricEnergyPrefix + scheme.String()).Value(); v <= 0 {
			t.Errorf("energy total for %v = %v, want > 0", scheme, v)
		}
	}

	// A second, identical batch is all cache hits.
	if _, err := observed.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter(engine.MetricCacheHits).Value(); n != observed.Hits() {
		t.Errorf("%s = %d, want %d", engine.MetricCacheHits, n, observed.Hits())
	}
	if n := reg.Counter(engine.MetricCacheMisses).Value(); n != observed.Misses() {
		t.Errorf("after cached batch: %s = %d, want %d (no re-simulation)", engine.MetricCacheMisses, n, observed.Misses())
	}
	if v := reg.Gauge(engine.MetricInflight).Value(); v != 0 {
		t.Errorf("in-flight gauge did not return to 0: %v", v)
	}
}

// TestObserverPrepareSpan: workload preparation must record one span
// per workload, failures excluded.
func TestObserverPrepareSpan(t *testing.T) {
	reg := obs.NewRegistry()
	e := engine.New(testProvider(t), engine.WithObserver(reg), engine.WithWorkers(2))
	if err := e.Prepare(context.Background(), []string{"tiny1", "tiny2"}); err != nil {
		t.Fatal(err)
	}
	if e.Prepare(context.Background(), []string{"missing"}) == nil {
		t.Fatal("Prepare of unknown workload returned nil error")
	}
	if h := reg.Histogram(engine.MetricPrepareNS); h.Count() != 2 {
		t.Errorf("%s recorded %d spans, want 2 (failed prepare must not count)", engine.MetricPrepareNS, h.Count())
	}
}

// TestAdaptiveCells: an adaptive-OS cell is a first-class grid member:
// it runs the relaid binary under sim.RunAdaptive, returns the resize
// trace, matches a direct sim.RunAdaptive call, and is memoised like
// any other cell — distinct from the static cell at the policy's
// start size.
func TestAdaptiveCells(t *testing.T) {
	provider := testProvider(t)
	e := engine.New(provider, engine.WithWorkers(2))
	ctx := context.Background()
	icfg := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
	pol := sim.DefaultAdaptivePolicy(icfg, 1<<10)
	pol.IntervalInstrs = 10_000
	adaptive := engine.RunSpec{
		Workload: "tiny1", ICache: icfg, Scheme: energy.WayPlacement,
		Adaptive: engine.AdaptiveSpecOf(pol),
	}
	static := engine.RunSpec{
		Workload: "tiny1", ICache: icfg, Scheme: energy.WayPlacement, WPSize: pol.StartSize,
	}

	res, err := e.Run(ctx, []engine.RunSpec{adaptive, static, adaptive})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].AreaChanges) == 0 || res[0].AreaChanges[0].Size != pol.StartSize {
		t.Fatalf("adaptive cell missing its resize trace: %+v", res[0].AreaChanges)
	}
	if res[1].AreaChanges != nil {
		t.Error("static cell carries a resize trace")
	}
	if res[1].Stats == res[0].Stats {
		t.Error("adaptive cell aliased onto the static start-size cell")
	}
	if !res[2].CacheHit || res[2].Stats != res[0].Stats {
		t.Error("duplicate adaptive cell not served from the cache")
	}
	if len(res[2].AreaChanges) != len(res[0].AreaChanges) {
		t.Error("cache hit lost the resize trace")
	}

	// The engine cell must be the same simulation as a direct call.
	w, err := provider(ctx, "tiny1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Default()
	cfg.ICache = icfg
	direct, changes, err := sim.RunAdaptive(ctx, w.Placed, cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, res[0].Stats) {
		t.Error("engine adaptive cell differs from direct sim.RunAdaptive")
	}
	if !reflect.DeepEqual(changes, res[0].AreaChanges) {
		t.Error("engine adaptive trace differs from direct sim.RunAdaptive")
	}
}

// TestCoalescedMatchesPerCell: grouping is a scheduling optimisation,
// not a model change — a grid run coalesced (the default) and one run
// through the per-cell reference path must produce identical
// statistics, and only the coalesced run reports groups.
func TestCoalescedMatchesPerCell(t *testing.T) {
	provider := testProvider(t)
	specs := grid()

	co := engine.New(provider, engine.WithWorkers(4))
	coRes, err := co.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	pc := engine.New(provider, engine.WithWorkers(4), engine.WithCoalesce(false))
	pcRes, err := pc.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range specs {
		if !reflect.DeepEqual(coRes[i].Stats, pcRes[i].Stats) {
			t.Errorf("%v: coalesced stats diverge from per-cell", specs[i])
		}
		if coRes[i].GroupID == "" {
			t.Errorf("%v: coalesced result carries no group id", specs[i])
		}
		if pcRes[i].GroupID != "" {
			t.Errorf("%v: per-cell result carries group id %q", specs[i], pcRes[i].GroupID)
		}
	}
	// grid() is 2 workloads x (2 geometries x {baseline, waymem}) on
	// the original binary + (2 geometries x wayplace) on the placed
	// binary: 4 fetch streams, 12 cells, all coalesced.
	if co.Groups() != 4 {
		t.Errorf("Groups() = %d, want 4", co.Groups())
	}
	if co.CoalescedCells() != uint64(len(specs)) {
		t.Errorf("CoalescedCells() = %d, want %d", co.CoalescedCells(), len(specs))
	}
	if pc.Groups() != 0 || pc.CoalescedCells() != 0 {
		t.Errorf("per-cell engine reports groups: %d/%d", pc.Groups(), pc.CoalescedCells())
	}
}

// TestCoalescedGroupWithMemoizedCells is the regression test for
// cache hits inside a coalesced group: when half a group's cells are
// already memoized from an earlier batch, the second batch must still
// (a) count each memoized cell as a cache hit in both the engine
// counters and the obs registry, (b) fire the progress callback for
// every cell so Done reaches Total, and (c) only simulate the fresh
// half.
func TestCoalescedGroupWithMemoizedCells(t *testing.T) {
	specs := grid()
	half := specs[:len(specs)/2]
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var seen []engine.Progress
	e := engine.New(testProvider(t), engine.WithWorkers(4), engine.WithObserver(reg),
		engine.WithProgress(func(p engine.Progress) {
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		}))
	ctx := context.Background()

	firstRes, err := e.Run(ctx, half)
	if err != nil {
		t.Fatal(err)
	}
	missesAfterHalf := e.Misses()
	if missesAfterHalf != uint64(len(half)) {
		t.Fatalf("first batch: misses=%d, want %d", missesAfterHalf, len(half))
	}
	seen = nil

	res, err := e.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}

	// (c) Only the fresh half simulated; the memoized half are hits.
	if e.Misses() != uint64(len(specs)) {
		t.Errorf("after full grid: misses=%d, want %d (memoized cells re-simulated)", e.Misses(), len(specs))
	}
	if e.Hits() != uint64(len(half)) {
		t.Errorf("after full grid: hits=%d, want %d", e.Hits(), len(half))
	}
	// (a) The obs counters agree with the engine counters.
	if n := reg.Counter(engine.MetricCacheHits).Value(); n != e.Hits() {
		t.Errorf("%s = %d, want %d", engine.MetricCacheHits, n, e.Hits())
	}
	if n := reg.Counter(engine.MetricCacheMisses).Value(); n != e.Misses() {
		t.Errorf("%s = %d, want %d", engine.MetricCacheMisses, n, e.Misses())
	}
	// (b) Every cell of the second batch reported progress, hits
	// included, and the counter ran all the way to Total.
	if len(seen) != len(specs) {
		t.Fatalf("progress reported %d cells, want %d", len(seen), len(specs))
	}
	last := seen[len(seen)-1]
	if last.Done != last.Total || last.Total != len(specs) {
		t.Errorf("final progress done=%d total=%d, want %d/%d", last.Done, last.Total, len(specs), len(specs))
	}
	hitReports := 0
	for _, p := range seen {
		if p.CacheHit {
			hitReports++
		}
	}
	if hitReports != len(half) {
		t.Errorf("%d progress reports marked as cache hits, want %d", hitReports, len(half))
	}
	// Memoized cells share the first batch's stats objects.
	for i := range half {
		if res[i].Stats != firstRes[i].Stats {
			t.Errorf("%v: memoized cell returned a different stats object", specs[i])
		}
		if !res[i].CacheHit {
			t.Errorf("%v: memoized cell not marked as a cache hit", specs[i])
		}
	}
}
