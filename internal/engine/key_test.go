package engine_test

import (
	"testing"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/sim"
)

// TestKeyGolden pins the canonical key encoding. These strings are a
// cross-process contract (server job ids, metric labels): if this test
// fails you have changed the encoding and must bump engine.KeyVersion.
func TestKeyGolden(t *testing.T) {
	icfg := cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32, Policy: cache.RoundRobin}
	for _, tc := range []struct {
		name string
		spec engine.RunSpec
		want string
	}{
		{
			name: "baseline",
			spec: engine.RunSpec{Workload: "sha", ICache: icfg, Scheme: energy.Baseline},
			want: "rs2|sha|i$32768x32x32:0|baseline|wp0|st0|v00",
		},
		{
			name: "waymem",
			spec: engine.RunSpec{Workload: "crc", ICache: icfg, Scheme: energy.WayMemoization},
			want: "rs2|crc|i$32768x32x32:0|waymem|wp0|st0|v00",
		},
		{
			name: "wayplace-16K",
			spec: engine.RunSpec{Workload: "patricia", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10},
			want: "rs2|patricia|i$32768x32x32:0|wayplace|wp16384|st0|v00",
		},
		{
			name: "lru-policy",
			spec: engine.RunSpec{
				Workload: "sha",
				ICache:   cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32, Policy: cache.LRU},
				Scheme:   energy.Baseline,
			},
			want: "rs2|sha|i$8192x8x32:1|baseline|wp0|st0|v00",
		},
		{
			name: "ramtag-oracle",
			spec: engine.RunSpec{
				Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10,
				Style: energy.RAMTag, OracleHint: true,
			},
			want: "rs2|sha|i$32768x32x32:0|wayplace|wp16384|st1|v10",
		},
		{
			name: "nosameline",
			spec: engine.RunSpec{
				Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10,
				NoSameLine: true,
			},
			want: "rs2|sha|i$32768x32x32:0|wayplace|wp16384|st0|v01",
		},
		{
			name: "adaptive",
			spec: engine.RunSpec{
				Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement,
				Adaptive: engine.AdaptiveSpec{
					IntervalInstrs: 50_000,
					StartSize:      1 << 10,
					MinSize:        1 << 10,
					MaxSize:        64 << 10,
					GrowThreshold:  0.95,
					AliasMissRate:  0.02,
				},
			},
			want: "rs2|sha|i$32768x32x32:0|wayplace|wp0|st0|v00|ad50000:1024:1024:65536:0.95:0.02",
		},
	} {
		if got := tc.spec.Key(); got != tc.want {
			t.Errorf("%s: Key() = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestKeyDistinguishesSpecs: keys must be injective over the fields
// that define a cell.
func TestKeyDistinguishesSpecs(t *testing.T) {
	icfg := cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32}
	base := engine.RunSpec{Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10}
	seen := map[string]engine.RunSpec{base.Key(): base}
	for _, mut := range []engine.RunSpec{
		{Workload: "crc", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10},
		{Workload: "sha", ICache: cache.Config{SizeBytes: 16 << 10, Ways: 32, LineBytes: 32}, Scheme: energy.WayPlacement, WPSize: 16 << 10},
		{Workload: "sha", ICache: icfg, Scheme: energy.Baseline, WPSize: 16 << 10},
		{Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 8 << 10},
		{Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10, Style: energy.RAMTag},
		{Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10, OracleHint: true},
		{Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10, NoSameLine: true},
		{Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: 16 << 10,
			Adaptive: engine.AdaptiveSpec{IntervalInstrs: 1, StartSize: 1024}},
	} {
		k := mut.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v both map to %q", prev, mut, k)
		}
		seen[k] = mut
	}
}

// TestAdaptiveSpecRoundTrip: policy <-> spec conversion preserves
// every identity-relevant field.
func TestAdaptiveSpecRoundTrip(t *testing.T) {
	pol := sim.DefaultAdaptivePolicy(cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32}, 1<<10)
	spec := engine.AdaptiveSpecOf(pol)
	if !spec.Enabled() {
		t.Fatal("spec of a real policy reports disabled")
	}
	back := spec.Policy()
	if back.IntervalInstrs != pol.IntervalInstrs || back.StartSize != pol.StartSize ||
		back.MinSize != pol.MinSize || back.MaxSize != pol.MaxSize ||
		back.GrowThreshold != pol.GrowThreshold || back.AliasMissRate != pol.AliasMissRate {
		t.Errorf("round trip lost fields: %+v -> %+v", pol, back)
	}
	if (engine.AdaptiveSpec{}).Enabled() {
		t.Error("zero AdaptiveSpec reports enabled")
	}
}
