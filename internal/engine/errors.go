package engine

import (
	"fmt"
	"strings"
)

// CellError wraps one cell's failure with its spec.
type CellError struct {
	Spec RunSpec
	Err  error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %s: %v", e.Spec, e.Err) }
func (e *CellError) Unwrap() error { return e.Err }

// MultiError aggregates per-cell failures from one batch. It
// implements the multi-target Unwrap, so errors.Is/As see through to
// the individual causes (e.g. context.Canceled).
type MultiError struct {
	Errors []error
}

func (m *MultiError) Error() string {
	switch len(m.Errors) {
	case 0:
		return "engine: no errors"
	case 1:
		return m.Errors[0].Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "engine: %d cells failed:", len(m.Errors))
	for _, err := range m.Errors {
		sb.WriteString("\n\t")
		sb.WriteString(err.Error())
	}
	return sb.String()
}

func (m *MultiError) Unwrap() []error { return m.Errors }
