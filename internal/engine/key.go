package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// KeyVersion prefixes every canonical spec key. Bump it whenever the
// key's field order or encoding changes, so records written by one
// process version (server job ids, metric labels, cached artifacts)
// are never misread by another.
const KeyVersion = "rs2"

// Key returns the canonical, process-stable serialization of the spec:
// a versioned, '|'-separated string with fixed field order, suitable
// as a cross-process cache key, a server job-id component, or a metric
// label. Unlike String(), which is a human-facing summary, Key is
// exhaustive: two specs have equal keys if and only if they are equal.
//
// Shape (static cell; st is the array style, v the oracle-hint and
// no-same-line ablation bits):
//
//	rs2|<workload>|i$<size>x<ways>x<line>:<policy>|<scheme>|wp<bytes>|st<style>|v<oracle><nosameline>
//
// Adaptive cells append the full policy:
//
//	...|ad<interval>:<start>:<min>:<max>:<grow>:<alias>
func (s RunSpec) Key() string {
	var b strings.Builder
	b.Grow(80)
	b.WriteString(KeyVersion)
	b.WriteByte('|')
	b.WriteString(s.Workload)
	fmt.Fprintf(&b, "|i$%dx%dx%d:%d|%s|wp%d|st%d|v%d%d",
		s.ICache.SizeBytes, s.ICache.Ways, s.ICache.LineBytes, uint8(s.ICache.Policy),
		s.Scheme, s.WPSize, uint8(s.Style), keyBit(s.OracleHint), keyBit(s.NoSameLine))
	if s.Adaptive.Enabled() {
		a := s.Adaptive
		fmt.Fprintf(&b, "|ad%d:%d:%d:%d:%s:%s",
			a.IntervalInstrs, a.StartSize, a.MinSize, a.MaxSize,
			keyFloat(a.GrowThreshold), keyFloat(a.AliasMissRate))
	}
	return b.String()
}

// keyBit renders an ablation switch as a stable 0/1 digit.
func keyBit(v bool) int {
	if v {
		return 1
	}
	return 0
}

// keyFloat renders a policy threshold in the shortest form that
// round-trips, so keys stay stable across architectures.
func keyFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
