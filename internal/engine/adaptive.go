package engine

import (
	"wayplace/internal/sim"
)

// AdaptiveSpec is the comparable, side-effect-free form of
// sim.AdaptivePolicy, so adaptive-OS cells can sit in the same grids,
// dedup maps and run-cache keys as static cells instead of going
// through a separate entry point. The zero value means "not adaptive";
// any non-zero value routes the cell through sim.RunAdaptive with the
// equivalent policy (the Inspect hook, being a function, cannot be part
// of a cell identity and is deliberately absent).
type AdaptiveSpec struct {
	IntervalInstrs              uint64
	StartSize, MinSize, MaxSize uint32
	GrowThreshold               float64
	AliasMissRate               float64
}

// Enabled reports whether the spec selects the adaptive-OS path.
func (a AdaptiveSpec) Enabled() bool { return a != AdaptiveSpec{} }

// Policy expands the spec into the sim-level policy.
func (a AdaptiveSpec) Policy() sim.AdaptivePolicy {
	return sim.AdaptivePolicy{
		IntervalInstrs: a.IntervalInstrs,
		StartSize:      a.StartSize,
		MinSize:        a.MinSize,
		MaxSize:        a.MaxSize,
		GrowThreshold:  a.GrowThreshold,
		AliasMissRate:  a.AliasMissRate,
	}
}

// AdaptiveSpecOf captures a sim-level policy as a cell identity. The
// Inspect hook is dropped: it is a test-only observer and two cells
// differing only in hooks are the same simulation.
func AdaptiveSpecOf(p sim.AdaptivePolicy) AdaptiveSpec {
	return AdaptiveSpec{
		IntervalInstrs: p.IntervalInstrs,
		StartSize:      p.StartSize,
		MinSize:        p.MinSize,
		MaxSize:        p.MaxSize,
		GrowThreshold:  p.GrowThreshold,
		AliasMissRate:  p.AliasMissRate,
	}
}
