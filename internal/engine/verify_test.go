package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"wayplace/internal/check"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/sim"
)

// TestWithVerifyPassesCleanGrid runs the full test grid under the real
// invariant checker: every cell a healthy simulator produces must
// satisfy internal/check.
func TestWithVerifyPassesCleanGrid(t *testing.T) {
	e := engine.New(testProvider(t), engine.WithWorkers(4),
		engine.WithVerify(check.VerifyCell))
	res, err := e.Run(context.Background(), grid())
	if err != nil {
		t.Fatalf("verified grid failed: %v", err)
	}
	for i, r := range res {
		if r == nil || r.Stats == nil {
			t.Fatalf("cell %d missing result", i)
		}
	}
}

// TestWithVerifyFailsCell installs a checker that rejects one scheme
// and asserts the rejection surfaces as a per-cell failure — grid
// continues, failing cells have nil results — and that the checker
// also runs on run-cache hits, so a cached cell cannot dodge
// verification.
func TestWithVerifyFailsCell(t *testing.T) {
	e := engine.New(testProvider(t), engine.WithWorkers(4))
	specs := grid()

	// Populate the run cache without any verification.
	if _, err := e.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}

	rejectWaymem := func(cfg sim.Config, rs *sim.RunStats) error {
		if cfg.Scheme == energy.WayMemoization {
			return fmt.Errorf("rejected for the test")
		}
		return nil
	}
	res, err := e.Run(context.Background(), specs,
		engine.WithVerify(rejectWaymem))
	if err == nil {
		t.Fatal("verify rejections did not surface")
	}
	var merr *engine.MultiError
	if !errors.As(err, &merr) {
		t.Fatalf("error is %T, want *engine.MultiError", err)
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Errorf("verify failure not labelled as such: %v", err)
	}
	for i, r := range res {
		if specs[i].Scheme == energy.WayMemoization {
			if r != nil {
				t.Errorf("cell %d: rejected cell produced a result", i)
			}
			continue
		}
		if r == nil || r.Stats == nil {
			t.Errorf("cell %d: passing cell aborted by rejected ones", i)
		} else if !r.CacheHit {
			t.Errorf("cell %d: expected a run-cache hit on the second batch", i)
		}
	}
}
