// Package engine is the concurrent experiment scheduler. The paper's
// evaluation is a grid of independent (workload, cache config, scheme,
// WP-size) simulation cells — every figure, ablation and extension
// sweep is some slice of that grid — so the engine runs cells on a
// worker pool, deduplicates identical cells, and memoises results in a
// keyed run cache so overlapping slices (the 32KB/32-way baseline is
// shared by figures 4, 5 and 6) are simulated exactly once.
//
// The engine is context-aware end to end: cancellation propagates
// into the per-cell instruction loop (sim.RunContext), progress is
// reported through an optional callback, and per-cell failures are
// aggregated into a MultiError instead of aborting the whole grid.
//
// Results are deterministic: cells are pure functions of their spec
// and the base machine configuration, and callers receive them in
// input order, so output is byte-identical regardless of worker count.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/obj"
	"wayplace/internal/obs"
	"wayplace/internal/sim"
)

// Metric names the engine registers when an observer is installed
// (WithObserver). Exported so snapshot builders and dashboards can
// reference them without string duplication.
const (
	// MetricCellNS: log-scale histogram of per-cell simulation wall
	// time in nanoseconds (fresh simulations only — cache hits are
	// effectively free and would drown the signal).
	MetricCellNS = "engine_cell_ns"
	// MetricPrepareNS: histogram of per-workload prepare (build,
	// profile, relink) wall time in nanoseconds.
	MetricPrepareNS = "engine_prepare_ns"
	// MetricCells: cells completed successfully (including cache hits).
	MetricCells = "engine_cells_total"
	// MetricCellFailures: cells that failed (simulation error, verify
	// rejection, or cancellation).
	MetricCellFailures = "engine_cell_failures_total"
	// MetricCacheHits / MetricCacheMisses mirror Engine.Hits/Misses.
	MetricCacheHits   = "engine_cache_hits_total"
	MetricCacheMisses = "engine_cache_misses_total"
	// MetricGroups / MetricCoalescedCells mirror Engine.Groups and
	// Engine.CoalescedCells: multi-cell single-pass groups executed,
	// and the cells that rode in them.
	MetricGroups         = "engine_groups_total"
	MetricCoalescedCells = "engine_coalesced_cells_total"
	// MetricInflight: cells currently inside a simulator.
	MetricInflight = "engine_inflight_cells"
	// MetricInstructions: instructions simulated (fresh cells only),
	// so instructions/second measures simulator throughput.
	MetricInstructions = "sim_instructions_total"
	// MetricEnergyPrefix + scheme.String(): summed whole-processor
	// energy (model units) per scheme, fresh cells only.
	MetricEnergyPrefix = "sim_energy_total_"
)

// instruments are the engine's pre-resolved observability hooks. With
// no observer every field is nil and each call is a nil-receiver
// no-op, so the per-cell path pays nothing (obs.TestNilRegistryAllocFree
// proves zero allocations).
type instruments struct {
	cellNS    *obs.Histogram
	prepareNS *obs.Histogram
	cells     *obs.Counter
	failures  *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	groups    *obs.Counter
	coalesced *obs.Counter
	instrs    *obs.Counter
	inflight  *obs.Gauge
	energy    [3]*obs.Gauge // indexed by energy.Scheme
}

func newInstruments(r *obs.Registry) instruments {
	if r == nil {
		return instruments{}
	}
	ins := instruments{
		cellNS:    r.Histogram(MetricCellNS),
		prepareNS: r.Histogram(MetricPrepareNS),
		cells:     r.Counter(MetricCells),
		failures:  r.Counter(MetricCellFailures),
		hits:      r.Counter(MetricCacheHits),
		misses:    r.Counter(MetricCacheMisses),
		groups:    r.Counter(MetricGroups),
		coalesced: r.Counter(MetricCoalescedCells),
		instrs:    r.Counter(MetricInstructions),
		inflight:  r.Gauge(MetricInflight),
	}
	for s := range ins.energy {
		ins.energy[s] = r.Gauge(MetricEnergyPrefix + energy.Scheme(s).String())
	}
	return ins
}

// record books one fresh (simulated) cell's statistics.
func (ins *instruments) record(spec RunSpec, stats *sim.RunStats, wall time.Duration) {
	ins.cellNS.ObserveDuration(wall)
	ins.instrs.Add(stats.Instrs)
	if int(spec.Scheme) < len(ins.energy) {
		ins.energy[spec.Scheme].Add(stats.Energy.Total())
	}
}

// Workload is one prepared benchmark in the form the engine needs to
// run cells: the original-layout binary (baseline and way-memoization
// schemes) and the way-placement relaid binary. Both programs are
// immutable once linked and are shared, not copied, across concurrent
// cells.
type Workload struct {
	Name     string
	Original *obj.Program
	Placed   *obj.Program
}

// Provider supplies a prepared workload by name. The engine memoises
// provider calls per name, so the expensive profile-and-relink stage
// runs once per workload no matter how many concurrent cells need it.
// The provider must return programs that are safe to share read-only.
type Provider func(ctx context.Context, name string) (*Workload, error)

// RunSpec identifies one simulation cell of the evaluation grid. It is
// comparable (usable as a map key) and has a canonical serialized form
// (Key) stable across processes; internal/api carries the same
// information as a versioned JSON schema.
type RunSpec struct {
	Workload string
	ICache   cache.Config
	Scheme   energy.Scheme
	WPSize   uint32
	// Style selects the cache's physical array organisation for the
	// energy model. The zero value (CAM-tag) inherits the base
	// template's style; RAMTag overrides it, so RAM-tag cells can sit
	// in the same batch — and the same single-pass group — as CAM
	// cells.
	Style energy.ArrayStyle
	// OracleHint and NoSameLine are the way-placement ablation
	// switches (perfect way prediction; same-line skip disabled). They
	// extend the base template: a switch set in either place is on.
	OracleHint bool
	NoSameLine bool
	// Adaptive, when non-zero, runs the cell under the adaptive-OS
	// area-sizing policy (sim.RunAdaptive) instead of a static WP
	// area: the scheme is forced to way-placement and the relaid
	// binary is used. WPSize must be zero — the area is policy-driven.
	Adaptive AdaptiveSpec
}

// variantSuffix renders the ablation/style markers shared by String
// and error messages; empty for a plain cell.
func (s RunSpec) variantSuffix() string {
	var suffix string
	if s.Style == energy.RAMTag {
		suffix += "+ramtag"
	}
	if s.OracleHint {
		suffix += "+oracle"
	}
	if s.NoSameLine {
		suffix += "+nosameline"
	}
	return suffix
}

func (s RunSpec) String() string {
	if s.Adaptive.Enabled() {
		return fmt.Sprintf("%s/%dKB-%dway/%v/adaptive%s",
			s.Workload, s.ICache.SizeBytes>>10, s.ICache.Ways, energy.WayPlacement, s.variantSuffix())
	}
	if s.WPSize > 0 {
		return fmt.Sprintf("%s/%dKB-%dway/%v/wp%dK%s",
			s.Workload, s.ICache.SizeBytes>>10, s.ICache.Ways, s.Scheme, s.WPSize>>10, s.variantSuffix())
	}
	return fmt.Sprintf("%s/%dKB-%dway/%v%s",
		s.Workload, s.ICache.SizeBytes>>10, s.ICache.Ways, s.Scheme, s.variantSuffix())
}

// Result bundles one cell's statistics with its spec, wall time and
// cache-hit provenance.
type Result struct {
	Spec  RunSpec
	Stats *sim.RunStats
	// AreaChanges is the OS resize trace of an adaptive cell
	// (Spec.Adaptive non-zero): one entry per area the OS installed,
	// the first at instruction 0. Nil for static cells. The slice is
	// shared across cache hits and must be treated as read-only.
	AreaChanges []sim.AreaChange
	// Wall is the time this cell's simulation took; zero when the
	// result came from the run cache.
	Wall time.Duration
	// CacheHit reports that the result was served from the run cache
	// (or deduplicated against an identical in-flight cell) rather
	// than simulated anew.
	CacheHit bool
	// GroupID names the single-pass group that simulated this cell:
	// cells sharing a workload and binary within one batch execute as
	// one multi-model pass (sim.RunMulti), and every fresh cell of
	// that pass carries the same deterministic id
	// ("<workload>/original" or "<workload>/placed"). Empty for
	// cache hits and for batches run with WithCoalesce(false).
	GroupID string
}

// Progress is one completed cell's report to the progress callback.
// Failed cells are reported too (Err non-nil), so Done always reaches
// Total — a display driven by this callback must not treat a report
// as success without checking Err.
type Progress struct {
	Done, Total int
	Spec        RunSpec
	Wall        time.Duration
	CacheHit    bool
	// Err is non-nil when the cell failed: simulation error, verify
	// rejection, or cancellation.
	Err error
}

// Option configures an Engine or one Run call. Options passed to New
// become the engine defaults; options passed to Run override them for
// that batch.
type Option func(*options)

type options struct {
	workers    int
	base       sim.Config
	progress   func(Progress)
	verify     func(sim.Config, *sim.RunStats) error
	obs        *obs.Registry
	noCoalesce bool
	store      StoreTier
}

// WithWorkers caps the number of cells simulated concurrently.
// Values below 1 mean GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithBaseConfig sets the machine template a cell's spec is resolved
// against: the spec supplies I-cache geometry, scheme and WP size,
// the base everything else (D-cache, TLBs, memory, timing, energy,
// array style, instruction budget). The run cache is keyed by the
// fully resolved configuration, so batches run against different
// bases never alias.
func WithBaseConfig(cfg sim.Config) Option {
	return func(o *options) { o.base = cfg }
}

// WithProgress installs a callback invoked (serially) after each cell
// completes.
func WithProgress(fn func(Progress)) Option {
	return func(o *options) { o.progress = fn }
}

// WithVerify installs an invariant checker run against every cell
// result — fresh simulations and run-cache hits alike — with the
// cell's fully resolved configuration. A non-nil error fails the cell
// exactly like a simulation error (reported per cell, grid continues).
// check.VerifyCell is the intended checker.
func WithVerify(fn func(sim.Config, *sim.RunStats) error) Option {
	return func(o *options) { o.verify = fn }
}

// WithCoalesce enables or disables single-pass grouping (the default
// is on). When enabled, cells of one batch that share a workload and
// binary — and therefore an identical fetch stream — are simulated by
// one sim.RunMulti pass driving all their cache models at once; each
// cell keeps its own memoization key, verify call, progress report
// and result slot, so output is byte-identical either way (the
// differential harness in internal/check and wpbench -selfcheck both
// enforce this). Disable it to force the per-cell reference path.
func WithCoalesce(on bool) Option {
	return func(o *options) { o.noCoalesce = !on }
}

// StoreTier is a persistent result tier layered under the in-memory
// run cache (internal/store implements it over a disk CAS). Load is
// read-through — consulted on a memory miss before simulating, keyed
// by the cell's canonical RunSpec.Key() — and Save is write-behind:
// called after every fresh successful simulation, expected to queue
// the durable write off the hot path. Both must be safe for
// concurrent use. RunSpec.Key captures the cell but not the base
// machine template, so the tier is only consulted for batches run
// under the engine's default base configuration; a Run call that
// overrides WithBaseConfig bypasses it.
type StoreTier interface {
	Load(key string) (stats *sim.RunStats, changes []sim.AreaChange, ok bool)
	Save(key string, stats *sim.RunStats, changes []sim.AreaChange)
}

// WithStore installs a persistent result tier under the run cache.
// Results loaded from it count as cache hits (Result.CacheHit true,
// zero wall time) and are verified like any other result when
// WithVerify is installed.
func WithStore(tier StoreTier) Option {
	return func(o *options) { o.store = tier }
}

// WithObserver installs an observability registry (internal/obs): the
// engine registers per-cell and per-prepare latency histograms,
// run-cache counters, an in-flight gauge, and per-scheme instruction
// and energy totals (see the Metric* constants). A nil registry — the
// default — disables metrics entirely; the disabled path performs no
// allocations and no atomic operations. Observability never perturbs
// results: instruments are written outside the simulators.
func WithObserver(r *obs.Registry) Option {
	return func(o *options) { o.obs = r }
}

// Engine schedules simulation cells over a worker pool with a
// memoising run cache. It is safe for concurrent use.
type Engine struct {
	provider Provider
	defaults options
	ins      instruments

	mu        sync.Mutex
	workloads map[string]*workloadEntry
	runs      map[runKey]*runEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	groups    atomic.Uint64
	coalesced atomic.Uint64
}

// workloadEntry memoises one provider call; done is closed when w/err
// are final. Entries that fail are removed so a later call can retry.
type workloadEntry struct {
	done chan struct{}
	w    *Workload
	err  error
}

// runKey is the run-cache fingerprint: the workload plus the fully
// resolved machine configuration (sim.Config is a comparable struct,
// so the key captures every field that can influence the result) plus
// the adaptive policy, which changes the run without being part of the
// machine configuration.
type runKey struct {
	workload string
	cfg      sim.Config
	adaptive AdaptiveSpec
}

type runEntry struct {
	done    chan struct{}
	stats   *sim.RunStats
	changes []sim.AreaChange
	err     error
}

// New builds an engine over the given workload provider.
func New(provider Provider, opts ...Option) *Engine {
	e := &Engine{
		provider:  provider,
		workloads: make(map[string]*workloadEntry),
		runs:      make(map[runKey]*runEntry),
	}
	e.defaults = options{base: sim.Default()}
	for _, opt := range opts {
		opt(&e.defaults)
	}
	e.ins = newInstruments(e.defaults.obs)
	return e
}

// Hits returns how many cells were served from the run cache (or
// coalesced onto an identical in-flight cell) instead of simulated.
func (e *Engine) Hits() uint64 { return e.hits.Load() }

// Misses returns how many cells were actually simulated.
func (e *Engine) Misses() uint64 { return e.misses.Load() }

// Groups returns how many multi-cell single-pass groups the engine
// has executed: batches of cells sharing one fetch stream that were
// simulated by a single sim.RunMulti call. Single-cell passes do not
// count.
func (e *Engine) Groups() uint64 { return e.groups.Load() }

// CoalescedCells returns how many fresh cells were simulated inside
// multi-cell groups — the cells that shared a fetch stream instead of
// re-executing the program.
func (e *Engine) CoalescedCells() uint64 { return e.coalesced.Load() }

// resolve applies a spec to the base machine template. Adaptive cells
// resolve to the way-placement scheme with the policy's start size —
// the same configuration sim.RunAdaptive installs before the first OS
// decision, so verifiers see the machine the run actually began on.
func resolve(base sim.Config, spec RunSpec) sim.Config {
	base.ICache = spec.ICache
	base.Scheme = spec.Scheme
	base.WPSize = spec.WPSize
	// The spec's variant fields extend the template rather than reset
	// it: a zero-valued spec leaves a base-config style or ablation
	// switch in force, so batches run against a specialised template
	// keep their meaning.
	if spec.Style != 0 {
		base.Style = spec.Style
	}
	base.OracleHint = base.OracleHint || spec.OracleHint
	base.NoSameLine = base.NoSameLine || spec.NoSameLine
	if spec.Adaptive.Enabled() {
		base.Scheme = energy.WayPlacement
		base.WPSize = spec.Adaptive.StartSize
	}
	return base
}

// usesPlaced reports which binary the cell fetches from: the relaid
// image for way-placement (static or adaptive), the original layout
// otherwise. Cells agreeing here (and on the workload) share a fetch
// stream and may coalesce.
func usesPlaced(spec RunSpec) bool {
	return spec.Scheme == energy.WayPlacement || spec.Adaptive.Enabled()
}

// modelOf translates one cell into the instruction-side cache model
// it contributes to a single-pass group. cfg must be the cell's
// resolved configuration.
func modelOf(spec RunSpec, cfg sim.Config) sim.ModelSpec {
	if spec.Adaptive.Enabled() {
		pol := spec.Adaptive.Policy()
		return sim.ModelSpec{Geometry: cfg.ICache, Adaptive: &pol}
	}
	return sim.ModelSpecOf(cfg)
}

// Run executes a batch of cells and returns their results in input
// order. Identical specs within the batch are simulated once; specs
// seen in earlier batches are served from the run cache. Unless
// WithCoalesce(false) is in force, fresh cells sharing a workload and
// binary are planned into single-pass groups, each simulated by one
// sim.RunMulti call driving every member's cache model off one fetch
// stream. Per-cell failures do not abort the grid: every runnable
// cell still runs, the failures come back as a *MultiError, and the
// corresponding result slots are nil. Cancelling ctx stops the batch
// promptly, abandoning unstarted cells and interrupting in-flight
// instruction loops.
func (e *Engine) Run(ctx context.Context, specs []RunSpec, opts ...Option) ([]*Result, error) {
	opt := e.defaults
	for _, o := range opts {
		o(&opt)
	}
	workers := opt.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ins := e.ins
	if opt.obs != e.defaults.obs {
		ins = newInstruments(opt.obs)
	}
	// The persistent tier is keyed by RunSpec.Key, which does not
	// cover the base template; a batch overriding the engine's base
	// must not read or write it (results would alias across bases).
	tier := opt.store
	if opt.base != e.defaults.base {
		tier = nil
	}

	// Deduplicate the batch, preserving first-occurrence order.
	firstIdx := make(map[RunSpec]int, len(specs))
	var unique []RunSpec
	for _, s := range specs {
		if _, ok := firstIdx[s]; !ok {
			firstIdx[s] = len(unique)
			unique = append(unique, s)
		}
	}
	uniqueRes := make([]*Result, len(unique))
	uniqueErr := make([]error, len(unique))
	groupIDs := make([]string, len(unique))

	// Serialise progress callbacks and the done counter. Every unique
	// cell reports exactly once — failures included (Err non-nil) — so
	// Done always reaches Total and a -progress display never appears
	// hung on a grid with failing cells.
	var progMu sync.Mutex
	done := 0
	report := func(p Progress) {
		if opt.progress == nil {
			return
		}
		progMu.Lock()
		done++
		p.Done, p.Total = done, len(unique)
		opt.progress(p)
		progMu.Unlock()
	}

	// finish books one unique cell's outcome: verify, instruments,
	// result/error slot, progress. Shared by every execution shape.
	finish := func(idx int, stats *sim.RunStats, changes []sim.AreaChange, hit bool, wall time.Duration, err error) {
		spec := unique[idx]
		if err == nil && opt.verify != nil {
			if verr := opt.verify(resolve(opt.base, spec), stats); verr != nil {
				err = fmt.Errorf("%s: verify: %w", spec, verr)
			}
		}
		if err != nil {
			uniqueErr[idx] = err
			ins.failures.Inc()
			report(Progress{Spec: spec, Wall: wall, Err: err})
			return
		}
		r := &Result{Spec: spec, Stats: stats, AreaChanges: changes, CacheHit: hit, Wall: wall, GroupID: groupIDs[idx]}
		ins.cells.Inc()
		if !hit {
			ins.record(spec, stats, wall)
		}
		uniqueRes[idx] = r
		report(Progress{Spec: spec, Wall: wall, CacheHit: hit})
	}

	// runWait serves a cell whose key already has an in-flight or
	// finished entry — a cross-batch cache hit. It still books the hit
	// counters and fires the progress callback, so a display over a
	// half-memoized grid sees Done reach Total.
	runWait := func(idx int, ent *runEntry) {
		spec := unique[idx]
		select {
		case <-ent.done:
		case <-ctx.Done():
			err := ctx.Err()
			uniqueErr[idx] = err
			ins.failures.Inc()
			report(Progress{Spec: spec, Err: err})
			return
		}
		if ent.err != nil {
			uniqueErr[idx] = ent.err
			ins.failures.Inc()
			report(Progress{Spec: spec, Err: ent.err})
			return
		}
		e.hits.Add(1)
		ins.hits.Inc()
		finish(idx, ent.stats, ent.changes, true, 0, nil)
	}

	// runCell is the per-cell reference path (WithCoalesce(false)).
	runCell := func(idx int) {
		spec := unique[idx]
		if err := ctx.Err(); err != nil {
			uniqueErr[idx] = err
			ins.failures.Inc()
			report(Progress{Spec: spec, Err: err})
			return
		}
		start := time.Now()
		stats, changes, hit, err := e.cell(ctx, spec, opt.base, ins, tier)
		var wall time.Duration
		if !hit {
			wall = time.Since(start)
		}
		finish(idx, stats, changes, hit, wall, err)
	}

	type member struct {
		idx int
		key runKey
		ent *runEntry
	}
	type group struct {
		workload string
		placed   bool
		members  []member
	}

	// runGroup executes one planned group: a single multi-model pass
	// over the shared fetch stream. Its entries were registered at
	// plan time, so it must settle every one of them on every path —
	// a waiter in another batch may be blocked on them.
	runGroup := func(g *group) {
		fail := func(err error) {
			e.mu.Lock()
			for _, m := range g.members {
				delete(e.runs, m.key)
			}
			e.mu.Unlock()
			for _, m := range g.members {
				spec := unique[m.idx]
				m.ent.err = fmt.Errorf("%s: %w", spec, err)
				close(m.ent.done)
				uniqueErr[m.idx] = m.ent.err
				ins.failures.Inc()
				report(Progress{Spec: spec, Err: m.ent.err})
			}
		}
		if err := ctx.Err(); err != nil {
			fail(err)
			return
		}
		if tier != nil {
			// Read-through: members already durable in the store are
			// settled without touching a simulator; the remainder — if
			// any — forms the single-pass group.
			remaining := g.members[:0]
			for _, m := range g.members {
				spec := unique[m.idx]
				if stats, changes, ok := tier.Load(spec.Key()); ok {
					m.ent.stats, m.ent.changes = stats, changes
					close(m.ent.done)
					e.hits.Add(1)
					ins.hits.Inc()
					groupIDs[m.idx] = "" // served from the store, not a pass
					finish(m.idx, stats, changes, true, 0, nil)
					continue
				}
				remaining = append(remaining, m)
			}
			g.members = remaining
			if len(g.members) == 0 {
				return
			}
		}
		e.misses.Add(uint64(len(g.members)))
		ins.misses.Add(uint64(len(g.members)))
		w, err := e.workload(ctx, g.workload)
		if err != nil {
			fail(err)
			return
		}
		prog := w.Original
		if g.placed {
			prog = w.Placed
		}
		models := make([]sim.ModelSpec, len(g.members))
		for i, m := range g.members {
			models[i] = modelOf(unique[m.idx], m.key.cfg)
		}
		ins.inflight.Add(float64(len(g.members)))
		start := time.Now()
		res, err := sim.RunMulti(ctx, prog, opt.base, models)
		wall := time.Since(start)
		ins.inflight.Add(-float64(len(g.members)))
		if err != nil {
			// A producer-level failure (fault, budget, cancellation)
			// fails every member; per-model errors below fail only
			// their own cell.
			fail(err)
			return
		}
		if len(g.members) > 1 {
			e.groups.Add(1)
			ins.groups.Inc()
			e.coalesced.Add(uint64(len(g.members)))
			ins.coalesced.Add(uint64(len(g.members)))
		}
		// The pass's wall time is shared work: split it evenly so
		// per-cell walls still sum to real simulation time.
		share := wall / time.Duration(len(g.members))
		for i, m := range g.members {
			spec := unique[m.idx]
			if res[i].Err != nil {
				m.ent.err = fmt.Errorf("%s: %w", spec, res[i].Err)
				e.mu.Lock()
				delete(e.runs, m.key)
				e.mu.Unlock()
			} else {
				m.ent.stats, m.ent.changes = res[i].Stats, res[i].AreaChanges
				if tier != nil {
					// Write-behind: the durable copy is queued off the
					// hot path; losing it to a crash only costs a
					// deterministic re-simulation.
					tier.Save(spec.Key(), m.ent.stats, m.ent.changes)
				}
			}
			close(m.ent.done)
			finish(m.idx, m.ent.stats, m.ent.changes, false, share, m.ent.err)
		}
	}

	// Plan the batch. Under the engine lock each unique cell either
	// joins an existing run entry (a waiter: some earlier batch — or
	// this planning pass — owns the simulation) or registers a fresh
	// entry and is assigned to the single-pass group for its
	// (workload, binary) pair. Group membership follows unique order,
	// so the model list — and therefore the output — is deterministic
	// regardless of worker count.
	var tasks []func()
	if !opt.noCoalesce {
		var order []*group
		byStream := make(map[groupKey]*group)
		e.mu.Lock()
		for idx, spec := range unique {
			key := runKey{workload: spec.Workload, cfg: resolve(opt.base, spec), adaptive: spec.Adaptive}
			if ent, ok := e.runs[key]; ok {
				idx, ent := idx, ent
				tasks = append(tasks, func() { runWait(idx, ent) })
				continue
			}
			ent := &runEntry{done: make(chan struct{})}
			e.runs[key] = ent
			gk := groupKey{workload: spec.Workload, placed: usesPlaced(spec)}
			g := byStream[gk]
			if g == nil {
				g = &group{workload: gk.workload, placed: gk.placed}
				byStream[gk] = g
				order = append(order, g)
			}
			g.members = append(g.members, member{idx: idx, key: key, ent: ent})
		}
		e.mu.Unlock()
		for _, g := range order {
			gid := g.workload + "/original"
			if g.placed {
				gid = g.workload + "/placed"
			}
			for _, m := range g.members {
				groupIDs[m.idx] = gid
			}
			g := g
			tasks = append(tasks, func() { runGroup(g) })
		}
	} else {
		for idx := range unique {
			idx := idx
			tasks = append(tasks, func() { runCell(idx) })
		}
	}

	if workers > len(tasks) {
		workers = len(tasks)
	}
	jobs := make(chan func())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for task := range jobs {
				task()
			}
		}()
	}
	for _, t := range tasks {
		jobs <- t
	}
	close(jobs)
	wg.Wait()

	// Assemble per-input results; duplicate occurrences share the
	// memoised stats and are marked as cache hits.
	results := make([]*Result, len(specs))
	occurrences := make(map[RunSpec]int, len(firstIdx))
	var merr MultiError
	for i, s := range specs {
		u := firstIdx[s]
		if uniqueErr[u] != nil {
			if occurrences[s] == 0 {
				merr.Errors = append(merr.Errors, &CellError{Spec: s, Err: uniqueErr[u]})
			}
			occurrences[s]++
			continue
		}
		r := uniqueRes[u]
		if occurrences[s] == 0 {
			results[i] = r
		} else {
			e.hits.Add(1)
			ins.hits.Inc()
			ins.cells.Inc()
			results[i] = &Result{Spec: s, Stats: r.Stats, AreaChanges: r.AreaChanges, CacheHit: true, GroupID: r.GroupID}
		}
		occurrences[s]++
	}
	if len(merr.Errors) > 0 {
		return results, &merr
	}
	return results, nil
}

// groupKey identifies one fetch stream within a batch: cells with the
// same workload and binary replay identical (addr, indirect) events.
type groupKey struct {
	workload string
	placed   bool
}

// RunOne executes a single cell.
func (e *Engine) RunOne(ctx context.Context, spec RunSpec, opts ...Option) (*Result, error) {
	res, err := e.Run(ctx, []RunSpec{spec}, opts...)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Prepare forces the once-per-workload profile-and-relink stage for
// every named workload, fanning out over the worker pool. It is
// optional — Run prepares workloads lazily — but lets callers front a
// batch with a parallel preparation phase and surface errors early.
func (e *Engine) Prepare(ctx context.Context, names []string, opts ...Option) error {
	opt := e.defaults
	for _, o := range opts {
		o(&opt)
	}
	workers := opt.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	errs := make([]error, len(names))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := ctx.Err(); err != nil {
					errs[idx] = err
					continue
				}
				_, errs[idx] = e.workload(ctx, names[idx])
			}
		}()
	}
	for idx := range names {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	var merr MultiError
	for i, err := range errs {
		if err != nil {
			merr.Errors = append(merr.Errors, fmt.Errorf("prepare %s: %w", names[i], err))
		}
	}
	if len(merr.Errors) > 0 {
		return &merr
	}
	return nil
}

// cell returns the memoised stats for one spec, simulating it if this
// is the first time the resolved configuration is seen. Concurrent
// requests for the same cell coalesce onto a single simulation.
func (e *Engine) cell(ctx context.Context, spec RunSpec, base sim.Config, ins instruments, tier StoreTier) (*sim.RunStats, []sim.AreaChange, bool, error) {
	key := runKey{workload: spec.Workload, cfg: resolve(base, spec), adaptive: spec.Adaptive}

	e.mu.Lock()
	if ent, ok := e.runs[key]; ok {
		e.mu.Unlock()
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil, nil, false, ctx.Err()
		}
		if ent.err != nil {
			return nil, nil, false, ent.err
		}
		e.hits.Add(1)
		ins.hits.Inc()
		return ent.stats, ent.changes, true, nil
	}
	ent := &runEntry{done: make(chan struct{})}
	e.runs[key] = ent
	e.mu.Unlock()

	if tier != nil {
		// Read-through: a result durable from an earlier process is a
		// hit, not a simulation.
		if stats, changes, ok := tier.Load(spec.Key()); ok {
			ent.stats, ent.changes = stats, changes
			close(ent.done)
			e.hits.Add(1)
			ins.hits.Inc()
			return ent.stats, ent.changes, true, nil
		}
	}

	e.misses.Add(1)
	ins.misses.Inc()
	ins.inflight.Add(1)
	ent.stats, ent.changes, ent.err = e.exec(ctx, spec, key.cfg)
	ins.inflight.Add(-1)
	if ent.err == nil && tier != nil {
		tier.Save(spec.Key(), ent.stats, ent.changes)
	}
	if ent.err != nil {
		// Failed cells are evicted so a later batch can retry (a
		// cancelled run must not poison the cache).
		e.mu.Lock()
		delete(e.runs, key)
		e.mu.Unlock()
	}
	close(ent.done)
	return ent.stats, ent.changes, false, ent.err
}

// exec simulates one cell. Adaptive cells run the relaid binary under
// the OS area-sizing policy and also return the resize trace.
func (e *Engine) exec(ctx context.Context, spec RunSpec, cfg sim.Config) (*sim.RunStats, []sim.AreaChange, error) {
	w, err := e.workload(ctx, spec.Workload)
	if err != nil {
		return nil, nil, err
	}
	if spec.Adaptive.Enabled() {
		rs, changes, aerr := sim.RunAdaptive(ctx, w.Placed, cfg, spec.Adaptive.Policy())
		if aerr != nil {
			return nil, nil, fmt.Errorf("%s: %w", spec, aerr)
		}
		return rs, changes, nil
	}
	prog := w.Original
	if spec.Scheme == energy.WayPlacement {
		prog = w.Placed
	}
	rs, err := sim.RunContext(ctx, prog, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", spec, err)
	}
	return rs, nil, nil
}

// workload returns the memoised prepared workload, invoking the
// provider at most once per name. Concurrent cells for the same
// workload wait for a single preparation instead of duplicating the
// profile/layout work.
func (e *Engine) workload(ctx context.Context, name string) (*Workload, error) {
	e.mu.Lock()
	if ent, ok := e.workloads[name]; ok {
		e.mu.Unlock()
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return ent.w, ent.err
	}
	ent := &workloadEntry{done: make(chan struct{})}
	e.workloads[name] = ent
	e.mu.Unlock()

	start := time.Now()
	ent.w, ent.err = e.provider(ctx, name)
	if ent.err == nil {
		e.ins.prepareNS.ObserveSince(start)
	}
	if ent.err == nil && (ent.w == nil || ent.w.Original == nil) {
		ent.err = fmt.Errorf("engine: provider returned no programs for %q", name)
	}
	if ent.err == nil && ent.w.Placed == nil {
		// A provider may omit the relaid binary when only hardware
		// schemes are evaluated; way-placement cells then fail clearly.
		ent.w.Placed = ent.w.Original
	}
	if ent.err != nil {
		e.mu.Lock()
		delete(e.workloads, name)
		e.mu.Unlock()
	}
	close(ent.done)
	return ent.w, ent.err
}
