// Store-tier tests: the persistent CAS slots under the run cache as a
// read-through/write-behind tier, so a fresh engine over a warm store
// serves every cell from disk — and a batch run under an overridden
// base config must bypass the tier entirely, because RunSpec.Key does
// not capture the base machine template.
package engine_test

import (
	"context"
	"reflect"
	"testing"

	"wayplace/internal/engine"
	"wayplace/internal/obs"
	"wayplace/internal/sim"
	"wayplace/internal/store"
)

func TestStoreTierWarmRestart(t *testing.T) {
	provider := testProvider(t)
	specs := grid()
	ctx := context.Background()
	dir := t.TempDir()

	// Cold engine: every cell simulates, every result lands on disk.
	regA := obs.NewRegistry()
	stA, err := store.Open(store.Options{Dir: dir, Registry: regA, Fingerprint: "test-base"})
	if err != nil {
		t.Fatal(err)
	}
	eA := engine.New(provider, engine.WithWorkers(4), engine.WithStore(stA))
	want, err := eA.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if eA.Misses() != uint64(len(specs)) {
		t.Fatalf("cold engine missed %d, want %d", eA.Misses(), len(specs))
	}
	stA.Flush()
	stA.Close()
	if got := regA.Counter(store.MetricWrites).Value(); got != uint64(len(specs)) {
		t.Errorf("%s = %d, want %d", store.MetricWrites, got, len(specs))
	}

	// Fresh engine, warm store: zero simulations, identical results,
	// marked as cache hits.
	regB := obs.NewRegistry()
	stB, err := store.Open(store.Options{Dir: dir, Registry: regB, Fingerprint: "test-base"})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	eB := engine.New(provider, engine.WithWorkers(4), engine.WithStore(stB))
	got, err := eB.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(got[i].Stats, want[i].Stats) {
			t.Errorf("%v: warm-store stats differ from the original run", specs[i])
		}
		if !got[i].CacheHit {
			t.Errorf("%v: store load not marked as a cache hit", specs[i])
		}
	}
	if eB.Misses() != 0 {
		t.Errorf("warm-store engine re-simulated %d cells, want 0", eB.Misses())
	}
	if eB.Hits() != uint64(len(specs)) {
		t.Errorf("warm-store engine hits = %d, want %d", eB.Hits(), len(specs))
	}
	if hits := regB.Counter(store.MetricHits).Value(); hits != uint64(len(specs)) {
		t.Errorf("%s = %d, want %d", store.MetricHits, hits, len(specs))
	}

	// A per-batch base-config override changes what a key means, so
	// the tier must be bypassed: everything re-simulates, and the
	// store is neither read nor (wrongly) overwritten.
	base := sim.Default()
	base.MaxInstrs = 123_456_789
	loadsBefore := regB.Counter(store.MetricHits).Value() + regB.Counter(store.MetricMisses).Value()
	if _, err := eB.Run(ctx, specs, engine.WithBaseConfig(base)); err != nil {
		t.Fatal(err)
	}
	if eB.Misses() != uint64(len(specs)) {
		t.Errorf("base-override run missed %d cells, want %d (tier must be bypassed)", eB.Misses(), len(specs))
	}
	stB.Flush()
	loadsAfter := regB.Counter(store.MetricHits).Value() + regB.Counter(store.MetricMisses).Value()
	if loadsAfter != loadsBefore {
		t.Errorf("base-override run touched the store: %d loads, want 0", loadsAfter-loadsBefore)
	}
	if writes := regB.Counter(store.MetricWrites).Value(); writes != 0 {
		t.Errorf("base-override run wrote %d objects into a store pinned to another base", writes)
	}
}
