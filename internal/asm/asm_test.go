package asm

import (
	"strings"
	"testing"

	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

// buildCountdown is a tiny two-function program used across the tests:
// main calls work(10) in a loop structure; work counts its argument
// down to zero.
func buildCountdown(t *testing.T) *obj.Unit {
	t.Helper()
	b := NewBuilder("countdown")

	f := b.Func("main")
	f.Movi(isa.R0, 10)
	f.Call("work")
	f.Halt()

	w := b.Func("work")
	w.Block("loop")
	w.Subi(isa.R0, isa.R0, 1)
	w.Cmpi(isa.R0, 0)
	w.Bgt("loop")
	w.Ret()

	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return u
}

func TestBuildCountdownStructure(t *testing.T) {
	u := buildCountdown(t)
	if len(u.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(u.Funcs))
	}
	main := u.Funcs[0]
	if main.Name != "main" || main.Blocks[0].Sym != "main" {
		t.Fatalf("main entry block mis-named: %+v", main.Blocks[0])
	}
	// main: [movi, bl] -> call, then continuation [halt].
	if len(main.Blocks) != 2 {
		t.Fatalf("main has %d blocks, want 2: %+v", len(main.Blocks), main.Blocks)
	}
	if !main.Blocks[0].IsCall || main.Blocks[0].BranchSym != "work" {
		t.Errorf("main entry block should be a call to work: %+v", main.Blocks[0])
	}
	if main.Blocks[0].FallSym != main.Blocks[1].Sym {
		t.Errorf("call continuation not chained: %q vs %q", main.Blocks[0].FallSym, main.Blocks[1].Sym)
	}

	work := u.Funcs[1]
	// work: loop block (label attached to entry) + ret block.
	if len(work.Blocks) != 2 {
		t.Fatalf("work has %d blocks, want 2", len(work.Blocks))
	}
	if work.Blocks[0].Sym != "work" {
		t.Errorf("loop label should alias the entry block, got %q", work.Blocks[0].Sym)
	}
	if work.Blocks[0].BranchSym != "work" {
		t.Errorf("loop back-edge should target the entry block, got %q", work.Blocks[0].BranchSym)
	}
	if work.Blocks[0].FallSym != work.Blocks[1].Sym {
		t.Errorf("conditional branch fall-through not recorded")
	}
}

func TestLinkPatchesBranches(t *testing.T) {
	u := buildCountdown(t)
	p, err := obj.Link(u, obj.OriginalOrder(u), 0x1000)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if p.Entry != 0x1000 {
		t.Errorf("entry = %#x, want 0x1000", p.Entry)
	}
	// Image: main: movi, bl | halt || work: subi, cmpi, bgt | ret
	if len(p.Code) != 7 {
		t.Fatalf("code has %d instructions, want 7", len(p.Code))
	}
	workAddr, ok := p.AddrOf("work")
	if !ok {
		t.Fatal("no symbol for work")
	}
	// The BL at index 1 must reach workAddr: target = pc+4+disp*4.
	bl := p.Code[1]
	if bl.Op != isa.BL {
		t.Fatalf("instr 1 is %v, want bl", bl)
	}
	pc := p.Base + 4
	if got := pc + 4 + uint32(bl.Imm)*4; got != workAddr {
		t.Errorf("bl reaches %#x, want %#x", got, workAddr)
	}
	// The BGT at index 5 must loop back to workAddr (negative disp).
	bgt := p.Code[5]
	if bgt.Op != isa.B || bgt.Cond != isa.GT {
		t.Fatalf("instr 5 is %v, want bgt", bgt)
	}
	pc = p.Base + 5*4
	if got := uint32(int64(pc) + 4 + int64(bgt.Imm)*4); got != workAddr {
		t.Errorf("bgt reaches %#x, want %#x", got, workAddr)
	}
	if bgt.Imm >= 0 {
		t.Errorf("back-edge displacement should be negative, got %d", bgt.Imm)
	}
	// Every word must decode back to its Code entry.
	for i, w := range p.Words {
		d, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d does not decode: %v", i, err)
		}
		if d != p.Code[i] {
			t.Errorf("word %d decodes to %v, want %v", i, d, p.Code[i])
		}
	}
}

func TestLinkRejectsBrokenOrders(t *testing.T) {
	u := buildCountdown(t)
	orig := obj.OriginalOrder(u)

	// Reversing violates the call/return fall-through pairing.
	rev := make([]*obj.Block, len(orig))
	for i, b := range orig {
		rev[len(orig)-1-i] = b
	}
	if _, err := obj.Link(u, rev, 0x1000); err == nil {
		t.Error("Link accepted an order violating fall-through constraints")
	}

	// Dropping a block must fail.
	if _, err := obj.Link(u, orig[:len(orig)-1], 0x1000); err == nil {
		t.Error("Link accepted an incomplete order")
	}

	// Duplicating a block must fail.
	dup := append(append([]*obj.Block(nil), orig...), orig[0])
	if _, err := obj.Link(u, dup, 0x1000); err == nil {
		t.Error("Link accepted a duplicated block")
	}

	// Misaligned base must fail.
	if _, err := obj.Link(u, orig, 0x1001); err == nil {
		t.Error("Link accepted a misaligned base")
	}
}

func TestLinkRequiresMain(t *testing.T) {
	b := NewBuilder("nomain")
	f := b.Func("helper")
	f.Ret()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := obj.Link(u, obj.OriginalOrder(u), 0); err == nil ||
		!strings.Contains(err.Error(), "main") {
		t.Errorf("Link without main: err = %v, want mention of main", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder("t")
		f := b.Func("main")
		f.Movi(isa.R0, 1)
		f.Beq("nowhere")
		f.Halt()
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted a branch to an undefined label")
		}
	})
	t.Run("undefined callee", func(t *testing.T) {
		b := NewBuilder("t")
		f := b.Func("main")
		f.Call("ghost")
		f.Halt()
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted a call to an undefined function")
		}
	})
	t.Run("missing terminator", func(t *testing.T) {
		b := NewBuilder("t")
		f := b.Func("main")
		f.Movi(isa.R0, 1)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted a function with no terminator")
		}
	})
	t.Run("duplicate function", func(t *testing.T) {
		b := NewBuilder("t")
		b.Func("main").Halt()
		b.Func("main").Halt()
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted duplicate function names")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder("t")
		f := b.Func("main")
		f.Block("x")
		f.Movi(isa.R0, 1)
		f.Block("x")
		f.Halt()
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted duplicate labels")
		}
	})
}

func TestDataSegment(t *testing.T) {
	b := NewBuilder("t")
	a1 := b.Words(1, 2, 3)
	a2 := b.Data([]byte{9})
	b.Align(4)
	a3 := b.Zeros(8)
	f := b.Func("main")
	f.Li(isa.R0, a1)
	f.Halt()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a1 != DefaultDataBase {
		t.Errorf("first alloc at %#x, want %#x", a1, DefaultDataBase)
	}
	if a2 != a1+12 {
		t.Errorf("second alloc at %#x, want %#x", a2, a1+12)
	}
	if a3%4 != 0 {
		t.Errorf("aligned alloc at %#x not 4-aligned", a3)
	}
	if len(u.Data) != 24 {
		t.Errorf("data image %d bytes, want 24", len(u.Data))
	}
	if u.Data[0] != 1 || u.Data[4] != 2 || u.Data[8] != 3 || u.Data[12] != 9 {
		t.Errorf("data image content wrong: % x", u.Data[:16])
	}
}

func TestLiEmitsMovtOnlyWhenNeeded(t *testing.T) {
	b := NewBuilder("t")
	f := b.Func("main")
	f.Li(isa.R1, 0x1234)
	f.Li(isa.R2, 0xdead_beef)
	f.Halt()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ins := u.Funcs[0].Blocks[0].Instrs
	if len(ins) != 4 {
		t.Fatalf("got %d instrs, want 4 (movw, movw, movt, halt)", len(ins))
	}
	if ins[0].Op != isa.MOVW || ins[1].Op != isa.MOVW || ins[2].Op != isa.MOVT {
		t.Errorf("unexpected sequence: %v %v %v", ins[0], ins[1], ins[2])
	}
	if ins[1].Imm != int32(0xbeef) || ins[2].Imm != int32(0xdead) {
		t.Errorf("movw/movt halves wrong: %v %v", ins[1], ins[2])
	}
}

func TestBranchMidStreamSplitsBlock(t *testing.T) {
	b := NewBuilder("t")
	f := b.Func("main")
	f.Movi(isa.R0, 1)
	f.Cmpi(isa.R0, 0)
	f.Beq("done") // seals, opens anonymous fall-through
	f.Movi(isa.R1, 2)
	f.Block("done")
	f.Halt()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blocks := u.Funcs[0].Blocks
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	if blocks[0].FallSym != blocks[1].Sym {
		t.Errorf("first block should fall into the anonymous block")
	}
	if blocks[0].BranchSym != blocks[2].Sym {
		t.Errorf("branch should target done block, got %q", blocks[0].BranchSym)
	}
	if blocks[1].FallSym != blocks[2].Sym {
		t.Errorf("anonymous block should fall into done")
	}
}

func TestProgramIndexHelpers(t *testing.T) {
	u := buildCountdown(t)
	p, err := obj.Link(u, obj.OriginalOrder(u), 0x2000)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if i, ok := p.IndexOf(0x2000); !ok || i != 0 {
		t.Errorf("IndexOf(base) = %d,%v", i, ok)
	}
	if _, ok := p.IndexOf(0x1ffc); ok {
		t.Error("IndexOf below base succeeded")
	}
	if _, ok := p.IndexOf(0x2001); ok {
		t.Error("IndexOf misaligned succeeded")
	}
	if _, ok := p.IndexOf(p.Base + p.Size()); ok {
		t.Error("IndexOf past end succeeded")
	}
	if blk := p.BlockAt(0); blk == nil || blk.Block.Sym != "main" {
		t.Errorf("BlockAt(0) = %+v, want main", blk)
	}
	last := len(p.Code) - 1
	if blk := p.BlockAt(last); blk == nil || blk.Block.Func != "work" {
		t.Errorf("BlockAt(last) = %+v, want work block", blk)
	}
	if p.BlockAt(-1) != nil || p.BlockAt(len(p.Code)) != nil {
		t.Error("BlockAt out of range should be nil")
	}
}

func TestPushPopEmission(t *testing.T) {
	b := NewBuilder("t")
	f := b.Func("main")
	f.Push(isa.R1, isa.R2)
	f.Pop(isa.R1, isa.R2)
	f.Halt()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ins := u.Funcs[0].Blocks[0].Instrs
	want := []isa.Instr{
		{Op: isa.SUBI, Rd: isa.SP, Rn: isa.SP, Imm: 8},
		{Op: isa.STR, Rd: isa.R1, Rn: isa.SP, Imm: 0},
		{Op: isa.STR, Rd: isa.R2, Rn: isa.SP, Imm: 4},
		{Op: isa.LDR, Rd: isa.R1, Rn: isa.SP, Imm: 0},
		{Op: isa.LDR, Rd: isa.R2, Rn: isa.SP, Imm: 4},
		{Op: isa.ADDI, Rd: isa.SP, Rn: isa.SP, Imm: 8},
		{Op: isa.HALT, Cond: isa.AL},
	}
	if len(ins) != len(want) {
		t.Fatalf("emitted %d instrs, want %d: %v", len(ins), len(want), ins)
	}
	for i := range want {
		got := ins[i]
		got.Cond = isa.AL // terminators carry AL; normalise
		want[i].Cond = isa.AL
		if got != want[i] {
			t.Errorf("instr %d = %v, want %v", i, got, want[i])
		}
	}
}

func TestSaveRestoreLREmission(t *testing.T) {
	b := NewBuilder("t")
	f := b.Func("main")
	f.Halt()
	h := b.Func("helper")
	h.SaveLR()
	h.RestoreLR()
	h.Ret()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ins := u.Funcs[1].Blocks[0].Instrs
	if len(ins) != 5 {
		t.Fatalf("got %d instrs, want 5", len(ins))
	}
	if ins[0].Op != isa.SUBI || ins[0].Rd != isa.SP || ins[0].Imm != 4 {
		t.Errorf("prologue[0] = %v", ins[0])
	}
	if ins[1].Op != isa.STR || ins[1].Rd != isa.LR {
		t.Errorf("prologue[1] = %v", ins[1])
	}
	if ins[2].Op != isa.LDR || ins[2].Rd != isa.LR {
		t.Errorf("epilogue[0] = %v", ins[2])
	}
	if ins[3].Op != isa.ADDI || ins[3].Rd != isa.SP {
		t.Errorf("epilogue[1] = %v", ins[3])
	}
}

func TestNextDataAddr(t *testing.T) {
	b := NewBuilder("t")
	if b.NextDataAddr() != DefaultDataBase {
		t.Errorf("fresh NextDataAddr = %#x", b.NextDataAddr())
	}
	b.Data([]byte{1, 2, 3})
	if got := b.NextDataAddr(); got != DefaultDataBase+3 {
		t.Errorf("NextDataAddr after 3 bytes = %#x", got)
	}
	if got := b.Data([]byte{9}); got != DefaultDataBase+3 {
		t.Errorf("next alloc at %#x, want advertised address", got)
	}
}
