// Package asm provides a builder API for constructing programs in the
// repository's ARM-like ISA. It plays the role of the compiler front
// end: benchmark generators use it to express functions, loops and
// calls, and it lowers them to the symbolic basic blocks consumed by
// the link-time way-placement pass.
//
// Control-flow discipline: instructions are appended to the current
// block; any branch, call or return seals the block (a basic block has
// one terminator). Labels started with Block become branch targets.
// Call continuations are anonymous blocks chained by a fall-through
// constraint, which is exactly the call/return-site pairing the layout
// pass must respect.
//
// Data discipline: static data addresses are assigned here, before
// code layout, and never move afterwards; code loads them as absolute
// immediates (MOVW/MOVT pairs). The final binary therefore needs no
// data relocations, and re-laying-out the code cannot perturb data —
// mirroring the paper's scheme, which reorders only the text section.
package asm

import (
	"encoding/binary"
	"fmt"

	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

// DefaultDataBase is where the data segment starts unless overridden.
// It sits far above any realistic code image.
const DefaultDataBase = 0x0040_0000

// Builder accumulates functions and data for one program.
type Builder struct {
	name     string
	funcs    []*FuncBuilder
	byName   map[string]*FuncBuilder
	dataBase uint32
	data     []byte
	errs     []error
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		byName:   make(map[string]*FuncBuilder),
		dataBase: DefaultDataBase,
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("asm: %s: "+format, append([]any{b.name}, args...)...))
}

// Func starts a new function. The entry block carries the function
// name as its symbol.
func (b *Builder) Func(name string) *FuncBuilder {
	if _, dup := b.byName[name]; dup {
		b.errf("duplicate function %s", name)
	}
	f := &FuncBuilder{b: b, name: name, labels: make(map[string]bool)}
	f.startBlock(name, true)
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f
}

// Data appends raw bytes to the data segment and returns their
// absolute address.
func (b *Builder) Data(bytes []byte) uint32 {
	addr := b.dataBase + uint32(len(b.data))
	b.data = append(b.data, bytes...)
	return addr
}

// Words appends 32-bit little-endian words to the data segment and
// returns the address of the first.
func (b *Builder) Words(ws ...uint32) uint32 {
	buf := make([]byte, 4*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	return b.Data(buf)
}

// Zeros reserves n zero bytes in the data segment and returns their
// address.
func (b *Builder) Zeros(n int) uint32 {
	return b.Data(make([]byte, n))
}

// NextDataAddr returns the address the next Data/Words call will
// allocate at. Front ends use it to serialise self-referential data
// structures (hash chains, tries) with absolute pointers.
func (b *Builder) NextDataAddr() uint32 {
	return b.dataBase + uint32(len(b.data))
}

// Align pads the data segment to the given power-of-two boundary.
func (b *Builder) Align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Build validates the program and lowers it to an object unit.
func (b *Builder) Build() (*obj.Unit, error) {
	u := &obj.Unit{Name: b.name, DataBase: b.dataBase, Data: append([]byte(nil), b.data...)}
	for _, f := range b.funcs {
		of, err := f.finish()
		if err != nil {
			return nil, err
		}
		u.Funcs = append(u.Funcs, of)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// MustBuild is Build for programmatically generated programs that are
// known to be well-formed; it panics on error.
func (b *Builder) MustBuild() *obj.Unit {
	u, err := b.Build()
	if err != nil {
		panic(err)
	}
	return u
}

// blockRef is a branch pending resolution: blocks are identified by
// local label (within the function) or by function name (calls).
type blockState struct {
	sym       string
	labels    []string // local labels ("" for anonymous continuations)
	instrs    []isa.Instr
	branchRef string // local label or function name for BL
	isCall    bool
	sealed    bool
	fallsTo   int // index of fall-through block in fn.blocks, -1 none
}

// FuncBuilder builds one function as a sequence of blocks.
type FuncBuilder struct {
	b      *Builder
	name   string
	blocks []*blockState
	cur    *blockState
	labels map[string]bool
	anon   int
}

func (f *FuncBuilder) startBlock(sym string, entry bool) *blockState {
	s := &blockState{sym: sym, fallsTo: -1}
	f.blocks = append(f.blocks, s)
	f.cur = s
	return s
}

// Block starts (or continues into) a labelled block. If the current
// block is unsealed and non-empty it falls through into the new one;
// if it is empty (e.g. a label right at function entry or right after
// a conditional branch) the label attaches to the current block.
func (f *FuncBuilder) Block(label string) *FuncBuilder {
	if f.labels[label] {
		f.b.errf("function %s: duplicate label %s", f.name, label)
	}
	f.labels[label] = true
	if f.cur != nil && !f.cur.sealed && len(f.cur.instrs) == 0 {
		f.cur.labels = append(f.cur.labels, label)
		return f
	}
	prev := f.cur
	n := len(f.blocks)
	f.startBlock(f.name+"."+label, false)
	f.cur.labels = append(f.cur.labels, label)
	if prev != nil && !prev.sealed {
		prev.fallsTo = n
	}
	return f
}

func (f *FuncBuilder) anonBlock() {
	f.anon++
	prev := f.cur
	n := len(f.blocks)
	f.startBlock(fmt.Sprintf("%s.$%d", f.name, f.anon), false)
	if prev != nil && !prev.sealed {
		prev.fallsTo = n
	}
}

func (f *FuncBuilder) emit(i isa.Instr) *FuncBuilder {
	if f.cur.sealed {
		f.anonBlock()
	}
	f.cur.instrs = append(f.cur.instrs, i)
	return f
}

// --- ALU and data-movement helpers ---

// Op3 emits a three-register ALU operation rd = rn OP rm.
func (f *FuncBuilder) Op3(op isa.Op, rd, rn, rm isa.Reg) *FuncBuilder {
	return f.emit(isa.Instr{Op: op, Rd: rd, Rn: rn, Rm: rm})
}

// OpI emits a register-immediate ALU operation rd = rn OP imm.
func (f *FuncBuilder) OpI(op isa.Op, rd, rn isa.Reg, imm int32) *FuncBuilder {
	return f.emit(isa.Instr{Op: op, Rd: rd, Rn: rn, Imm: imm})
}

// Add emits rd = rn + rm.
func (f *FuncBuilder) Add(rd, rn, rm isa.Reg) *FuncBuilder { return f.Op3(isa.ADD, rd, rn, rm) }

// Sub emits rd = rn - rm.
func (f *FuncBuilder) Sub(rd, rn, rm isa.Reg) *FuncBuilder { return f.Op3(isa.SUB, rd, rn, rm) }

// Mul emits rd = rn * rm.
func (f *FuncBuilder) Mul(rd, rn, rm isa.Reg) *FuncBuilder { return f.Op3(isa.MUL, rd, rn, rm) }

// Addi emits rd = rn + imm.
func (f *FuncBuilder) Addi(rd, rn isa.Reg, imm int32) *FuncBuilder {
	return f.OpI(isa.ADDI, rd, rn, imm)
}

// Subi emits rd = rn - imm.
func (f *FuncBuilder) Subi(rd, rn isa.Reg, imm int32) *FuncBuilder {
	return f.OpI(isa.SUBI, rd, rn, imm)
}

// Mov emits rd = rm.
func (f *FuncBuilder) Mov(rd, rm isa.Reg) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.MOV, Rd: rd, Rm: rm})
}

// Mvn emits rd = ^rm.
func (f *FuncBuilder) Mvn(rd, rm isa.Reg) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.MVN, Rd: rd, Rm: rm})
}

// Movi loads a small immediate (0..65535) into rd.
func (f *FuncBuilder) Movi(rd isa.Reg, imm uint16) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.MOVW, Rd: rd, Imm: int32(imm)})
}

// Li loads an arbitrary 32-bit constant, emitting MOVW and, when
// needed, MOVT — exactly how a compiler materialises data addresses.
func (f *FuncBuilder) Li(rd isa.Reg, v uint32) *FuncBuilder {
	f.emit(isa.Instr{Op: isa.MOVW, Rd: rd, Imm: int32(v & 0xffff)})
	if hi := v >> 16; hi != 0 {
		f.emit(isa.Instr{Op: isa.MOVT, Rd: rd, Imm: int32(hi)})
	}
	return f
}

// Nop emits a no-op.
func (f *FuncBuilder) Nop() *FuncBuilder { return f.emit(isa.Instr{Op: isa.NOP}) }

// --- comparison helpers ---

// Cmp emits flags(rn - rm).
func (f *FuncBuilder) Cmp(rn, rm isa.Reg) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.CMP, Rn: rn, Rm: rm})
}

// Cmpi emits flags(rn - imm).
func (f *FuncBuilder) Cmpi(rn isa.Reg, imm int32) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.CMPI, Rn: rn, Imm: imm})
}

// Tst emits flags(rn & rm).
func (f *FuncBuilder) Tst(rn, rm isa.Reg) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.TST, Rn: rn, Rm: rm})
}

// --- memory helpers ---

// Ldr emits rd = mem32[rn+imm].
func (f *FuncBuilder) Ldr(rd, rn isa.Reg, imm int32) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.LDR, Rd: rd, Rn: rn, Imm: imm})
}

// Str emits mem32[rn+imm] = rd.
func (f *FuncBuilder) Str(rd, rn isa.Reg, imm int32) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.STR, Rd: rd, Rn: rn, Imm: imm})
}

// Ldrb emits rd = zext(mem8[rn+imm]).
func (f *FuncBuilder) Ldrb(rd, rn isa.Reg, imm int32) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.LDRB, Rd: rd, Rn: rn, Imm: imm})
}

// Strb emits mem8[rn+imm] = rd.
func (f *FuncBuilder) Strb(rd, rn isa.Reg, imm int32) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.STRB, Rd: rd, Rn: rn, Imm: imm})
}

// Ldrx emits rd = mem32[rn+rm].
func (f *FuncBuilder) Ldrx(rd, rn, rm isa.Reg) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.LDRX, Rd: rd, Rn: rn, Rm: rm})
}

// Strx emits mem32[rn+rm] = rd.
func (f *FuncBuilder) Strx(rd, rn, rm isa.Reg) *FuncBuilder {
	return f.emit(isa.Instr{Op: isa.STRX, Rd: rd, Rn: rn, Rm: rm})
}

// --- control flow ---

// B emits a conditional branch to a local label and seals the block;
// building continues in an anonymous fall-through block. With isa.AL
// the branch is unconditional and nothing falls through.
func (f *FuncBuilder) B(cond isa.Cond, label string) *FuncBuilder {
	f.emit(isa.Instr{Op: isa.B, Cond: cond})
	sealed := f.cur
	sealed.branchRef = label
	sealed.sealed = true
	if cond != isa.AL {
		sealed.fallsTo = len(f.blocks)
		f.anonBlock()
	}
	return f
}

// Beq, Bne, Blt, Ble, Bgt, Bge, Blo, Bhs are common-condition wrappers.
func (f *FuncBuilder) Beq(label string) *FuncBuilder { return f.B(isa.EQ, label) }

// Bne branches when the Z flag is clear.
func (f *FuncBuilder) Bne(label string) *FuncBuilder { return f.B(isa.NE, label) }

// Blt branches on signed less-than.
func (f *FuncBuilder) Blt(label string) *FuncBuilder { return f.B(isa.LT, label) }

// Ble branches on signed less-or-equal.
func (f *FuncBuilder) Ble(label string) *FuncBuilder { return f.B(isa.LE, label) }

// Bgt branches on signed greater-than.
func (f *FuncBuilder) Bgt(label string) *FuncBuilder { return f.B(isa.GT, label) }

// Bge branches on signed greater-or-equal.
func (f *FuncBuilder) Bge(label string) *FuncBuilder { return f.B(isa.GE, label) }

// Blo branches on unsigned less-than.
func (f *FuncBuilder) Blo(label string) *FuncBuilder { return f.B(isa.LO, label) }

// Bhs branches on unsigned greater-or-equal.
func (f *FuncBuilder) Bhs(label string) *FuncBuilder { return f.B(isa.HS, label) }

// Jmp emits an unconditional branch to a local label.
func (f *FuncBuilder) Jmp(label string) *FuncBuilder { return f.B(isa.AL, label) }

// Call emits BL to another function. The block is sealed and the
// continuation (the return point) starts a new anonymous block bound
// to it by a fall-through constraint.
func (f *FuncBuilder) Call(fn string) *FuncBuilder {
	f.emit(isa.Instr{Op: isa.BL, Cond: isa.AL})
	sealed := f.cur
	sealed.branchRef = fn
	sealed.isCall = true
	sealed.sealed = true
	sealed.fallsTo = len(f.blocks)
	f.anonBlock()
	return f
}

// SaveLR emits the standard non-leaf prologue: push the link register
// onto the stack so nested calls do not clobber it.
func (f *FuncBuilder) SaveLR() *FuncBuilder {
	f.Subi(isa.SP, isa.SP, 4)
	return f.Str(isa.LR, isa.SP, 0)
}

// RestoreLR emits the matching epilogue: pop the link register.
func (f *FuncBuilder) RestoreLR() *FuncBuilder {
	f.Ldr(isa.LR, isa.SP, 0)
	return f.Addi(isa.SP, isa.SP, 4)
}

// Push spills registers to the stack (descending, one word each).
func (f *FuncBuilder) Push(regs ...isa.Reg) *FuncBuilder {
	f.Subi(isa.SP, isa.SP, int32(4*len(regs)))
	for i, r := range regs {
		f.Str(r, isa.SP, int32(4*i))
	}
	return f
}

// Pop reloads registers pushed by Push (same order).
func (f *FuncBuilder) Pop(regs ...isa.Reg) *FuncBuilder {
	for i, r := range regs {
		f.Ldr(r, isa.SP, int32(4*i))
	}
	return f.Addi(isa.SP, isa.SP, int32(4*len(regs)))
}

// Ret emits a return and seals the block.
func (f *FuncBuilder) Ret() *FuncBuilder {
	f.emit(isa.Instr{Op: isa.RET})
	f.cur.sealed = true
	return f
}

// Halt emits HALT and seals the block.
func (f *FuncBuilder) Halt() *FuncBuilder {
	f.emit(isa.Instr{Op: isa.HALT})
	f.cur.sealed = true
	return f
}

// finish resolves local labels and produces the object function.
func (f *FuncBuilder) finish() (*obj.Func, error) {
	// Drop trailing empty anonymous blocks (a function ending in Ret
	// leaves one open if nothing followed).
	blocks := f.blocks
	for len(blocks) > 0 {
		last := blocks[len(blocks)-1]
		if len(last.instrs) == 0 && len(last.labels) == 0 {
			blocks = blocks[:len(blocks)-1]
			continue
		}
		break
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("asm: function %s is empty", f.name)
	}
	symOf := make(map[string]string) // local label -> global sym
	for _, s := range blocks {
		for _, l := range s.labels {
			symOf[l] = s.sym
		}
	}
	of := &obj.Func{Name: f.name}
	for i, s := range blocks {
		if len(s.instrs) == 0 {
			return nil, fmt.Errorf("asm: function %s: empty block %s (label with no code?)", f.name, s.sym)
		}
		ob := &obj.Block{Sym: s.sym, Func: f.name, Index: i, Instrs: s.instrs, IsCall: s.isCall}
		if s.branchRef != "" {
			if s.isCall {
				if _, ok := f.b.byName[s.branchRef]; !ok {
					return nil, fmt.Errorf("asm: function %s calls undefined function %s", f.name, s.branchRef)
				}
				ob.BranchSym = s.branchRef // function entry symbol
			} else {
				sym, ok := symOf[s.branchRef]
				if !ok {
					return nil, fmt.Errorf("asm: function %s branches to undefined label %s", f.name, s.branchRef)
				}
				ob.BranchSym = sym
			}
		}
		if s.fallsTo >= 0 {
			if s.fallsTo >= len(blocks) {
				return nil, fmt.Errorf("asm: function %s: block %s falls off the end of the function", f.name, s.sym)
			}
			ob.FallSym = blocks[s.fallsTo].sym
		} else if !s.sealed {
			return nil, fmt.Errorf("asm: function %s: block %s has no terminator", f.name, s.sym)
		}
		of.Blocks = append(of.Blocks, ob)
	}
	return of, nil
}
