package cpu

import (
	"testing"

	"wayplace/internal/cache"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/progen"
	"wayplace/internal/tlb"
)

func genUnit(seed uint64) *obj.Unit {
	return progen.Unit(seed, progen.DefaultOptions())
}

func genProgram(seed uint64) *obj.Program {
	return progen.Program(seed, progen.DefaultOptions(), 0x1_0000)
}

// TestFuzzEngineEquivalence: for many random programs, the functional
// machine and all three cached machines must agree on the final
// architectural state; the cached machines must also agree on miss
// counts between schemes that share fill behaviour is NOT required —
// only semantics.
func TestFuzzEngineEquivalence(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	icfg := cache.Config{SizeBytes: 1 << 10, Ways: 8, LineBytes: 32}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		prog := genProgram(seed)

		type outcome struct {
			regs   [isa.NumRegs]uint32
			instrs uint64
		}
		var outs []outcome
		for variant := 0; variant < 4; variant++ {
			c := New(prog, mem.New(mem.DefaultConfig()))
			switch variant {
			case 1:
				e, err := cache.NewBaseline(icfg)
				if err != nil {
					t.Fatal(err)
				}
				attach(c, e, 0)
			case 2:
				it := tlb.MustNew(tlb.Config{Entries: 32, PageBytes: 1 << 10})
				if err := it.SetWPArea(prog.Base, 1<<10); err != nil {
					t.Fatal(err)
				}
				e, err := cache.NewWayPlacement(icfg, it)
				if err != nil {
					t.Fatal(err)
				}
				attach(c, e, 1<<10)
			case 3:
				e, err := cache.NewWayMemoization(icfg)
				if err != nil {
					t.Fatal(err)
				}
				attach(c, e, 0)
			}
			res, err := c.Run(5_000_000)
			if err != nil {
				t.Fatalf("seed %d variant %d: %v", seed, variant, err)
			}
			outs = append(outs, outcome{c.Regs, res.Instrs})
		}
		for v := 1; v < len(outs); v++ {
			if outs[v] != outs[0] {
				t.Fatalf("seed %d: variant %d diverged from functional run:\n%v\nvs\n%v",
					seed, v, outs[v], outs[0])
			}
		}
	}
}

// TestFuzzLayoutsPreserveSemantics: random programs must compute the
// same architectural state under the original link order and under a
// random constraint-respecting permutation — the property the
// way-placement pass relies on to reorder binaries safely.
func TestFuzzLayoutsPreserveSemantics(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	for seed := uint64(100); seed < uint64(100+n); seed++ {
		u := genUnit(seed)
		orig, err := obj.Link(u, obj.OriginalOrder(u), 0x1_0000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		perm, err := layout.LinkPermuted(u, seed*7+3, 0x1_0000)
		if err != nil {
			t.Fatalf("seed %d permute: %v", seed, err)
		}
		c1 := New(orig, mem.New(mem.DefaultConfig()))
		if _, err := c1.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c2 := New(perm, mem.New(mem.DefaultConfig()))
		if _, err := c2.Run(5_000_000); err != nil {
			t.Fatalf("seed %d permuted run: %v", seed, err)
		}
		// LR holds a code address and legitimately differs between
		// layouts; every data register must agree.
		r1, r2 := c1.Regs, c2.Regs
		r1[isa.LR], r2[isa.LR] = 0, 0
		if r1 != r2 {
			t.Fatalf("seed %d: permuted layout changed the result: %v vs %v",
				seed, r1, r2)
		}
	}
}
