package cpu

import "fmt"

// Fetch-event production for single-pass multi-model simulation
// (sim.RunMulti): the CPU executes the program once with the
// instruction-side memory system detached (IFetch and ITLB nil) and
// records, for every retired instruction, the fetch address it was
// fetched from plus whether control arrived via an indirect transfer.
// Independent cache models then replay the recorded stream.

// EventIndirect is the indirect-transfer flag of a fetch event.
// Instruction addresses are 4-byte aligned, so the low two bits of an
// event word are free; bit 0 carries the flag and EventAddr recovers
// the address.
const EventIndirect uint32 = 1

// EventAddr returns the fetch address of an event word.
func EventAddr(ev uint32) uint32 { return ev &^ 3 }

// RunEvents executes up to len(buf) further instructions, storing one
// fetch event per instruction (PC | indirect flag, captured before the
// instruction executes). It returns the number of events produced and
// stops early at HALT. Exceeding maxInstrs with the program still
// running is an error, exactly as in Run/RunContext.
//
// The CPU should have IFetch and ITLB nil: the caller replays the
// event stream through its own instruction-side models, so Cycles
// accumulates only the base and data-side components here.
func (c *CPU) RunEvents(buf []uint32, maxInstrs uint64) (int, error) {
	n := 0
	for !c.Halted && n < len(buf) {
		if c.Instrs >= maxInstrs {
			return n, fmt.Errorf("cpu: instruction budget %d exhausted at pc=%#x", maxInstrs, c.PC)
		}
		ev := c.PC
		if c.lastIndirect {
			ev |= EventIndirect
		}
		if err := c.Step(); err != nil {
			return n, err
		}
		buf[n] = ev
		n++
	}
	return n, nil
}
