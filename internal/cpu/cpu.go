// Package cpu implements the XScale-like embedded core: a single-
// issue, in-order machine executing the repository's ARM-like ISA,
// with an instruction-fetch path that exercises one of the cache
// package's fetch engines, I/D TLBs and a data cache.
//
// The timing model is event-based: every instruction costs one base
// cycle plus stalls for cache misses, TLB walks, multiplies, taken
// branches and way-hint mispredictions. This captures exactly the
// effects the paper's evaluation depends on — the schemes differ only
// in tag-check energy and the (rare) hint-mispredict cycle, so, as in
// the paper, performance is essentially identical across them.
package cpu

import (
	"context"
	"fmt"

	"wayplace/internal/cache"
	"wayplace/internal/isa"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/tlb"
)

// Timing holds the core's stall model.
type Timing struct {
	BranchTakenPenalty int // pipeline refill after a taken branch
	MulExtraCycles     int // extra result latency of MUL/MLA
	TLBWalkPenalty     int // page-table walk on a TLB miss
	HintExtraPenalty   int // second I-cache access after a wrong way hint
}

// DefaultTiming mirrors the paper's 7/8-stage in-order XScale pipeline.
func DefaultTiming() Timing {
	return Timing{
		BranchTakenPenalty: 2,
		MulExtraCycles:     2,
		TLBWalkPenalty:     20,
		HintExtraPenalty:   1,
	}
}

// Result summarises one simulation run.
type Result struct {
	Instrs uint64
	Cycles uint64
	// InstrCounts is the per-instruction execution count vector
	// (indexed like prog.Code), from which profiles are built.
	InstrCounts []uint64
}

// CPI returns cycles per instruction.
func (r *Result) CPI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instrs)
}

// CPU is one simulated core instance. IFetch, ITLB, DCache and DTLB
// are optional: with all nil the CPU is a fast functional interpreter
// (used for profiling runs on the training input).
type CPU struct {
	Prog   *obj.Program
	Mem    *mem.Memory
	Timing Timing

	IFetch cache.FetchEngine
	ITLB   *tlb.TLB
	DCache *cache.DataCache
	DTLB   *tlb.TLB

	Regs   [isa.NumRegs]uint32
	Flags  isa.Flags
	PC     uint32
	Halted bool

	Cycles uint64
	Instrs uint64
	counts []uint64

	// lastIndirect records that the previously executed instruction
	// redirected control through a register (RET), so the next fetch
	// target was not statically known — way-memoization cares.
	lastIndirect bool
}

// StackTop is where SP starts; the region below it backs stack frames.
const StackTop = 0x7fff_f000

// StackRegionBase bounds the stack scratch region from below; no
// workload's frames grow anywhere near this deep. Memory-image
// comparisons (sim.RunStats.MemHash) exclude everything from here up,
// because dead frames hold spilled return addresses — PC values that
// legitimately differ between code layouts.
const StackRegionBase = StackTop - 1<<20

// New builds a CPU over a linked program and memory image; the memory
// is populated with the program's data segment and the architectural
// state is reset.
func New(p *obj.Program, m *mem.Memory) *CPU {
	c := &CPU{Prog: p, Mem: m, Timing: DefaultTiming()}
	m.LoadImage(p.DataBase, p.Data)
	c.Reset()
	return c
}

// Reset re-initialises architectural state (but not memory or caches).
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint32{}
	c.Regs[isa.SP] = StackTop
	c.Flags = isa.Flags{}
	c.PC = c.Prog.Entry
	c.Halted = false
	c.Cycles = 0
	c.Instrs = 0
	c.counts = make([]uint64, len(c.Prog.Code))
}

// Fault is a simulated machine fault (bad PC, misalignment, ...).
type Fault struct {
	PC     uint32
	Instr  isa.Instr
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("cpu: fault at pc=%#x (%v): %s", f.PC, f.Instr, f.Reason)
}

func (c *CPU) fault(i isa.Instr, format string, args ...any) error {
	return &Fault{PC: c.PC, Instr: i, Reason: fmt.Sprintf(format, args...)}
}

// Run executes until HALT or until maxInstrs instructions have
// retired, whichever comes first. Exceeding the budget is an error:
// benchmark programs are expected to terminate.
func (c *CPU) Run(maxInstrs uint64) (*Result, error) {
	for !c.Halted {
		if c.Instrs >= maxInstrs {
			return nil, fmt.Errorf("cpu: instruction budget %d exhausted at pc=%#x", maxInstrs, c.PC)
		}
		if err := c.Step(); err != nil {
			return nil, err
		}
	}
	return &Result{Instrs: c.Instrs, Cycles: c.Cycles, InstrCounts: c.counts}, nil
}

// ctxCheckInstrs is how many instructions RunContext executes between
// cancellation checks. At simulator speeds a chunk is well under a
// millisecond, so cancellation is prompt while the per-chunk check
// stays invisible in profiles.
const ctxCheckInstrs = 50_000

// RunContext is Run with cooperative cancellation: the instruction
// loop checks ctx every ctxCheckInstrs retired instructions and
// returns ctx.Err() once the context is done. Architectural state is
// left exactly where the run stopped.
func (c *CPU) RunContext(ctx context.Context, maxInstrs uint64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for !c.Halted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.Instrs >= maxInstrs {
			return nil, fmt.Errorf("cpu: instruction budget %d exhausted at pc=%#x", maxInstrs, c.PC)
		}
		budget := uint64(ctxCheckInstrs)
		if rem := maxInstrs - c.Instrs; rem < budget {
			budget = rem
		}
		if _, err := c.RunInstrs(budget); err != nil {
			return nil, err
		}
	}
	return &Result{Instrs: c.Instrs, Cycles: c.Cycles, InstrCounts: c.counts}, nil
}

// RunInstrs executes at most budget further instructions, stopping
// early at HALT. It returns the number executed. Callers use it to
// interleave simulation with environment changes (e.g. the OS
// resizing the way-placement area mid-run).
func (c *CPU) RunInstrs(budget uint64) (uint64, error) {
	start := c.Instrs
	for !c.Halted && c.Instrs-start < budget {
		if err := c.Step(); err != nil {
			return c.Instrs - start, err
		}
	}
	return c.Instrs - start, nil
}

// InstrCounts exposes the per-instruction execution counters
// accumulated so far.
func (c *CPU) InstrCounts() []uint64 { return c.counts }

// DisableInstrCounts drops the per-instruction execution counters for
// runs that never build a profile (fetch-event production), removing a
// counter update from the per-instruction hot path. Reset re-enables
// them.
func (c *CPU) DisableInstrCounts() { c.counts = nil }

// Step executes a single instruction.
func (c *CPU) Step() error {
	idx, ok := c.Prog.IndexOf(c.PC)
	if !ok {
		return c.fault(isa.Instr{}, "instruction fetch outside image")
	}
	in := c.Prog.Code[idx]
	if c.counts != nil {
		c.counts[idx]++
	}
	c.Instrs++

	stall := 0

	// Instruction-side memory system.
	if c.ITLB != nil {
		if miss, _ := c.ITLB.Lookup(c.PC); miss {
			stall += c.Timing.TLBWalkPenalty
		}
	}
	if c.IFetch != nil {
		fr := c.IFetch.Fetch(c.PC, c.lastIndirect)
		if fr.Filled {
			stall += c.Mem.ReadLine(c.PC, c.IFetch.Cache().Cfg.LineBytes)
		}
		if fr.ExtraAccess {
			stall += c.Timing.HintExtraPenalty
		}
	}

	nextPC := c.PC + isa.InstrBytes
	indirect := false
	r := &c.Regs

	switch in.Op {
	case isa.ADD:
		r[in.Rd] = r[in.Rn] + r[in.Rm]
	case isa.SUB:
		r[in.Rd] = r[in.Rn] - r[in.Rm]
	case isa.RSB:
		r[in.Rd] = r[in.Rm] - r[in.Rn]
	case isa.MUL:
		r[in.Rd] = r[in.Rn] * r[in.Rm]
		stall += c.Timing.MulExtraCycles
	case isa.MLA:
		r[in.Rd] = r[in.Rn]*r[in.Rm] + r[in.Rd]
		stall += c.Timing.MulExtraCycles
	case isa.AND:
		r[in.Rd] = r[in.Rn] & r[in.Rm]
	case isa.ORR:
		r[in.Rd] = r[in.Rn] | r[in.Rm]
	case isa.EOR:
		r[in.Rd] = r[in.Rn] ^ r[in.Rm]
	case isa.BIC:
		r[in.Rd] = r[in.Rn] &^ r[in.Rm]
	case isa.LSL:
		r[in.Rd] = r[in.Rn] << (r[in.Rm] & 31)
	case isa.LSR:
		r[in.Rd] = r[in.Rn] >> (r[in.Rm] & 31)
	case isa.ASR:
		r[in.Rd] = uint32(int32(r[in.Rn]) >> (r[in.Rm] & 31))
	case isa.ROR:
		s := r[in.Rm] & 31
		r[in.Rd] = r[in.Rn]>>s | r[in.Rn]<<(32-s)

	case isa.ADDI:
		r[in.Rd] = r[in.Rn] + uint32(in.Imm)
	case isa.SUBI:
		r[in.Rd] = r[in.Rn] - uint32(in.Imm)
	case isa.ANDI:
		r[in.Rd] = r[in.Rn] & uint32(in.Imm)
	case isa.ORRI:
		r[in.Rd] = r[in.Rn] | uint32(in.Imm)
	case isa.EORI:
		r[in.Rd] = r[in.Rn] ^ uint32(in.Imm)
	case isa.LSLI:
		r[in.Rd] = r[in.Rn] << (uint32(in.Imm) & 31)
	case isa.LSRI:
		r[in.Rd] = r[in.Rn] >> (uint32(in.Imm) & 31)
	case isa.ASRI:
		r[in.Rd] = uint32(int32(r[in.Rn]) >> (uint32(in.Imm) & 31))

	case isa.MOV:
		r[in.Rd] = r[in.Rm]
	case isa.MVN:
		r[in.Rd] = ^r[in.Rm]
	case isa.MOVW:
		r[in.Rd] = uint32(in.Imm) & 0xffff
	case isa.MOVT:
		r[in.Rd] = r[in.Rd]&0xffff | uint32(in.Imm)<<16

	case isa.CMP:
		c.Flags = subFlags(r[in.Rn], r[in.Rm])
	case isa.CMPI:
		c.Flags = subFlags(r[in.Rn], uint32(in.Imm))
	case isa.TST:
		v := r[in.Rn] & r[in.Rm]
		c.Flags = isa.Flags{N: int32(v) < 0, Z: v == 0}

	case isa.LDR, isa.LDRB, isa.LDRX:
		addr := r[in.Rn]
		if in.Op == isa.LDRX {
			addr += r[in.Rm]
		} else {
			addr += uint32(in.Imm)
		}
		if in.Op != isa.LDRB && addr%4 != 0 {
			return c.fault(in, "misaligned load at %#x", addr)
		}
		stall += c.dataAccess(addr, false)
		if in.Op == isa.LDRB {
			r[in.Rd] = uint32(c.Mem.Read8(addr))
		} else {
			r[in.Rd] = c.Mem.Read32(addr)
		}

	case isa.STR, isa.STRB, isa.STRX:
		addr := r[in.Rn]
		if in.Op == isa.STRX {
			addr += r[in.Rm]
		} else {
			addr += uint32(in.Imm)
		}
		if in.Op != isa.STRB && addr%4 != 0 {
			return c.fault(in, "misaligned store at %#x", addr)
		}
		stall += c.dataAccess(addr, true)
		if in.Op == isa.STRB {
			c.Mem.Write8(addr, byte(r[in.Rd]))
		} else {
			c.Mem.Write32(addr, r[in.Rd])
		}

	case isa.B:
		if in.Cond.Eval(c.Flags) {
			nextPC = uint32(int64(c.PC) + isa.InstrBytes + int64(in.Imm)*isa.InstrBytes)
			stall += c.Timing.BranchTakenPenalty
		}
	case isa.BL:
		r[isa.LR] = c.PC + isa.InstrBytes
		nextPC = uint32(int64(c.PC) + isa.InstrBytes + int64(in.Imm)*isa.InstrBytes)
		stall += c.Timing.BranchTakenPenalty
	case isa.RET:
		nextPC = r[isa.LR]
		stall += c.Timing.BranchTakenPenalty
		indirect = true

	case isa.NOP:
	case isa.HALT:
		c.Halted = true

	default:
		return c.fault(in, "unimplemented operation")
	}

	c.PC = nextPC
	c.lastIndirect = indirect
	c.Cycles += uint64(1 + stall)
	return nil
}

// dataAccess drives the D-TLB and D-cache for a load or store and
// returns the stall cycles.
func (c *CPU) dataAccess(addr uint32, write bool) int {
	stall := 0
	if c.DTLB != nil {
		if miss, _ := c.DTLB.Lookup(addr); miss {
			stall += c.Timing.TLBWalkPenalty
		}
	}
	if c.DCache != nil {
		var res cache.AccessResult
		if write {
			res = c.DCache.Write(addr)
		} else {
			res = c.DCache.Read(addr)
		}
		line := c.DCache.Cache().Cfg.LineBytes
		if res.Filled {
			stall += c.Mem.ReadLine(addr, line)
		}
		if res.Writeback {
			stall += c.Mem.WriteBack(addr, line)
		}
	}
	return stall
}

// subFlags computes the NZCV flags of a-b, ARM style (C is the NOT of
// the borrow).
func subFlags(a, b uint32) isa.Flags {
	d := a - b
	return isa.Flags{
		N: int32(d) < 0,
		Z: d == 0,
		C: a >= b,
		V: (a^b)&(a^d)&0x8000_0000 != 0,
	}
}
