package cpu

import (
	"bytes"
	"testing"

	"wayplace/internal/asm"
	"wayplace/internal/cache"
	"wayplace/internal/isa"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/tlb"
)

func link(t *testing.T, b *asm.Builder) *obj.Program {
	t.Helper()
	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := obj.Link(u, obj.OriginalOrder(u), 0x1_0000)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func run(t *testing.T, p *obj.Program) *CPU {
	t.Helper()
	c := New(p, mem.New(mem.DefaultConfig()))
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c
}

func TestALUOperations(t *testing.T) {
	b := asm.NewBuilder("alu")
	f := b.Func("main")
	f.Movi(isa.R1, 100)
	f.Movi(isa.R2, 7)
	f.Add(isa.R3, isa.R1, isa.R2)           // 107
	f.Sub(isa.R4, isa.R1, isa.R2)           // 93
	f.Op3(isa.RSB, isa.R5, isa.R2, isa.R1)  // 100-7=93
	f.Mul(isa.R6, isa.R1, isa.R2)           // 700
	f.Op3(isa.AND, isa.R7, isa.R1, isa.R2)  // 100&7=4
	f.Op3(isa.ORR, isa.R8, isa.R1, isa.R2)  // 100|7=103
	f.Op3(isa.EOR, isa.R9, isa.R1, isa.R2)  // 100^7=99
	f.Op3(isa.BIC, isa.R10, isa.R1, isa.R2) // 100&^7=96
	f.Halt()
	c := run(t, link(t, b))
	want := map[isa.Reg]uint32{
		isa.R3: 107, isa.R4: 93, isa.R5: 93, isa.R6: 700,
		isa.R7: 4, isa.R8: 103, isa.R9: 99, isa.R10: 96,
	}
	for reg, v := range want {
		if c.Regs[reg] != v {
			t.Errorf("%v = %d, want %d", reg, c.Regs[reg], v)
		}
	}
}

func TestShiftsAndMoves(t *testing.T) {
	b := asm.NewBuilder("sh")
	f := b.Func("main")
	f.Movi(isa.R1, 0x00f0)
	f.Movi(isa.R2, 4)
	f.Op3(isa.LSL, isa.R3, isa.R1, isa.R2) // 0xf00
	f.Op3(isa.LSR, isa.R4, isa.R1, isa.R2) // 0xf
	f.Li(isa.R5, 0x8000_0000)
	f.OpI(isa.ASRI, isa.R6, isa.R5, 31) // 0xffffffff
	f.Op3(isa.ROR, isa.R7, isa.R1, isa.R2)
	f.Mov(isa.R8, isa.R3)
	f.Mvn(isa.R9, isa.R1)
	f.Halt()
	c := run(t, link(t, b))
	if c.Regs[isa.R3] != 0xf00 || c.Regs[isa.R4] != 0xf {
		t.Errorf("shifts: %#x %#x", c.Regs[isa.R3], c.Regs[isa.R4])
	}
	if c.Regs[isa.R6] != 0xffff_ffff {
		t.Errorf("asr: %#x", c.Regs[isa.R6])
	}
	if want := uint32(0x0000_000f); c.Regs[isa.R7] != want {
		t.Errorf("ror: %#x, want %#x", c.Regs[isa.R7], want)
	}
	if c.Regs[isa.R8] != 0xf00 {
		t.Errorf("mov: %#x", c.Regs[isa.R8])
	}
	if c.Regs[isa.R9] != ^uint32(0x00f0) {
		t.Errorf("mvn: %#x", c.Regs[isa.R9])
	}
}

func TestLoadsAndStores(t *testing.T) {
	b := asm.NewBuilder("mem")
	tab := b.Words(0x11111111, 0x22222222)
	buf := b.Zeros(16)
	f := b.Func("main")
	f.Li(isa.R1, tab)
	f.Ldr(isa.R2, isa.R1, 0)
	f.Ldr(isa.R3, isa.R1, 4)
	f.Li(isa.R4, buf)
	f.Str(isa.R2, isa.R4, 0)
	f.Movi(isa.R5, 4)
	f.Strx(isa.R3, isa.R4, isa.R5)
	f.Ldrx(isa.R6, isa.R4, isa.R5)
	f.Movi(isa.R7, 0xAB)
	f.Strb(isa.R7, isa.R4, 8)
	f.Ldrb(isa.R8, isa.R4, 8)
	f.Halt()
	c := run(t, link(t, b))
	if c.Regs[isa.R2] != 0x11111111 || c.Regs[isa.R3] != 0x22222222 {
		t.Errorf("loads: %#x %#x", c.Regs[isa.R2], c.Regs[isa.R3])
	}
	if c.Regs[isa.R6] != 0x22222222 {
		t.Errorf("ldrx after strx: %#x", c.Regs[isa.R6])
	}
	if c.Regs[isa.R8] != 0xAB {
		t.Errorf("byte round trip: %#x", c.Regs[isa.R8])
	}
	if got := c.Mem.Read32(buf); got != 0x11111111 {
		t.Errorf("memory at buf: %#x", got)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a bottom-test loop.
	b := asm.NewBuilder("loop")
	f := b.Func("main")
	f.Movi(isa.R1, 10)
	f.Movi(isa.R0, 0)
	f.Block("loop")
	f.Add(isa.R0, isa.R0, isa.R1)
	f.Subi(isa.R1, isa.R1, 1)
	f.Cmpi(isa.R1, 0)
	f.Bgt("loop")
	f.Halt()
	c := run(t, link(t, b))
	if c.Regs[isa.R0] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[isa.R0])
	}
}

func TestCallsAndReturnsWithLRSave(t *testing.T) {
	b := asm.NewBuilder("call")
	f := b.Func("main")
	f.Movi(isa.R0, 5)
	f.Call("double")
	f.Call("double")
	f.Halt()

	// Non-leaf function saving LR on the stack.
	d := b.Func("double")
	d.Subi(isa.SP, isa.SP, 4)
	d.Str(isa.LR, isa.SP, 0)
	d.Call("addself")
	d.Ldr(isa.LR, isa.SP, 0)
	d.Addi(isa.SP, isa.SP, 4)
	d.Ret()

	a := b.Func("addself")
	a.Add(isa.R0, isa.R0, isa.R0)
	a.Ret()

	c := run(t, link(t, b))
	if c.Regs[isa.R0] != 20 {
		t.Errorf("R0 = %d, want 20", c.Regs[isa.R0])
	}
	if c.Regs[isa.SP] != StackTop {
		t.Errorf("SP = %#x, want restored %#x", c.Regs[isa.SP], StackTop)
	}
}

func TestConditionFlagsSigned(t *testing.T) {
	b := asm.NewBuilder("cc")
	f := b.Func("main")
	f.Li(isa.R1, 0xffff_fffb) // -5
	f.Cmpi(isa.R1, 3)         // -5 < 3 signed
	f.Movi(isa.R2, 0)
	f.Blt("neg")
	f.Movi(isa.R2, 1) // wrong path
	f.Block("neg")
	f.Halt()
	c := run(t, link(t, b))
	if c.Regs[isa.R2] != 0 {
		t.Error("signed comparison took the wrong path")
	}
}

func TestFaults(t *testing.T) {
	t.Run("misaligned load", func(t *testing.T) {
		b := asm.NewBuilder("f")
		f := b.Func("main")
		f.Movi(isa.R1, 2)
		f.Ldr(isa.R0, isa.R1, 0)
		f.Halt()
		c := New(link(t, b), mem.New(mem.DefaultConfig()))
		if _, err := c.Run(100); err == nil {
			t.Error("misaligned load did not fault")
		}
	})
	t.Run("runaway", func(t *testing.T) {
		b := asm.NewBuilder("f")
		f := b.Func("main")
		f.Block("spin")
		f.Nop()
		f.Jmp("spin")
		c := New(link(t, b), mem.New(mem.DefaultConfig()))
		if _, err := c.Run(1000); err == nil {
			t.Error("infinite loop did not exhaust the budget")
		}
	})
	t.Run("fetch outside image", func(t *testing.T) {
		b := asm.NewBuilder("f")
		f := b.Func("main")
		f.Movi(isa.LR, 0) // return to address 0: outside image
		f.Ret()
		c := New(link(t, b), mem.New(mem.DefaultConfig()))
		if _, err := c.Run(100); err == nil {
			t.Error("wild fetch did not fault")
		}
	})
}

// buildWorkload returns a program with loops, calls and memory traffic
// whose result in R0 is input-dependent — used for the equivalence and
// integration tests.
func buildWorkload(t *testing.T) *obj.Program {
	t.Helper()
	b := asm.NewBuilder("wl")
	data := b.Zeros(256)

	f := b.Func("main")
	f.Li(isa.R4, data)
	f.Movi(isa.R5, 64) // iterations
	f.Movi(isa.R0, 0)
	f.Block("loop")
	f.Mov(isa.R1, isa.R5)
	f.Call("mix")
	f.Strx(isa.R0, isa.R4, isa.R6)
	f.Addi(isa.R6, isa.R6, 4)
	f.OpI(isa.ANDI, isa.R6, isa.R6, 0xfc)
	f.Subi(isa.R5, isa.R5, 1)
	f.Cmpi(isa.R5, 0)
	f.Bgt("loop")
	f.Halt()

	m := b.Func("mix")
	m.Mul(isa.R2, isa.R1, isa.R1)
	m.Add(isa.R0, isa.R0, isa.R2)
	m.OpI(isa.EORI, isa.R0, isa.R0, 0x55)
	m.Cmpi(isa.R0, 0)
	m.Bge("skip")
	m.OpI(isa.ORRI, isa.R0, isa.R0, 1)
	m.Block("skip")
	m.Ret()

	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := obj.Link(u, obj.OriginalOrder(u), 0x1_0000)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func attach(c *CPU, engine cache.FetchEngine, wpSize uint32) {
	icfg := tlb.Config{Entries: 32, PageBytes: 1 << 10}
	it := tlb.MustNew(icfg)
	if wpSize > 0 {
		if err := it.SetWPArea(c.Prog.Base, wpSize); err != nil {
			panic(err)
		}
	}
	c.IFetch = engine
	c.ITLB = it
	dt := tlb.MustNew(icfg)
	c.DTLB = dt
	dc, err := cache.NewData(cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32})
	if err != nil {
		panic(err)
	}
	c.DCache = dc
}

// TestSchemeArchitecturalEquivalence: the three fetch schemes must not
// change program semantics — same final registers, same instruction
// count. Only cycles and cache events may differ.
func TestSchemeArchitecturalEquivalence(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1 << 10, Ways: 8, LineBytes: 32}
	prog := buildWorkload(t)

	type outcome struct {
		r0, r6 uint32
		instrs uint64
	}
	var outs []outcome
	names := []string{"functional", "baseline", "wayplace", "waymem"}
	for _, name := range names {
		c := New(prog, mem.New(mem.DefaultConfig()))
		switch name {
		case "functional":
		case "baseline":
			e, _ := cache.NewBaseline(cfg)
			attach(c, e, 0)
		case "wayplace":
			it := tlb.MustNew(tlb.Config{Entries: 32, PageBytes: 1 << 10})
			if err := it.SetWPArea(prog.Base, 1<<10); err != nil {
				t.Fatal(err)
			}
			e, _ := cache.NewWayPlacement(cfg, it)
			attach(c, e, 1<<10)
		case "waymem":
			e, _ := cache.NewWayMemoization(cfg)
			attach(c, e, 0)
		}
		res, err := c.Run(1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		outs = append(outs, outcome{c.Regs[isa.R0], c.Regs[isa.R6], res.Instrs})
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			t.Errorf("%s diverged: %+v vs %+v", names[i], outs[i], outs[0])
		}
	}
}

func TestTimingAccountsForStalls(t *testing.T) {
	prog := buildWorkload(t)

	// Functional run: base cycles.
	c0 := New(prog, mem.New(mem.DefaultConfig()))
	r0, err := c0.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}

	// Cached run must cost more cycles (misses, TLB walks).
	c1 := New(prog, mem.New(mem.DefaultConfig()))
	e, _ := cache.NewBaseline(cache.Config{SizeBytes: 1 << 10, Ways: 8, LineBytes: 32})
	attach(c1, e, 0)
	r1, err := c1.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles <= r0.Cycles {
		t.Errorf("cached run %d cycles not above functional %d", r1.Cycles, r0.Cycles)
	}
	if r1.Instrs != r0.Instrs {
		t.Errorf("instruction counts differ: %d vs %d", r1.Instrs, r0.Instrs)
	}
	if cpi := r1.CPI(); cpi < 1.0 {
		t.Errorf("CPI = %f < 1", cpi)
	}
}

func TestInstrCountsFeedProfiles(t *testing.T) {
	prog := buildWorkload(t)
	c := New(prog, mem.New(mem.DefaultConfig()))
	res, err := c.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range res.InstrCounts {
		total += n
	}
	if total != res.Instrs {
		t.Errorf("per-instruction counts sum to %d, want %d", total, res.Instrs)
	}
	// The loop head executes 64 times.
	loopAddr, ok := prog.AddrOf("main.loop")
	if !ok {
		t.Fatal("no main.loop symbol")
	}
	li, _ := prog.IndexOf(loopAddr)
	if res.InstrCounts[li] != 64 {
		t.Errorf("loop head count = %d, want 64", res.InstrCounts[li])
	}
}

// TestTimingAccountingExact verifies the stall model cycle by cycle on
// a program whose event sequence is fully known.
func TestTimingAccountingExact(t *testing.T) {
	b := asm.NewBuilder("tm")
	f := b.Func("main")
	f.Movi(isa.R1, 2)             // 1 cycle
	f.Movi(isa.R2, 3)             // 1
	f.Mul(isa.R3, isa.R1, isa.R2) // 1 + MulExtraCycles
	f.Cmpi(isa.R3, 6)             // 1
	f.Beq("skip")                 // taken: 1 + BranchTakenPenalty
	f.Nop()                       // not executed
	f.Block("skip")
	f.Halt() // 1
	p := link(t, b)
	c := New(p, mem.New(mem.DefaultConfig()))
	res, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	tm := DefaultTiming()
	want := uint64(5 + 1 + tm.MulExtraCycles + tm.BranchTakenPenalty)
	if res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
	if res.Instrs != 6 {
		t.Errorf("instrs = %d, want 6 (nop skipped)", res.Instrs)
	}
}

// TestTimingMissAndTLBStalls verifies that I-cache fills and TLB walks
// charge exactly the configured penalties.
func TestTimingMissAndTLBStalls(t *testing.T) {
	b := asm.NewBuilder("tm2")
	f := b.Func("main")
	f.Nop()
	f.Halt()
	p := link(t, b)

	// Functional baseline: 2 cycles.
	c0 := New(p, mem.New(mem.DefaultConfig()))
	r0, err := c0.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Cycles != 2 {
		t.Fatalf("functional cycles = %d, want 2", r0.Cycles)
	}

	// With a cold I-cache and I-TLB: one line fill (both instructions
	// share a line) and one TLB walk.
	m := mem.New(mem.DefaultConfig())
	c1 := New(p, m)
	e, err := cache.NewBaseline(cache.Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	c1.IFetch = e
	c1.ITLB = tlb.MustNew(tlb.Config{Entries: 32, PageBytes: 1 << 10})
	r1, err := c1.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	tm := DefaultTiming()
	fill := uint64(m.Config.LineFillCycles(32))
	want := 2 + fill + uint64(tm.TLBWalkPenalty)
	if r1.Cycles != want {
		t.Errorf("cycles = %d, want %d (2 base + %d fill + %d walk)",
			r1.Cycles, want, fill, tm.TLBWalkPenalty)
	}
}

// TestLoadedImageRunsIdentically: a program serialised with WriteImage
// and reloaded must execute exactly like the original.
func TestLoadedImageRunsIdentically(t *testing.T) {
	b := asm.NewBuilder("img")
	data := b.Words(11, 22, 33, 44)
	f := b.Func("main")
	f.Li(isa.R1, data)
	f.Movi(isa.R2, 4)
	f.Movi(isa.R0, 0)
	f.Block("loop")
	f.Ldr(isa.R3, isa.R1, 0)
	f.Add(isa.R0, isa.R0, isa.R3)
	f.Addi(isa.R1, isa.R1, 4)
	f.Subi(isa.R2, isa.R2, 1)
	f.Cmpi(isa.R2, 0)
	f.Bgt("loop")
	f.Halt()
	p := link(t, b)

	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatalf("WriteImage: %v", err)
	}
	q, err := obj.ReadImage(&buf)
	if err != nil {
		t.Fatalf("ReadImage: %v", err)
	}

	c1 := New(p, mem.New(mem.DefaultConfig()))
	r1, err := c1.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(q, mem.New(mem.DefaultConfig()))
	r2, err := c2.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Regs != c2.Regs || r1.Instrs != r2.Instrs || r1.Cycles != r2.Cycles {
		t.Errorf("loaded image diverged: regs %v vs %v", c2.Regs, c1.Regs)
	}
	if c1.Regs[isa.R0] != 110 {
		t.Errorf("checksum = %d, want 110", c1.Regs[isa.R0])
	}
}
