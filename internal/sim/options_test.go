package sim

import (
	"strings"
	"testing"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
)

func TestNewDefaultsValid(t *testing.T) {
	cfg, err := New()
	if err != nil {
		t.Fatalf("New() with no options: %v", err)
	}
	if cfg != Default() {
		t.Error("New() does not start from the Table 1 defaults")
	}
}

func TestNewAppliesOptions(t *testing.T) {
	icfg := cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
	cfg, err := New(
		WithICache(icfg),
		WithScheme(energy.WayPlacement),
		WithWPSize(4<<10),
		WithMaxInstrs(123),
		WithStyle(energy.RAMTag))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ICache != icfg || cfg.Scheme != energy.WayPlacement ||
		cfg.WPSize != 4<<10 || cfg.MaxInstrs != 123 || cfg.Style != energy.RAMTag {
		t.Errorf("options not applied: %+v", cfg)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string // substring of the error
	}{
		{"zero budget", []Option{WithMaxInstrs(0)}, "budget"},
		{"bad i-cache", []Option{WithICache(cache.Config{SizeBytes: 1000, Ways: 3, LineBytes: 32})}, "i-cache"},
		{"unknown scheme", []Option{WithScheme(energy.Scheme(99))}, "scheme"},
		{"unaligned wp area", []Option{WithScheme(energy.WayPlacement), WithWPSize(1500)}, "page"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts...)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
