package sim

import (
	"context"
	"testing"

	"wayplace/internal/asm"
	"wayplace/internal/cache"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/tlb"
)

// buildTwoPageBench builds a program whose hot path alternates between
// two I-TLB pages: main's loop lives in the first 1KB page and calls a
// helper pushed past the page boundary by a pad function. Starting the
// adaptive area at one page therefore guarantees a resize (the
// way-placed fraction stays well below the grow threshold), which is
// what the stale-way-bit regression needs to exercise.
func buildTwoPageBench(t *testing.T, iters uint16) *obj.Unit {
	t.Helper()
	b := asm.NewBuilder("twopage")

	f := b.Func("main")
	f.Movi(isa.R10, iters)
	f.Movi(isa.R0, 0)
	f.Block("loop")
	f.Call("far")
	f.Add(isa.R0, isa.R0, isa.R10)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("loop")
	f.Halt()

	// Never executed; exists only to push "far" onto the next page.
	p := b.Func("pad")
	for i := 0; i < 300; i++ {
		p.Addi(isa.R1, isa.R1, 1)
	}
	p.Ret()

	h := b.Func("far")
	h.Movi(isa.R11, 12)
	h.Block("work")
	h.Addi(isa.R0, isa.R0, 3)
	h.OpI(isa.EORI, isa.R0, isa.R0, 0x55)
	h.Subi(isa.R11, isa.R11, 1)
	h.Cmpi(isa.R11, 0)
	h.Bgt("work")
	h.Ret()

	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return u
}

// TestRunAdaptiveInvalidatesTLB is the stale-way-bit regression: the
// OS resizes the way-placement area mid-run, and after every decision
// point the bit delivered by an I-TLB lookup must match what the page
// tables hold for every resident page. Before RunAdaptive invalidated
// the I-TLB alongside the I-cache flush, entries resident across a
// resize kept the previous area's bit and this test fails.
func TestRunAdaptiveInvalidatesTLB(t *testing.T) {
	u := buildTwoPageBench(t, 2000)
	prog, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatalf("LinkOriginal: %v", err)
	}
	if prog.Size() <= 1<<10 {
		t.Fatalf("test program must span two 1KB pages, got %d bytes", prog.Size())
	}

	cfg := Default()
	pol := DefaultAdaptivePolicy(cfg.ICache, cfg.ITLB.PageBytes)
	pol.IntervalInstrs = 2_000
	decisions := 0
	pol.Inspect = func(itlb *tlb.TLB, _ *cache.Cache) {
		decisions++
		for _, r := range itlb.Resident() {
			addr := r.VPN << itlb.Cfg.PageShift()
			_, bit := itlb.Lookup(addr)
			if want := itlb.PageWayPlaced(addr); bit != want {
				t.Fatalf("decision %d: page %#x lookup delivers way-bit %v, page tables say %v",
					decisions, addr, bit, want)
			}
		}
	}

	_, changes, err := RunAdaptive(context.Background(), prog, cfg, pol)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if decisions == 0 {
		t.Fatal("OS never reached a decision point; the coherence assertion did not run")
	}
	// The area must actually have been resized, or the test proves
	// nothing about invalidate-on-resize.
	if len(changes) < 2 {
		t.Fatalf("area never resized: %+v", changes)
	}
}
