// Package sim wires the substrate models — core, caches, TLBs, memory
// and the energy model — into the full simulated platform of the
// paper's Table 1, and exposes the two operations the evaluation flow
// needs: a fast functional profiling run (training input) and a
// detailed timing/energy run (reference input) under one of the three
// fetch schemes.
package sim

import (
	"context"

	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/energy"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
	"wayplace/internal/tlb"
)

// Config describes one simulated machine.
type Config struct {
	ICache cache.Config
	DCache cache.Config
	ITLB   tlb.Config
	DTLB   tlb.Config
	Mem    mem.Config
	Timing cpu.Timing
	Energy energy.Params

	Scheme energy.Scheme
	// Style selects CAM-tag (XScale, default) or conventional RAM-tag
	// arrays; the fetch behaviour is identical, only energy differs.
	Style energy.ArrayStyle
	// WPSize is the way-placement area size in bytes (way-placement
	// scheme only). It must be a multiple of the I-TLB page size. The
	// area starts at the program base — the layout pass put the
	// hottest chains there.
	WPSize uint32

	// MaxInstrs bounds a run; a well-formed benchmark halts first.
	MaxInstrs uint64

	// Ablation switches (way-placement scheme only).
	OracleHint bool // perfect way-placement prediction instead of the 1-bit hint
	NoSameLine bool // disable the same-line tag-check skip
}

// Default returns the paper's Table 1 configuration: 32KB 32-way
// I- and D-caches with 32B lines, 32-entry fully-associative TLBs,
// 50-cycle memory, single-issue in-order core.
func Default() Config {
	ic := cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32, Policy: cache.RoundRobin}
	return Config{
		ICache:    ic,
		DCache:    ic,
		ITLB:      tlb.Config{Entries: 32, PageBytes: 1 << 10},
		DTLB:      tlb.Config{Entries: 32, PageBytes: 1 << 10},
		Mem:       mem.DefaultConfig(),
		Timing:    cpu.DefaultTiming(),
		Energy:    energy.Default(),
		Scheme:    energy.Baseline,
		WPSize:    0,
		MaxInstrs: 2_000_000_000,
	}
}

// WithScheme returns a copy configured for the given scheme and
// way-placement area size.
//
// Deprecated: build configurations with New and the functional
// options (WithScheme, WithWPSize, ...) instead, which validate
// eagerly. This copy-and-mutate form remains for one release.
func (c Config) WithScheme(s energy.Scheme, wpSize uint32) Config {
	c.Scheme = s
	c.WPSize = wpSize
	return c
}

// RunStats is the complete outcome of one detailed run.
type RunStats struct {
	Scheme energy.Scheme
	Instrs uint64
	Cycles uint64

	IStats    cache.Stats
	DStats    cache.Stats
	ITLBStats tlb.Stats
	DTLBStats tlb.Stats
	MemStats  mem.Stats

	Energy energy.Breakdown

	// Checksum is R0 at halt — benchmarks leave a result there so
	// runs can be cross-checked between schemes and layouts.
	Checksum uint32
	// MemHash digests the final memory contents below the stack
	// region (mem.Memory.Hash up to cpu.StackRegionBase), so
	// differential checks can compare whole-memory side effects, not
	// just the R0 checksum, across schemes and layouts. Dead stack
	// frames are excluded: they hold spilled return addresses, which
	// are layout-dependent PC values.
	MemHash uint64
}

// CPI returns cycles per instruction.
func (r *RunStats) CPI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instrs)
}

// Run executes prog on the configured machine.
//
// Deprecated: Run is RunContext with context.Background(); call
// RunContext so cancellation and deadlines propagate into the
// instruction loop. This wrapper remains for one release.
func Run(prog *obj.Program, cfg Config) (*RunStats, error) {
	return RunContext(context.Background(), prog, cfg)
}

// RunContext executes prog on the configured machine under ctx: the
// instruction loop checks for cancellation periodically and returns
// ctx.Err() once the context is done. The configuration is validated
// eagerly before any machine state is built.
//
// RunContext is a thin one-model wrapper over RunMulti — the machine
// is split into a fetch-event producer and the configured
// instruction-side model. Statistics are bit-identical to the coupled
// reference loop (RunCoupled); internal/check enforces this.
func RunContext(ctx context.Context, prog *obj.Program, cfg Config) (*RunStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res, err := RunMulti(ctx, prog, cfg, []ModelSpec{ModelSpecOf(cfg)})
	if err != nil {
		return nil, err
	}
	if res[0].Err != nil {
		return nil, res[0].Err
	}
	return res[0].Stats, nil
}

// ProfileRun executes prog functionally (no caches, no timing detail)
// and returns the basic-block profile — the paper's training run on
// the small input.
func ProfileRun(prog *obj.Program, maxInstrs uint64) (*profile.Profile, uint32, error) {
	m := mem.New(mem.DefaultConfig())
	c := cpu.New(prog, m)
	res, err := c.Run(maxInstrs)
	if err != nil {
		return nil, 0, err
	}
	return profile.FromInstrCounts(prog, res.InstrCounts), c.Regs[0], nil
}
