package sim

import (
	"fmt"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
)

// Option adjusts one aspect of a Config under construction. Options
// validate their argument where they can, so a bad value surfaces at
// New rather than deep inside Run.
type Option func(*Config) error

// New builds a Config from the Table 1 defaults plus the given
// options, validating the result eagerly. It replaces the old pattern
// of calling Default() and mutating struct fields ad hoc.
func New(opts ...Option) (Config, error) {
	cfg := Default()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// WithICache sets the instruction-cache geometry.
func WithICache(c cache.Config) Option {
	return func(cfg *Config) error {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("sim: i-cache: %w", err)
		}
		cfg.ICache = c
		return nil
	}
}

// WithDCache sets the data-cache geometry.
func WithDCache(c cache.Config) Option {
	return func(cfg *Config) error {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("sim: d-cache: %w", err)
		}
		cfg.DCache = c
		return nil
	}
}

// WithScheme selects the fetch scheme.
func WithScheme(s energy.Scheme) Option {
	return func(cfg *Config) error {
		switch s {
		case energy.Baseline, energy.WayPlacement, energy.WayMemoization:
			cfg.Scheme = s
			return nil
		}
		return fmt.Errorf("sim: unknown scheme %v", s)
	}
}

// WithWPSize sets the way-placement area size in bytes.
func WithWPSize(n uint32) Option {
	return func(cfg *Config) error {
		cfg.WPSize = n
		return nil
	}
}

// WithMaxInstrs bounds the run's instruction count.
func WithMaxInstrs(n uint64) Option {
	return func(cfg *Config) error {
		if n == 0 {
			return fmt.Errorf("sim: instruction budget must be positive")
		}
		cfg.MaxInstrs = n
		return nil
	}
}

// WithStyle selects the tag-array organisation (CAM vs RAM).
func WithStyle(st energy.ArrayStyle) Option {
	return func(cfg *Config) error {
		cfg.Style = st
		return nil
	}
}

// Validate checks the whole machine configuration, returning a
// descriptive error for the first problem found. Run and RunContext
// call it on entry so misconfigurations fail fast instead of deep
// inside the machine construction or the instruction loop.
func (c Config) Validate() error {
	if err := c.ICache.Validate(); err != nil {
		return fmt.Errorf("sim: i-cache: %w", err)
	}
	if err := c.DCache.Validate(); err != nil {
		return fmt.Errorf("sim: d-cache: %w", err)
	}
	if err := c.ITLB.Validate(); err != nil {
		return fmt.Errorf("sim: i-tlb: %w", err)
	}
	if err := c.DTLB.Validate(); err != nil {
		return fmt.Errorf("sim: d-tlb: %w", err)
	}
	switch c.Scheme {
	case energy.Baseline, energy.WayPlacement, energy.WayMemoization:
	default:
		return fmt.Errorf("sim: unknown scheme %v", c.Scheme)
	}
	if c.WPSize != 0 && c.ITLB.PageBytes > 0 && c.WPSize%uint32(c.ITLB.PageBytes) != 0 {
		return fmt.Errorf("sim: way-placement area %dB is not a multiple of the %dB i-tlb page",
			c.WPSize, c.ITLB.PageBytes)
	}
	if c.MaxInstrs == 0 {
		return fmt.Errorf("sim: instruction budget must be positive")
	}
	return nil
}
