package sim

// Single-pass multi-model simulation. The detailed run of a program is
// split into two halves:
//
//   - a FetchSource: CPU + memory image + data-side hierarchy
//     executing the program once and emitting the instruction-fetch
//     event stream (address + indirect-transfer flag per instruction);
//   - N CacheModels: independent instruction-side models (I-cache
//     fetch engine, I-TLB, energy accounting) replaying that stream.
//
// Every figure-6 style sweep re-executes the same program under
// configurations that differ only in the instruction side, so one
// fetch stream can drive every (geometry, scheme, WP-size) cell of a
// workload at once. RunMulti is the entry point; RunContext is now a
// thin one-model wrapper around it, and RunCoupled keeps the original
// coupled loop as the reference implementation for internal/check.
//
// What is fetch-relevant in a Config — i.e. what must be shared by
// models driven from one source — is exactly what the producer owns:
// the program binary, Mem, Timing, DCache, DTLB, the I-TLB geometry
// and MaxInstrs. Everything instruction-side (ICache geometry, scheme,
// array style, WP size, ablation switches, adaptive policy) is
// per-model, carried by a ModelSpec.

import (
	"context"
	"fmt"

	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/energy"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/tlb"
)

// ModelSpec describes one instruction-side model evaluated against a
// shared fetch stream: the I-cache geometry, the fetch scheme and its
// knobs. It replaces the Config.WithScheme copy-and-mutate idiom as
// the way to say "the same machine, under scheme X".
type ModelSpec struct {
	// Geometry is the I-cache configuration.
	Geometry cache.Config
	Scheme   energy.Scheme
	// Style selects CAM-tag (default) or RAM-tag energy accounting.
	Style energy.ArrayStyle
	// WPSize is the static way-placement area size in bytes
	// (way-placement scheme only, multiple of the I-TLB page).
	WPSize uint32

	// Ablation switches (way-placement scheme only).
	OracleHint bool
	NoSameLine bool

	// Adaptive, when non-nil, runs the model under the adaptive OS
	// area-sizing policy: the scheme is forced to way-placement and the
	// model keeps a private I-TLB, since OS invalidations perturb it.
	Adaptive *AdaptivePolicy
}

// ModelSpecOf extracts the instruction-side half of a Config.
func ModelSpecOf(cfg Config) ModelSpec {
	return ModelSpec{
		Geometry:   cfg.ICache,
		Scheme:     cfg.Scheme,
		Style:      cfg.Style,
		WPSize:     cfg.WPSize,
		OracleHint: cfg.OracleHint,
		NoSameLine: cfg.NoSameLine,
	}
}

// ModelResult is one model's outcome from a RunMulti pass. Exactly one
// of Err and Stats is non-nil.
type ModelResult struct {
	Stats *RunStats
	// AreaChanges is the OS resize trace of an adaptive model.
	AreaChanges []AreaChange
	// Err reports a per-model failure (invalid spec, policy error);
	// other models of the same pass are unaffected.
	Err error
}

// FetchRun is a maximal sub-sequence of a chunk whose events all lie
// in one aligned block no larger than any model's cache line and the
// I-TLB page: after the first event the line is resident and the page
// translated for every model, so the remaining N-1 events can be
// replayed in bulk (cache.FetchEngine FetchSameLine, tlb.TLB.BulkHits).
type FetchRun struct {
	Start uint32 // index of the run's first event in Events
	N     uint32 // number of events in the run
}

// FetchChunk is one batch of fetch events. Events holds one word per
// retired instruction: the fetch address with cpu.EventIndirect in bit
// 0. Runs segments the same events for bulk replay. Both slices alias
// buffers reused by the next NextChunk call.
type FetchChunk struct {
	Events []uint32
	Runs   []FetchRun
}

// fetchChunkEvents is the production batch size: large enough to
// amortise per-chunk work, small enough to stay cache-resident, and
// matching the granularity of context cancellation checks.
const fetchChunkEvents = 64 << 10

// FetchSource executes a program once — CPU, memory image and
// data-side hierarchy live; instruction side detached — and emits the
// fetch-event stream in chunks.
type FetchSource struct {
	cpu    *cpu.CPU
	mem    *mem.Memory
	dcache *cache.DataCache
	dtlb   *tlb.TLB

	maxInstrs uint64
	blockNeg  uint32 // blockBytes-1: events with equal ev&^blockNeg share a run
	events    []uint32
	runs      []FetchRun
	done      bool
}

// NewFetchSource builds the producer half of a single-pass run.
// blockBytes (a power of two ≥ 4) is the run-segmentation granule; it
// must not exceed any consuming model's line size or the I-TLB page.
func NewFetchSource(prog *obj.Program, base Config, blockBytes int) (*FetchSource, error) {
	if blockBytes < 4 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("sim: fetch-run block size must be a power of two ≥ 4, got %d", blockBytes)
	}
	m := mem.New(base.Mem)
	c := cpu.New(prog, m)
	c.DisableInstrCounts() // event production never builds a profile
	c.Timing = base.Timing
	dtlb, err := tlb.New(base.DTLB)
	if err != nil {
		return nil, err
	}
	dcache, err := cache.NewData(base.DCache)
	if err != nil {
		return nil, err
	}
	c.DCache = dcache
	c.DTLB = dtlb
	maxInstrs := base.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = Default().MaxInstrs
	}
	return &FetchSource{
		cpu:       c,
		mem:       m,
		dcache:    dcache,
		dtlb:      dtlb,
		maxInstrs: maxInstrs,
		blockNeg:  uint32(blockBytes - 1),
		events:    make([]uint32, fetchChunkEvents),
	}, nil
}

// NextChunk produces the next batch of fetch events, or (nil, nil)
// once the program has halted. The returned chunk's slices are only
// valid until the next call.
func (s *FetchSource) NextChunk(ctx context.Context) (*FetchChunk, error) {
	if s.done {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, err := s.cpu.RunEvents(s.events, s.maxInstrs)
	if err != nil {
		return nil, err
	}
	s.done = s.cpu.Halted
	if n == 0 {
		return nil, nil
	}
	// Segment into same-block runs. blockNeg ≥ 3, so masking it off
	// also clears the indirect flag bit.
	ev := s.events[:n]
	runs := s.runs[:0]
	start, block := 0, ev[0]&^s.blockNeg
	for i := 1; i < n; i++ {
		if b := ev[i] &^ s.blockNeg; b != block {
			runs = append(runs, FetchRun{Start: uint32(start), N: uint32(i - start)})
			start, block = i, b
		}
	}
	runs = append(runs, FetchRun{Start: uint32(start), N: uint32(n - start)})
	s.runs = runs
	return &FetchChunk{Events: ev, Runs: runs}, nil
}

// CacheModel is one instruction-side model consuming a fetch-event
// stream. Implementations are created by RunMulti from ModelSpecs;
// the interface is the seam between production and modelling.
type CacheModel interface {
	// Consume replays one chunk. An error marks this model failed;
	// other models sharing the stream continue.
	Consume(*FetchChunk) error

	core() *modelCore
}

// modelCore is the state every model shape shares.
type modelCore struct {
	spec    ModelSpec
	fe      cache.FetchEngine
	ownITLB *tlb.TLB     // adaptive models only; nil means use the shared reference I-TLB
	changes []AreaChange // adaptive resize trace
}

func (m *modelCore) core() *modelCore { return m }

// staticWPOracle is the way-placement bit for a run whose area never
// changes: a pure range check. With a static area the I-TLB's resident
// way-bits always agree with the page tables, so the hardware's
// entry-sourced bit reduces to exactly this predicate.
type staticWPOracle struct{ start, size uint32 }

func (o staticWPOracle) WayPlaced(addr uint32) bool {
	return o.size != 0 && addr >= o.start && addr-o.start < o.size
}

// The bulk models replay runs in bulk: one real Fetch per run, then
// the engine's FetchSameLine fast path for the rest. Valid for every
// scheme whose per-event behaviour inside a resident line is
// state-independent (baseline, way-memoization, way-placement with the
// same-line optimisation on). One concrete model type per engine keeps
// the per-run calls direct (devirtualised and inlinable) — this loop
// runs once per fetch run per model and dominates consume time.

type baselineBulkModel struct {
	modelCore
	be *cache.BaselineEngine
}

func (m *baselineBulkModel) Consume(ch *FetchChunk) error {
	for _, r := range ch.Runs {
		ev := ch.Events[r.Start]
		m.be.Fetch(cpu.EventAddr(ev), ev&cpu.EventIndirect != 0)
		if r.N > 1 {
			m.be.FetchSameLine(int(r.N - 1))
		}
	}
	return nil
}

type wayMemoBulkModel struct {
	modelCore
	wm *cache.WayMemoizationEngine
}

func (m *wayMemoBulkModel) Consume(ch *FetchChunk) error {
	for _, r := range ch.Runs {
		ev := ch.Events[r.Start]
		m.wm.Fetch(cpu.EventAddr(ev), ev&cpu.EventIndirect != 0)
		if r.N > 1 {
			m.wm.FetchSameLine(int(r.N-1), cpu.EventAddr(ch.Events[r.Start+r.N-1]))
		}
	}
	return nil
}

type wayPlaceBulkModel struct {
	modelCore
	wpe *cache.WayPlacementEngine
}

func (m *wayPlaceBulkModel) Consume(ch *FetchChunk) error {
	for _, r := range ch.Runs {
		ev := ch.Events[r.Start]
		m.wpe.Fetch(cpu.EventAddr(ev), ev&cpu.EventIndirect != 0)
		if r.N > 1 {
			m.wpe.FetchSameLine(int(r.N-1), cpu.EventAddr(ch.Events[r.Start+r.N-1]))
		}
	}
	return nil
}

// eventModel replays every event individually — needed when the
// same-line shortcut is ablated away (NoSameLine), where even
// intra-line fetches change hint state and tag-check counts.
type eventModel struct {
	modelCore
}

func (m *eventModel) Consume(ch *FetchChunk) error {
	for _, ev := range ch.Events {
		m.fe.Fetch(cpu.EventAddr(ev), ev&cpu.EventIndirect != 0)
	}
	return nil
}

// adaptiveModel replays events under the adaptive OS policy: a private
// I-TLB (OS invalidations make its stats diverge from the shared one)
// and an OS decision point every IntervalInstrs consumed events,
// reproducing sim.RunAdaptive's coupled loop bit for bit.
type adaptiveModel struct {
	modelCore
	wpe      *cache.WayPlacementEngine
	pol      AdaptivePolicy
	progBase uint32
	size     uint32
	prev     cache.Stats
	consumed uint64
}

func (m *adaptiveModel) Consume(ch *FetchChunk) error {
	interval := m.pol.IntervalInstrs
	for _, ev := range ch.Events {
		if m.consumed > 0 && m.consumed%interval == 0 {
			if err := m.decide(); err != nil {
				return err
			}
		}
		addr := cpu.EventAddr(ev)
		m.ownITLB.Lookup(addr)
		m.wpe.Fetch(addr, ev&cpu.EventIndirect != 0)
		m.consumed++
	}
	return nil
}

// decide is one OS decision point, mirroring RunAdaptive's loop body:
// inspect the window, maybe resize, flush and invalidate on a change.
func (m *adaptiveModel) decide() error {
	cur := m.wpe.Cache().Stats
	dFetch := cur.Fetches - m.prev.Fetches
	if dFetch == 0 {
		m.prev = cur
		return nil
	}
	wpFrac := float64(cur.WPAreaFetches-m.prev.WPAreaFetches) / float64(dFetch)
	missRate := float64(cur.Misses-m.prev.Misses) / float64(dFetch)
	m.prev = cur

	newSize := m.size
	switch {
	case m.size > uint32(m.spec.Geometry.SizeBytes) && missRate > m.pol.AliasMissRate && m.size/2 >= m.pol.MinSize:
		newSize = m.size / 2
	case wpFrac < m.pol.GrowThreshold && m.size*2 <= m.pol.MaxSize:
		newSize = m.size * 2
	}
	if newSize != m.size {
		m.size = newSize
		if err := m.ownITLB.SetWPArea(m.progBase, m.size); err != nil {
			return err
		}
		m.wpe.Cache().Flush()
		m.ownITLB.Invalidate()
		m.changes = append(m.changes, AreaChange{AtInstr: m.consumed, Size: m.size})
	}
	if m.pol.Inspect != nil {
		m.pol.Inspect(m.ownITLB, m.wpe.Cache())
	}
	return nil
}

// newModel builds the CacheModel for one spec.
func newModel(base Config, spec ModelSpec, prog *obj.Program) (CacheModel, error) {
	if err := spec.Geometry.Validate(); err != nil {
		return nil, fmt.Errorf("sim: i-cache: %w", err)
	}
	if spec.Adaptive != nil {
		pol := *spec.Adaptive
		if pol.IntervalInstrs == 0 || pol.StartSize == 0 {
			return nil, fmt.Errorf("sim: adaptive policy needs an interval and a start size")
		}
		itlb, err := tlb.New(base.ITLB)
		if err != nil {
			return nil, err
		}
		if err := itlb.SetWPArea(prog.Base, pol.StartSize); err != nil {
			return nil, err
		}
		wpe, err := cache.NewWayPlacement(spec.Geometry, itlb)
		if err != nil {
			return nil, err
		}
		spec.Scheme = energy.WayPlacement
		spec.WPSize = pol.StartSize
		m := &adaptiveModel{
			modelCore: modelCore{spec: spec, fe: wpe, ownITLB: itlb,
				changes: []AreaChange{{AtInstr: 0, Size: pol.StartSize}}},
			wpe: wpe, pol: pol, progBase: prog.Base, size: pol.StartSize,
		}
		return m, nil
	}

	switch spec.Scheme {
	case energy.Baseline:
		be, err := cache.NewBaseline(spec.Geometry)
		if err != nil {
			return nil, err
		}
		return &baselineBulkModel{
			modelCore: modelCore{spec: spec, fe: be},
			be:        be,
		}, nil

	case energy.WayMemoization:
		wm, err := cache.NewWayMemoization(spec.Geometry)
		if err != nil {
			return nil, err
		}
		return &wayMemoBulkModel{
			modelCore: modelCore{spec: spec, fe: wm},
			wm:        wm,
		}, nil

	case energy.WayPlacement:
		if spec.WPSize > 0 {
			// Reuse the TLB's own area validation (page alignment,
			// multiple-of-page size, no address-space wrap) so a bad
			// spec fails with the same error as the coupled path.
			t, err := tlb.New(base.ITLB)
			if err != nil {
				return nil, err
			}
			if err := t.SetWPArea(prog.Base, spec.WPSize); err != nil {
				return nil, err
			}
		}
		wpe, err := cache.NewWayPlacement(spec.Geometry, staticWPOracle{start: prog.Base, size: spec.WPSize})
		if err != nil {
			return nil, err
		}
		wpe.OracleHint = spec.OracleHint
		wpe.NoSameLine = spec.NoSameLine
		if spec.NoSameLine {
			return &eventModel{modelCore: modelCore{spec: spec, fe: wpe}}, nil
		}
		return &wayPlaceBulkModel{
			modelCore: modelCore{spec: spec, fe: wpe},
			wpe:       wpe,
		}, nil
	}
	return nil, fmt.Errorf("sim: unknown scheme %v", spec.Scheme)
}

// validateShared checks the producer-side half of the base Config.
func validateShared(base Config) error {
	if err := base.DCache.Validate(); err != nil {
		return fmt.Errorf("sim: d-cache: %w", err)
	}
	if err := base.ITLB.Validate(); err != nil {
		return fmt.Errorf("sim: i-tlb: %w", err)
	}
	if err := base.DTLB.Validate(); err != nil {
		return fmt.Errorf("sim: d-tlb: %w", err)
	}
	return nil
}

// RunMulti executes prog once on the machine described by base's
// producer-side fields and evaluates every model against the shared
// fetch stream. Results are positional: results[i] belongs to
// models[i], carrying either stats or a per-model error. The returned
// error is reserved for whole-pass failures — producer faults, budget
// exhaustion, cancellation — which leave no per-model results.
//
// Stats are bit-identical to running each model through the coupled
// per-cell loop (RunCoupled / RunAdaptive); internal/check's
// differential harness and check.TestSinglePassMatchesPerCell enforce
// this.
func RunMulti(ctx context.Context, prog *obj.Program, base Config, models []ModelSpec) ([]*ModelResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateShared(base); err != nil {
		return nil, err
	}
	results := make([]*ModelResult, len(models))

	// Behaviourally identical specs consume the stream once. Two specs
	// whose key below matches produce bit-identical cache and I-TLB
	// activity, so one consumed model serves all of them and each spec
	// gets its own finalize (energy accounting reads the spec's array
	// style). Beyond exact instruction-side duplicates this collapses
	// way-placement areas that both cover the whole text image: every
	// fetch address lies inside [Base, Base+Size()), so any area at
	// least that large saturates the static oracle.
	type behaviourKey struct {
		geom       cache.Config
		scheme     energy.Scheme
		wp         uint32 // effective WP size; wpSaturated once ≥ text
		oracleHint bool
		noSameLine bool
	}
	const wpSaturated = ^uint32(0)
	primary := make(map[behaviourKey]int, len(models))
	aliasOf := make([]int, len(models))

	// Build models; spec problems fail per model, not the pass. Every
	// spec is built (keeping per-spec validation errors identical to the
	// coupled path) but aliases are then discarded rather than driven.
	built := make([]CacheModel, len(models))
	live := make([]CacheModel, 0, len(models))
	needShared := false
	block := base.ITLB.PageBytes
	for i, spec := range models {
		aliasOf[i] = -1
		m, err := newModel(base, spec, prog)
		if err != nil {
			results[i] = &ModelResult{Err: err}
			continue
		}
		if spec.Adaptive == nil {
			k := behaviourKey{
				geom:       spec.Geometry,
				scheme:     spec.Scheme,
				oracleHint: spec.OracleHint,
				noSameLine: spec.NoSameLine,
			}
			if spec.Scheme == energy.WayPlacement {
				k.wp = spec.WPSize
				if spec.WPSize >= prog.Size() {
					k.wp = wpSaturated
				}
			}
			if p, ok := primary[k]; ok {
				aliasOf[i] = p
				continue
			}
			primary[k] = i
		}
		built[i] = m
		live = append(live, m)
		if m.core().ownITLB == nil {
			needShared = true
		}
		if lb := m.core().spec.Geometry.LineBytes; lb < block {
			block = lb
		}
	}
	if len(live) == 0 {
		return results, nil
	}

	// Shared reference I-TLB: lookup outcomes depend only on the
	// address stream and the TLB geometry — never on the WP area — so
	// one replay serves every non-adaptive model.
	var shared *tlb.TLB
	if needShared {
		t, err := tlb.New(base.ITLB)
		if err != nil {
			return nil, err
		}
		shared = t
	}

	src, err := NewFetchSource(prog, base, block)
	if err != nil {
		return nil, err
	}
	for {
		ch, err := src.NextChunk(ctx)
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		if shared != nil {
			for _, r := range ch.Runs {
				shared.Lookup(cpu.EventAddr(ch.Events[r.Start]))
				if r.N > 1 {
					shared.BulkHits(uint64(r.N - 1))
				}
			}
		}
		n := 0
		for _, m := range live {
			if cerr := m.Consume(ch); cerr != nil {
				for i, b := range built {
					if b == m {
						results[i] = &ModelResult{Err: cerr}
						built[i] = nil
					}
				}
				continue
			}
			live[n] = m
			n++
		}
		live = live[:n]
		if len(live) == 0 {
			break
		}
	}

	memHash := src.mem.Hash(cpu.StackRegionBase)
	var sharedStats tlb.Stats
	if shared != nil {
		sharedStats = shared.Stats
	}
	for i, m := range built {
		if m == nil {
			continue
		}
		c := m.core()
		results[i] = &ModelResult{
			Stats:       c.finalize(base, src, sharedStats, memHash),
			AreaChanges: c.changes,
		}
	}
	// Alias specs finalize from their primary's consumed state; a
	// primary that failed mid-stream fails its aliases the same way.
	for i, p := range aliasOf {
		if p < 0 {
			continue
		}
		if built[p] == nil {
			results[i] = &ModelResult{Err: results[p].Err}
			continue
		}
		results[i] = &ModelResult{
			Stats: built[p].core().finalizeAs(models[i], base, src, sharedStats, memHash),
		}
	}
	return results, nil
}

// finalize assembles one model's RunStats from the producer outcome
// and the model's instruction-side state. The coupled loop interleaves
// instruction-side stalls into the cycle count as it goes; here they
// are reconstructed in closed form — each charged stall corresponds
// one-to-one to a counted event:
//
//	cycles = producer cycles (base + data-side stalls)
//	       + TLBWalkPenalty × I-TLB misses
//	       + LineFillCycles(line) × I-cache line fills
//	       + HintExtraPenalty × way-hint extra accesses
func (m *modelCore) finalize(base Config, src *FetchSource, shared tlb.Stats, memHash uint64) *RunStats {
	return m.finalizeAs(m.spec, base, src, shared, memHash)
}

// finalizeAs assembles RunStats for spec from m's consumed state. spec
// must be behaviourally identical to m.spec (same geometry, scheme and
// effective WP area); it may differ in array style and in the exact WP
// size when both areas cover the text image, neither of which affects
// the counted events — only the energy model reads them.
func (m *modelCore) finalizeAs(spec ModelSpec, base Config, src *FetchSource, shared tlb.Stats, memHash uint64) *RunStats {
	istats := m.fe.Cache().Stats
	itlbStats := shared
	if m.ownITLB != nil {
		itlbStats = m.ownITLB.Stats
	}
	lineBytes := spec.Geometry.LineBytes
	cycles := src.cpu.Cycles +
		uint64(base.Timing.TLBWalkPenalty)*itlbStats.Misses +
		uint64(base.Mem.LineFillCycles(lineBytes))*istats.LineFills +
		uint64(base.Timing.HintExtraPenalty)*istats.HintExtraAccess

	memStats := src.mem.Stats
	memStats.Reads += istats.LineFills
	memStats.BytesRead += istats.LineFills * uint64(lineBytes)

	rs := &RunStats{
		Scheme:    spec.Scheme,
		Instrs:    src.cpu.Instrs,
		Cycles:    cycles,
		IStats:    istats,
		DStats:    src.dcache.Cache().Stats,
		ITLBStats: itlbStats,
		DTLBStats: src.dtlb.Stats,
		MemStats:  memStats,
		Checksum:  src.cpu.Regs[0],
		MemHash:   memHash,
	}
	rs.Energy = energy.Compute(base.Energy, energy.SystemStats{
		Scheme: spec.Scheme,
		Style:  spec.Style,
		ICfg:   spec.Geometry,
		IStats: rs.IStats,
		DCfg:   base.DCache,
		DStats: rs.DStats,
		ITLB:   rs.ITLBStats,
		DTLB:   rs.DTLBStats,
		Cycles: rs.Cycles,
	})
	return rs
}
