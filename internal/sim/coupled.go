package sim

import (
	"context"
	"fmt"

	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/energy"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/tlb"
)

// RunCoupled executes prog with the instruction-side models coupled
// directly into the CPU loop — the original single-model simulator,
// where each instruction drives the I-TLB and fetch engine in line and
// stalls accumulate as they happen.
//
// Production callers should use RunContext (which routes through the
// single-pass RunMulti machinery); RunCoupled is kept as an
// independent reference implementation. internal/check's differential
// harness runs both and requires bit-identical statistics, so a defect
// in either the event-stream replay or the coupled loop surfaces as a
// divergence instead of a silently wrong figure.
func RunCoupled(ctx context.Context, prog *obj.Program, cfg Config) (*RunStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := mem.New(cfg.Mem)
	c := cpu.New(prog, m)
	c.Timing = cfg.Timing

	itlb, err := tlb.New(cfg.ITLB)
	if err != nil {
		return nil, err
	}
	dtlb, err := tlb.New(cfg.DTLB)
	if err != nil {
		return nil, err
	}
	dcache, err := cache.NewData(cfg.DCache)
	if err != nil {
		return nil, err
	}

	var engine cache.FetchEngine
	switch cfg.Scheme {
	case energy.Baseline:
		engine, err = cache.NewBaseline(cfg.ICache)
	case energy.WayPlacement:
		if cfg.WPSize > 0 {
			if err := itlb.SetWPArea(prog.Base, cfg.WPSize); err != nil {
				return nil, err
			}
		}
		var wpe *cache.WayPlacementEngine
		wpe, err = cache.NewWayPlacement(cfg.ICache, itlb)
		if wpe != nil {
			wpe.OracleHint = cfg.OracleHint
			wpe.NoSameLine = cfg.NoSameLine
			engine = wpe
		}
	case energy.WayMemoization:
		engine, err = cache.NewWayMemoization(cfg.ICache)
	default:
		return nil, fmt.Errorf("sim: unknown scheme %v", cfg.Scheme)
	}
	if err != nil {
		return nil, err
	}

	c.IFetch = engine
	c.ITLB = itlb
	c.DCache = dcache
	c.DTLB = dtlb

	res, err := c.RunContext(ctx, cfg.MaxInstrs)
	if err != nil {
		return nil, err
	}

	rs := &RunStats{
		Scheme:    cfg.Scheme,
		Instrs:    res.Instrs,
		Cycles:    res.Cycles,
		IStats:    engine.Cache().Stats,
		DStats:    dcache.Cache().Stats,
		ITLBStats: itlb.Stats,
		DTLBStats: dtlb.Stats,
		MemStats:  m.Stats,
		Checksum:  c.Regs[0],
		MemHash:   m.Hash(cpu.StackRegionBase),
	}
	rs.Energy = energy.Compute(cfg.Energy, energy.SystemStats{
		Scheme: cfg.Scheme,
		Style:  cfg.Style,
		ICfg:   cfg.ICache,
		IStats: rs.IStats,
		DCfg:   cfg.DCache,
		DStats: rs.DStats,
		ITLB:   rs.ITLBStats,
		DTLB:   rs.DTLBStats,
		Cycles: rs.Cycles,
	})
	return rs, nil
}
