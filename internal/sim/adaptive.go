package sim

import (
	"context"
	"fmt"

	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/energy"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/tlb"
)

// Section 4.1 notes that the operating system can choose the
// way-placement area "either on a static or per-program basis, even
// adjusting it during program execution". RunAdaptive implements that
// extension: an OS policy that periodically inspects the fetch
// behaviour and resizes the area, flushing the instruction cache on
// every change so explicit placement stays consistent.

// AdaptivePolicy is the OS's area-sizing heuristic.
type AdaptivePolicy struct {
	// IntervalInstrs is the decision period.
	IntervalInstrs uint64
	// StartSize, MinSize, MaxSize bound the area (bytes, multiples of
	// the I-TLB page size).
	StartSize, MinSize, MaxSize uint32
	// GrowThreshold: while the fraction of fetches landing inside the
	// area stays below this, the area doubles — the hot code does not
	// fit yet.
	GrowThreshold float64
	// AliasMissRate: if the window miss rate exceeds this while the
	// area is larger than the cache, the area halves — way-placed
	// lines are evicting each other in their designated ways.
	AliasMissRate float64

	// Inspect, when non-nil, is called after every OS decision point
	// with the live I-TLB and I-cache. Test hook: internal/check uses
	// it to assert runtime invariants (e.g. I-TLB way-bit coherence)
	// while the OS is actively resizing the area.
	Inspect func(itlb *tlb.TLB, icache *cache.Cache)
}

// DefaultAdaptivePolicy returns a reasonable OS heuristic for the
// given machine. The area is allowed to grow to twice the I-cache
// capacity — past that point designated ways are so over-committed
// that the shrink rule always fires first, so a larger bound would
// only let small-cache sweeps mark useless pages way-placed.
func DefaultAdaptivePolicy(icache cache.Config, pageBytes int) AdaptivePolicy {
	maxSize := uint32(icache.SizeBytes) * 2
	if maxSize < uint32(pageBytes) {
		maxSize = uint32(pageBytes)
	}
	return AdaptivePolicy{
		IntervalInstrs: 50_000,
		StartSize:      uint32(pageBytes),
		MinSize:        uint32(pageBytes),
		MaxSize:        maxSize,
		GrowThreshold:  0.95,
		AliasMissRate:  0.02,
	}
}

// AreaChange records one OS resize decision.
type AreaChange struct {
	AtInstr uint64
	Size    uint32
}

// RunAdaptive executes prog under the way-placement scheme with the
// OS resizing the area per pol, honouring ctx cancellation between OS
// decision intervals. It returns the run statistics and the resize
// trace.
//
// Most callers should not invoke this directly: adaptive cells are
// first-class grid cells — set engine.RunSpec.Adaptive (or the
// Adaptive field of an api.RunRequest) and the engine routes the cell
// here, memoised and deduplicated like any static cell.
func RunAdaptive(ctx context.Context, prog *obj.Program, cfg Config, pol AdaptivePolicy) (*RunStats, []AreaChange, error) {
	if pol.IntervalInstrs == 0 || pol.StartSize == 0 {
		return nil, nil, fmt.Errorf("sim: adaptive policy needs an interval and a start size")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.Scheme = energy.WayPlacement
	cfg.WPSize = pol.StartSize
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = 2_000_000_000
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	m := mem.New(cfg.Mem)
	c := cpu.New(prog, m)
	c.Timing = cfg.Timing

	itlb, err := tlb.New(cfg.ITLB)
	if err != nil {
		return nil, nil, err
	}
	dtlb, err := tlb.New(cfg.DTLB)
	if err != nil {
		return nil, nil, err
	}
	dcache, err := cache.NewData(cfg.DCache)
	if err != nil {
		return nil, nil, err
	}
	engine, err := cache.NewWayPlacement(cfg.ICache, itlb)
	if err != nil {
		return nil, nil, err
	}
	size := pol.StartSize
	if err := itlb.SetWPArea(prog.Base, size); err != nil {
		return nil, nil, err
	}
	c.IFetch = engine
	c.ITLB = itlb
	c.DCache = dcache
	c.DTLB = dtlb

	changes := []AreaChange{{AtInstr: 0, Size: size}}
	var prev cache.Stats
	maxInstrs := cfg.MaxInstrs

	for !c.Halted && c.Instrs < maxInstrs {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		budget := pol.IntervalInstrs
		if rem := maxInstrs - c.Instrs; rem < budget {
			budget = rem
		}
		if _, err := c.RunInstrs(budget); err != nil {
			return nil, nil, err
		}
		if c.Halted {
			break
		}
		// OS decision point: inspect the window.
		cur := engine.Cache().Stats
		dFetch := cur.Fetches - prev.Fetches
		if dFetch == 0 {
			prev = cur
			continue
		}
		wpFrac := float64(cur.WPAreaFetches-prev.WPAreaFetches) / float64(dFetch)
		missRate := float64(cur.Misses-prev.Misses) / float64(dFetch)
		prev = cur

		newSize := size
		switch {
		case size > uint32(cfg.ICache.SizeBytes) && missRate > pol.AliasMissRate && size/2 >= pol.MinSize:
			// The area overcommits the cache and designated-way
			// aliasing is causing misses: shrink.
			newSize = size / 2
		case wpFrac < pol.GrowThreshold && size*2 <= pol.MaxSize:
			newSize = size * 2
		}
		if newSize != size {
			size = newSize
			if err := itlb.SetWPArea(prog.Base, size); err != nil {
				return nil, nil, err
			}
			// The OS flushes the I-cache so stale placements die, and
			// invalidates the I-TLB so resident entries stop delivering
			// the way-placement bit of the *previous* area (the bit is
			// cached per entry; without the invalidate the hardware
			// silently disagrees with the page tables until eviction).
			engine.Cache().Flush()
			itlb.Invalidate()
			changes = append(changes, AreaChange{AtInstr: c.Instrs, Size: size})
		}
		if pol.Inspect != nil {
			pol.Inspect(itlb, engine.Cache())
		}
	}
	if !c.Halted {
		return nil, nil, fmt.Errorf("sim: instruction budget %d exhausted", maxInstrs)
	}

	rs := &RunStats{
		Scheme:    energy.WayPlacement,
		Instrs:    c.Instrs,
		Cycles:    c.Cycles,
		IStats:    engine.Cache().Stats,
		DStats:    dcache.Cache().Stats,
		ITLBStats: itlb.Stats,
		DTLBStats: dtlb.Stats,
		MemStats:  m.Stats,
		Checksum:  c.Regs[0],
		MemHash:   m.Hash(cpu.StackRegionBase),
	}
	rs.Energy = energy.Compute(cfg.Energy, energy.SystemStats{
		Scheme: energy.WayPlacement,
		ICfg:   cfg.ICache,
		IStats: rs.IStats,
		DCfg:   cfg.DCache,
		DStats: rs.DStats,
		ITLB:   rs.ITLBStats,
		DTLB:   rs.DTLBStats,
		Cycles: rs.Cycles,
	})
	return rs, changes, nil
}
