package sim

import (
	"context"
	"testing"

	"wayplace/internal/asm"
	"wayplace/internal/energy"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
)

// buildTestBench constructs a small but realistic benchmark: a table-
// driven checksum loop (hot), a setup function (cold) and an error
// path (never executed), with the cold code first so the original
// layout is pessimal.
func buildTestBench(t *testing.T, iters uint16) *obj.Unit {
	t.Helper()
	b := asm.NewBuilder("tb")
	table := b.Words(0x9e3779b9, 0x85ebca6b, 0xc2b2ae35, 0x27d4eb2f)
	buf := b.Zeros(1024)

	f := b.Func("main")
	f.Call("setup")
	f.Movi(isa.R5, iters)
	f.Movi(isa.R0, 0)
	f.Block("outer")
	f.Li(isa.R6, buf)
	f.Movi(isa.R7, 256)
	f.Block("inner")
	f.Ldr(isa.R1, isa.R6, 0)
	f.OpI(isa.ANDI, isa.R2, isa.R1, 12)
	f.Li(isa.R3, table)
	f.Ldrx(isa.R3, isa.R3, isa.R2)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R3)
	f.Add(isa.R0, isa.R0, isa.R1)
	f.Str(isa.R0, isa.R6, 0)
	f.Addi(isa.R6, isa.R6, 4)
	f.Subi(isa.R7, isa.R7, 1)
	f.Cmpi(isa.R7, 0)
	f.Bgt("inner")
	f.Subi(isa.R5, isa.R5, 1)
	f.Cmpi(isa.R5, 0)
	f.Bgt("outer")
	f.Cmpi(isa.R0, 0)
	f.Beq("error")
	f.Halt()
	f.Block("error")
	f.Movi(isa.R0, 0xdead)
	f.Halt()

	s := b.Func("setup")
	s.Li(isa.R1, buf)
	s.Movi(isa.R2, 256)
	s.Movi(isa.R3, 1)
	s.Block("fill")
	s.Str(isa.R3, isa.R1, 0)
	s.Addi(isa.R1, isa.R1, 4)
	s.Addi(isa.R3, isa.R3, 7)
	s.Subi(isa.R2, isa.R2, 1)
	s.Cmpi(isa.R2, 0)
	s.Bgt("fill")
	s.Ret()

	u, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return u
}

const textBase = 0x0001_0000

func TestProfileThenLayoutThenRun(t *testing.T) {
	u := buildTestBench(t, 20)

	// Profile on the "small" input.
	small, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatalf("LinkOriginal: %v", err)
	}
	prof, sum, err := ProfileRun(small, 50_000_000)
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	if sum == 0xdead {
		t.Fatal("benchmark took its error path")
	}
	if prof.Count("main.inner") == 0 {
		t.Fatal("profile missed the hot loop")
	}

	// Relink with way-placement ordering.
	opt, err := layout.Link(u, prof, textBase)
	if err != nil {
		t.Fatalf("layout.Link: %v", err)
	}
	if cov := layout.Coverage(opt, prof, 1<<10); cov < 0.9 {
		t.Errorf("1KB coverage after layout = %.3f, want > 0.9", cov)
	}

	cfg := Default()
	base, err := Run(opt, cfg)
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	wp, err := Run(opt, cfg.WithScheme(energy.WayPlacement, 4<<10))
	if err != nil {
		t.Fatalf("wayplace Run: %v", err)
	}
	wm, err := Run(opt, cfg.WithScheme(energy.WayMemoization, 0))
	if err != nil {
		t.Fatalf("waymem Run: %v", err)
	}

	// Architectural equivalence.
	if base.Checksum != wp.Checksum || base.Checksum != wm.Checksum || base.Checksum != sum {
		t.Errorf("checksums diverge: base=%#x wp=%#x wm=%#x prof=%#x",
			base.Checksum, wp.Checksum, wm.Checksum, sum)
	}
	if base.Instrs != wp.Instrs || base.Instrs != wm.Instrs {
		t.Errorf("instruction counts diverge: %d/%d/%d", base.Instrs, wp.Instrs, wm.Instrs)
	}

	// Performance is essentially unchanged (the paper: "There is no
	// change in performance").
	ratio := float64(wp.Cycles) / float64(base.Cycles)
	if ratio > 1.01 {
		t.Errorf("way-placement slowed execution by %.2f%%", 100*(ratio-1))
	}

	// Energy ordering at the 32KB/32-way design point.
	eb, ew, em := base.Energy.ICache(), wp.Energy.ICache(), wm.Energy.ICache()
	if ew >= eb {
		t.Errorf("way-placement I$ energy %.0f not below baseline %.0f", ew, eb)
	}
	if em >= eb {
		t.Errorf("way-memoization I$ energy %.0f not below baseline %.0f", em, eb)
	}
	if ew >= em {
		t.Errorf("way-placement (%.0f) should beat way-memoization (%.0f) here", ew, em)
	}
	norm := energy.NormICache(wp.Energy, base.Energy)
	if norm > 0.65 {
		t.Errorf("normalised WP I$ energy = %.3f, want < 0.65 for a tight hot loop", norm)
	}

	// ED product below 1 for way-placement.
	ed := energy.EDProduct(wp.Energy, wp.Cycles, base.Energy, base.Cycles)
	if ed >= 1.0 {
		t.Errorf("WP ED product = %.3f, want < 1", ed)
	}
}

func TestWPAccessesTrackCoverage(t *testing.T) {
	u := buildTestBench(t, 10)
	p, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := ProfileRun(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := layout.Link(u, prof, textBase)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := Run(opt, Default().WithScheme(energy.WayPlacement, 4<<10))
	if err != nil {
		t.Fatal(err)
	}
	s := wp.IStats
	if s.WPAreaFetches == 0 {
		t.Fatal("no fetches hit the WP area")
	}
	frac := float64(s.WPAreaFetches) / float64(s.Fetches)
	if frac < 0.9 {
		t.Errorf("WP-area fetch fraction = %.3f, want > 0.9 after layout", frac)
	}
	// Way-hint accuracy must be high: the stream rarely alternates.
	wrong := s.HintMissedSaving + s.HintExtraAccess
	if acc := 1 - float64(wrong)/float64(s.Fetches); acc < 0.99 {
		t.Errorf("hint accuracy = %.4f, want > 0.99", acc)
	}
}

func TestSchemesOnUnplacedBinaryStillCorrect(t *testing.T) {
	// Running the way-placement machine on a baseline-ordered binary
	// with a WP area is still correct (just less effective).
	u := buildTestBench(t, 5)
	p, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	wp, err := Run(p, Default().WithScheme(energy.WayPlacement, 2<<10))
	if err != nil {
		t.Fatal(err)
	}
	if base.Checksum != wp.Checksum {
		t.Errorf("checksums diverge on unplaced binary: %#x vs %#x", base.Checksum, wp.Checksum)
	}
}

func TestZeroWPAreaEqualsBaselineEnergyShape(t *testing.T) {
	// With a zero-size WP area the way-placement engine never takes
	// the single-tag path; its tag comparisons equal the baseline's.
	u := buildTestBench(t, 5)
	p, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	wp0, err := Run(p, Default().WithScheme(energy.WayPlacement, 0))
	if err != nil {
		t.Fatal(err)
	}
	if wp0.IStats.WPAccesses != 0 {
		t.Errorf("WP accesses with empty area = %d", wp0.IStats.WPAccesses)
	}
	// Identical fetch behaviour apart from the same-line skip, which a
	// zero-area way-placement engine still performs; so comparisons
	// must be <= baseline and misses equal.
	if wp0.IStats.Misses != base.IStats.Misses {
		t.Errorf("miss counts differ: %d vs %d", wp0.IStats.Misses, base.IStats.Misses)
	}
	if wp0.IStats.TagComparisons > base.IStats.TagComparisons {
		t.Errorf("empty-WP engine did more comparisons than baseline")
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := Default()
	if c.ICache.SizeBytes != 32<<10 || c.ICache.Ways != 32 || c.ICache.LineBytes != 32 {
		t.Errorf("I-cache config %+v does not match Table 1", c.ICache)
	}
	if c.ITLB.Entries != 32 || c.DTLB.Entries != 32 {
		t.Error("TLBs must be 32-entry")
	}
	if c.Mem.LatencyCycles != 50 {
		t.Error("memory latency must be 50 cycles")
	}
}

func TestRunAdaptiveConvergesAndPreservesSemantics(t *testing.T) {
	u := buildTestBench(t, 20)
	small, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := ProfileRun(small, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := layout.Link(u, prof, textBase)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Default()
	base, err := Run(opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(opt, cfg.WithScheme(energy.WayPlacement, 16<<10))
	if err != nil {
		t.Fatal(err)
	}

	pol := DefaultAdaptivePolicy(cfg.ICache, cfg.ITLB.PageBytes)
	pol.IntervalInstrs = 10_000
	adaptive, changes, err := RunAdaptive(context.Background(), opt, cfg.WithScheme(energy.WayPlacement, 0), pol)
	if err != nil {
		t.Fatalf("RunAdaptive: %v", err)
	}
	if adaptive.Checksum != base.Checksum {
		t.Errorf("adaptive run changed the checksum: %#x vs %#x", adaptive.Checksum, base.Checksum)
	}
	if len(changes) < 1 || changes[0].Size != uint32(cfg.ITLB.PageBytes) {
		t.Errorf("area trace should start at one page: %+v", changes)
	}
	// Sizes must be page multiples, bounded, and the trace monotone in
	// time.
	for i, ch := range changes {
		if ch.Size%uint32(cfg.ITLB.PageBytes) != 0 {
			t.Errorf("change %d: size %d not page-aligned", i, ch.Size)
		}
		if i > 0 && ch.AtInstr <= changes[i-1].AtInstr {
			t.Errorf("change %d out of order", i)
		}
	}
	// The OS should end up covering the (small) hot code and land
	// within a whisker of the best static configuration.
	aNorm := energy.NormICache(adaptive.Energy, base.Energy)
	sNorm := energy.NormICache(static.Energy, base.Energy)
	if aNorm > sNorm+0.05 {
		t.Errorf("adaptive sizing %.3f too far above static %.3f", aNorm, sNorm)
	}
	if aNorm >= 1 {
		t.Errorf("adaptive sizing failed to save energy: %.3f", aNorm)
	}
}

func TestRunAdaptiveRejectsBadPolicy(t *testing.T) {
	u := buildTestBench(t, 1)
	p, _ := layout.LinkOriginal(u, textBase)
	if _, _, err := RunAdaptive(context.Background(), p, Default(), AdaptivePolicy{}); err == nil {
		t.Error("empty policy accepted")
	}
}

func TestRAMTagStyleSavesMore(t *testing.T) {
	// On a conventional RAM-tag array the scheme also eliminates
	// parallel data-way reads, so relative savings must exceed the
	// CAM-tag organisation at equal geometry.
	u := buildTestBench(t, 10)
	small, _ := layout.LinkOriginal(u, textBase)
	prof, _, err := ProfileRun(small, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := layout.Link(u, prof, textBase)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(style energy.ArrayStyle) float64 {
		cfg := Default()
		cfg.ICache.Ways = 8
		cfg.DCache.Ways = 8
		cfg.Style = style
		base, err := Run(opt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := Run(opt, cfg.WithScheme(energy.WayPlacement, 4<<10))
		if err != nil {
			t.Fatal(err)
		}
		if wp.Checksum != base.Checksum {
			t.Fatal("style changed semantics?!")
		}
		return energy.NormICache(wp.Energy, base.Energy)
	}
	cam, ram := norm(energy.CAMTag), norm(energy.RAMTag)
	if ram >= cam-0.2 {
		t.Errorf("RAM-tag saving (%.3f) should far exceed CAM-tag (%.3f) at 8 ways", ram, cam)
	}
	if ram <= 0 || ram >= 1 {
		t.Errorf("RAM-tag normalised energy out of range: %.3f", ram)
	}
}
