package obs

import "sync"

// memoFactor bounds a vec's label→counter memo relative to its
// cardinality cap: entries past the cap alias the one overflow
// counter, so a memo entry costs a map slot, not a registry series.
// Past cap*memoFactor the memo itself stops growing and the hot path
// answers the cached overflow counter directly.
const memoFactor = 8

// CounterVec is a family of counters keyed by one label value, with a
// hard cardinality cap: the first cap distinct values get their own
// registry series, every later value lands on the shared
// value="overflow" series, so hostile or unbounded label sets (cell
// keys, tenant ids) cannot grow the registry without bound. The memo
// is keyed by the *original* value even when it resolves to the
// overflow counter, so any value seen before is one map read — no
// registry lookup, no re-store.
type CounterVec struct {
	reg   *Registry
	name  string
	label string
	cap   int

	mu       sync.Mutex
	memo     map[string]*Counter
	overflow *Counter // the shared past-the-cap series
}

// CounterVec returns a labeled counter family on the registry. Series
// are named LabeledName(name, label, value). A nil registry returns a
// nil vec whose methods are no-ops, matching the other instruments.
// cardinalityCap <= 0 picks 1024.
func (r *Registry) CounterVec(name, label string, cardinalityCap int) *CounterVec {
	if r == nil {
		return nil
	}
	if cardinalityCap <= 0 {
		cardinalityCap = 1024
	}
	return &CounterVec{
		reg:   r,
		name:  name,
		label: label,
		cap:   cardinalityCap,
		memo:  make(map[string]*Counter),
	}
}

// With returns the counter for one label value, creating the series on
// first use and folding values past the cardinality cap into the
// overflow series. Callers on a hot path may hold the returned
// pointer. A nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	c, ok := v.memo[value]
	if !ok {
		if len(v.memo) < v.cap {
			c = v.reg.Counter(LabeledName(v.name, v.label, value))
		} else {
			if v.overflow == nil {
				v.overflow = v.reg.Counter(LabeledName(v.name, v.label, "overflow"))
			}
			c = v.overflow
		}
		if len(v.memo) < v.cap*memoFactor {
			v.memo[value] = c
		}
	}
	v.mu.Unlock()
	return c
}

// Overflow returns the shared past-the-cap counter, nil until any
// value has overflowed. Useful in tests and capacity dashboards.
func (v *CounterVec) Overflow() *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.overflow
}
