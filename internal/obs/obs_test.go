package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent: N writers x M increments must never lose an
// update (run under -race in tier-1).
func TestCounterConcurrent(t *testing.T) {
	const writers, perWriter = 16, 10_000
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter lost updates: got %d, want %d", got, writers*perWriter)
	}
}

// TestGaugeConcurrentAdd: the CAS loop must make float accumulation
// atomic. Integer-valued increments keep the expected sum exact.
func TestGaugeConcurrentAdd(t *testing.T) {
	const writers, perWriter = 8, 5_000
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != writers*perWriter {
		t.Errorf("gauge lost updates: got %v, want %d", got, writers*perWriter)
	}
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Errorf("Set: got %v, want -2.5", got)
	}
}

// TestHistogramConcurrent: concurrent observations must agree on
// count, sum and bucket placement.
func TestHistogramConcurrent(t *testing.T) {
	const writers, perWriter = 8, 2_000
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(v uint64) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(v)
			}
		}(uint64(1) << (i % 4)) // values 1, 2, 4, 8
	}
	wg.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count %d, want %d", got, writers*perWriter)
	}
	// 2 writers each of 1, 2, 4, 8.
	wantSum := uint64(2 * perWriter * (1 + 2 + 4 + 8))
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum %d, want %d", got, wantSum)
	}
	for i, want := range map[int]uint64{1: 2 * perWriter, 2: 2 * perWriter, 3: 2 * perWriter, 4: 2 * perWriter} {
		if got := h.buckets[i].Load(); got != want {
			t.Errorf("bucket %d holds %d, want %d", i, got, want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, math.MaxUint64: 64}
	for v, bucket := range cases {
		before := h.buckets[bucket].Load()
		h.Observe(v)
		if got := h.buckets[bucket].Load(); got != before+1 {
			t.Errorf("Observe(%d) did not land in bucket %d", v, bucket)
		}
	}
	if h.Quantile(0) == 0 && h.Count() > 0 {
		// q=0 still returns the first occupied bucket's bound.
		t.Log("quantile(0) returned first bucket bound 0 (value 0 observed) — ok")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7, bound 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20) // bucket 21, bound 2^21-1
	}
	if q := h.Quantile(0.5); q != 127 {
		t.Errorf("p50 = %d, want 127", q)
	}
	// The top bucket's bound is 2^21-1, but no sample exceeded 2^20:
	// the quantile clamps to the observed maximum.
	if q := h.Quantile(0.99); q != 1<<20 {
		t.Errorf("p99 = %d, want %d (bucket bound clamped to max sample)", q, 1<<20)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", q)
	}
}

func TestHistogramQuantileClampsToMax(t *testing.T) {
	// One sample: every quantile is exactly that sample, not its
	// power-of-two bucket bound.
	var h Histogram
	h.Observe(1_100_000_000) // 1.1s in ns, bucket bound ~2.1s
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1_100_000_000 {
			t.Errorf("Quantile(%v) = %d, want the lone sample 1100000000", q, got)
		}
	}
	if h.Max() != 1_100_000_000 {
		t.Errorf("Max() = %d, want 1100000000", h.Max())
	}

	// A quantile landing in a lower bucket than the max still reports
	// its own bucket bound — the clamp only trims the top.
	var h2 Histogram
	for i := 0; i < 99; i++ {
		h2.Observe(100) // bucket bound 127
	}
	h2.Observe(1 << 30)
	if got := h2.Quantile(0.5); got != 127 {
		t.Errorf("p50 = %d, want 127 (clamp must not affect lower buckets)", got)
	}
	if got := h2.Quantile(1); got != 1<<30 {
		t.Errorf("p100 = %d, want %d", got, 1<<30)
	}

	// Zero is a valid max: a histogram of only zeros reports 0.
	var h3 Histogram
	h3.Observe(0)
	if got := h3.Quantile(0.99); got != 0 {
		t.Errorf("all-zero histogram p99 = %d, want 0", got)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Nanosecond)
	h.ObserveDuration(-time.Second) // clamps to 0
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	if h.Sum() != 1500 {
		t.Errorf("sum %d, want 1500 (negative duration must clamp to 0)", h.Sum())
	}
}

// TestNilRegistryAllocFree is the acceptance proof that a disabled
// (nil) registry costs nothing on the hot path: every instrument
// operation on nil receivers performs zero allocations.
func TestNilRegistryAllocFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		_ = c.Value()
		g.Set(1)
		g.Add(2)
		_ = g.Value()
		h.Observe(42)
		h.ObserveDuration(time.Microsecond)
		_ = h.Count()
		_ = h.Quantile(0.5)
		_ = r.Counter("x")
	})
	if allocs != 0 {
		t.Errorf("nil-registry operations allocate: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkNilInstruments is the same property as a benchmark
// (run with -benchmem: 0 B/op, 0 allocs/op).
func BenchmarkNilInstruments(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Add(1)
		h.Observe(uint64(i))
	}
}

// BenchmarkLiveInstruments shows the enabled-path cost for
// comparison: a handful of atomic operations.
func BenchmarkLiveInstruments(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Add(1)
		h.Observe(uint64(i))
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name resolved to two counters")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same name resolved to two gauges")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("same name resolved to two histograms")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cells_total").Add(7)
	r.Gauge("mips").Set(12.5)
	h := r.Histogram("cell_ns")
	h.Observe(100)
	h.Observe(100)
	h.Observe(1 << 20)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cells_total counter\ncells_total 7\n",
		"# TYPE mips gauge\nmips 12.5\n",
		"# TYPE cell_ns histogram\n",
		"cell_ns_bucket{le=\"127\"} 2\n",
		"cell_ns_bucket{le=\"2097151\"} 3\n",
		"cell_ns_bucket{le=\"+Inf\"} 3\n",
		"cell_ns_sum 1048776\n",
		"cell_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var nilReg *Registry
	var empty strings.Builder
	if err := nilReg.WritePrometheus(&empty); err != nil || empty.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", empty.String(), err)
	}
}

// TestWritePrometheusLabeledSeries: labeled instrument names share one
// TYPE header per metric family and print as independent samples.
func TestWritePrometheusLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName("run_cache_hits_total", "key", `rs1|sha|i$32768x32x32:0|baseline|wp0`)).Add(3)
	r.Counter(LabeledName("run_cache_hits_total", "key", `rs1|crc|i$32768x32x32:0|wayplace|wp16384`)).Add(1)
	r.Counter("run_cache_hits_total").Add(4)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE run_cache_hits_total counter"); n != 1 {
		t.Errorf("family declared %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		"run_cache_hits_total 4\n",
		`run_cache_hits_total{key="rs1|sha|i$32768x32x32:0|baseline|wp0"} 3` + "\n",
		`run_cache_hits_total{key="rs1|crc|i$32768x32x32:0|wayplace|wp16384"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledNameEscapes(t *testing.T) {
	got := LabeledName("m", "k", "a\"b\\c\nd")
	want := `m{k="a\"b\\c\nd"}`
	if got != want {
		t.Errorf("LabeledName = %q, want %q", got, want)
	}
	if baseName(got) != "m" {
		t.Errorf("baseName(%q) = %q", got, baseName(got))
	}
}

func TestDumpJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.25)
	r.Histogram("h").Observe(5)

	d := r.Dump()
	if d.Counters["c"] != 3 {
		t.Errorf("counter dump = %d, want 3", d.Counters["c"])
	}
	if d.Gauges["g"] != 1.25 {
		t.Errorf("gauge dump = %v, want 1.25", d.Gauges["g"])
	}
	hd := d.Histograms["h"]
	if hd.Count != 1 || hd.Sum != 5 || len(hd.Buckets) != 1 || hd.Buckets[0].LE != 7 {
		t.Errorf("histogram dump = %+v", hd)
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"counters\"") {
		t.Errorf("JSON output missing counters section: %s", sb.String())
	}

	var nilReg *Registry
	if d := nilReg.Dump(); d.Counters != nil || d.Gauges != nil || d.Histograms != nil {
		t.Error("nil registry dump not empty")
	}
}
