package obs

import (
	"fmt"
	"testing"
)

// Past the cardinality cap every fresh value must (a) land on the one
// shared overflow counter and (b) be memoized under its *original*
// value, so repeat hits are a single map read. The registry itself
// must grow by exactly cap+1 series, however many values arrive.
func TestCounterVecMemoizesPastCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	const cap = 8
	v := reg.CounterVec("test_hits_total", "key", cap)

	for i := 0; i < cap; i++ {
		v.With(fmt.Sprintf("key-%d", i)).Inc()
	}
	if v.Overflow() != nil {
		t.Fatalf("overflow counter exists before the cap is exceeded")
	}

	const extra = 3 * cap
	for i := 0; i < extra; i++ {
		v.With(fmt.Sprintf("spill-%d", i)).Inc()
	}
	of := v.Overflow()
	if of == nil {
		t.Fatalf("no overflow counter after %d past-cap values", extra)
	}
	if got := of.Value(); got != extra {
		t.Fatalf("overflow counter = %d, want %d", got, extra)
	}

	// The memo holds each spilled value, aliased to the overflow
	// counter — not a literal "overflow" entry.
	v.mu.Lock()
	aliased, ok := v.memo["spill-0"]
	_, literal := v.memo["overflow"]
	memoLen := len(v.memo)
	v.mu.Unlock()
	if !ok || aliased != of {
		t.Fatalf("spill-0 not memoized onto the overflow counter")
	}
	if literal {
		t.Fatalf("memo stores a literal \"overflow\" entry instead of the original values")
	}
	if memoLen != cap+extra {
		t.Fatalf("memo holds %d entries, want %d", memoLen, cap+extra)
	}

	// Registry growth is bounded: cap per-value series + 1 overflow.
	if got := len(reg.Dump().Counters); got != cap+1 {
		t.Fatalf("registry holds %d series, want %d", got, cap+1)
	}

	// A repeat past-cap hit still lands on the shared counter.
	v.With("spill-0").Inc()
	if got := of.Value(); got != extra+1 {
		t.Fatalf("repeat spill hit: overflow = %d, want %d", got, extra+1)
	}
}

// Past memoFactor*cap the memo itself must stop growing; further
// fresh values still count on the overflow series.
func TestCounterVecMemoBounded(t *testing.T) {
	reg := NewRegistry()
	const cap = 4
	v := reg.CounterVec("test_hits_total", "key", cap)
	total := cap*memoFactor + 100
	for i := 0; i < total; i++ {
		v.With(fmt.Sprintf("k-%d", i)).Inc()
	}
	v.mu.Lock()
	memoLen := len(v.memo)
	v.mu.Unlock()
	if memoLen != cap*memoFactor {
		t.Fatalf("memo holds %d entries, want the bound %d", memoLen, cap*memoFactor)
	}
	if got := v.Overflow().Value(); got != uint64(total-cap) {
		t.Fatalf("overflow = %d, want %d", got, total-cap)
	}
	if got := len(reg.Dump().Counters); got != cap+1 {
		t.Fatalf("registry holds %d series, want %d", got, cap+1)
	}
}

// A nil registry hands out a nil vec whose methods are no-ops, like
// every other instrument.
func TestCounterVecNilSafe(t *testing.T) {
	var reg *Registry
	v := reg.CounterVec("x", "key", 0)
	if v != nil {
		t.Fatalf("nil registry must return a nil vec")
	}
	v.With("a").Inc() // must not panic
	if v.Overflow() != nil {
		t.Fatalf("nil vec overflow must be nil")
	}
}
