package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exposition: the registry dumps in two formats. Prometheus text for
// scrapers and humans, JSON for scripts. Both walk a consistent
// point-in-time view of the instrument *set* (names sorted, so output
// order is stable); individual values are read atomically but not
// snapshotted as a group, which is the usual monitoring contract.

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4). Histogram buckets are cumulative
// with power-of-two le bounds in the histogram's native unit
// (nanoseconds for duration histograms). A nil registry writes
// nothing.
//
// Instrument names may carry an inline label set in Prometheus series
// syntax — `name{key="value"}`, typically built with LabeledName. The
// exposition treats everything before the brace as the metric family:
// the TYPE header names the family once, and each labeled series
// prints as its own sample line.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, histograms := r.instruments()
	typed := make(map[string]bool)
	header := func(name, kind string) error {
		base := baseName(name)
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	for _, name := range sortedKeys(counters) {
		if err := header(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if err := header(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(histograms) {
		h := histograms[name]
		if err := header(name, "histogram"); err != nil {
			return err
		}
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n",
				name, bucketBound(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.Count(), name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// HistogramBucket is one non-cumulative histogram bucket in the JSON
// exposition: LE is the inclusive upper bound, Count the observations
// that landed in this bucket alone.
type HistogramBucket struct {
	LE    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramDump is a histogram in the JSON exposition.
type HistogramDump struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Dump is the whole registry in exposition form.
type Dump struct {
	Counters   map[string]uint64        `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramDump `json:"histograms,omitempty"`
}

// Dump captures the registry's current values. A nil registry returns
// an empty dump.
func (r *Registry) Dump() Dump {
	var d Dump
	if r == nil {
		return d
	}
	counters, gauges, histograms := r.instruments()
	if len(counters) > 0 {
		d.Counters = make(map[string]uint64, len(counters))
		for name, c := range counters {
			d.Counters[name] = c.Value()
		}
	}
	if len(gauges) > 0 {
		d.Gauges = make(map[string]float64, len(gauges))
		for name, g := range gauges {
			d.Gauges[name] = g.Value()
		}
	}
	if len(histograms) > 0 {
		d.Histograms = make(map[string]HistogramDump, len(histograms))
		for name, h := range histograms {
			hd := HistogramDump{Count: h.Count(), Sum: h.Sum()}
			for i := 0; i < histBuckets; i++ {
				if n := h.buckets[i].Load(); n > 0 {
					hd.Buckets = append(hd.Buckets, HistogramBucket{LE: bucketBound(i), Count: n})
				}
			}
			d.Histograms[name] = hd
		}
	}
	return d
}

// WriteJSON writes the registry as indented JSON. A nil registry
// writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump())
}

// instruments copies the instrument maps under the registry lock;
// the *pointers* are shared, so values read afterwards are current.
func (r *Registry) instruments() (map[string]*Counter, map[string]*Gauge, map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	return counters, gauges, histograms
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatFloat renders a gauge value the way Prometheus expects:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LabeledName builds an instrument name carrying one Prometheus label
// — `name{key="value"}` — escaping the value per the text exposition
// rules. Labeled instruments register as independent series under one
// metric family (counters and gauges only; histogram sample suffixes
// do not compose with an inline label set).
func LabeledName(name, key, value string) string {
	var b strings.Builder
	b.Grow(len(name) + len(key) + len(value) + 5)
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// baseName strips an inline label set, returning the metric family a
// (possibly labeled) instrument name belongs to.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
