package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SnapshotSchema versions the BENCH_*.json layout so trajectory
// tooling can reject files it does not understand.
const SnapshotSchema = "wpbench-snapshot/v1"

// Grid describes the shape of one evaluation run: how many workloads
// were prepared and how the requested cells split between fresh
// simulations and run-cache hits.
type Grid struct {
	Workloads int    `json:"workloads"`
	Cells     uint64 `json:"cells"`
	Simulated uint64 `json:"simulated"`
	CacheHits uint64 `json:"cache_hits"`
	// Groups counts the single-pass multi-model groups the engine
	// formed (cells sharing a workload and fetch stream simulated by
	// one sim.RunMulti pass); CoalescedCells is how many of the
	// simulated cells were members of such groups. Both stay zero on
	// runs predating single-pass grouping or with it disabled, and are
	// then omitted from the JSON.
	Groups         uint64 `json:"groups,omitempty"`
	CoalescedCells uint64 `json:"coalesced_cells,omitempty"`
}

// Section is one timed phase of a run (prepare, each figure, each
// ablation), in execution order.
type Section struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Snapshot is the machine-readable record of one evaluation run —
// the payload of BENCH_wpbench.json. Derived fields (cells/sec,
// cache-hit ratio, instructions/sec) are computed by Finalize so the
// raw fields stay the single source of truth.
type Snapshot struct {
	Schema string `json:"schema"`
	// APIVersion records which wire-schema revision (api.Version) the
	// run's cells were described in, so snapshots written through
	// wpserved and offline runs stay comparable.
	APIVersion     string             `json:"api_version,omitempty"`
	Command        string             `json:"command"`
	GoVersion      string             `json:"go_version,omitempty"`
	UnixTime       int64              `json:"unix_time,omitempty"`
	Grid           Grid               `json:"grid"`
	WallSeconds    float64            `json:"wall_seconds"`
	CellsPerSecond float64            `json:"cells_per_second"`
	CacheHitRatio  float64            `json:"cache_hit_ratio"`
	Instructions   uint64             `json:"sim_instructions,omitempty"`
	InstrsPerSec   float64            `json:"sim_instructions_per_second,omitempty"`
	CellSecondsP50 float64            `json:"cell_seconds_p50,omitempty"`
	CellSecondsP95 float64            `json:"cell_seconds_p95,omitempty"`
	EnergyByScheme map[string]float64 `json:"energy_by_scheme,omitempty"`
	Sections       []Section          `json:"sections,omitempty"`
}

// Finalize computes the derived rate and ratio fields from the raw
// grid and wall-time fields.
func (s *Snapshot) Finalize() {
	if s.Schema == "" {
		s.Schema = SnapshotSchema
	}
	if s.WallSeconds > 0 {
		s.CellsPerSecond = float64(s.Grid.Cells) / s.WallSeconds
		s.InstrsPerSec = float64(s.Instructions) / s.WallSeconds
	}
	if s.Grid.Cells > 0 {
		s.CacheHitRatio = float64(s.Grid.CacheHits) / float64(s.Grid.Cells)
	}
}

// Encode writes the snapshot as indented JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshotFile reads a snapshot back, validating the schema tag.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("obs: %s: schema %q, want %q", path, s.Schema, SnapshotSchema)
	}
	return &s, nil
}
