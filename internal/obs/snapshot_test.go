package obs

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSnapshot() *Snapshot {
	s := &Snapshot{
		Command:      "wpbench",
		GoVersion:    "go1.22",
		UnixTime:     1700000000,
		Grid:         Grid{Workloads: 23, Cells: 1000, Simulated: 600, CacheHits: 400},
		WallSeconds:  40,
		Instructions: 2_000_000_000,
		EnergyByScheme: map[string]float64{
			"baseline": 1234.5, "wayplace": 600.25, "waymem": 900,
		},
		Sections: []Section{
			{Name: "prepare", Seconds: 5.5},
			{Name: "figure 4", Seconds: 12.25},
		},
		CellSecondsP50: 0.031,
		CellSecondsP95: 0.120,
	}
	s.Finalize()
	return s
}

func TestSnapshotFinalize(t *testing.T) {
	s := sampleSnapshot()
	if s.Schema != SnapshotSchema {
		t.Errorf("schema %q, want %q", s.Schema, SnapshotSchema)
	}
	if s.CellsPerSecond != 25 {
		t.Errorf("cells/sec = %v, want 25", s.CellsPerSecond)
	}
	if s.CacheHitRatio != 0.4 {
		t.Errorf("cache-hit ratio = %v, want 0.4", s.CacheHitRatio)
	}
	if want := 50_000_000.0; s.InstrsPerSec != want {
		t.Errorf("instrs/sec = %v, want %v", s.InstrsPerSec, want)
	}

	// Zero wall time and empty grid must not divide by zero.
	var z Snapshot
	z.Finalize()
	if math.IsNaN(z.CellsPerSecond) || math.IsNaN(z.CacheHitRatio) || math.IsNaN(z.InstrsPerSec) {
		t.Error("empty snapshot finalised to NaN")
	}
}

// TestSnapshotRoundTrip: WriteFile then ReadSnapshotFile must
// reproduce the snapshot exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_wpbench.json")
	want := sampleSnapshot()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadSnapshotRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	s := sampleSnapshot()
	s.Schema = "something-else/v9"
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}
