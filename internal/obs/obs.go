// Package obs is the lock-cheap observability layer for the
// experiment engine: counters, gauges and log-scale histograms behind
// a named registry, with Prometheus-text and JSON exposition and a
// machine-readable run snapshot (BENCH_*.json) so bench trajectories
// record grid shape, wall time and cache behaviour over the repo's
// history.
//
// Instruments are driven purely by atomics — the registry mutex
// guards registration, never updates — so concurrent simulation cells
// can bump counters without contending. Every method is nil-safe: a
// nil *Registry hands out nil instruments, and methods on nil
// instruments are no-ops that never allocate, so disabled metrics
// cost nothing on the per-cell hot path (TestNilRegistryAllocFree
// proves the zero-allocation property).
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move both ways (totals, in-flight
// levels, rates). Add is a CAS loop, so gauges stay lock-free under
// concurrent writers.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates v atomically.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is one bucket per possible bits.Len64 of an observation
// (0..64), i.e. log2-spaced bucket bounds. Bucket i holds values v
// with bits.Len64(v) == i: bucket 0 is exactly {0}, bucket i covers
// [2^(i-1), 2^i - 1].
const histBuckets = 65

// Histogram is a log-scale (power-of-two bucket) histogram over
// uint64 observations — nanosecond latencies in practice. Log spacing
// keeps it one fixed array regardless of range, so recording is two
// atomic adds and an atomic increment: cheap enough for per-cell
// spans.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative
// durations clamp to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.ObserveDuration(time.Since(start))
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Max returns the largest observation recorded, 0 when empty.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1):
// the upper bucket bound the target observation falls into, clamped
// to the maximum observed sample. The clamp matters at the top end —
// without it a p99 in the [2^30, 2^31) bucket reports ~2.1s even when
// the slowest sample was 1.1s, overstating tail latency by almost 2x.
// Under concurrent writers the answer is approximate (count, buckets
// and max are read without a barrier), which is fine for monitoring.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	bound := uint64(math.MaxUint64)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			bound = bucketBound(i)
			break
		}
	}
	if m := h.max.Load(); m < bound {
		bound = m
	}
	return bound
}

// bucketBound is the inclusive upper bound of bucket i.
func bucketBound(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << i) - 1
}

// Registry names and owns a set of instruments. Lookup is
// get-or-create under a mutex; callers resolve instruments once and
// hold the pointers, so the hot path never touches the registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}
