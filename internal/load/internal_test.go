package load

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wayplace/internal/api"
)

// TestZipfPickerSkew: the picker must hit rank 0 far harder than the
// tail and never leave [0,n) — that is what makes the pool's leading
// cells the run-cache hot set.
func TestZipfPickerSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, draws = 16, 20_000
	pick := newPicker(rng, 1.2, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		idx := pick()
		if idx < 0 || idx >= n {
			t.Fatalf("pick returned %d, outside [0,%d)", idx, n)
		}
		counts[idx]++
	}
	if counts[0] <= draws/4 {
		t.Errorf("rank 0 drew %d of %d — no hot set", counts[0], draws)
	}
	if counts[0] <= 4*counts[n-1] {
		t.Errorf("rank 0 (%d) not ≫ rank %d (%d) — distribution is flat", counts[0], n-1, counts[n-1])
	}
}

func TestPickerSingleEntryPool(t *testing.T) {
	pick := newPicker(rand.New(rand.NewSource(1)), 1.2, 1)
	for i := 0; i < 100; i++ {
		if got := pick(); got != 0 {
			t.Fatalf("single-entry pool picked %d", got)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	pool := Pool([]string{"w"}, SyntheticGeometry(), nil)
	for name, opt := range map[string]Options{
		"no base url": {Pool: pool},
		"empty pool":  {BaseURL: "http://127.0.0.1:1"},
		"bad churn":   {BaseURL: "http://127.0.0.1:1", Pool: pool, Churn: 1.5},
		"bad async":   {BaseURL: "http://127.0.0.1:1", Pool: pool, AsyncFraction: -0.1},
	} {
		if _, err := New(opt); err == nil {
			t.Errorf("New(%s): no error", name)
		}
	}
	if _, err := New(Options{BaseURL: "http://127.0.0.1:1", Pool: pool}); err != nil {
		t.Errorf("New(valid): %v", err)
	}
}

func TestSLOCheck(t *testing.T) {
	r := &Report{
		Batches:   100,
		HTTPP50:   40 * time.Millisecond,
		HTTPP99:   900 * time.Millisecond,
		CellP99:   200 * time.Millisecond,
		Rate429:   0.30,
		ErrorRate: 0.02,
	}

	pass := SLO{
		HTTPP50Max: 50 * time.Millisecond,
		HTTPP99Max: time.Second,
		CellP99Max: 500 * time.Millisecond,
		Max429Rate: 0.5, MaxErrorRate: 0.05,
	}
	if v := pass.Check(r); len(v) != 0 {
		t.Fatalf("passing SLO reported violations: %v", v)
	}

	fail := SLO{
		HTTPP50Max: 10 * time.Millisecond,
		HTTPP99Max: 100 * time.Millisecond,
		CellP99Max: 100 * time.Millisecond,
		Max429Rate: 0.1, MaxErrorRate: 0.01,
	}
	if v := fail.Check(r); len(v) != 5 {
		t.Fatalf("want all 5 SLOs violated, got %d: %v", len(v), v)
	}

	// Zero/negative fields are unchecked.
	if v := (SLO{Max429Rate: -1, MaxErrorRate: -1}).Check(r); len(v) != 0 {
		t.Fatalf("unchecked SLO reported violations: %v", v)
	}

	// An empty run never passes, whatever the envelope.
	if v := (SLO{Max429Rate: -1, MaxErrorRate: -1}).Check(&Report{}); len(v) == 0 {
		t.Fatal("zero-batch run passed the SLO check")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	opt := Options{
		BaseURL: "http://x", Pool: Pool([]string{"a", "b"}, SyntheticGeometry(), []uint32{1 << 10}),
	}
	opt.setDefaults()
	r := &Report{
		Elapsed: 2 * time.Second, Clients: opt.Clients,
		Requests: 1000, Batches: 900, Cells: 3600, Status429: 40, Retries: 38,
		Errors: 1, Aborts: 20, AsyncPolls: 500,
		HTTPP50: 8 * time.Millisecond, HTTPP99: 130 * time.Millisecond,
		Rate429: 0.04, ErrorRate: 0.0011,
	}
	slo := &SLO{HTTPP99Max: time.Second, Max429Rate: 0.5, MaxErrorRate: 0.01}
	snap := r.Snapshot("wpload -smoke", "loopback", api.Version, opt, slo)
	if !snap.SLO.Pass {
		t.Fatalf("snapshot SLO should pass, violations: %v", snap.SLO.Violations)
	}

	path := filepath.Join(t.TempDir(), "BENCH_wpload.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SnapshotSchema || got.Batches != 900 || got.Clients != opt.Clients {
		t.Fatalf("round trip mangled snapshot: %+v", got)
	}
	if got.HTTPP99() != r.HTTPP99 {
		t.Fatalf("p99 round trip: %v != %v", got.HTTPP99(), r.HTTPP99)
	}

	// A wpbench snapshot (or any foreign schema) must be rejected.
	bad := *snap
	bad.Schema = "wpbench-snapshot/v1"
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign schema accepted: %v", err)
	}
}

// TestCodedRetryDecisions: the retry loop trusts the machine-readable
// code over Retry-After sniffing — a coded retryable 429 without a
// header is retried, a coded permanent 429 with a header is not, and
// over_quota rejections are tallied on their own counter.
func TestCodedRetryDecisions(t *testing.T) {
	cases := []struct {
		name        string
		code        string
		retryable   bool
		retryHeader string
		wantBatch   bool   // submitWithRetry eventually succeeds
		wantRetries uint64 // load_retries_total after the call
		wantQuota   uint64 // load_http_over_quota_total after the call
	}{
		{"coded retryable without header", api.CodeQueueFull, true, "", true, 1, 0},
		{"coded permanent despite header", api.CodeBatchTooLarge, false, "1", false, 0, 0},
		{"over quota counted separately", api.CodeOverQuota, true, "0", true, 1, 1},
		{"pre-code server sniffs header", "", false, "0", true, 1, 0},
		{"pre-code server without header", "", false, "", false, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var calls atomic.Uint64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1) == 1 {
					if c.retryHeader != "" {
						w.Header().Set("Retry-After", c.retryHeader)
					}
					w.WriteHeader(http.StatusTooManyRequests)
					json.NewEncoder(w).Encode(api.ErrorResponse{
						Error: "busy", Code: c.code, Retryable: c.retryable,
					})
					return
				}
				json.NewEncoder(w).Encode(api.BatchResponse{
					APIVersion: api.Version, Status: api.StatusDone,
				})
			}))
			defer srv.Close()

			g, err := New(Options{BaseURL: srv.URL, Pool: Pool([]string{"w"}, SyntheticGeometry(), nil)})
			if err != nil {
				t.Fatal(err)
			}
			body, _ := json.Marshal(api.BatchRequest{APIVersion: api.Version, Requests: g.opt.Pool[:1]})
			rng := rand.New(rand.NewSource(1))
			_, ok := g.submitWithRetry(context.Background(), srv.Client(), rng, body)
			if ok != c.wantBatch {
				t.Errorf("submitWithRetry ok=%v, want %v", ok, c.wantBatch)
			}
			if got := g.retries.Value(); got != c.wantRetries {
				t.Errorf("retries = %d, want %d", got, c.wantRetries)
			}
			if got := g.overQuota.Value(); got != c.wantQuota {
				t.Errorf("over-quota counter = %d, want %d", got, c.wantQuota)
			}
			if !c.wantBatch && g.errors.Value() != 1 {
				t.Errorf("permanent rejection not counted as an error (errors=%d)", g.errors.Value())
			}
		})
	}
}

func TestPoolShape(t *testing.T) {
	pool := Pool([]string{"a", "b"}, SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
	if len(pool) != 8 {
		t.Fatalf("pool has %d cells, want 2 workloads × (2 schemes + 2 WP sizes) = 8", len(pool))
	}
	seen := map[string]bool{}
	for _, req := range pool {
		if err := req.Validate(); err != nil {
			t.Fatalf("pool cell invalid: %+v: %v", req, err)
		}
		key := req.Key()
		if seen[key] {
			t.Fatalf("duplicate canonical key %q in pool", key)
		}
		seen[key] = true
	}
}
