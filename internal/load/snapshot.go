package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// SnapshotSchema versions the BENCH_wpload.json layout, mirroring
// obs.SnapshotSchema for wpbench runs: trajectory tooling rejects
// files it does not understand.
const SnapshotSchema = "wpload-snapshot/v1"

// SLOResult records the envelope a run was checked against and the
// verdict, so a committed snapshot is self-describing: a reader needs
// no CLI flags to know what "pass" meant.
type SLOResult struct {
	HTTPP50MaxSeconds float64  `json:"http_p50_max_seconds,omitempty"`
	HTTPP99MaxSeconds float64  `json:"http_p99_max_seconds,omitempty"`
	CellP99MaxSeconds float64  `json:"cell_p99_max_seconds,omitempty"`
	Max429Rate        float64  `json:"max_429_rate"`
	MaxErrorRate      float64  `json:"max_error_rate"`
	Violations        []string `json:"violations,omitempty"`
	Pass              bool     `json:"pass"`
}

// Snapshot is the machine-readable record of one load run — the
// payload of BENCH_wpload.json.
type Snapshot struct {
	Schema     string `json:"schema"`
	APIVersion string `json:"api_version,omitempty"`
	Command    string `json:"command"`
	UnixTime   int64  `json:"unix_time,omitempty"`

	// Shape of the run.
	Target          string  `json:"target"` // "loopback" or the -addr URL
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	AsyncFraction   float64 `json:"async_fraction"`
	MaxBatchCells   int     `json:"max_batch_cells"`
	ZipfS           float64 `json:"zipf_s"`
	Churn           float64 `json:"churn"`
	PoolCells       int     `json:"pool_cells"`

	// What the clients saw.
	Requests   uint64 `json:"http_requests"`
	Batches    uint64 `json:"batches_done"`
	Cells      uint64 `json:"cells_done"`
	Status429  uint64 `json:"http_429"`
	Retries    uint64 `json:"retries"`
	Dropped    uint64 `json:"batches_dropped"`
	Errors     uint64 `json:"batch_errors"`
	Aborts     uint64 `json:"batches_aborted"`
	AsyncPolls uint64 `json:"async_polls"`

	HTTPP50Seconds  float64 `json:"http_p50_seconds"`
	HTTPP99Seconds  float64 `json:"http_p99_seconds"`
	BatchP50Seconds float64 `json:"batch_p50_seconds"`
	BatchP99Seconds float64 `json:"batch_p99_seconds"`
	CellP50Seconds  float64 `json:"cell_p50_seconds"`
	CellP99Seconds  float64 `json:"cell_p99_seconds"`

	Rate429          float64 `json:"rate_429"`
	ErrorRate        float64 `json:"error_rate"`
	BatchesPerSecond float64 `json:"batches_per_second"`
	CellsPerSecond   float64 `json:"cells_per_second"`

	SLO *SLOResult `json:"slo,omitempty"`
	// Fleet records the sharded-serving measurement when the run went
	// through a wpcoordd-style coordinator (wpload -fleet).
	Fleet *FleetSnapshot `json:"fleet,omitempty"`
	// Tenants records the hog-vs-polite fairness measurement
	// (wpload -tenants).
	Tenants *TenantsSnapshot `json:"tenants,omitempty"`
}

// FleetSnapshot is the fleet section of BENCH_wpload.json: the
// 1-vs-N cold-pool scaling measurement and the once-per-fleet cache
// invariant.
type FleetSnapshot struct {
	Backends             int     `json:"backends"`
	ScalePoolCells       int     `json:"scale_pool_cells"`
	PrepDelaySeconds     float64 `json:"prep_delay_seconds,omitempty"`
	HostCPUs             int     `json:"host_cpus,omitempty"`
	SingleCellsPerSecond float64 `json:"single_backend_cells_per_second"`
	FleetCellsPerSecond  float64 `json:"fleet_cells_per_second"`
	Speedup              float64 `json:"speedup"`
	MinSpeedup           float64 `json:"min_speedup,omitempty"`
	SimulatedCells       uint64  `json:"simulated_cells"`
	OncePerFleet         bool    `json:"once_per_fleet"`
}

// TenantLegSnapshot is one tenant's view of one fairness leg.
type TenantLegSnapshot struct {
	Tenant           string  `json:"tenant"`
	Batches          uint64  `json:"batches_done"`
	Dropped          uint64  `json:"batches_dropped,omitempty"`
	OverQuota        uint64  `json:"http_over_quota"`
	BatchesPerSecond float64 `json:"batches_per_second"`
	BatchP50Seconds  float64 `json:"batch_p50_seconds"`
	BatchP99Seconds  float64 `json:"batch_p99_seconds"`
}

// TenantsSnapshot is the fairness section of BENCH_wpload.json: the
// solo baseline, the hog's view, each polite tenant's view, and the
// gate verdict.
type TenantsSnapshot struct {
	Tenants             int                 `json:"tenants"`
	QueueDepth          int                 `json:"queue_depth"`
	TenantSlots         int                 `json:"tenant_slots"`
	ServiceDelaySeconds float64             `json:"service_delay_seconds"`
	Solo                TenantLegSnapshot   `json:"solo"`
	Hog                 TenantLegSnapshot   `json:"hog"`
	Polite              []TenantLegSnapshot `json:"polite"`
	Violations          []string            `json:"violations,omitempty"`
	Pass                bool                `json:"pass"`
}

func tenantLegSection(l TenantLeg) TenantLegSnapshot {
	return TenantLegSnapshot{
		Tenant:           l.Tenant,
		Batches:          l.Batches,
		Dropped:          l.Dropped,
		OverQuota:        l.OverQuota,
		BatchesPerSecond: l.BatchesPerSecond,
		BatchP50Seconds:  l.BatchP50.Seconds(),
		BatchP99Seconds:  l.BatchP99.Seconds(),
	}
}

// TenantsSection converts a fairness bench result for the snapshot.
func (r *TenantBenchResult) TenantsSection() *TenantsSnapshot {
	s := &TenantsSnapshot{
		Tenants:             r.Tenants,
		QueueDepth:          r.QueueDepth,
		TenantSlots:         r.TenantSlots,
		ServiceDelaySeconds: r.ServiceDelay.Seconds(),
		Solo:                tenantLegSection(r.Solo),
		Hog:                 tenantLegSection(r.Hog),
		Violations:          r.Violations,
		Pass:                len(r.Violations) == 0,
	}
	for _, p := range r.Polite {
		s.Polite = append(s.Polite, tenantLegSection(p))
	}
	return s
}

// FleetSection converts a bench result for the snapshot.
func (r *FleetBenchResult) FleetSection(minSpeedup float64) *FleetSnapshot {
	return &FleetSnapshot{
		Backends:             r.Backends,
		ScalePoolCells:       r.PoolCells,
		PrepDelaySeconds:     r.PrepDelay.Seconds(),
		HostCPUs:             r.HostCPUs,
		SingleCellsPerSecond: r.SingleCellsPerSecond,
		FleetCellsPerSecond:  r.FleetCellsPerSecond,
		Speedup:              r.Speedup,
		MinSpeedup:           minSpeedup,
		SimulatedCells:       r.SimulatedCells,
		OncePerFleet:         r.OncePerFleet,
	}
}

// Snapshot converts a Report into the persistent form. slo may be nil
// when the run asserted nothing.
func (r *Report) Snapshot(command, target, apiVersion string, opt Options, slo *SLO) *Snapshot {
	s := &Snapshot{
		Schema:     SnapshotSchema,
		APIVersion: apiVersion,
		Command:    command,
		Target:     target,

		Clients:         r.Clients,
		DurationSeconds: r.Elapsed.Seconds(),
		AsyncFraction:   opt.AsyncFraction,
		MaxBatchCells:   opt.MaxBatchCells,
		ZipfS:           opt.ZipfS,
		Churn:           opt.Churn,
		PoolCells:       len(opt.Pool),

		Requests:   r.Requests,
		Batches:    r.Batches,
		Cells:      r.Cells,
		Status429:  r.Status429,
		Retries:    r.Retries,
		Dropped:    r.Dropped,
		Errors:     r.Errors,
		Aborts:     r.Aborts,
		AsyncPolls: r.AsyncPolls,

		HTTPP50Seconds:  r.HTTPP50.Seconds(),
		HTTPP99Seconds:  r.HTTPP99.Seconds(),
		BatchP50Seconds: r.BatchP50.Seconds(),
		BatchP99Seconds: r.BatchP99.Seconds(),
		CellP50Seconds:  r.CellP50.Seconds(),
		CellP99Seconds:  r.CellP99.Seconds(),

		Rate429:          r.Rate429,
		ErrorRate:        r.ErrorRate,
		BatchesPerSecond: r.BatchesPerSecond,
		CellsPerSecond:   r.CellsPerSecond,
	}
	if slo != nil {
		violations := slo.Check(r)
		s.SLO = &SLOResult{
			HTTPP50MaxSeconds: slo.HTTPP50Max.Seconds(),
			HTTPP99MaxSeconds: slo.HTTPP99Max.Seconds(),
			CellP99MaxSeconds: slo.CellP99Max.Seconds(),
			Max429Rate:        slo.Max429Rate,
			MaxErrorRate:      slo.MaxErrorRate,
			Violations:        violations,
			Pass:              len(violations) == 0,
		}
	}
	return s
}

// Durations in the report round-trip through seconds in the snapshot;
// these accessors convert back for tooling that compares runs.
func (s *Snapshot) HTTPP50() time.Duration {
	return time.Duration(s.HTTPP50Seconds * float64(time.Second))
}
func (s *Snapshot) HTTPP99() time.Duration {
	return time.Duration(s.HTTPP99Seconds * float64(time.Second))
}

// Encode writes the snapshot as indented JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshotFile reads a snapshot back, validating the schema tag.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("load: %s: schema %q, want %q", path, s.Schema, SnapshotSchema)
	}
	return &s, nil
}
