// Fairness-harness tests: the TenantBench measurement end to end on a
// deliberately small configuration. Kept short for -race; cmd/wpload
// -tenants is where the full hog-vs-polite gate lives.
package load_test

import (
	"context"
	"testing"
	"time"

	"wayplace/internal/load"
)

// TestTenantBenchIsolation exercises the fairness measurement with a
// hog well past its quota. The bench's own gate must pass — each
// polite tenant's p99 within the solo band, throughput at its share —
// and the hog must actually have been told off, otherwise the run
// proved nothing. The band factors are far looser than the wpload
// -tenants defaults: under -race on a starved runner the hog's
// clients compete with the polite clients for CPU, not just for
// admission slots, which is client-side noise the real gate (plain
// binary, tier-1 -tenants-smoke) does not have.
func TestTenantBenchIsolation(t *testing.T) {
	res, err := load.TenantBench(context.Background(), load.TenantBenchOptions{
		Tenants:        3,
		Duration:       1200 * time.Millisecond,
		PoliteClients:  4,
		HogClients:     24,
		QueueDepth:     16,
		TenantSlots:    4,
		ServiceDelay:   4 * time.Millisecond,
		MaxP99Factor:   6,
		MinShareFactor: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("fairness gate violations: %v", res.Violations)
	}
	if res.Hog.OverQuota == 0 {
		t.Error("hog saw no over_quota rejections — the bench never engaged the quota")
	}
	if res.Solo.Batches == 0 || res.Hog.Batches == 0 {
		t.Errorf("empty legs: solo %d batches, hog %d batches", res.Solo.Batches, res.Hog.Batches)
	}
	for _, p := range res.Polite {
		if p.OverQuota != 0 {
			t.Errorf("%s absorbed %d over_quota rejections", p.Tenant, p.OverQuota)
		}
	}
}

// TestTenantBenchValidation: a 1-tenant bench has no hog/polite split
// to measure.
func TestTenantBenchValidation(t *testing.T) {
	if _, err := load.TenantBench(context.Background(), load.TenantBenchOptions{Tenants: 1}); err == nil {
		t.Fatal("Tenants=1 accepted, want error")
	}
}
