package load

import (
	"context"
	"os"
	"testing"
)

// TestMain lets the test binary double as the crash choreography's
// daemon child: re-exec'd with the crash env set, it serves instead
// of testing.
func TestMain(m *testing.M) {
	MaybeDaemonChild()
	os.Exit(m.Run())
}

// TestCrashRestart is the kill/restart durability gate from ROADMAP
// tier-1: SIGKILL a store-backed daemon holding accepted async jobs,
// restart it on the same directory, and require that every pre-kill
// job id resolves to byte-identical results and that a cold process
// serves the warm store without re-simulating anything.
func TestCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs subprocesses")
	}
	err := RunCrash(context.Background(), CrashOptions{
		Dir: t.TempDir(),
		Log: testWriter{t},
	})
	if err != nil {
		t.Fatal(err)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
