// Fleet-harness tests: StartFleet plumbing, the once-per-fleet
// invariant under generator load, the FleetBench scaling measurement,
// and the shared-transport keep-alive guarantee. Kept short and small
// for -race; cmd/wpload -fleet is where the 4-backend gate lives.
package load_test

import (
	"context"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/load"
	"wayplace/internal/serve"
)

func startFleet(t *testing.T, opt load.FleetOptions) *load.Fleet {
	t.Helper()
	f, err := load.StartFleet(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	})
	return f
}

// TestFleetOncePerFleetUnderLoad: a zipfian generator run against a
// 3-backend fleet must behave exactly like one against a single
// backend — zero errors — and the fleet as a whole must simulate each
// distinct pool cell at most once, however many times the hot keys
// are re-requested.
func TestFleetOncePerFleetUnderLoad(t *testing.T) {
	f := startFleet(t, load.FleetOptions{Backends: 3, Workloads: 2})
	pool := load.Pool(load.SyntheticNames(2), load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})

	// Deterministic phase first: the whole pool through the
	// coordinator, twice. Every cell lands on its ring owner and is
	// simulated exactly once fleet-wide; the second pass is all hits.
	client := serve.NewClient(f.URL)
	ctx := context.Background()
	for pass := 0; pass < 2; pass++ {
		resp, err := client.Run(ctx, pool)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
			t.Fatalf("pass %d: status %q, %d errors", pass, resp.Status, len(resp.Errors))
		}
	}
	if sim := f.SimulatedCells(); sim != uint64(len(pool)) {
		t.Fatalf("fleet simulated %d cells for a %d-cell pool", sim, len(pool))
	}

	// Then concurrent clients; nothing they do may force a second
	// simulation of a pool cell anywhere in the fleet.
	gen, err := load.New(load.Options{
		BaseURL: f.URL, Pool: pool,
		Clients: 16, Duration: 600 * time.Millisecond,
		AsyncFraction: 0.3, MaxBatchCells: 4, PollInterval: 2 * time.Millisecond,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := gen.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Batches == 0 {
		t.Fatal("no batch completed")
	}
	if r.Errors != 0 || r.Dropped != 0 {
		t.Fatalf("clean fleet run saw %d errors, %d dropped", r.Errors, r.Dropped)
	}
	if sim := f.SimulatedCells(); sim != uint64(len(pool)) {
		t.Errorf("generator load re-simulated cells: %d total for a %d-cell pool", sim, len(pool))
	}

	// The ring must actually spread the pool: with 12 cells on 3
	// backends every backend should have simulated something.
	for i, lb := range f.Backends {
		if lb.Engine.Misses() == 0 {
			t.Errorf("backend %d simulated nothing — the ring is not spreading the pool", i)
		}
	}
}

// TestFleetBenchScales exercises the scaling measurement end to end
// on a deliberately small pool. With latency-dominated cells even a
// single-core host must show a 2-backend fleet beating one backend;
// the floor here is well under the 2x ideal to stay honest on loaded
// CI runners.
func TestFleetBenchScales(t *testing.T) {
	// 150ms per preparation keeps the cells latency-dominated even
	// under -race, where the simulator's CPU share grows an order of
	// magnitude.
	res, err := load.FleetBench(context.Background(), load.FleetBenchOptions{
		Backends:   2,
		Workloads:  12,
		PrepDelay:  150 * time.Millisecond,
		MinSpeedup: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OncePerFleet {
		t.Errorf("bench reported once-per-fleet broken: %+v", res)
	}
	if res.SimulatedCells != uint64(res.PoolCells) {
		t.Errorf("bench simulated %d cells for a %d-cell pool", res.SimulatedCells, res.PoolCells)
	}
	if res.Speedup < 1.2 {
		t.Errorf("2-backend speedup %.2fx below asserted floor", res.Speedup)
	}
	if res.HostCPUs < 1 || res.PrepDelay != 150*time.Millisecond {
		t.Errorf("bench provenance not recorded: %+v", res)
	}
}

// TestGeneratorReusesConnections is the keep-alive gate: the shared
// pooled transport must serve a no-churn run over a handful of TCP
// connections, not one per request. The server-side accept counter is
// the ground truth.
func TestGeneratorReusesConnections(t *testing.T) {
	lb := startLoopback(t, load.LoopbackOptions{Workloads: 2})
	_, r := run(t, lb, load.Options{
		Clients: 16, Duration: 600 * time.Millisecond,
		AsyncFraction: 0.3, MaxBatchCells: 4, PollInterval: 2 * time.Millisecond,
		Churn: 0, Seed: 13,
	})
	conns := lb.Conns()
	if r.Requests < 100 {
		t.Fatalf("run too short to judge reuse: %d requests", r.Requests)
	}
	// 16 clients need ~16 warm connections; transient extras during
	// ramp-up are fine. What must never come back is
	// connection-per-request.
	if limit := uint64(16 * 4); conns > limit {
		t.Errorf("%d requests used %d TCP connections (> %d) — keep-alive/pooling is broken",
			r.Requests, conns, limit)
	}
	if conns == 0 {
		t.Error("accept counter saw no connections — the counting listener is not wired")
	}
}
