package load

import (
	"context"
	"fmt"
	"sync"

	"wayplace/internal/api"
	"wayplace/internal/asm"
	"wayplace/internal/engine"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/sim"
)

const textBase = 0x0001_0000

// buildSynthetic assembles one tiny benchmark with a hot kernel and a
// cold-handler tail (the same shape the serve tests use), sized by
// iters and handlers so each synthetic workload has a distinct fetch
// stream and therefore distinct canonical cell keys.
func buildSynthetic(name string, iters uint16, handlers int) *obj.Unit {
	b := asm.NewBuilder(name)
	buf := b.Zeros(256)

	f := b.Func("main")
	f.Call("setup")
	f.Movi(isa.R5, iters)
	f.Block("outer")
	f.Call("kernel")
	f.Subi(isa.R5, isa.R5, 1)
	f.Cmpi(isa.R5, 0)
	f.Bgt("outer")
	f.Halt()

	for i := 0; i < handlers; i++ {
		h := b.Func(fmt.Sprintf("cold_%d", i))
		for k := 0; k < 24; k++ {
			h.Addi(isa.R9, isa.R9, 1)
		}
		h.Ret()
	}

	s := b.Func("setup")
	s.Li(isa.R1, buf)
	s.Movi(isa.R2, 64)
	s.Block("fill")
	s.Str(isa.R2, isa.R1, 0)
	s.Addi(isa.R1, isa.R1, 4)
	s.Subi(isa.R2, isa.R2, 1)
	s.Cmpi(isa.R2, 0)
	s.Bgt("fill")
	s.Ret()

	k := b.Func("kernel")
	k.Li(isa.R1, buf)
	k.Movi(isa.R2, 64)
	k.Block("loop")
	k.Ldr(isa.R3, isa.R1, 0)
	k.Add(isa.R0, isa.R0, isa.R3)
	k.Addi(isa.R1, isa.R1, 4)
	k.Subi(isa.R2, isa.R2, 1)
	k.Cmpi(isa.R2, 0)
	k.Bgt("loop")
	k.Ret()

	return b.MustBuild()
}

// prepareSynthetic runs the full pipeline (link original, profile,
// relink placed) for one synthetic program.
func prepareSynthetic(name string, iters uint16, handlers int) (*engine.Workload, error) {
	u := buildSynthetic(name, iters, handlers)
	orig, err := layout.LinkOriginal(u, textBase)
	if err != nil {
		return nil, err
	}
	prof, _, err := sim.ProfileRun(orig, 50_000_000)
	if err != nil {
		return nil, err
	}
	placed, err := layout.Link(u, prof, textBase)
	if err != nil {
		return nil, err
	}
	return &engine.Workload{Name: name, Original: orig, Placed: placed}, nil
}

// SyntheticNames returns the workload names a SyntheticProvider(n)
// serves: synth0..synth<n-1>.
func SyntheticNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("synth%d", i)
	}
	return names
}

// SyntheticProvider is an engine.Provider over n tiny generated
// benchmarks. They prepare in milliseconds — the load harness wants a
// server whose per-cell cost is small enough that the serve path
// (queueing, encoding, run-cache lookups), not the simulator, is what
// the measurement stresses. Preparation is lazy and memoized, exactly
// like wpserved's real-benchmark provider.
func SyntheticProvider(n int) engine.Provider {
	var mu sync.Mutex
	cache := make(map[string]*engine.Workload)
	index := make(map[string]int, n)
	for i, name := range SyntheticNames(n) {
		index[name] = i
	}
	return func(ctx context.Context, name string) (*engine.Workload, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		i, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("load: no synthetic workload %q (have %d)", name, n)
		}
		mu.Lock()
		defer mu.Unlock()
		if w, ok := cache[name]; ok {
			return w, nil
		}
		// Distinct iteration counts and cold-tail lengths give every
		// workload its own fetch stream and key space.
		w, err := prepareSynthetic(name, uint16(120+i*40), 4+i%4)
		if err != nil {
			return nil, err
		}
		cache[name] = w
		return w, nil
	}
}

// SyntheticGeometry is the I-cache the synthetic pool runs on: small
// enough that way placement matters for programs this size.
func SyntheticGeometry() api.CacheGeometry {
	return api.CacheGeometry{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
}

// Pool builds the canonical cell pool the generator draws from: for
// every workload one baseline, one way-memoization and one
// way-placement cell per WP size. Pool order is rank order — the
// zipfian picker hits low indices hardest — so the hot set spans
// schemes and workloads the way a warm production cache would see
// them: the same canonical RunSpec keys over and over, with a long
// cold tail.
func Pool(workloads []string, icache api.CacheGeometry, wpSizes []uint32) []api.RunRequest {
	var pool []api.RunRequest
	for _, wl := range workloads {
		pool = append(pool,
			api.RunRequest{Workload: wl, ICache: icache, Scheme: api.SchemeBaseline},
			api.RunRequest{Workload: wl, ICache: icache, Scheme: api.SchemeWayMemoization},
		)
		for _, size := range wpSizes {
			pool = append(pool, api.RunRequest{
				Workload: wl, ICache: icache,
				Scheme: api.SchemeWayPlacement, WPSizeBytes: size,
			})
		}
	}
	return pool
}
