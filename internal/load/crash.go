package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/engine"
	"wayplace/internal/sim"
	"wayplace/internal/store"
)

// The kill/restart choreography needs a daemon it can SIGKILL, which
// rules out goroutines: only a separate process dies abruptly enough
// to prove the store and journal orderings. The harness re-execs its
// own binary as that process — MaybeDaemonChild, called first thing
// from main (and from the load package's TestMain), turns the child
// invocation into a store-backed loopback daemon and never returns.
const (
	crashDirEnv       = "WPLOAD_CRASH_DIR"
	crashWorkersEnv   = "WPLOAD_CRASH_WORKERS"
	crashWorkloadsEnv = "WPLOAD_CRASH_WORKLOADS"
)

// MaybeDaemonChild checks whether this process was re-exec'd as a
// crash-choreography daemon child and, if so, runs the daemon and
// exits. A no-op in ordinary invocations.
func MaybeDaemonChild() {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		return
	}
	os.Exit(runDaemonChild(dir))
}

func runDaemonChild(dir string) int {
	lb, err := StartLoopback(LoopbackOptions{
		Workloads: envInt(crashWorkloadsEnv, 3),
		Workers:   envInt(crashWorkersEnv, 1),
		StoreDir:  filepath.Join(dir, "store"),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash-child: %v\n", err)
		return 1
	}
	// Publish the URL only once the listener is live, atomically, so
	// the parent never reads a half-written file.
	urlPath := filepath.Join(dir, "url")
	tmp := urlPath + ".tmp"
	if err := os.WriteFile(tmp, []byte(lb.URL), 0o644); err == nil {
		err = os.Rename(tmp, urlPath)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash-child: %v\n", err)
		return 1
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	// Graceful exit: drain, flush the store, leave a clean journal.
	// The interesting exits are the ungraceful ones the parent forces
	// with SIGKILL, which never reach this code.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := lb.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "crash-child: %v\n", err)
		return 1
	}
	return 0
}

func envInt(name string, def int) int {
	if v, err := strconv.Atoi(os.Getenv(name)); err == nil && v > 0 {
		return v
	}
	return def
}

// CrashOptions configures one kill/restart choreography run.
type CrashOptions struct {
	// Dir is the scratch directory holding the store, journal and the
	// child's URL file. Empty means a fresh temp dir, removed again
	// when the choreography passes.
	Dir string
	// Exe is the binary to re-exec as the daemon child; empty means
	// os.Executable(). The binary's main (or TestMain) must call
	// MaybeDaemonChild.
	Exe string
	// Batches is how many distinct async batches are submitted before
	// the kill (default 6). Every batch covers the whole cell pool in
	// a rotated order, so each gets its own job id but the union of
	// work stays fixed and known.
	Batches int
	// Workloads sizes the synthetic pool (default 3 workloads, 4 cells
	// each).
	Workloads int
	// Timeout bounds the whole choreography (default 3 minutes).
	Timeout time.Duration
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// RunCrash is the kill/restart choreography, the durability proof for
// the store+journal design:
//
//  1. start a store-backed daemon child (one engine worker, so async
//     work backs up), submit async batches, collect the 202 job ids;
//  2. SIGKILL the child the moment the last 202 lands;
//  3. restart a child on the same directory and poll every pre-kill
//     id until it answers 200/done with results byte-identical to a
//     direct engine run of the same cells — no id a client holds may
//     be lost, no replayed result may differ;
//  4. stop the child gracefully, start a third (cold process memory,
//     warm store) and run the whole pool through it: its engine must
//     report zero cache misses, proving warm-store cells are loaded,
//     not re-simulated; finally fsck the store.
func RunCrash(ctx context.Context, opt CrashOptions) (err error) {
	if opt.Batches == 0 {
		opt.Batches = 6
	}
	if opt.Workloads == 0 {
		opt.Workloads = 3
	}
	if opt.Timeout == 0 {
		opt.Timeout = 3 * time.Minute
	}
	logw := opt.Log
	if logw == nil {
		logw = io.Discard
	}
	if opt.Exe == "" {
		exe, exeErr := os.Executable()
		if exeErr != nil {
			return fmt.Errorf("crash: %w", exeErr)
		}
		opt.Exe = exe
	}
	dir := opt.Dir
	if dir == "" {
		tmp, tmpErr := os.MkdirTemp("", "wpcrash-")
		if tmpErr != nil {
			return fmt.Errorf("crash: %w", tmpErr)
		}
		dir = tmp
		defer func() {
			if err == nil {
				os.RemoveAll(tmp)
			} else {
				fmt.Fprintf(logw, "crash: keeping %s for inspection\n", tmp)
			}
		}()
	}
	ctx, cancel := context.WithTimeout(ctx, opt.Timeout)
	defer cancel()

	// Every batch is the full pool in a rotated order: distinct job
	// ids (api.BatchKey hashes keys in request order), identical work
	// coverage, so phase 4 knows exactly which cells must be warm.
	pool := Pool(SyntheticNames(opt.Workloads), SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
	batches := make([][]api.RunRequest, opt.Batches)
	for i := range batches {
		r := i % len(pool)
		batches[i] = append(append([]api.RunRequest{}, pool[r:]...), pool[:r]...)
	}

	// Phase 1: daemon up, async batches in, ids durable.
	fmt.Fprintf(logw, "crash: phase 1: starting daemon child on %s\n", dir)
	child, url, err := startCrashChild(ctx, opt, dir)
	if err != nil {
		return err
	}
	ids := make([]string, len(batches))
	for i, reqs := range batches {
		resp, status, err := postBatch(ctx, url, api.BatchRequest{
			APIVersion: api.Version, Requests: reqs, Async: true,
		})
		if err != nil {
			child.kill()
			return fmt.Errorf("crash: async submit %d: %w", i, err)
		}
		if status != http.StatusAccepted || resp.JobID == "" {
			child.kill()
			return fmt.Errorf("crash: async submit %d: status %d, job id %q", i, status, resp.JobID)
		}
		ids[i] = resp.JobID
	}

	// Phase 2: SIGKILL — no drain, no flush, no goodbye.
	fmt.Fprintf(logw, "crash: phase 2: SIGKILL after %d accepted batches\n", len(ids))
	child.kill()

	// Phase 3: restart on the same directory; every pre-kill id must
	// come back, finish, and match a direct engine run byte for byte.
	fmt.Fprintf(logw, "crash: phase 3: restarting on the same store\n")
	child, url, err = startCrashChild(ctx, opt, dir)
	if err != nil {
		return err
	}
	want, err := referenceResults(ctx, opt.Workloads, pool)
	if err != nil {
		child.kill()
		return err
	}
	for i, id := range ids {
		resp, err := pollJob(ctx, url, id)
		if err != nil {
			child.kill()
			return fmt.Errorf("crash: job %s (batch %d): %w", id, i, err)
		}
		if err := checkBatch(batches[i], resp, want); err != nil {
			child.kill()
			return fmt.Errorf("crash: job %s (batch %d): %w", id, i, err)
		}
	}
	if err := child.stop(); err != nil {
		return err
	}

	// Phase 4: cold process, warm store. The whole pool must be served
	// without a single engine miss, and the store must fsck clean.
	fmt.Fprintf(logw, "crash: phase 4: cold restart, warm store: %d cells, expecting 0 misses\n", len(pool))
	child, url, err = startCrashChild(ctx, opt, dir)
	if err != nil {
		return err
	}
	resp, status, err := postBatch(ctx, url, api.BatchRequest{APIVersion: api.Version, Requests: pool})
	if err != nil || status != http.StatusOK {
		child.kill()
		return fmt.Errorf("crash: warm-store batch: status %d: %w", status, err)
	}
	if err := checkBatch(pool, resp, want); err != nil {
		child.kill()
		return fmt.Errorf("crash: warm-store batch: %w", err)
	}
	misses, err := healthzMisses(ctx, url)
	if err != nil {
		child.kill()
		return fmt.Errorf("crash: %w", err)
	}
	if misses != 0 {
		child.kill()
		return fmt.Errorf("crash: warm-store child re-simulated %d cells, want 0 (store loads must count as hits)", misses)
	}
	if err := child.stop(); err != nil {
		return err
	}
	rep, err := store.Fsck(filepath.Join(dir, "store"))
	if err != nil {
		return fmt.Errorf("crash: fsck: %w", err)
	}
	if len(rep.Corrupt) != 0 {
		return fmt.Errorf("crash: fsck: %d corrupt objects: %v", len(rep.Corrupt), rep.Corrupt)
	}
	fmt.Fprintf(logw, "crash: ok — %d jobs survived SIGKILL, %d store objects fsck clean\n", len(ids), rep.Objects)
	return nil
}

// crashChild is one running daemon child. exited carries the single
// cmd.Wait result — every shutdown path consumes it exactly once.
type crashChild struct {
	cmd    *exec.Cmd
	exited chan error
}

// kill SIGKILLs the child and reaps it. The wait error (signal:
// killed) is the expected outcome, not a failure.
func (c *crashChild) kill() {
	c.cmd.Process.Kill()
	<-c.exited
}

// stop asks the child to drain and flush (SIGTERM) and requires a
// clean exit — a child that cannot shut down gracefully would leave
// the next phase's premises unproven.
func (c *crashChild) stop() error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("crash: stopping child: %w", err)
	}
	if err := <-c.exited; err != nil {
		return fmt.Errorf("crash: child exited dirty on graceful stop: %w", err)
	}
	return nil
}

// startCrashChild re-execs the harness binary as a daemon child and
// waits for it to publish its URL.
func startCrashChild(ctx context.Context, opt CrashOptions, dir string) (*crashChild, string, error) {
	urlPath := filepath.Join(dir, "url")
	os.Remove(urlPath) // stale URL from a previous incarnation
	cmd := exec.Command(opt.Exe)
	cmd.Env = append(os.Environ(),
		crashDirEnv+"="+dir,
		crashWorkersEnv+"=1",
		crashWorkloadsEnv+"="+strconv.Itoa(opt.Workloads),
	)
	if opt.Log != nil {
		cmd.Stderr = opt.Log
	}
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("crash: starting child: %w", err)
	}
	child := &crashChild{cmd: cmd, exited: make(chan error, 1)}
	go func() { child.exited <- cmd.Wait() }()
	for {
		if data, err := os.ReadFile(urlPath); err == nil && len(data) > 0 {
			return child, string(bytes.TrimSpace(data)), nil
		}
		select {
		case err := <-child.exited:
			return nil, "", fmt.Errorf("crash: child exited before publishing its URL: %v", err)
		case <-ctx.Done():
			child.kill()
			return nil, "", fmt.Errorf("crash: waiting for child URL: %w", ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// referenceResults runs the whole pool on a fresh in-process engine —
// no HTTP, no store — and indexes the marshalled stats by cell key.
// This is the byte-identity oracle the replayed results must match.
func referenceResults(ctx context.Context, workloads int, pool []api.RunRequest) (map[string][]byte, error) {
	specs, err := api.ToSpecs(pool)
	if err != nil {
		return nil, fmt.Errorf("crash: reference: %w", err)
	}
	eng := engine.New(SyntheticProvider(workloads), engine.WithBaseConfig(sim.Default()))
	results, err := eng.Run(ctx, specs)
	if err != nil {
		return nil, fmt.Errorf("crash: reference: %w", err)
	}
	want := make(map[string][]byte, len(results))
	for i, res := range results {
		data, err := json.Marshal(res.Stats)
		if err != nil {
			return nil, fmt.Errorf("crash: reference: %w", err)
		}
		want[specs[i].Key()] = data
	}
	return want, nil
}

// checkBatch verifies a batch response is done, complete, error-free
// and byte-identical to the reference results, request by request.
func checkBatch(reqs []api.RunRequest, resp *api.BatchResponse, want map[string][]byte) error {
	if resp.Status != api.StatusDone {
		return fmt.Errorf("status %q, want %q", resp.Status, api.StatusDone)
	}
	if len(resp.Errors) != 0 {
		return fmt.Errorf("%d cell errors: %+v", len(resp.Errors), resp.Errors)
	}
	if len(resp.Results) != len(reqs) {
		return fmt.Errorf("%d results for %d requests", len(resp.Results), len(reqs))
	}
	for i, rr := range resp.Results {
		key := reqs[i].Key()
		if rr.Key != key {
			return fmt.Errorf("cell %d: key %q, want %q", i, rr.Key, key)
		}
		ref, ok := want[key]
		if !ok {
			return fmt.Errorf("cell %d: key %q not in reference set", i, key)
		}
		got, err := json.Marshal(rr.Stats)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, ref) {
			return fmt.Errorf("cell %d (%s): stats diverge from direct engine run:\n got  %s\n want %s", i, key, got, ref)
		}
	}
	return nil
}

// postBatch is one raw POST /v1/runs exchange, returning the decoded
// response and HTTP status. (serve.Client is sync-only; the
// choreography needs the 202 shell verbatim.)
func postBatch(ctx context.Context, baseURL string, breq api.BatchRequest) (*api.BatchResponse, int, error) {
	body, err := json.Marshal(breq)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK && httpResp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return nil, httpResp.StatusCode, fmt.Errorf("status %d: %s", httpResp.StatusCode, data)
	}
	var resp api.BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, httpResp.StatusCode, err
	}
	return &resp, httpResp.StatusCode, nil
}

// pollJob polls GET /v1/runs/{id} until the job reports a terminal
// status. A 404 is an immediate failure: the journal was supposed to
// make that id durable.
func pollJob(ctx context.Context, baseURL, id string) (*api.BatchResponse, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/runs/"+id, nil)
		if err != nil {
			return nil, err
		}
		httpResp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if httpResp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
			httpResp.Body.Close()
			return nil, fmt.Errorf("poll status %d: %s", httpResp.StatusCode, data)
		}
		var resp api.BatchResponse
		err = json.NewDecoder(httpResp.Body).Decode(&resp)
		httpResp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.Status == api.StatusDone || resp.Status == api.StatusFailed {
			return &resp, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("job still %q: %w", resp.Status, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// healthzMisses reads the engine miss counter off GET /healthz.
func healthzMisses(ctx context.Context, baseURL string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer httpResp.Body.Close()
	var h struct {
		CacheMisses uint64 `json:"cache_misses"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&h); err != nil {
		return 0, fmt.Errorf("healthz: %w", err)
	}
	return h.CacheMisses, nil
}
