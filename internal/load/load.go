// Package load is the concurrent-client load harness for wpserved.
// A Generator runs hundreds of independent clients against one
// daemon, each submitting batches drawn zipfian-hot from a fixed pool
// of canonical cells (so the warm run-cache path dominates, exactly
// like a production key distribution), mixing sync and async
// submissions, varying batch sizes, honouring 429 backpressure with
// capped Retry-After backoff, and — with churn — hanging up
// mid-request to exercise the server's abandoned-connection paths.
// Everything is instrumented through internal/obs; Report distils the
// run into the p50/p99 latencies and error rates that the SLO check
// and the BENCH_wpload.json snapshot assert on.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
)

// Metric names the generator registers. All are client-side views:
// load_http_request_ns is one HTTP round trip, load_batch_ns one
// batch end-to-end (submit, retries, async polls until done),
// load_cell_ns the batch wall time amortised per cell.
const (
	MetricRequestNS = "load_http_request_ns"
	MetricBatchNS   = "load_batch_ns"
	MetricCellNS    = "load_cell_ns"
	MetricRequests  = "load_http_requests_total"
	MetricBatches   = "load_batches_total"
	MetricCells     = "load_cells_total"
	Metric429       = "load_http_429_total"
	MetricOverQuota = "load_http_over_quota_total"
	MetricRetries   = "load_retries_total"
	MetricDropped   = "load_dropped_total"
	MetricErrors    = "load_errors_total"
	MetricAborts    = "load_aborts_total"
	MetricPolls     = "load_async_polls_total"
)

// Options configures a Generator. Zero values pick the documented
// defaults; only Pool and BaseURL are mandatory.
type Options struct {
	// BaseURL is the wpserved instance under load, e.g. the URL of a
	// Loopback or a real daemon's http://host:port.
	BaseURL string
	// Pool is the canonical cell pool, hottest first: client batches
	// are drawn from it with zipfian rank skew (see ZipfS).
	Pool []api.RunRequest

	Clients  int           // concurrent clients (default 200)
	Duration time.Duration // how long clients keep submitting (default 5s)

	// Tenant, when non-empty, stamps every request with the
	// X-WP-Tenant header, so the whole fleet is accounted (and
	// quota'd) as one tenant on the server.
	Tenant api.Tenant

	// AsyncFraction of batches submit with "async": true and poll
	// GET /v1/runs/{id} until done (default 0.25). Set SyncOnly to
	// suppress async submission entirely (0 here selects the default).
	AsyncFraction float64
	// SyncOnly forces every batch through the synchronous path — the
	// fairness bench uses it so batch latency measures admission
	// scheduling, not poll cadence.
	SyncOnly bool
	// MaxBatchCells bounds batch size; each batch holds uniform
	// 1..MaxBatchCells cells (default 8).
	MaxBatchCells int
	// ZipfS is the zipfian skew exponent over pool ranks; must be > 1
	// for rand.NewZipf, anything lower (including zero) becomes the
	// default 1.2. Larger is hotter.
	ZipfS float64
	// Churn is the probability a client abandons a submission
	// mid-request — cancelling the request context within ~2ms and
	// reconnecting fresh — to simulate client crashes and timeouts
	// (default 0).
	Churn float64

	// MaxRetries bounds resubmissions after 429 before the batch is
	// counted dropped (default 8). MaxRetryBackoff caps how much of
	// the server's Retry-After a client honours, so a short load run
	// is not parked forever by a 1s hint (default 250ms).
	MaxRetries      int
	MaxRetryBackoff time.Duration
	// PollInterval spaces async status polls (default 5ms).
	PollInterval time.Duration
	// BatchTimeout bounds one batch end-to-end, retries and polls
	// included (default 60s).
	BatchTimeout time.Duration

	// Registry receives the load_* instruments (default: a private
	// registry, readable via Generator.Registry).
	Registry *obs.Registry
	// Seed makes client RNGs deterministic (default 1).
	Seed int64
}

func (o *Options) setDefaults() {
	if o.Clients == 0 {
		o.Clients = 200
	}
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.AsyncFraction == 0 {
		o.AsyncFraction = 0.25
	}
	if o.SyncOnly {
		o.AsyncFraction = 0
	}
	if o.MaxBatchCells == 0 {
		o.MaxBatchCells = 8
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 8
	}
	if o.MaxRetryBackoff == 0 {
		o.MaxRetryBackoff = 250 * time.Millisecond
	}
	if o.PollInterval == 0 {
		o.PollInterval = 5 * time.Millisecond
	}
	if o.BatchTimeout == 0 {
		o.BatchTimeout = 60 * time.Second
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Generator drives Options.Clients concurrent clients for
// Options.Duration and reports what they saw.
type Generator struct {
	opt Options

	// transport is shared by every client: one keep-alive pool sized
	// for the whole fleet of clients (serve.NewTransport), so a steady
	// run reuses a bounded set of warm connections instead of cycling
	// an ephemeral port per request. Clients stay independent above it
	// — each owns its RNG and http.Client — but the sockets pool.
	transport *http.Transport

	requestNS *obs.Histogram
	batchNS   *obs.Histogram
	cellNS    *obs.Histogram
	requests  *obs.Counter
	batches   *obs.Counter
	cells     *obs.Counter
	status429 *obs.Counter
	overQuota *obs.Counter
	retries   *obs.Counter
	dropped   *obs.Counter
	errors    *obs.Counter
	aborts    *obs.Counter
	polls     *obs.Counter
}

// New validates opt and builds a Generator with its instruments
// registered on opt.Registry.
func New(opt Options) (*Generator, error) {
	opt.setDefaults()
	if opt.BaseURL == "" {
		return nil, errors.New("load: Options.BaseURL is required")
	}
	if len(opt.Pool) == 0 {
		return nil, errors.New("load: Options.Pool is empty")
	}
	if opt.Clients < 1 {
		return nil, fmt.Errorf("load: Clients %d < 1", opt.Clients)
	}
	if opt.Churn < 0 || opt.Churn > 1 {
		return nil, fmt.Errorf("load: Churn %v outside [0,1]", opt.Churn)
	}
	if opt.AsyncFraction < 0 || opt.AsyncFraction > 1 {
		return nil, fmt.Errorf("load: AsyncFraction %v outside [0,1]", opt.AsyncFraction)
	}
	r := opt.Registry
	return &Generator{
		opt:       opt,
		transport: serve.NewTransport(opt.Clients),
		requestNS: r.Histogram(MetricRequestNS),
		batchNS:   r.Histogram(MetricBatchNS),
		cellNS:    r.Histogram(MetricCellNS),
		requests:  r.Counter(MetricRequests),
		batches:   r.Counter(MetricBatches),
		cells:     r.Counter(MetricCells),
		status429: r.Counter(Metric429),
		overQuota: r.Counter(MetricOverQuota),
		retries:   r.Counter(MetricRetries),
		dropped:   r.Counter(MetricDropped),
		errors:    r.Counter(MetricErrors),
		aborts:    r.Counter(MetricAborts),
		polls:     r.Counter(MetricPolls),
	}, nil
}

// Registry returns the registry holding the generator's instruments.
func (g *Generator) Registry() *obs.Registry { return g.opt.Registry }

// Run drives the full client fleet until Options.Duration elapses (or
// ctx is cancelled first) and returns the distilled Report. Batches
// in flight at the deadline are cut off and counted in neither the
// success nor the error totals.
func (g *Generator) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	rctx, cancel := context.WithTimeout(ctx, g.opt.Duration)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < g.opt.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g.runClient(rctx, id)
		}(i)
	}
	wg.Wait()
	g.transport.CloseIdleConnections()
	return g.report(time.Since(start)), nil
}

// newPicker returns a zipfian rank picker over [0,n): rank 0 is the
// hottest pool entry. Split out so the skew itself is testable.
func newPicker(rng *rand.Rand, s float64, n int) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// runClient is one client's life: build a batch, submit it (sync or
// async), repeat until the run ends. Each client owns its RNG; the
// HTTP connections pool in the generator's shared transport.
func (g *Generator) runClient(ctx context.Context, id int) {
	rng := rand.New(rand.NewSource(g.opt.Seed + 7919*int64(id)))
	pick := newPicker(rng, g.opt.ZipfS, len(g.opt.Pool))
	client := &http.Client{Transport: g.transport}

	for ctx.Err() == nil {
		n := 1 + rng.Intn(g.opt.MaxBatchCells)
		reqs := make([]api.RunRequest, n)
		for i := range reqs {
			reqs[i] = g.opt.Pool[pick()]
		}
		async := rng.Float64() < g.opt.AsyncFraction
		abort := rng.Float64() < g.opt.Churn
		g.oneBatch(ctx, client, rng, reqs, async, abort)
	}
}

// oneBatch submits one batch and follows it to completion: retry
// loop on 429, poll loop when async, context hang-up when this
// client is churning.
func (g *Generator) oneBatch(ctx context.Context, client *http.Client, rng *rand.Rand, reqs []api.RunRequest, async, abort bool) {
	body, err := json.Marshal(api.BatchRequest{APIVersion: api.Version, Requests: reqs, Async: async})
	if err != nil {
		g.errors.Inc()
		return
	}
	bctx, cancel := context.WithTimeout(ctx, g.opt.BatchTimeout)
	defer cancel()

	if abort {
		// Churn: hang up mid-request (0–2ms in) and reconnect fresh.
		// Whatever the server had done so far is abandoned; the only
		// record is the abort counter. Cancelling the context kills
		// this request's own connection — the shared transport's other
		// pooled connections (other clients' warm sockets) are
		// untouched, exactly like one process crashing out of a fleet.
		actx, acancel := context.WithCancel(bctx)
		timer := time.AfterFunc(time.Duration(rng.Int63n(int64(2*time.Millisecond))), acancel)
		g.exchange(actx, client, http.MethodPost, "/v1/runs", body)
		timer.Stop()
		acancel()
		g.aborts.Inc()
		return
	}

	start := time.Now()
	resp, ok := g.submitWithRetry(bctx, client, rng, body)
	if !ok {
		return // counted as dropped or errored inside
	}
	if async {
		if resp, ok = g.pollUntilDone(bctx, client, resp.JobID); !ok {
			return
		}
	}
	wall := time.Since(start)
	if resp.Status != api.StatusDone {
		g.errors.Inc()
		return
	}
	g.batches.Inc()
	g.cells.Add(uint64(len(reqs)))
	g.batchNS.ObserveDuration(wall)
	per := wall / time.Duration(len(reqs))
	for range reqs {
		g.cellNS.ObserveDuration(per)
	}
}

// submitWithRetry POSTs the batch, resubmitting after 429 with the
// server's Retry-After (capped at MaxRetryBackoff, jittered ±50% so
// retries from a fleet of clients do not re-align into the next
// burst). Returns ok=false once the batch is accounted for as
// dropped or errored.
func (g *Generator) submitWithRetry(ctx context.Context, client *http.Client, rng *rand.Rand, body []byte) (*api.BatchResponse, bool) {
	for attempt := 0; ; attempt++ {
		status, br, retryAfter, retryable, err := g.exchange(ctx, client, http.MethodPost, "/v1/runs", body)
		if err != nil {
			if ctx.Err() == nil {
				g.errors.Inc()
			}
			return nil, false
		}
		if status != http.StatusTooManyRequests {
			return br, true
		}
		if !retryable {
			// 429 without a parseable Retry-After is the server's
			// "never": the batch itself is oversized, resubmitting
			// cannot help. (Retry-After: 0 is NOT this case — it is a
			// valid hint to retry immediately.)
			g.errors.Inc()
			return nil, false
		}
		if attempt >= g.opt.MaxRetries {
			g.dropped.Inc()
			return nil, false
		}
		g.retries.Inc()
		backoff := retryAfter
		if backoff > g.opt.MaxRetryBackoff {
			backoff = g.opt.MaxRetryBackoff
		}
		if backoff > 0 {
			backoff = backoff/2 + time.Duration(rng.Int63n(int64(backoff)+1))/2
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, false
		}
	}
}

// pollUntilDone follows an accepted async job until it reports done
// or failed. A 404 here is exactly the orphaned-202 bug the harness
// exists to catch, and lands in load_errors_total.
func (g *Generator) pollUntilDone(ctx context.Context, client *http.Client, jobID string) (*api.BatchResponse, bool) {
	for {
		select {
		case <-time.After(g.opt.PollInterval):
		case <-ctx.Done():
			return nil, false
		}
		g.polls.Inc()
		status, br, _, _, err := g.exchange(ctx, client, http.MethodGet, "/v1/runs/"+jobID, nil)
		if err != nil {
			if ctx.Err() == nil {
				g.errors.Inc()
			}
			return nil, false
		}
		if status == http.StatusTooManyRequests {
			continue
		}
		switch br.Status {
		case api.StatusDone, api.StatusFailed:
			return br, true
		}
	}
}

// exchange is one instrumented HTTP round trip. 200/202 parse into a
// BatchResponse; 429 returns the Retry-After hint in either RFC 9110
// form plus whether one was present at all; anything else is an error
// carrying the server's message.
func (g *Generator) exchange(ctx context.Context, client *http.Client, method, path string, body []byte) (int, *api.BatchResponse, time.Duration, bool, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, g.opt.BaseURL+path, rd)
	if err != nil {
		return 0, nil, 0, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if g.opt.Tenant != "" {
		req.Header.Set(api.TenantHeader, string(g.opt.Tenant))
	}
	start := time.Now()
	httpResp, err := client.Do(req)
	g.requests.Inc()
	if err != nil {
		g.requestNS.ObserveSince(start)
		return 0, nil, 0, false, err
	}
	defer httpResp.Body.Close()
	switch httpResp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var br api.BatchResponse
		err := json.NewDecoder(httpResp.Body).Decode(&br)
		// Drain the residual body (trailing newline, chunk terminator)
		// so the transport sees EOF and pools the connection; an
		// undrained body closes the socket instead of reusing it.
		io.Copy(io.Discard, httpResp.Body)
		g.requestNS.ObserveSince(start)
		if err != nil {
			return httpResp.StatusCode, nil, 0, false, fmt.Errorf("load: decoding %d body: %w", httpResp.StatusCode, err)
		}
		return httpResp.StatusCode, &br, 0, false, nil
	case http.StatusTooManyRequests:
		// Decode the coded error body: a code-aware server states
		// retryability outright (and names over_quota rejections, which
		// are this tenant's own doing, separately from global
		// queue_full backpressure). A pre-code server's 429 falls back
		// to the historical contract — retryable iff a Retry-After hint
		// was present.
		var eresp api.ErrorResponse
		json.NewDecoder(io.LimitReader(httpResp.Body, 4096)).Decode(&eresp)
		io.Copy(io.Discard, httpResp.Body)
		g.requestNS.ObserveSince(start)
		g.status429.Inc()
		if eresp.Code == api.CodeOverQuota {
			g.overQuota.Inc()
		}
		retry, ok := api.ParseRetryAfter(httpResp.Header.Get("Retry-After"), time.Now())
		if eresp.Code != "" {
			ok = eresp.Retryable
		}
		return httpResp.StatusCode, nil, retry, ok, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		g.requestNS.ObserveSince(start)
		return httpResp.StatusCode, nil, 0, false, fmt.Errorf("load: %s %s: status %d: %s", method, path, httpResp.StatusCode, bytes.TrimSpace(msg))
	}
}

// Report distils one load run. Latency quantiles come from the obs
// histograms: the upper bound of the power-of-two bucket the target
// sample falls into, clamped to the slowest sample actually observed
// — conservative, never flattering, but never reporting a tail beyond
// anything that happened.
type Report struct {
	Elapsed time.Duration
	Clients int

	Requests   uint64 // HTTP round trips, all kinds
	Batches    uint64 // batches completed with status done
	Cells      uint64 // cells inside completed batches
	Status429  uint64 // backpressured responses observed
	OverQuota  uint64 // 429s carrying code=over_quota (our own quota)
	Retries    uint64 // resubmissions after a 429
	Dropped    uint64 // batches given up after MaxRetries
	Errors     uint64 // batches ending in transport/decode/non-done errors
	Aborts     uint64 // batches abandoned mid-request by churn
	AsyncPolls uint64 // GET /v1/runs/{id} polls issued

	HTTPP50, HTTPP99   time.Duration // per HTTP round trip
	BatchP50, BatchP99 time.Duration // per batch end-to-end
	CellP50, CellP99   time.Duration // batch wall amortised per cell

	Rate429          float64 // Status429 / Requests
	ErrorRate        float64 // Errors / batches reaching a verdict
	BatchesPerSecond float64
	CellsPerSecond   float64
}

func (g *Generator) report(elapsed time.Duration) *Report {
	r := &Report{
		Elapsed:    elapsed,
		Clients:    g.opt.Clients,
		Requests:   g.requests.Value(),
		Batches:    g.batches.Value(),
		Cells:      g.cells.Value(),
		Status429:  g.status429.Value(),
		OverQuota:  g.overQuota.Value(),
		Retries:    g.retries.Value(),
		Dropped:    g.dropped.Value(),
		Errors:     g.errors.Value(),
		Aborts:     g.aborts.Value(),
		AsyncPolls: g.polls.Value(),
		HTTPP50:    time.Duration(g.requestNS.Quantile(0.50)),
		HTTPP99:    time.Duration(g.requestNS.Quantile(0.99)),
		BatchP50:   time.Duration(g.batchNS.Quantile(0.50)),
		BatchP99:   time.Duration(g.batchNS.Quantile(0.99)),
		CellP50:    time.Duration(g.cellNS.Quantile(0.50)),
		CellP99:    time.Duration(g.cellNS.Quantile(0.99)),
	}
	if r.Requests > 0 {
		r.Rate429 = float64(r.Status429) / float64(r.Requests)
	}
	if verdicts := r.Batches + r.Errors + r.Dropped; verdicts > 0 {
		r.ErrorRate = float64(r.Errors) / float64(verdicts)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		r.BatchesPerSecond = float64(r.Batches) / secs
		r.CellsPerSecond = float64(r.Cells) / secs
	}
	return r
}

// SLO is the acceptance envelope a Report is checked against. Zero
// duration fields and negative rate fields are unchecked.
type SLO struct {
	HTTPP50Max   time.Duration
	HTTPP99Max   time.Duration
	CellP99Max   time.Duration
	Max429Rate   float64
	MaxErrorRate float64
}

// Check returns one human-readable violation per SLO the report
// misses; empty means the run passed.
func (s SLO) Check(r *Report) []string {
	var v []string
	if r.Batches == 0 {
		v = append(v, "no batch completed — the run measured nothing")
	}
	if s.HTTPP50Max > 0 && r.HTTPP50 > s.HTTPP50Max {
		v = append(v, fmt.Sprintf("http p50 %v > max %v", r.HTTPP50, s.HTTPP50Max))
	}
	if s.HTTPP99Max > 0 && r.HTTPP99 > s.HTTPP99Max {
		v = append(v, fmt.Sprintf("http p99 %v > max %v", r.HTTPP99, s.HTTPP99Max))
	}
	if s.CellP99Max > 0 && r.CellP99 > s.CellP99Max {
		v = append(v, fmt.Sprintf("cell p99 %v > max %v", r.CellP99, s.CellP99Max))
	}
	if s.Max429Rate >= 0 && r.Rate429 > s.Max429Rate {
		v = append(v, fmt.Sprintf("429 rate %.3f > max %.3f", r.Rate429, s.Max429Rate))
	}
	if s.MaxErrorRate >= 0 && r.ErrorRate > s.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f > max %.4f (%d errors)", r.ErrorRate, s.MaxErrorRate, r.Errors))
	}
	return v
}
