package load

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/serve"
)

// TenantBenchOptions configures one multi-tenant fairness
// measurement: a solo baseline leg, then a contended leg where one
// hog fleet tries to saturate the server while polite fleets keep
// their modest cadence.
type TenantBenchOptions struct {
	// Tenants is the contended leg's tenant count: 1 hog plus
	// Tenants-1 polite fleets. Default 4, minimum 2.
	Tenants int
	// Duration of each leg (default 3s).
	Duration time.Duration
	// PoliteClients is each polite tenant's concurrent client count
	// (default 6) — comfortably inside TenantSlots, the way a
	// well-behaved team uses a shared server. HogClients (default 96)
	// is the hog's — an order of magnitude past its quota.
	PoliteClients int
	HogClients    int
	// QueueDepth / TenantSlots / AdmitWait shape the server under
	// test (defaults 32 / 8 / 400ms). TenantSlots bounds what the hog
	// can hold; AdmitWait lets briefly-contended polite batches park
	// instead of bouncing.
	QueueDepth  int
	TenantSlots int
	AdmitWait   time.Duration
	// ServiceDelay is the artificial per-cell service time (default
	// 3ms). Warm cells answer in microseconds, so without a floor on
	// slot occupancy nothing would ever contend and the bench would
	// measure HTTP overhead, not scheduling.
	ServiceDelay time.Duration
	// MaxP99Factor bounds each polite tenant's contended batch p99 at
	// MaxP99Factor x its solo baseline (default 2.0; an absolute
	// 100ms grace on top absorbs the power-of-two histogram-bucket
	// quantisation on fast hosts). MinShareFactor bounds each polite
	// tenant's contended throughput at MinShareFactor x its solo
	// throughput (default 0.7).
	MaxP99Factor   float64
	MinShareFactor float64
	// Log receives progress lines (nil = quiet).
	Log io.Writer
}

// p99Grace absorbs histogram-bucket quantisation: solo and contended
// p99s land in power-of-two buckets, so on a fast host one bucket
// step can exceed MaxP99Factor alone without meaning anything.
const p99Grace = 100 * time.Millisecond

// TenantLeg is what one tenant's fleet saw during one leg.
type TenantLeg struct {
	Tenant           string
	Batches          uint64
	Dropped          uint64
	OverQuota        uint64 // 429s coded over_quota — this tenant's own doing
	BatchesPerSecond float64
	BatchP50         time.Duration
	BatchP99         time.Duration
}

// TenantBenchResult is the measured outcome, snapshot-ready.
type TenantBenchResult struct {
	Tenants      int
	QueueDepth   int
	TenantSlots  int
	ServiceDelay time.Duration

	Solo       TenantLeg   // one polite fleet, empty server
	Hog        TenantLeg   // the hog during the contended leg
	Polite     []TenantLeg // each polite tenant during the contended leg
	Violations []string    // empty means the fairness gate passed
}

// TenantBench measures quota isolation end to end: leg one runs a
// single polite fleet against an idle (but identically configured)
// server for its baseline latency and throughput; leg two adds a hog
// fleet an order of magnitude past its quota plus Tenants-1 polite
// fleets, all concurrently. The gate asserts each polite tenant kept
// its solo-like service — p99 within MaxP99Factor of baseline,
// throughput within MinShareFactor — while the hog, and only the
// hog, absorbed over_quota rejections.
func TenantBench(ctx context.Context, opt TenantBenchOptions) (*TenantBenchResult, error) {
	if opt.Tenants == 0 {
		opt.Tenants = 4
	}
	if opt.Tenants < 2 {
		return nil, fmt.Errorf("load: tenant bench needs >= 2 tenants (1 hog + polite), got %d", opt.Tenants)
	}
	if opt.Duration == 0 {
		opt.Duration = 3 * time.Second
	}
	if opt.PoliteClients == 0 {
		opt.PoliteClients = 6
	}
	if opt.HogClients == 0 {
		opt.HogClients = 96
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 32
	}
	if opt.TenantSlots == 0 {
		opt.TenantSlots = 8
	}
	if opt.AdmitWait == 0 {
		opt.AdmitWait = 400 * time.Millisecond
	}
	if opt.ServiceDelay == 0 {
		opt.ServiceDelay = 3 * time.Millisecond
	}
	if opt.MaxP99Factor == 0 {
		opt.MaxP99Factor = 2.0
	}
	if opt.MinShareFactor == 0 {
		opt.MinShareFactor = 0.7
	}

	boot := func() (*Loopback, error) {
		return StartLoopback(LoopbackOptions{
			QueueDepth:   opt.QueueDepth,
			ServiceDelay: opt.ServiceDelay,
			// A short per-tenant hint: over-quota is the tenant's own
			// transient state, worth re-probing sooner than a full
			// global backoff.
			Tenancy: serve.TenancyOptions{
				Slots:      opt.TenantSlots,
				AdmitWait:  opt.AdmitWait,
				RetryAfter: 50 * time.Millisecond,
			},
		})
	}

	// Leg one: one polite fleet, empty server — the baseline every
	// contended polite tenant is held to.
	lb, err := boot()
	if err != nil {
		return nil, err
	}
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "wpload: tenant bench: solo leg: %d polite clients for %v...\n",
			opt.PoliteClients, opt.Duration)
	}
	solo, err := runTenantFleet(ctx, lb.URL, "polite-0", opt.PoliteClients, opt)
	closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	lb.Close(closeCtx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("load: solo leg: %w", err)
	}
	if solo.Batches == 0 {
		return nil, fmt.Errorf("load: solo leg completed no batches — nothing to compare against")
	}

	// Leg two: hog + polite fleets concurrently against a fresh,
	// identically configured server.
	lb, err = boot()
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		lb.Close(ctx)
	}()
	polite := opt.Tenants - 1
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "wpload: tenant bench: contended leg: 1 hog (%d clients) + %d polite (%d clients each) for %v...\n",
			opt.HogClients, polite, opt.PoliteClients, opt.Duration)
	}
	legs := make([]TenantLeg, 1+polite)
	errs := make([]error, 1+polite)
	var wg sync.WaitGroup
	wg.Add(1 + polite)
	go func() {
		defer wg.Done()
		legs[0], errs[0] = runTenantFleet(ctx, lb.URL, "hog", opt.HogClients, opt)
	}()
	for i := 1; i <= polite; i++ {
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("polite-%d", i)
			legs[i], errs[i] = runTenantFleet(ctx, lb.URL, tenant, opt.PoliteClients, opt)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("load: contended leg, fleet %d: %w", i, err)
		}
	}

	res := &TenantBenchResult{
		Tenants:      opt.Tenants,
		QueueDepth:   opt.QueueDepth,
		TenantSlots:  opt.TenantSlots,
		ServiceDelay: opt.ServiceDelay,
		Solo:         solo,
		Hog:          legs[0],
		Polite:       legs[1:],
	}
	res.Violations = tenantGate(res, opt)
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "wpload: tenant bench: solo %.0f batches/s p99 %v; hog %.0f batches/s (%d over-quota)\n",
			solo.BatchesPerSecond, solo.BatchP99, legs[0].BatchesPerSecond, legs[0].OverQuota)
		for _, p := range res.Polite {
			fmt.Fprintf(opt.Log, "wpload: tenant bench: %s %.0f batches/s p99 %v (%d over-quota)\n",
				p.Tenant, p.BatchesPerSecond, p.BatchP99, p.OverQuota)
		}
	}
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("load: fairness gate: %d violation(s): %v", len(res.Violations), res.Violations)
	}
	return res, nil
}

// runTenantFleet drives one tenant's client fleet for one leg and
// distils its view.
func runTenantFleet(ctx context.Context, url, tenant string, clients int, opt TenantBenchOptions) (TenantLeg, error) {
	g, err := New(Options{
		BaseURL:  url,
		Pool:     Pool(SyntheticNames(4), SyntheticGeometry(), nil),
		Tenant:   api.Tenant(tenant),
		Clients:  clients,
		Duration: opt.Duration,
		SyncOnly: true,
		// Over-quota hints are ~50ms; honour them fully so the hog
		// keeps probing at the server's own cadence.
		MaxRetryBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		return TenantLeg{}, err
	}
	r, err := g.Run(ctx)
	if err != nil {
		return TenantLeg{}, err
	}
	return TenantLeg{
		Tenant:           tenant,
		Batches:          r.Batches,
		Dropped:          r.Dropped,
		OverQuota:        r.OverQuota,
		BatchesPerSecond: r.BatchesPerSecond,
		BatchP50:         r.BatchP50,
		BatchP99:         r.BatchP99,
	}, nil
}

// tenantGate is the fairness acceptance check.
func tenantGate(res *TenantBenchResult, opt TenantBenchOptions) []string {
	var v []string
	if res.Hog.OverQuota == 0 {
		v = append(v, "hog saw no over_quota rejections — the quota never engaged")
	}
	p99Limit := time.Duration(float64(res.Solo.BatchP99)*opt.MaxP99Factor) + p99Grace
	shareFloor := res.Solo.BatchesPerSecond * opt.MinShareFactor
	for _, p := range res.Polite {
		if p.Batches == 0 {
			v = append(v, fmt.Sprintf("%s completed no batches", p.Tenant))
			continue
		}
		if p.BatchP99 > p99Limit {
			v = append(v, fmt.Sprintf("%s p99 %v > %.1fx solo baseline %v (+%v grace)",
				p.Tenant, p.BatchP99, opt.MaxP99Factor, res.Solo.BatchP99, p99Grace))
		}
		if p.BatchesPerSecond < shareFloor {
			v = append(v, fmt.Sprintf("%s throughput %.0f batches/s < %.0f%% of solo baseline %.0f",
				p.Tenant, p.BatchesPerSecond, 100*opt.MinShareFactor, res.Solo.BatchesPerSecond))
		}
		if p.OverQuota > 0 {
			v = append(v, fmt.Sprintf("%s absorbed %d over_quota rejections — a polite tenant should never hit its own quota",
				p.Tenant, p.OverQuota))
		}
	}
	return v
}
