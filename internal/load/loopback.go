package load

import (
	"context"
	"net"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"time"

	"wayplace/internal/check"
	"wayplace/internal/engine"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
	"wayplace/internal/sim"
	"wayplace/internal/store"
)

// LoopbackOptions sizes the in-process wpserved a load run targets
// when no external daemon is given. Zero values pick defaults tuned
// for load testing rather than for real experiments: many queue
// slots, a short Retry-After so backoff fits inside short runs, and
// tiny synthetic workloads so the serve path, not the simulator, is
// the bottleneck under measurement.
type LoopbackOptions struct {
	Workloads     int           // synthetic workloads to serve (default 4)
	Workers       int           // engine workers (default GOMAXPROCS)
	QueueDepth    int           // serve queue slots (default 64)
	AsyncSlots    int           // async slot cap (default QueueDepth-1)
	MaxBatchCells int           // per-batch cell cap (default serve's 4096)
	JobTTL        time.Duration // async job eviction TTL (default serve's 10m)
	RetryAfter    time.Duration // 429 backoff hint (default 1s; serve rounds up to whole seconds on the wire)
	// PrepDelay, when > 0, adds a fixed latency to every workload
	// preparation, modelling what dominates a production backend's
	// cold-cell service time: fetching the binary, reading profiles,
	// hitting the store. Scaling benches need it — on a CPU-starved
	// host a purely CPU-bound backend cannot show fleet parallelism no
	// matter how well the coordinator overlaps its sub-batches.
	PrepDelay time.Duration
	// Verify installs check.VerifyCell on the engine. Off by default:
	// the checker re-verifies every cell on every request including
	// run-cache hits, which under thousands of hot-key requests would
	// measure the checker, not the serve path.
	Verify bool
	// Registry, when non-nil, receives the serve_*/engine metrics
	// (the generator's load_* metrics live on its own registry).
	Registry *obs.Registry
	// StoreDir, when non-empty, layers a persistent CAS result store
	// under the engine run cache and journals accepted async batches
	// to StoreDir/journal.wal — the loopback twin of wpserved -store,
	// which is what the kill/restart choreography exercises.
	StoreDir string
	// Tenancy configures the serve layer's per-tenant quotas and
	// weighted-fair dispatch — the fairness bench runs against it.
	Tenancy serve.TenancyOptions
	// ServiceDelay is serve's artificial per-cell service time (held
	// inside the admission slot). The fairness bench sets it so slot
	// occupancy, not CPU, is what tenants contend for.
	ServiceDelay time.Duration
}

// Loopback is an in-process wpserved on a real 127.0.0.1 socket — the
// full HTTP stack, loopback latency only.
type Loopback struct {
	URL       string
	Engine    *engine.Engine
	Server    *serve.Server
	Workloads []string       // names the synthetic provider serves
	Store     *store.Store   // nil without StoreDir
	Journal   *store.Journal // nil without StoreDir

	httpSrv *http.Server
	ln      *countingListener
}

// countingListener counts accepted TCP connections — the ground truth
// for the keep-alive assertion: a pooled-transport load run must
// accept orders of magnitude fewer connections than it serves
// requests.
type countingListener struct {
	net.Listener
	conns atomic.Uint64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.conns.Add(1)
	}
	return c, err
}

// Conns returns how many TCP connections the server has accepted.
func (l *Loopback) Conns() uint64 { return l.ln.conns.Load() }

// StartLoopback builds the synthetic-workload engine, the serve
// facade and the listener, and starts serving.
func StartLoopback(opt LoopbackOptions) (*Loopback, error) {
	if opt.Workloads == 0 {
		opt.Workloads = 4
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 64
	}

	base := sim.Default()
	engOpts := []engine.Option{
		engine.WithWorkers(opt.Workers),
		engine.WithBaseConfig(base),
	}
	if opt.Registry != nil {
		engOpts = append(engOpts, engine.WithObserver(opt.Registry))
	}
	if opt.Verify {
		engOpts = append(engOpts, engine.WithVerify(check.VerifyCell))
	}

	var st *store.Store
	var jnl *store.Journal
	if opt.StoreDir != "" {
		var err error
		st, err = store.Open(store.Options{
			Dir:         opt.StoreDir,
			Registry:    opt.Registry,
			Fingerprint: store.Fingerprint(base),
		})
		if err != nil {
			return nil, err
		}
		engOpts = append(engOpts, engine.WithStore(st))
		jnl, err = store.OpenJournal(filepath.Join(opt.StoreDir, "journal.wal"), opt.Registry)
		if err != nil {
			st.Close()
			return nil, err
		}
	}
	provider := SyntheticProvider(opt.Workloads)
	if opt.PrepDelay > 0 {
		inner := provider
		delay := opt.PrepDelay
		provider = func(ctx context.Context, name string) (*engine.Workload, error) {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return inner(ctx, name)
		}
	}
	eng := engine.New(provider, engOpts...)

	srv, err := serve.New(serve.Options{
		Engine:        eng,
		Registry:      opt.Registry,
		QueueDepth:    opt.QueueDepth,
		AsyncSlots:    opt.AsyncSlots,
		MaxBatchCells: opt.MaxBatchCells,
		JobTTL:        opt.JobTTL,
		RetryAfter:    opt.RetryAfter,
		Journal:       jnl,
		Tenancy:       opt.Tenancy,
		ServiceDelay:  opt.ServiceDelay,
	})
	if err != nil {
		if st != nil {
			st.Close()
			jnl.Close()
		}
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if st != nil {
			st.Close()
			jnl.Close()
		}
		return nil, err
	}
	cln := &countingListener{Listener: ln}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(cln)

	return &Loopback{
		URL:       "http://" + ln.Addr().String(),
		Engine:    eng,
		Server:    srv,
		Workloads: SyntheticNames(opt.Workloads),
		Store:     st,
		Journal:   jnl,
		httpSrv:   httpSrv,
		ln:        cln,
	}, nil
}

// Close stops the listener and drains in-flight batches, bounded by
// ctx. With a store attached it then flushes write-behind saves, so a
// graceful close leaves the disk as warm as the run cache was.
func (l *Loopback) Close(ctx context.Context) error {
	err := l.httpSrv.Shutdown(ctx)
	if derr := l.Server.Shutdown(ctx); err == nil {
		err = derr
	}
	if l.Store != nil {
		l.Store.Flush()
		if cerr := l.Store.Close(); err == nil {
			err = cerr
		}
	}
	if l.Journal != nil {
		if cerr := l.Journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
