package load

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/fleet"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
)

// FleetOptions sizes an in-process fleet: N loopback wpserved
// backends behind one wpcoordd-style coordinator, all on real
// 127.0.0.1 sockets.
type FleetOptions struct {
	// Backends is the fleet size. Required, >= 1.
	Backends int
	// Workloads is the synthetic workload count every backend serves
	// (default 4). All backends share the workload set — which backend
	// simulates which cell is the ring's decision, not the provider's.
	Workloads int
	// BackendWorkers caps each backend engine's concurrent cells
	// (default GOMAXPROCS). Scaling measurements pin this to 1 so
	// "4 backends" means exactly 4x the simulation parallelism of 1.
	BackendWorkers int
	// BackendQueue is each backend's serve queue depth (default 64).
	BackendQueue int
	// CoordQueue is the coordinator's queue depth (default 256 — a
	// coordinator slot only scatters and merges, so it is much cheaper
	// than a backend slot and should not be the first thing to 429).
	CoordQueue int
	// Failover is the coordinator's hard-failure failover budget
	// (default 1).
	Failover int
	// RetryAfter is each backend's 429 backoff hint (default
	// loopback's).
	RetryAfter time.Duration
	// BackendPrepDelay is each backend's workload-preparation latency
	// (see LoopbackOptions.PrepDelay). Scaling benches set it so a
	// cold cell's service time is latency-dominated, as in a real
	// deployment; 0 leaves preparation CPU-only.
	BackendPrepDelay time.Duration
	// Registry, when non-nil, receives the coordinator's fleet_*
	// instruments (per-backend hit/miss/latency series included).
	Registry *obs.Registry
}

// Fleet is a running in-process fleet. Clients target URL exactly as
// they would a single wpserved.
type Fleet struct {
	URL         string
	Coordinator *fleet.Coordinator
	Backends    []*Loopback

	httpSrv *http.Server
	ln      net.Listener
}

// StartFleet boots the backends and the coordinator and starts
// serving the v1 surface on a loopback socket.
func StartFleet(opt FleetOptions) (*Fleet, error) {
	if opt.Backends < 1 {
		return nil, fmt.Errorf("load: fleet needs >= 1 backend, got %d", opt.Backends)
	}
	if opt.CoordQueue == 0 {
		opt.CoordQueue = 256
	}
	if opt.Failover == 0 {
		opt.Failover = 1
	}
	f := &Fleet{}
	urls := make([]string, opt.Backends)
	for i := 0; i < opt.Backends; i++ {
		lb, err := StartLoopback(LoopbackOptions{
			Workloads:  opt.Workloads,
			Workers:    opt.BackendWorkers,
			QueueDepth: opt.BackendQueue,
			RetryAfter: opt.RetryAfter,
			PrepDelay:  opt.BackendPrepDelay,
		})
		if err != nil {
			f.closeAll()
			return nil, err
		}
		f.Backends = append(f.Backends, lb)
		urls[i] = lb.URL
	}
	coord, err := fleet.New(fleet.Options{
		Backends:   urls,
		Registry:   opt.Registry,
		QueueDepth: opt.CoordQueue,
		Failover:   opt.Failover,
	})
	if err != nil {
		f.closeAll()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.closeAll()
		return nil, err
	}
	f.Coordinator = coord
	f.ln = ln
	f.httpSrv = &http.Server{Handler: coord.Handler()}
	go f.httpSrv.Serve(ln)
	f.URL = "http://" + ln.Addr().String()
	return f, nil
}

func (f *Fleet) closeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f.Close(ctx)
}

// Close stops the coordinator first (so no new scatters start), then
// the backends.
func (f *Fleet) Close(ctx context.Context) error {
	var err error
	if f.httpSrv != nil {
		err = f.httpSrv.Shutdown(ctx)
	}
	if f.Coordinator != nil {
		if serr := f.Coordinator.Shutdown(ctx); err == nil {
			err = serr
		}
	}
	for _, lb := range f.Backends {
		if cerr := lb.Close(ctx); err == nil {
			err = cerr
		}
	}
	return err
}

// SimulatedCells sums the backends' engine miss counters: how many
// cells the whole fleet actually simulated. With the ring healthy
// this equals the number of distinct cells ever requested — the
// once-per-fleet invariant the bench asserts.
func (f *Fleet) SimulatedCells() uint64 {
	var n uint64
	for _, lb := range f.Backends {
		n += lb.Engine.Misses()
	}
	return n
}

// SingletonPool builds one baseline cell per workload. This is the
// pool shape that isolates scaling: every cell is its own workload,
// so sharding never re-runs a fetch stream two backends both need
// (contrast Pool, whose per-workload cell families coalesce into one
// stream pass on a single engine — work a shard split must partly
// duplicate).
func SingletonPool(workloads []string, icache api.CacheGeometry) []api.RunRequest {
	reqs := make([]api.RunRequest, len(workloads))
	for i, w := range workloads {
		reqs[i] = api.RunRequest{Workload: w, ICache: icache, Scheme: api.SchemeBaseline}
	}
	return reqs
}

// FleetBenchOptions configures one scaling measurement.
type FleetBenchOptions struct {
	// Backends is the fleet size whose throughput is compared against
	// a 1-backend control. Required, >= 2.
	Backends int
	// Workloads sizes the singleton scaling pool (default 64): one
	// cold cell per workload, so pool preparation and simulation both
	// shard cleanly.
	Workloads int
	// PrepDelay is the per-workload preparation latency injected into
	// every backend (default 40ms). A cold cell's service time is then
	// latency-dominated — the regime a real fleet shards — so the
	// measurement answers "does the coordinator overlap its backends?"
	// on any host, including single-core CI runners where CPU-bound
	// backends could never scale. Negative disables the delay.
	PrepDelay time.Duration
	// BatchCells is the submission batch size (default 64). One
	// submitter issues batches sequentially: per batch the control
	// backend runs all cells serially while the fleet's sub-batches
	// run on all backends at once — the purest form of the question
	// "does adding backends add throughput?".
	BatchCells int
	// MinSpeedup, when > 0, makes Run return an error if
	// fleet/single cells-per-second falls below it.
	MinSpeedup float64
	// Log receives progress lines (nil = quiet).
	Log io.Writer
}

// FleetBenchResult is the measured outcome, snapshot-ready.
type FleetBenchResult struct {
	Backends             int
	PoolCells            int
	PrepDelay            time.Duration // injected per-cell backend latency
	HostCPUs             int           // runtime.NumCPU() where the bench ran
	SingleCellsPerSecond float64
	FleetCellsPerSecond  float64
	Speedup              float64
	SimulatedCells       uint64 // fleet-wide, after run + re-run sweep
	OncePerFleet         bool   // SimulatedCells == PoolCells exactly
}

// FleetBench measures cold-pool throughput of a 1-backend fleet and
// an Options.Backends-backend fleet over the identical singleton
// pool, and proves the once-per-fleet invariant: after pushing the
// whole pool through the coordinator twice, the summed backend
// simulate counters equal the pool size exactly — every cold cell
// simulated on exactly one backend, every repeat a cache hit there.
func FleetBench(ctx context.Context, opt FleetBenchOptions) (*FleetBenchResult, error) {
	if opt.Backends < 2 {
		return nil, fmt.Errorf("load: fleet bench needs >= 2 backends, got %d", opt.Backends)
	}
	if opt.Workloads == 0 {
		opt.Workloads = 64
	}
	if opt.BatchCells == 0 {
		opt.BatchCells = 64
	}
	switch {
	case opt.PrepDelay == 0:
		opt.PrepDelay = 40 * time.Millisecond
	case opt.PrepDelay < 0:
		opt.PrepDelay = 0
	}
	pool := SingletonPool(SyntheticNames(opt.Workloads), SyntheticGeometry())

	single, _, err := coldRun(ctx, 1, pool, opt)
	if err != nil {
		return nil, fmt.Errorf("load: 1-backend control: %w", err)
	}
	fleetRate, simulated, err := coldRun(ctx, opt.Backends, pool, opt)
	if err != nil {
		return nil, fmt.Errorf("load: %d-backend fleet: %w", opt.Backends, err)
	}

	res := &FleetBenchResult{
		Backends:             opt.Backends,
		PoolCells:            len(pool),
		PrepDelay:            opt.PrepDelay,
		HostCPUs:             runtime.NumCPU(),
		SingleCellsPerSecond: single,
		FleetCellsPerSecond:  fleetRate,
		Speedup:              fleetRate / single,
		SimulatedCells:       simulated,
		OncePerFleet:         simulated == uint64(len(pool)),
	}
	if !res.OncePerFleet {
		return res, fmt.Errorf("load: fleet simulated %d cells for a %d-cell pool — a cell ran on more than one backend (or twice on one)",
			simulated, len(pool))
	}
	if opt.MinSpeedup > 0 && res.Speedup < opt.MinSpeedup {
		return res, fmt.Errorf("load: %d-backend speedup %.2fx < required %.2fx (single %.0f cells/s, fleet %.0f cells/s)",
			opt.Backends, res.Speedup, opt.MinSpeedup, single, fleetRate)
	}
	return res, nil
}

// coldRun boots a fresh n-backend fleet, pushes the pool through the
// coordinator once cold (timed) and once warm (verifying every repeat
// is a cache hit), and returns cold cells/sec plus the fleet-wide
// simulate count.
func coldRun(ctx context.Context, n int, pool []api.RunRequest, opt FleetBenchOptions) (float64, uint64, error) {
	f, err := StartFleet(FleetOptions{
		Backends:         n,
		Workloads:        opt.Workloads,
		BackendWorkers:   1, // 1 cell at a time per backend: backends are the unit of parallelism
		BackendPrepDelay: opt.PrepDelay,
	})
	if err != nil {
		return 0, 0, err
	}
	defer f.closeAll()
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "wpload: fleet bench: %d backend(s), %d-cell cold pool, batches of %d...\n",
			n, len(pool), opt.BatchCells)
	}

	client := serve.NewClient(f.URL)
	submitAll := func() error {
		for at := 0; at < len(pool); at += opt.BatchCells {
			end := at + opt.BatchCells
			if end > len(pool) {
				end = len(pool)
			}
			resp, err := client.Run(ctx, pool[at:end])
			if err != nil {
				return err
			}
			if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
				return fmt.Errorf("batch [%d:%d) ended %q with %d failures", at, end, resp.Status, len(resp.Errors))
			}
		}
		return nil
	}

	start := time.Now()
	if err := submitAll(); err != nil {
		return 0, 0, err
	}
	cold := time.Since(start)

	// Warm sweep: the identical pool again. Every cell must come back
	// from some backend's cache without a single new simulation.
	before := f.SimulatedCells()
	if err := submitAll(); err != nil {
		return 0, 0, err
	}
	if after := f.SimulatedCells(); after != before {
		return 0, 0, fmt.Errorf("warm sweep re-simulated %d cells — repeat keys are not landing on the backend that owns them", after-before)
	}
	rate := float64(len(pool)) / cold.Seconds()
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, "wpload: fleet bench: %d backend(s): %v cold (%.0f cells/s), warm sweep all hits\n",
			n, cold.Round(time.Millisecond), rate)
	}
	return rate, f.SimulatedCells(), nil
}
