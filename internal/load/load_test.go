// Black-box load tests: a real Generator fleet against a real
// in-process wpserved on a loopback socket. Runs are kept short and
// the fleets small — these verify the harness's plumbing and
// accounting under -race; cmd/wpload -smoke is where the ≥200-client
// SLO gate lives.
package load_test

import (
	"context"
	"testing"
	"time"

	"wayplace/internal/load"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
)

func startLoopback(t *testing.T, opt load.LoopbackOptions) *load.Loopback {
	t.Helper()
	lb, err := load.StartLoopback(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := lb.Close(ctx); err != nil {
			t.Errorf("loopback close: %v", err)
		}
	})
	return lb
}

func run(t *testing.T, lb *load.Loopback, opt load.Options) (*load.Generator, *load.Report) {
	t.Helper()
	opt.BaseURL = lb.URL
	if opt.Pool == nil {
		opt.Pool = load.Pool(lb.Workloads, load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
	}
	gen, err := load.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	report, err := gen.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return gen, report
}

// TestMixedLoadAgainstLoopback is the harness's bread and butter: a
// sync/async mix over a zipfian pool, everything accounted for, the
// hot keys served from the warm run cache, zero errors.
func TestMixedLoadAgainstLoopback(t *testing.T) {
	lb := startLoopback(t, load.LoopbackOptions{Workloads: 2})
	gen, r := run(t, lb, load.Options{
		Clients: 16, Duration: 600 * time.Millisecond,
		AsyncFraction: 0.4, MaxBatchCells: 4, PollInterval: 2 * time.Millisecond,
		Seed: 7,
	})

	if r.Batches == 0 {
		t.Fatal("no batch completed")
	}
	if r.Errors != 0 || r.Dropped != 0 {
		t.Fatalf("clean run saw %d errors, %d dropped", r.Errors, r.Dropped)
	}
	if r.Requests < r.Batches {
		t.Fatalf("%d requests < %d batches", r.Requests, r.Batches)
	}
	if r.Cells < r.Batches {
		t.Fatalf("%d cells < %d batches", r.Cells, r.Batches)
	}
	if r.AsyncPolls == 0 {
		t.Error("40% async mix issued no status polls")
	}
	if r.HTTPP50 <= 0 || r.HTTPP99 < r.HTTPP50 {
		t.Errorf("nonsense HTTP quantiles: p50 %v, p99 %v", r.HTTPP50, r.HTTPP99)
	}
	if r.BatchP99 < r.BatchP50 || r.CellP99 < r.CellP50 {
		t.Errorf("nonsense batch/cell quantiles: %+v", r)
	}

	// The whole run draws from a fixed canonical pool, so the engine
	// simulates each distinct cell at most once and serves the rest
	// from the warm run cache — the very path the harness exists to
	// stress.
	pool := uint64(len(load.Pool(lb.Workloads, load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})))
	if misses := lb.Engine.Misses(); misses > pool {
		t.Errorf("engine simulated %d cells for a %d-cell pool — run cache not reused", misses, pool)
	}
	if r.Cells > pool && lb.Engine.Hits() == 0 {
		t.Error("no run-cache hits despite re-requesting pool cells")
	}

	// The generator's registry carries every load_* instrument.
	dump := gen.Registry().Dump()
	if dump.Counters[load.MetricBatches] != r.Batches {
		t.Errorf("registry %s = %d, report says %d", load.MetricBatches, dump.Counters[load.MetricBatches], r.Batches)
	}
	if _, ok := dump.Histograms[load.MetricRequestNS]; !ok {
		t.Errorf("registry missing %s", load.MetricRequestNS)
	}
}

// TestBackpressureRetries: against a deliberately tiny queue the
// clients must see 429s, honour Retry-After (capped), and still land
// their batches — backpressure is throttling, not failure.
func TestBackpressureRetries(t *testing.T) {
	lb := startLoopback(t, load.LoopbackOptions{Workloads: 1, QueueDepth: 2})
	_, r := run(t, lb, load.Options{
		Clients: 16, Duration: 900 * time.Millisecond,
		AsyncFraction: 0, MaxBatchCells: 3,
		MaxRetries: 50, MaxRetryBackoff: 20 * time.Millisecond,
		Seed: 11,
	})
	if r.Status429 == 0 {
		t.Fatal("16 clients on a depth-2 queue never saw a 429")
	}
	if r.Retries == 0 {
		t.Fatal("429s observed but no retries issued")
	}
	if r.Batches == 0 {
		t.Fatal("backpressure starved every client — no batch ever completed")
	}
	if r.Errors != 0 {
		t.Fatalf("backpressure produced %d hard errors", r.Errors)
	}
}

// TestChurnAborts: churn=1 means every submission is abandoned
// mid-request; the server must shrug it off and the accounting must
// call them aborts, not errors.
func TestChurnAborts(t *testing.T) {
	lb := startLoopback(t, load.LoopbackOptions{Workloads: 1})
	_, r := run(t, lb, load.Options{
		Clients: 8, Duration: 300 * time.Millisecond,
		Churn: 1, Seed: 13,
	})
	if r.Aborts == 0 {
		t.Fatal("full-churn run recorded no aborts")
	}
	if r.Batches != 0 {
		t.Fatalf("full-churn run completed %d batches", r.Batches)
	}
	if r.Errors != 0 {
		t.Fatalf("aborted submissions counted as %d errors", r.Errors)
	}

	// Let the abort backlog unwind before the timed clean window: on a
	// starved -race runner the server spends a while finishing ~10³
	// cancelled handlers, and a 200ms generator window that starts
	// behind that queue completes nothing. One blocking round trip
	// with a generous deadline is the settle barrier.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	pool := load.Pool(lb.Workloads, load.SyntheticGeometry(), []uint32{1 << 10, 2 << 10})
	if _, err := serve.NewClient(lb.URL).Run(sctx, pool[:1]); err != nil {
		t.Fatalf("server unresponsive after churn: %v", err)
	}

	// The server survived the churn: a clean client still gets served.
	_, clean := run(t, lb, load.Options{
		Clients: 2, Duration: 200 * time.Millisecond, Seed: 17,
	})
	if clean.Batches == 0 || clean.Errors != 0 {
		t.Fatalf("server unhealthy after churn: %d batches, %d errors", clean.Batches, clean.Errors)
	}
}

// TestAsyncOnly: a pure-async fleet exercises submit→202→poll→done
// for every batch, sharing the server registry so the serve-side
// async metrics are visible too.
func TestAsyncOnly(t *testing.T) {
	reg := obs.NewRegistry()
	lb := startLoopback(t, load.LoopbackOptions{Workloads: 1, Registry: reg})
	_, r := run(t, lb, load.Options{
		Clients: 8, Duration: 500 * time.Millisecond,
		AsyncFraction: 1, PollInterval: 2 * time.Millisecond,
		Seed: 19,
	})
	if r.Batches == 0 {
		t.Fatal("no async batch completed")
	}
	if r.AsyncPolls == 0 {
		t.Fatal("async batches completed without a single poll")
	}
	if r.Errors != 0 {
		t.Fatalf("async run saw %d errors (a poll 404 would land here)", r.Errors)
	}
}
