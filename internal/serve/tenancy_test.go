// Black-box tests for the redesigned error/identity wire schema:
// every emitted machine-readable code, the tenant echo rules, and
// per-tenant quota isolation — all over real HTTP.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
	"wayplace/internal/store"
)

// postRaw posts a body with optional tenant header and returns the
// response plus decoded error body (zero when the answer was not an
// error).
func postRaw(t *testing.T, url, tenant, body string) (*http.Response, api.ErrorResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/runs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(api.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var eresp api.ErrorResponse
	json.Unmarshal(data, &eresp)
	resp.Body = io.NopCloser(bytes.NewReader(data))
	return resp, eresp
}

// TestEmittedErrorCodes is the table over every code the server can
// emit on the request path: status, code, retryable flag and whether
// a Retry-After hint accompanies it.
func TestEmittedErrorCodes(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) { o.MaxBatchCells = 3 })
	oversized, _ := json.Marshal(api.BatchRequest{Requests: smallBatch()}) // 4 cells > 3

	cases := []struct {
		name       string
		tenant     string
		body       string
		wantStatus int
		wantCode   string
		wantRetry  bool
		wantHint   bool // Retry-After header present
	}{
		{"malformed JSON", "", "{not json", http.StatusBadRequest, api.CodeInvalidRequest, false, false},
		{"unsupported version", "", `{"api_version":"v9","requests":[{"workload":"tiny1"}]}`,
			http.StatusBadRequest, api.CodeUnsupportedVersion, false, false},
		{"empty batch", "", `{"requests":[]}`, http.StatusBadRequest, api.CodeInvalidRequest, false, false},
		{"invalid cell", "", `{"requests":[{"workload":"","scheme":"warp","icache":{"size_bytes":8192,"ways":8,"line_bytes":32}}]}`,
			http.StatusBadRequest, api.CodeInvalidRequest, false, false},
		{"invalid tenant header", "bad tenant!", `{"requests":[]}`,
			http.StatusBadRequest, api.CodeInvalidRequest, false, false},
		{"batch too large", "", string(oversized),
			http.StatusTooManyRequests, api.CodeBatchTooLarge, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, eresp := postRaw(t, env.http.URL, c.tenant, c.body)
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.wantStatus, resp.Status)
			}
			if eresp.Code != c.wantCode {
				t.Errorf("code %q, want %q", eresp.Code, c.wantCode)
			}
			if eresp.Retryable != c.wantRetry {
				t.Errorf("retryable %v, want %v", eresp.Retryable, c.wantRetry)
			}
			if got := resp.Header.Get("Retry-After") != ""; got != c.wantHint {
				t.Errorf("Retry-After header present=%v, want %v", got, c.wantHint)
			}
		})
	}
}

// TestQueueFullCode: the classic saturated-pool 429 now carries
// code=queue_full and retryable=true alongside the Retry-After hint.
func TestQueueFullCode(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) { o.QueueDepth = 1 })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(api.BatchRequest{Requests: []api.RunRequest{
			{Workload: "block:tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
		}})
		http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	}()
	waitInflight(t, env, 1)
	defer func() { env.gate <- struct{}{}; wg.Wait() }()

	body, _ := json.Marshal(api.BatchRequest{Requests: smallBatch()})
	resp, eresp := postRaw(t, env.http.URL, "", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if eresp.Code != api.CodeQueueFull || !eresp.Retryable {
		t.Fatalf("got code=%q retryable=%v, want queue_full/true", eresp.Code, eresp.Retryable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue_full without Retry-After header")
	}
}

// TestOverQuotaIsolation: a tenant at its own slot quota gets 429
// over_quota while another tenant keeps being served — the per-tenant
// vs global asymmetry the codes exist to express.
func TestOverQuotaIsolation(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) {
		o.QueueDepth = 2
		o.Tenancy = serve.TenancyOptions{Slots: 1}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(api.BatchRequest{Requests: []api.RunRequest{
			{Workload: "block:tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
		}})
		req, _ := http.NewRequest(http.MethodPost, env.http.URL+"/v1/runs", bytes.NewReader(body))
		req.Header.Set(api.TenantHeader, "hog")
		http.DefaultClient.Do(req)
	}()
	waitInflight(t, env, 1)
	defer func() { env.gate <- struct{}{}; wg.Wait() }()

	// The hog's second request trips its own quota.
	body, _ := json.Marshal(api.BatchRequest{Requests: smallBatch()})
	resp, eresp := postRaw(t, env.http.URL, "hog", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hog second request: status %d, want 429", resp.StatusCode)
	}
	if eresp.Code != api.CodeOverQuota || !eresp.Retryable {
		t.Fatalf("hog got code=%q retryable=%v, want over_quota/true", eresp.Code, eresp.Retryable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("over_quota without Retry-After header")
	}

	// A polite tenant is untouched by the hog's saturation.
	resp, eresp = postRaw(t, env.http.URL, "polite", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("polite tenant: status %d (%+v), want 200", resp.StatusCode, eresp)
	}

	// Per-tenant metrics attribute the rejection to the hog alone.
	dump := env.reg.Dump()
	if got := dump.Counters[obs.LabeledName(serve.MetricTenantOverQuota, "tenant", "hog")]; got != 1 {
		t.Errorf("hog over-quota counter = %d, want 1", got)
	}
	if got := dump.Counters[obs.LabeledName(serve.MetricTenantBatches, "tenant", "polite")]; got != 1 {
		t.Errorf("polite batch counter = %d, want 1", got)
	}
}

// TestJobUnknownCode: polling a job the server does not know answers
// 404 with code=job_unknown.
func TestJobUnknownCode(t *testing.T) {
	env := newEnv(t, nil)
	resp, err := http.Get(env.http.URL + "/v1/runs/job-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var eresp api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Code != api.CodeJobUnknown || eresp.Retryable {
		t.Fatalf("got code=%q retryable=%v, want job_unknown/false", eresp.Code, eresp.Retryable)
	}
}

// TestStoreFailureCode: when the journal cannot persist an async
// accept, the 500 names the condition (store_failure, retryable) —
// the batch itself was fine.
func TestStoreFailureCode(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "jobs.journal")
	journal, err := store.OpenJournal(jpath, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, func(o *serve.Options) { o.Journal = journal })
	journal.Close() // every future append fails

	body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: smallBatch()})
	resp, eresp := postRaw(t, env.http.URL, "", string(body))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%+v), want 500", resp.StatusCode, eresp)
	}
	if eresp.Code != api.CodeStoreFailure || !eresp.Retryable {
		t.Fatalf("got code=%q retryable=%v, want store_failure/true", eresp.Code, eresp.Retryable)
	}
}

// TestTenantEcho: an explicit tenant is echoed on sync responses, 202
// shells and job polls; a tenant-less request gets byte-identical
// pre-tenancy behaviour — no tenant key at all, even though the
// server accounts it under a derived default.
func TestTenantEcho(t *testing.T) {
	env := newEnv(t, nil)
	body, _ := json.Marshal(api.BatchRequest{Requests: smallBatch()})

	// Tenant-less: the raw body must not mention the field.
	resp, _ := postRaw(t, env.http.URL, "", string(body))
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-less run: status %d", resp.StatusCode)
	}
	if bytes.Contains(raw, []byte(`"tenant"`)) {
		t.Fatalf("tenant-less response leaks a tenant field: %.200s", raw)
	}

	// Explicit tenant: echoed on the sync answer.
	resp, _ = postRaw(t, env.http.URL, "team-a", string(body))
	var br api.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Tenant != "team-a" {
		t.Fatalf("sync echo = %q, want team-a", br.Tenant)
	}

	// Async: echoed on the 202 shell and on polls — with the *poller's*
	// identity, since jobs are shared across identical submissions.
	abody, _ := json.Marshal(api.BatchRequest{Async: true, Requests: smallBatch()})
	resp, _ = postRaw(t, env.http.URL, "team-a", string(abody))
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || br.Tenant != "team-a" {
		t.Fatalf("202 shell: status %d tenant %q, want 202/team-a", resp.StatusCode, br.Tenant)
	}
	poll := func(tenant string) api.BatchResponse {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, env.http.URL+"/v1/runs/"+br.JobID, nil)
		if tenant != "" {
			req.Header.Set(api.TenantHeader, tenant)
		}
		presp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer presp.Body.Close()
		var out api.BatchResponse
		if err := json.NewDecoder(presp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	deadline := time.Now().Add(30 * time.Second)
	for poll("team-a").Status != api.StatusDone {
		if time.Now().After(deadline) {
			t.Fatal("async job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := poll("team-b").Tenant; got != "team-b" {
		t.Fatalf("poll echo = %q, want the poller's own tenant team-b", got)
	}
	if got := poll("").Tenant; got != "" {
		t.Fatalf("tenant-less poll echo = %q, want empty", got)
	}
}

// TestClientTenantOption: serve.Client stamps its Tenant on requests,
// and the server echoes it back — the end-to-end identity loop.
func TestClientTenantOption(t *testing.T) {
	env := newEnv(t, nil)
	c := serve.NewClient(env.http.URL)
	c.Tenant = "sweeper"
	resp, err := c.Run(context.Background(), smallBatch())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "sweeper" {
		t.Fatalf("client tenant echo = %q, want sweeper", resp.Tenant)
	}
	if fmt.Sprint(resp.Status) != api.StatusDone {
		t.Fatalf("status %v", resp.Status)
	}
}
