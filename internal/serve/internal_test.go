// White-box regression tests for serve-path bugs the wpload harness
// flushed out: they assert on internal state (the countHit memo, the
// write-error counter) that the black-box suite cannot see.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/engine"
	"wayplace/internal/obs"
)

func newBareServer(t *testing.T, reg *obs.Registry) *Server {
	t.Helper()
	eng := engine.New(func(ctx context.Context, name string) (*engine.Workload, error) {
		return nil, fmt.Errorf("no workloads in this test")
	})
	s, err := New(Options{Engine: eng, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCountHitMemoizesPastCardinalityCap: once the per-key series set
// is full, fresh keys must land on the one overflow counter without
// growing the registry. (The memo-aliasing mechanics — original-name
// memoization, single map read on repeat hits — are asserted
// white-box in obs's CounterVec tests; this guards the serve wiring.)
func TestCountHitMemoizesPastCardinalityCap(t *testing.T) {
	reg := obs.NewRegistry()
	s := newBareServer(t, reg)
	for i := 0; i < keyCardinalityCap; i++ {
		s.countHit(fmt.Sprintf("warm-%04d", i))
	}

	s.countHit("fresh-past-cap")
	s.countHit("fresh-past-cap")
	s.countHit("other-past-cap")

	overflow := s.hits.Overflow()
	if overflow == nil {
		t.Fatal("no overflow counter after past-the-cap hits")
	}
	if got := overflow.Value(); got != 3 {
		t.Errorf("overflow series counts %d hits, want 3", got)
	}

	// The registry grew exactly one series past the cap, no matter how
	// many distinct fresh keys hit it.
	series := 0
	for name := range reg.Dump().Counters {
		if strings.HasPrefix(name, MetricCellHits+"{") {
			series++
		}
	}
	if series != keyCardinalityCap+1 {
		t.Errorf("registry holds %d per-key series, want cap+1 = %d", series, keyCardinalityCap+1)
	}
}

// deadWriter is a ResponseWriter whose connection has gone away:
// every body write fails after headers are out.
type deadWriter struct{ header http.Header }

func (d *deadWriter) Header() http.Header {
	if d.header == nil {
		d.header = make(http.Header)
	}
	return d.header
}
func (d *deadWriter) WriteHeader(int) {}
func (d *deadWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("write tcp: broken pipe")
}

// TestWriteErrorsCounted: a body write failing after the 200 status
// line must bump serve_write_errors_total instead of vanishing — the
// only signal that a client received a truncated 200.
func TestWriteErrorsCounted(t *testing.T) {
	reg := obs.NewRegistry()
	s := newBareServer(t, reg)

	s.writeJSON(&deadWriter{}, http.StatusOK, map[string]string{"k": "v"})
	if got := s.writeErrs.Value(); got != 1 {
		t.Fatalf("writeJSON: write error counter = %d, want 1", got)
	}

	s.writeBatchResponse(&deadWriter{}, http.StatusOK, &api.BatchResponse{
		APIVersion: api.Version, JobID: "job-x", Status: api.StatusDone,
	})
	if got := s.writeErrs.Value(); got != 2 {
		t.Fatalf("writeBatchResponse: write error counter = %d, want 2", got)
	}
	if got := reg.Dump().Counters[MetricWriteErrors]; got != 2 {
		t.Fatalf("%s = %d on the registry, want 2", MetricWriteErrors, got)
	}
}

// TestAsyncSubmitRaceOrphanWindow reproduces the submit race
// deterministically: the server mutex is held so submitter A parks
// inside acquire() — which, pre-fix, was *after* it had published its
// job. A concurrent identical submitter B attached to that job and
// was told 202; when A resumed, failed its acquire and deleted the
// job, B held an id that 404'd forever. Post-fix nothing is published
// before the slot is secured, so no 202 can name a job that will
// never run.
func TestAsyncSubmitRaceOrphanWindow(t *testing.T) {
	reg := obs.NewRegistry()
	s := newBareServer(t, reg)
	s.sched.mu.Lock()
	s.sched.running = s.sched.capacity // pin the queue full: every acquire fails
	s.sched.mu.Unlock()
	handler := s.Handler()
	body := `{"async":true,"requests":[{"workload":"w","icache":{"size_bytes":8192,"ways":8,"line_bytes":32},"scheme":"baseline"}]}`
	post := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(body)))
		return rec
	}

	s.sched.mu.Lock() // parks both submitters at their acquire()
	resA := make(chan *httptest.ResponseRecorder, 1)
	resB := make(chan *httptest.ResponseRecorder, 1)
	go func() { resA <- post() }()
	time.Sleep(100 * time.Millisecond) // A reaches acquire (pre-fix: job already published)
	go func() { resB <- post() }()
	time.Sleep(100 * time.Millisecond) // B runs its dedup check against A's state
	s.sched.mu.Unlock()

	for _, rec := range []*httptest.ResponseRecorder{<-resA, <-resB} {
		if rec.Code != http.StatusAccepted {
			continue // 429 is the honest full-queue answer
		}
		var br api.BatchResponse
		if err := json.NewDecoder(rec.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		poll := httptest.NewRecorder()
		handler.ServeHTTP(poll, httptest.NewRequest(http.MethodGet, "/v1/runs/"+br.JobID, nil))
		if poll.Code == http.StatusNotFound {
			t.Fatalf("202-accepted job %q polls as 404 — orphaned by the publish-before-acquire race", br.JobID)
		}
	}
}
