// White-box tests for the durability plumbing: journal replay on
// boot, the fsync-before-202 refusal path, and the eviction-timer
// lifecycle Shutdown must tear down.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/obs"
	"wayplace/internal/store"
)

func testBatchRequest(workload string) *api.BatchRequest {
	return &api.BatchRequest{
		APIVersion: api.Version,
		Async:      true,
		Requests: []api.RunRequest{{
			Workload: workload,
			ICache:   api.CacheGeometry{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32},
			Scheme:   api.SchemeBaseline,
		}},
	}
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Regression: eviction used an untracked time.AfterFunc, so finished
// jobs' timers outlived Shutdown and fired into a dead server. Timers
// must be tracked, stopped on Shutdown, and unarmable afterwards.
func TestEvictionTimersStoppedOnShutdown(t *testing.T) {
	s := newBareServer(t, nil)
	s.jobs.Store("job-x", &job{id: "job-x", done: make(chan struct{})})
	s.scheduleEvictionAfter("job-x", 30*time.Millisecond)

	s.mu.Lock()
	armed := len(s.evictions)
	s.mu.Unlock()
	if armed != 1 {
		t.Fatalf("%d timers tracked after scheduling, want 1", armed)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	left, stopped := len(s.evictions), s.stopped
	s.mu.Unlock()
	if left != 0 {
		t.Errorf("%d timers still tracked after Shutdown, want 0", left)
	}
	if !stopped {
		t.Error("Shutdown did not mark the server stopped")
	}

	// The stopped timer must not fire into the dead server...
	time.Sleep(60 * time.Millisecond)
	if _, ok := s.jobs.Load("job-x"); !ok {
		t.Error("a stopped eviction timer still fired and deleted the job")
	}
	// ...and no new timer may be armed after Shutdown.
	s.scheduleEvictionAfter("job-x", time.Millisecond)
	s.mu.Lock()
	rearmed := len(s.evictions)
	s.mu.Unlock()
	if rearmed != 0 {
		t.Errorf("%d timers armed after Shutdown, want 0", rearmed)
	}
}

// Re-arming the same job's eviction (a replayed job finishing twice,
// a duplicate submission) replaces the old timer instead of leaking
// it, and a fired timer removes itself from the tracking map.
func TestEvictionTimerRearmAndSelfRemoval(t *testing.T) {
	s := newBareServer(t, nil)
	s.jobs.Store("job-y", &job{id: "job-y", done: make(chan struct{})})
	s.scheduleEvictionAfter("job-y", time.Hour)
	s.scheduleEvictionAfter("job-y", 10*time.Millisecond)

	s.mu.Lock()
	armed := len(s.evictions)
	s.mu.Unlock()
	if armed != 1 {
		t.Fatalf("%d timers tracked after re-arm, want 1", armed)
	}
	eventually(t, "eviction to fire and self-remove", func() bool {
		if _, ok := s.jobs.Load("job-y"); ok {
			return false
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.evictions) == 0
	})
}

// Boot replay: an accepted-but-unfinished job resumes and its 202 id
// polls to completion; a done job past its TTL is dropped and
// compacted out of the journal.
func TestJournalReplayOnBoot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	jnl, err := store.OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Accept("job-live", testBatchRequest("w-live")); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Accept("job-expired", testBatchRequest("w-expired")); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Done("job-expired"); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	// Let job-expired age past the TTL the server will boot with.
	ttl := 100 * time.Millisecond
	time.Sleep(ttl + 50*time.Millisecond)

	jnl, err = store.OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	reg := obs.NewRegistry()
	eng := newBareServer(t, nil).opt.Engine // provider that fails every workload
	s, err := New(Options{Engine: eng, Registry: reg, Journal: jnl, JobTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := s.jobs.Load("job-expired"); ok {
		t.Error("done job past its TTL was re-registered")
	}
	v, ok := s.jobs.Load("job-live")
	if !ok {
		t.Fatal("accepted-but-unfinished job was not replayed; its 202 id is orphaned")
	}
	select {
	case <-v.(*job).done:
	case <-time.After(5 * time.Second):
		t.Fatal("replayed job never finished")
	}
	// The bare engine's provider fails, so the replayed job completes
	// as failed — what matters here is the lifecycle: it finished, was
	// counted, got a done mark, and the expired job is gone for good.
	eventually(t, "replay counter", func() bool {
		return reg.Counter(MetricReplayedJobs).Value() == 1
	})
	eventually(t, "done mark for the replayed job", func() bool {
		data, err := os.ReadFile(path)
		return err == nil && strings.Contains(string(data), `"op":"done","job":"job-live"`)
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "job-expired") {
		t.Error("compaction left the expired job in the journal")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// The fsync-before-202 invariant has a refusal side: when the accept
// record cannot reach disk, the server must answer 500 and release
// the queue slot rather than hand out a job id a crash would orphan.
func TestAsyncRefusedWhenJournalFails(t *testing.T) {
	jnl, err := store.OpenJournal(filepath.Join(t.TempDir(), "journal.wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := newBareServer(t, nil).opt.Engine
	s, err := New(Options{Engine: eng, Journal: jnl})
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close() // every append now fails

	body, _ := json.Marshal(testBatchRequest("w"))
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("async submit with a dead journal answered %d, want 500", w.Code)
	}
	if _, ok := s.jobs.Load(api.BatchKey(testBatchRequest("w").Requests)); ok {
		t.Error("a non-durable job id was published anyway")
	}
	// The slot must have been released: a sync submit still goes
	// through (sync batches are not journaled).
	sync := testBatchRequest("w")
	sync.Async = false
	body, _ = json.Marshal(sync)
	req = httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body))
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code == http.StatusTooManyRequests {
		t.Error("queue slot leaked by the refused async submit: sync batch got 429")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
