// Serve tests drive a real httptest server over the real engine with
// tiny synthetic workloads (the same pattern as the engine tests), so
// every property — request validation, backpressure, drain, cache
// sharing across clients, lossless wire round-trips — is exercised
// end-to-end over HTTP rather than against mocks.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/asm"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
	"wayplace/internal/sim"
)

const textBase = 0x0001_0000

// buildHot assembles a small program with a hot kernel and cold
// handlers, so way-placement cells are meaningful.
func buildHot(name string, iters uint16) *obj.Unit {
	b := asm.NewBuilder(name)
	buf := b.Zeros(256)

	f := b.Func("main")
	f.Call("setup")
	f.Movi(isa.R5, iters)
	f.Block("outer")
	f.Call("kernel")
	f.Subi(isa.R5, isa.R5, 1)
	f.Cmpi(isa.R5, 0)
	f.Bgt("outer")
	f.Halt()

	for i := 0; i < 6; i++ {
		h := b.Func(fmt.Sprintf("cold_%d", i))
		for k := 0; k < 30; k++ {
			h.Addi(isa.R9, isa.R9, 1)
		}
		h.Ret()
	}

	s := b.Func("setup")
	s.Li(isa.R1, buf)
	s.Movi(isa.R2, 64)
	s.Block("fill")
	s.Str(isa.R2, isa.R1, 0)
	s.Addi(isa.R1, isa.R1, 4)
	s.Subi(isa.R2, isa.R2, 1)
	s.Cmpi(isa.R2, 0)
	s.Bgt("fill")
	s.Ret()

	k := b.Func("kernel")
	k.Li(isa.R1, buf)
	k.Movi(isa.R2, 64)
	k.Block("loop")
	k.Ldr(isa.R3, isa.R1, 0)
	k.Add(isa.R0, isa.R0, isa.R3)
	k.Addi(isa.R1, isa.R1, 4)
	k.Subi(isa.R2, isa.R2, 1)
	k.Cmpi(isa.R2, 0)
	k.Bgt("loop")
	k.Ret()

	return b.MustBuild()
}

var (
	workloadsOnce sync.Once
	workloads     map[string]*engine.Workload
	workloadsErr  error
)

func prepareWorkloads() {
	workloads = make(map[string]*engine.Workload)
	for name, iters := range map[string]uint16{"tiny1": 250, "tiny2": 140} {
		u := buildHot(name, iters)
		orig, err := layout.LinkOriginal(u, textBase)
		if err != nil {
			workloadsErr = err
			return
		}
		prof, _, err := sim.ProfileRun(orig, 50_000_000)
		if err != nil {
			workloadsErr = err
			return
		}
		placed, err := layout.Link(u, prof, textBase)
		if err != nil {
			workloadsErr = err
			return
		}
		workloads[name] = &engine.Workload{Name: name, Original: orig, Placed: placed}
	}
}

// testProvider serves the prebuilt workloads. Requests for "block:*"
// workloads park on the gate channel until the test releases them —
// that is how backpressure and drain tests hold a queue slot open
// deterministically.
func testProvider(t *testing.T, gate chan struct{}) engine.Provider {
	t.Helper()
	workloadsOnce.Do(prepareWorkloads)
	if workloadsErr != nil {
		t.Fatalf("building test workloads: %v", workloadsErr)
	}
	return func(ctx context.Context, name string) (*engine.Workload, error) {
		if strings.HasPrefix(name, "block:") {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			name = strings.TrimPrefix(name, "block:")
		}
		w, ok := workloads[name]
		if !ok {
			return nil, fmt.Errorf("no such workload %q", name)
		}
		return w, nil
	}
}

type testEnv struct {
	srv    *serve.Server
	http   *httptest.Server
	eng    *engine.Engine
	reg    *obs.Registry
	client *serve.Client
	gate   chan struct{}
}

func newEnv(t *testing.T, mutate func(*serve.Options)) *testEnv {
	t.Helper()
	gate := make(chan struct{})
	reg := obs.NewRegistry()
	eng := engine.New(testProvider(t, gate), engine.WithObserver(reg))
	opt := serve.Options{Engine: eng, Registry: reg, RetryAfter: time.Second}
	if mutate != nil {
		mutate(&opt)
	}
	srv, err := serve.New(opt)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { close(gate) })
	return &testEnv{srv: srv, http: hs, eng: eng, reg: reg, client: serve.NewClient(hs.URL), gate: gate}
}

// waitInflight polls /healthz until the server reports n in-flight
// batches — the blocked batch has claimed its queue slot.
func waitInflight(t *testing.T, env *testEnv, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := env.client.Health(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := h["inflight"].(float64); ok && int(got) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reached %d in-flight batches: %+v", n, h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func xscale8() api.CacheGeometry {
	return api.CacheGeometry{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}
}

func smallBatch() []api.RunRequest {
	return []api.RunRequest{
		{Workload: "tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
		{Workload: "tiny1", ICache: xscale8(), Scheme: api.SchemeWayPlacement, WPSizeBytes: 2 << 10},
		{Workload: "tiny2", ICache: xscale8(), Scheme: api.SchemeWayMemoization},
		{Workload: "tiny2", ICache: xscale8(), Scheme: api.SchemeWayPlacement,
			Adaptive: &api.AdaptivePolicySpec{
				IntervalInstrs: 20_000, StartSizeBytes: 1 << 10,
				MinSizeBytes: 1 << 10, MaxSizeBytes: 16 << 10,
				GrowThreshold: 0.95, AliasMissRate: 0.02,
			}},
	}
}

// TestBatchSuccess: a sync batch answers 200 with one result per
// request in order, and the wire stats are byte-for-byte the stats a
// local engine produces for the same cells — the lossless-JSON
// property wpbench's -server mode relies on for identical CSV.
func TestBatchSuccess(t *testing.T) {
	env := newEnv(t, nil)
	reqs := smallBatch()
	resp, err := env.client.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
		t.Fatalf("batch status %q, errors %v", resp.Status, resp.Errors)
	}
	if len(resp.Results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(resp.Results), len(reqs))
	}

	specs, err := api.ToSpecs(reqs)
	if err != nil {
		t.Fatal(err)
	}
	local := engine.New(testProvider(t, nil))
	want, err := local.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range resp.Results {
		if rr.Key != specs[i].Key() {
			t.Errorf("result %d key %q, want %q", i, rr.Key, specs[i].Key())
		}
		if !reflect.DeepEqual(rr.Stats, want[i].Stats) {
			t.Errorf("result %d stats diverge from the local engine:\n got %+v\nwant %+v",
				i, rr.Stats, want[i].Stats)
		}
	}
	// The adaptive cell carries its resize trace over the wire.
	ad := resp.Results[3]
	if len(ad.AreaChanges) == 0 {
		t.Error("adaptive cell answered without a resize trace")
	} else if ad.AreaChanges[0].SizeBytes != 1<<10 {
		t.Errorf("resize trace starts at %d bytes, want policy start size", ad.AreaChanges[0].SizeBytes)
	}
}

// TestMalformedRequests: bad JSON, bad version, empty batches and
// field-level validation failures all answer 400 with actionable
// bodies.
func TestMalformedRequests(t *testing.T) {
	env := newEnv(t, nil)
	post := func(body string) (*http.Response, api.ErrorResponse) {
		t.Helper()
		resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eresp api.ErrorResponse
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		json.Unmarshal(data, &eresp)
		return resp, eresp
	}

	resp, _ := post("{not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON answered %d, want 400", resp.StatusCode)
	}
	resp, eresp := post(`{"api_version":"v9","requests":[{"workload":"tiny1"}]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(eresp.Error, "v9") {
		t.Errorf("unsupported version answered %d %q", resp.StatusCode, eresp.Error)
	}
	resp, _ = post(`{"requests":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch answered %d, want 400", resp.StatusCode)
	}

	// Field-level errors carry the JSON path of each bad field.
	bad := api.BatchRequest{Requests: []api.RunRequest{
		{Workload: "tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
		{Workload: "", ICache: api.CacheGeometry{SizeBytes: 3000, Ways: 8, LineBytes: 32}, Scheme: "warp"},
	}}
	body, _ := json.Marshal(bad)
	resp, eresp = post(string(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch answered %d, want 400", resp.StatusCode)
	}
	if len(eresp.Fields) == 0 {
		t.Fatal("400 body carries no field errors")
	}
	for _, f := range eresp.Fields {
		if !strings.HasPrefix(f.Field, "requests[1].") {
			t.Errorf("field error %q not anchored at requests[1]", f.Field)
		}
	}
}

// TestQueueFullAnswers429: with one queue slot held open by a blocked
// batch, the next POST is refused with 429 and a Retry-After header
// instead of queueing unboundedly.
func TestQueueFullAnswers429(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) { o.QueueDepth = 1 })

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(api.BatchRequest{Requests: []api.RunRequest{
			{Workload: "block:tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
		}})
		close(started)
		http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	}()
	<-started
	waitInflight(t, env, 1)

	body, _ := json.Marshal(api.BatchRequest{Requests: smallBatch()})
	resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var eresp api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil || eresp.RetryAfterSeconds <= 0 {
		t.Errorf("429 body %+v lacks retry_after_seconds (%v)", eresp, err)
	}

	env.gate <- struct{}{} // release the parked batch
	wg.Wait()
}

// TestOversizedBatchAnswers429: a batch beyond MaxBatchCells is
// refused up front — bounded memory, not an attempted run.
func TestOversizedBatchAnswers429(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) { o.MaxBatchCells = 3 })
	_, err := env.client.Run(context.Background(), smallBatch())
	if err == nil || !strings.Contains(err.Error(), "exceeds the server limit") {
		t.Fatalf("oversized batch: %v, want a limit rejection", err)
	}
}

// TestShutdownDrainsInflight: Shutdown refuses new work immediately
// but blocks until the in-flight async batch completes — and that
// batch completes successfully, not cancelled.
func TestShutdownDrainsInflight(t *testing.T) {
	env := newEnv(t, nil)
	body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: []api.RunRequest{
		{Workload: "block:tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
	}})
	resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted api.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || accepted.JobID == "" {
		t.Fatalf("async submit answered %d %+v", resp.StatusCode, accepted)
	}
	waitInflight(t, env, 1)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- env.srv.Shutdown(ctx)
	}()

	// Draining: new batches bounce with 429 while the old one runs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b, _ := json.Marshal(api.BatchRequest{Requests: smallBatch()})
		r2, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still accepts work (%d)", r2.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before the in-flight batch finished: %v", err)
	default:
	}

	env.gate <- struct{}{} // let the parked batch finish
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The drained job completed with real results.
	jr, err := http.Get(env.http.URL + "/v1/runs/" + accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var final api.BatchResponse
	if err := json.NewDecoder(jr.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.Status != api.StatusDone || len(final.Results) != 1 || final.Results[0].Stats == nil {
		t.Fatalf("drained job ended as %q with %d results", final.Status, len(final.Results))
	}
}

// TestAsyncJobLifecycle: async submission answers a deterministic job
// id, identical re-submission attaches to the same job, and polling
// converges on the full result set.
func TestAsyncJobLifecycle(t *testing.T) {
	env := newEnv(t, nil)
	reqs := smallBatch()
	submit := func() (*http.Response, api.BatchResponse) {
		t.Helper()
		body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: reqs})
		resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var br api.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, br
	}
	hr, first := submit()
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit answered %d", hr.StatusCode)
	}
	if want := api.BatchKey(reqs); first.JobID != want {
		t.Errorf("job id %q, want deterministic %q", first.JobID, want)
	}
	_, second := submit()
	if second.JobID != first.JobID {
		t.Errorf("identical resubmission got a new job: %q vs %q", second.JobID, first.JobID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := http.Get(env.http.URL + "/v1/runs/" + first.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var br api.BatchResponse
		err = json.NewDecoder(jr.Body).Decode(&br)
		jr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if br.Status == api.StatusDone {
			if len(br.Results) != len(reqs) {
				t.Fatalf("job finished with %d results for %d requests", len(br.Results), len(reqs))
			}
			break
		}
		if br.Status == api.StatusFailed {
			t.Fatalf("job failed: %+v", br.Errors)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", br.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	jr, err := http.Get(env.http.URL + "/v1/runs/job-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job answered %d, want 404", jr.StatusCode)
	}
}

// TestSharedCacheAcrossClients: three concurrent clients submit the
// same figure-style batch; the shared engine simulates each unique
// cell once and the cache-hit ratio rises batch over batch. Run under
// -race this also hammers the server's concurrent paths.
func TestSharedCacheAcrossClients(t *testing.T) {
	env := newEnv(t, nil)
	reqs := smallBatch()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := serve.NewClient(env.http.URL)
			resp, err := c.Run(context.Background(), reqs)
			if err == nil && resp.Status != api.StatusDone {
				err = fmt.Errorf("status %q: %+v", resp.Status, resp.Errors)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if misses := env.eng.Misses(); misses != uint64(len(reqs)) {
		t.Errorf("3 identical client batches cost %d simulations, want %d (one per unique cell)",
			misses, len(reqs))
	}
	hitsAfterStorm := env.eng.Hits()
	if hitsAfterStorm == 0 {
		t.Error("no cache hits across identical concurrent batches")
	}

	// One more identical batch from a fourth client: all hits.
	resp, err := serve.NewClient(env.http.URL).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range resp.Results {
		if !rr.CacheHit {
			t.Errorf("result %d of a fully warm batch not marked as a cache hit", i)
		}
	}
	if env.eng.Hits() <= hitsAfterStorm {
		t.Error("cache hit count did not rise across identical client batches")
	}
}

// TestRemoteRunnerContract: the Runner adapter preserves the engine's
// error shape (MultiError with nil slots) and refuses unexpressible
// per-batch options.
func TestRemoteRunnerContract(t *testing.T) {
	env := newEnv(t, nil)
	runner := serve.NewRemoteRunner(env.client)
	specs := []engine.RunSpec{
		{Workload: "tiny1", ICache: cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}, Scheme: energy.Baseline},
		{Workload: "nosuch", ICache: cache.Config{SizeBytes: 8 << 10, Ways: 8, LineBytes: 32}, Scheme: energy.Baseline},
	}
	res, err := runner.Run(context.Background(), specs)
	if err == nil {
		t.Fatal("batch with a failing cell returned no error")
	}
	merr, ok := err.(*engine.MultiError)
	if !ok {
		t.Fatalf("error is %T, want *engine.MultiError", err)
	}
	if len(merr.Errors) != 1 || !strings.Contains(merr.Errors[0].Error(), "nosuch") {
		t.Errorf("unexpected cell errors: %v", merr.Errors)
	}
	if res[0] == nil || res[0].Stats == nil {
		t.Error("healthy cell lost its result")
	}
	if res[1] != nil {
		t.Error("failed cell has a non-nil result slot")
	}

	if _, err := runner.Run(context.Background(), specs[:1], engine.WithWorkers(2)); err == nil {
		t.Error("per-batch options accepted over the wire")
	}
}

// TestMetricsEndpoint: /metrics re-exposes the shared registry —
// engine instruments and the per-key run-cache hit series keyed by
// canonical cell keys.
func TestMetricsEndpoint(t *testing.T) {
	env := newEnv(t, nil)
	reqs := smallBatch()[:1]
	for i := 0; i < 2; i++ { // second batch hits the cache
		if _, err := env.client.Run(context.Background(), reqs); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(env.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	out := string(data)
	key := reqs[0].Key()
	for _, want := range []string{
		"engine_cells_total",
		"serve_batches_total 2",
		serve.MetricCellHits + `{key="` + key + `"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	hr, err := http.Get(env.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["api_version"] != api.Version {
		t.Errorf("healthz = %+v", health)
	}
}

// TestCoalesceField: the optional batch "coalesce" field selects
// server-side single-pass grouping per batch. Results must be
// identical either way (the v1 contract is unchanged), group ids
// appear only on coalesced fresh cells, and omitting the field means
// grouping is on.
func TestCoalesceField(t *testing.T) {
	reqs := smallBatch()
	post := func(env *testEnv, coalesce *bool) *api.BatchResponse {
		t.Helper()
		body, err := json.Marshal(api.BatchRequest{Requests: reqs, Coalesce: coalesce})
		if err != nil {
			t.Fatal(err)
		}
		httpResp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(httpResp.Body)
			t.Fatalf("status %d: %s", httpResp.StatusCode, b)
		}
		var resp api.BatchResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
			t.Fatalf("batch ended %q: %+v", resp.Status, resp.Errors)
		}
		return &resp
	}

	off := false
	envDefault := newEnv(t, nil)
	envOff := newEnv(t, nil)
	got := post(envDefault, nil)
	want := post(envOff, &off)

	for i := range reqs {
		if !reflect.DeepEqual(got.Results[i].Stats, want.Results[i].Stats) {
			t.Errorf("cell %d: coalesced stats diverge from uncoalesced", i)
		}
		if got.Results[i].GroupID == "" {
			t.Errorf("cell %d: coalesced result missing group_id", i)
		}
		if want.Results[i].GroupID != "" {
			t.Errorf("cell %d: uncoalesced result carries group_id %q", i, want.Results[i].GroupID)
		}
	}
	// smallBatch is tiny1 {baseline, wayplace} + tiny2 {waymem,
	// adaptive}: one multi-cell group per workload binary pair that
	// shares a stream — tiny1's two cells use different binaries, so
	// only tiny2's waymem does not group either. Count what actually
	// coalesced instead of hard-coding.
	if envDefault.eng.CoalescedCells() != 0 && envDefault.eng.Groups() == 0 {
		t.Error("coalesced cells without groups")
	}
	if envOff.eng.Groups() != 0 {
		t.Errorf("uncoalesced engine formed %d groups", envOff.eng.Groups())
	}
}

// TestAsyncSubmitRaceNeverOrphans202: regression for the
// publish-before-acquire race. With the queue pinned full, concurrent
// identical async submissions used to interleave so that one attached
// (202) to a job the other deleted on its failed acquire — an id that
// never ran and 404'd on every poll. The invariant now: any 202 ever
// answered names a job that stays pollable. Run under -race.
func TestAsyncSubmitRaceNeverOrphans202(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) { o.QueueDepth = 1 })

	// Pin the only queue slot with a blocked sync batch.
	var pinned sync.WaitGroup
	pinned.Add(1)
	go func() {
		defer pinned.Done()
		body, _ := json.Marshal(api.BatchRequest{Requests: []api.RunRequest{
			{Workload: "block:tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
		}})
		http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	}()
	waitInflight(t, env, 1)

	// Hammer the handler in-process — the race window between
	// publishing a job and deleting it on a failed acquire is well
	// under a microsecond, so the rounds must be tight loops, not
	// real HTTP exchanges.
	handler := env.srv.Handler()
	var mu sync.Mutex
	var acceptedIDs []string
	rounds := 3000
	if testing.Short() {
		rounds = 300
	}
	for round := 0; round < rounds; round++ {
		// A fresh job id per round: the WP size varies.
		reqs := []api.RunRequest{{Workload: "tiny2", ICache: xscale8(),
			Scheme: api.SchemeWayPlacement, WPSizeBytes: uint32(round+1) << 7}}
		body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: reqs})
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code == http.StatusAccepted {
					var br api.BatchResponse
					json.NewDecoder(rec.Body).Decode(&br)
					mu.Lock()
					acceptedIDs = append(acceptedIDs, br.JobID)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}

	t.Logf("accepted 202s: %d", len(acceptedIDs))
	// Every 202 the server handed out must still resolve. (An
	// orphaned job can never run — the queue stayed pinned — so a
	// pre-fix deletion is still visible here as a 404.)
	for _, id := range acceptedIDs {
		req := httptest.NewRequest(http.MethodGet, "/v1/runs/"+id, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code == http.StatusNotFound {
			t.Fatalf("job %s was 202-accepted but polls as 404 — orphaned by the submit race", id)
		}
	}

	env.gate <- struct{}{} // release the pinned batch
	pinned.Wait()
}

// TestDuplicateAsyncSubmissionsRace: concurrent identical async
// submissions converge on one job — same deterministic id for every
// 202, exactly one accepted batch doing the work — and the job
// completes with full results. Run under -race.
func TestDuplicateAsyncSubmissionsRace(t *testing.T) {
	env := newEnv(t, nil)
	reqs := smallBatch()
	body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: reqs})

	ids := make([]string, 6)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submission %d answered %d, want 202", i, resp.StatusCode)
				return
			}
			var br api.BatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Error(err)
				return
			}
			ids[i] = br.JobID
		}(i)
	}
	wg.Wait()

	want := api.BatchKey(reqs)
	for i, id := range ids {
		if id != want {
			t.Fatalf("submission %d got job id %q, want the shared deterministic %q", i, id, want)
		}
	}
	if got := env.reg.Dump().Counters[serve.MetricBatches]; got != 1 {
		t.Errorf("%d batches accepted for 6 identical submissions, want 1 (the rest attach)", got)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := http.Get(env.http.URL + "/v1/runs/" + want)
		if err != nil {
			t.Fatal(err)
		}
		var br api.BatchResponse
		err = json.NewDecoder(jr.Body).Decode(&br)
		jr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if br.Status == api.StatusDone {
			if len(br.Results) != len(reqs) {
				t.Fatalf("deduplicated job finished with %d results, want %d", len(br.Results), len(reqs))
			}
			return
		}
		if br.Status == api.StatusFailed || time.Now().After(deadline) {
			t.Fatalf("deduplicated job ended %q", br.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFinishedJobEvicted: a completed async job is evicted after
// Options.JobTTL, so a long-lived daemon does not hold one
// BatchResponse per distinct batch forever; post-eviction polls 404.
func TestFinishedJobEvicted(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) { o.JobTTL = 50 * time.Millisecond })
	body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: []api.RunRequest{
		{Workload: "tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
	}})
	resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var accepted api.BatchResponse
	err = json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, err)
	}

	sawDone := false
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := http.Get(env.http.URL + "/v1/runs/" + accepted.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var br api.BatchResponse
		json.NewDecoder(jr.Body).Decode(&br)
		jr.Body.Close()
		if jr.StatusCode == http.StatusNotFound {
			if !sawDone {
				t.Fatal("job vanished before ever reporting done")
			}
			return // evicted after completing: the fix works
		}
		if br.Status == api.StatusDone {
			sawDone = true
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never evicted — Server.jobs leaks one BatchResponse per batch")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAsyncBurstCannotStarveSync: async batches may hold at most
// AsyncSlots queue slots, so with the async side saturated a sync
// caller still gets the reserved slot — and the surplus async
// submission bounces with a retryable 429.
func TestAsyncBurstCannotStarveSync(t *testing.T) {
	env := newEnv(t, func(o *serve.Options) { o.QueueDepth = 3 }) // AsyncSlots defaults to 2

	for _, wl := range []string{"block:tiny1", "block:tiny2"} {
		body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: []api.RunRequest{
			{Workload: wl, ICache: xscale8(), Scheme: api.SchemeBaseline},
		}})
		resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async submit of %s answered %d, want 202", wl, resp.StatusCode)
		}
	}
	waitInflight(t, env, 2)

	// The async side is at its cap: a further async batch is refused
	// even though a queue slot is free...
	body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: []api.RunRequest{
		{Workload: "tiny2", ICache: xscale8(), Scheme: api.SchemeWayMemoization},
	}})
	resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("async burst past the cap answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("fairness 429 lacks Retry-After (it is retryable)")
	}

	// ...while a sync caller takes the reserved slot and completes.
	syncResp, err := env.client.Run(context.Background(), []api.RunRequest{
		{Workload: "tiny1", ICache: xscale8(), Scheme: api.SchemeBaseline},
	})
	if err != nil {
		t.Fatalf("sync batch starved while async burst held the queue: %v", err)
	}
	if syncResp.Status != api.StatusDone {
		t.Fatalf("sync batch ended %q", syncResp.Status)
	}

	env.gate <- struct{}{}
	env.gate <- struct{}{}
}

// TestLargeBatchStreams: a MaxBatchCells-sized sync batch (4096
// cells) answers as one chunked JSON object that a v1 client decodes
// unchanged — the server streamed it result by result instead of
// buffering a multi-megabyte body.
func TestLargeBatchStreams(t *testing.T) {
	env := newEnv(t, nil)
	unique := smallBatch()
	reqs := make([]api.RunRequest, 4096)
	for i := range reqs {
		reqs[i] = unique[i%len(unique)]
	}
	body, _ := json.Marshal(api.BatchRequest{Requests: reqs})
	resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("4096-cell batch answered %d: %.300s", resp.StatusCode, b)
	}
	if resp.ContentLength != -1 {
		t.Errorf("response carries Content-Length %d — the body was buffered, not streamed", resp.ContentLength)
	}

	var br api.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("streamed body does not decode as one JSON object: %v", err)
	}
	if br.Status != api.StatusDone || len(br.Errors) != 0 {
		t.Fatalf("batch ended %q: %v", br.Status, br.Errors)
	}
	if len(br.Results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(br.Results), len(reqs))
	}
	specs, err := api.ToSpecs(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range br.Results {
		if rr.Key != specs[i].Key() || rr.Stats == nil {
			t.Fatalf("result %d: key %q stats %v", i, rr.Key, rr.Stats != nil)
		}
	}
	// 4096 requested cells collapse onto the unique specs: the repeats
	// come from the run cache, not 4096 simulations.
	if misses := env.eng.Misses(); misses != uint64(len(unique)) {
		t.Errorf("4096-cell batch cost %d simulations, want %d", misses, len(unique))
	}
}

// TestShutdownRacesAsyncSubmissions: Shutdown racing a burst of async
// submissions must drain cleanly — every job that was 202-accepted is
// final (done, never lost) once Shutdown returns. Run under -race.
func TestShutdownRacesAsyncSubmissions(t *testing.T) {
	env := newEnv(t, nil)

	var wg sync.WaitGroup
	accepted := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reqs := []api.RunRequest{{Workload: "tiny1", ICache: xscale8(),
				Scheme: api.SchemeWayPlacement, WPSizeBytes: uint32(i+1) << 9}}
			body, _ := json.Marshal(api.BatchRequest{Async: true, Requests: reqs})
			resp, err := http.Post(env.http.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var br api.BatchResponse
			json.NewDecoder(resp.Body).Decode(&br)
			if resp.StatusCode == http.StatusAccepted {
				accepted <- br.JobID
			}
		}(i)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownErr <- env.srv.Shutdown(ctx)
	}()

	wg.Wait()
	close(accepted)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown racing async submissions: %v", err)
	}
	for id := range accepted {
		jr, err := http.Get(env.http.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var br api.BatchResponse
		err = json.NewDecoder(jr.Body).Decode(&br)
		jr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if br.Status != api.StatusDone || len(br.Results) != 1 || br.Results[0].Stats == nil {
			t.Errorf("accepted job %s ended %q after drain (results: %d)", id, br.Status, len(br.Results))
		}
	}
}
