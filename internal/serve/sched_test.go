// White-box tests for the tenant-aware admission scheduler: quota
// verdicts, deficit-round-robin dispatch order, parking, drain and
// idle-state reclamation — all driven directly against the sched so
// the properties are deterministic, no HTTP involved.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wayplace/internal/obs"
)

func TestSchedQuotaVerdicts(t *testing.T) {
	s := newSched(4, 4, TenancyOptions{Slots: 2}, nil)
	ctx := context.Background()
	if v := s.admit(ctx, "a", false, 1); v != admitOK {
		t.Fatalf("first admit: %v", v)
	}
	if v := s.admit(ctx, "a", false, 1); v != admitOK {
		t.Fatalf("second admit: %v", v)
	}
	// Tenant "a" is at its quota while the pool still has room: that
	// is the per-tenant condition, not global backpressure.
	if v := s.admit(ctx, "a", false, 1); v != admitOverQuota {
		t.Fatalf("over-quota admit: got %v, want admitOverQuota", v)
	}
	// A different tenant keeps admitting.
	if v := s.admit(ctx, "b", false, 1); v != admitOK {
		t.Fatalf("other tenant: %v", v)
	}
	if v := s.admit(ctx, "b", false, 1); v != admitOK {
		t.Fatalf("other tenant second: %v", v)
	}
	// Now the pool itself is full: with no AdmitWait, a third tenant
	// sees queue_full, not over_quota — it holds nothing.
	if v := s.admit(ctx, "c", false, 1); v != admitQueueFull {
		t.Fatalf("full pool: got %v, want admitQueueFull", v)
	}
	s.release("a", false)
	if v := s.admit(ctx, "c", false, 1); v != admitOK {
		t.Fatalf("after release: %v", v)
	}
}

func TestSchedPerTenantAsyncQuota(t *testing.T) {
	s := newSched(8, 8, TenancyOptions{Slots: 4, AsyncSlots: 1}, nil)
	ctx := context.Background()
	if v := s.admit(ctx, "a", true, 1); v != admitOK {
		t.Fatalf("async admit: %v", v)
	}
	if v := s.admit(ctx, "a", true, 1); v != admitOverQuota {
		t.Fatalf("second async: got %v, want admitOverQuota", v)
	}
	// Sync slots are unaffected by the async sub-quota.
	if v := s.admit(ctx, "a", false, 1); v != admitOK {
		t.Fatalf("sync admit: %v", v)
	}
}

// pump holds the single slot, then repeatedly frees it and waits for
// the dispatcher to grant the next parked waiter, returning the grant
// order the DRR produced.
func TestSchedWeightedFairDispatch(t *testing.T) {
	s := newSched(1, 1, TenancyOptions{
		Slots:     1,
		Backlog:   8, // enough room to park each tenant's full burst
		AdmitWait: 10 * time.Second,
		Quantum:   1,
		Weights:   map[string]int{"heavy": 4, "light": 1},
	}, nil)
	ctx := context.Background()
	if v := s.admit(ctx, "seed", false, 1); v != admitOK {
		t.Fatalf("seed admit: %v", v)
	}

	granted := make(chan string, 16)
	const perTenant = 4
	const cost = 4 // > light's per-visit credit, so weight bites
	park := func(tenant string) {
		for i := 0; i < perTenant; i++ {
			go func() {
				if v := s.admit(ctx, tenant, false, cost); v == admitOK {
					granted <- tenant
				} else {
					granted <- "FAILED:" + tenant
				}
			}()
			// Park strictly in order so the FIFO invariant is testable.
			waitParked(t, s, tenant, i+1)
		}
	}
	park("light")
	park("heavy")

	var order []string
	current := "seed"
	for i := 0; i < 2*perTenant; i++ {
		s.release(current, false)
		select {
		case g := <-granted:
			if strings.HasPrefix(g, "FAILED:") {
				t.Fatalf("waiter failed: %s", g)
			}
			order = append(order, g)
			current = g
		case <-time.After(5 * time.Second):
			t.Fatalf("no grant after release %d; order so far %v", i, order)
		}
	}

	// Everyone was served eventually...
	counts := map[string]int{}
	for _, g := range order {
		counts[g]++
	}
	if counts["heavy"] != perTenant || counts["light"] != perTenant {
		t.Fatalf("grant counts %v, want %d each", counts, perTenant)
	}
	// ...but the weighted tenant dominated the contended prefix: with
	// weight 4 and cost 4 it grants every visit, while weight 1 banks
	// credit for 3-4 rotations per grant.
	heavyEarly := 0
	for _, g := range order[:perTenant] {
		if g == "heavy" {
			heavyEarly++
		}
	}
	if heavyEarly < perTenant-1 {
		t.Fatalf("first %d grants %v: want >= %d for the weight-4 tenant", perTenant, order[:perTenant], perTenant-1)
	}
}

// waitParked polls until the tenant has n parked waiters.
func waitParked(t *testing.T, s *sched, tenant string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		parked := 0
		if ts, ok := s.tenants[tenant]; ok {
			parked = len(ts.waiting)
		}
		s.mu.Unlock()
		if parked >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q never reached %d parked waiters", tenant, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedAdmitWaitTimesOut(t *testing.T) {
	s := newSched(1, 1, TenancyOptions{AdmitWait: 30 * time.Millisecond}, nil)
	ctx := context.Background()
	if v := s.admit(ctx, "holder", false, 1); v != admitOK {
		t.Fatal("seed admit failed")
	}
	start := time.Now()
	if v := s.admit(ctx, "waiter", false, 1); v != admitQueueFull {
		t.Fatalf("timed-out admit: got %v, want admitQueueFull", v)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("returned after %v — did not park for AdmitWait", waited)
	}
	// The timed-out waiter left no residue.
	s.mu.Lock()
	residue := s.waitingTotal + len(s.rotation)
	s.mu.Unlock()
	if residue != 0 {
		t.Fatalf("timed-out waiter left %d parked entries behind", residue)
	}
}

func TestSchedReleaseGrantsParkedWaiter(t *testing.T) {
	s := newSched(1, 1, TenancyOptions{AdmitWait: 10 * time.Second}, nil)
	ctx := context.Background()
	if v := s.admit(ctx, "holder", false, 1); v != admitOK {
		t.Fatal("seed admit failed")
	}
	done := make(chan admitVerdict, 1)
	go func() { done <- s.admit(ctx, "waiter", false, 1) }()
	waitParked(t, s, "waiter", 1)
	s.release("holder", false)
	select {
	case v := <-done:
		if v != admitOK {
			t.Fatalf("parked waiter: got %v, want admitOK", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked waiter never granted after release")
	}
}

func TestSchedDrainWakesWaiters(t *testing.T) {
	s := newSched(1, 1, TenancyOptions{AdmitWait: 10 * time.Second}, nil)
	ctx := context.Background()
	if v := s.admit(ctx, "holder", false, 1); v != admitOK {
		t.Fatal("seed admit failed")
	}
	done := make(chan admitVerdict, 1)
	go func() { done <- s.admit(ctx, "waiter", false, 1) }()
	waitParked(t, s, "waiter", 1)
	s.setDraining()
	select {
	case v := <-done:
		if v != admitQueueFull {
			t.Fatalf("drained waiter: got %v, want admitQueueFull", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not wake the parked waiter")
	}
	if v := s.admit(ctx, "late", false, 1); v != admitQueueFull {
		t.Fatal("post-drain admit must refuse")
	}
}

func TestSchedIdleTenantReclaimed(t *testing.T) {
	reg := obs.NewRegistry()
	gauge := reg.Gauge(MetricTenants)
	s := newSched(4, 4, TenancyOptions{IdleTTL: time.Minute}, gauge)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("t-%d", i)
		if v := s.admit(ctx, name, false, 1); v != admitOK {
			t.Fatalf("admit %s: %v", name, v)
		}
		s.release(name, false)
	}
	if got := s.tenantCount(); got != 10 {
		t.Fatalf("tracked tenants = %d, want 10", got)
	}
	// A tenant still holding a slot survives reclamation.
	if v := s.admit(ctx, "pinned", false, 1); v != admitOK {
		t.Fatal("pinned admit failed")
	}
	s.reap(time.Now().Add(2 * time.Minute))
	if got := s.tenantCount(); got != 1 {
		t.Fatalf("after reap: %d tenants tracked, want only the pinned one", got)
	}
	if got := gauge.Value(); got != 1 {
		t.Fatalf("%s gauge = %v, want 1", MetricTenants, got)
	}
	// The pinned tenant goes once it releases and idles out.
	s.release("pinned", false)
	s.reap(time.Now().Add(4 * time.Minute))
	if got := s.tenantCount(); got != 0 {
		t.Fatalf("after second reap: %d tenants tracked, want 0", got)
	}
}

// TestTenantFloodBoundedRegistry is the adversarial cardinality case:
// a flood of unique tenant ids must land on the overflow series past
// the cap — the registry stays bounded — and the scheduler's
// accounting map must be reclaimable afterwards (no per-tenant leak
// across a long run).
func TestTenantFloodBoundedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s := newBareServer(t, reg)
	handler := s.Handler()
	// The cell is schema-valid; the bare server's provider fails it,
	// which is fine — admission, per-tenant accounting and metrics all
	// happen regardless, and no simulation keeps the flood fast.
	body := `{"requests":[{"workload":"w","icache":{"size_bytes":8192,"ways":8,"line_bytes":32},"scheme":"baseline"}]}`

	total := keyCardinalityCap + 200
	for i := 0; i < total; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(body))
		req.Header.Set("X-WP-Tenant", fmt.Sprintf("flood-%05d", i))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("flood request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	series := 0
	for name := range reg.Dump().Counters {
		if strings.HasPrefix(name, MetricTenantBatches+"{") {
			series++
		}
	}
	if series != keyCardinalityCap+1 {
		t.Fatalf("registry holds %d per-tenant series, want cap+1 = %d", series, keyCardinalityCap+1)
	}
	of := s.tenantBatches.Overflow()
	if of == nil || of.Value() != uint64(total-keyCardinalityCap) {
		t.Fatalf("overflow series = %v, want %d", of.Value(), total-keyCardinalityCap)
	}

	// Quota state: every flood tenant is tracked now, and all of it is
	// reclaimed once idle past the TTL.
	if got := s.sched.tenantCount(); got != total {
		t.Fatalf("scheduler tracks %d tenants, want %d", got, total)
	}
	s.sched.reap(time.Now().Add(10 * time.Minute))
	if got := s.sched.tenantCount(); got != 0 {
		t.Fatalf("after reap the scheduler still tracks %d tenants — map leak", got)
	}
	if got := reg.Dump().Gauges[MetricTenants]; got != 0 {
		t.Fatalf("%s gauge = %v after reap, want 0", MetricTenants, got)
	}
}

// The natural sweep path: creating a fresh tenant triggers
// reclamation of expired ones (rate-limited), so a long-running
// daemon reclaims without anyone calling reap.
func TestSchedCreationSweep(t *testing.T) {
	s := newSched(4, 4, TenancyOptions{IdleTTL: time.Nanosecond}, nil)
	ctx := context.Background()
	s.admit(ctx, "old", false, 1)
	s.release("old", false)
	// Push lastSweep into the past so the rate limiter lets the next
	// creation sweep.
	s.mu.Lock()
	s.lastSweep = time.Now().Add(-time.Hour)
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // let "old" idle past the 1ns TTL
	s.admit(ctx, "new", false, 1)
	s.mu.Lock()
	_, oldAlive := s.tenants["old"]
	s.mu.Unlock()
	if oldAlive {
		t.Fatal("creation-path sweep did not reclaim the idle tenant")
	}
}

// Sanity: a sync admission parked behind a quota-blocked tenant's
// waiters is still granted — the rotation never deadlocks on a
// quota-blocked head.
func TestSchedQuotaBlockedHeadDoesNotStallOthers(t *testing.T) {
	s := newSched(3, 3, TenancyOptions{Slots: 2, Backlog: 2, AdmitWait: 10 * time.Second}, nil)
	ctx := context.Background()
	if v := s.admit(ctx, "hog", false, 1); v != admitOK {
		t.Fatal("hog seed failed")
	}
	if v := s.admit(ctx, "filler", false, 1); v != admitOK {
		t.Fatal("filler seed 1 failed")
	}
	if v := s.admit(ctx, "filler2", false, 1); v != admitOK {
		t.Fatal("filler seed 2 failed")
	}
	// The hog parks two waiters while still under its quota (held 1 of
	// 2); the first grant will take it *to* quota, leaving the second
	// parked behind a quota-blocked head.
	hogDone := make(chan admitVerdict, 2)
	go func() { hogDone <- s.admit(ctx, "hog", false, 1) }()
	waitParked(t, s, "hog", 1)
	go func() { hogDone <- s.admit(ctx, "hog", false, 1) }()
	waitParked(t, s, "hog", 2)
	// A polite tenant parks behind them.
	politeDone := make(chan admitVerdict, 1)
	go func() { politeDone <- s.admit(ctx, "polite", false, 1) }()
	waitParked(t, s, "polite", 1)
	// First free slot: the hog's first waiter is granted, reaching its
	// quota of 2.
	s.release("filler", false)
	select {
	case v := <-hogDone:
		if v != admitOK {
			t.Fatalf("hog waiter 1: got %v, want admitOK", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hog waiter 1 never granted")
	}
	// Second free slot: the hog's remaining waiter is quota-blocked
	// and must not stall the rotation — the polite tenant is granted.
	s.release("filler2", false)
	select {
	case v := <-politeDone:
		if v != admitOK {
			t.Fatalf("polite waiter: got %v, want admitOK", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("polite waiter starved behind a quota-blocked head")
	}
	// The hog's parked waiter is granted once the hog's own slot frees.
	s.release("hog", false)
	select {
	case v := <-hogDone:
		if v != admitOK {
			t.Fatalf("hog waiter 2: got %v, want admitOK", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hog waiter 2 never granted after its own release")
	}
}
