package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/engine"
	"wayplace/internal/sim"
)

// NewTransport returns an http.Transport tuned for sustained fan-out
// against one (or a few) wpserved hosts: keep-alives on and an idle
// pool of perHost connections per host, so a coordinator fanning a
// batch stream out to its backends — or a wpload fleet hammering one
// daemon — reuses warm connections instead of opening (and
// TIME_WAIT-parking) a fresh ephemeral port per request. perHost
// should be at least the caller's request concurrency toward a single
// host; values <= 0 pick 256. (net/http's DefaultTransport caps idle
// connections at 2 per host, which under a 200-client fan-out closes
// and reopens almost every connection.)
func NewTransport(perHost int) *http.Transport {
	if perHost <= 0 {
		perHost = 256
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        2 * perHost,
		MaxIdleConnsPerHost: perHost,
		IdleConnTimeout:     90 * time.Second,
	}
}

// defaultClient backs every Client whose HTTP field is nil. One
// shared tuned transport (rather than http.DefaultClient) means all
// default clients in a process pool their connections.
var defaultClient = &http.Client{Transport: NewTransport(0)}

// BusyError is the typed form of a 429 the client could not retry
// away: either the retry budget ran out while the server kept
// answering busy-with-Retry-After, or the rejection was permanent (no
// Retry-After — an oversized batch that can never succeed as-is).
// Callers that can reroute work — the fleet coordinator failing over
// to another backend, or propagating the backoff hint upstream — use
// errors.As to tell the two apart.
type BusyError struct {
	// Msg is the server's error message.
	Msg string
	// Code is the machine-readable error code from the server's
	// ErrorResponse (api.CodeQueueFull, api.CodeOverQuota,
	// api.CodeBatchTooLarge, ...). Empty when talking to a pre-code
	// server.
	Code string
	// RetryAfter is the last backoff hint received; zero when the
	// rejection was permanent.
	RetryAfter time.Duration
	// Permanent means the rejection cannot be retried away:
	// retryable=false in the coded schema, or — against a pre-code
	// server — no Retry-After accompanied the 429 (an oversized batch
	// that can never succeed as-is).
	Permanent bool
}

func (e *BusyError) Error() string { return fmt.Sprintf("serve: %s (429)", e.Msg) }

// Client talks the api schema to a wpserved instance — or to a
// wpcoordd coordinator, which speaks the identical v1 surface.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8100".
	BaseURL string
	// HTTP is the transport; nil means a process-wide client over a
	// keep-alive pooled transport (NewTransport).
	HTTP *http.Client
	// MaxRetries bounds how many 429 answers are retried (honouring
	// Retry-After) before giving up. Default 4; negative disables
	// retrying.
	MaxRetries int
	// Tenant, when non-empty, is sent as the X-WP-Tenant header on
	// every request, so the server accounts and schedules this
	// client's work under that identity instead of its remote address.
	Tenant api.Tenant
}

// NewClient returns a client for the given server root.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, MaxRetries: 4}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient
}

// Run executes one synchronous batch, retrying on 429 with the
// server's Retry-After hint. A response with failed cells is returned
// as-is — callers inspect BatchResponse.Errors.
func (c *Client) Run(ctx context.Context, reqs []api.RunRequest) (*api.BatchResponse, error) {
	body, err := json.Marshal(api.BatchRequest{APIVersion: api.Version, Requests: reqs})
	if err != nil {
		return nil, err
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 4
	}
	for attempt := 0; ; attempt++ {
		resp, retryAfter, retryable, err := c.post(ctx, bytes.NewReader(body))
		if err == nil {
			return resp, nil
		}
		if !retryable || attempt >= retries {
			return nil, err
		}
		if retryAfter > 0 {
			select {
			case <-time.After(retryAfter):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else if err := ctx.Err(); err != nil {
			// Retry-After: 0 means retry immediately — but never spin
			// past a cancelled context.
			return nil, err
		}
	}
}

// post performs one POST /v1/runs exchange. A 429 answer reports
// whether (and after how long) it may be retried.
func (c *Client) post(ctx context.Context, body io.Reader) (*api.BatchResponse, time.Duration, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/runs", body)
	if err != nil {
		return nil, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set(api.TenantHeader, string(c.Tenant))
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, false, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode == http.StatusTooManyRequests {
		msg := "server busy"
		var eresp api.ErrorResponse
		if json.NewDecoder(httpResp.Body).Decode(&eresp) == nil && eresp.Error != "" {
			msg = eresp.Error
		}
		retry, hinted := api.ParseRetryAfter(httpResp.Header.Get("Retry-After"), time.Now())
		// A coded answer states retryability outright; against a
		// pre-code server, fall back to sniffing the Retry-After hint —
		// in either RFC 9110 form, delta-seconds or HTTP-date, where
		// "0" is a valid hint meaning retry immediately. A 429 without
		// one (oversized batch) is a permanent rejection.
		ok := hinted
		if eresp.Code != "" {
			ok = eresp.Retryable
		}
		return nil, retry, ok, &BusyError{Msg: msg, Code: eresp.Code, RetryAfter: retry, Permanent: !ok}
	}
	if httpResp.StatusCode != http.StatusOK {
		var eresp api.ErrorResponse
		if json.NewDecoder(httpResp.Body).Decode(&eresp) == nil && eresp.Error != "" {
			if len(eresp.Fields) > 0 {
				return nil, 0, false, fmt.Errorf("serve: %s (%d): %w", eresp.Error, httpResp.StatusCode,
					&api.ValidationError{Fields: eresp.Fields})
			}
			return nil, 0, false, fmt.Errorf("serve: %s (%d)", eresp.Error, httpResp.StatusCode)
		}
		return nil, 0, false, fmt.Errorf("serve: unexpected status %d", httpResp.StatusCode)
	}
	var resp api.BatchResponse
	err = json.NewDecoder(httpResp.Body).Decode(&resp)
	// Drain the residual body (trailing newline, chunk terminator) so
	// the transport sees EOF and pools the connection for reuse.
	io.Copy(io.Discard, httpResp.Body)
	if err != nil {
		return nil, 0, false, fmt.Errorf("serve: decoding response: %w", err)
	}
	if resp.APIVersion != api.Version {
		return nil, 0, false, fmt.Errorf("serve: server speaks api %q, client %q", resp.APIVersion, api.Version)
	}
	return &resp, 0, false, nil
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: healthz status %d", httpResp.StatusCode)
	}
	var h map[string]any
	err = json.NewDecoder(httpResp.Body).Decode(&h)
	io.Copy(io.Discard, httpResp.Body)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// RemoteRunner adapts a Client to the experiment.Runner seam: a suite
// with SetRunner(NewRemoteRunner(client)) executes its standard grids
// on the shared server engine, so figure sweeps from many processes
// hit one run cache. The aggregation code above the seam is
// unchanged, which is what keeps CSV output byte-identical between
// local and served runs.
type RemoteRunner struct {
	Client *Client
}

// NewRemoteRunner wraps a client as a batch runner.
func NewRemoteRunner(c *Client) *RemoteRunner { return &RemoteRunner{Client: c} }

// Run ships the specs as one api batch and maps the answer back onto
// engine results, preserving input order and the engine's error
// contract: per-cell failures come back as a *engine.MultiError with
// nil result slots.
func (r *RemoteRunner) Run(ctx context.Context, specs []engine.RunSpec, opts ...engine.Option) ([]*engine.Result, error) {
	if len(opts) > 0 {
		return nil, fmt.Errorf("serve: per-batch engine options are not expressible over the wire; run this batch on a local engine")
	}
	reqs := make([]api.RunRequest, len(specs))
	for i, s := range specs {
		reqs[i] = api.RequestOf(s)
	}
	resp, err := r.Client.Run(ctx, reqs)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(specs) {
		return nil, fmt.Errorf("serve: server answered %d results for %d cells", len(resp.Results), len(specs))
	}
	failed := make(map[int]string, len(resp.Errors))
	for _, f := range resp.Errors {
		failed[f.Index] = f.Error
	}
	results := make([]*engine.Result, len(specs))
	var merr engine.MultiError
	for i, rr := range resp.Results {
		if msg, ok := failed[i]; ok || rr.Stats == nil {
			if msg == "" {
				msg = "cell failed"
			}
			merr.Errors = append(merr.Errors, &engine.CellError{Spec: specs[i], Err: fmt.Errorf("%s", msg)})
			continue
		}
		results[i] = &engine.Result{
			Spec:        specs[i],
			Stats:       rr.Stats,
			AreaChanges: areaChangesOf(rr.AreaChanges),
			Wall:        time.Duration(rr.WallSeconds * float64(time.Second)),
			CacheHit:    rr.CacheHit,
			GroupID:     rr.GroupID,
		}
	}
	if len(merr.Errors) > 0 {
		return results, &merr
	}
	return results, nil
}

func areaChangesOf(wire []api.AreaChange) []sim.AreaChange {
	if len(wire) == 0 {
		return nil
	}
	out := make([]sim.AreaChange, len(wire))
	for i, ch := range wire {
		out[i] = sim.AreaChange{AtInstr: ch.AtInstr, Size: ch.SizeBytes}
	}
	return out
}
