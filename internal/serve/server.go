// Package serve exposes the experiment engine as a long-running JSON
// service. One wpserved process owns a single engine.Engine, so every
// client — concurrent figure sweeps, ad hoc curl requests, repeated
// CI runs — shares one warm memoized run cache: a cell any client has
// ever requested is simulated exactly once for the life of the
// daemon.
//
// The wire surface is internal/api: POST /v1/runs takes a
// BatchRequest and answers synchronously by default, or — with
// "async": true — immediately with a deterministic job id
// (api.BatchKey) to poll at GET /v1/runs/{id}. Identical async
// batches coalesce onto one job, so re-submissions attach instead of
// duplicating work. GET /healthz reports liveness and queue levels;
// GET /metrics re-exposes the installed obs.Registry in Prometheus
// text (or JSON with ?format=json).
//
// Backpressure is explicit: a bounded batch queue answers 429 with a
// Retry-After header (never OOM) once the server is saturated, and
// oversized batches are rejected the same way before any cell runs.
// Shutdown drains: in-flight batches run to completion while the
// listener stops accepting new work.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/engine"
	"wayplace/internal/obs"
)

// Metric names the server registers on the installed registry, next
// to the engine_* instruments of the shared engine.
const (
	// MetricBatches: batches accepted (sync and async).
	MetricBatches = "serve_batches_total"
	// MetricRejected: batches refused with 429 (queue full or
	// oversized).
	MetricRejected = "serve_rejected_total"
	// MetricInflight: batches currently queued or running.
	MetricInflight = "serve_inflight_batches"
	// MetricCellHits is the per-cell run-cache hit family; each series
	// is labelled with the cell's canonical engine.RunSpec.Key(), so a
	// scrape shows exactly which cells the warm cache is serving.
	MetricCellHits = "serve_run_cache_hits_total"

	// keyCardinalityCap bounds the number of distinct per-key series;
	// past it, further cells land on the key="overflow" series so a
	// hostile or huge sweep cannot grow the registry without bound.
	keyCardinalityCap = 1024
)

// Options configures a Server.
type Options struct {
	// Engine is the shared scheduler; required.
	Engine *engine.Engine
	// Registry, when non-nil, receives serve_* instruments and is
	// re-exposed at GET /metrics. Install the same registry on the
	// engine (engine.WithObserver) to serve its metrics too.
	Registry *obs.Registry
	// QueueDepth bounds how many batches may be queued or running at
	// once; further POSTs get 429. Default 8.
	QueueDepth int
	// MaxBatchCells bounds the cells of one batch; larger batches get
	// 429 before any work starts. Default 4096.
	MaxBatchCells int
	// RunTimeout bounds one batch's execution; 0 means none.
	RunTimeout time.Duration
	// RetryAfter is the backoff hint sent with 429. Default 1s.
	RetryAfter time.Duration
}

// Server is the HTTP facade over one shared engine.
type Server struct {
	opt  Options
	jobs sync.Map // job id -> *job
	wg   sync.WaitGroup

	mu       sync.Mutex
	draining bool
	slots    chan struct{}

	batches  *obs.Counter
	rejected *obs.Counter
	inflight *obs.Gauge
	keyMu    sync.Mutex
	keySet   map[string]*obs.Counter
}

// job is one async batch. done closes when resp is final.
type job struct {
	id   string
	done chan struct{}

	mu     sync.Mutex
	status string
	resp   *api.BatchResponse
}

// New builds a server over the shared engine.
func New(opt Options) (*Server, error) {
	if opt.Engine == nil {
		return nil, fmt.Errorf("serve: Options.Engine is required")
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 8
	}
	if opt.MaxBatchCells <= 0 {
		opt.MaxBatchCells = 4096
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	return &Server{
		opt:      opt,
		slots:    make(chan struct{}, opt.QueueDepth),
		batches:  opt.Registry.Counter(MetricBatches),
		rejected: opt.Registry.Counter(MetricRejected),
		inflight: opt.Registry.Gauge(MetricInflight),
		keySet:   make(map[string]*obs.Counter),
	}, nil
}

// Handler returns the route mux. Mount it on an http.Server (wpserved
// does) or an httptest.Server (the tests do).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Shutdown drains the server: new batches are refused with 429 and
// the call blocks until every queued and in-flight batch (sync and
// async) has completed, or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// acquire claims a queue slot without blocking; ok=false means the
// caller must answer 429. While a drain is in progress no new slots
// are handed out.
func (s *Server) acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	select {
	case s.slots <- struct{}{}:
		s.wg.Add(1)
		s.inflight.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	<-s.slots
	s.wg.Done()
	s.inflight.Add(-1)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	var breq api.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, api.ErrorResponse{Error: "malformed JSON: " + err.Error()})
		return
	}
	if breq.APIVersion != "" && breq.APIVersion != api.Version {
		writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error: fmt.Sprintf("api_version %q not supported (server speaks %q)", breq.APIVersion, api.Version),
		})
		return
	}
	if len(breq.Requests) == 0 {
		writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error:  "empty batch",
			Fields: []api.FieldError{{Field: "requests", Message: "must contain at least one run request"}},
		})
		return
	}
	if len(breq.Requests) > s.opt.MaxBatchCells {
		// 429 without Retry-After: resubmitting the same batch can
		// never succeed — the client must split the sweep.
		s.rejected.Inc()
		writeError(w, http.StatusTooManyRequests, api.ErrorResponse{
			Error: fmt.Sprintf("batch of %d cells exceeds the server limit of %d; split the sweep",
				len(breq.Requests), s.opt.MaxBatchCells),
		})
		return
	}
	specs, err := api.ToSpecs(breq.Requests)
	if err != nil {
		resp := api.ErrorResponse{Error: "invalid batch"}
		if verr, ok := err.(*api.ValidationError); ok {
			resp.Fields = verr.Fields
		} else {
			resp.Error = err.Error()
		}
		writeError(w, http.StatusBadRequest, resp)
		return
	}

	if breq.Async {
		s.startAsync(w, &breq, specs)
		return
	}
	if !s.acquire() {
		s.rejected.Inc()
		s.writeBusy(w, "server at capacity")
		return
	}
	defer s.release()
	s.batches.Inc()
	// Run under the request context so a disconnected client cancels
	// its own cells; Shutdown still drains connected clients because
	// http.Server.Shutdown leaves active request contexts alone.
	resp := s.runBatch(r.Context(), &breq, specs)
	writeJSON(w, http.StatusOK, resp)
}

// startAsync registers (or re-attaches to) the deterministic job for
// this batch and answers 202 immediately.
func (s *Server) startAsync(w http.ResponseWriter, breq *api.BatchRequest, specs []engine.RunSpec) {
	id := api.BatchKey(breq.Requests)
	j := &job{id: id, status: api.StatusQueued, done: make(chan struct{})}
	if cur, loaded := s.jobs.LoadOrStore(id, j); loaded {
		// Identical batch already known: report its current state
		// instead of queueing duplicate work.
		writeJSON(w, http.StatusAccepted, cur.(*job).snapshot())
		return
	}
	if !s.acquire() {
		s.rejected.Inc()
		s.jobs.Delete(id)
		s.writeBusy(w, "server at capacity")
		return
	}
	s.batches.Inc()
	go func() {
		defer s.release()
		j.setStatus(api.StatusRunning)
		// Async jobs outlive their submitting request, so they run
		// under the background context; Shutdown waits for them.
		resp := s.runBatch(context.Background(), breq, specs)
		j.finish(resp)
	}()
	writeJSON(w, http.StatusAccepted, api.BatchResponse{
		APIVersion: api.Version, JobID: id, Status: api.StatusQueued,
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.jobs.Load(id)
	if !ok {
		writeError(w, http.StatusNotFound, api.ErrorResponse{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, v.(*job).snapshot())
}

// runBatch executes one validated batch on the shared engine and maps
// the outcome onto the wire schema. Per-cell failures become indexed
// CellFailures; the batch itself always yields a BatchResponse. The
// optional coalesce field selects single-pass grouping per batch; the
// v1 semantics — results, ordering, statistics — are identical either
// way, so v1 clients that never send the field see no change.
func (s *Server) runBatch(ctx context.Context, breq *api.BatchRequest, specs []engine.RunSpec) *api.BatchResponse {
	reqs := breq.Requests
	if s.opt.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.RunTimeout)
		defer cancel()
	}
	var opts []engine.Option
	if breq.Coalesce != nil {
		opts = append(opts, engine.WithCoalesce(*breq.Coalesce))
	}
	results, err := s.opt.Engine.Run(ctx, specs, opts...)
	resp := &api.BatchResponse{
		APIVersion: api.Version,
		JobID:      api.BatchKey(reqs),
		Status:     api.StatusDone,
		Results:    make([]api.RunResult, len(results)),
	}
	failed := make(map[engine.RunSpec]string)
	if err != nil {
		if merr, ok := err.(*engine.MultiError); ok {
			for _, cellErr := range merr.Errors {
				if ce, ok := cellErr.(*engine.CellError); ok {
					failed[ce.Spec] = ce.Err.Error()
				}
			}
		} else {
			resp.Status = api.StatusFailed
			resp.Errors = append(resp.Errors, api.CellFailure{Index: -1, Error: err.Error()})
			return resp
		}
	}
	for i, res := range results {
		if res == nil {
			msg := failed[specs[i]]
			if msg == "" {
				msg = "cell failed"
			}
			resp.Status = api.StatusFailed
			resp.Errors = append(resp.Errors, api.CellFailure{Index: i, Key: specs[i].Key(), Error: msg})
			resp.Results[i] = api.RunResult{Request: reqs[i], Key: specs[i].Key()}
			continue
		}
		resp.Results[i] = api.ResultOf(res)
		if res.CacheHit {
			s.countHit(specs[i].Key())
		}
	}
	return resp
}

// countHit bumps the per-key run-cache hit series, folding keys past
// the cardinality cap into one overflow series.
func (s *Server) countHit(key string) {
	if s.opt.Registry == nil {
		return
	}
	s.keyMu.Lock()
	c, ok := s.keySet[key]
	if !ok {
		if len(s.keySet) >= keyCardinalityCap {
			key = "overflow"
		}
		c = s.opt.Registry.Counter(obs.LabeledName(MetricCellHits, "key", key))
		s.keySet[key] = c
	}
	s.keyMu.Unlock()
	c.Inc()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"api_version":  api.Version,
		"queue_depth":  s.opt.QueueDepth,
		"inflight":     len(s.slots),
		"cache_hits":   s.opt.Engine.Hits(),
		"cache_misses": s.opt.Engine.Misses(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opt.Registry == nil {
		http.Error(w, "no metrics registry installed", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.opt.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opt.Registry.WritePrometheus(w)
}

// writeBusy answers 429 with the Retry-After header and a body that
// mirrors it for clients that only parse JSON.
func (s *Server) writeBusy(w http.ResponseWriter, msg string) {
	retry := s.opt.RetryAfter
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	writeError(w, http.StatusTooManyRequests, api.ErrorResponse{
		Error:             msg,
		RetryAfterSeconds: retry.Seconds(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, resp api.ErrorResponse) {
	writeJSON(w, code, resp)
}

func (j *job) setStatus(st string) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

func (j *job) finish(resp *api.BatchResponse) {
	j.mu.Lock()
	j.status = resp.Status
	j.resp = resp
	j.mu.Unlock()
	close(j.done)
}

// snapshot renders the job's current state as a poll answer: the full
// response once done, a status-only shell while queued or running.
func (j *job) snapshot() *api.BatchResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		return j.resp
	}
	return &api.BatchResponse{APIVersion: api.Version, JobID: j.id, Status: j.status}
}
