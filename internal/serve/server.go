// Package serve exposes the experiment engine as a long-running JSON
// service. One wpserved process owns a single engine.Engine, so every
// client — concurrent figure sweeps, ad hoc curl requests, repeated
// CI runs — shares one warm memoized run cache: a cell any client has
// ever requested is simulated exactly once for the life of the
// daemon.
//
// The wire surface is internal/api: POST /v1/runs takes a
// BatchRequest and answers synchronously by default, or — with
// "async": true — immediately with a deterministic job id
// (api.BatchKey) to poll at GET /v1/runs/{id}. Identical async
// batches coalesce onto one job, so re-submissions attach instead of
// duplicating work. GET /healthz reports liveness and queue levels;
// GET /metrics re-exposes the installed obs.Registry in Prometheus
// text (or JSON with ?format=json).
//
// Backpressure is explicit: a bounded batch queue answers 429 with a
// Retry-After header (never OOM) once the server is saturated, and
// oversized batches are rejected the same way before any cell runs.
// Shutdown drains: in-flight batches run to completion while the
// listener stops accepting new work.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/engine"
	"wayplace/internal/obs"
	"wayplace/internal/store"
)

// Metric names the server registers on the installed registry, next
// to the engine_* instruments of the shared engine.
const (
	// MetricBatches: batches accepted (sync and async).
	MetricBatches = "serve_batches_total"
	// MetricRejected: batches refused with 429 (queue full or
	// oversized).
	MetricRejected = "serve_rejected_total"
	// MetricInflight: batches currently queued or running.
	MetricInflight = "serve_inflight_batches"
	// MetricCellHits is the per-cell run-cache hit family; each series
	// is labelled with the cell's canonical engine.RunSpec.Key(), so a
	// scrape shows exactly which cells the warm cache is serving.
	MetricCellHits = "serve_run_cache_hits_total"
	// MetricWriteErrors: response bodies that failed mid-write after
	// headers were sent. The client saw a truncated 200 — invisible in
	// status-code metrics, so it gets its own counter.
	MetricWriteErrors = "serve_write_errors_total"
	// MetricReplayJobs: journal jobs currently being replayed after a
	// restart (gauge — drops to 0 once boot recovery is complete).
	MetricReplayJobs = "serve_replay_jobs"
	// MetricReplayedJobs: journal jobs recovered across restarts, ever.
	MetricReplayedJobs = "serve_replayed_jobs_total"
	// MetricTenantBatches is the per-tenant accepted-batch family,
	// labelled by tenant id (cardinality-capped like MetricCellHits).
	MetricTenantBatches = "serve_tenant_batches_total"
	// MetricTenantOverQuota counts per-tenant quota rejections — the
	// 429s only that tenant's own traffic caused.
	MetricTenantOverQuota = "serve_tenant_over_quota_total"
	// MetricTenantRejected counts per-tenant queue_full rejections —
	// global backpressure attributed to whoever observed it.
	MetricTenantRejected = "serve_tenant_rejected_total"
	// MetricTenants: tenants currently tracked by the admission
	// scheduler (gauge; idle tenants age out after Tenancy.IdleTTL).
	MetricTenants = "serve_tenants"
	// MetricAdmitWait is the admission-wait histogram in nanoseconds:
	// time from arrival to slot grant for admitted batches. Near zero
	// with an uncontended pool; under contention it is the queueing
	// delay the weighted-fair dispatcher is distributing.
	MetricAdmitWait = "serve_admission_wait_ns"

	// keyCardinalityCap bounds the number of distinct series per
	// labeled family (cell keys, tenant ids); past it, further values
	// land on the shared "overflow" series so a hostile or huge label
	// set cannot grow the registry without bound. The memo/overflow
	// mechanics live in obs.CounterVec.
	keyCardinalityCap = 1024
)

// Options configures a Server.
type Options struct {
	// Engine is the shared scheduler; required.
	Engine *engine.Engine
	// Registry, when non-nil, receives serve_* instruments and is
	// re-exposed at GET /metrics. Install the same registry on the
	// engine (engine.WithObserver) to serve its metrics too.
	Registry *obs.Registry
	// QueueDepth bounds how many batches may be queued or running at
	// once; further POSTs get 429. Default 8.
	QueueDepth int
	// MaxBatchCells bounds the cells of one batch; larger batches get
	// 429 before any work starts. Default 4096.
	MaxBatchCells int
	// RunTimeout bounds one batch's execution; 0 means none.
	RunTimeout time.Duration
	// RetryAfter is the backoff hint sent with 429. Default 1s.
	RetryAfter time.Duration
	// AsyncSlots caps how many queue slots async batches may hold at
	// once, reserving the remainder for sync callers so an async burst
	// can never starve them indefinitely. Default QueueDepth-1
	// (minimum 1); clamped to [1, QueueDepth].
	AsyncSlots int
	// JobTTL is how long a finished async job stays pollable before it
	// is evicted (poll answers 404 afterwards; resubmitting the batch
	// recomputes against the warm run cache). 0 means the default of
	// 10 minutes; negative disables eviction.
	JobTTL time.Duration
	// Journal, when non-nil, makes async jobs crash-durable: every
	// accepted batch is appended and fsync'd *before* its 202 leaves
	// the server, completions are marked, and New replays the journal
	// — unfinished jobs resume execution, finished ones stay pollable
	// for the remainder of their JobTTL. Pair it with a store-backed
	// engine (engine.WithStore) so replayed finished jobs reload their
	// results instead of re-simulating.
	Journal *store.Journal
	// Tenancy configures per-tenant quotas and weighted-fair dispatch.
	// The zero value is exactly the pre-tenancy behaviour: one shared
	// pool, immediate 429 when full.
	Tenancy TenancyOptions
	// ServiceDelay adds an artificial per-cell service time to every
	// batch, held while the batch occupies its admission slot. Load
	// and fairness harnesses need it: warm-cache cells are answered in
	// microseconds, so without a floor on slot occupancy the admission
	// scheduler never becomes the contended resource being measured.
	// 0 (the default, and the only sensible production value) adds
	// nothing.
	ServiceDelay time.Duration
}

// Server is the HTTP facade over one shared engine.
type Server struct {
	opt   Options
	jobs  sync.Map // job id -> *job
	wg    sync.WaitGroup
	sched *sched // tenant-aware slot pool; owns the draining flag

	mu sync.Mutex
	// evictions tracks the TTL timer armed per finished job, so
	// Shutdown can stop them: an untracked time.AfterFunc would
	// outlive the drain and fire into a dead server.
	evictions map[string]*time.Timer
	stopped   bool // Shutdown completed; no new eviction timers

	batches   *obs.Counter
	rejected  *obs.Counter
	writeErrs *obs.Counter
	inflight  *obs.Gauge
	replaying *obs.Gauge
	replayed  *obs.Counter
	admitWait *obs.Histogram
	// hits is the per-key run-cache hit family; the tenant families
	// share the same cardinality-cap discipline (obs.CounterVec).
	hits            *obs.CounterVec
	tenantBatches   *obs.CounterVec
	tenantOverQuota *obs.CounterVec
	tenantRejected  *obs.CounterVec
}

// job is one async batch. done closes when resp is final.
type job struct {
	id   string
	done chan struct{}

	mu     sync.Mutex
	status string
	resp   *api.BatchResponse
}

// New builds a server over the shared engine.
func New(opt Options) (*Server, error) {
	if opt.Engine == nil {
		return nil, fmt.Errorf("serve: Options.Engine is required")
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 8
	}
	if opt.MaxBatchCells <= 0 {
		opt.MaxBatchCells = 4096
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	if opt.AsyncSlots <= 0 {
		opt.AsyncSlots = opt.QueueDepth - 1
	}
	if opt.AsyncSlots < 1 {
		opt.AsyncSlots = 1
	}
	if opt.AsyncSlots > opt.QueueDepth {
		opt.AsyncSlots = opt.QueueDepth
	}
	if opt.JobTTL == 0 {
		opt.JobTTL = 10 * time.Minute
	}
	s := &Server{
		opt:             opt,
		evictions:       make(map[string]*time.Timer),
		batches:         opt.Registry.Counter(MetricBatches),
		rejected:        opt.Registry.Counter(MetricRejected),
		writeErrs:       opt.Registry.Counter(MetricWriteErrors),
		inflight:        opt.Registry.Gauge(MetricInflight),
		replaying:       opt.Registry.Gauge(MetricReplayJobs),
		replayed:        opt.Registry.Counter(MetricReplayedJobs),
		admitWait:       opt.Registry.Histogram(MetricAdmitWait),
		hits:            opt.Registry.CounterVec(MetricCellHits, "key", keyCardinalityCap),
		tenantBatches:   opt.Registry.CounterVec(MetricTenantBatches, "tenant", keyCardinalityCap),
		tenantOverQuota: opt.Registry.CounterVec(MetricTenantOverQuota, "tenant", keyCardinalityCap),
		tenantRejected:  opt.Registry.CounterVec(MetricTenantRejected, "tenant", keyCardinalityCap),
	}
	s.sched = newSched(opt.QueueDepth, opt.AsyncSlots, opt.Tenancy, opt.Registry.Gauge(MetricTenants))
	if opt.Journal != nil {
		if err := s.replayJournal(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// replayJournal is boot recovery: decode the journal, drop expired
// done jobs, compact the file to the survivors, and re-register every
// live job — unfinished ones resume execution, finished ones are
// recomputed (pure store/run-cache hits when the engine has a durable
// tier) so their 202 ids poll 200 again. Replayed jobs run outside
// the queue: they already held capacity when they were accepted, and
// refusing them now would orphan ids the server promised to honour.
func (s *Server) replayJournal() error {
	jobs, err := s.opt.Journal.Replay()
	if err != nil {
		return err
	}
	now := time.Now()
	var live []store.JournalJob
	for _, jj := range jobs {
		if jj.Done && s.opt.JobTTL >= 0 && now.Sub(jj.DoneAt) >= s.opt.JobTTL {
			continue // finished and expired: clients were told 404 already
		}
		live = append(live, jj)
	}
	if err := s.opt.Journal.Compact(live); err != nil {
		return err
	}
	for _, jj := range live {
		specs, err := api.ToSpecs(jj.Batch.Requests)
		if err != nil {
			// A batch that validated when accepted no longer does —
			// schema drift across a version upgrade. Nothing can run
			// it; dropping it is the honest answer (polls get 404).
			log.Printf("serve: journal job %s no longer validates, dropping: %v", jj.ID, err)
			continue
		}
		j := &job{id: jj.ID, status: api.StatusQueued, done: make(chan struct{})}
		s.jobs.Store(jj.ID, j)
		ttl := s.opt.JobTTL
		if jj.Done && ttl >= 0 {
			ttl -= now.Sub(jj.DoneAt) // keep, don't extend, the original eviction horizon
		}
		jj := jj
		s.wg.Add(1)
		s.replaying.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.replaying.Add(-1)
			j.setStatus(api.StatusRunning)
			resp := s.runBatch(context.Background(), &jj.Batch, specs)
			j.finish(resp)
			if !jj.Done {
				if err := s.opt.Journal.Done(jj.ID); err != nil {
					log.Printf("serve: journal done mark for %s failed: %v", jj.ID, err)
				}
			}
			s.replayed.Inc()
			s.scheduleEvictionAfter(jj.ID, ttl)
		}()
	}
	return nil
}

// Handler returns the route mux. Mount it on an http.Server (wpserved
// does) or an httptest.Server (the tests do).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Shutdown drains the server: new batches are refused with 429 and
// the call blocks until every queued and in-flight batch (sync and
// async) has completed, or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.sched.setDraining()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopEvictions()
		return nil
	case <-ctx.Done():
		s.stopEvictions()
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// acquire claims a queue slot through the tenant-aware scheduler.
// With zero TenancyOptions this is the old non-blocking bounded
// queue; with AdmitWait set, contended admissions park in their
// tenant's sub-queue for the weighted-fair dispatcher. The global
// async reservation still holds: async batches are capped at
// Options.AsyncSlots held slots, so at least one slot always remains
// that only sync callers can take — an async burst saturating the
// queue cannot starve sync traffic indefinitely.
func (s *Server) acquire(ctx context.Context, tenant api.Tenant, async bool, cells int) admitVerdict {
	start := time.Now()
	v := s.sched.admit(ctx, string(tenant), async, cells)
	if v == admitOK {
		s.admitWait.ObserveSince(start)
		s.wg.Add(1)
		s.inflight.Add(1)
	}
	return v
}

func (s *Server) release(tenant api.Tenant, async bool) {
	s.sched.release(string(tenant), async)
	s.wg.Done()
	s.inflight.Add(-1)
}

// reject answers one refused admission with the right machine-
// readable code and backoff hint: over_quota is the tenant's own
// condition with the (typically shorter) per-tenant hint, queue_full
// is global backpressure with the global hint.
func (s *Server) reject(w http.ResponseWriter, tenant api.Tenant, verdict admitVerdict) {
	s.rejected.Inc()
	if verdict == admitOverQuota {
		s.tenantOverQuota.With(string(tenant)).Inc()
		retry := s.opt.Tenancy.RetryAfter
		if retry <= 0 {
			retry = s.opt.RetryAfter
		}
		s.writeBusy(w, fmt.Sprintf("tenant %q over quota", tenant), api.CodeOverQuota, retry)
		return
	}
	s.tenantRejected.With(string(tenant)).Inc()
	s.writeBusy(w, "server at capacity", api.CodeQueueFull, s.opt.RetryAfter)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	tenant, explicit, terr := api.ResolveTenant(r.Header.Get(api.TenantHeader), r.RemoteAddr)
	if terr != nil {
		s.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error:  "invalid " + api.TenantHeader + " header",
			Code:   api.CodeInvalidRequest,
			Fields: []api.FieldError{{Field: api.TenantHeader, Message: terr.Error()}},
		})
		return
	}
	// Only an explicitly named tenant is echoed back: a derived
	// default is an accounting detail, and echoing it would change the
	// wire bytes tenant-less clients see today.
	echo := ""
	if explicit {
		echo = string(tenant)
	}
	var breq api.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&breq); err != nil {
		s.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error: "malformed JSON: " + err.Error(), Code: api.CodeInvalidRequest,
		})
		return
	}
	if breq.APIVersion != "" && breq.APIVersion != api.Version {
		s.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error: fmt.Sprintf("api_version %q not supported (server speaks %q)", breq.APIVersion, api.Version),
			Code:  api.CodeUnsupportedVersion,
		})
		return
	}
	if len(breq.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error:  "empty batch",
			Code:   api.CodeInvalidRequest,
			Fields: []api.FieldError{{Field: "requests", Message: "must contain at least one run request"}},
		})
		return
	}
	if len(breq.Requests) > s.opt.MaxBatchCells {
		// 429 without Retry-After (and retryable=false): resubmitting
		// the same batch can never succeed — the client must split the
		// sweep.
		s.rejected.Inc()
		s.writeError(w, http.StatusTooManyRequests, api.ErrorResponse{
			Error: fmt.Sprintf("batch of %d cells exceeds the server limit of %d; split the sweep",
				len(breq.Requests), s.opt.MaxBatchCells),
			Code: api.CodeBatchTooLarge,
		})
		return
	}
	specs, err := api.ToSpecs(breq.Requests)
	if err != nil {
		resp := api.ErrorResponse{Error: "invalid batch", Code: api.CodeInvalidRequest}
		if verr, ok := err.(*api.ValidationError); ok {
			resp.Fields = verr.Fields
		} else {
			resp.Error = err.Error()
		}
		s.writeError(w, http.StatusBadRequest, resp)
		return
	}

	if breq.Async {
		s.startAsync(w, r, tenant, echo, &breq, specs)
		return
	}
	if verdict := s.acquire(r.Context(), tenant, false, len(breq.Requests)); verdict != admitOK {
		s.reject(w, tenant, verdict)
		return
	}
	defer s.release(tenant, false)
	s.batches.Inc()
	s.tenantBatches.With(string(tenant)).Inc()
	// Run under the request context so a disconnected client cancels
	// its own cells; Shutdown still drains connected clients because
	// http.Server.Shutdown leaves active request contexts alone.
	resp := s.runBatch(r.Context(), &breq, specs)
	resp.Tenant = echo
	s.writeBatchResponse(w, http.StatusOK, resp)
}

// startAsync registers (or re-attaches to) the deterministic job for
// this batch and answers 202 immediately.
//
// Ordering matters: the slot is acquired *before* the job is
// published. The old publish-then-acquire order had a race — on a
// full queue the loser deleted its freshly published job, but a
// concurrent identical submission that had already attached to it was
// told 202 with an id that would never run and then 404 on every
// poll. Now a job is only ever visible once its slot is secured, and
// the only deletions are TTL evictions after completion.
func (s *Server) startAsync(w http.ResponseWriter, r *http.Request, tenant api.Tenant, echo string, breq *api.BatchRequest, specs []engine.RunSpec) {
	id := api.BatchKey(breq.Requests)
	if cur, ok := s.jobs.Load(id); ok {
		snap := cur.(*job).snapshot()
		if snap.Status != api.StatusFailed {
			// Identical batch already known: report its current state
			// instead of queueing duplicate work — no slot needed (and
			// no quota charged: the work is shared).
			s.writeBatchResponse(w, http.StatusAccepted, withTenant(snap, echo))
			return
		}
		// A failed job is a tombstone, not a result worth serving: its
		// failure may have been transient (typically it waited on a run
		// entry whose owning request was cancelled mid-simulation).
		// Resubmitting the identical batch is the client's retry —
		// drop the corpse and queue the batch afresh.
		s.jobs.CompareAndDelete(id, cur)
		s.cancelEviction(id)
	}
	if verdict := s.acquire(r.Context(), tenant, true, len(breq.Requests)); verdict != admitOK {
		s.reject(w, tenant, verdict)
		return
	}
	// Crash-ordering invariant: the accept record is on disk (fsync'd)
	// before any 202 can leave the server, so every id a client holds
	// is replayable after a SIGKILL. The journal write happens before
	// the job is published; losing the publish race below at worst
	// leaves a duplicate accept record, which replay deduplicates.
	if s.opt.Journal != nil {
		if err := s.opt.Journal.Accept(id, breq); err != nil {
			s.release(tenant, true)
			s.writeError(w, http.StatusInternalServerError, api.ErrorResponse{
				Error:     "journal append failed; refusing to hand out a non-durable job id: " + err.Error(),
				Code:      api.CodeStoreFailure,
				Retryable: true,
			})
			return
		}
	}
	j := &job{id: id, status: api.StatusQueued, done: make(chan struct{})}
	if cur, loaded := s.jobs.LoadOrStore(id, j); loaded {
		// Lost a publish race against an identical submission that
		// acquired its own slot: attach to the winner.
		s.release(tenant, true)
		s.writeBatchResponse(w, http.StatusAccepted, withTenant(cur.(*job).snapshot(), echo))
		return
	}
	s.batches.Inc()
	s.tenantBatches.With(string(tenant)).Inc()
	go func() {
		defer s.release(tenant, true)
		j.setStatus(api.StatusRunning)
		// Async jobs outlive their submitting request, so they run
		// under the background context; Shutdown waits for them.
		resp := s.runBatch(context.Background(), breq, specs)
		j.finish(resp)
		if s.opt.Journal != nil {
			if err := s.opt.Journal.Done(id); err != nil {
				log.Printf("serve: journal done mark for %s failed (job replays as unfinished): %v", id, err)
			}
		}
		s.scheduleEviction(id)
	}()
	s.writeJSON(w, http.StatusAccepted, api.BatchResponse{
		APIVersion: api.Version, JobID: id, Status: api.StatusQueued, Tenant: echo,
	})
}

// scheduleEviction deletes a finished job after Options.JobTTL, so a
// long-lived daemon does not leak one BatchResponse per distinct
// batch forever. Polls after eviction answer 404; resubmitting the
// batch recomputes it against the still-warm run cache.
func (s *Server) scheduleEviction(id string) {
	s.scheduleEvictionAfter(id, s.opt.JobTTL)
}

// scheduleEvictionAfter arms (and tracks) the eviction timer for one
// finished job. Timers are registered under s.mu so Shutdown can stop
// every outstanding one — the old untracked time.AfterFunc outlived
// the drain and fired into a dead server. After Shutdown no new
// timers are armed.
func (s *Server) scheduleEvictionAfter(id string, ttl time.Duration) {
	if s.opt.JobTTL < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	if old, ok := s.evictions[id]; ok {
		old.Stop()
	}
	var t *time.Timer
	t = time.AfterFunc(ttl, func() {
		s.jobs.Delete(id)
		s.mu.Lock()
		if s.evictions[id] == t {
			delete(s.evictions, id)
		}
		s.mu.Unlock()
	})
	s.evictions[id] = t
}

// cancelEviction stops and forgets one job's eviction timer, for when
// the job itself has been dropped early (a failed job displaced by a
// retrying resubmission) and the stale timer must not fire into the
// replacement.
func (s *Server) cancelEviction(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.evictions[id]; ok {
		t.Stop()
		delete(s.evictions, id)
	}
}

// stopEvictions stops and forgets every armed eviction timer and
// blocks new ones; part of Shutdown.
func (s *Server) stopEvictions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	for id, t := range s.evictions {
		t.Stop()
		delete(s.evictions, id)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.jobs.Load(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, api.ErrorResponse{
			Error: fmt.Sprintf("unknown job %q", id), Code: api.CodeJobUnknown,
		})
		return
	}
	// Job-status answers echo the poller's own explicit tenant — jobs
	// are shared across identical submissions, so the submitter's
	// identity would be wrong for an attached poller.
	echo := ""
	if ten, explicit, err := api.ResolveTenant(r.Header.Get(api.TenantHeader), r.RemoteAddr); err == nil && explicit {
		echo = string(ten)
	}
	// A finished job's snapshot carries the full result set, so polls
	// stream it like the sync path does.
	s.writeBatchResponse(w, http.StatusOK, withTenant(v.(*job).snapshot(), echo))
}

// withTenant echoes an explicit tenant on a possibly shared response.
// Shared snapshots are never mutated — the echo rides a shallow copy
// (the result slices stay shared, so this is cheap even for full
// result sets).
func withTenant(resp *api.BatchResponse, tenant string) *api.BatchResponse {
	if tenant == "" || resp.Tenant == tenant {
		return resp
	}
	cp := *resp
	cp.Tenant = tenant
	return &cp
}

// runBatch executes one validated batch on the shared engine and maps
// the outcome onto the wire schema. Per-cell failures become indexed
// CellFailures; the batch itself always yields a BatchResponse. The
// optional coalesce field selects single-pass grouping per batch; the
// v1 semantics — results, ordering, statistics — are identical either
// way, so v1 clients that never send the field see no change.
func (s *Server) runBatch(ctx context.Context, breq *api.BatchRequest, specs []engine.RunSpec) *api.BatchResponse {
	reqs := breq.Requests
	if s.opt.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.RunTimeout)
		defer cancel()
	}
	var opts []engine.Option
	if breq.Coalesce != nil {
		opts = append(opts, engine.WithCoalesce(*breq.Coalesce))
	}
	if s.opt.ServiceDelay > 0 {
		t := time.NewTimer(time.Duration(len(specs)) * s.opt.ServiceDelay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	results, err := s.opt.Engine.Run(ctx, specs, opts...)
	resp := &api.BatchResponse{
		APIVersion: api.Version,
		JobID:      api.BatchKey(reqs),
		Status:     api.StatusDone,
		Results:    make([]api.RunResult, len(results)),
	}
	failed := make(map[engine.RunSpec]string)
	if err != nil {
		if merr, ok := err.(*engine.MultiError); ok {
			for _, cellErr := range merr.Errors {
				if ce, ok := cellErr.(*engine.CellError); ok {
					failed[ce.Spec] = ce.Err.Error()
				}
			}
		} else {
			resp.Status = api.StatusFailed
			resp.Errors = append(resp.Errors, api.CellFailure{Index: -1, Error: err.Error()})
			return resp
		}
	}
	for i, res := range results {
		if res == nil {
			msg := failed[specs[i]]
			if msg == "" {
				msg = "cell failed"
			}
			resp.Status = api.StatusFailed
			resp.Errors = append(resp.Errors, api.CellFailure{Index: i, Key: specs[i].Key(), Error: msg})
			resp.Results[i] = api.RunResult{Request: reqs[i], Key: specs[i].Key()}
			continue
		}
		resp.Results[i] = api.ResultOf(res)
		if res.CacheHit {
			s.countHit(specs[i].Key())
		}
	}
	return resp
}

// countHit bumps the per-key run-cache hit series; obs.CounterVec
// folds keys past the cardinality cap into one overflow series and
// memoizes every key it has seen.
func (s *Server) countHit(key string) {
	s.hits.With(key).Inc()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.sched.isDraining() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"api_version":  api.Version,
		"queue_depth":  s.opt.QueueDepth,
		"inflight":     s.sched.inflight(),
		"tenants":      s.sched.tenantCount(),
		"cache_hits":   s.opt.Engine.Hits(),
		"cache_misses": s.opt.Engine.Misses(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opt.Registry == nil {
		http.Error(w, "no metrics registry installed", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.opt.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opt.Registry.WritePrometheus(w)
}

// writeBusy answers 429 with the Retry-After header, a body that
// mirrors it for clients that only parse JSON, and the machine-
// readable code (queue_full or over_quota — both retryable by
// definition; the unretryable 429, batch_too_large, never comes
// through here).
func (s *Server) writeBusy(w http.ResponseWriter, msg, code string, retry time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	s.writeError(w, http.StatusTooManyRequests, api.ErrorResponse{
		Error:             msg,
		Code:              code,
		Retryable:         true,
		RetryAfterSeconds: retry.Seconds(),
	})
}

// writeJSON answers small payloads (errors, 202 shells, healthz) in
// one encode. Once headers are out a failure cannot change the status
// line, so it is logged and counted (MetricWriteErrors) instead of
// silently yielding a truncated 200.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.countWriteError(err)
	}
}

// writeBatchResponse streams a BatchResponse result by result
// (api.EncodeBatchResponse), so a MaxBatchCells-sized grid answer
// never materialises a second body-sized buffer; the bytes on the
// wire are identical to a one-shot encode. Mid-stream failures are
// logged and counted like writeJSON's.
func (s *Server) writeBatchResponse(w http.ResponseWriter, code int, resp *api.BatchResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := api.EncodeBatchResponse(w, resp); err != nil {
		s.countWriteError(err)
	}
}

func (s *Server) countWriteError(err error) {
	s.writeErrs.Inc()
	log.Printf("serve: response body write failed after headers (client sees a truncated 200): %v", err)
}

func (s *Server) writeError(w http.ResponseWriter, code int, resp api.ErrorResponse) {
	s.writeJSON(w, code, resp)
}

func (j *job) setStatus(st string) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

func (j *job) finish(resp *api.BatchResponse) {
	j.mu.Lock()
	j.status = resp.Status
	j.resp = resp
	j.mu.Unlock()
	close(j.done)
}

// snapshot renders the job's current state as a poll answer: the full
// response once done, a status-only shell while queued or running.
func (j *job) snapshot() *api.BatchResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		return j.resp
	}
	return &api.BatchResponse{APIVersion: api.Version, JobID: j.id, Status: j.status}
}
