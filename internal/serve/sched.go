package serve

import (
	"context"
	"sync"
	"time"

	"wayplace/internal/obs"
)

// TenancyOptions configures per-tenant admission: concurrency quotas,
// bounded per-tenant backlogs and the weighted-fair (deficit
// round-robin) dispatch order. The zero value reproduces the
// pre-tenancy server exactly — every tenant may fill the whole queue
// and a full pool answers 429 immediately — so tenant isolation is
// strictly opt-in.
type TenancyOptions struct {
	// Slots caps how many queue slots one tenant may hold at once
	// (sync and async combined). A tenant at its cap gets 429
	// over_quota — a per-tenant condition — while other tenants keep
	// admitting. 0 means QueueDepth: no per-tenant cap.
	Slots int
	// AsyncSlots caps the async share of one tenant's slots, mirroring
	// the server-wide async reservation at tenant granularity. 0 means
	// Slots; clamped to [1, Slots].
	AsyncSlots int
	// Backlog bounds how many of one tenant's requests may park
	// waiting for a slot (only meaningful with AdmitWait > 0); past it
	// the tenant gets queue_full. 0 means Slots.
	Backlog int
	// AdmitWait is how long an admission may park in its tenant
	// sub-queue for the weighted-fair dispatcher before giving up with
	// queue_full. 0 disables parking: a full pool answers 429
	// immediately, exactly the pre-tenancy behaviour.
	AdmitWait time.Duration
	// IdleTTL is how long a tenant's accounting state (deficit,
	// weight, last-seen) survives with no held slots and no waiters
	// before it is reclaimed, so a long-lived daemon does not leak one
	// entry per tenant ever seen. 0 means 5 minutes; negative disables
	// reclamation.
	IdleTTL time.Duration
	// Quantum is the deficit-round-robin refill in cells per unit of
	// weight per rotation: a tenant with weight w accumulates w*Quantum
	// cells of credit each time the dispatcher visits it, and admitting
	// a batch spends credit equal to its cell count — so over time
	// tenants' admitted cell throughput converges to their weight
	// ratio. 0 means 8.
	Quantum int
	// Weights assigns per-tenant scheduling weights; tenants absent
	// from the map (and every tenant when nil) weigh 1. Weights shape
	// the dequeue share, not the quota.
	Weights map[string]int
	// RetryAfter is the backoff hint sent with over_quota answers —
	// per-tenant pressure typically clears faster than a full global
	// queue, so it may be shorter than Options.RetryAfter. 0 inherits
	// Options.RetryAfter.
	RetryAfter time.Duration
}

// admitVerdict is the outcome of one admission attempt.
type admitVerdict int

const (
	// admitOK: a slot was granted; the caller must release it.
	admitOK admitVerdict = iota
	// admitOverQuota: this tenant is at its own quota while the pool
	// may still have room — answer 429 over_quota.
	admitOverQuota
	// admitQueueFull: a global condition (pool exhausted, async pool
	// exhausted, backlog full, draining, or AdmitWait expired) —
	// answer 429 queue_full.
	admitQueueFull
)

// waiter is one parked admission awaiting weighted-fair dispatch.
type waiter struct {
	cost  int // DRR cost: the batch's cell count
	async bool
	// granted is written under sched.mu before ready is closed; the
	// channel close publishes it to the parked goroutine.
	granted bool
	ready   chan struct{}
}

// tenantState is one tenant's accounting: held slots, parked waiters
// and the DRR deficit. All fields are guarded by sched.mu.
type tenantState struct {
	name      string
	weight    int
	deficit   int // DRR credit, in cells
	held      int // queue slots currently held
	asyncHeld int // the async subset of held
	waiting   []*waiter
	inRotation bool
	lastSeen   time.Time
}

// sched is the tenant-aware admission scheduler: a single slot pool
// with per-tenant quotas in front of it and a deficit-round-robin
// dispatcher over per-tenant sub-queues behind it. With the zero
// TenancyOptions it degenerates to the old bounded queue: one global
// capacity check, immediate 429 when full.
type sched struct {
	capacity int // total queue slots (Options.QueueDepth)
	asyncCap int // global async reservation (Options.AsyncSlots)

	slots       int // per-tenant slot quota (normalized)
	asyncSlots  int // per-tenant async quota (normalized)
	backlog     int // per-tenant parked-waiter bound (normalized)
	admitWait   time.Duration
	idleTTL     time.Duration
	quantum     int
	weights     map[string]int
	gauge       *obs.Gauge // live tenant count (may be nil)

	mu           sync.Mutex
	draining     bool
	running      int // slots currently granted
	asyncHeld    int // the async subset of running
	waitingTotal int
	tenants      map[string]*tenantState
	rotation     []*tenantState // tenants with parked waiters, in DRR order
	cursor       int
	lastSweep    time.Time
}

// newSched normalizes the tenancy options against the server's queue
// geometry and returns an empty scheduler.
func newSched(capacity, asyncCap int, cfg TenancyOptions, gauge *obs.Gauge) *sched {
	s := &sched{
		capacity:   capacity,
		asyncCap:   asyncCap,
		slots:      cfg.Slots,
		asyncSlots: cfg.AsyncSlots,
		backlog:    cfg.Backlog,
		admitWait:  cfg.AdmitWait,
		idleTTL:    cfg.IdleTTL,
		quantum:    cfg.Quantum,
		weights:    cfg.Weights,
		gauge:      gauge,
		tenants:    make(map[string]*tenantState),
	}
	if s.slots <= 0 || s.slots > capacity {
		s.slots = capacity
	}
	if s.asyncSlots <= 0 || s.asyncSlots > s.slots {
		s.asyncSlots = s.slots
	}
	if s.backlog <= 0 {
		s.backlog = s.slots
	}
	if s.idleTTL == 0 {
		s.idleTTL = 5 * time.Minute
	}
	if s.quantum <= 0 {
		s.quantum = 8
	}
	return s
}

// admit claims one slot for the tenant, parking up to admitWait when
// the pool is contended. cost is the batch's cell count (the DRR
// currency). The verdict distinguishes the per-tenant condition
// (over_quota) from global ones (queue_full) so the server can answer
// with the right error code and backoff hint.
func (s *sched) admit(ctx context.Context, tenant string, async bool, cost int) admitVerdict {
	if cost < 1 {
		cost = 1
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return admitQueueFull
	}
	now := time.Now()
	t := s.tenantLocked(tenant, now)
	t.lastSeen = now
	// Quota checks come first: a tenant at its own cap is over_quota
	// even when the pool has room — that is the isolation contract.
	// A quota spanning the whole pool is no quota (the slots < capacity
	// guards): with tenancy unconfigured, a lone tenant saturating the
	// pool must keep seeing the pre-tenancy global answer, queue_full.
	if t.held >= s.slots && s.slots < s.capacity {
		s.mu.Unlock()
		return admitOverQuota
	}
	if async && t.asyncHeld >= s.asyncSlots && s.asyncSlots < s.asyncCap {
		s.mu.Unlock()
		return admitOverQuota
	}
	if async && s.asyncHeld >= s.asyncCap {
		s.mu.Unlock()
		return admitQueueFull
	}
	// Fast path: free slot and nobody parked ahead of us.
	if s.running < s.capacity && s.waitingTotal == 0 {
		s.grantLocked(t, async)
		s.mu.Unlock()
		return admitOK
	}
	if s.admitWait <= 0 {
		s.mu.Unlock()
		return admitQueueFull
	}
	if len(t.waiting) >= s.backlog {
		s.mu.Unlock()
		return admitQueueFull
	}
	w := &waiter{cost: cost, async: async, ready: make(chan struct{})}
	t.waiting = append(t.waiting, w)
	s.waitingTotal++
	if !t.inRotation {
		t.inRotation = true
		s.rotation = append(s.rotation, t)
	}
	// Dispatch before sleeping: the pool may have room that only a
	// quota-blocked head was failing to take.
	s.dispatchLocked()
	if w.granted {
		s.mu.Unlock()
		return admitOK
	}
	s.mu.Unlock()

	timer := time.NewTimer(s.admitWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		if w.granted {
			return admitOK
		}
		return admitQueueFull // woken by drain
	case <-timer.C:
	case <-ctx.Done():
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.granted {
		// Lost the race against a concurrent grant: the slot is ours
		// after all, and the caller will release it normally.
		return admitOK
	}
	s.removeWaiterLocked(t, w)
	return admitQueueFull
}

// release returns one slot and runs the dispatcher, so parked waiters
// are granted in weighted-fair order the moment capacity frees.
func (s *sched) release(tenant string, async bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenant]; ok {
		t.held--
		if async {
			t.asyncHeld--
		}
		t.lastSeen = time.Now()
	}
	s.running--
	if async {
		s.asyncHeld--
	}
	s.dispatchLocked()
}

func (s *sched) grantLocked(t *tenantState, async bool) {
	t.held++
	if async {
		t.asyncHeld++
		s.asyncHeld++
	}
	s.running++
}

// dispatchLocked is the deficit-round-robin dequeue: visit tenants
// with parked waiters in rotation order, topping each one's deficit
// up by weight*quantum when its head is short of credit, and grant
// while credit, quota and pool capacity allow. Invariants: (1) a
// tenant's waiters are granted FIFO; (2) across rotations, granted
// cell volume converges to the tenants' weight ratio; (3) a
// quota-blocked tenant never stalls the rotation — its waiters simply
// stay parked while others are served.
func (s *sched) dispatchLocked() {
	for s.running < s.capacity && len(s.rotation) > 0 {
		progress := false    // granted someone this cycle
		costBlocked := false // some head needs only more credit
		for visits := len(s.rotation); visits > 0 && s.running < s.capacity && len(s.rotation) > 0; visits-- {
			if s.cursor >= len(s.rotation) {
				s.cursor = 0
			}
			t := s.rotation[s.cursor]
			if t.deficit < t.waiting[0].cost {
				t.deficit += t.weight * s.quantum
			}
			for len(t.waiting) > 0 && s.running < s.capacity {
				w := t.waiting[0]
				if t.held >= s.slots || (w.async && (t.asyncHeld >= s.asyncSlots || s.asyncHeld >= s.asyncCap)) {
					break // quota-blocked: credit cannot help
				}
				if w.cost > t.deficit {
					costBlocked = true
					break
				}
				t.waiting = t.waiting[1:]
				s.waitingTotal--
				t.deficit -= w.cost
				s.grantLocked(t, w.async)
				w.granted = true
				close(w.ready)
				progress = true
			}
			if len(t.waiting) == 0 {
				s.leaveRotationLocked(t)
			} else {
				s.cursor++
			}
		}
		if !progress && !costBlocked {
			// Every parked head is quota-blocked; a future release
			// re-runs the dispatcher.
			return
		}
	}
}

// leaveRotationLocked drops a tenant with an empty sub-queue from the
// DRR rotation; its deficit resets so an idle tenant cannot bank
// credit against the future.
func (s *sched) leaveRotationLocked(t *tenantState) {
	for i, cand := range s.rotation {
		if cand == t {
			s.rotation = append(s.rotation[:i], s.rotation[i+1:]...)
			if s.cursor > i {
				s.cursor--
			}
			break
		}
	}
	t.inRotation = false
	t.deficit = 0
}

// removeWaiterLocked unparks one timed-out (or cancelled) waiter.
func (s *sched) removeWaiterLocked(t *tenantState, w *waiter) {
	for i, cand := range t.waiting {
		if cand == w {
			t.waiting = append(t.waiting[:i], t.waiting[i+1:]...)
			s.waitingTotal--
			break
		}
	}
	if len(t.waiting) == 0 && t.inRotation {
		s.leaveRotationLocked(t)
	}
}

// tenantLocked gets or creates one tenant's accounting state. The
// creation path — never the hot path — opportunistically sweeps idle
// tenants, so the map is bounded by the set of tenants active within
// one IdleTTL window rather than every tenant ever seen.
func (s *sched) tenantLocked(name string, now time.Time) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		s.maybeSweepLocked(now)
		weight := 1
		if w, ok := s.weights[name]; ok && w > 0 {
			weight = w
		}
		t = &tenantState{name: name, weight: weight}
		s.tenants[name] = t
		s.gauge.Set(float64(len(s.tenants)))
	}
	return t
}

// maybeSweepLocked rate-limits reclamation to once per second (or
// once per IdleTTL when that is shorter), so an adversarial flood of
// fresh tenant names pays amortized O(1) per admission.
func (s *sched) maybeSweepLocked(now time.Time) {
	if s.idleTTL < 0 {
		return
	}
	interval := time.Second
	if s.idleTTL < interval {
		interval = s.idleTTL
	}
	if now.Sub(s.lastSweep) < interval {
		return
	}
	s.lastSweep = now
	s.reapLocked(now)
}

// reapLocked deletes tenants that hold nothing, wait for nothing and
// have been idle past IdleTTL.
func (s *sched) reapLocked(now time.Time) {
	for name, t := range s.tenants {
		if t.held == 0 && t.asyncHeld == 0 && len(t.waiting) == 0 && !t.inRotation &&
			now.Sub(t.lastSeen) >= s.idleTTL {
			delete(s.tenants, name)
		}
	}
	s.gauge.Set(float64(len(s.tenants)))
}

// reap forces one reclamation pass; tests drive it with a synthetic
// clock instead of waiting out IdleTTL.
func (s *sched) reap(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(now)
}

// setDraining refuses all future admissions and wakes every parked
// waiter with queue_full, so Shutdown never waits out AdmitWait.
func (s *sched) setDraining() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	for _, t := range s.tenants {
		for _, w := range t.waiting {
			close(w.ready) // granted stays false: the waiter reads queue_full
		}
		t.waiting = nil
		t.inRotation = false
		t.deficit = 0
	}
	s.rotation = nil
	s.waitingTotal = 0
	s.cursor = 0
}

func (s *sched) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// inflight reports granted slots, for healthz.
func (s *sched) inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// tenantCount reports tracked tenants, for healthz and leak tests.
func (s *sched) tenantCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}
