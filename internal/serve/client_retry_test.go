package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/serve"
)

// retryServer answers 429 with the given Retry-After value until
// `after` requests have landed, then serves a minimal done batch.
type retryServer struct {
	retryAfter func(attempt int) string
	after      int
	seen       int
}

func (rs *retryServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rs.seen++
	if rs.seen <= rs.after {
		if v := rs.retryAfter(rs.seen); v != "" {
			w.Header().Set("Retry-After", v)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "busy"})
		return
	}
	json.NewEncoder(w).Encode(api.BatchResponse{
		APIVersion: api.Version,
		Status:     api.StatusDone,
	})
}

// Retry-After: 0 is a valid hint — retry immediately — not a
// permanent rejection. Before the fix the client treated it like an
// absent header and gave up on the first 429.
func TestClientRetriesOnRetryAfterZero(t *testing.T) {
	rs := &retryServer{retryAfter: func(int) string { return "0" }, after: 2}
	srv := httptest.NewServer(rs)
	defer srv.Close()

	start := time.Now()
	resp, err := serve.NewClient(srv.URL).Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run after Retry-After: 0: %v", err)
	}
	if resp.Status != api.StatusDone {
		t.Fatalf("status %q, want done", resp.Status)
	}
	if rs.seen != 3 {
		t.Fatalf("server saw %d requests, want 3 (two immediate retries)", rs.seen)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("immediate retries took %v — client slept on a zero hint", wall)
	}
}

// The HTTP-date form of Retry-After (RFC 9110 §10.2.3) must be
// honoured like delta-seconds. A date in the past means retry
// immediately.
func TestClientRetriesOnRetryAfterHTTPDate(t *testing.T) {
	rs := &retryServer{
		retryAfter: func(int) string {
			return time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
		},
		after: 1,
	}
	srv := httptest.NewServer(rs)
	defer srv.Close()

	resp, err := serve.NewClient(srv.URL).Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run after HTTP-date Retry-After: %v", err)
	}
	if resp.Status != api.StatusDone {
		t.Fatalf("status %q, want done", resp.Status)
	}
	if rs.seen != 2 {
		t.Fatalf("server saw %d requests, want 2", rs.seen)
	}
}

// A 429 with no Retry-After at all stays a permanent rejection: the
// server is saying resubmission cannot help (oversized batch).
func TestClientDoesNotRetryWithoutRetryAfter(t *testing.T) {
	rs := &retryServer{retryAfter: func(int) string { return "" }, after: 100}
	srv := httptest.NewServer(rs)
	defer srv.Close()

	if _, err := serve.NewClient(srv.URL).Run(context.Background(), nil); err == nil {
		t.Fatal("Run succeeded; want permanent 429 error")
	}
	if rs.seen != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries without a hint)", rs.seen)
	}
}
