package bench

import (
	"fmt"
	"strings"
)

// ParseSubset parses a comma-separated benchmark subset as given on a
// CLI (-benchmarks "sha, crc"): elements are whitespace-trimmed,
// empty elements are dropped, and every name is validated against the
// registry up front — so a typo fails immediately with the list of
// valid names instead of surfacing later as a confusing per-cell
// error deep inside the workload provider. An empty (or all-
// whitespace) subset means the full suite.
func ParseSubset(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return Names(), nil
	}
	var names, unknown []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if _, err := ByName(name); err != nil {
			unknown = append(unknown, name)
			continue
		}
		names = append(names, name)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("bench: unknown benchmark(s) %s\nvalid names: %s",
			strings.Join(unknown, ", "), strings.Join(Names(), ", "))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("bench: benchmark subset %q names no benchmarks", s)
	}
	return names, nil
}
