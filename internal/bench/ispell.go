package bench

import (
	"encoding/binary"
	"fmt"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("ispell", "hashed dictionary lookup with string compares (MiBench office/ispell)",
		buildIspell)
}

const ispellBuckets = 256

// ispellWord makes a lowercase pseudo-word.
func ispellWord(r *rng) string {
	n := 3 + r.intn(8)
	w := make([]byte, n)
	for i := range w {
		w[i] = byte('a' + r.intn(26))
	}
	return string(w)
}

// ispellDict returns the dictionary words (deduplicated).
func ispellDict() []string {
	r := newRNG(0x15be)
	seen := make(map[string]bool)
	var dict []string
	for len(dict) < 1200 {
		w := ispellWord(r)
		if !seen[w] {
			seen[w] = true
			dict = append(dict, w)
		}
	}
	return dict
}

// ispellQueries returns the query stream: a mix of dictionary words
// and probable misses.
func ispellQueries(in Input) []string {
	dict := ispellDict()
	r := newRNG(0xdeeb)
	n := in.pick(900, 7000)
	qs := make([]string, n)
	for i := range qs {
		if r.intn(3) != 0 {
			qs[i] = dict[r.intn(len(dict))]
		} else {
			qs[i] = ispellWord(r)
		}
	}
	return qs
}

// ispellHash is djb2-xor, mirrored by the simulated kernel.
func ispellHash(w string) uint32 {
	h := uint32(5381)
	for i := 0; i < len(w); i++ {
		h = h*33 ^ uint32(w[i])
	}
	return h
}

// ispellRef mirrors the program: count hits, checksum mixes the hash
// of every hit word.
func ispellRef(in Input) uint32 {
	dict := make(map[string]bool)
	for _, w := range ispellDict() {
		dict[w] = true
	}
	var sum uint32
	for _, q := range ispellQueries(in) {
		if dict[q] {
			sum += ispellHash(q)
		} else {
			sum++
		}
	}
	return sum
}

// buildIspell lays the hash table out in the data segment (the real
// ispell builds its hash file offline, too): a bucket array of node
// pointers, nodes of {next, strptr}, and NUL-terminated strings.
func buildIspell(in Input) (*obj.Unit, error) {
	dict := ispellDict()
	queries := ispellQueries(in)

	b := asm.NewBuilder("ispell")
	addAppShell(b, 0xfa8a, 8)

	// Strings blob.
	strAddr := make(map[string]uint32, len(dict))
	for _, w := range dict {
		strAddr[w] = b.Data(append([]byte(w), 0))
	}
	b.Align(4)

	// Nodes: chains per bucket. Build chains in Go, then serialise.
	type node struct {
		word string
		next int // node index or -1
	}
	buckets := make([]int, ispellBuckets) // head node index or -1
	for i := range buckets {
		buckets[i] = -1
	}
	var nodes []node
	for _, w := range dict {
		h := ispellHash(w) & (ispellBuckets - 1)
		nodes = append(nodes, node{word: w, next: buckets[h]})
		buckets[h] = len(nodes) - 1
	}
	nodeBytes := make([]byte, 8*len(nodes))
	nodeBase := b.NextDataAddr() // address where nodes land
	for i, nd := range nodes {
		var next uint32
		if nd.next >= 0 {
			next = nodeBase + uint32(8*nd.next)
		}
		binary.LittleEndian.PutUint32(nodeBytes[8*i:], next)
		binary.LittleEndian.PutUint32(nodeBytes[8*i+4:], strAddr[nd.word])
	}
	if got := b.Data(nodeBytes); got != nodeBase {
		return nil, fmt.Errorf("ispell: node base moved: %#x vs %#x", got, nodeBase)
	}
	bucketWords := make([]uint32, ispellBuckets)
	for i, h := range buckets {
		if h >= 0 {
			bucketWords[i] = nodeBase + uint32(8*h)
		}
	}
	bucketAddr := b.Words(bucketWords...)

	// Query stream: offsets into a query blob.
	var queryBlob []byte
	queryOff := make([]uint32, len(queries))
	for i, q := range queries {
		queryOff[i] = uint32(len(queryBlob))
		queryBlob = append(queryBlob, []byte(q)...)
		queryBlob = append(queryBlob, 0)
	}
	blobAddr := b.Data(queryBlob)
	b.Align(4)
	offAddr := b.Words(queryOff...)

	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)
	f.Li(isa.R11, offAddr)
	f.Li(isa.R10, uint32(len(queries)))
	f.Block("qloop")
	f.Ldr(isa.R1, isa.R11, 0)
	f.Li(isa.R2, blobAddr)
	f.Add(isa.R1, isa.R1, isa.R2) // query string addr
	f.Push(isa.R10, isa.R11)
	f.Call("lookup")
	f.Pop(isa.R10, isa.R11)
	f.Addi(isa.R11, isa.R11, 4)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("qloop")
	f.Halt()

	// lookup: R1 = query string. Hash (hot loop), bucket, chain walk
	// with strcmp. Adds hash to R0 on hit, 1 on miss.
	lk := b.Func("lookup")
	lk.SaveLR()
	lk.Call("hash") // R2 = hash, preserves R1
	lk.RestoreLR()
	lk.OpI(isa.ANDI, isa.R3, isa.R2, ispellBuckets-1)
	lk.OpI(isa.LSLI, isa.R3, isa.R3, 2)
	lk.Li(isa.R4, bucketAddr)
	lk.Ldrx(isa.R4, isa.R4, isa.R3) // node ptr
	lk.Block("chain")
	lk.Cmpi(isa.R4, 0)
	lk.Beq("miss")
	lk.Ldr(isa.R5, isa.R4, 4) // string ptr
	// strcmp(R1, R5) inline: R6/R7 chars, R8 cursor pair.
	lk.Mov(isa.R8, isa.R1)
	lk.Block("cmp")
	lk.Ldrb(isa.R6, isa.R8, 0)
	lk.Ldrb(isa.R7, isa.R5, 0)
	lk.Cmp(isa.R6, isa.R7)
	lk.Bne("next")
	lk.Cmpi(isa.R6, 0)
	lk.Beq("hit") // both NUL: equal
	lk.Addi(isa.R8, isa.R8, 1)
	lk.Addi(isa.R5, isa.R5, 1)
	lk.Jmp("cmp")
	lk.Block("next")
	lk.Ldr(isa.R4, isa.R4, 0) // next node
	lk.Jmp("chain")
	lk.Block("hit")
	lk.Add(isa.R0, isa.R0, isa.R2)
	lk.Ret()
	lk.Block("miss")
	lk.Addi(isa.R0, isa.R0, 1)
	lk.Ret()

	// hash: djb2-xor over the NUL-terminated string at R1.
	// Returns R2; preserves R1 (uses R9 as cursor).
	hs := b.Func("hash")
	hs.Li(isa.R2, 5381)
	hs.Mov(isa.R9, isa.R1)
	hs.Block("loop")
	hs.Ldrb(isa.R6, isa.R9, 0)
	hs.Cmpi(isa.R6, 0)
	hs.Beq("done")
	// h = h*33 ^ c = (h<<5 + h) ^ c
	hs.OpI(isa.LSLI, isa.R7, isa.R2, 5)
	hs.Add(isa.R2, isa.R2, isa.R7)
	hs.Op3(isa.EOR, isa.R2, isa.R2, isa.R6)
	hs.Addi(isa.R9, isa.R9, 1)
	hs.Jmp("loop")
	hs.Block("done")
	hs.Ret()

	addRuntime(b)
	return b.Build()
}
