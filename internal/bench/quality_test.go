package bench

import (
	"math"
	"testing"

	"wayplace/internal/obj"
)

// TestADPCMReconstructionQuality: IMA ADPCM is lossy but must track
// the waveform — decode(encode(x)) should reconstruct x with a
// reasonable signal-to-noise ratio. A broken step/index update would
// produce noise-level output and fail this test even though the
// checksum tests (which only compare simulator vs reference) would
// still pass.
func TestADPCMReconstructionQuality(t *testing.T) {
	samples := adpcmSamples(Large)
	decoded := adpcmDecode(adpcmEncode(samples))
	var sigPow, errPow float64
	for i := range samples {
		s := float64(samples[i])
		e := float64(samples[i] - decoded[i])
		sigPow += s * s
		errPow += e * e
	}
	if errPow == 0 {
		t.Fatal("ADPCM reconstruction suspiciously perfect for a 4-bit codec")
	}
	snr := 10 * math.Log10(sigPow/errPow)
	if snr < 10 {
		t.Errorf("ADPCM reconstruction SNR = %.1f dB, want >= 10 dB", snr)
	}
}

// TestFFTRoundTripCorrelation: running the forward transform and then
// the inverse transform (conjugate twiddles) must reproduce a signal
// strongly correlated with the input. The fixed-point kernel scales
// by 1/2 per stage, so amplitudes shrink — correlation, not equality,
// is the right check.
func TestFFTRoundTripCorrelation(t *testing.T) {
	const n = 256
	cosF, sinF := fftTwiddles(n, false)
	cosI, sinI := fftTwiddles(n, true)
	re, im := fftFrame(n, 0)
	orig := append([]int32(nil), re...)

	runFFT := func(re, im []int32, cos, sin []int32) {
		// Mirror of fftRef's butterfly loop.
		logN := 8
		for i := 0; i < n; i++ {
			j := reverseBits(uint32(i), logN)
			if int(j) > i {
				re[i], re[j] = re[j], re[i]
				im[i], im[j] = im[j], im[i]
			}
		}
		for size := 2; size <= n; size <<= 1 {
			half, step := size/2, n/size
			for base := 0; base < n; base += size {
				for k := 0; k < half; k++ {
					wr, wi := cos[k*step], sin[k*step]
					a, b := base+k, base+k+half
					tr := (wr*re[b] - wi*im[b]) >> 15
					ti := (wr*im[b] + wi*re[b]) >> 15
					re[b] = (re[a] - tr) >> 1
					im[b] = (im[a] - ti) >> 1
					re[a] = (re[a] + tr) >> 1
					im[a] = (im[a] + ti) >> 1
				}
			}
		}
	}
	runFFT(re, im, cosF, sinF)
	runFFT(re, im, cosI, sinI)

	// re should now be orig / n (two passes of per-stage halving),
	// i.e. strongly correlated with orig.
	var dot, n1, n2 float64
	for i := range orig {
		dot += float64(orig[i]) * float64(re[i])
		n1 += float64(orig[i]) * float64(orig[i])
		n2 += float64(re[i]) * float64(re[i])
	}
	if n2 == 0 {
		t.Fatal("inverse transform produced silence")
	}
	corr := dot / math.Sqrt(n1*n2)
	if corr < 0.95 {
		t.Errorf("FFT round-trip correlation = %.3f, want >= 0.95", corr)
	}
}

func reverseBits(v uint32, bits int) uint32 {
	var out uint32
	for i := 0; i < bits; i++ {
		out = out<<1 | v&1
		v >>= 1
	}
	return out
}

// TestBuildersAreDeterministic: the same benchmark must build
// bit-identical binaries on every call — reproducibility is what
// makes the experiment harness's memoisation and the paper's
// "no recompilation" property trustworthy here.
func TestBuildersAreDeterministic(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			u1, err := bm.Build(Small)
			if err != nil {
				t.Fatal(err)
			}
			u2, err := bm.Build(Small)
			if err != nil {
				t.Fatal(err)
			}
			p1, err := obj.Link(u1, obj.OriginalOrder(u1), textBase)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := obj.Link(u2, obj.OriginalOrder(u2), textBase)
			if err != nil {
				t.Fatal(err)
			}
			if len(p1.Words) != len(p2.Words) {
				t.Fatalf("sizes differ: %d vs %d", len(p1.Words), len(p2.Words))
			}
			for i := range p1.Words {
				if p1.Words[i] != p2.Words[i] {
					t.Fatalf("word %d differs: %#x vs %#x", i, p1.Words[i], p2.Words[i])
				}
			}
			if len(p1.Data) != len(p2.Data) {
				t.Fatalf("data sizes differ")
			}
			for i := range p1.Data {
				if p1.Data[i] != p2.Data[i] {
					t.Fatalf("data byte %d differs", i)
				}
			}
		})
	}
}

// TestColdShellNeverExecutes: the application shell must be linked in
// but dynamically dead — its blocks get zero profile counts on both
// inputs.
func TestColdShellNeverExecutes(t *testing.T) {
	u := build(t, "crc", Small)
	p, err := obj.Link(u, obj.OriginalOrder(u), textBase)
	if err != nil {
		t.Fatal(err)
	}
	counts := runCounts(t, p)
	coldInstrs := 0
	for _, pl := range p.Placed {
		if isColdShellFunc(pl.Block.Func) {
			idx, _ := p.IndexOf(pl.Addr)
			for k := 0; k < pl.Block.NumInstrs(); k++ {
				if counts[idx+k] != 0 {
					t.Fatalf("cold shell block %s executed", pl.Block.Sym)
				}
				coldInstrs++
			}
		}
	}
	if coldInstrs < 200 {
		t.Errorf("cold shell suspiciously small: %d instructions", coldInstrs)
	}
}

func isColdShellFunc(name string) bool {
	return len(name) > 12 && name[:12] == "cold_feature"
}

// TestKernelOutputInvariants checks algorithm-level sanity properties
// the checksum comparisons cannot see (they would pass even if both
// the simulated kernel and its mirror reference shared a conceptual
// bug that produced degenerate output).
func TestKernelOutputInvariants(t *testing.T) {
	t.Run("tiffmedian levels balanced", func(t *testing.T) {
		// The 8 quantisation levels come from octiles of the
		// histogram, so the mean level across the image must sit
		// near 3.5.
		w, h := tiffDims(Large)
		mean := float64(tiffmedianRef(Large)) / float64(w*h)
		if mean < 2.5 || mean > 4.5 {
			t.Errorf("mean quantisation level = %.2f, want ~3.5", mean)
		}
	})
	t.Run("tiffdither preserves brightness", func(t *testing.T) {
		// Error diffusion preserves average intensity: the fraction
		// of white output pixels must approximate mean/255.
		w, h := tiffDims(Large)
		img := tiffditherInput(Large)
		var sum uint64
		for _, p := range img {
			sum += uint64(p)
		}
		meanFrac := float64(sum) / float64(len(img)) / 255
		whiteFrac := float64(tiffditherRef(Large)) / float64(w*h)
		if d := whiteFrac - meanFrac; d > 0.02 || d < -0.02 {
			t.Errorf("white fraction %.3f vs intensity fraction %.3f", whiteFrac, meanFrac)
		}
	})
	t.Run("bitcount methods agree", func(t *testing.T) {
		// All four counting methods must give identical counts; the
		// round-robin reference already mixes them, so cross-check
		// against a single trusted method.
		ws := bitcountInput(Large)
		var want uint32
		for _, w := range ws {
			for v := w; v != 0; v &= v - 1 {
				want++
			}
		}
		if got := bitcountRef(ws); got != want {
			t.Errorf("mixed-method count %d != Kernighan-only count %d", got, want)
		}
	})
	t.Run("susan edges detect the grid", func(t *testing.T) {
		// The input has 8x8 blocky features, so the edge detector
		// must fire on a meaningful fraction of pixels: a nonzero,
		// non-saturated accumulator.
		w, h := susanDims(Large, susanEdges)
		sum := susanRef(Large, susanEdges)
		perPixel := float64(sum) / float64((w-2)*(h-2))
		if perPixel < 1 || perPixel > 200 {
			t.Errorf("edge response %.2f per pixel — detector degenerate", perPixel)
		}
	})
	t.Run("ispell hit rate near query mix", func(t *testing.T) {
		// Two thirds of queries are dictionary words; hits add a
		// 32-bit hash (large), misses add 1. Count misses by running
		// the reference structure directly.
		dict := make(map[string]bool)
		for _, w := range ispellDict() {
			dict[w] = true
		}
		qs := ispellQueries(Large)
		hits := 0
		for _, q := range qs {
			if dict[q] {
				hits++
			}
		}
		frac := float64(hits) / float64(len(qs))
		if frac < 0.6 || frac > 0.75 {
			t.Errorf("dictionary hit fraction = %.3f, want ~2/3", frac)
		}
	})
}
