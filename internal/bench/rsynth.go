package bench

import (
	"math"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("rsynth", "3-oscillator formant synthesis with envelope and filter (MiBench office/rsynth)",
		buildRsynth)
}

const (
	rsynthOscs      = 3
	rsynthEnvDecay  = 7
	rsynthNoteLen   = 2048
	rsynthSineBits  = 8 // 256-entry table
	rsynthFilterSh  = 3
	rsynthEnvReload = 32767
)

// rsynthSine is the Q15 sine table.
func rsynthSine() []int32 {
	t := make([]int32, 1<<rsynthSineBits)
	for i := range t {
		t[i] = int32(math.Round(32767 * math.Sin(2*math.Pi*float64(i)/float64(len(t)))))
	}
	return t
}

// rsynthNotes returns per-note oscillator phase increments
// ("formant frequencies").
func rsynthNotes(in Input) [][rsynthOscs]uint32 {
	n := in.pick(2, 8)
	r := newRNG(0x517)
	notes := make([][rsynthOscs]uint32, n)
	for i := range notes {
		for o := 0; o < rsynthOscs; o++ {
			notes[i][o] = 200 + uint32(r.intn(7000))
		}
	}
	return notes
}

func rsynthSamplesPerNote(in Input) int { return in.pick(1024, rsynthNoteLen) }

// rsynthRef mirrors the simulated synthesiser.
func rsynthRef(in Input) uint32 {
	sine := rsynthSine()
	notes := rsynthNotes(in)
	perNote := rsynthSamplesPerNote(in)
	var sum uint32
	var phases [rsynthOscs]uint32
	y := int32(0)
	for _, note := range notes {
		env := int32(rsynthEnvReload)
		for s := 0; s < perNote; s++ {
			acc := int32(0)
			for o := 0; o < rsynthOscs; o++ {
				phases[o] += note[o]
				idx := phases[o] >> rsynthSineBits & (1<<rsynthSineBits - 1)
				acc += sine[idx] * env >> 15
			}
			y += (acc - y) >> rsynthFilterSh
			env -= rsynthEnvDecay
			if env < 0 {
				env = 0
			}
			sum += uint32(y)
		}
	}
	return sum
}

// buildRsynth keeps oscillator state in a small memory struct
// (phases[3] then freqs[3]) and walks it per sample, calling the
// oscillator bank as a function — per-sample call/return traffic is
// characteristic of the real synthesiser's voice loop.
func buildRsynth(in Input) (*obj.Unit, error) {
	notes := rsynthNotes(in)
	perNote := rsynthSamplesPerNote(in)

	b := asm.NewBuilder("rsynth")
	addAppShell(b, 0xfed8, 9)
	sineAddr := b.Words(u32s(rsynthSine())...)
	var noteWords []uint32
	for _, n := range notes {
		noteWords = append(noteWords, n[:]...)
	}
	noteAddr := b.Words(noteWords...)
	state := b.Zeros(4 * (2 * rsynthOscs)) // phases[3], freqs[3]

	// main registers: R0 checksum, R3 y, R4 env, R10 samples left,
	// R11 note cursor, R12 notes left.
	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)
	f.Movi(isa.R3, 0)
	f.Li(isa.R11, noteAddr)
	f.Movi(isa.R12, uint16(len(notes)))
	f.Block("notes")
	// Load the note's frequencies into state.freqs.
	f.Li(isa.R5, state)
	for o := 0; o < rsynthOscs; o++ {
		f.Ldr(isa.R6, isa.R11, int32(4*o))
		f.Str(isa.R6, isa.R5, int32(4*(rsynthOscs+o)))
	}
	f.Li(isa.R4, rsynthEnvReload)
	f.Li(isa.R10, uint32(perNote))
	f.Block("samples")
	f.Push(isa.R10, isa.R11, isa.R12)
	f.Call("oscbank") // R2 = mixed sample (uses R1,R2,R5-R9)
	f.Pop(isa.R10, isa.R11, isa.R12)
	// y += (acc - y) >> 3
	f.Sub(isa.R5, isa.R2, isa.R3)
	f.OpI(isa.ASRI, isa.R5, isa.R5, rsynthFilterSh)
	f.Add(isa.R3, isa.R3, isa.R5)
	// env decay with floor
	f.Subi(isa.R4, isa.R4, rsynthEnvDecay)
	f.Cmpi(isa.R4, 0)
	f.Bge("envok")
	f.Movi(isa.R4, 0)
	f.Block("envok")
	f.Add(isa.R0, isa.R0, isa.R3)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("samples")
	f.Addi(isa.R11, isa.R11, 4*rsynthOscs)
	f.Subi(isa.R12, isa.R12, 1)
	f.Cmpi(isa.R12, 0)
	f.Bgt("notes")
	f.Halt()

	// oscbank: advances all oscillator phases and returns the
	// envelope-scaled mix in R2. Reads env from R4.
	ob := b.Func("oscbank")
	ob.Movi(isa.R2, 0)
	ob.Li(isa.R5, state)
	ob.Li(isa.R8, sineAddr)
	ob.Movi(isa.R9, rsynthOscs)
	ob.Block("osc")
	ob.Ldr(isa.R1, isa.R5, 0)            // phase
	ob.Ldr(isa.R6, isa.R5, 4*rsynthOscs) // freq
	ob.Add(isa.R1, isa.R1, isa.R6)
	ob.Str(isa.R1, isa.R5, 0)
	ob.OpI(isa.LSRI, isa.R6, isa.R1, rsynthSineBits)
	ob.OpI(isa.ANDI, isa.R6, isa.R6, 1<<rsynthSineBits-1)
	ob.OpI(isa.LSLI, isa.R6, isa.R6, 2)
	ob.Ldrx(isa.R7, isa.R8, isa.R6) // sine sample
	ob.Mul(isa.R7, isa.R7, isa.R4)  // * env
	ob.OpI(isa.ASRI, isa.R7, isa.R7, 15)
	ob.Add(isa.R2, isa.R2, isa.R7)
	ob.Addi(isa.R5, isa.R5, 4)
	ob.Subi(isa.R9, isa.R9, 1)
	ob.Cmpi(isa.R9, 0)
	ob.Bgt("osc")
	ob.Ret()

	addRuntime(b)
	return b.Build()
}
