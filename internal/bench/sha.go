package bench

import (
	"encoding/binary"
	"math/bits"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("sha", "SHA-1 style block hash: message schedule + 80-round compression (MiBench security/sha)",
		buildSHA)
}

// SHA-1 round constants and initial state.
var shaK = [4]uint32{0x5a827999, 0x6ed9eba1, 0x8f1bbcdc, 0xca62c1d6}
var shaH = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}

// shaInput returns the message (whole 64-byte blocks; MiBench's sha
// reads a file — padding is immaterial to the instruction mix).
func shaInput(in Input) []byte {
	return newRNG(0x5a1).bytes(in.pick(4<<10, 48<<10))
}

// shaRef mirrors the simulated program exactly (little-endian word
// loads — byte order is irrelevant to the kernel's shape) and returns
// the checksum the program leaves in R0.
func shaRef(msg []byte) uint32 {
	h := shaH
	var w [80]uint32
	for blk := 0; blk+64 <= len(msg); blk += 64 {
		for i := 0; i < 16; i++ {
			w[i] = binary.LittleEndian.Uint32(msg[blk+4*i:])
		}
		for t := 16; t < 80; t++ {
			w[t] = bits.RotateLeft32(w[t-3]^w[t-8]^w[t-14]^w[t-16], 1)
		}
		a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
		for t := 0; t < 80; t++ {
			var f uint32
			switch {
			case t < 20:
				f = (b & c) | (^b & d)
			case t < 40:
				f = b ^ c ^ d
			case t < 60:
				f = (b & c) | (b & d) | (c & d)
			default:
				f = b ^ c ^ d
			}
			tmp := bits.RotateLeft32(a, 5) + f + e + w[t] + shaK[t/20]
			e, d, c, b, a = d, c, bits.RotateLeft32(b, 30), a, tmp
		}
		h[0] += a
		h[1] += b
		h[2] += c
		h[3] += d
		h[4] += e
	}
	return h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]
}

// buildSHA emits:
//
//	main: loop over blocks calling sha_block               [warm]
//	sha_block: schedule expansion + four 20-round loops    [hot]
func buildSHA(in Input) (*obj.Unit, error) {
	b := asm.NewBuilder("sha")
	addAppShell(b, 0x8a19, 11)
	msg := shaInput(in)
	msgAddr := b.Data(msg)
	b.Align(4)
	state := b.Words(shaH[:]...) // h0..h4, updated in place
	wbuf := b.Zeros(80 * 4)      // message schedule scratch
	nblocks := len(msg) / 64

	// rol(rd, rs, n): rd = rs rotated left by n — ROR by 32-n.
	rol := func(f *asm.FuncBuilder, rd, rs isa.Reg, n int32) {
		f.Movi(isa.R10, uint16(32-n))
		f.Op3(isa.ROR, rd, rs, isa.R10)
	}

	f := b.Func("main")
	f.Call("app_init")
	f.Li(isa.R12, msgAddr)
	f.Li(isa.R11, uint32(nblocks))
	f.Block("blocks")
	f.Call("rt_tick")
	f.Push(isa.R11, isa.R12)
	f.Call("sha_block")
	f.Pop(isa.R11, isa.R12)
	f.Addi(isa.R12, isa.R12, 64)
	f.Subi(isa.R11, isa.R11, 1)
	f.Cmpi(isa.R11, 0)
	f.Bgt("blocks")
	// Checksum: xor the five state words.
	f.Li(isa.R1, state)
	f.Ldr(isa.R0, isa.R1, 0)
	f.Ldr(isa.R2, isa.R1, 4)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R2)
	f.Ldr(isa.R2, isa.R1, 8)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R2)
	f.Ldr(isa.R2, isa.R1, 12)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R2)
	f.Ldr(isa.R2, isa.R1, 16)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R2)
	f.Halt()

	// sha_block: R12 = block pointer. Uses R1-R10 freely.
	s := b.Func("sha_block")

	// Copy the 16 message words into W (unrolled x4).
	s.Li(isa.R6, wbuf)
	s.Movi(isa.R7, 4)
	s.Block("copy")
	for j := 0; j < 4; j++ {
		s.Ldr(isa.R8, isa.R12, int32(4*j))
		s.Str(isa.R8, isa.R6, int32(4*j))
	}
	s.Addi(isa.R12, isa.R12, 16)
	s.Addi(isa.R6, isa.R6, 16)
	s.Subi(isa.R7, isa.R7, 1)
	s.Cmpi(isa.R7, 0)
	s.Bgt("copy")

	// Expand W[16..79]: R6 points at W[t] (unrolled x4).
	s.Movi(isa.R7, 16)
	s.Block("expand")
	for j := int32(0); j < 4; j++ {
		s.Ldr(isa.R8, isa.R6, 4*j-12) // W[t-3]
		s.Ldr(isa.R9, isa.R6, 4*j-32) // W[t-8]
		s.Op3(isa.EOR, isa.R8, isa.R8, isa.R9)
		s.Ldr(isa.R9, isa.R6, 4*j-56) // W[t-14]
		s.Op3(isa.EOR, isa.R8, isa.R8, isa.R9)
		s.Ldr(isa.R9, isa.R6, 4*j-64) // W[t-16]
		s.Op3(isa.EOR, isa.R8, isa.R8, isa.R9)
		rol(s, isa.R8, isa.R8, 1)
		s.Str(isa.R8, isa.R6, 4*j)
	}
	s.Addi(isa.R6, isa.R6, 16)
	s.Subi(isa.R7, isa.R7, 1)
	s.Cmpi(isa.R7, 0)
	s.Bgt("expand")

	// Load the working state: a=R1 b=R2 c=R3 d=R4 e=R5.
	s.Li(isa.R6, state)
	s.Ldr(isa.R1, isa.R6, 0)
	s.Ldr(isa.R2, isa.R6, 4)
	s.Ldr(isa.R3, isa.R6, 8)
	s.Ldr(isa.R4, isa.R6, 12)
	s.Ldr(isa.R5, isa.R6, 16)
	s.Li(isa.R6, wbuf) // W cursor

	// round body shared shape: R8 = f(b,c,d) computed per phase,
	// then tmp = rol5(a)+f+e+W[t]+K.
	emitTail := func(k uint32) {
		// R8 += e + W[t] + K
		s.Add(isa.R8, isa.R8, isa.R5)
		s.Ldr(isa.R9, isa.R6, 0)
		s.Add(isa.R8, isa.R8, isa.R9)
		s.Li(isa.R9, k)
		s.Add(isa.R8, isa.R8, isa.R9)
		rol(s, isa.R9, isa.R1, 5)
		s.Add(isa.R8, isa.R8, isa.R9) // tmp
		// rotate state: e=d d=c c=rol30(b) b=a a=tmp
		s.Mov(isa.R5, isa.R4)
		s.Mov(isa.R4, isa.R3)
		rol(s, isa.R3, isa.R2, 30)
		s.Mov(isa.R2, isa.R1)
		s.Mov(isa.R1, isa.R8)
		s.Addi(isa.R6, isa.R6, 4)
		s.Subi(isa.R7, isa.R7, 1)
	}

	// Rounds 0-19: f = (b&c) | (~b&d)
	s.Movi(isa.R7, 20)
	s.Block("round1")
	for j := 0; j < 5; j++ {
		_ = j
		s.Op3(isa.AND, isa.R8, isa.R2, isa.R3)
		s.Op3(isa.BIC, isa.R9, isa.R4, isa.R2) // d &^ b
		s.Op3(isa.ORR, isa.R8, isa.R8, isa.R9)
		emitTail(shaK[0])
	}
	s.Cmpi(isa.R7, 0)
	s.Bgt("round1")

	// Rounds 20-39: f = b^c^d
	s.Movi(isa.R7, 20)
	s.Block("round2")
	for j := 0; j < 5; j++ {
		_ = j
		s.Op3(isa.EOR, isa.R8, isa.R2, isa.R3)
		s.Op3(isa.EOR, isa.R8, isa.R8, isa.R4)
		emitTail(shaK[1])
	}
	s.Cmpi(isa.R7, 0)
	s.Bgt("round2")

	// Rounds 40-59: f = (b&c)|(b&d)|(c&d)
	s.Movi(isa.R7, 20)
	s.Block("round3")
	for j := 0; j < 5; j++ {
		_ = j
		s.Op3(isa.AND, isa.R8, isa.R2, isa.R3)
		s.Op3(isa.AND, isa.R9, isa.R2, isa.R4)
		s.Op3(isa.ORR, isa.R8, isa.R8, isa.R9)
		s.Op3(isa.AND, isa.R9, isa.R3, isa.R4)
		s.Op3(isa.ORR, isa.R8, isa.R8, isa.R9)
		emitTail(shaK[2])
	}
	s.Cmpi(isa.R7, 0)
	s.Bgt("round3")

	// Rounds 60-79: f = b^c^d
	s.Movi(isa.R7, 20)
	s.Block("round4")
	for j := 0; j < 5; j++ {
		_ = j
		s.Op3(isa.EOR, isa.R8, isa.R2, isa.R3)
		s.Op3(isa.EOR, isa.R8, isa.R8, isa.R4)
		emitTail(shaK[3])
	}
	s.Cmpi(isa.R7, 0)
	s.Bgt("round4")

	// Fold the working state back: h[i] += reg.
	s.Li(isa.R6, state)
	for i, r := range []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5} {
		s.Ldr(isa.R8, isa.R6, int32(4*i))
		s.Add(isa.R8, isa.R8, r)
		s.Str(isa.R8, isa.R6, int32(4*i))
	}
	s.Ret()

	addRuntime(b)
	return b.Build()
}
