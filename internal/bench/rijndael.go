package bench

import (
	"encoding/binary"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("rijndael_e", "10-round T-table SPN block cipher, encrypt direction (MiBench security/rijndael enc)",
		func(in Input) (*obj.Unit, error) { return buildRijndael(in, true) })
	register("rijndael_d", "10-round T-table SPN block cipher, decrypt direction (MiBench security/rijndael dec)",
		func(in Input) (*obj.Unit, error) { return buildRijndael(in, false) })
}

// rjKey holds the expanded material of the AES-style cipher: four
// 256-entry T-tables per direction and 11 round keys of 4 words.
// As with blowfish, the key schedule runs offline (its output is data
// segment content); the measured kernel is the round function, which
// dominates MiBench rijndael's execution by orders of magnitude.
type rjKey struct {
	t  [4][256]uint32
	rk [44]uint32
}

func rjExpand(encrypt bool) *rjKey {
	seed := uint32(0xae5e)
	if !encrypt {
		seed = 0xae5d
	}
	r := newRNG(seed)
	k := &rjKey{}
	for b := range k.t {
		for i := range k.t[b] {
			k.t[b][i] = r.next()
		}
	}
	for i := range k.rk {
		k.rk[i] = r.next()
	}
	return k
}

// rounds applies the 10-round transform to one 16-byte block state.
func (k *rjKey) rounds(s [4]uint32) [4]uint32 {
	for i := 0; i < 4; i++ {
		s[i] ^= k.rk[i]
	}
	for round := 1; round <= 10; round++ {
		var n [4]uint32
		for i := 0; i < 4; i++ {
			n[i] = k.t[0][s[i]>>24] ^
				k.t[1][s[(i+1)&3]>>16&0xff] ^
				k.t[2][s[(i+2)&3]>>8&0xff] ^
				k.t[3][s[(i+3)&3]&0xff] ^
				k.rk[4*round+i]
		}
		s = n
	}
	return s
}

func rjInput(in Input) []byte {
	return newRNG(0x41e5).bytes(in.pick(2<<10, 20<<10))
}

// rjRef mirrors the program: transform every 16-byte block, xor all
// output words.
func rjRef(in Input, encrypt bool) uint32 {
	k := rjExpand(encrypt)
	data := rjInput(in)
	var sum uint32
	for i := 0; i+16 <= len(data); i += 16 {
		var s [4]uint32
		for j := range s {
			s[j] = binary.LittleEndian.Uint32(data[i+4*j:])
		}
		s = k.rounds(s)
		sum ^= s[0] ^ s[1] ^ s[2] ^ s[3]
	}
	return sum
}

// buildRijndael emits main (block loop) + rj_block (hot round
// function) + a cold sanity check.
//
// rj_block register plan: state R1-R4, new word accumulator R7,
// T base R6, rk cursor R5, temps R8-R10, round counter R11,
// stack slots for the new state words.
func buildRijndael(in Input, encrypt bool) (*obj.Unit, error) {
	k := rjExpand(encrypt)
	data := rjInput(in)

	b := asm.NewBuilder("rijndael")
	addAppShell(b, 0x1dc4, 13)
	var tflat []uint32
	for i := range k.t {
		tflat = append(tflat, k.t[i][:]...)
	}
	tAddr := b.Words(tflat...)
	rkAddr := b.Words(k.rk[:]...)
	buf := b.Data(data)
	scratch := b.Zeros(16) // new-state spill area
	nblocks := len(data) / 16

	f := b.Func("main")
	f.Call("app_init")
	f.Call("table_check")
	f.Movi(isa.R0, 0)
	f.Li(isa.R12, buf)
	f.Li(isa.R11, uint32(nblocks))
	f.Block("blocks")
	f.Call("rt_tick")
	f.Ldr(isa.R1, isa.R12, 0)
	f.Ldr(isa.R2, isa.R12, 4)
	f.Ldr(isa.R3, isa.R12, 8)
	f.Ldr(isa.R4, isa.R12, 12)
	f.Push(isa.R11, isa.R12)
	f.Call("rj_block")
	f.Pop(isa.R11, isa.R12)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R1)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R2)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R3)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R4)
	f.Addi(isa.R12, isa.R12, 16)
	f.Subi(isa.R11, isa.R11, 1)
	f.Cmpi(isa.R11, 0)
	f.Bgt("blocks")
	f.Halt()

	stateRegs := [4]isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4}

	rb := b.Func("rj_block")
	rb.Li(isa.R6, tAddr)
	rb.Li(isa.R5, rkAddr)
	// Initial whitening: s[i] ^= rk[i].
	for i := 0; i < 4; i++ {
		rb.Ldr(isa.R7, isa.R5, int32(4*i))
		rb.Op3(isa.EOR, stateRegs[i], stateRegs[i], isa.R7)
	}
	rb.Addi(isa.R5, isa.R5, 16)
	// All ten rounds are unrolled, as T-table AES implementations
	// invariably are: the round function is the hot footprint.
	for round := 1; round <= 10; round++ {
		rb.Li(isa.R12, scratch)
		for i := 0; i < 4; i++ {
			// R7 = T0[s[i]>>24]
			rb.OpI(isa.LSRI, isa.R8, stateRegs[i], 24)
			rb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
			rb.Ldrx(isa.R7, isa.R6, isa.R8)
			// ^= T1[s[i+1]>>16 & 0xff]
			rb.OpI(isa.LSRI, isa.R8, stateRegs[(i+1)&3], 16)
			rb.OpI(isa.ANDI, isa.R8, isa.R8, 0xff)
			rb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
			rb.Li(isa.R10, 1024)
			rb.Add(isa.R8, isa.R8, isa.R10)
			rb.Ldrx(isa.R9, isa.R6, isa.R8)
			rb.Op3(isa.EOR, isa.R7, isa.R7, isa.R9)
			// ^= T2[s[i+2]>>8 & 0xff]
			rb.OpI(isa.LSRI, isa.R8, stateRegs[(i+2)&3], 8)
			rb.OpI(isa.ANDI, isa.R8, isa.R8, 0xff)
			rb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
			rb.Li(isa.R10, 2048)
			rb.Add(isa.R8, isa.R8, isa.R10)
			rb.Ldrx(isa.R9, isa.R6, isa.R8)
			rb.Op3(isa.EOR, isa.R7, isa.R7, isa.R9)
			// ^= T3[s[i+3] & 0xff]
			rb.OpI(isa.ANDI, isa.R8, stateRegs[(i+3)&3], 0xff)
			rb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
			rb.Li(isa.R10, 3072)
			rb.Add(isa.R8, isa.R8, isa.R10)
			rb.Ldrx(isa.R9, isa.R6, isa.R8)
			rb.Op3(isa.EOR, isa.R7, isa.R7, isa.R9)
			// ^= rk[4*round + i]
			rb.Ldr(isa.R9, isa.R5, int32(4*i))
			rb.Op3(isa.EOR, isa.R7, isa.R7, isa.R9)
			rb.Str(isa.R7, isa.R12, int32(4*i))
		}
		// Reload the new state and advance the key cursor.
		for i := 0; i < 4; i++ {
			rb.Ldr(stateRegs[i], isa.R12, int32(4*i))
		}
		rb.Addi(isa.R5, isa.R5, 16)
	}
	rb.Ret()

	// table_check: cold — ensure the first T-table entries differ.
	tc := b.Func("table_check")
	tc.Li(isa.R5, tAddr)
	tc.Ldr(isa.R7, isa.R5, 0)
	tc.Ldr(isa.R8, isa.R5, 4)
	tc.Cmp(isa.R7, isa.R8)
	tc.Bne("ok")
	tc.Movi(isa.R0, 0xdead)
	tc.Halt()
	tc.Block("ok")
	tc.Ret()

	addRuntime(b)
	return b.Build()
}
