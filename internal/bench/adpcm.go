package bench

import (
	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("rawcaudio", "IMA ADPCM speech encoder (MiBench telecomm/adpcm rawcaudio)",
		func(in Input) (*obj.Unit, error) { return buildADPCM(in, true) })
	register("rawdaudio", "IMA ADPCM speech decoder (MiBench telecomm/adpcm rawdaudio)",
		func(in Input) (*obj.Unit, error) { return buildADPCM(in, false) })
}

// IMA ADPCM tables (the standard ones, as in MiBench's adpcm.c).
var adpcmIndexTable = []int32{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

var adpcmStepTable = []int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// adpcmSamples synthesises a speech-like 16-bit sample stream: a
// smoothly-slewing carrier chasing a randomly re-aimed target (the
// envelope/formant motion of speech) plus low-level noise. The slew
// rate is kept within what a 4-bit ADPCM codec can track, as real
// speech is.
func adpcmSamples(in Input) []int32 {
	n := in.pick(3_000, 26_000)
	r := newRNG(0xadc)
	out := make([]int32, n)
	var v, target int32
	for i := range out {
		if i%64 == 0 {
			target = int32(r.intn(20001) - 10000)
		}
		v += (target - v) >> 4
		v += int32(r.intn(41) - 20)
		out[i] = clamp16(v)
	}
	return out
}

func clamp16(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

// adpcmEncode is the Go reference encoder; it mirrors the simulated
// program instruction for instruction.
func adpcmEncode(samples []int32) []int32 {
	valpred, index := int32(0), int32(0)
	step := adpcmStepTable[0]
	out := make([]int32, len(samples))
	for i, sample := range samples {
		diff := sample - valpred
		sign := int32(0)
		if diff < 0 {
			sign = 8
			diff = -diff
		}
		delta := int32(0)
		vpdiff := step >> 3
		if diff >= step {
			delta = 4
			diff -= step
			vpdiff += step
		}
		step >>= 1
		if diff >= step {
			delta |= 2
			diff -= step
			vpdiff += step
		}
		step >>= 1
		if diff >= step {
			delta |= 1
			vpdiff += step
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		valpred = clamp16(valpred)
		delta |= sign
		index += adpcmIndexTable[delta]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		step = adpcmStepTable[index]
		out[i] = delta
	}
	return out
}

// adpcmDecode is the Go reference decoder.
func adpcmDecode(codes []int32) []int32 {
	valpred, index := int32(0), int32(0)
	step := adpcmStepTable[0]
	out := make([]int32, len(codes))
	for i, delta := range codes {
		index += adpcmIndexTable[delta]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		sign := delta & 8
		delta &= 7
		vpdiff := step >> 3
		if delta&4 != 0 {
			vpdiff += step
		}
		if delta&2 != 0 {
			vpdiff += step >> 1
		}
		if delta&1 != 0 {
			vpdiff += step >> 2
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		valpred = clamp16(valpred)
		step = adpcmStepTable[index]
		out[i] = valpred
	}
	return out
}

// adpcmRef returns the checksum the program computes: the sum of its
// outputs (codes for the encoder, samples for the decoder).
func adpcmRef(in Input, encode bool) uint32 {
	var outs []int32
	if encode {
		outs = adpcmEncode(adpcmSamples(in))
	} else {
		outs = adpcmDecode(adpcmEncode(adpcmSamples(in)))
	}
	var sum uint32
	for _, v := range outs {
		sum += uint32(v)
	}
	return sum
}

// buildADPCM emits the encoder or decoder. State registers across the
// sample loop:
//
//	R0 checksum  R1 input ptr  R2 samples left  R3 valpred
//	R4 index     R5 step       R6-R10 temps     R11 step table
//	R12 index table
func buildADPCM(in Input, encode bool) (*obj.Unit, error) {
	b := asm.NewBuilder("adpcm")
	addAppShell(b, 0xe187, 10)
	stepTab := b.Words(u32s(adpcmStepTable)...)
	idxTab := b.Words(u32s(adpcmIndexTable)...)

	var input []int32
	if encode {
		input = adpcmSamples(in)
	} else {
		input = adpcmEncode(adpcmSamples(in))
	}
	buf := b.Words(u32s(input)...)

	// emitClampValpred clamps R3 to [-32768, 32767].
	emitClampValpred := func(f *asm.FuncBuilder) {
		f.Li(isa.R6, 32767)
		f.Cmp(isa.R3, isa.R6)
		f.Ble("nohigh")
		f.Mov(isa.R3, isa.R6)
		f.Block("nohigh")
		f.Li(isa.R6, uint32(0xffff8000)) // -32768
		f.Cmp(isa.R3, isa.R6)
		f.Bge("nolow")
		f.Mov(isa.R3, isa.R6)
		f.Block("nolow")
	}
	// emitClampIndex clamps R4 to [0, 88] and reloads step into R5.
	emitClampIndex := func(f *asm.FuncBuilder) {
		f.Cmpi(isa.R4, 0)
		f.Bge("idxlo")
		f.Movi(isa.R4, 0)
		f.Block("idxlo")
		f.Cmpi(isa.R4, 88)
		f.Ble("idxhi")
		f.Movi(isa.R4, 88)
		f.Block("idxhi")
		f.OpI(isa.LSLI, isa.R6, isa.R4, 2)
		f.Ldrx(isa.R5, isa.R11, isa.R6)
	}

	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)
	f.Li(isa.R1, buf)
	f.Li(isa.R2, uint32(len(input)))
	f.Movi(isa.R3, 0) // valpred
	f.Movi(isa.R4, 0) // index
	f.Li(isa.R11, stepTab)
	f.Li(isa.R12, idxTab)
	f.Ldr(isa.R5, isa.R11, 0) // step = stepTable[0]
	f.Block("loop")
	f.Ldr(isa.R7, isa.R1, 0) // sample or code

	if encode {
		// diff = sample - valpred; sign in R9.
		f.Sub(isa.R7, isa.R7, isa.R3)
		f.Movi(isa.R9, 0)
		f.Cmpi(isa.R7, 0)
		f.Bge("pos")
		f.Movi(isa.R9, 8)
		f.Movi(isa.R6, 0)
		f.Sub(isa.R7, isa.R6, isa.R7)
		f.Block("pos")
		f.Movi(isa.R8, 0)                   // delta
		f.OpI(isa.ASRI, isa.R10, isa.R5, 3) // vpdiff = step>>3
		f.Cmp(isa.R7, isa.R5)
		f.Blt("b4")
		f.Movi(isa.R8, 4)
		f.Sub(isa.R7, isa.R7, isa.R5)
		f.Add(isa.R10, isa.R10, isa.R5)
		f.Block("b4")
		f.OpI(isa.ASRI, isa.R5, isa.R5, 1)
		f.Cmp(isa.R7, isa.R5)
		f.Blt("b2")
		f.OpI(isa.ORRI, isa.R8, isa.R8, 2)
		f.Sub(isa.R7, isa.R7, isa.R5)
		f.Add(isa.R10, isa.R10, isa.R5)
		f.Block("b2")
		f.OpI(isa.ASRI, isa.R5, isa.R5, 1)
		f.Cmp(isa.R7, isa.R5)
		f.Blt("b1")
		f.OpI(isa.ORRI, isa.R8, isa.R8, 1)
		f.Add(isa.R10, isa.R10, isa.R5)
		f.Block("b1")
		// valpred +/-= vpdiff
		f.Cmpi(isa.R9, 0)
		f.Beq("addv")
		f.Sub(isa.R3, isa.R3, isa.R10)
		f.Jmp("clamped")
		f.Block("addv")
		f.Add(isa.R3, isa.R3, isa.R10)
		f.Block("clamped")
		emitClampValpred(f)
		f.Op3(isa.ORR, isa.R8, isa.R8, isa.R9) // delta |= sign
		// index += indexTable[delta]
		f.OpI(isa.LSLI, isa.R6, isa.R8, 2)
		f.Ldrx(isa.R6, isa.R12, isa.R6)
		f.Add(isa.R4, isa.R4, isa.R6)
		emitClampIndex(f)
		f.Add(isa.R0, isa.R0, isa.R8) // checksum += delta
	} else {
		// index += indexTable[delta]; clamp; split sign/magnitude.
		f.OpI(isa.LSLI, isa.R6, isa.R7, 2)
		f.Ldrx(isa.R6, isa.R12, isa.R6)
		f.Add(isa.R4, isa.R4, isa.R6)
		f.Cmpi(isa.R4, 0)
		f.Bge("ilo")
		f.Movi(isa.R4, 0)
		f.Block("ilo")
		f.Cmpi(isa.R4, 88)
		f.Ble("ihi")
		f.Movi(isa.R4, 88)
		f.Block("ihi")
		f.OpI(isa.ANDI, isa.R9, isa.R7, 8) // sign
		f.OpI(isa.ANDI, isa.R8, isa.R7, 7) // magnitude
		f.OpI(isa.ASRI, isa.R10, isa.R5, 3)
		f.OpI(isa.ANDI, isa.R6, isa.R8, 4)
		f.Cmpi(isa.R6, 0)
		f.Beq("d4")
		f.Add(isa.R10, isa.R10, isa.R5)
		f.Block("d4")
		f.OpI(isa.ANDI, isa.R6, isa.R8, 2)
		f.Cmpi(isa.R6, 0)
		f.Beq("d2")
		f.OpI(isa.ASRI, isa.R6, isa.R5, 1)
		f.Add(isa.R10, isa.R10, isa.R6)
		f.Block("d2")
		f.OpI(isa.ANDI, isa.R6, isa.R8, 1)
		f.Cmpi(isa.R6, 0)
		f.Beq("d1")
		f.OpI(isa.ASRI, isa.R6, isa.R5, 2)
		f.Add(isa.R10, isa.R10, isa.R6)
		f.Block("d1")
		f.Cmpi(isa.R9, 0)
		f.Beq("addv")
		f.Sub(isa.R3, isa.R3, isa.R10)
		f.Jmp("clamped")
		f.Block("addv")
		f.Add(isa.R3, isa.R3, isa.R10)
		f.Block("clamped")
		emitClampValpred(f)
		// step = stepTable[index]
		f.OpI(isa.LSLI, isa.R6, isa.R4, 2)
		f.Ldrx(isa.R5, isa.R11, isa.R6)
		f.Add(isa.R0, isa.R0, isa.R3) // checksum += valpred
	}

	f.Addi(isa.R1, isa.R1, 4)
	f.Subi(isa.R2, isa.R2, 1)
	f.Cmpi(isa.R2, 0)
	f.Bgt("loop")
	f.Halt()
	addRuntime(b)
	return b.Build()
}

// u32s reinterprets a signed slice as unsigned words for the data
// segment.
func u32s(vs []int32) []uint32 {
	out := make([]uint32, len(vs))
	for i, v := range vs {
		out[i] = uint32(v)
	}
	return out
}
