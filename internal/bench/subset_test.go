package bench

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSubset(t *testing.T) {
	t.Run("empty means full suite", func(t *testing.T) {
		for _, in := range []string{"", "  ", "\t"} {
			got, err := ParseSubset(in)
			if err != nil {
				t.Fatalf("ParseSubset(%q): %v", in, err)
			}
			if !reflect.DeepEqual(got, Names()) {
				t.Errorf("ParseSubset(%q) != Names()", in)
			}
		}
	})

	t.Run("trims whitespace and drops empties", func(t *testing.T) {
		got, err := ParseSubset(" sha , crc ,, patricia ,")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"sha", "crc", "patricia"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("got %v, want %v", got, want)
		}
	})

	t.Run("unknown names fail up front with the valid list", func(t *testing.T) {
		_, err := ParseSubset("sha,shaa,crcc")
		if err == nil {
			t.Fatal("typo'd subset accepted")
		}
		msg := err.Error()
		for _, want := range []string{"shaa", "crcc", "valid names:", "sha"} {
			if !strings.Contains(msg, want) {
				t.Errorf("error %q missing %q", msg, want)
			}
		}
	})

	t.Run("only separators is an error", func(t *testing.T) {
		if _, err := ParseSubset(",, ,"); err == nil {
			t.Error("separator-only subset accepted")
		}
	})
}
