// Package bench provides the workload suite of the reproduction: one
// program per MiBench benchmark the paper evaluates (section 5), each
// written from scratch against the repository's ISA via the program
// builder.
//
// The real MiBench sources and inputs are not usable here (no ARM
// compiler, no input files), so each benchmark is a faithful kernel
// reimplementation: the same algorithmic skeleton — table-driven CRC,
// SHA round structure, Feistel/SPN cipher rounds, FFT butterflies,
// trie walks, per-pixel image loops, ADPCM step logic — expressed as
// real control flow, calls and memory traffic. What the paper's
// experiments measure is the *instruction stream shape* (hot-loop
// concentration, basic-block mix, call structure, code footprint),
// which these kernels mirror; see DESIGN.md for the substitution
// rationale.
//
// As in the paper, every benchmark has two inputs: Small (the
// training input, used only to profile) and Large (the reference
// input, used for the timing/energy evaluation). Both inputs drive
// the same code; only data contents and trip counts differ.
//
// Every program leaves a checksum in R0 at HALT so that runs under
// different layouts and fetch schemes can be cross-checked.
package bench

import (
	"fmt"
	"sort"

	"wayplace/internal/obj"
)

// Input selects the workload size.
type Input int

// The two inputs of the paper's methodology.
const (
	Small Input = iota // training input: profiling runs
	Large              // reference input: evaluation runs
)

// String names the input.
func (in Input) String() string {
	if in == Small {
		return "small"
	}
	return "large"
}

// pick returns s for Small and l for Large.
func (in Input) pick(s, l int) int {
	if in == Small {
		return s
	}
	return l
}

// Benchmark is one suite entry.
type Benchmark struct {
	Name  string
	Descr string
	Build func(in Input) (*obj.Unit, error)
}

var registry []Benchmark

func register(name, descr string, build func(in Input) (*obj.Unit, error)) {
	registry = append(registry, Benchmark{Name: name, Descr: descr, Build: build})
}

// All returns the full suite in the order the paper's figure 4 lists
// the benchmarks.
func All() []Benchmark {
	order := []string{
		"bitcount", "susan_c", "susan_e", "susan_s",
		"cjpeg", "djpeg", "tiff2bw", "tiff2rgba", "tiffdither", "tiffmedian",
		"patricia", "ispell", "rsynth",
		"blowfish_d", "blowfish_e", "rijndael_d", "rijndael_e", "sha",
		"rawcaudio", "rawdaudio", "crc", "fft", "fft_i",
	}
	idx := make(map[string]int, len(order))
	for i, n := range order {
		idx[n] = i
	}
	out := append([]Benchmark(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idx[out[i].Name] < idx[out[j].Name] })
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names returns the suite's benchmark names in figure order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Name
	}
	return out
}

// --- deterministic data generation -------------------------------

// rng is a small deterministic generator for benchmark input data.
// (Not math/rand: input bytes must be bit-for-bit stable across Go
// releases, since checksums are compared between runs.)
type rng struct{ s uint32 }

func newRNG(seed uint32) *rng { return &rng{s: seed | 1} }

func (r *rng) next() uint32 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 17
	r.s ^= r.s << 5
	return r.s
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint32(n)) }

// bytes returns n pseudo-random bytes.
func (r *rng) bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

// words returns n pseudo-random 32-bit words.
func (r *rng) words(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.next()
	}
	return out
}
