package bench

import (
	"math/bits"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("bitcount", "four bit-counting algorithms over a word stream (MiBench automotive/bitcount)",
		buildBitcount)
}

// nibbleTable is the 16-entry popcount table used by the table-driven
// counters (as in MiBench's bitcount).
var nibbleTable = []uint32{0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4}

func bitcountInput(in Input) []uint32 {
	return newRNG(0xb17c).words(in.pick(3_000, 24_000))
}

// bitcountRef mirrors the program: each input word is counted by one
// of four methods selected round-robin, and the counts accumulate.
func bitcountRef(ws []uint32) uint32 {
	var sum uint32
	for i, w := range ws {
		switch i & 3 {
		case 0: // shift-and-mask over all 32 bits
			for k := 0; k < 32; k++ {
				sum += w >> k & 1
			}
		case 1: // nibble table
			for w != 0 {
				sum += nibbleTable[w&0xf]
				w >>= 4
			}
		case 2: // Kernighan
			for w != 0 {
				w &= w - 1
				sum++
			}
		default: // byte-parallel via nibble table, unrolled
			sum += uint32(bits.OnesCount32(w))
		}
	}
	return sum
}

// buildBitcount emits main plus four counting functions; main
// dispatches each word to one of them round-robin, which gives the
// benchmark its characteristic multi-kernel instruction mix.
func buildBitcount(in Input) (*obj.Unit, error) {
	b := asm.NewBuilder("bitcount")
	addAppShell(b, 0x1caa, 10)
	words := bitcountInput(in)
	tab := b.Words(nibbleTable...)
	data := b.Words(words...)

	// Convention: counters take the word in R1, return the count in
	// R2; they may clobber R3-R6.
	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0) // checksum accumulator
	f.Li(isa.R7, data)
	f.Li(isa.R8, uint32(len(words)))
	f.Movi(isa.R9, 0) // method selector
	f.Block("loop")
	f.Ldr(isa.R1, isa.R7, 0)
	f.OpI(isa.ANDI, isa.R10, isa.R9, 3)
	f.Cmpi(isa.R10, 0)
	f.Beq("m0")
	f.Cmpi(isa.R10, 1)
	f.Beq("m1")
	f.Cmpi(isa.R10, 2)
	f.Beq("m2")
	f.Call("cnt_unrolled")
	f.Jmp("done")
	f.Block("m0")
	f.Call("cnt_shift")
	f.Jmp("done")
	f.Block("m1")
	f.Call("cnt_table")
	f.Jmp("done")
	f.Block("m2")
	f.Call("cnt_kernighan")
	f.Block("done")
	f.Add(isa.R0, isa.R0, isa.R2)
	f.Addi(isa.R7, isa.R7, 4)
	f.Addi(isa.R9, isa.R9, 1)
	f.Subi(isa.R8, isa.R8, 1)
	f.Cmpi(isa.R8, 0)
	f.Bgt("loop")
	f.Halt()

	// cnt_shift: test all 32 bit positions.
	s := b.Func("cnt_shift")
	s.Movi(isa.R2, 0)
	s.Movi(isa.R3, 32)
	s.Mov(isa.R4, isa.R1)
	s.Block("bits")
	s.OpI(isa.ANDI, isa.R5, isa.R4, 1)
	s.Add(isa.R2, isa.R2, isa.R5)
	s.OpI(isa.LSRI, isa.R4, isa.R4, 1)
	s.Subi(isa.R3, isa.R3, 1)
	s.Cmpi(isa.R3, 0)
	s.Bgt("bits")
	s.Ret()

	// cnt_table: nibble-at-a-time with an early exit when the word
	// runs out of set bits.
	tb := b.Func("cnt_table")
	tb.Movi(isa.R2, 0)
	tb.Mov(isa.R4, isa.R1)
	tb.Li(isa.R6, tab)
	tb.Block("nib")
	tb.Cmpi(isa.R4, 0)
	tb.Beq("out")
	tb.OpI(isa.ANDI, isa.R5, isa.R4, 0xf)
	tb.OpI(isa.LSLI, isa.R5, isa.R5, 2)
	tb.Ldrx(isa.R5, isa.R6, isa.R5)
	tb.Add(isa.R2, isa.R2, isa.R5)
	tb.OpI(isa.LSRI, isa.R4, isa.R4, 4)
	tb.Jmp("nib")
	tb.Block("out")
	tb.Ret()

	// cnt_kernighan: clear the lowest set bit until zero.
	k := b.Func("cnt_kernighan")
	k.Movi(isa.R2, 0)
	k.Mov(isa.R4, isa.R1)
	k.Block("kloop")
	k.Cmpi(isa.R4, 0)
	k.Beq("kout")
	k.Subi(isa.R5, isa.R4, 1)
	k.Op3(isa.AND, isa.R4, isa.R4, isa.R5)
	k.Addi(isa.R2, isa.R2, 1)
	k.Jmp("kloop")
	k.Block("kout")
	k.Ret()

	// cnt_unrolled: eight table lookups, straight-line (no early
	// exit) — the "fast" variant in MiBench.
	u := b.Func("cnt_unrolled")
	u.Movi(isa.R2, 0)
	u.Li(isa.R6, tab)
	for sh := 0; sh < 32; sh += 4 {
		u.OpI(isa.LSRI, isa.R5, isa.R1, int32(sh))
		u.OpI(isa.ANDI, isa.R5, isa.R5, 0xf)
		u.OpI(isa.LSLI, isa.R5, isa.R5, 2)
		u.Ldrx(isa.R5, isa.R6, isa.R5)
		u.Add(isa.R2, isa.R2, isa.R5)
	}
	u.Ret()

	addRuntime(b)
	return b.Build()
}
