package bench

import (
	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("crc", "table-driven CRC-32 over a byte stream (MiBench telecomm/CRC32)",
		buildCRC)
}

// crcPoly is the standard reflected CRC-32 polynomial.
const crcPoly = 0xedb88320

// crcTable computes the 256-entry lookup table (done by the "compiler"
// and placed in the data segment, as MiBench's crc32 does statically).
func crcTable() []uint32 {
	t := make([]uint32, 256)
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = crcPoly ^ c>>1
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}

// crcRef is the Go reference used by the tests to validate the
// simulated program's checksum.
func crcRef(data []byte) uint32 {
	t := crcTable()
	c := ^uint32(0)
	for _, b := range data {
		c = t[(c^uint32(b))&0xff] ^ c>>8
	}
	return ^c
}

// crcInput returns the benchmark's input stream.
func crcInput(in Input) []byte {
	return newRNG(0xc0c32).bytes(in.pick(8<<10, 96<<10))
}

// buildCRC emits:
//
//	main: init crc, call crc_chunk over the buffer in two halves
//	      (two call sites stress return-address behaviour), finalise.
//	crc_chunk(R1=ptr, R2=len) -> R0 updated crc          [hot]
//	selftest: cold verification path over a tiny vector   [cold]
func buildCRC(in Input) (*obj.Unit, error) {
	b := asm.NewBuilder("crc")
	addAppShell(b, 0xbe4e, 11)
	data := crcInput(in)
	table := b.Words(crcTable()...)
	buf := b.Data(data)
	half := int32(len(data) / 2)

	f := b.Func("main")
	f.Call("app_init")
	f.Call("selftest")
	f.Li(isa.R0, 0xffff_ffff) // crc seed
	f.Li(isa.R1, buf)
	f.Li(isa.R12, uint32(half))
	f.Mov(isa.R2, isa.R12)
	f.Call("crc_chunk")
	f.Li(isa.R1, buf)
	f.Add(isa.R1, isa.R1, isa.R12)
	f.Mov(isa.R2, isa.R12)
	f.Call("crc_chunk")
	f.Mvn(isa.R0, isa.R0) // final complement
	f.Halt()

	// crc_chunk: R0 = running crc, R1 = ptr, R2 = byte count.
	// Clobbers R3-R6.
	c := b.Func("crc_chunk")
	c.Li(isa.R4, table)
	c.Block("loop")
	c.Ldrb(isa.R3, isa.R1, 0)              // next byte
	c.Op3(isa.EOR, isa.R5, isa.R0, isa.R3) // crc ^ byte
	c.OpI(isa.ANDI, isa.R5, isa.R5, 0xff)
	c.OpI(isa.LSLI, isa.R5, isa.R5, 2) // word index
	c.Ldrx(isa.R6, isa.R4, isa.R5)     // table load
	c.OpI(isa.LSRI, isa.R0, isa.R0, 8)
	c.Op3(isa.EOR, isa.R0, isa.R0, isa.R6)
	c.Addi(isa.R1, isa.R1, 1)
	c.Subi(isa.R2, isa.R2, 1)
	c.Cmpi(isa.R2, 0)
	c.Bgt("loop")
	c.Ret()

	// selftest: cold path — CRC of 4 fixed bytes, discard the result
	// but trap an impossible outcome to exercise the error block.
	s := b.Func("selftest")
	s.SaveLR()
	s.Li(isa.R0, 0xffff_ffff)
	s.Li(isa.R1, table) // reuse the table itself as a 4-byte vector
	s.Movi(isa.R2, 4)
	s.Call("crc_chunk")
	s.Cmpi(isa.R0, 0)
	s.Beq("impossible")
	s.RestoreLR()
	s.Ret()
	s.Block("impossible")
	s.Movi(isa.R0, 0xdead)
	s.Halt()

	addRuntime(b)
	return b.Build()
}
