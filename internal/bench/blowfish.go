package bench

import (
	"encoding/binary"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("blowfish_e", "16-round Blowfish-style Feistel encryption (MiBench security/blowfish enc)",
		func(in Input) (*obj.Unit, error) { return buildBlowfish(in, true) })
	register("blowfish_d", "16-round Blowfish-style Feistel decryption (MiBench security/blowfish dec)",
		func(in Input) (*obj.Unit, error) { return buildBlowfish(in, false) })
}

// bfKey holds the expanded key material: 18 P subkeys and four
// 256-entry S-boxes. MiBench performs the key schedule at start-up;
// here the schedule's output is precomputed into the data segment
// (deterministically from the seed), keeping the hot loop — the block
// rounds — identical.
type bfKey struct {
	p [18]uint32
	s [4][256]uint32
}

func bfExpandKey() *bfKey {
	r := newRNG(0xb70f)
	k := &bfKey{}
	for i := range k.p {
		k.p[i] = r.next()
	}
	for b := range k.s {
		for i := range k.s[b] {
			k.s[b][i] = r.next()
		}
	}
	return k
}

func (k *bfKey) f(x uint32) uint32 {
	a, b, c, d := x>>24, x>>16&0xff, x>>8&0xff, x&0xff
	return (k.s[0][a] + k.s[1][b]) ^ k.s[2][c] + k.s[3][d]
}

func (k *bfKey) encrypt(xl, xr uint32) (uint32, uint32) {
	for i := 0; i < 16; i++ {
		xl ^= k.p[i]
		xr ^= k.f(xl)
		xl, xr = xr, xl
	}
	xl, xr = xr, xl
	xr ^= k.p[16]
	xl ^= k.p[17]
	return xl, xr
}

func (k *bfKey) decrypt(xl, xr uint32) (uint32, uint32) {
	for i := 17; i > 1; i-- {
		xl ^= k.p[i]
		xr ^= k.f(xl)
		xl, xr = xr, xl
	}
	xl, xr = xr, xl
	xr ^= k.p[1]
	xl ^= k.p[0]
	return xl, xr
}

// bfPlaintext is the cleartext stream.
func bfPlaintext(in Input) []byte {
	return newRNG(0xb10c).bytes(in.pick(2<<10, 24<<10))
}

// bfInput returns what the benchmark reads: the plaintext for
// encryption, or the real ciphertext for decryption (MiBench's
// blowfish_d decrypts the file blowfish_e produced).
func bfInput(in Input, encrypt bool) []byte {
	pt := bfPlaintext(in)
	if encrypt {
		return pt
	}
	k := bfExpandKey()
	ct := make([]byte, len(pt))
	for i := 0; i+8 <= len(pt); i += 8 {
		xl := binary.LittleEndian.Uint32(pt[i:])
		xr := binary.LittleEndian.Uint32(pt[i+4:])
		xl, xr = k.encrypt(xl, xr)
		binary.LittleEndian.PutUint32(ct[i:], xl)
		binary.LittleEndian.PutUint32(ct[i+4:], xr)
	}
	return ct
}

// bfRef mirrors the simulated program: process every 8-byte block and
// xor all output words together.
func bfRef(in Input, encrypt bool) uint32 {
	k := bfExpandKey()
	data := bfInput(in, encrypt)
	var sum uint32
	for i := 0; i+8 <= len(data); i += 8 {
		xl := binary.LittleEndian.Uint32(data[i:])
		xr := binary.LittleEndian.Uint32(data[i+4:])
		if encrypt {
			xl, xr = k.encrypt(xl, xr)
		} else {
			xl, xr = k.decrypt(xl, xr)
		}
		sum ^= xl ^ xr
	}
	return sum
}

// buildBlowfish emits main (block loop) + bf_block (16 Feistel
// rounds, hot) + a cold key-check function.
//
// Register plan in bf_block: R1=xl R2=xr R5=P cursor R6=S base
// R7-R10 temps R11 round counter.
func buildBlowfish(in Input, encrypt bool) (*obj.Unit, error) {
	k := bfExpandKey()
	data := bfInput(in, encrypt)

	b := asm.NewBuilder("blowfish")
	addAppShell(b, 0x6956, 12)
	pAddr := b.Words(k.p[:]...)
	sAddr := b.Words(append(append(append(append([]uint32{},
		k.s[0][:]...), k.s[1][:]...), k.s[2][:]...), k.s[3][:]...)...)
	buf := b.Data(data)
	nblocks := len(data) / 8

	f := b.Func("main")
	f.Call("app_init")
	f.Call("key_check")
	f.Movi(isa.R0, 0)
	f.Li(isa.R3, buf)
	f.Li(isa.R4, uint32(nblocks))
	f.Block("blocks")
	f.Call("rt_tick")
	f.Ldr(isa.R1, isa.R3, 0)
	f.Ldr(isa.R2, isa.R3, 4)
	f.Push(isa.R3, isa.R4)
	f.Call("bf_block")
	f.Pop(isa.R3, isa.R4)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R1)
	f.Op3(isa.EOR, isa.R0, isa.R0, isa.R2)
	f.Addi(isa.R3, isa.R3, 8)
	f.Subi(isa.R4, isa.R4, 1)
	f.Cmpi(isa.R4, 0)
	f.Bgt("blocks")
	f.Halt()

	// bf_block: transforms (R1, R2) in place.
	// The sixteen rounds are fully unrolled, as production Blowfish
	// implementations (and MiBench's) are: the hot code footprint is
	// the whole round sequence, not one round body.
	bb := b.Func("bf_block")
	bb.Li(isa.R6, sAddr)
	if encrypt {
		bb.Li(isa.R5, pAddr) // ascending P[0..15]
	} else {
		bb.Li(isa.R5, pAddr+17*4) // descending P[17..2]
	}
	for round := 0; round < 16; round++ {
		// xl ^= *P; advance P cursor.
		bb.Ldr(isa.R7, isa.R5, 0)
		bb.Op3(isa.EOR, isa.R1, isa.R1, isa.R7)
		if encrypt {
			bb.Addi(isa.R5, isa.R5, 4)
		} else {
			bb.Subi(isa.R5, isa.R5, 4)
		}
		// R7 = F(xl) = (S0[a]+S1[b]) ^ S2[c] + S3[d]
		bb.OpI(isa.LSRI, isa.R8, isa.R1, 24)
		bb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
		bb.Ldrx(isa.R7, isa.R6, isa.R8) // S0[a]
		bb.OpI(isa.LSRI, isa.R8, isa.R1, 16)
		bb.OpI(isa.ANDI, isa.R8, isa.R8, 0xff)
		bb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
		bb.Li(isa.R10, 1024)
		bb.Add(isa.R8, isa.R8, isa.R10)
		bb.Ldrx(isa.R9, isa.R6, isa.R8) // S1[b]
		bb.Add(isa.R7, isa.R7, isa.R9)
		bb.OpI(isa.LSRI, isa.R8, isa.R1, 8)
		bb.OpI(isa.ANDI, isa.R8, isa.R8, 0xff)
		bb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
		bb.Li(isa.R10, 2048)
		bb.Add(isa.R8, isa.R8, isa.R10)
		bb.Ldrx(isa.R9, isa.R6, isa.R8) // S2[c]
		bb.Op3(isa.EOR, isa.R7, isa.R7, isa.R9)
		bb.OpI(isa.ANDI, isa.R8, isa.R1, 0xff)
		bb.OpI(isa.LSLI, isa.R8, isa.R8, 2)
		bb.Li(isa.R10, 3072)
		bb.Add(isa.R8, isa.R8, isa.R10)
		bb.Ldrx(isa.R9, isa.R6, isa.R8) // S3[d]
		bb.Add(isa.R7, isa.R7, isa.R9)
		// xr ^= F; swap.
		bb.Op3(isa.EOR, isa.R2, isa.R2, isa.R7)
		bb.Mov(isa.R9, isa.R1)
		bb.Mov(isa.R1, isa.R2)
		bb.Mov(isa.R2, isa.R9)
	}
	// Undo the last swap and whiten with the outer subkeys.
	bb.Mov(isa.R9, isa.R1)
	bb.Mov(isa.R1, isa.R2)
	bb.Mov(isa.R2, isa.R9)
	if encrypt {
		bb.Li(isa.R5, pAddr+16*4)
		bb.Ldr(isa.R7, isa.R5, 0) // P[16]
		bb.Op3(isa.EOR, isa.R2, isa.R2, isa.R7)
		bb.Ldr(isa.R7, isa.R5, 4) // P[17]
		bb.Op3(isa.EOR, isa.R1, isa.R1, isa.R7)
	} else {
		bb.Li(isa.R5, pAddr)
		bb.Ldr(isa.R7, isa.R5, 4) // P[1]
		bb.Op3(isa.EOR, isa.R2, isa.R2, isa.R7)
		bb.Ldr(isa.R7, isa.R5, 0) // P[0]
		bb.Op3(isa.EOR, isa.R1, isa.R1, isa.R7)
	}
	bb.Ret()

	// key_check: cold — verify the P-array is non-degenerate (all
	// 18 words not identical), as the real key schedule would.
	kc := b.Func("key_check")
	kc.Li(isa.R5, pAddr)
	kc.Ldr(isa.R7, isa.R5, 0)
	kc.Movi(isa.R11, 17)
	kc.Block("scan")
	kc.Addi(isa.R5, isa.R5, 4)
	kc.Ldr(isa.R8, isa.R5, 0)
	kc.Cmp(isa.R8, isa.R7)
	kc.Bne("ok")
	kc.Subi(isa.R11, isa.R11, 1)
	kc.Cmpi(isa.R11, 0)
	kc.Bgt("scan")
	kc.Movi(isa.R0, 0xdead) // degenerate key: trap
	kc.Halt()
	kc.Block("ok")
	kc.Ret()

	addRuntime(b)
	return b.Build()
}
