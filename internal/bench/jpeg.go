package bench

import (
	"math"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("cjpeg", "8x8 block DCT + quantisation encoder (MiBench consumer/cjpeg)",
		func(in Input) (*obj.Unit, error) { return buildJpeg(in, true) })
	register("djpeg", "dequantisation + inverse block transform decoder (MiBench consumer/djpeg)",
		func(in Input) (*obj.Unit, error) { return buildJpeg(in, false) })
}

// jpegDims: the image is a multiple of 8 in both directions.
func jpegDims(in Input) (w, h int) {
	if in == Small {
		return 64, 40
	}
	return 224, 160
}

// jpegC holds the Q12 DCT odd-part cosines c1, c3, c5, c7.
var jpegC = [4]int32{
	int32(math.Round(4096 * math.Cos(1*math.Pi/16))),
	int32(math.Round(4096 * math.Cos(3*math.Pi/16))),
	int32(math.Round(4096 * math.Cos(5*math.Pi/16))),
	int32(math.Round(4096 * math.Cos(7*math.Pi/16))),
}

// jpegQuantShift is the per-coefficient quantisation shift table
// (coarser for higher frequencies), indexed in row-major block order.
func jpegQuantShift() []int32 {
	t := make([]int32, 64)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			s := int32((x + y) / 2)
			if s > 6 {
				s = 6
			}
			t[8*y+x] = s + 1
		}
	}
	return t
}

// jpegTransform1D applies the 8-point transform in place over
// tmp[off], tmp[off+stride], ... — exactly what the simulated
// transform1d function computes.
func jpegTransform1D(tmp []int32, off, stride int) {
	var v [8]int32
	for k := 0; k < 8; k++ {
		v[k] = tmp[off+k*stride]
	}
	var e, o [4]int32
	for k := 0; k < 4; k++ {
		e[k] = v[k] + v[7-k]
		o[k] = v[k] - v[7-k]
	}
	out := [8]int32{}
	out[0] = e[0] + e[1] + e[2] + e[3]
	out[4] = e[0] - e[1] - e[2] + e[3]
	out[2] = ((e[0]-e[3])*jpegC[1] + (e[1]-e[2])*jpegC[3]) >> 12
	out[6] = ((e[0]-e[3])*jpegC[3] - (e[1]-e[2])*jpegC[1]) >> 12
	out[1] = (o[0]*jpegC[0] + o[1]*jpegC[1] + o[2]*jpegC[2] + o[3]*jpegC[3]) >> 12
	out[3] = (o[0]*jpegC[1] - o[1]*jpegC[3] - o[2]*jpegC[0] - o[3]*jpegC[2]) >> 12
	out[5] = (o[0]*jpegC[2] - o[1]*jpegC[0] + o[2]*jpegC[3] + o[3]*jpegC[1]) >> 12
	out[7] = (o[0]*jpegC[3] - o[1]*jpegC[2] + o[2]*jpegC[1] - o[3]*jpegC[0]) >> 12
	for k := 0; k < 8; k++ {
		tmp[off+k*stride] = out[k]
	}
}

func jpegImage(in Input) []byte {
	w, h := jpegDims(in)
	return tiffGray(in, 0x11e6)[:w*h]
}

// jpegEncodeBlocks runs the forward path in Go: level shift, 2D
// transform, quantise. Returns all quantised blocks flattened.
func jpegEncodeBlocks(in Input) []int32 {
	w, h := jpegDims(in)
	img := jpegImage(in)
	qs := jpegQuantShift()
	var out []int32
	tmp := make([]int32, 64)
	for by := 0; by < h; by += 8 {
		for bx := 0; bx < w; bx += 8 {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					tmp[8*y+x] = int32(img[(by+y)*w+bx+x]) - 128
				}
			}
			for r := 0; r < 8; r++ {
				jpegTransform1D(tmp, 8*r, 1)
			}
			for c := 0; c < 8; c++ {
				jpegTransform1D(tmp, c, 8)
			}
			for k := 0; k < 64; k++ {
				out = append(out, tmp[k]>>uint(qs[k]))
			}
		}
	}
	return out
}

// jpegRef returns the checksum for either direction.
func jpegRef(in Input, encode bool) uint32 {
	var sum uint32
	if encode {
		for _, q := range jpegEncodeBlocks(in) {
			sum += uint32(q)
		}
		return sum
	}
	// Decode: dequantise, inverse-ish transform (the same 8-point
	// kernel — scaled DCT), descale, clamp to pixel range.
	qs := jpegQuantShift()
	coeffs := jpegEncodeBlocks(in)
	tmp := make([]int32, 64)
	for b := 0; b+64 <= len(coeffs); b += 64 {
		for k := 0; k < 64; k++ {
			tmp[k] = coeffs[b+k] << uint(qs[k])
		}
		for c := 0; c < 8; c++ {
			jpegTransform1D(tmp, c, 8)
		}
		for r := 0; r < 8; r++ {
			jpegTransform1D(tmp, 8*r, 1)
		}
		for k := 0; k < 64; k++ {
			v := tmp[k]>>6 + 128
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			sum += uint32(v)
		}
	}
	return sum
}

// buildJpeg emits main (block loop), load_block / store-side loops,
// transform1d (hot, called 16x per block) and the quantisation pass.
func buildJpeg(in Input, encode bool) (*obj.Unit, error) {
	w, h := jpegDims(in)
	nblocks := (w / 8) * (h / 8)

	b := asm.NewBuilder("jpeg")
	addAppShell(b, 0x5fe7, 12)
	var srcAddr uint32
	if encode {
		srcAddr = b.Data(jpegImage(in))
		b.Align(4)
	} else {
		srcAddr = b.Words(u32s(jpegEncodeBlocks(in))...)
	}
	qsAddr := b.Words(u32s(jpegQuantShift())...)
	tmpAddr := b.Zeros(64 * 4)
	// Block origin offsets (byte offsets of each block's top-left
	// pixel in the image), precomputed like libjpeg's MCU walk.
	var origins []uint32
	if encode {
		for by := 0; by < h; by += 8 {
			for bx := 0; bx < w; bx += 8 {
				origins = append(origins, uint32(by*w+bx))
			}
		}
	}
	orgAddr := b.Words(origins...)

	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)
	f.Li(isa.R11, uint32(nblocks))
	f.Movi(isa.R12, 0) // block index
	f.Block("blocks")
	f.Call("rt_tick")
	f.Push(isa.R11, isa.R12)
	f.Call("load_block")
	if encode { // forward: rows then columns
		f.Call("transform_rows")
		f.Call("transform_cols")
		f.Call("quantise")
	} else { // decode runs the passes in the opposite order
		f.Call("transform_cols")
		f.Call("transform_rows")
		f.Call("descale")
	}
	f.Pop(isa.R11, isa.R12)
	f.Addi(isa.R12, isa.R12, 1)
	f.Subi(isa.R11, isa.R11, 1)
	f.Cmpi(isa.R11, 0)
	f.Bgt("blocks")
	f.Halt()

	// load_block: R12 = block index. Fills tmp[64].
	lb := b.Func("load_block")
	lb.Li(isa.R5, tmpAddr)
	if encode {
		// Pixel gather: origin + row walk, level shift by 128.
		lb.OpI(isa.LSLI, isa.R1, isa.R12, 2)
		lb.Li(isa.R2, orgAddr)
		lb.Ldrx(isa.R1, isa.R2, isa.R1) // origin offset
		lb.Li(isa.R2, srcAddr)
		lb.Add(isa.R1, isa.R1, isa.R2) // first pixel addr
		lb.Movi(isa.R2, 8)             // rows
		lb.Block("rows")
		lb.Movi(isa.R3, 8) // cols
		lb.Block("cols")
		lb.Ldrb(isa.R4, isa.R1, 0)
		lb.Subi(isa.R4, isa.R4, 128)
		lb.Str(isa.R4, isa.R5, 0)
		lb.Addi(isa.R1, isa.R1, 1)
		lb.Addi(isa.R5, isa.R5, 4)
		lb.Subi(isa.R3, isa.R3, 1)
		lb.Cmpi(isa.R3, 0)
		lb.Bgt("cols")
		lb.Addi(isa.R1, isa.R1, int32(w-8))
		lb.Subi(isa.R2, isa.R2, 1)
		lb.Cmpi(isa.R2, 0)
		lb.Bgt("rows")
	} else {
		// Coefficient gather with dequantisation (<< shift).
		lb.Movi(isa.R2, 64)
		lb.OpI(isa.LSLI, isa.R1, isa.R12, 8) // block * 64 words * 4
		lb.Li(isa.R3, srcAddr)
		lb.Add(isa.R1, isa.R1, isa.R3)
		lb.Li(isa.R6, qsAddr)
		lb.Block("loop")
		lb.Ldr(isa.R4, isa.R1, 0)
		lb.Ldr(isa.R7, isa.R6, 0)
		lb.Op3(isa.LSL, isa.R4, isa.R4, isa.R7)
		lb.Str(isa.R4, isa.R5, 0)
		lb.Addi(isa.R1, isa.R1, 4)
		lb.Addi(isa.R5, isa.R5, 4)
		lb.Addi(isa.R6, isa.R6, 4)
		lb.Subi(isa.R2, isa.R2, 1)
		lb.Cmpi(isa.R2, 0)
		lb.Bgt("loop")
	}
	lb.Ret()

	// transform_rows / transform_cols: call transform1d with
	// (R1 = vector base, R2 = stride in bytes) for the 8 rows/cols.
	// Note the decode path runs cols first — the order the Go
	// reference uses — but both paths emit both functions.
	tr := b.Func("transform_rows")
	tr.SaveLR()
	tr.Movi(isa.R9, 8)
	tr.Li(isa.R1, tmpAddr)
	tr.Block("loop")
	tr.Movi(isa.R2, 4) // stride 1 word
	tr.Push(isa.R1, isa.R9)
	tr.Call("transform1d")
	tr.Pop(isa.R1, isa.R9)
	tr.Addi(isa.R1, isa.R1, 32) // next row
	tr.Subi(isa.R9, isa.R9, 1)
	tr.Cmpi(isa.R9, 0)
	tr.Bgt("loop")
	tr.RestoreLR()
	tr.Ret()

	tc := b.Func("transform_cols")
	tc.SaveLR()
	tc.Movi(isa.R9, 8)
	tc.Li(isa.R1, tmpAddr)
	tc.Block("loop")
	tc.Movi(isa.R2, 32) // stride 8 words
	tc.Push(isa.R1, isa.R9)
	tc.Call("transform1d")
	tc.Pop(isa.R1, isa.R9)
	tc.Addi(isa.R1, isa.R1, 4) // next column
	tc.Subi(isa.R9, isa.R9, 1)
	tc.Cmpi(isa.R9, 0)
	tc.Bgt("loop")
	tc.RestoreLR()
	tc.Ret()

	// transform1d: 8-point transform at R1 with byte stride R2.
	// Uses a dedicated spill vector for e[4], o[4] and out[8].
	eo := b.Zeros(16 * 4)
	td := b.Func("transform1d")
	// e[k] = v[k]+v[7-k]; o[k] = v[k]-v[7-k]
	td.Li(isa.R10, eo)
	td.Movi(isa.R3, 0) // k
	td.Block("pairs")
	// R5 = addr of v[k]; R6 = addr of v[7-k]
	td.Mul(isa.R5, isa.R3, isa.R2)
	td.Add(isa.R5, isa.R5, isa.R1)
	td.Movi(isa.R6, 7)
	td.Sub(isa.R6, isa.R6, isa.R3)
	td.Mul(isa.R6, isa.R6, isa.R2)
	td.Add(isa.R6, isa.R6, isa.R1)
	td.Ldr(isa.R7, isa.R5, 0)
	td.Ldr(isa.R8, isa.R6, 0)
	td.Add(isa.R9, isa.R7, isa.R8)
	td.OpI(isa.LSLI, isa.R4, isa.R3, 2)
	td.Strx(isa.R9, isa.R10, isa.R4) // e[k]
	td.Sub(isa.R9, isa.R7, isa.R8)
	td.Addi(isa.R4, isa.R4, 16)
	td.Strx(isa.R9, isa.R10, isa.R4) // o[k]
	td.Addi(isa.R3, isa.R3, 1)
	td.Cmpi(isa.R3, 4)
	td.Blt("pairs")
	// Even outputs.
	td.Ldr(isa.R3, isa.R10, 0)  // e0
	td.Ldr(isa.R4, isa.R10, 4)  // e1
	td.Ldr(isa.R5, isa.R10, 8)  // e2
	td.Ldr(isa.R6, isa.R10, 12) // e3
	td.Add(isa.R7, isa.R3, isa.R4)
	td.Add(isa.R7, isa.R7, isa.R5)
	td.Add(isa.R7, isa.R7, isa.R6)
	td.Str(isa.R7, isa.R10, 32) // out0
	td.Sub(isa.R7, isa.R3, isa.R4)
	td.Sub(isa.R7, isa.R7, isa.R5)
	td.Add(isa.R7, isa.R7, isa.R6)
	td.Str(isa.R7, isa.R10, 48)    // out4
	td.Sub(isa.R7, isa.R3, isa.R6) // e0-e3
	td.Sub(isa.R8, isa.R4, isa.R5) // e1-e2
	td.Li(isa.R9, uint32(jpegC[1]))
	td.Mul(isa.R3, isa.R7, isa.R9)
	td.Li(isa.R9, uint32(jpegC[3]))
	td.Mul(isa.R4, isa.R8, isa.R9)
	td.Add(isa.R3, isa.R3, isa.R4)
	td.OpI(isa.ASRI, isa.R3, isa.R3, 12)
	td.Str(isa.R3, isa.R10, 40) // out2
	td.Li(isa.R9, uint32(jpegC[3]))
	td.Mul(isa.R3, isa.R7, isa.R9)
	td.Li(isa.R9, uint32(jpegC[1]))
	td.Mul(isa.R4, isa.R8, isa.R9)
	td.Sub(isa.R3, isa.R3, isa.R4)
	td.OpI(isa.ASRI, isa.R3, isa.R3, 12)
	td.Str(isa.R3, isa.R10, 56) // out6
	// Odd outputs: out[1,3,5,7] = sum of o[j]*±c[perm].
	oddSpec := [4][4]int32{
		{jpegC[0], jpegC[1], jpegC[2], jpegC[3]},    // out1
		{jpegC[1], -jpegC[3], -jpegC[0], -jpegC[2]}, // out3
		{jpegC[2], -jpegC[0], jpegC[3], jpegC[1]},   // out5
		{jpegC[3], -jpegC[2], jpegC[1], -jpegC[0]},  // out7
	}
	for i, spec := range oddSpec {
		td.Movi(isa.R7, 0)
		for j, c := range spec {
			td.Ldr(isa.R8, isa.R10, int32(16+4*j)) // o[j]
			td.Li(isa.R9, uint32(c))
			td.Mul(isa.R8, isa.R8, isa.R9)
			td.Add(isa.R7, isa.R7, isa.R8)
		}
		td.OpI(isa.ASRI, isa.R7, isa.R7, 12)
		td.Str(isa.R7, isa.R10, int32(32+4*(2*i+1))) // out[1,3,5,7]
	}
	// Write back out[0..7] to the strided vector.
	td.Movi(isa.R3, 0)
	td.Block("wb")
	td.OpI(isa.LSLI, isa.R4, isa.R3, 2)
	td.Addi(isa.R4, isa.R4, 32)
	td.Ldrx(isa.R7, isa.R10, isa.R4)
	td.Mul(isa.R5, isa.R3, isa.R2)
	td.Add(isa.R5, isa.R5, isa.R1)
	td.Str(isa.R7, isa.R5, 0)
	td.Addi(isa.R3, isa.R3, 1)
	td.Cmpi(isa.R3, 8)
	td.Blt("wb")
	td.Ret()

	// quantise (encode): checksum += tmp[k] >> qs[k].
	if encode {
		qn := b.Func("quantise")
		qn.Li(isa.R1, tmpAddr)
		qn.Li(isa.R2, qsAddr)
		qn.Movi(isa.R3, 64)
		qn.Block("loop")
		qn.Ldr(isa.R4, isa.R1, 0)
		qn.Ldr(isa.R5, isa.R2, 0)
		qn.Op3(isa.ASR, isa.R4, isa.R4, isa.R5)
		qn.Add(isa.R0, isa.R0, isa.R4)
		qn.Addi(isa.R1, isa.R1, 4)
		qn.Addi(isa.R2, isa.R2, 4)
		qn.Subi(isa.R3, isa.R3, 1)
		qn.Cmpi(isa.R3, 0)
		qn.Bgt("loop")
		qn.Ret()
	} else {
		// descale (decode): checksum += clamp(tmp[k]>>6 + 128).
		ds := b.Func("descale")
		ds.Li(isa.R1, tmpAddr)
		ds.Movi(isa.R3, 64)
		ds.Block("loop")
		ds.Ldr(isa.R4, isa.R1, 0)
		ds.OpI(isa.ASRI, isa.R4, isa.R4, 6)
		ds.Addi(isa.R4, isa.R4, 128)
		ds.Cmpi(isa.R4, 0)
		ds.Bge("lo")
		ds.Movi(isa.R4, 0)
		ds.Block("lo")
		ds.Cmpi(isa.R4, 255)
		ds.Ble("hi")
		ds.Movi(isa.R4, 255)
		ds.Block("hi")
		ds.Add(isa.R0, isa.R0, isa.R4)
		ds.Addi(isa.R1, isa.R1, 4)
		ds.Subi(isa.R3, isa.R3, 1)
		ds.Cmpi(isa.R3, 0)
		ds.Bgt("loop")
		ds.Ret()
	}

	addRuntime(b)
	return b.Build()
}
