package bench

import (
	"math"
	"math/bits"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("fft", "fixed-point radix-2 FFT over waveform frames (MiBench telecomm/fft)",
		func(in Input) (*obj.Unit, error) { return buildFFT(in, false) })
	register("fft_i", "inverse fixed-point FFT with rescaling pass (MiBench telecomm/fft -i)",
		func(in Input) (*obj.Unit, error) { return buildFFT(in, true) })
}

// fftShape returns transform length and frame count per input.
func fftShape(in Input) (n, frames int) {
	if in == Small {
		return 256, 2
	}
	return 1024, 6
}

// fftTwiddles returns Q15 cosine/sine tables of n/2 entries
// (negated sine for the inverse transform).
func fftTwiddles(n int, inverse bool) (cos, sin []int32) {
	cos = make([]int32, n/2)
	sin = make([]int32, n/2)
	for i := range cos {
		a := 2 * math.Pi * float64(i) / float64(n)
		c := int32(math.Round(32767 * math.Cos(a)))
		s := int32(math.Round(-32767 * math.Sin(a)))
		if inverse {
			s = -s
		}
		cos[i], sin[i] = c, s
	}
	return cos, sin
}

// fftFrame synthesises one Q15 input frame.
func fftFrame(n, frame int) (re, im []int32) {
	r := newRNG(uint32(0xff7 + frame*977))
	re = make([]int32, n)
	im = make([]int32, n)
	for i := range re {
		re[i] = int32(r.intn(8192)) - 4096
		im[i] = int32(r.intn(8192)) - 4096
	}
	return re, im
}

// fftRef mirrors the simulated kernel: per-stage scaling by 1/2 keeps
// every value within Q15, so all products fit in 32 bits — exactly
// what the MiBench fixed-point kernel does.
func fftRef(in Input, inverse bool) uint32 {
	n, frames := fftShape(in)
	cos, sin := fftTwiddles(n, inverse)
	logN := bits.TrailingZeros(uint(n))
	var sum uint32
	for fr := 0; fr < frames; fr++ {
		re, im := fftFrame(n, fr)
		// Bit-reversal permutation.
		for i := 0; i < n; i++ {
			j := int(bits.Reverse32(uint32(i)) >> (32 - logN))
			if j > i {
				re[i], re[j] = re[j], re[i]
				im[i], im[j] = im[j], im[i]
			}
		}
		// Butterflies.
		for size := 2; size <= n; size <<= 1 {
			half := size / 2
			step := n / size
			for base := 0; base < n; base += size {
				for k := 0; k < half; k++ {
					wr, wi := cos[k*step], sin[k*step]
					a, b := base+k, base+k+half
					tr := (wr*re[b] - wi*im[b]) >> 15
					ti := (wr*im[b] + wi*re[b]) >> 15
					re[b] = (re[a] - tr) >> 1
					im[b] = (im[a] - ti) >> 1
					re[a] = (re[a] + tr) >> 1
					im[a] = (im[a] + ti) >> 1
				}
			}
		}
		if inverse {
			// Rescaling pass: undo the per-stage 1/2 by shifting the
			// magnitude back up (saturating at Q15).
			for i := 0; i < n; i++ {
				re[i] = clamp16(re[i] << 2)
				im[i] = clamp16(im[i] << 2)
			}
		}
		for i := 0; i < n; i++ {
			sum += uint32(re[i])*3 + uint32(im[i])
		}
	}
	return sum
}

// buildFFT emits:
//
//	main: frame loop -> bitrev -> fft_stages (-> rescale) -> fold
//	bitrev: permutation pass
//	fft_stages: triple-nested butterfly loops                [hot]
//	rescale: inverse-only extra pass
//	fold: checksum accumulation
//
// The frame data for all frames is pre-placed in the data segment;
// "loading a frame" advances a base pointer, as the MiBench driver
// does over its input wave file.
func buildFFT(in Input, inverse bool) (*obj.Unit, error) {
	n, frames := fftShape(in)
	cosT, sinT := fftTwiddles(n, inverse)
	logN := bits.TrailingZeros(uint(n))

	b := asm.NewBuilder("fft")
	addAppShell(b, 0x846f, 13)
	cosAddr := b.Words(u32s(cosT)...)
	sinAddr := b.Words(u32s(sinT)...)
	var frameWords []uint32
	for fr := 0; fr < frames; fr++ {
		re, im := fftFrame(n, fr)
		frameWords = append(frameWords, u32s(re)...)
		frameWords = append(frameWords, u32s(im)...)
	}
	frameAddr := b.Words(frameWords...)
	// Bit-reversal index table (computed by the front end, as
	// fixed-point FFT implementations ship precomputed tables).
	rev := make([]uint32, n)
	for i := range rev {
		rev[i] = uint32(bits.Reverse32(uint32(i)) >> (32 - logN))
	}
	revAddr := b.Words(rev...)

	frameBytes := uint32(8 * n) // re[n] + im[n] words

	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)
	f.Li(isa.R12, frameAddr)
	f.Movi(isa.R11, uint16(frames))
	f.Block("frames")
	f.Call("rt_tick")
	f.Push(isa.R11, isa.R12)
	f.Call("bitrev")
	f.Call("fft_stages")
	if inverse {
		f.Call("rescale")
	}
	f.Call("fold")
	f.Pop(isa.R11, isa.R12)
	f.Li(isa.R1, frameBytes)
	f.Add(isa.R12, isa.R12, isa.R1)
	f.Subi(isa.R11, isa.R11, 1)
	f.Cmpi(isa.R11, 0)
	f.Bgt("frames")
	f.Halt()

	// bitrev: swap re/im pairs per the precomputed table.
	// R12 = frame base (re at +0, im at +4n).
	bv := b.Func("bitrev")
	bv.Li(isa.R1, revAddr)
	bv.Movi(isa.R2, 0) // i
	bv.Block("loop")
	bv.OpI(isa.LSLI, isa.R3, isa.R2, 2)
	bv.Ldrx(isa.R4, isa.R1, isa.R3) // j
	bv.Cmp(isa.R4, isa.R2)
	bv.Ble("skip")
	// swap re[i], re[j] and im[i], im[j]
	bv.OpI(isa.LSLI, isa.R5, isa.R4, 2) // j*4
	bv.Ldrx(isa.R6, isa.R12, isa.R3)    // re[i]
	bv.Ldrx(isa.R7, isa.R12, isa.R5)    // re[j]
	bv.Strx(isa.R7, isa.R12, isa.R3)
	bv.Strx(isa.R6, isa.R12, isa.R5)
	bv.Li(isa.R8, uint32(4*n))
	bv.Add(isa.R9, isa.R12, isa.R8) // im base
	bv.Ldrx(isa.R6, isa.R9, isa.R3)
	bv.Ldrx(isa.R7, isa.R9, isa.R5)
	bv.Strx(isa.R7, isa.R9, isa.R3)
	bv.Strx(isa.R6, isa.R9, isa.R5)
	bv.Block("skip")
	bv.Addi(isa.R2, isa.R2, 1)
	bv.Cmpi(isa.R2, int32(n))
	bv.Blt("loop")
	bv.Ret()

	// fft_stages: R12 = frame base. Uses the stack for loop state:
	// [sp+0]=size [sp+4]=base [sp+8]=k
	st := b.Func("fft_stages")
	st.Subi(isa.SP, isa.SP, 12)
	st.Movi(isa.R1, 2)
	st.Str(isa.R1, isa.SP, 0) // size = 2
	st.Block("sizes")
	st.Movi(isa.R1, 0)
	st.Str(isa.R1, isa.SP, 4) // base = 0
	st.Block("bases")
	st.Movi(isa.R1, 0)
	st.Str(isa.R1, isa.SP, 8) // k = 0
	st.Block("ks")
	// Load loop state: R1=size R2=base R3=k.
	st.Ldr(isa.R1, isa.SP, 0)
	st.Ldr(isa.R2, isa.SP, 4)
	st.Ldr(isa.R3, isa.SP, 8)
	// R4 = half = size>>1, R5 = step = n/size
	st.OpI(isa.LSRI, isa.R4, isa.R1, 1)
	st.Li(isa.R5, uint32(n))
	st.Movi(isa.R6, 0)
	st.Block("divloop") // step = n >> log2(size): compute by shifting
	st.Cmpi(isa.R1, 1)
	st.Ble("divdone")
	st.OpI(isa.LSRI, isa.R1, isa.R1, 1)
	st.OpI(isa.LSRI, isa.R5, isa.R5, 1)
	st.Jmp("divloop")
	st.Block("divdone")
	// twiddle index = k*step; addresses: a = base+k, b = a+half
	st.Mul(isa.R6, isa.R3, isa.R5)
	st.OpI(isa.LSLI, isa.R6, isa.R6, 2)
	st.Li(isa.R7, cosAddr)
	st.Ldrx(isa.R8, isa.R7, isa.R6) // wr
	st.Li(isa.R7, sinAddr)
	st.Ldrx(isa.R9, isa.R7, isa.R6) // wi
	st.Add(isa.R5, isa.R2, isa.R3)  // a index
	st.Add(isa.R6, isa.R5, isa.R4)  // b index
	st.OpI(isa.LSLI, isa.R5, isa.R5, 2)
	st.OpI(isa.LSLI, isa.R6, isa.R6, 2)
	// R10 = re[b], R7 = im[b]
	st.Ldrx(isa.R10, isa.R12, isa.R6)
	st.Li(isa.R1, uint32(4*n))
	st.Add(isa.R11, isa.R12, isa.R1) // im base
	st.Ldrx(isa.R7, isa.R11, isa.R6)
	// tr = (wr*re[b] - wi*im[b]) >> 15  -> R2 (base reloaded later)
	st.Mul(isa.R2, isa.R8, isa.R10)
	st.Mul(isa.R3, isa.R9, isa.R7)
	st.Sub(isa.R2, isa.R2, isa.R3)
	st.OpI(isa.ASRI, isa.R2, isa.R2, 15) // tr
	// ti = (wr*im[b] + wi*re[b]) >> 15 -> R3
	st.Mul(isa.R3, isa.R8, isa.R7)
	st.Mul(isa.R10, isa.R9, isa.R10)
	st.Add(isa.R3, isa.R3, isa.R10)
	st.OpI(isa.ASRI, isa.R3, isa.R3, 15) // ti
	// re[a/b] update
	st.Ldrx(isa.R8, isa.R12, isa.R5) // re[a]
	st.Sub(isa.R9, isa.R8, isa.R2)
	st.OpI(isa.ASRI, isa.R9, isa.R9, 1)
	st.Strx(isa.R9, isa.R12, isa.R6)
	st.Add(isa.R9, isa.R8, isa.R2)
	st.OpI(isa.ASRI, isa.R9, isa.R9, 1)
	st.Strx(isa.R9, isa.R12, isa.R5)
	// im[a/b] update
	st.Ldrx(isa.R8, isa.R11, isa.R5) // im[a]
	st.Sub(isa.R9, isa.R8, isa.R3)
	st.OpI(isa.ASRI, isa.R9, isa.R9, 1)
	st.Strx(isa.R9, isa.R11, isa.R6)
	st.Add(isa.R9, isa.R8, isa.R3)
	st.OpI(isa.ASRI, isa.R9, isa.R9, 1)
	st.Strx(isa.R9, isa.R11, isa.R5)
	// k++ < half?
	st.Ldr(isa.R3, isa.SP, 8)
	st.Addi(isa.R3, isa.R3, 1)
	st.Str(isa.R3, isa.SP, 8)
	st.Cmp(isa.R3, isa.R4)
	st.Blt("ks")
	// base += size; < n?
	st.Ldr(isa.R1, isa.SP, 0)
	st.Ldr(isa.R2, isa.SP, 4)
	st.Add(isa.R2, isa.R2, isa.R1)
	st.Str(isa.R2, isa.SP, 4)
	st.Cmpi(isa.R2, int32(n))
	st.Blt("bases")
	// size <<= 1; <= n?
	st.OpI(isa.LSLI, isa.R1, isa.R1, 1)
	st.Str(isa.R1, isa.SP, 0)
	st.Cmpi(isa.R1, int32(n))
	st.Ble("sizes")
	st.Addi(isa.SP, isa.SP, 12)
	st.Ret()

	// rescale (inverse only): saturating <<2 on every word.
	if inverse {
		rs := b.Func("rescale")
		rs.Mov(isa.R1, isa.R12)
		rs.Li(isa.R2, uint32(2*n)) // re then im, contiguous
		rs.Block("loop")
		rs.Ldr(isa.R3, isa.R1, 0)
		rs.OpI(isa.LSLI, isa.R3, isa.R3, 2)
		rs.Li(isa.R4, 32767)
		rs.Cmp(isa.R3, isa.R4)
		rs.Ble("hi")
		rs.Mov(isa.R3, isa.R4)
		rs.Block("hi")
		rs.Li(isa.R4, uint32(0xffff8000))
		rs.Cmp(isa.R3, isa.R4)
		rs.Bge("lo")
		rs.Mov(isa.R3, isa.R4)
		rs.Block("lo")
		rs.Str(isa.R3, isa.R1, 0)
		rs.Addi(isa.R1, isa.R1, 4)
		rs.Subi(isa.R2, isa.R2, 1)
		rs.Cmpi(isa.R2, 0)
		rs.Bgt("loop")
		rs.Ret()
	}

	// fold: sum += re[i]*3 + im[i].
	fo := b.Func("fold")
	fo.Mov(isa.R1, isa.R12)
	fo.Li(isa.R4, uint32(4*n))
	fo.Add(isa.R2, isa.R1, isa.R4) // im base
	fo.Li(isa.R3, uint32(n))
	fo.Block("loop")
	fo.Ldr(isa.R5, isa.R1, 0)
	fo.Ldr(isa.R6, isa.R2, 0)
	fo.OpI(isa.LSLI, isa.R7, isa.R5, 1)
	fo.Add(isa.R5, isa.R5, isa.R7) // re*3
	fo.Add(isa.R0, isa.R0, isa.R5)
	fo.Add(isa.R0, isa.R0, isa.R6)
	fo.Addi(isa.R1, isa.R1, 4)
	fo.Addi(isa.R2, isa.R2, 4)
	fo.Subi(isa.R3, isa.R3, 1)
	fo.Cmpi(isa.R3, 0)
	fo.Bgt("loop")
	fo.Ret()

	addRuntime(b)
	return b.Build()
}
