package bench

import (
	"fmt"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
)

// Shared runtime support code. Real MiBench binaries carry a warm
// layer of library code around their kernels — bookkeeping, progress
// accounting, small utilities — executed every outer iteration but far
// less often than the kernel. addRuntime gives each benchmark the same
// layer: a three-function cluster (rt_tick -> rt_mix / rt_log) that
// maintains a statistics ring in the data segment.
//
// Properties the evaluation relies on:
//   - rt_tick preserves every register and is therefore safe to call
//     from any point where the flags are dead (loop heads);
//   - the cluster is warm, not hot: it widens the live code footprint
//     without dominating execution;
//   - rt_mix and rt_log are called from multiple sites, and the
//     resulting returns are indirect transfers that way-memoization
//     cannot link.
//
// The cluster never touches the benchmark checksum, so the Go
// reference models stay oblivious to it.
func addRuntime(b *asm.Builder) {
	stats := b.Zeros(4 + 64*4 + 4) // counter, 64-entry ring, overflow count

	t := b.Func("rt_tick")
	t.SaveLR()
	t.Push(isa.R1, isa.R2, isa.R3, isa.R4)
	t.Li(isa.R1, stats)
	t.Ldr(isa.R2, isa.R1, 0) // counter
	t.Addi(isa.R2, isa.R2, 1)
	t.Str(isa.R2, isa.R1, 0)
	t.Mov(isa.R1, isa.R2)
	t.Call("rt_mix")
	t.Call("rt_log")
	// Every 64th tick, fold the ring once (a warm, branchy pass).
	t.Li(isa.R3, stats)
	t.Ldr(isa.R2, isa.R3, 0)
	t.OpI(isa.ANDI, isa.R2, isa.R2, 63)
	t.Cmpi(isa.R2, 0)
	t.Bne("out")
	t.Call("rt_fold")
	t.Block("out")
	t.Pop(isa.R1, isa.R2, isa.R3, isa.R4)
	t.RestoreLR()
	t.Ret()

	// rt_mix: scramble R1 (xorshift-multiply), clobbers R2.
	m := b.Func("rt_mix")
	m.OpI(isa.LSLI, isa.R2, isa.R1, 13)
	m.Op3(isa.EOR, isa.R1, isa.R1, isa.R2)
	m.OpI(isa.LSRI, isa.R2, isa.R1, 17)
	m.Op3(isa.EOR, isa.R1, isa.R1, isa.R2)
	m.Li(isa.R2, 0x9e37_79b9)
	m.Mul(isa.R1, isa.R1, isa.R2)
	m.OpI(isa.LSRI, isa.R2, isa.R1, 16)
	m.Op3(isa.EOR, isa.R1, isa.R1, isa.R2)
	m.Ret()

	// rt_log: append R1 to the ring at slot (counter & 63).
	l := b.Func("rt_log")
	l.Li(isa.R2, stats)
	l.Ldr(isa.R3, isa.R2, 0)
	l.OpI(isa.ANDI, isa.R3, isa.R3, 63)
	l.OpI(isa.LSLI, isa.R3, isa.R3, 2)
	l.Addi(isa.R3, isa.R3, 4)
	l.Strx(isa.R1, isa.R2, isa.R3)
	l.Ret()

	// rt_fold: xor-reduce the ring into the overflow slot (64-step
	// load loop with a conditional per element).
	fo := b.Func("rt_fold")
	fo.SaveLR()
	fo.Li(isa.R2, stats)
	fo.Movi(isa.R3, 64)
	fo.Movi(isa.R1, 0)
	fo.Block("loop")
	fo.Ldr(isa.R4, isa.R2, 4)
	fo.Cmpi(isa.R4, 0)
	fo.Beq("skip")
	fo.Op3(isa.EOR, isa.R1, isa.R1, isa.R4)
	fo.Block("skip")
	fo.Addi(isa.R2, isa.R2, 4)
	fo.Subi(isa.R3, isa.R3, 1)
	fo.Cmpi(isa.R3, 0)
	fo.Bgt("loop")
	fo.Call("rt_mix") // second call site for rt_mix
	fo.Li(isa.R2, stats)
	fo.Str(isa.R1, isa.R2, 4+64*4)
	fo.RestoreLR()
	fo.Ret()
}

// addAppShell emits the cold application shell every real MiBench
// binary carries: argument/config parsing, usage and error reporting,
// and feature paths the evaluated input never takes. The shell code is
// reachable — app_init dispatches on a config word — but the config
// word selects the defaults, so none of it executes beyond the guard
// comparisons. In the *original* link order this shell sits in front
// of the hot code, exactly the situation the paper's layout pass
// exists to fix; the way-placement link moves it to the back.
//
// main must call app_init once, first thing (the shell only touches
// R1-R9, never the checksum register).
func addAppShell(b *asm.Builder, seed uint32, nFuncs int) {
	cfgWord := b.Words(0) // 0 = default configuration: no optional feature

	init := b.Func("app_init")
	init.SaveLR()
	init.Li(isa.R1, cfgWord)
	init.Ldr(isa.R2, isa.R1, 0)
	for i := 0; i < nFuncs; i++ {
		init.Cmpi(isa.R2, int32(i+1))
		init.Bne(fmt.Sprintf("skip%d", i))
		init.Call(coldFuncName(i))
		init.Block(fmt.Sprintf("skip%d", i))
	}
	init.RestoreLR()
	init.Ret()

	r := &rng{s: seed | 1}
	for i := 0; i < nFuncs; i++ {
		emitColdFunc(b, coldFuncName(i), r)
	}
}

func coldFuncName(i int) string { return fmt.Sprintf("cold_feature_%d", i) }

// emitColdFunc generates one plausible cold function: 40-90
// instructions of register arithmetic, short loops and conditional
// paths over R1-R9. The generator is deterministic per seed, so
// binaries are reproducible.
func emitColdFunc(b *asm.Builder, name string, r *rng) {
	f := b.Func(name)
	regs := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9}
	pick := func() isa.Reg { return regs[r.intn(len(regs))] }
	ops := []isa.Op{isa.ADD, isa.SUB, isa.EOR, isa.ORR, isa.AND, isa.MUL}
	n := 5 + r.intn(6)
	for blkIdx := 0; blkIdx < n; blkIdx++ {
		for k := 0; k < 3+r.intn(8); k++ {
			switch r.intn(5) {
			case 0:
				f.Movi(pick(), uint16(r.intn(1000)))
			case 1:
				f.OpI(isa.ADDI, pick(), pick(), int32(r.intn(64)))
			case 2:
				f.OpI(isa.LSLI, pick(), pick(), int32(r.intn(8)))
			default:
				f.Op3(ops[r.intn(len(ops))], pick(), pick(), pick())
			}
		}
		// A conditional path or a short bounded loop per block.
		tag := fmt.Sprintf("b%d", blkIdx)
		if r.intn(3) == 0 {
			f.Movi(isa.R9, uint16(2+r.intn(6)))
			f.Block("loop_" + tag)
			f.OpI(isa.EORI, isa.R8, isa.R8, int32(r.intn(256)))
			f.Subi(isa.R9, isa.R9, 1)
			f.Cmpi(isa.R9, 0)
			f.Bgt("loop_" + tag)
		} else {
			f.Cmpi(pick(), int32(r.intn(100)))
			f.Ble("alt_" + tag)
			f.OpI(isa.ORRI, isa.R7, isa.R7, 1)
			f.Block("alt_" + tag)
		}
	}
	f.Ret()
}
