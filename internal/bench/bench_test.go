package bench

import (
	"testing"

	"wayplace/internal/cpu"
	"wayplace/internal/isa"
	"wayplace/internal/layout"
	"wayplace/internal/mem"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
)

const textBase = 0x0001_0000

// execute links (original order) and runs a unit functionally,
// returning the checksum and dynamic instruction count.
func execute(t *testing.T, u *obj.Unit) (uint32, uint64) {
	t.Helper()
	p, err := obj.Link(u, obj.OriginalOrder(u), textBase)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	c := cpu.New(p, mem.New(mem.DefaultConfig()))
	res, err := c.Run(200_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c.Regs[isa.R0], res.Instrs
}

func build(t *testing.T, name string, in Input) *obj.Unit {
	t.Helper()
	bm, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	u, err := bm.Build(in)
	if err != nil {
		t.Fatalf("%s/%v Build: %v", name, in, err)
	}
	return u
}

func TestCRCMatchesReference(t *testing.T) {
	for _, in := range []Input{Small, Large} {
		got, _ := execute(t, build(t, "crc", in))
		if want := crcRef(crcInput(in)); got != want {
			t.Errorf("crc/%v checksum = %#x, want %#x", in, got, want)
		}
	}
}

func TestSHAMatchesReference(t *testing.T) {
	for _, in := range []Input{Small, Large} {
		got, _ := execute(t, build(t, "sha", in))
		if want := shaRef(shaInput(in)); got != want {
			t.Errorf("sha/%v checksum = %#x, want %#x", in, got, want)
		}
	}
}

func TestBitcountMatchesReference(t *testing.T) {
	for _, in := range []Input{Small, Large} {
		got, _ := execute(t, build(t, "bitcount", in))
		if want := bitcountRef(bitcountInput(in)); got != want {
			t.Errorf("bitcount/%v checksum = %#x, want %#x", in, got, want)
		}
	}
}

// TestSuiteInvariants runs every registered benchmark on both inputs
// and checks the properties the experiment harness relies on.
func TestSuiteInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run in -short mode")
	}
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			us := build(t, bm.Name, Small)
			ul := build(t, bm.Name, Large)

			// Same code for both inputs: identical block symbol
			// sequences (profiles carry over, as in the paper).
			bs, bl := us.Blocks(), ul.Blocks()
			if len(bs) != len(bl) {
				t.Fatalf("block counts differ between inputs: %d vs %d", len(bs), len(bl))
			}
			for i := range bs {
				if bs[i].Sym != bl[i].Sym || bs[i].NumInstrs() != bl[i].NumInstrs() {
					t.Fatalf("code differs between inputs at block %d: %s vs %s",
						i, bs[i].Sym, bl[i].Sym)
				}
			}

			sumS, nS := execute(t, us)
			sumL, nL := execute(t, ul)
			if sumS == 0xdead || sumL == 0xdead {
				t.Fatal("benchmark hit its error trap")
			}
			if nL < 400_000 {
				t.Errorf("large input runs only %d instructions, want >= 400k", nL)
			}
			if nL > 20_000_000 {
				t.Errorf("large input runs %d instructions, too slow for the sweep harness", nL)
			}
			if nS >= nL/2 {
				t.Errorf("small input (%d instrs) not meaningfully smaller than large (%d)", nS, nL)
			}
			if nS < 10_000 {
				t.Errorf("small input runs only %d instructions — too little to profile", nS)
			}

			// The layout pass must accept the program and profiling
			// must find at least one dominant chain.
			p, err := obj.Link(us, obj.OriginalOrder(us), textBase)
			if err != nil {
				t.Fatal(err)
			}
			c := cpu.New(p, mem.New(mem.DefaultConfig()))
			res, err := c.Run(200_000_000)
			if err != nil {
				t.Fatal(err)
			}
			prof := profile.FromInstrCounts(p, res.InstrCounts)
			opt, err := layout.Link(ul, prof, textBase)
			if err != nil {
				t.Fatalf("layout over profile: %v", err)
			}
			// The optimised layout must preserve semantics.
			c2 := cpu.New(opt, mem.New(mem.DefaultConfig()))
			if _, err := c2.Run(200_000_000); err != nil {
				t.Fatalf("optimised binary faulted: %v", err)
			}
			if c2.Regs[isa.R0] != sumL {
				t.Fatalf("optimised layout changed the checksum: %#x vs %#x",
					c2.Regs[isa.R0], sumL)
			}
		})
	}
}

func TestSuiteHas23Benchmarks(t *testing.T) {
	names := Names()
	if len(names) != 23 {
		t.Fatalf("suite has %d benchmarks, want 23: %v", len(names), names)
	}
	if names[0] != "bitcount" || names[len(names)-1] != "fft_i" {
		t.Errorf("figure order wrong: first=%s last=%s", names[0], names[len(names)-1])
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestInputString(t *testing.T) {
	if Small.String() != "small" || Large.String() != "large" {
		t.Error("input names wrong")
	}
}

func TestSusanMatchesReference(t *testing.T) {
	for _, m := range []struct {
		name string
		mode susanMode
	}{{"susan_c", susanCorners}, {"susan_e", susanEdges}, {"susan_s", susanSmooth}} {
		for _, in := range []Input{Small, Large} {
			got, _ := execute(t, build(t, m.name, in))
			if want := susanRef(in, m.mode); got != want {
				t.Errorf("%s/%v checksum = %#x, want %#x", m.name, in, got, want)
			}
		}
	}
}

func TestTiffFamilyMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		ref  func(Input) uint32
	}{
		{"tiff2bw", tiff2bwRef},
		{"tiff2rgba", tiff2rgbaRef},
		{"tiffdither", tiffditherRef},
		{"tiffmedian", tiffmedianRef},
	}
	for _, c := range cases {
		for _, in := range []Input{Small, Large} {
			got, _ := execute(t, build(t, c.name, in))
			if want := c.ref(in); got != want {
				t.Errorf("%s/%v checksum = %#x, want %#x", c.name, in, got, want)
			}
		}
	}
}

func TestCryptoMatchesReference(t *testing.T) {
	for _, enc := range []bool{true, false} {
		name := "blowfish_d"
		if enc {
			name = "blowfish_e"
		}
		for _, in := range []Input{Small, Large} {
			got, _ := execute(t, build(t, name, in))
			if want := bfRef(in, enc); got != want {
				t.Errorf("%s/%v checksum = %#x, want %#x", name, in, got, want)
			}
		}
		name = "rijndael_d"
		if enc {
			name = "rijndael_e"
		}
		for _, in := range []Input{Small, Large} {
			got, _ := execute(t, build(t, name, in))
			if want := rjRef(in, enc); got != want {
				t.Errorf("%s/%v checksum = %#x, want %#x", name, in, got, want)
			}
		}
	}
}

func TestBlowfishDecryptRecoversPlaintext(t *testing.T) {
	// The Feistel structure must actually invert: decrypting the
	// ciphertext yields the plaintext again (checked in Go — the
	// simulated kernels share the exact same arithmetic).
	k := bfExpandKey()
	xl, xr := uint32(0x01234567), uint32(0x89abcdef)
	cl, cr := k.encrypt(xl, xr)
	dl, dr := k.decrypt(cl, cr)
	if dl != xl || dr != xr {
		t.Errorf("decrypt(encrypt(x)) = %#x,%#x want %#x,%#x", dl, dr, xl, xr)
	}
}

func TestADPCMMatchesReference(t *testing.T) {
	for _, enc := range []bool{true, false} {
		name := "rawdaudio"
		if enc {
			name = "rawcaudio"
		}
		for _, in := range []Input{Small, Large} {
			got, _ := execute(t, build(t, name, in))
			if want := adpcmRef(in, enc); got != want {
				t.Errorf("%s/%v checksum = %#x, want %#x", name, in, got, want)
			}
		}
	}
}

func TestFFTMatchesReference(t *testing.T) {
	for _, inv := range []bool{false, true} {
		name := "fft"
		if inv {
			name = "fft_i"
		}
		for _, in := range []Input{Small, Large} {
			got, _ := execute(t, build(t, name, in))
			if want := fftRef(in, inv); got != want {
				t.Errorf("%s/%v checksum = %#x, want %#x", name, in, got, want)
			}
		}
	}
}

func TestPatriciaMatchesReference(t *testing.T) {
	for _, in := range []Input{Small, Large} {
		got, _ := execute(t, build(t, "patricia", in))
		if want := patriciaRef(in); got != want {
			t.Errorf("patricia/%v checksum = %#x, want %#x", in, got, want)
		}
	}
}

func TestIspellMatchesReference(t *testing.T) {
	for _, in := range []Input{Small, Large} {
		got, _ := execute(t, build(t, "ispell", in))
		if want := ispellRef(in); got != want {
			t.Errorf("ispell/%v checksum = %#x, want %#x", in, got, want)
		}
	}
}

func TestRsynthMatchesReference(t *testing.T) {
	for _, in := range []Input{Small, Large} {
		got, _ := execute(t, build(t, "rsynth", in))
		if want := rsynthRef(in); got != want {
			t.Errorf("rsynth/%v checksum = %#x, want %#x", in, got, want)
		}
	}
}

func TestJpegMatchesReference(t *testing.T) {
	for _, enc := range []bool{true, false} {
		name := "djpeg"
		if enc {
			name = "cjpeg"
		}
		for _, in := range []Input{Small, Large} {
			got, _ := execute(t, build(t, name, in))
			if want := jpegRef(in, enc); got != want {
				t.Errorf("%s/%v checksum = %#x, want %#x", name, in, got, want)
			}
		}
	}
}

// runCounts executes a program functionally and returns the
// per-instruction execution counters.
func runCounts(t *testing.T, p *obj.Program) []uint64 {
	t.Helper()
	c := cpu.New(p, mem.New(mem.DefaultConfig()))
	res, err := c.Run(200_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.InstrCounts
}
