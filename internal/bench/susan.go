package bench

import (
	"fmt"

	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("susan_c", "SUSAN corner detection over a grayscale image (MiBench automotive/susan -c)",
		func(in Input) (*obj.Unit, error) { return buildSusan(in, susanCorners) })
	register("susan_e", "SUSAN edge detection with gradient estimate (MiBench automotive/susan -e)",
		func(in Input) (*obj.Unit, error) { return buildSusan(in, susanEdges) })
	register("susan_s", "SUSAN 3x3 weighted smoothing (MiBench automotive/susan -s)",
		func(in Input) (*obj.Unit, error) { return buildSusan(in, susanSmooth) })
}

type susanMode int

const (
	susanCorners susanMode = iota
	susanEdges
	susanSmooth
)

const susanThreshold = 20

// susanDims returns image width and height for the input size. The
// edge kernel touches fewer neighbours per pixel, so it gets a larger
// frame to keep its dynamic instruction count comparable.
func susanDims(in Input, mode susanMode) (w, h int) {
	if in == Small {
		return 48, 36
	}
	if mode == susanEdges {
		return 256, 160
	}
	return 160, 96
}

// susanImage generates the grayscale input: smooth gradients plus
// blocky features, so thresholds flip realistically.
func susanImage(in Input, mode susanMode) []byte {
	w, h := susanDims(in, mode)
	r := newRNG(uint32(0x5a5a + int(mode)))
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := (x*3 + y*5) & 0xff
			if (x/8+y/8)&1 == 0 {
				v += 60
			}
			v += r.intn(9) - 4
			img[y*w+x] = byte(v)
		}
	}
	return img
}

// 3x3 smoothing weights (power-of-two total so the divide is a shift).
var susanWeights = [9]uint32{1, 2, 1, 2, 4, 2, 1, 2, 1}

// susanRef mirrors the simulated kernels exactly.
func susanRef(in Input, mode susanMode) uint32 {
	w, h := susanDims(in, mode)
	img := susanImage(in, mode)
	var sum uint32
	abs := func(v int32) uint32 {
		if v < 0 {
			return uint32(-v)
		}
		return uint32(v)
	}
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			c := int32(img[y*w+x])
			switch mode {
			case susanSmooth:
				var acc uint32
				k := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						acc += uint32(img[(y+dy)*w+x+dx]) * susanWeights[k]
						k++
					}
				}
				sum += acc >> 4
			case susanCorners:
				var n uint32
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						if abs(int32(img[(y+dy)*w+x+dx])-c) < susanThreshold {
							n++
						}
					}
				}
				if n < 4 {
					sum += n + uint32(c)
				}
			case susanEdges:
				l := int32(img[y*w+x-1])
				r := int32(img[y*w+x+1])
				u := int32(img[(y-1)*w+x])
				d := int32(img[(y+1)*w+x])
				mag := abs(r-l) + abs(d-u)
				if mag >= susanThreshold {
					sum += mag
				}
			}
		}
	}
	return sum
}

// buildSusan emits main (row loop, with a runtime tick per row) + a
// per-row kernel whose column loop is unrolled eight-wide (with a
// scalar remainder loop), as an optimising compiler would emit it —
// the hot footprint is the full unrolled body. Register plan inside
// the kernel:
//
//	R0 checksum   R1 pixel ptr (current col)  R2 cols left
//	R3 center     R4-R8 temps                 R9 width
//	R10 scratch   R11 row base                R12 row count
func buildSusan(in Input, mode susanMode) (*obj.Unit, error) {
	w, h := susanDims(in, mode)
	img := susanImage(in, mode)

	b := asm.NewBuilder("susan")
	addAppShell(b, 0x680a, 10)
	imgAddr := b.Data(img)
	b.Align(4)
	wtab := b.Words(susanWeights[:]...)

	// emitAbs: R4 = |R4| using R10 as zero scratch.
	emitAbs := func(f *asm.FuncBuilder, tag string) {
		f.Cmpi(isa.R4, 0)
		f.Bge("abs_" + tag)
		f.Movi(isa.R10, 0)
		f.Sub(isa.R4, isa.R10, isa.R4)
		f.Block("abs_" + tag)
	}

	f := b.Func("main")
	f.Call("app_init")
	f.Call("border_init")
	f.Movi(isa.R0, 0)
	f.Li(isa.R11, imgAddr+uint32(w)) // row 1 base
	f.Movi(isa.R12, uint16(h-2))
	f.Block("rows")
	f.Call("rt_tick")
	f.Push(isa.R11, isa.R12)
	f.Call("row_kernel")
	f.Pop(isa.R11, isa.R12)
	f.Li(isa.R9, uint32(w))
	f.Add(isa.R11, isa.R11, isa.R9)
	f.Subi(isa.R12, isa.R12, 1)
	f.Cmpi(isa.R12, 0)
	f.Bgt("rows")
	f.Halt()

	// emitPixel emits the work for the pixel at [R1 + off]; tag makes
	// internal labels unique per unrolled copy.
	k := b.Func("row_kernel")
	emitPixel := func(off int32, tag string) {
		switch mode {
		case susanSmooth:
			k.Movi(isa.R5, 0)
			k.Li(isa.R8, wtab)
			widx := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					switch dy {
					case -1:
						k.Sub(isa.R6, isa.R1, isa.R9)
					case 0:
						k.Mov(isa.R6, isa.R1)
					case 1:
						k.Add(isa.R6, isa.R1, isa.R9)
					}
					k.Ldrb(isa.R4, isa.R6, int32(dx)+off)
					k.Ldr(isa.R7, isa.R8, int32(4*widx))
					k.Mul(isa.R4, isa.R4, isa.R7)
					k.Add(isa.R5, isa.R5, isa.R4)
					widx++
				}
			}
			k.OpI(isa.LSRI, isa.R5, isa.R5, 4)
			k.Add(isa.R0, isa.R0, isa.R5)

		case susanCorners:
			k.Ldrb(isa.R3, isa.R1, off) // center
			k.Movi(isa.R5, 0)           // similar-neighbour count
			n := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					ntag := fmt.Sprintf("%s_%d", tag, n)
					switch dy {
					case -1:
						k.Sub(isa.R6, isa.R1, isa.R9)
					case 0:
						k.Mov(isa.R6, isa.R1)
					case 1:
						k.Add(isa.R6, isa.R1, isa.R9)
					}
					k.Ldrb(isa.R4, isa.R6, int32(dx)+off)
					k.Sub(isa.R4, isa.R4, isa.R3)
					emitAbs(k, ntag)
					k.Cmpi(isa.R4, susanThreshold)
					k.Bge("far_" + ntag)
					k.Addi(isa.R5, isa.R5, 1)
					k.Block("far_" + ntag)
					n++
				}
			}
			k.Cmpi(isa.R5, 4)
			k.Bge("nocorner_" + tag)
			k.Add(isa.R0, isa.R0, isa.R5)
			k.Add(isa.R0, isa.R0, isa.R3)
			k.Block("nocorner_" + tag)

		case susanEdges:
			k.Ldrb(isa.R4, isa.R1, off+1) // right
			k.Ldrb(isa.R5, isa.R1, off-1) // left
			k.Sub(isa.R4, isa.R4, isa.R5)
			emitAbs(k, "dx_"+tag)
			k.Mov(isa.R7, isa.R4)
			k.Add(isa.R6, isa.R1, isa.R9)
			k.Ldrb(isa.R4, isa.R6, off) // down
			k.Sub(isa.R6, isa.R1, isa.R9)
			k.Ldrb(isa.R5, isa.R6, off) // up
			k.Sub(isa.R4, isa.R4, isa.R5)
			emitAbs(k, "dy_"+tag)
			k.Add(isa.R4, isa.R4, isa.R7)
			k.Cmpi(isa.R4, susanThreshold)
			k.Blt("noedge_" + tag)
			k.Add(isa.R0, isa.R0, isa.R4)
			k.Block("noedge_" + tag)
		}
	}

	// row_kernel: R11 = row base; columns 1..w-2, four at a time.
	k.Li(isa.R9, uint32(w))
	k.Addi(isa.R1, isa.R11, 1) // first interior pixel
	k.Movi(isa.R2, uint16(w-2))
	k.Block("cols")
	k.Cmpi(isa.R2, 8)
	k.Blt("rem")
	for j := int32(0); j < 8; j++ {
		emitPixel(j, fmt.Sprintf("u%d", j))
	}
	k.Addi(isa.R1, isa.R1, 8)
	k.Subi(isa.R2, isa.R2, 8)
	k.Jmp("cols")
	k.Block("rem")
	k.Cmpi(isa.R2, 0)
	k.Ble("done")
	emitPixel(0, "r")
	k.Addi(isa.R1, isa.R1, 1)
	k.Subi(isa.R2, isa.R2, 1)
	k.Jmp("rem")
	k.Block("done")
	k.Ret()

	// border_init: cold — touch the four borders once (the real
	// SUSAN zeroes its output borders).
	bi := b.Func("border_init")
	bi.Li(isa.R1, imgAddr)
	bi.Movi(isa.R2, uint16(w))
	bi.Movi(isa.R3, 0)
	bi.Block("top")
	bi.Ldrb(isa.R4, isa.R1, 0)
	bi.Add(isa.R3, isa.R3, isa.R4)
	bi.Addi(isa.R1, isa.R1, 1)
	bi.Subi(isa.R2, isa.R2, 1)
	bi.Cmpi(isa.R2, 0)
	bi.Bgt("top")
	bi.Ret()

	addRuntime(b)
	return b.Build()
}
