package bench

import (
	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("tiff2bw", "RGB to luminance conversion (MiBench consumer/tiff2bw)", buildTiff2bw)
	register("tiff2rgba", "palette expansion to RGBA (MiBench consumer/tiff2rgba)", buildTiff2rgba)
	register("tiffdither", "Floyd-Steinberg error-diffusion dither (MiBench consumer/tiffdither)", buildTiffdither)
	register("tiffmedian", "histogram + level quantisation (MiBench consumer/tiffmedian)", buildTiffmedian)
}

// tiffDims returns the pixel dimensions per input size.
func tiffDims(in Input) (w, h int) {
	if in == Small {
		return 64, 40
	}
	return 256, 144
}

// tiffGray makes a grayscale image with gradients and texture.
func tiffGray(in Input, seed uint32) []byte {
	w, h := tiffDims(in)
	r := newRNG(seed)
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img[y*w+x] = byte(x*2 + y + r.intn(32))
		}
	}
	return img
}

// --- tiff2bw -----------------------------------------------------

// Luma weights (ITU-R 601-ish, as libtiff's tiff2bw uses).
const lumaR, lumaG, lumaB = 77, 150, 29

func tiff2bwInput(in Input) []byte {
	w, h := tiffDims(in)
	return newRNG(0x2b3).bytes(3 * w * h) // packed RGB
}

func tiff2bwRef(in Input) uint32 {
	rgb := tiff2bwInput(in)
	var sum uint32
	for i := 0; i+2 < len(rgb); i += 3 {
		y := (lumaR*uint32(rgb[i]) + lumaG*uint32(rgb[i+1]) + lumaB*uint32(rgb[i+2])) >> 8
		sum += y
	}
	return sum
}

func buildTiff2bw(in Input) (*obj.Unit, error) {
	w, h := tiffDims(in)
	if w%8 != 0 {
		panic("tiff2bw: width must be a multiple of 8 for the unrolled row loop")
	}
	b := asm.NewBuilder("tiff2bw")
	addAppShell(b, 0x2493, 10)
	rgb := b.Data(tiff2bwInput(in))
	b.Align(4)
	out := b.Zeros(w * h)

	// Row-structured with a four-wide unrolled pixel loop, the shape
	// libtiff's scanline converters take after optimisation.
	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)
	f.Li(isa.R1, rgb)
	f.Li(isa.R2, out)
	f.Movi(isa.R8, uint16(h))
	f.Block("rows")
	f.Call("rt_tick")
	f.Li(isa.R3, uint32(w/8))
	f.Block("px")
	for j := int32(0); j < 8; j++ {
		f.Ldrb(isa.R4, isa.R1, 3*j+0)
		f.Movi(isa.R7, lumaR)
		f.Mul(isa.R4, isa.R4, isa.R7)
		f.Ldrb(isa.R5, isa.R1, 3*j+1)
		f.Movi(isa.R7, lumaG)
		f.Op3(isa.MLA, isa.R4, isa.R5, isa.R7) // R4 += g*150
		f.Ldrb(isa.R5, isa.R1, 3*j+2)
		f.Movi(isa.R7, lumaB)
		f.Op3(isa.MLA, isa.R4, isa.R5, isa.R7)
		f.OpI(isa.LSRI, isa.R4, isa.R4, 8)
		f.Strb(isa.R4, isa.R2, j)
		f.Add(isa.R0, isa.R0, isa.R4)
	}
	f.Addi(isa.R1, isa.R1, 24)
	f.Addi(isa.R2, isa.R2, 8)
	f.Subi(isa.R3, isa.R3, 1)
	f.Cmpi(isa.R3, 0)
	f.Bgt("px")
	f.Subi(isa.R8, isa.R8, 1)
	f.Cmpi(isa.R8, 0)
	f.Bgt("rows")
	f.Halt()
	addRuntime(b)
	return b.Build()
}

// --- tiff2rgba ---------------------------------------------------

func tiffPalette() []uint32 {
	r := newRNG(0x9a1e)
	return r.words(256)
}

// tiff2rgbaDims: the per-pixel work is light, so this benchmark gets
// a taller frame than its siblings.
func tiff2rgbaDims(in Input) (w, h int) {
	if in == Small {
		return 64, 40
	}
	return 256, 224
}

func tiff2rgbaInput(in Input) []byte {
	w, h := tiff2rgbaDims(in)
	r := newRNG(0x44a)
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img[y*w+x] = byte(x*2 + y + r.intn(32))
		}
	}
	return img
}

func tiff2rgbaRef(in Input) uint32 {
	pal := tiffPalette()
	px := tiff2rgbaInput(in)
	var sum uint32
	for _, p := range px {
		rgba := pal[p] | 0xff000000 // force alpha, as tiff2rgba does
		sum = sum*3 + rgba
	}
	return sum
}

func buildTiff2rgba(in Input) (*obj.Unit, error) {
	w, h := tiff2rgbaDims(in)
	b := asm.NewBuilder("tiff2rgba")
	addAppShell(b, 0x108bf, 9)
	pal := b.Words(tiffPalette()...)
	px := b.Data(tiff2rgbaInput(in))
	b.Align(4)
	out := b.Zeros(4 * w * h)

	if w%8 != 0 {
		panic("tiff2rgba: width must be a multiple of 8 for the unrolled row loop")
	}
	// Row-structured, eight pixels per iteration.
	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)
	f.Li(isa.R1, px)
	f.Li(isa.R2, out)
	f.Li(isa.R6, pal)
	f.Li(isa.R8, 0xff00_0000)
	f.Movi(isa.R9, uint16(h))
	f.Block("rows")
	f.Call("rt_tick")
	f.Li(isa.R3, uint32(w/8))
	f.Block("px")
	for j := int32(0); j < 8; j++ {
		f.Ldrb(isa.R4, isa.R1, j)
		f.OpI(isa.LSLI, isa.R4, isa.R4, 2)
		f.Ldrx(isa.R5, isa.R6, isa.R4)
		f.Op3(isa.ORR, isa.R5, isa.R5, isa.R8)
		f.Str(isa.R5, isa.R2, 4*j)
		// sum = sum*3 + rgba
		f.OpI(isa.LSLI, isa.R7, isa.R0, 1)
		f.Add(isa.R0, isa.R0, isa.R7)
		f.Add(isa.R0, isa.R0, isa.R5)
	}
	f.Addi(isa.R1, isa.R1, 8)
	f.Addi(isa.R2, isa.R2, 32)
	f.Subi(isa.R3, isa.R3, 1)
	f.Cmpi(isa.R3, 0)
	f.Bgt("px")
	f.Subi(isa.R9, isa.R9, 1)
	f.Cmpi(isa.R9, 0)
	f.Bgt("rows")
	f.Halt()
	addRuntime(b)
	return b.Build()
}

// --- tiffdither --------------------------------------------------

func tiffditherInput(in Input) []byte { return tiffGray(in, 0xd17) }

// tiffditherRef: Floyd-Steinberg with a single current/next error row
// pair, integer arithmetic (errors can be negative).
func tiffditherRef(in Input) uint32 {
	w, h := tiffDims(in)
	img := tiffditherInput(in)
	cur := make([]int32, w+2)
	next := make([]int32, w+2)
	var ones uint32
	for y := 0; y < h; y++ {
		for i := range next {
			next[i] = 0
		}
		for x := 0; x < w; x++ {
			v := int32(img[y*w+x]) + cur[x+1]
			var out int32
			if v >= 128 {
				out = 255
				ones++
			}
			e := v - out
			cur[x+2] += e * 7 >> 4
			next[x] += e * 3 >> 4
			next[x+1] += e * 5 >> 4
			next[x+2] += e * 1 >> 4
		}
		cur, next = next, cur
	}
	return ones
}

func buildTiffdither(in Input) (*obj.Unit, error) {
	w, h := tiffDims(in)
	b := asm.NewBuilder("tiffdither")
	addAppShell(b, 0x9ecd, 13)
	img := b.Data(tiffditherInput(in))
	b.Align(4)
	curBuf := b.Zeros(4 * (w + 2))
	nextBuf := b.Zeros(4 * (w + 2))

	// emitScaled adds (e * k) >> 4 into mem[Rbase + off]; e in R5,
	// scratch R7, R8.
	emitScaled := func(f *asm.FuncBuilder, base isa.Reg, off int32, k uint16) {
		f.Movi(isa.R7, k)
		f.Mul(isa.R7, isa.R5, isa.R7)
		f.OpI(isa.ASRI, isa.R7, isa.R7, 4)
		f.Ldr(isa.R8, base, off)
		f.Add(isa.R8, isa.R8, isa.R7)
		f.Str(isa.R8, base, off)
	}

	f := b.Func("main")
	f.Call("app_init")
	f.Movi(isa.R0, 0)      // ones count
	f.Li(isa.R1, img)      // pixel cursor
	f.Li(isa.R11, curBuf)  // cur error row
	f.Li(isa.R12, nextBuf) // next error row
	f.Movi(isa.R10, uint16(h))
	f.Block("rows")
	f.Call("rt_tick")
	// Clear next row.
	f.Mov(isa.R2, isa.R12)
	f.Li(isa.R3, uint32(w+2))
	f.Movi(isa.R4, 0)
	f.Block("clear")
	f.Str(isa.R4, isa.R2, 0)
	f.Addi(isa.R2, isa.R2, 4)
	f.Subi(isa.R3, isa.R3, 1)
	f.Cmpi(isa.R3, 0)
	f.Bgt("clear")
	// Columns.
	f.Mov(isa.R2, isa.R11) // cur[x] cursor (cur[x+1] is offset 4)
	f.Mov(isa.R3, isa.R12) // next[x] cursor
	f.Li(isa.R9, uint32(w))
	f.Block("cols")
	f.Ldrb(isa.R4, isa.R1, 0)
	f.Ldr(isa.R5, isa.R2, 4)      // cur[x+1]
	f.Add(isa.R4, isa.R4, isa.R5) // v
	f.Movi(isa.R6, 0)             // out
	f.Cmpi(isa.R4, 128)
	f.Blt("zero")
	f.Movi(isa.R6, 255)
	f.Addi(isa.R0, isa.R0, 1)
	f.Block("zero")
	f.Sub(isa.R5, isa.R4, isa.R6) // e
	emitScaled(f, isa.R2, 8, 7)   // cur[x+2]
	emitScaled(f, isa.R3, 0, 3)   // next[x]
	emitScaled(f, isa.R3, 4, 5)   // next[x+1]
	emitScaled(f, isa.R3, 8, 1)   // next[x+2]
	f.Addi(isa.R1, isa.R1, 1)
	f.Addi(isa.R2, isa.R2, 4)
	f.Addi(isa.R3, isa.R3, 4)
	f.Subi(isa.R9, isa.R9, 1)
	f.Cmpi(isa.R9, 0)
	f.Bgt("cols")
	// Swap row buffers.
	f.Mov(isa.R4, isa.R11)
	f.Mov(isa.R11, isa.R12)
	f.Mov(isa.R12, isa.R4)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("rows")
	f.Halt()
	addRuntime(b)
	return b.Build()
}

// --- tiffmedian --------------------------------------------------

func tiffmedianInput(in Input) []byte { return tiffGray(in, 0x3ed) }

// tiffmedianRef: build a 256-bin histogram, derive 8 quantisation
// thresholds from the cumulative distribution, then requantise the
// image and checksum the levels.
func tiffmedianRef(in Input) uint32 {
	w, h := tiffDims(in)
	img := tiffmedianInput(in)
	var hist [256]uint32
	for _, p := range img {
		hist[p]++
	}
	total := uint32(w * h)
	var thr [8]uint32
	var cum uint32
	level := 0
	for v := 0; v < 256 && level < 8; v++ {
		cum += hist[v]
		for level < 8 && cum*8 >= total*uint32(level+1) {
			thr[level] = uint32(v)
			level++
		}
	}
	for ; level < 8; level++ {
		thr[level] = 255
	}
	var sum uint32
	for _, p := range img {
		l := uint32(0)
		for l < 7 && uint32(p) > thr[l] {
			l++
		}
		sum += l
	}
	return sum
}

func buildTiffmedian(in Input) (*obj.Unit, error) {
	w, h := tiffDims(in)
	b := asm.NewBuilder("tiffmedian")
	addAppShell(b, 0xb5cb, 10)
	img := b.Data(tiffmedianInput(in))
	b.Align(4)
	hist := b.Zeros(256 * 4)
	thr := b.Zeros(8 * 4)

	f := b.Func("main")
	f.Call("app_init")
	f.Call("histogram")
	f.Call("thresholds")
	// Requantisation pass (hot).
	f.Movi(isa.R0, 0)
	f.Li(isa.R1, img)
	f.Li(isa.R2, uint32(w*h))
	f.Li(isa.R6, thr)
	f.Block("px")
	f.Ldrb(isa.R3, isa.R1, 0)
	f.Movi(isa.R4, 0) // level
	f.Block("lvl")
	f.Cmpi(isa.R4, 7)
	f.Bge("done")
	f.OpI(isa.LSLI, isa.R5, isa.R4, 2)
	f.Ldrx(isa.R5, isa.R6, isa.R5)
	f.Cmp(isa.R3, isa.R5)
	f.Ble("done")
	f.Addi(isa.R4, isa.R4, 1)
	f.Jmp("lvl")
	f.Block("done")
	f.Add(isa.R0, isa.R0, isa.R4)
	f.Addi(isa.R1, isa.R1, 1)
	f.Subi(isa.R2, isa.R2, 1)
	f.Cmpi(isa.R2, 0)
	f.Bgt("px")
	f.Halt()

	// histogram: hot first pass.
	hg := b.Func("histogram")
	hg.Li(isa.R1, img)
	hg.Li(isa.R2, uint32(w*h))
	hg.Li(isa.R6, hist)
	hg.Block("loop")
	hg.Ldrb(isa.R3, isa.R1, 0)
	hg.OpI(isa.LSLI, isa.R3, isa.R3, 2)
	hg.Ldrx(isa.R4, isa.R6, isa.R3)
	hg.Addi(isa.R4, isa.R4, 1)
	hg.Strx(isa.R4, isa.R6, isa.R3)
	hg.Addi(isa.R1, isa.R1, 1)
	hg.Subi(isa.R2, isa.R2, 1)
	hg.Cmpi(isa.R2, 0)
	hg.Bgt("loop")
	hg.Ret()

	// thresholds: cold — walk the cumulative histogram once.
	th := b.Func("thresholds")
	th.Li(isa.R1, hist)
	th.Li(isa.R6, thr)
	th.Movi(isa.R2, 0)         // v
	th.Movi(isa.R3, 0)         // cum
	th.Movi(isa.R4, 0)         // level
	th.Li(isa.R9, uint32(w*h)) // total
	th.Block("scan")
	th.Cmpi(isa.R2, 256)
	th.Bge("fill")
	th.Cmpi(isa.R4, 8)
	th.Bge("fill")
	th.OpI(isa.LSLI, isa.R5, isa.R2, 2)
	th.Ldrx(isa.R5, isa.R1, isa.R5)
	th.Add(isa.R3, isa.R3, isa.R5)
	th.Block("emit")
	th.Cmpi(isa.R4, 8)
	th.Bge("next")
	// cum*8 >= total*(level+1)?
	th.OpI(isa.LSLI, isa.R7, isa.R3, 3)
	th.Addi(isa.R8, isa.R4, 1)
	th.Mul(isa.R8, isa.R8, isa.R9)
	th.Cmp(isa.R7, isa.R8)
	th.Blo("next")
	th.OpI(isa.LSLI, isa.R8, isa.R4, 2)
	th.Strx(isa.R2, isa.R6, isa.R8)
	th.Addi(isa.R4, isa.R4, 1)
	th.Jmp("emit")
	th.Block("next")
	th.Addi(isa.R2, isa.R2, 1)
	th.Jmp("scan")
	th.Block("fill")
	th.Cmpi(isa.R4, 8)
	th.Bge("out")
	th.Movi(isa.R5, 255)
	th.OpI(isa.LSLI, isa.R8, isa.R4, 2)
	th.Strx(isa.R5, isa.R6, isa.R8)
	th.Addi(isa.R4, isa.R4, 1)
	th.Jmp("fill")
	th.Block("out")
	th.Ret()

	addRuntime(b)
	return b.Build()
}
