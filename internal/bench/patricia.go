package bench

import (
	"wayplace/internal/asm"
	"wayplace/internal/isa"
	"wayplace/internal/obj"
)

func init() {
	register("patricia", "radix-trie insert/lookup over routing keys (MiBench network/patricia)",
		buildPatricia)
}

// The benchmark builds a 16-level binary radix trie over 16-bit
// route keys (MiBench's patricia walks an IP routing trie; the
// pointer-chasing, bit-testing instruction mix is the same — see
// DESIGN.md for the substitution note) and then serves a lookup
// stream with hits and misses.

const patBits = 16

// patWork returns the insert stream and the lookup stream.
func patWork(in Input) (inserts, lookups []uint32) {
	r := newRNG(0x9a77)
	ni, nl := in.pick(200, 1400), in.pick(900, 5600)
	inserts = make([]uint32, ni)
	for i := range inserts {
		inserts[i] = r.next() & 0xffff
	}
	lookups = make([]uint32, nl)
	for i := range lookups {
		if r.intn(2) == 0 { // hit: an inserted key
			lookups[i] = inserts[r.intn(ni)]
		} else { // likely miss
			lookups[i] = r.next() & 0xffff
		}
	}
	return inserts, lookups
}

// patriciaRef mirrors the program with a map-of-children trie.
func patriciaRef(in Input) uint32 {
	inserts, lookups := patWork(in)
	type node struct {
		child [2]*node
		key   uint32
		valid bool
	}
	root := &node{}
	for _, k := range inserts {
		cur := root
		for bit := patBits - 1; bit >= 0; bit-- {
			d := k >> uint(bit) & 1
			if cur.child[d] == nil {
				cur.child[d] = &node{}
			}
			cur = cur.child[d]
		}
		cur.key = k
		cur.valid = true
	}
	var sum uint32
	for _, k := range lookups {
		cur := root
		for bit := patBits - 1; bit >= 0 && cur != nil; bit-- {
			cur = cur.child[k>>uint(bit)&1]
		}
		if cur != nil && cur.valid && cur.key == k {
			sum += k
		} else {
			sum++
		}
	}
	return sum
}

// buildPatricia emits trie_insert and trie_lookup plus main driving
// both streams. Node layout (16 bytes): +0 left, +4 right, +8 key,
// +12 valid. Null pointers are 0.
func buildPatricia(in Input) (*obj.Unit, error) {
	inserts, lookups := patWork(in)

	b := asm.NewBuilder("patricia")
	addAppShell(b, 0x506e, 8)
	insAddr := b.Words(inserts...)
	lookAddr := b.Words(lookups...)
	root := b.Zeros(16)
	// Arena sized for the worst case: every insert creates a full
	// fresh path.
	arena := b.Zeros(16 * (patBits*len(inserts) + 1))
	bump := b.Words(arena) // allocation cursor (holds next free addr)

	f := b.Func("main")
	f.Call("app_init")
	// Insert phase.
	f.Li(isa.R11, insAddr)
	f.Li(isa.R10, uint32(len(inserts)))
	f.Block("ins")
	f.Ldr(isa.R1, isa.R11, 0)
	f.Push(isa.R10, isa.R11)
	f.Call("trie_insert")
	f.Pop(isa.R10, isa.R11)
	f.Addi(isa.R11, isa.R11, 4)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("ins")
	// Lookup phase.
	f.Movi(isa.R0, 0)
	f.Li(isa.R11, lookAddr)
	f.Li(isa.R10, uint32(len(lookups)))
	f.Block("look")
	f.Ldr(isa.R1, isa.R11, 0)
	f.Push(isa.R10, isa.R11)
	f.Call("trie_lookup")
	f.Pop(isa.R10, isa.R11)
	f.Addi(isa.R11, isa.R11, 4)
	f.Subi(isa.R10, isa.R10, 1)
	f.Cmpi(isa.R10, 0)
	f.Bgt("look")
	f.Halt()

	// trie_insert: R1 = key. Walks/extends the path to depth 0.
	// R2 cur, R3 bit, R4 dir, R5 child ptr, R6-R8 temps.
	ti := b.Func("trie_insert")
	ti.Li(isa.R2, root)
	ti.Movi(isa.R3, patBits-1)
	ti.Block("walk")
	ti.Mov(isa.R4, isa.R1)
	ti.Op3(isa.LSR, isa.R4, isa.R4, isa.R3)
	ti.OpI(isa.ANDI, isa.R4, isa.R4, 1)
	ti.OpI(isa.LSLI, isa.R4, isa.R4, 2) // child offset 0 or 4
	ti.Ldrx(isa.R5, isa.R2, isa.R4)
	ti.Cmpi(isa.R5, 0)
	ti.Bne("descend")
	// Allocate a node from the arena.
	ti.Li(isa.R6, bump)
	ti.Ldr(isa.R5, isa.R6, 0)
	ti.Addi(isa.R7, isa.R5, 16)
	ti.Str(isa.R7, isa.R6, 0)
	ti.Strx(isa.R5, isa.R2, isa.R4) // link into parent
	ti.Block("descend")
	ti.Mov(isa.R2, isa.R5)
	ti.Subi(isa.R3, isa.R3, 1)
	ti.Cmpi(isa.R3, 0)
	ti.Bge("walk")
	// Leaf: record key + valid.
	ti.Str(isa.R1, isa.R2, 8)
	ti.Movi(isa.R6, 1)
	ti.Str(isa.R6, isa.R2, 12)
	ti.Ret()

	// trie_lookup: R1 = key; adds key to R0 on hit, 1 on miss.
	tl := b.Func("trie_lookup")
	tl.Li(isa.R2, root)
	tl.Movi(isa.R3, patBits-1)
	tl.Block("walk")
	tl.Mov(isa.R4, isa.R1)
	tl.Op3(isa.LSR, isa.R4, isa.R4, isa.R3)
	tl.OpI(isa.ANDI, isa.R4, isa.R4, 1)
	tl.OpI(isa.LSLI, isa.R4, isa.R4, 2)
	tl.Ldrx(isa.R2, isa.R2, isa.R4)
	tl.Cmpi(isa.R2, 0)
	tl.Beq("miss")
	tl.Subi(isa.R3, isa.R3, 1)
	tl.Cmpi(isa.R3, 0)
	tl.Bge("walk")
	// Depth reached: verify the stored key.
	tl.Ldr(isa.R6, isa.R2, 12)
	tl.Cmpi(isa.R6, 0)
	tl.Beq("miss")
	tl.Ldr(isa.R6, isa.R2, 8)
	tl.Cmp(isa.R6, isa.R1)
	tl.Bne("miss")
	tl.Add(isa.R0, isa.R0, isa.R1)
	tl.Ret()
	tl.Block("miss")
	tl.Addi(isa.R0, isa.R0, 1)
	tl.Ret()

	addRuntime(b)
	return b.Build()
}
