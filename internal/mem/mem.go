// Package mem models the off-chip main memory of the simulated
// embedded system: a sparse byte-addressable store with a fixed access
// latency and a narrow bus, matching the paper's baseline platform
// (50-cycle latency, 32-bit bus).
package mem

import (
	"encoding/binary"
	"sort"
)

const pageShift = 12 // 4KB allocation granules (host-side only)
const pageSize = 1 << pageShift

// Config describes memory timing.
type Config struct {
	LatencyCycles int // cycles for the first word of an access
	BusBytes      int // bytes transferred per cycle after the first word
}

// DefaultConfig is the paper's Table 1 memory system: 50-cycle latency
// over a 32-bit bus.
func DefaultConfig() Config {
	return Config{LatencyCycles: 50, BusBytes: 4}
}

// LineFillCycles returns the stall for fetching lineBytes from memory:
// initial latency plus one bus beat per word.
func (c Config) LineFillCycles(lineBytes int) int {
	beats := lineBytes / c.BusBytes
	if beats < 1 {
		beats = 1
	}
	return c.LatencyCycles + beats
}

// Stats counts memory traffic for the energy model.
type Stats struct {
	Reads      uint64 // line reads
	Writes     uint64 // line or word writebacks
	BytesRead  uint64
	BytesWrite uint64
}

// Memory is a sparse little-endian byte store.
type Memory struct {
	Config Config
	Stats  Stats
	pages  map[uint32]*[pageSize]byte

	// Last page served, short-circuiting the map lookup: accesses
	// cluster heavily (stack frames, sequential buffers), and the
	// simulator's data path goes through here on every load and store.
	lastKey  uint32
	lastPage *[pageSize]byte
}

// New returns an empty memory with the given timing.
func New(cfg Config) *Memory {
	return &Memory{Config: cfg, pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	key := addr >> pageShift
	if m.lastPage != nil && m.lastKey == key {
		return m.lastPage
	}
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// LoadImage copies a byte image into memory at base.
func (m *Memory) LoadImage(base uint32, data []byte) {
	for i, b := range data {
		m.put8(base+uint32(i), b)
	}
}

func (m *Memory) put8(addr uint32, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

func (m *Memory) get8(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// Read8 returns the byte at addr. Unwritten memory reads as zero.
func (m *Memory) Read8(addr uint32) byte { return m.get8(addr) }

// Write8 stores one byte.
func (m *Memory) Write8(addr uint32, v byte) { m.put8(addr, v) }

// Read32 returns the little-endian word at addr. The simulated machine
// requires natural alignment; the CPU checks before calling.
func (m *Memory) Read32(addr uint32) uint32 {
	// Fast path: whole word inside one page.
	if addr&(pageSize-1) <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[addr&(pageSize-1):])
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.get8(addr+i)) << (8 * i)
	}
	return v
}

// Write32 stores a little-endian word.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&(pageSize-1) <= pageSize-4 {
		p := m.page(addr, true)
		binary.LittleEndian.PutUint32(p[addr&(pageSize-1):], v)
		return
	}
	for i := uint32(0); i < 4; i++ {
		m.put8(addr+i, byte(v>>(8*i)))
	}
}

// Hash returns an FNV-1a digest of the memory contents below limit:
// every page holding a non-zero byte is folded in (page address, then
// bytes), in ascending address order; pages at or above limit are
// ignored. Untouched pages and pages written back to all-zeroes hash
// identically — memory reads as zero either way — so two runs with
// the same architectural side effects always agree, regardless of
// which addresses they happened to touch. Used by internal/check to
// compare memory state across fetch schemes and layouts; callers pass
// a limit below the stack region, whose dead frames hold spilled
// return addresses that legitimately differ between code layouts.
func (m *Memory) Hash(limit uint32) uint64 {
	keys := make([]uint32, 0, len(m.pages))
	for k, p := range m.pages {
		if uint64(k)<<pageShift >= uint64(limit) {
			continue
		}
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if !zero {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, k := range keys {
		for shift := 0; shift < 32; shift += 8 {
			h = (h ^ uint64(byte(k>>shift))) * prime64
		}
		for _, b := range m.pages[k] {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

// ReadLine records a line fetch (for stats) and returns the fill stall.
func (m *Memory) ReadLine(addr uint32, lineBytes int) int {
	m.Stats.Reads++
	m.Stats.BytesRead += uint64(lineBytes)
	return m.Config.LineFillCycles(lineBytes)
}

// WriteBack records a line writeback and returns its stall
// contribution (buffered: the paper's platform has a write buffer, so
// writebacks do not stall the core in our model).
func (m *Memory) WriteBack(addr uint32, lineBytes int) int {
	m.Stats.Writes++
	m.Stats.BytesWrite += uint64(lineBytes)
	return 0
}
