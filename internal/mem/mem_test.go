package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(DefaultConfig())
	m.Write32(0x1000, 0xdeadbeef)
	if got := m.Read32(0x1000); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	m.Write8(0x1000, 0x42)
	if got := m.Read32(0x1000); got != 0xdeadbe42 {
		t.Errorf("after byte write: %#x", got)
	}
	if got := m.Read8(0x1003); got != 0xde {
		t.Errorf("Read8 = %#x", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New(DefaultConfig())
	if m.Read32(0x9999_0000) != 0 || m.Read8(0x1234_5678) != 0 {
		t.Error("unwritten memory not zero")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New(DefaultConfig())
	addr := uint32(pageSize - 2) // straddles the first page boundary
	m.Write32(addr, 0x11223344)
	if got := m.Read32(addr); got != 0x11223344 {
		t.Errorf("cross-page Read32 = %#x", got)
	}
	if m.Read8(addr+2) != 0x22 {
		t.Errorf("high half landed wrong")
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New(DefaultConfig())
	f := func(addr uint32, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadImage(t *testing.T) {
	m := New(DefaultConfig())
	m.LoadImage(0x100, []byte{1, 2, 3, 4, 5})
	if m.Read32(0x100) != 0x04030201 {
		t.Errorf("image word = %#x", m.Read32(0x100))
	}
	if m.Read8(0x104) != 5 {
		t.Errorf("image tail byte = %d", m.Read8(0x104))
	}
}

func TestLineFillCycles(t *testing.T) {
	cfg := DefaultConfig() // 50 cycles + 1 beat per 4 bytes
	if got := cfg.LineFillCycles(32); got != 58 {
		t.Errorf("32B line fill = %d cycles, want 58", got)
	}
	if got := cfg.LineFillCycles(4); got != 51 {
		t.Errorf("4B line fill = %d cycles, want 51", got)
	}
	if got := cfg.LineFillCycles(0); got != 51 {
		t.Errorf("degenerate fill = %d cycles, want 51 (min one beat)", got)
	}
}

func TestTrafficStats(t *testing.T) {
	m := New(DefaultConfig())
	m.ReadLine(0x0, 32)
	m.ReadLine(0x40, 32)
	m.WriteBack(0x0, 32)
	if m.Stats.Reads != 2 || m.Stats.Writes != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
	if m.Stats.BytesRead != 64 || m.Stats.BytesWrite != 32 {
		t.Errorf("bytes = %+v", m.Stats)
	}
}
