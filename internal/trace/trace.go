// Package trace captures and analyses instruction-fetch address
// streams. The paper's argument rests on properties of the fetch
// stream — hot-line concentration, sequential run lengths, working-set
// size — and this package makes them measurable on any simulated run:
// wrap the fetch engine in a Recorder, run, then analyse.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"wayplace/internal/cache"
)

// Recorder wraps a fetch engine and records every fetched address.
type Recorder struct {
	inner cache.FetchEngine
	Addrs []uint32
}

// Wrap returns a recording engine delegating to e.
func Wrap(e cache.FetchEngine) *Recorder {
	return &Recorder{inner: e}
}

// Fetch records and delegates.
func (r *Recorder) Fetch(addr uint32, indirect bool) cache.FetchResult {
	r.Addrs = append(r.Addrs, addr)
	return r.inner.Fetch(addr, indirect)
}

// Cache delegates to the wrapped engine.
func (r *Recorder) Cache() *cache.Cache { return r.inner.Cache() }

// Name identifies the recorder and its inner engine.
func (r *Recorder) Name() string { return "trace(" + r.inner.Name() + ")" }

// lineOf returns the line address for the given line size.
func lineOf(addr uint32, lineBytes int) uint32 {
	return addr &^ uint32(lineBytes-1)
}

// WorkingSet returns the number of distinct cache lines touched.
func WorkingSet(addrs []uint32, lineBytes int) int {
	seen := make(map[uint32]struct{})
	for _, a := range addrs {
		seen[lineOf(a, lineBytes)] = struct{}{}
	}
	return len(seen)
}

// LineCount is one line's fetch count.
type LineCount struct {
	Line  uint32
	Count uint64
}

// Hottest returns the top-n lines by fetch count, descending
// (ties broken by address for determinism).
func Hottest(addrs []uint32, lineBytes, n int) []LineCount {
	counts := make(map[uint32]uint64)
	for _, a := range addrs {
		counts[lineOf(a, lineBytes)]++
	}
	out := make([]LineCount, 0, len(counts))
	for l, c := range counts {
		out = append(out, LineCount{Line: l, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Line < out[j].Line
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Concentration returns the smallest number of lines covering the
// given fraction of all fetches — the quantity the way-placement area
// must capture.
func Concentration(addrs []uint32, lineBytes int, fraction float64) int {
	hot := Hottest(addrs, lineBytes, 1<<31-1)
	target := uint64(fraction * float64(len(addrs)))
	var acc uint64
	for i, lc := range hot {
		acc += lc.Count
		if acc >= target {
			return i + 1
		}
	}
	return len(hot)
}

// RunLengths returns a histogram of same-line run lengths: h[k] = how
// many maximal runs of k consecutive fetches stayed within one line.
// Long runs are what the same-line skip and the sequential links
// exploit.
func RunLengths(addrs []uint32, lineBytes int) map[int]int {
	h := make(map[int]int)
	if len(addrs) == 0 {
		return h
	}
	run := 1
	for i := 1; i < len(addrs); i++ {
		if lineOf(addrs[i], lineBytes) == lineOf(addrs[i-1], lineBytes) {
			run++
			continue
		}
		h[run]++
		run = 1
	}
	h[run]++
	return h
}

// MeanRunLength returns the average same-line run length.
func MeanRunLength(addrs []uint32, lineBytes int) float64 {
	h := RunLengths(addrs, lineBytes)
	var runs, fetches int
	for k, n := range h {
		runs += n
		fetches += k * n
	}
	if runs == 0 {
		return 0
	}
	return float64(fetches) / float64(runs)
}

// PrefixCoverage returns the fraction of fetches whose address lies
// below base+size — the dynamic way-placement-area coverage of the
// actual run (as opposed to layout.Coverage's profile estimate).
func PrefixCoverage(addrs []uint32, base, size uint32) float64 {
	if len(addrs) == 0 {
		return 0
	}
	var in int
	for _, a := range addrs {
		if a >= base && a-base < size {
			in++
		}
	}
	return float64(in) / float64(len(addrs))
}

// Summary renders the standard analysis block for a trace.
func Summary(addrs []uint32, lineBytes int, base uint32) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fetches            %12d\n", len(addrs))
	fmt.Fprintf(&sb, "working set        %12d lines (%d bytes)\n",
		WorkingSet(addrs, lineBytes), WorkingSet(addrs, lineBytes)*lineBytes)
	fmt.Fprintf(&sb, "90%% concentration  %12d lines\n", Concentration(addrs, lineBytes, 0.90))
	fmt.Fprintf(&sb, "99%% concentration  %12d lines\n", Concentration(addrs, lineBytes, 0.99))
	fmt.Fprintf(&sb, "mean same-line run %12.2f fetches\n", MeanRunLength(addrs, lineBytes))
	for _, kb := range []uint32{1, 4, 16} {
		fmt.Fprintf(&sb, "%2dKB prefix covers %11.1f%% of fetches\n",
			kb, 100*PrefixCoverage(addrs, base, kb<<10))
	}
	return sb.String()
}

// ReuseDistances returns a histogram of line reuse distances: for
// each re-fetch of a line, the number of *distinct* other lines
// touched since its previous fetch. h[d] counts reuses at distance d;
// first touches are not counted. A cache of W*S lines (fully
// associative view) hits every reuse with distance below its
// capacity, so the histogram's mass below a capacity predicts that
// cache's upper-bound hit rate on the stream.
func ReuseDistances(addrs []uint32, lineBytes int) map[int]int {
	h := make(map[int]int)
	var stack []uint32          // LRU stack of lines, most recent last
	pos := make(map[uint32]int) // line -> index in stack
	for _, a := range addrs {
		line := lineOf(a, lineBytes)
		if p, seen := pos[line]; seen {
			// Distance = number of distinct lines above it in the LRU
			// stack (0 for a same-line consecutive fetch).
			h[len(stack)-1-p]++
			// Move to top.
			stack = append(stack[:p], stack[p+1:]...)
			for i := p; i < len(stack); i++ {
				pos[stack[i]] = i
			}
		}
		stack = append(stack, line)
		pos[line] = len(stack) - 1
	}
	return h
}

// HitRateAtCapacity returns the fraction of fetches a fully-
// associative LRU cache of the given line capacity would hit on this
// stream, derived from the reuse-distance histogram.
func HitRateAtCapacity(addrs []uint32, lineBytes, capacityLines int) float64 {
	if len(addrs) == 0 {
		return 0
	}
	h := ReuseDistances(addrs, lineBytes)
	var hits int
	for d, n := range h {
		if d < capacityLines {
			hits += n
		}
	}
	return float64(hits) / float64(len(addrs))
}
