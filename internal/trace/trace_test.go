package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"wayplace/internal/cache"
	"wayplace/internal/cpu"
	"wayplace/internal/mem"
	"wayplace/internal/progen"
)

func TestWorkingSetAndHottest(t *testing.T) {
	addrs := []uint32{0x00, 0x04, 0x08, 0x20, 0x00, 0x04, 0x40, 0x00}
	if ws := WorkingSet(addrs, 32); ws != 3 {
		t.Errorf("WorkingSet = %d, want 3", ws)
	}
	hot := Hottest(addrs, 32, 2)
	if len(hot) != 2 || hot[0].Line != 0x00 || hot[0].Count != 6 {
		t.Errorf("Hottest = %+v", hot)
	}
	// 0x20 and 0x40 tie at one fetch each; the lower address wins.
	if hot[1].Line != 0x20 || hot[1].Count != 1 {
		t.Errorf("Hottest[1] = %+v", hot[1])
	}
}

func TestConcentration(t *testing.T) {
	// 8 fetches to line 0, 1 each to lines 1 and 2.
	var addrs []uint32
	for i := 0; i < 8; i++ {
		addrs = append(addrs, 0x00)
	}
	addrs = append(addrs, 0x20, 0x40)
	if c := Concentration(addrs, 32, 0.8); c != 1 {
		t.Errorf("80%% concentration = %d, want 1", c)
	}
	if c := Concentration(addrs, 32, 1.0); c != 3 {
		t.Errorf("100%% concentration = %d, want 3", c)
	}
}

func TestRunLengths(t *testing.T) {
	addrs := []uint32{0x00, 0x04, 0x08, 0x20, 0x24, 0x00}
	h := RunLengths(addrs, 32)
	if h[3] != 1 || h[2] != 1 || h[1] != 1 {
		t.Errorf("RunLengths = %v, want one run each of 3, 2, 1", h)
	}
	mean := MeanRunLength(addrs, 32)
	if mean < 1.99 || mean > 2.01 {
		t.Errorf("MeanRunLength = %f, want 2", mean)
	}
}

func TestRunLengthsEmpty(t *testing.T) {
	if len(RunLengths(nil, 32)) != 0 {
		t.Error("empty trace should give empty histogram")
	}
	if MeanRunLength(nil, 32) != 0 {
		t.Error("empty trace mean should be 0")
	}
	if PrefixCoverage(nil, 0, 1024) != 0 {
		t.Error("empty trace coverage should be 0")
	}
}

func TestPrefixCoverage(t *testing.T) {
	addrs := []uint32{0x1000, 0x1004, 0x2000, 0x2004}
	if c := PrefixCoverage(addrs, 0x1000, 0x1000); c != 0.5 {
		t.Errorf("PrefixCoverage = %f, want 0.5", c)
	}
	if c := PrefixCoverage(addrs, 0x1000, 0x2000); c != 1.0 {
		t.Errorf("PrefixCoverage = %f, want 1", c)
	}
}

// TestRecorderCapturesEveryFetch: a recorded run must log exactly one
// address per executed instruction, in execution order, and not
// disturb the inner engine's behaviour.
func TestRecorderCapturesEveryFetch(t *testing.T) {
	prog := progen.Program(7, progen.DefaultOptions(), 0x1_0000)
	icfg := cache.Config{SizeBytes: 4 << 10, Ways: 8, LineBytes: 32}

	plain, err := cache.NewBaseline(icfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := cpu.New(prog, mem.New(mem.DefaultConfig()))
	c1.IFetch = plain
	r1, err := c1.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}

	inner, err := cache.NewBaseline(icfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := Wrap(inner)
	c2 := cpu.New(prog, mem.New(mem.DefaultConfig()))
	c2.IFetch = rec
	r2, err := c2.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}

	if uint64(len(rec.Addrs)) != r2.Instrs {
		t.Errorf("recorded %d addresses for %d instructions", len(rec.Addrs), r2.Instrs)
	}
	if r1.Instrs != r2.Instrs || c1.Regs != c2.Regs {
		t.Error("recording changed execution")
	}
	if inner.Cache().Stats != plain.Cache().Stats {
		t.Errorf("recording changed cache behaviour:\n%+v\nvs\n%+v",
			inner.Cache().Stats, plain.Cache().Stats)
	}
	if rec.Addrs[0] != prog.Entry {
		t.Errorf("first fetch %#x, want entry %#x", rec.Addrs[0], prog.Entry)
	}
}

// Property: concentration is monotone in the fraction and bounded by
// the working set.
func TestConcentrationProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		addrs := make([]uint32, len(raw))
		for i, a := range raw {
			addrs[i] = a &^ 3 % (1 << 20)
		}
		ws := WorkingSet(addrs, 32)
		c50 := Concentration(addrs, 32, 0.5)
		c99 := Concentration(addrs, 32, 0.99)
		return c50 <= c99 && c99 <= ws && c50 >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	addrs := []uint32{0x1000, 0x1004, 0x1008, 0x2000}
	s := Summary(addrs, 32, 0x1000)
	for _, want := range []string{"fetches", "working set", "concentration", "same-line run", "prefix covers"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestReuseDistances(t *testing.T) {
	// Lines: A B A C B A (32B lines).
	addrs := []uint32{0x00, 0x20, 0x00, 0x40, 0x20, 0x00}
	h := ReuseDistances(addrs, 32)
	// A reused at distance 1 (B touched), B at distance 2 (A, C),
	// A again at distance 2 (C, B).
	if h[1] != 1 || h[2] != 2 {
		t.Errorf("ReuseDistances = %v, want {1:1, 2:2}", h)
	}
}

func TestHitRateAtCapacity(t *testing.T) {
	// A tight two-line loop: after warmup every fetch hits with
	// capacity >= 2.
	var addrs []uint32
	for i := 0; i < 100; i++ {
		addrs = append(addrs, 0x00, 0x20)
	}
	if hr := HitRateAtCapacity(addrs, 32, 2); hr < 0.98 {
		t.Errorf("hit rate at capacity 2 = %.3f, want ~0.99", hr)
	}
	if hr := HitRateAtCapacity(addrs, 32, 1); hr > 0.01 {
		t.Errorf("hit rate at capacity 1 = %.3f, want ~0 (alternating lines)", hr)
	}
	// Monotone in capacity.
	if HitRateAtCapacity(addrs, 32, 4) < HitRateAtCapacity(addrs, 32, 2) {
		t.Error("hit rate not monotone in capacity")
	}
}
