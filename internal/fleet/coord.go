package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
)

// Metric names the coordinator registers on the installed registry.
// The per-backend families are labelled with the backend's name, so a
// scrape shows how load, latency and cache warmth distribute across
// the ring.
const (
	// MetricBatches: batches accepted (sync and async).
	MetricBatches = "fleet_batches_total"
	// MetricRejected: batches the coordinator refused with 429
	// (its own queue full, or every owner busy past the retry budget).
	MetricRejected = "fleet_rejected_total"
	// MetricOverQuota: batches refused because the submitting tenant
	// was already running TenantSlots batches through this coordinator.
	MetricOverQuota = "fleet_over_quota_total"
	// MetricInflight: batches currently being scattered or merged.
	MetricInflight = "fleet_inflight_batches"
	// MetricSubBatches: per-backend sub-batches dispatched.
	MetricSubBatches = "fleet_subbatches_total"
	// MetricFailovers: sub-batches rerouted to a successor ring node
	// after their owner failed.
	MetricFailovers = "fleet_failovers_total"
	// MetricBackendRequests / MetricBackendErrors / MetricBackendNS:
	// per-backend request counts, hard failures and round-trip latency.
	MetricBackendRequests = "fleet_backend_requests_total"
	MetricBackendErrors   = "fleet_backend_errors_total"
	MetricBackendNS       = "fleet_backend_request_ns"
	// MetricBackendHits / MetricBackendMisses: cells a backend answered
	// from its warm cache vs cells it had to simulate — summed across
	// the ring they are the fleet-wide hit ratio, and per backend they
	// show whether sharding is keeping each key's repeats on one node.
	MetricBackendHits   = "fleet_backend_cell_hits_total"
	MetricBackendMisses = "fleet_backend_cell_misses_total"
)

// Options configures a Coordinator.
type Options struct {
	// Backends are the wpserved base URLs forming the ring; required.
	Backends []string
	// Registry, when non-nil, receives the fleet_* instruments and is
	// re-exposed at GET /metrics.
	Registry *obs.Registry
	// VNodes is the ring's virtual-node count per backend; <= 0 means
	// DefaultVNodes.
	VNodes int
	// QueueDepth bounds concurrently coordinated batches; further
	// POSTs get 429. Default 64 (a coordinator only scatters and
	// merges, so its slots are much cheaper than a backend's).
	QueueDepth int
	// TenantSlots bounds how many batches one tenant may have in
	// flight through the coordinator at once; beyond it the tenant
	// gets 429 over_quota while other tenants keep their share of
	// QueueDepth. 0 disables per-tenant limiting (pre-tenancy
	// behaviour). The deeper weighted-fair queueing happens on the
	// backends — the coordinator only caps, it does not reorder.
	TenantSlots int
	// Tenant, when non-empty, overrides the identity the coordinator
	// forwards to its backends for ALL traffic — a fleet owned by one
	// team. Normally empty: each client's own X-WP-Tenant (or derived
	// remote address) is forwarded instead.
	Tenant api.Tenant
	// MaxBatchCells bounds the cells of one incoming batch. Default
	// 4096. It must not exceed the backends' own limit: a sub-batch is
	// never larger than its batch.
	MaxBatchCells int
	// Failover is how many successor ring nodes a sub-batch tries
	// after its owner hard-fails (connection refused, 5xx). 429s are
	// NOT failed over — they are retried against the owner with its
	// Retry-After hint and then propagated, preserving the
	// one-cell-one-backend cache affinity. Default 1; negative
	// disables failover.
	Failover int
	// BackendRetries bounds per-attempt 429 retries against one
	// backend. Default 4.
	BackendRetries int
	// BackendRetryBackoff caps how much of a backend's Retry-After
	// hint the coordinator honours per retry. Default 250ms.
	BackendRetryBackoff time.Duration
	// RetryAfter is the coordinator's own 429 backoff hint. Default 1s.
	RetryAfter time.Duration
	// JobTTL is how long a finished async job stays pollable. 0 means
	// 10 minutes; negative disables eviction.
	JobTTL time.Duration
	// HealthTimeout bounds each backend probe of GET /healthz.
	// Default 2s.
	HealthTimeout time.Duration
	// HTTP is the client used for backend traffic; nil means a
	// keep-alive pooled transport (serve.NewTransport) sized so a full
	// queue of concurrent sub-batches reuses connections.
	HTTP *http.Client
}

// backend is one ring member plus its client and instruments.
type backend struct {
	name   string // metric label: the URL without its scheme
	url    string
	health *serve.Client

	requests *obs.Counter
	errors   *obs.Counter
	reqNS    *obs.Histogram
	hits     *obs.Counter
	misses   *obs.Counter
}

// Coordinator scatters v1 batches over a consistent-hash ring of
// wpserved backends and gathers the answers. It speaks the identical
// wire surface a single wpserved does — POST /v1/runs (sync and
// async), GET /v1/runs/{id}, /healthz, /metrics — so serve.Client and
// RemoteRunner point at it unchanged.
type Coordinator struct {
	opt      Options
	ring     *Ring
	backends []*backend
	httpc    *http.Client

	jobs sync.Map // coordinator job id -> *fleetJob
	wg   sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	stopped   bool
	evictions map[string]*time.Timer
	slots     chan struct{}
	// tenantHeld counts in-flight batches per tenant under mu.
	// Entries are deleted the moment they reach zero, so an
	// adversarial flood of unique tenants leaves nothing behind.
	tenantHeld map[string]int

	batches    *obs.Counter
	rejected   *obs.Counter
	overQuota  *obs.Counter
	subbatches *obs.Counter
	failovers  *obs.Counter
	inflight   *obs.Gauge
}

// New builds a coordinator over the given backend URLs.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Backends) == 0 {
		return nil, errors.New("fleet: Options.Backends is required")
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 64
	}
	if opt.MaxBatchCells <= 0 {
		opt.MaxBatchCells = 4096
	}
	if opt.BackendRetries <= 0 {
		opt.BackendRetries = 4
	}
	if opt.BackendRetryBackoff <= 0 {
		opt.BackendRetryBackoff = 250 * time.Millisecond
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	if opt.JobTTL == 0 {
		opt.JobTTL = 10 * time.Minute
	}
	if opt.HealthTimeout <= 0 {
		opt.HealthTimeout = 2 * time.Second
	}
	ring, err := NewRing(opt.Backends, opt.VNodes)
	if err != nil {
		return nil, err
	}
	httpc := opt.HTTP
	if httpc == nil {
		httpc = &http.Client{Transport: serve.NewTransport(opt.QueueDepth * 2)}
	}
	c := &Coordinator{
		opt:        opt,
		ring:       ring,
		httpc:      httpc,
		evictions:  make(map[string]*time.Timer),
		slots:      make(chan struct{}, opt.QueueDepth),
		tenantHeld: make(map[string]int),
		batches:    opt.Registry.Counter(MetricBatches),
		rejected:   opt.Registry.Counter(MetricRejected),
		overQuota:  opt.Registry.Counter(MetricOverQuota),
		subbatches: opt.Registry.Counter(MetricSubBatches),
		failovers:  opt.Registry.Counter(MetricFailovers),
		inflight:   opt.Registry.Gauge(MetricInflight),
	}
	for _, url := range opt.Backends {
		name := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
		c.backends = append(c.backends, &backend{
			name:     name,
			url:      strings.TrimRight(url, "/"),
			health:   &serve.Client{BaseURL: url, HTTP: httpc},
			requests: opt.Registry.Counter(obs.LabeledName(MetricBackendRequests, "backend", name)),
			errors:   opt.Registry.Counter(obs.LabeledName(MetricBackendErrors, "backend", name)),
			reqNS:    opt.Registry.Histogram(obs.LabeledName(MetricBackendNS, "backend", name)),
			hits:     opt.Registry.Counter(obs.LabeledName(MetricBackendHits, "backend", name)),
			misses:   opt.Registry.Counter(obs.LabeledName(MetricBackendMisses, "backend", name)),
		})
	}
	return c, nil
}

// Ring returns the coordinator's hash ring (read-only).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Handler returns the route mux — the same shape as serve.Server's.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", c.handleRuns)
	mux.HandleFunc("GET /v1/runs/{id}", c.handleJob)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// Shutdown refuses new batches and waits for in-flight scatters to
// finish, then stops the job-eviction timers.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	defer c.stopEvictions()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: shutdown: %w", ctx.Err())
	}
}

// coordVerdict is the coordinator's admission answer: admitted, the
// tenant's own cap hit (over_quota), or global capacity / draining
// (queue_full).
type coordVerdict int

const (
	coordOK coordVerdict = iota
	coordOverQuota
	coordQueueFull
)

func (c *Coordinator) acquire(tenant string) coordVerdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return coordQueueFull
	}
	// The per-tenant cap is checked before the global pool so a hog
	// saturating its own quota never reads as fleet-wide backpressure
	// — unless the quota IS the whole pool, where the global answer
	// stays the honest one.
	if c.opt.TenantSlots > 0 && c.opt.TenantSlots < c.opt.QueueDepth &&
		c.tenantHeld[tenant] >= c.opt.TenantSlots {
		return coordOverQuota
	}
	select {
	case c.slots <- struct{}{}:
		c.tenantHeld[tenant]++
		c.wg.Add(1)
		c.inflight.Add(1)
		return coordOK
	default:
		return coordQueueFull
	}
}

func (c *Coordinator) release(tenant string) {
	c.mu.Lock()
	if n := c.tenantHeld[tenant] - 1; n > 0 {
		c.tenantHeld[tenant] = n
	} else {
		delete(c.tenantHeld, tenant)
	}
	c.mu.Unlock()
	<-c.slots
	c.wg.Done()
	c.inflight.Add(-1)
}

// resolveTenant decides the identity a request is accounted and
// forwarded under: Options.Tenant when the whole coordinator is
// pinned to one, otherwise the client's explicit X-WP-Tenant header,
// otherwise its remote address. echo is non-empty only for an
// explicitly named tenant — derived defaults never appear on the
// wire back to the client.
func (c *Coordinator) resolveTenant(r *http.Request) (tenant, echo string, err error) {
	if c.opt.Tenant != "" {
		return string(c.opt.Tenant), "", nil
	}
	t, explicit, err := api.ResolveTenant(r.Header.Get(api.TenantHeader), r.RemoteAddr)
	if err != nil {
		return "", "", err
	}
	if explicit {
		echo = string(t)
	}
	return string(t), echo, nil
}

func (c *Coordinator) handleRuns(w http.ResponseWriter, r *http.Request) {
	tenant, echo, terr := c.resolveTenant(r)
	if terr != nil {
		c.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error:  "invalid " + api.TenantHeader + " header",
			Code:   api.CodeInvalidRequest,
			Fields: []api.FieldError{{Field: api.TenantHeader, Message: terr.Error()}},
		})
		return
	}
	var breq api.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&breq); err != nil {
		c.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error: "malformed JSON: " + err.Error(), Code: api.CodeInvalidRequest,
		})
		return
	}
	if breq.APIVersion != "" && breq.APIVersion != api.Version {
		c.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error: fmt.Sprintf("api_version %q not supported (coordinator speaks %q)", breq.APIVersion, api.Version),
			Code:  api.CodeUnsupportedVersion,
		})
		return
	}
	if len(breq.Requests) == 0 {
		c.writeError(w, http.StatusBadRequest, api.ErrorResponse{
			Error:  "empty batch",
			Code:   api.CodeInvalidRequest,
			Fields: []api.FieldError{{Field: "requests", Message: "must contain at least one run request"}},
		})
		return
	}
	if len(breq.Requests) > c.opt.MaxBatchCells {
		c.rejected.Inc()
		c.writeError(w, http.StatusTooManyRequests, api.ErrorResponse{
			Error: fmt.Sprintf("batch of %d cells exceeds the coordinator limit of %d; split the sweep",
				len(breq.Requests), c.opt.MaxBatchCells),
			Code: api.CodeBatchTooLarge,
		})
		return
	}
	// Validate centrally — a batch either shards cleanly or fails with
	// the same field-level 400 a single backend would give. Validation
	// also yields the canonical keys the ring routes by.
	specs, err := api.ToSpecs(breq.Requests)
	if err != nil {
		resp := api.ErrorResponse{Error: "invalid batch", Code: api.CodeInvalidRequest}
		if verr, ok := err.(*api.ValidationError); ok {
			resp.Fields = verr.Fields
		} else {
			resp.Error = err.Error()
		}
		c.writeError(w, http.StatusBadRequest, resp)
		return
	}
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key()
	}
	subs := api.SplitBatch(breq.Requests, c.ring.Len(), func(i int) int { return c.ring.Owner(keys[i]) })

	switch c.acquire(tenant) {
	case coordOverQuota:
		c.rejected.Inc()
		c.overQuota.Inc()
		c.writeBusy(w, fmt.Sprintf("tenant %q over quota on this coordinator", tenant),
			api.CodeOverQuota, c.opt.RetryAfter)
		return
	case coordQueueFull:
		c.rejected.Inc()
		c.writeBusy(w, "coordinator at capacity", api.CodeQueueFull, c.opt.RetryAfter)
		return
	}
	defer c.release(tenant)
	c.batches.Inc()

	if breq.Async {
		c.startAsync(w, r.Context(), tenant, echo, &breq, subs, keys)
		return
	}

	outs := c.scatter(r.Context(), tenant, &breq, subs, keys, false)
	if retry, code, busy := busyOutcome(outs); busy {
		c.rejected.Inc()
		c.writeBusy(w, "fleet at capacity", code, retry)
		return
	}
	resp := mergeOutcomes(breq.Requests, subs, outs)
	resp.Tenant = echo
	c.writeBatchResponse(w, http.StatusOK, resp)
}

// subOutcome is one sub-batch's scatter result.
type subOutcome struct {
	resp    *api.BatchResponse // nil when the sub-batch failed
	err     error              // terminal error when resp is nil
	busy    *serve.BusyError   // set when the terminal error was a retryable 429
	backend int                // backend index that answered (post-failover)
}

// scatter dispatches every sub-batch to its ring owner concurrently
// and waits for all of them. The resolved tenant rides along as the
// X-WP-Tenant header of every sub-request, so each backend's own
// quota and weighted-fair scheduler sees the originating client, not
// the coordinator's address. async selects the backend-side execution
// mode (the 202 responses then carry each backend's sub job id).
func (c *Coordinator) scatter(ctx context.Context, tenant string, breq *api.BatchRequest, subs []api.SubBatch, keys []string, async bool) []subOutcome {
	outs := make([]subOutcome, len(subs))
	var wg sync.WaitGroup
	for si := range subs {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			outs[si] = c.runSub(ctx, tenant, breq, subs[si], keys, async)
		}(si)
	}
	wg.Wait()
	return outs
}

// runSub sends one sub-batch to its owner, retrying 429s against the
// same backend with its Retry-After hint, and failing over to up to
// Options.Failover successor ring nodes only on hard errors
// (connection failures, 5xx). Busy owners are NOT failed over: moving
// a saturated shard's keys to its neighbour would simulate them a
// second time and melt the neighbour too — backpressure propagates to
// the client instead.
func (c *Coordinator) runSub(ctx context.Context, tenant string, breq *api.BatchRequest, sub api.SubBatch, keys []string, async bool) subOutcome {
	body, err := json.Marshal(api.BatchRequest{
		APIVersion: api.Version,
		Requests:   sub.Requests,
		Async:      async,
		Coalesce:   breq.Coalesce,
	})
	if err != nil {
		return subOutcome{err: err}
	}
	seq := c.ring.Sequence(keys[sub.Indices[0]], 1+max(0, c.opt.Failover))
	var last subOutcome
	for ai, bi := range seq {
		if ai > 0 {
			c.failovers.Inc()
		}
		c.subbatches.Inc()
		b := c.backends[bi]
		resp, err := c.trySubmit(ctx, b, tenant, body)
		if err == nil {
			if !async {
				c.countCells(b, resp)
			}
			return subOutcome{resp: resp, backend: bi}
		}
		var busy *serve.BusyError
		if errors.As(err, &busy) && !busy.Permanent {
			// The owner is alive but saturated: propagate its hint.
			return subOutcome{err: err, busy: busy}
		}
		last = subOutcome{err: fmt.Errorf("fleet: backend %s: %w", b.name, err)}
		if ctx.Err() != nil {
			break
		}
	}
	return last
}

// trySubmit performs one sub-batch POST against one backend with a
// bounded 429-retry loop honouring Retry-After (capped at
// BackendRetryBackoff so a deep hint cannot park a sync caller).
func (c *Coordinator) trySubmit(ctx context.Context, b *backend, tenant string, body []byte) (*api.BatchResponse, error) {
	for attempt := 0; ; attempt++ {
		status, resp, busy, err := c.exchange(ctx, b, http.MethodPost, "/v1/runs", tenant, body)
		switch {
		case err != nil:
			return nil, err
		case status == http.StatusOK || status == http.StatusAccepted:
			return resp, nil
		case status != http.StatusTooManyRequests:
			return nil, fmt.Errorf("unexpected status %d", status)
		case busy.Permanent:
			return nil, busy
		case attempt >= c.opt.BackendRetries:
			return nil, &serve.BusyError{
				Msg: "backend busy past the retry budget", Code: busy.Code, RetryAfter: busy.RetryAfter,
			}
		}
		backoff := busy.RetryAfter
		if backoff > c.opt.BackendRetryBackoff {
			backoff = c.opt.BackendRetryBackoff
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// exchange is one instrumented HTTP round trip to a backend, sent
// under the given tenant identity (empty adds no header). 200/202
// parse into a BatchResponse; 429 returns the decoded BusyError
// (code, retryability, Retry-After hint); 5xx and transport failures
// return errors (the failover triggers).
func (c *Coordinator) exchange(ctx context.Context, b *backend, method, path, tenant string, body []byte) (int, *api.BatchResponse, *serve.BusyError, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set(api.TenantHeader, tenant)
	}
	b.requests.Inc()
	start := time.Now()
	httpResp, err := c.httpc.Do(req)
	if err != nil {
		b.reqNS.ObserveSince(start)
		b.errors.Inc()
		return 0, nil, nil, err
	}
	defer httpResp.Body.Close()
	switch httpResp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var resp api.BatchResponse
		derr := json.NewDecoder(httpResp.Body).Decode(&resp)
		// Drain the residual body (trailing newline, chunk terminator)
		// so the transport sees EOF and pools the connection.
		io.Copy(io.Discard, httpResp.Body)
		b.reqNS.ObserveSince(start)
		if derr != nil {
			b.errors.Inc()
			return httpResp.StatusCode, nil, nil, fmt.Errorf("decoding %d body: %w", httpResp.StatusCode, derr)
		}
		if resp.APIVersion != api.Version {
			b.errors.Inc()
			return httpResp.StatusCode, nil, nil, fmt.Errorf("backend speaks api %q, coordinator %q", resp.APIVersion, api.Version)
		}
		return httpResp.StatusCode, &resp, nil, nil
	case http.StatusTooManyRequests:
		var eresp api.ErrorResponse
		json.NewDecoder(io.LimitReader(httpResp.Body, 4096)).Decode(&eresp)
		io.Copy(io.Discard, httpResp.Body)
		b.reqNS.ObserveSince(start)
		retry, hinted := api.ParseRetryAfter(httpResp.Header.Get("Retry-After"), time.Now())
		// Coded answers state retryability; pre-code backends are read
		// by their Retry-After hint, where absence means permanent.
		ok := hinted
		if eresp.Code != "" {
			ok = eresp.Retryable
		}
		msg := eresp.Error
		if msg == "" {
			msg = "backend rejected the sub-batch"
		}
		return httpResp.StatusCode, nil,
			&serve.BusyError{Msg: msg, Code: eresp.Code, RetryAfter: retry, Permanent: !ok}, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, httpResp.Body)
		b.reqNS.ObserveSince(start)
		return httpResp.StatusCode, nil, nil, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		b.reqNS.ObserveSince(start)
		b.errors.Inc()
		return httpResp.StatusCode, nil, nil,
			fmt.Errorf("%s %s: status %d: %s", method, path, httpResp.StatusCode, bytes.TrimSpace(msg))
	}
}

// countCells books each answered cell on the backend's hit/miss
// series. Summed across backends these are the fleet-wide cache
// ratio; a healthy ring shows every repeat key as a hit on exactly
// one backend.
func (c *Coordinator) countCells(b *backend, resp *api.BatchResponse) {
	for i := range resp.Results {
		if resp.Results[i].Stats == nil {
			continue
		}
		if resp.Results[i].CacheHit {
			b.hits.Inc()
		} else {
			b.misses.Inc()
		}
	}
}

// busyOutcome decides whether a scatter should surface as coordinator
// backpressure: at least one sub-batch ended busy-retryable and none
// hard-failed. The propagated Retry-After is the largest hint any
// backend sent, and the propagated code is the most global condition
// observed — one backend's queue_full dominates another's over_quota,
// since resubmitting cannot help while any owner's pool is full.
// (Results already gathered are discarded — they are warm on their
// backends, so the client's resubmission re-collects them as pure
// cache hits.)
func busyOutcome(outs []subOutcome) (time.Duration, string, bool) {
	var retry time.Duration
	code := ""
	busy := false
	for _, o := range outs {
		if o.resp == nil && o.busy == nil {
			return 0, "", false // a hard failure: report per-cell errors instead
		}
		if o.busy != nil {
			busy = true
			if o.busy.RetryAfter > retry {
				retry = o.busy.RetryAfter
			}
			if code != api.CodeQueueFull {
				if o.busy.Code == api.CodeQueueFull || o.busy.Code == api.CodeOverQuota {
					code = o.busy.Code
				}
			}
		}
	}
	if code == "" && busy {
		code = api.CodeQueueFull
	}
	return retry, code, busy
}

// mergeOutcomes reassembles sub-batch responses into the batch answer
// in original cell order, stamping the batch's own deterministic job
// id.
func mergeOutcomes(reqs []api.RunRequest, subs []api.SubBatch, outs []subOutcome) *api.BatchResponse {
	resps := make([]*api.BatchResponse, len(outs))
	errs := make([]error, len(outs))
	for i, o := range outs {
		resps[i], errs[i] = o.resp, o.err
	}
	resp := api.MergeSubResponses(len(reqs), subs, resps, errs)
	resp.JobID = api.BatchKey(reqs)
	return resp
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
