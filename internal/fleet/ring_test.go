package fleet_test

import (
	"fmt"
	"testing"

	"wayplace/internal/fleet"
	"wayplace/internal/load"
)

// poolKeys is the canonical wpload key population the ring is judged
// against: the same Pool construction the load harness draws batches
// from, widened to enough workloads and WP sizes that per-backend
// counts are statistically meaningful.
func poolKeys(t testing.TB, workloads int) []string {
	t.Helper()
	sizes := []uint32{512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}
	pool := load.Pool(load.SyntheticNames(workloads), load.SyntheticGeometry(), sizes)
	keys := make([]string, len(pool))
	for i, r := range pool {
		keys[i] = r.Key()
		if keys[i] == "" {
			t.Fatalf("pool request %d has no canonical key: %+v", i, r)
		}
	}
	return keys
}

func backendNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return names
}

// TestRingBalance: over the canonical wpload pool keys, every backend
// of a 4- to 16-backend ring holds within ±25% of the ideal share.
func TestRingBalance(t *testing.T) {
	keys := poolKeys(t, 768) // 768 workloads x 8 cells = 6144 keys
	for _, n := range []int{4, 8, 12, 16} {
		ring, err := fleet.NewRing(backendNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		ideal := float64(len(keys)) / float64(n)
		for b, c := range counts {
			if dev := float64(c)/ideal - 1; dev < -0.25 || dev > 0.25 {
				t.Errorf("%d backends: backend %d holds %d keys (ideal %.1f, deviation %+.0f%%)",
					n, b, c, ideal, dev*100)
			}
		}
		if t.Failed() {
			t.Logf("%d backends: counts %v", n, counts)
		}
	}
}

// TestRingMinimalMovement: adding or removing one backend moves fewer
// than 35% of the keys — the consistent-hashing property that keeps
// most of the fleet-wide warm cache valid across a resize.
func TestRingMinimalMovement(t *testing.T) {
	keys := poolKeys(t, 192)
	for _, n := range []int{4, 8, 15} {
		small, err := fleet.NewRing(backendNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		big, err := fleet.NewRing(backendNames(n+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		// Compare by name: the shared backends keep their names in
		// both rings, so a key is "moved" iff its owning name changed.
		smallNames, bigNames := small.Backends(), big.Backends()
		moved := 0
		for _, k := range keys {
			if smallNames[small.Owner(k)] != bigNames[big.Owner(k)] {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		if frac >= 0.35 {
			t.Errorf("%d->%d backends: %.0f%% of keys moved, want <35%%", n, n+1, frac*100)
		}
		// And every key that moved must have moved TO the new backend
		// when growing — a grown ring never reshuffles between old
		// backends.
		for _, k := range keys {
			if o, b := smallNames[small.Owner(k)], bigNames[big.Owner(k)]; o != b && b != bigNames[n] {
				t.Fatalf("%d->%d backends: key moved between surviving backends (%s -> %s)", n, n+1, o, b)
			}
		}
	}
}

func TestRingSequenceDistinctAndOwnerFirst(t *testing.T) {
	ring, err := fleet.NewRing(backendNames(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range poolKeys(t, 8) {
		seq := ring.Sequence(k, 3)
		if len(seq) != 3 {
			t.Fatalf("sequence length %d, want 3", len(seq))
		}
		if seq[0] != ring.Owner(k) {
			t.Fatalf("sequence %v does not start at owner %d", seq, ring.Owner(k))
		}
		seen := map[int]bool{}
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("sequence %v repeats backend %d", seq, b)
			}
			seen[b] = true
		}
	}
	// n clamps to the backend count.
	if got := ring.Sequence("anything", 99); len(got) != 5 {
		t.Fatalf("clamped sequence length %d, want 5", len(got))
	}
}

func TestRingRejectsBadBackends(t *testing.T) {
	if _, err := fleet.NewRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := fleet.NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty backend name accepted")
	}
	if _, err := fleet.NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate backend accepted")
	}
}

func TestRingDeterministicAcrossConstructions(t *testing.T) {
	a, _ := fleet.NewRing(backendNames(6), 64)
	b, _ := fleet.NewRing(backendNames(6), 64)
	for _, k := range poolKeys(t, 8) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across identical rings", k)
		}
	}
}
