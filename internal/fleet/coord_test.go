package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/engine"
	"wayplace/internal/fleet"
	"wayplace/internal/load"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
	"wayplace/internal/sim"
)

// startBackends boots n in-process wpserved instances over the same
// synthetic workload set.
func startBackends(t *testing.T, n, workloads int) []*load.Loopback {
	t.Helper()
	backs := make([]*load.Loopback, n)
	for i := range backs {
		lb, err := load.StartLoopback(load.LoopbackOptions{Workloads: workloads})
		if err != nil {
			t.Fatalf("backend %d: %v", i, err)
		}
		backs[i] = lb
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			lb.Close(ctx)
		})
	}
	return backs
}

func startCoordinator(t *testing.T, backs []*load.Loopback, opt fleet.Options) (*fleet.Coordinator, *httptest.Server) {
	t.Helper()
	if opt.Backends == nil {
		for _, lb := range backs {
			opt.Backends = append(opt.Backends, lb.URL)
		}
	}
	c, err := fleet.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, srv
}

// testPool is the canonical wpload cell pool over w workloads.
func testPool(w int) []api.RunRequest {
	return load.Pool(load.SyntheticNames(w), load.SyntheticGeometry(),
		[]uint32{1 << 10, 4 << 10, 8 << 10, 16 << 10})
}

// directRun executes the same cells on a plain local engine — the
// ground truth a fleet answer must match.
func directRun(t *testing.T, workloads int, reqs []api.RunRequest) []*engine.Result {
	t.Helper()
	specs, err := api.ToSpecs(reqs)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(load.SyntheticProvider(workloads), engine.WithBaseConfig(sim.Default()))
	results, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// assertIdentical checks a fleet batch answer cell-by-cell against the
// direct engine run: same order, same canonical keys, same stats.
func assertIdentical(t *testing.T, reqs []api.RunRequest, resp *api.BatchResponse, direct []*engine.Result) {
	t.Helper()
	if resp.Status != api.StatusDone || len(resp.Errors) != 0 {
		t.Fatalf("batch status %q errors %v, want done/none", resp.Status, resp.Errors)
	}
	if len(resp.Results) != len(reqs) {
		t.Fatalf("%d results for %d cells", len(resp.Results), len(reqs))
	}
	specs, _ := api.ToSpecs(reqs)
	for i, rr := range resp.Results {
		if rr.Key != specs[i].Key() {
			t.Fatalf("cell %d out of order: key %q want %q", i, rr.Key, specs[i].Key())
		}
		if rr.Stats == nil || !reflect.DeepEqual(rr.Stats, direct[i].Stats) {
			t.Fatalf("cell %d stats differ from direct run:\n fleet: %+v\ndirect: %+v", i, rr.Stats, direct[i].Stats)
		}
	}
}

// spread counts how many backends simulated at least one cell.
func spread(backs []*load.Loopback) int {
	n := 0
	for _, lb := range backs {
		if lb.Engine.Misses() > 0 {
			n++
		}
	}
	return n
}

func sumMisses(backs []*load.Loopback) uint64 {
	var n uint64
	for _, lb := range backs {
		n += lb.Engine.Misses()
	}
	return n
}

func TestCoordinatorSyncIdenticalToDirectRun(t *testing.T) {
	const workloads = 4
	backs := startBackends(t, 3, workloads)
	_, srv := startCoordinator(t, backs, fleet.Options{})
	reqs := testPool(workloads)
	direct := directRun(t, workloads, reqs)

	client := serve.NewClient(srv.URL)
	resp, err := client.Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, reqs, resp, direct)
	if resp.JobID != api.BatchKey(reqs) {
		t.Errorf("job id %q, want deterministic %q", resp.JobID, api.BatchKey(reqs))
	}
	if s := spread(backs); s < 2 {
		t.Errorf("batch landed on %d backend(s), want the ring to spread it over >= 2", s)
	}
	if got, want := sumMisses(backs), uint64(len(reqs)); got != want {
		t.Errorf("fleet simulated %d cells for %d unique cells", got, want)
	}
}

func TestCoordinatorOncePerFleetAcrossRepeats(t *testing.T) {
	const workloads = 4
	backs := startBackends(t, 3, workloads)
	_, srv := startCoordinator(t, backs, fleet.Options{})
	reqs := testPool(workloads)
	client := serve.NewClient(srv.URL)
	for round := 0; round < 3; round++ {
		resp, err := client.Run(context.Background(), reqs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if resp.Status != api.StatusDone {
			t.Fatalf("round %d: status %q", round, resp.Status)
		}
		if round > 0 {
			for i, rr := range resp.Results {
				if !rr.CacheHit {
					t.Fatalf("round %d: cell %d re-simulated — repeat keys must hit the same backend's cache", round, i)
				}
			}
		}
	}
	if got, want := sumMisses(backs), uint64(len(reqs)); got != want {
		t.Errorf("fleet simulated %d cells over 3 rounds, want exactly %d (once per fleet)", got, want)
	}
}

func postBatch(t *testing.T, url string, breq api.BatchRequest) (*http.Response, *api.BatchResponse) {
	t.Helper()
	breq.APIVersion = api.Version
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp api.BatchResponse
	if httpResp.StatusCode == http.StatusOK || httpResp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	return httpResp, &resp
}

func TestCoordinatorAsyncIdenticalToDirectRun(t *testing.T) {
	const workloads = 4
	backs := startBackends(t, 3, workloads)
	_, srv := startCoordinator(t, backs, fleet.Options{})
	reqs := testPool(workloads)
	direct := directRun(t, workloads, reqs)

	httpResp, shell := postBatch(t, srv.URL, api.BatchRequest{Requests: reqs, Async: true})
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d, want 202", httpResp.StatusCode)
	}
	if shell.JobID != api.BatchKey(reqs) {
		t.Fatalf("async job id %q, want %q", shell.JobID, api.BatchKey(reqs))
	}

	deadline := time.Now().Add(30 * time.Second)
	var final *api.BatchResponse
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in 30s")
		}
		httpResp, err := http.Get(srv.URL + "/v1/runs/" + shell.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var resp api.BatchResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", httpResp.StatusCode)
		}
		if resp.Status == api.StatusDone || resp.Status == api.StatusFailed {
			final = &resp
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	assertIdentical(t, reqs, final, direct)
	if got, want := sumMisses(backs), uint64(len(reqs)); got != want {
		t.Errorf("fleet simulated %d cells for %d unique cells", got, want)
	}

	// A duplicate async submission attaches to the finished job.
	httpResp2, dup := postBatch(t, srv.URL, api.BatchRequest{Requests: reqs, Async: true})
	if httpResp2.StatusCode != http.StatusAccepted || dup.Status != api.StatusDone {
		t.Errorf("duplicate submit: status %d job status %q, want 202/done", httpResp2.StatusCode, dup.Status)
	}
}

func TestCoordinatorFailsOverDeadBackend(t *testing.T) {
	const workloads = 4
	backs := startBackends(t, 2, workloads)
	// A dead third backend: reserve a port, then close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	reg := obs.NewRegistry()
	_, srv := startCoordinator(t, backs, fleet.Options{
		Backends: []string{backs[0].URL, backs[1].URL, deadURL},
		Registry: reg,
		Failover: 1,
	})
	reqs := testPool(workloads)
	direct := directRun(t, workloads, reqs)

	resp, err := serve.NewClient(srv.URL).Run(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, reqs, resp, direct)
	if v := reg.Counter(fleet.MetricFailovers).Value(); v == 0 {
		t.Error("no failovers recorded despite a dead ring member")
	}
}

func TestCoordinatorReportsCellFailuresWithoutFailover(t *testing.T) {
	const workloads = 4
	backs := startBackends(t, 2, workloads)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	_, srv := startCoordinator(t, backs, fleet.Options{
		Backends: []string{backs[0].URL, backs[1].URL, deadURL},
		Failover: -1, // disabled
	})
	reqs := testPool(workloads)
	httpResp, resp := postBatch(t, srv.URL, api.BatchRequest{Requests: reqs})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with per-cell failures", httpResp.StatusCode)
	}
	if resp.Status != api.StatusFailed || len(resp.Errors) == 0 {
		t.Fatalf("status %q with %d failures, want failed batch naming the dead backend's cells",
			resp.Status, len(resp.Errors))
	}
	if len(resp.Errors) == len(reqs) {
		t.Fatalf("every cell failed; only the dead backend's shard should")
	}
	for _, f := range resp.Errors {
		if resp.Results[f.Index].Stats != nil {
			t.Errorf("failed cell %d carries stats", f.Index)
		}
	}
}

// TestCoordinatorPropagatesBusy: when a shard owner keeps answering
// 429+Retry-After past the retry budget, the coordinator answers 429
// with the backend's hint — backpressure, not failover, so the warm
// shard placement survives overload.
func TestCoordinatorPropagatesBusy(t *testing.T) {
	attempts := 0
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "backend saturated", RetryAfterSeconds: 7})
	}))
	defer busy.Close()

	_, srv := startCoordinator(t, nil, fleet.Options{
		Backends:            []string{busy.URL},
		BackendRetries:      2,
		BackendRetryBackoff: time.Millisecond,
	})
	reqs := testPool(1)
	httpResp, _ := postBatch(t, srv.URL, api.BatchRequest{Requests: reqs})
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", httpResp.StatusCode)
	}
	if got := httpResp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q, want the backend's hint 7", got)
	}
	if attempts != 3 { // 1 try + BackendRetries
		t.Errorf("backend saw %d attempts, want 3", attempts)
	}
}

func TestCoordinatorValidatesLikeABackend(t *testing.T) {
	backs := startBackends(t, 1, 2)
	_, srv := startCoordinator(t, backs, fleet.Options{})
	// Invalid cell: no workload.
	bad := api.BatchRequest{Requests: []api.RunRequest{{Scheme: api.SchemeBaseline}}}
	httpResp, _ := postBatch(t, srv.URL, bad)
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid batch got %d, want 400", httpResp.StatusCode)
	}
	// Unknown job.
	resp, err := http.Get(srv.URL + "/v1/runs/job-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job got %d, want 404", resp.StatusCode)
	}
}

func TestCoordinatorHealthAggregatesBackends(t *testing.T) {
	backs := startBackends(t, 2, 2)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, srv := startCoordinator(t, backs, fleet.Options{
		Backends:      []string{backs[0].URL, backs[1].URL, deadURL},
		HealthTimeout: 500 * time.Millisecond,
	})
	httpResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Ring   struct {
			HealthyBackends int      `json:"healthy_backends"`
			Backends        []string `json:"backends"`
		} `json:"ring"`
		Backends []struct {
			Name string `json:"name"`
			OK   bool   `json:"ok"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("status %q, want degraded with one dead backend", h.Status)
	}
	if h.Ring.HealthyBackends != 2 || len(h.Ring.Backends) != 3 || len(h.Backends) != 3 {
		t.Errorf("ring health %+v, want 2 healthy of 3", h)
	}
	okCount := 0
	for _, b := range h.Backends {
		if b.OK {
			okCount++
		}
	}
	if okCount != 2 {
		t.Errorf("%d backends report ok, want 2", okCount)
	}
}

func TestCoordinatorShutdownRefusesNewBatches(t *testing.T) {
	backs := startBackends(t, 1, 2)
	c, srv := startCoordinator(t, backs, fleet.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	httpResp, _ := postBatch(t, srv.URL, api.BatchRequest{Requests: testPool(1)})
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("post-shutdown status %d, want 429", httpResp.StatusCode)
	}
}

func ExampleNewRing() {
	ring, _ := fleet.NewRing([]string{"http://a:8100", "http://b:8100", "http://c:8100"}, 0)
	key := "one-canonical-runspec-key"
	fmt.Println(len(ring.Sequence(key, 2)), ring.Owner(key) == ring.Sequence(key, 2)[0])
	// Output: 2 true
}
