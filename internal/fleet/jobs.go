package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wayplace/internal/api"
)

// maxSubPollFailures is how many consecutive failed polls of one
// backend sub-job are tolerated (network blips, a backend mid-restart
// replaying its journal) before the sub-job's cells are declared
// failed.
const maxSubPollFailures = 3

// fleetSub is one backend's slice of an async fleet job.
type fleetSub struct {
	sub       api.SubBatch
	backend   int    // resolved backend index (post-failover)
	jobID     string // the backend's own job id for this sub-batch
	resp      *api.BatchResponse
	err       error
	pollFails int
}

func (fs *fleetSub) final() bool { return fs.resp != nil || fs.err != nil }

// fleetJob is a scattered async batch: the coordinator holds only the
// routing table (which backend runs which original indices under which
// sub job id); the work and its results live on the backends until a
// poll gathers them.
type fleetJob struct {
	id   string
	reqs []api.RunRequest

	mu    sync.Mutex
	subs  []*fleetSub
	final *api.BatchResponse
}

// startAsync scatters the batch in async mode and answers 202 with the
// coordinator's own deterministic job id (api.BatchKey — the id a
// single wpserved would assign the identical batch). Duplicate
// submissions attach to the existing job; their backend-side
// sub-submissions deduplicate the same way, since sub job ids are
// BatchKeys too.
func (c *Coordinator) startAsync(w http.ResponseWriter, ctx context.Context, tenant, echo string, breq *api.BatchRequest, subs []api.SubBatch, keys []string) {
	id := api.BatchKey(breq.Requests)
	if cur, ok := c.jobs.Load(id); ok {
		snap := cur.(*fleetJob).snapshot()
		if snap.Status != api.StatusFailed {
			c.writeBatchResponse(w, http.StatusAccepted, withTenant(snap, echo))
			return
		}
		// A failed fleet job is retried, not served: drop the corpse
		// and rescatter. The backends apply the same rule to its
		// failed sub-jobs, so the whole path heals on resubmission.
		c.jobs.CompareAndDelete(id, cur)
		c.cancelEviction(id)
	}
	// Detached from the submitter: an accepted async job survives its
	// client hanging up, exactly as on a single wpserved. Scattering
	// under the request context would publish a poisoned
	// permanently-failed job under this batch's deterministic id the
	// moment a submitter disconnects mid-scatter — every later
	// submission of the same batch would then attach to the corpse.
	outs := c.scatter(context.WithoutCancel(ctx), tenant, breq, subs, keys, true)
	if retry, code, busy := busyOutcome(outs); busy {
		c.rejected.Inc()
		c.writeBusy(w, "fleet at capacity", code, retry)
		return
	}
	j := &fleetJob{id: id, reqs: breq.Requests}
	for si, o := range outs {
		fs := &fleetSub{sub: subs[si], backend: o.backend, err: o.err}
		if o.resp != nil {
			fs.jobID = o.resp.JobID
			if done(o.resp.Status) {
				// The backend answered the whole sub-batch from cache
				// before even queueing: gather it now.
				fs.resp = o.resp
				c.countCells(c.backends[o.backend], o.resp)
			}
		}
		j.subs = append(j.subs, fs)
	}
	if cur, loaded := c.jobs.LoadOrStore(id, j); loaded {
		// A concurrent identical submission won the publish; the
		// backends deduplicated our sub-submissions against its.
		c.writeBatchResponse(w, http.StatusAccepted, withTenant(cur.(*fleetJob).snapshot(), echo))
		return
	}
	c.writeBatchResponse(w, http.StatusAccepted, withTenant(j.snapshot(), echo))
}

// withTenant echoes an explicit tenant on a possibly shared response
// via a shallow copy — shared job snapshots are never mutated.
func withTenant(resp *api.BatchResponse, tenant string) *api.BatchResponse {
	if tenant == "" || resp.Tenant == tenant {
		return resp
	}
	cp := *resp
	cp.Tenant = tenant
	return &cp
}

func done(status string) bool {
	return status == api.StatusDone || status == api.StatusFailed
}

// handleJob answers GET /v1/runs/{id}. The coordinator polls lazily:
// each client poll fans a poll out to the backends still holding
// unfinished sub-jobs, and the first poll that finds everything done
// merges and caches the batch answer.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := c.jobs.Load(id)
	if !ok {
		c.writeError(w, http.StatusNotFound, api.ErrorResponse{
			Error: fmt.Sprintf("unknown job %q", id), Code: api.CodeJobUnknown,
		})
		return
	}
	j := v.(*fleetJob)
	if c.pollJob(r.Context(), j) {
		c.scheduleEviction(id)
	}
	// Like a single wpserved, poll answers echo the poller's own
	// explicit tenant — jobs are shared across identical submissions.
	echo := ""
	if c.opt.Tenant == "" {
		if ten, explicit, err := api.ResolveTenant(r.Header.Get(api.TenantHeader), r.RemoteAddr); err == nil && explicit {
			echo = string(ten)
		}
	}
	c.writeBatchResponse(w, http.StatusOK, withTenant(j.snapshot(), echo))
}

// pollJob advances one fleet job: polls every non-final sub-job's
// backend, gathers finished answers, and merges once all subs are
// final. Returns true the one time the job transitions to final (the
// caller arms the eviction timer). Concurrent client polls serialise
// on the job's lock — the backends see one poll stream per job.
func (c *Coordinator) pollJob(ctx context.Context, j *fleetJob) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.final != nil {
		return false
	}
	for _, fs := range j.subs {
		if fs.final() {
			continue
		}
		b := c.backends[fs.backend]
		status, resp, _, err := c.exchange(ctx, b, http.MethodGet, "/v1/runs/"+fs.jobID, "", nil)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				// The polling client hung up — that says nothing about
				// the backend's health, so it spends no failure budget.
				return false
			}
			if fs.pollFails++; fs.pollFails >= maxSubPollFailures {
				fs.err = fmt.Errorf("fleet: backend %s unreachable for %d polls: %w", b.name, fs.pollFails, err)
			}
		case status == http.StatusNotFound:
			// The backend no longer knows the job (evicted, or it lost
			// unjournaled state in a crash). The cells cannot be
			// recovered from here — the client resubmits the batch.
			fs.err = fmt.Errorf("fleet: backend %s forgot job %s; resubmit the batch", b.name, fs.jobID)
		case resp != nil && done(resp.Status):
			fs.pollFails = 0
			fs.resp = resp
			c.countCells(b, resp)
		default:
			fs.pollFails = 0 // still queued or running: healthy
		}
	}
	for _, fs := range j.subs {
		if !fs.final() {
			return false
		}
	}
	outs := make([]subOutcome, len(j.subs))
	subs := make([]api.SubBatch, len(j.subs))
	for i, fs := range j.subs {
		outs[i] = subOutcome{resp: fs.resp, err: fs.err}
		subs[i] = fs.sub
	}
	merged := mergeOutcomes(j.reqs, subs, outs)
	merged.JobID = j.id
	j.final = merged
	return true
}

// snapshot renders the job's poll answer: the merged response once
// final, a status-only shell while sub-jobs are still running.
func (j *fleetJob) snapshot() *api.BatchResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.final != nil {
		return j.final
	}
	return &api.BatchResponse{APIVersion: api.Version, JobID: j.id, Status: api.StatusRunning}
}

// scheduleEviction deletes a finished job after JobTTL; negative TTL
// keeps jobs forever. Timers are tracked so Shutdown can stop them.
func (c *Coordinator) scheduleEviction(id string) {
	if c.opt.JobTTL < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped || c.evictions[id] != nil {
		return
	}
	c.evictions[id] = time.AfterFunc(c.opt.JobTTL, func() {
		c.jobs.Delete(id)
		c.mu.Lock()
		delete(c.evictions, id)
		c.mu.Unlock()
	})
}

// cancelEviction stops one job's eviction timer after the job was
// dropped early (a failed job displaced by a retrying resubmission).
func (c *Coordinator) cancelEviction(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.evictions[id]; ok {
		t.Stop()
		delete(c.evictions, id)
	}
}

func (c *Coordinator) stopEvictions() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
	for id, t := range c.evictions {
		t.Stop()
		delete(c.evictions, id)
	}
}

// handleHealthz aggregates fleet health: the coordinator's own state,
// the ring shape, and a live probe of every backend's /healthz
// (concurrent, bounded by HealthTimeout). Overall status is "ok" only
// when every backend answered.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()

	type backendHealth struct {
		Name   string         `json:"name"`
		OK     bool           `json:"ok"`
		Error  string         `json:"error,omitempty"`
		Detail map[string]any `json:"detail,omitempty"`
	}
	healths := make([]backendHealth, len(c.backends))
	var wg sync.WaitGroup
	for i, b := range c.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.opt.HealthTimeout)
			defer cancel()
			h, err := b.health.Health(ctx)
			bh := backendHealth{Name: b.name, OK: err == nil, Detail: h}
			if err != nil {
				bh.Error = err.Error()
			}
			healths[i] = bh
		}(i, b)
	}
	wg.Wait()

	status := "ok"
	if draining {
		status = "draining"
	}
	healthy := 0
	for _, bh := range healths {
		if bh.OK {
			healthy++
		}
	}
	if healthy < len(healths) && status == "ok" {
		status = "degraded"
	}
	c.writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"api_version": api.Version,
		"role":        "coordinator",
		"queue_depth": c.opt.QueueDepth,
		"inflight":    len(c.slots),
		"ring": map[string]any{
			"backends":         c.ring.Backends(),
			"vnodes":           c.ring.VNodes(),
			"failover":         c.opt.Failover,
			"healthy_backends": healthy,
		},
		"backends": healths,
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if c.opt.Registry == nil {
		http.Error(w, "no metrics registry installed", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		c.opt.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.opt.Registry.WritePrometheus(w)
}

// writeBusy answers 429 with the machine-readable code, the
// Retry-After header and a JSON body mirroring it, exactly as
// wpserved does — clients cannot tell a coordinator's backpressure
// from a single backend's.
func (c *Coordinator) writeBusy(w http.ResponseWriter, msg, code string, retry time.Duration) {
	if retry <= 0 {
		retry = c.opt.RetryAfter
	}
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	c.writeError(w, http.StatusTooManyRequests, api.ErrorResponse{
		Error:             msg,
		Code:              code,
		Retryable:         true,
		RetryAfterSeconds: retry.Seconds(),
	})
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("fleet: response body write failed after headers: %v", err)
	}
}

func (c *Coordinator) writeBatchResponse(w http.ResponseWriter, code int, resp *api.BatchResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := api.EncodeBatchResponse(w, resp); err != nil {
		log.Printf("fleet: response body write failed after headers: %v", err)
	}
}

func (c *Coordinator) writeError(w http.ResponseWriter, code int, resp api.ErrorResponse) {
	c.writeJSON(w, code, resp)
}
