// Package fleet is the sharded-serving layer over wpserved: a
// coordinator that owns a consistent-hash ring of backends, splits
// every incoming batch into per-backend sub-batches keyed by each
// cell's canonical engine.RunSpec.Key(), fans the sub-batches out
// concurrently and merges the answers back into original cell order.
//
// Sharding by canonical key is what turns N independent daemons into
// one logical cache: every repeat of a cell — from any client, ever —
// routes to the same backend, so the fleet simulates a cold cell
// exactly once and serves every later request from that backend's
// warm run cache or persistent store. The ring moves only ~1/(N+1) of
// the key space when a backend joins or leaves, so scaling the fleet
// re-shards the minimum possible slice of the warm set.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per backend. Per-backend
// load deviation shrinks as 1/sqrt(vnodes); 1024 points per backend
// holds the worst backend within ~±15% of the ideal share over the
// canonical wpload key population for 4–16 backends (TestRingBalance
// pins this), at a ring that still binary-searches in nanoseconds and
// costs ~16KB per backend.
const DefaultVNodes = 1024

// Ring is an immutable consistent-hash ring over named backends.
// Build a new one to add or remove backends; lookups are safe for
// concurrent use.
type Ring struct {
	backends []string
	points   []ringPoint // sorted by hash, clockwise
}

type ringPoint struct {
	hash    uint64
	backend int
}

// hash64 maps any string onto the ring's key space. sha256 rather
// than a seeded fast hash so placement is stable across processes,
// architectures and releases — the property that lets N backends and
// a coordinator agree on ownership with zero coordination.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with vnodes virtual points per backend
// (DefaultVNodes when vnodes <= 0). Backend names must be non-empty
// and unique — they are the hash seeds, so renaming a backend moves
// its share of the key space.
func NewRing(backends []string, vnodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one backend")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(backends))
	r := &Ring{
		backends: append([]string(nil), backends...),
		points:   make([]ringPoint, 0, len(backends)*vnodes),
	}
	for i, name := range backends {
		if name == "" {
			return nil, fmt.Errorf("fleet: backend %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate backend %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", name, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by backend index so the
		// ring is still a deterministic function of its inputs.
		return r.points[a].backend < r.points[b].backend
	})
	return r, nil
}

// Backends returns the backend names in construction order.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Len returns the number of backends.
func (r *Ring) Len() int { return len(r.backends) }

// VNodes returns the virtual points per backend.
func (r *Ring) VNodes() int { return len(r.points) / len(r.backends) }

// find locates the first ring point clockwise of the key's hash.
func (r *Ring) find(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the backend index that owns the key: the backend of
// the first virtual point at or clockwise of the key's hash.
func (r *Ring) Owner(key string) int {
	return r.points[r.find(key)].backend
}

// Sequence returns up to n distinct backend indices in failover
// order: the owner first, then each further backend in the order its
// first virtual point appears clockwise. Every backend appears at
// most once; n is clamped to the backend count.
func (r *Ring) Sequence(key string, n int) []int {
	if n > len(r.backends) {
		n = len(r.backends)
	}
	if n <= 0 {
		return nil
	}
	seq := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.find(key); i < len(r.points) && len(seq) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			seq = append(seq, p.backend)
		}
	}
	return seq
}
