package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/fleet"
	"wayplace/internal/obs"
	"wayplace/internal/serve"
	"wayplace/internal/sim"
)

// okBackend is a fake wpserved that records the X-WP-Tenant header of
// every sub-request and answers each cell with synthetic done stats.
// gate, when non-nil, parks every request until the channel yields.
func okBackend(t *testing.T, tenants *[]string, mu *sync.Mutex, gate chan struct{}) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		*tenants = append(*tenants, r.Header.Get(api.TenantHeader))
		mu.Unlock()
		if gate != nil {
			<-gate
		}
		var breq api.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
			t.Errorf("backend decode: %v", err)
		}
		resp := api.BatchResponse{APIVersion: api.Version, Status: api.StatusDone}
		for _, req := range breq.Requests {
			resp.Results = append(resp.Results, api.RunResult{
				Request: req, Key: req.Key(), Stats: &sim.RunStats{Instrs: 1},
			})
		}
		json.NewEncoder(w).Encode(resp)
	}))
}

// TestCoordinatorForwardsTenant: the scattered sub-requests carry the
// client's explicit tenant; a tenant-less client is forwarded under
// its derived remote-address identity, and the response echoes only
// the explicit form.
func TestCoordinatorForwardsTenant(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	back := okBackend(t, &seen, &mu, nil)
	defer back.Close()
	_, srv := startCoordinator(t, nil, fleet.Options{Backends: []string{back.URL}})

	client := serve.NewClient(srv.URL)
	client.Tenant = "team-a"
	resp, err := client.Run(context.Background(), testPool(1)[:2])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "team-a" {
		t.Errorf("coordinator echo = %q, want team-a", resp.Tenant)
	}

	tenantless := serve.NewClient(srv.URL)
	resp, err = tenantless.Run(context.Background(), testPool(1)[:2])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "" {
		t.Errorf("tenant-less echo = %q, want empty", resp.Tenant)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 {
		t.Fatalf("backend saw %d sub-requests, want >= 2", len(seen))
	}
	if seen[0] != "team-a" {
		t.Errorf("first sub-request forwarded tenant %q, want team-a", seen[0])
	}
	// The derived identity is the client's host — loopback here — and
	// it IS forwarded, so backends can fair-share tenant-less clients.
	if last := seen[len(seen)-1]; last != "127.0.0.1" && last != "::1" {
		t.Errorf("tenant-less sub-request forwarded %q, want the derived loopback address", last)
	}
}

// TestCoordinatorTenantSlots: one tenant saturating its own cap gets
// 429 over_quota while another tenant is admitted; afterwards the
// per-tenant ledger is empty (no unbounded map growth from unique
// tenants).
func TestCoordinatorTenantSlots(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	gate := make(chan struct{})
	back := okBackend(t, &seen, &mu, gate)
	defer back.Close()
	reg := obs.NewRegistry()
	_, srv := startCoordinator(t, nil, fleet.Options{
		Backends:    []string{back.URL},
		Registry:    reg,
		QueueDepth:  4,
		TenantSlots: 1,
	})

	post := func(tenant string, reqs []api.RunRequest) (*http.Response, api.ErrorResponse) {
		body, _ := json.Marshal(api.BatchRequest{APIVersion: api.Version, Requests: reqs})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/runs", bytes.NewReader(body))
		req.Header.Set(api.TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var eresp api.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&eresp)
		resp.Body.Close()
		return resp, eresp
	}

	reqs := testPool(1)[:1]
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post("hog", reqs) // parks on the gate inside the backend
	}()
	// Wait for the hog's batch to reach the backend.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hog batch never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}

	resp, eresp := post("hog", reqs)
	if resp.StatusCode != http.StatusTooManyRequests || eresp.Code != api.CodeOverQuota {
		t.Fatalf("hog second batch: status %d code %q, want 429 over_quota", resp.StatusCode, eresp.Code)
	}
	if !eresp.Retryable {
		t.Error("over_quota not marked retryable")
	}
	if got := reg.Counter(fleet.MetricOverQuota).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", fleet.MetricOverQuota, got)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if r, e := post("polite", reqs); r.StatusCode != http.StatusOK {
			t.Errorf("polite tenant: status %d (%+v), want 200 despite the hog", r.StatusCode, e)
		}
	}()
	close(gate) // release the hog and the polite batch
	wg.Wait()
	<-done
}

// TestCoordinatorPropagatesCode: when every owner keeps answering a
// coded 429 past the retry budget, the coordinator's own 429 carries
// the backend's code through to the client.
func TestCoordinatorPropagatesCode(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{
			Error: "tenant over quota", Code: api.CodeOverQuota, Retryable: true, RetryAfterSeconds: 1,
		})
	}))
	defer busy.Close()
	_, srv := startCoordinator(t, nil, fleet.Options{
		Backends:            []string{busy.URL},
		BackendRetries:      1,
		BackendRetryBackoff: time.Millisecond,
	})

	body, _ := json.Marshal(api.BatchRequest{APIVersion: api.Version, Requests: testPool(1)[:1]})
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	var eresp api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Code != api.CodeOverQuota || !eresp.Retryable {
		t.Fatalf("propagated code=%q retryable=%v, want over_quota/true", eresp.Code, eresp.Retryable)
	}
}
