package fleet

import (
	"fmt"
	"testing"
)

// TestTenantLedgerNoLeak: acquire/release across a flood of unique
// tenants leaves the per-tenant ledger empty — entries are deleted at
// zero, so adversarial identities cannot grow coordinator memory.
func TestTenantLedgerNoLeak(t *testing.T) {
	c, err := New(Options{
		Backends:    []string{"http://127.0.0.1:1"},
		QueueDepth:  8,
		TenantSlots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if v := c.acquire(tenant); v != coordOK {
			t.Fatalf("tenant %d: verdict %v, want admitted", i, v)
		}
		c.release(tenant)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.tenantHeld) != 0 {
		t.Fatalf("ledger holds %d entries after all releases, want 0", len(c.tenantHeld))
	}
}

// TestTenantQuotaVerdicts: the cap binds per tenant, second tenants
// are unaffected, and a quota spanning the whole pool is no quota.
func TestTenantQuotaVerdicts(t *testing.T) {
	c, err := New(Options{
		Backends:    []string{"http://127.0.0.1:1"},
		QueueDepth:  4,
		TenantSlots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.acquire("a") != coordOK || c.acquire("a") != coordOK {
		t.Fatal("tenant a refused under quota")
	}
	if v := c.acquire("a"); v != coordOverQuota {
		t.Fatalf("tenant a at cap: verdict %v, want over_quota", v)
	}
	if v := c.acquire("b"); v != coordOK {
		t.Fatalf("tenant b blocked by a's quota: verdict %v", v)
	}
	if c.acquire("b") != coordOK {
		t.Fatal("tenant b refused under quota")
	}
	// Pool of 4 is now full: even a fresh tenant sees the global answer.
	if v := c.acquire("c"); v != coordQueueFull {
		t.Fatalf("full pool: verdict %v, want queue_full", v)
	}

	// TenantSlots == QueueDepth disables the per-tenant distinction.
	c2, _ := New(Options{Backends: []string{"http://127.0.0.1:1"}, QueueDepth: 2, TenantSlots: 2})
	if c2.acquire("x") != coordOK || c2.acquire("x") != coordOK {
		t.Fatal("vacuous quota refused admissions")
	}
	if v := c2.acquire("x"); v != coordQueueFull {
		t.Fatalf("quota == pool: verdict %v, want the global queue_full", v)
	}
}
