package experiment

import (
	"strings"
	"testing"
)

// Golden-output tests for the three CSV emitters: the files are
// consumed by plotting scripts and regression tracking, so their
// exact byte content is a contract — header order, six-decimal
// floats, and no empty numeric cells (the waymem row of fig5 once
// emitted an empty wp_size_kb, breaking numeric parsers).

func TestCSVFig4Golden(t *testing.T) {
	r := &Fig4Result{
		Rows: []Fig4Row{
			{Bench: "sha", WayMem: Pair{Energy: 0.715, ED: 0.962}, WayPlace: Pair{Energy: 0.472, ED: 0.93}},
			{Bench: "crc", WayMem: Pair{Energy: 0.7, ED: 0.95}, WayPlace: Pair{Energy: 0.5, ED: 0.94}},
		},
		Average: Fig4Row{Bench: "average", WayMem: Pair{Energy: 0.7075, ED: 0.956}, WayPlace: Pair{Energy: 0.486, ED: 0.935}},
	}
	var sb strings.Builder
	if err := CSVFig4(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := "benchmark,waymem_energy,wayplace_energy,waymem_ed,wayplace_ed\n" +
		"sha,0.715000,0.472000,0.962000,0.930000\n" +
		"crc,0.700000,0.500000,0.950000,0.940000\n" +
		"average,0.707500,0.486000,0.956000,0.935000\n"
	if sb.String() != want {
		t.Errorf("fig4 CSV mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestCSVFig5Golden(t *testing.T) {
	r := &Fig5Result{
		WayMem: Pair{Energy: 0.715, ED: 0.962},
		Points: []Fig5Point{
			{WPSizeKB: 16, Pair: Pair{Energy: 0.472, ED: 0.93}},
			{WPSizeKB: 1, Pair: Pair{Energy: 0.486, ED: 0.934}},
		},
	}
	var sb strings.Builder
	if err := CSVFig5(&sb, r); err != nil {
		t.Fatal(err)
	}
	// Regression: the waymem row must carry wp_size_kb 0, not an
	// empty cell.
	want := "scheme,wp_size_kb,energy,ed\n" +
		"waymem,0,0.715000,0.962000\n" +
		"wayplace,16,0.472000,0.930000\n" +
		"wayplace,1,0.486000,0.934000\n"
	if sb.String() != want {
		t.Errorf("fig5 CSV mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		for _, cell := range strings.Split(line, ",") {
			if cell == "" {
				t.Errorf("empty CSV cell in line %q", line)
			}
		}
	}
}

func TestCSVFig6Golden(t *testing.T) {
	cells := []Fig6Cell{
		{
			SizeKB: 8, Ways: 8,
			WayMem: Pair{Energy: 1.025, ED: 1.01},
			WP16:   Pair{Energy: 0.771, ED: 0.97},
			WP8:    Pair{Energy: 0.78, ED: 0.975},
		},
	}
	var sb strings.Builder
	if err := CSVFig6(&sb, cells); err != nil {
		t.Fatal(err)
	}
	want := "size_kb,ways,waymem_energy,wp16_energy,wp8_energy,waymem_ed,wp16_ed,wp8_ed\n" +
		"8,8,1.025000,0.771000,0.780000,1.010000,0.970000,0.975000\n"
	if sb.String() != want {
		t.Errorf("fig6 CSV mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}
