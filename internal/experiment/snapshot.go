package experiment

import (
	"runtime"
	"time"

	"wayplace/internal/api"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/obs"
)

// NewSnapshot assembles the machine-readable record of one evaluation
// run — the payload CLIs write as BENCH_wpbench.json — from the
// suite's engine totals (grid shape, run-cache behaviour) and, when a
// registry was installed with engine.WithObserver, the instrumented
// totals (simulated instructions, per-scheme energy, cell-latency
// quantiles). With a nil registry the snapshot still carries the grid
// shape, wall time and cache-hit ratio; the instrumented fields stay
// zero and are omitted from the JSON.
func NewSnapshot(command string, s *Suite, reg *obs.Registry, wall time.Duration, sections []obs.Section) *obs.Snapshot {
	eng := s.Engine()
	hits, misses := eng.Hits(), eng.Misses()
	snap := &obs.Snapshot{
		Schema:     obs.SnapshotSchema,
		APIVersion: api.Version,
		Command:    command,
		GoVersion:  runtime.Version(),
		UnixTime:   time.Now().Unix(),
		Grid: obs.Grid{
			Workloads:      len(s.Workloads),
			Cells:          hits + misses,
			Simulated:      misses,
			CacheHits:      hits,
			Groups:         eng.Groups(),
			CoalescedCells: eng.CoalescedCells(),
		},
		WallSeconds: wall.Seconds(),
		Sections:    sections,
	}
	if reg != nil {
		snap.Instructions = reg.Counter(engine.MetricInstructions).Value()
		h := reg.Histogram(engine.MetricCellNS)
		if h.Count() > 0 {
			snap.CellSecondsP50 = float64(h.Quantile(0.50)) / float64(time.Second)
			snap.CellSecondsP95 = float64(h.Quantile(0.95)) / float64(time.Second)
		}
		for _, scheme := range []energy.Scheme{energy.Baseline, energy.WayPlacement, energy.WayMemoization} {
			if v := reg.Gauge(engine.MetricEnergyPrefix + scheme.String()).Value(); v > 0 {
				if snap.EnergyByScheme == nil {
					snap.EnergyByScheme = make(map[string]float64, 3)
				}
				snap.EnergyByScheme[scheme.String()] = v
			}
		}
	}
	snap.Finalize()
	return snap
}
