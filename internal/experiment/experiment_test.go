package experiment

import (
	"context"
	"strings"
	"testing"

	"wayplace/internal/api"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/layout"
)

// subsetSuite prepares a fast, representative subset: a crypto kernel
// (large unrolled hot loop), an image kernel, a pointer-chaser and a
// tiny kernel.
func subsetSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuiteOf([]string{"sha", "susan_c", "patricia", "crc"})
	if err != nil {
		t.Fatalf("NewSuiteOf: %v", err)
	}
	return s
}

func TestPrepareProducesDistinctLayouts(t *testing.T) {
	w, err := Prepare("sha")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if w.Original.Size() != w.Placed.Size() {
		t.Errorf("layouts differ in size: %d vs %d", w.Original.Size(), w.Placed.Size())
	}
	// The placed binary concentrates profiled execution at the front.
	co := layout.Coverage(w.Original, w.Profile, 2<<10)
	cp := layout.Coverage(w.Placed, w.Profile, 2<<10)
	if cp <= co {
		t.Errorf("placed 2KB coverage %.3f not above original %.3f", cp, co)
	}
	if w.ProfCoverage16K < 0.99 {
		t.Errorf("16KB coverage after placement = %.3f, want ~1", w.ProfCoverage16K)
	}
}

func TestRunMemoisation(t *testing.T) {
	s := subsetSuite(t)
	w := s.Workloads[0]
	ctx := context.Background()
	spec := engine.RunSpec{Workload: w.Name, ICache: XScaleICache(), Scheme: energy.Baseline}
	a, err := s.RunSpec(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit {
		t.Error("first run reported as a cache hit")
	}
	b, err := s.RunSpec(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Error("identical runs were not memoised")
	}
	if !b.CacheHit {
		t.Error("second run not marked as a cache hit")
	}
	// The wire schema (api.RunRequest) must resolve to the same cell
	// and hit the same cache entry.
	res, err := s.RunRequests(ctx, []api.RunRequest{{
		Workload: w.Name,
		ICache:   api.GeometryOf(XScaleICache()),
		Scheme:   api.SchemeBaseline,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Stats != a.Stats {
		t.Error("api.RunRequest path bypassed the run cache")
	}
	if !res[0].CacheHit {
		t.Error("api.RunRequest path not marked as a cache hit")
	}
}

// TestFigure4Shape asserts the headline result of the paper's initial
// evaluation on the subset: way-placement saves roughly half the
// instruction-cache energy, way-memoization clearly less, and the
// way-placement ED product sits near the paper's 0.93 average.
func TestFigure4Shape(t *testing.T) {
	s := subsetSuite(t)
	r, err := s.Figure4(context.Background())
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	avg := r.Average
	if avg.WayPlace.Energy < 0.40 || avg.WayPlace.Energy > 0.55 {
		t.Errorf("way-placement energy = %.3f, want ~0.50 (paper: almost 50%% saving)", avg.WayPlace.Energy)
	}
	if avg.WayMem.Energy < 0.60 || avg.WayMem.Energy > 0.80 {
		t.Errorf("way-memoization energy = %.3f, want ~0.68 (paper: 32%% saving)", avg.WayMem.Energy)
	}
	if avg.WayPlace.Energy >= avg.WayMem.Energy-0.10 {
		t.Errorf("way-placement (%.3f) should beat way-memoization (%.3f) decisively",
			avg.WayPlace.Energy, avg.WayMem.Energy)
	}
	if avg.WayPlace.ED < 0.90 || avg.WayPlace.ED > 0.96 {
		t.Errorf("way-placement ED = %.3f, want ~0.93", avg.WayPlace.ED)
	}
	if avg.WayPlace.ED >= 1 || avg.WayMem.ED >= 1 {
		t.Error("ED products must be below 1 at the initial configuration")
	}
	for _, row := range r.Rows {
		if row.WayPlace.Energy >= row.WayMem.Energy {
			t.Errorf("%s: way-placement (%.3f) not below way-memoization (%.3f)",
				row.Bench, row.WayPlace.Energy, row.WayMem.Energy)
		}
	}
}

// TestFigure5Shape: shrinking the way-placement area degrades energy
// monotonically (weakly) and every size still beats way-memoization —
// section 6.2's conclusion.
func TestFigure5Shape(t *testing.T) {
	s := subsetSuite(t)
	r, err := s.Figure5(context.Background())
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Energy < r.Points[i-1].Energy-1e-6 {
			t.Errorf("energy improved when the WP area shrank: %dKB %.4f -> %dKB %.4f",
				r.Points[i-1].WPSizeKB, r.Points[i-1].Energy,
				r.Points[i].WPSizeKB, r.Points[i].Energy)
		}
	}
	for _, p := range r.Points {
		if p.Energy >= r.WayMem.Energy {
			t.Errorf("WP %dKB (%.3f) does not beat way-memoization (%.3f)",
				p.WPSizeKB, p.Energy, r.WayMem.Energy)
		}
		if p.ED >= r.WayMem.ED {
			t.Errorf("WP %dKB ED (%.3f) does not beat way-memoization (%.3f)",
				p.WPSizeKB, p.ED, r.WayMem.ED)
		}
	}
}

// TestFigure6Shape checks section 6.3's qualitative findings on a
// reduced sweep: way-placement helps at every configuration; the
// saving grows with associativity; at 8 ways way-memoization
// *increases* cache energy while way-placement still reduces it.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache sweep in -short mode")
	}
	s := subsetSuite(t)
	cells, err := s.Figure6(context.Background())
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	byKey := make(map[[2]int]Fig6Cell)
	for _, c := range cells {
		byKey[[2]int{c.SizeKB, c.Ways}] = c
		if c.WP16.Energy >= 1 || c.WP8.Energy >= 1 {
			t.Errorf("%dKB/%d-way: way-placement failed to save energy", c.SizeKB, c.Ways)
		}
		if c.WP16.ED >= 1 {
			t.Errorf("%dKB/%d-way: way-placement ED %.3f >= 1", c.SizeKB, c.Ways, c.WP16.ED)
		}
	}
	// Savings grow with associativity at fixed size.
	for _, kb := range Fig6Sizes {
		if !(byKey[[2]int{kb, 32}].WP16.Energy < byKey[[2]int{kb, 16}].WP16.Energy &&
			byKey[[2]int{kb, 16}].WP16.Energy < byKey[[2]int{kb, 8}].WP16.Energy) {
			t.Errorf("%dKB: savings do not grow with associativity", kb)
		}
	}
	// The paper's crossover: way-memoization above 1.0 at 8 ways.
	for _, kb := range Fig6Sizes {
		c := byKey[[2]int{kb, 8}]
		if c.WayMem.Energy < 1.0 {
			t.Errorf("%dKB/8-way: way-memoization %.3f should increase cache energy (paper: it does)",
				kb, c.WayMem.Energy)
		}
		if c.WP16.Energy > 0.85 {
			t.Errorf("%dKB/8-way: way-placement %.3f, paper reports ~0.82", kb, c.WP16.Energy)
		}
	}
}

func TestAblationsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	s := subsetSuite(t)

	rows, err := s.AblationLayout(context.Background())
	if err != nil {
		t.Fatalf("AblationLayout: %v", err)
	}
	if rows[0].Energy >= rows[1].Energy {
		t.Errorf("profile-guided layout (%.3f) not better than original (%.3f) under a tight area",
			rows[0].Energy, rows[1].Energy)
	}
	if rows[0].Energy >= rows[2].Energy {
		t.Errorf("profile-guided layout (%.3f) not better than random (%.3f)",
			rows[0].Energy, rows[2].Energy)
	}

	hint, err := s.AblationHint(context.Background())
	if err != nil {
		t.Fatalf("AblationHint: %v", err)
	}
	// The 1-bit hint must be nearly free: within half a point of the
	// oracle (section 4.1: "the performance and energy overheads of
	// using this bit are negligible").
	if hint[0].Energy-hint[1].Energy > 0.005 {
		t.Errorf("way hint costs %.4f over oracle, want < 0.005",
			hint[0].Energy-hint[1].Energy)
	}

	sl, err := s.AblationSameLine(context.Background())
	if err != nil {
		t.Fatalf("AblationSameLine: %v", err)
	}
	if sl[0].Energy >= sl[1].Energy {
		t.Errorf("same-line skip does not help: on %.3f vs off %.3f", sl[0].Energy, sl[1].Energy)
	}

	repl, err := s.AblationReplacement(context.Background())
	if err != nil {
		t.Fatalf("AblationReplacement: %v", err)
	}
	if d := repl[0].Energy - repl[1].Energy; d > 0.02 || d < -0.02 {
		t.Errorf("scheme too sensitive to replacement policy: RR %.3f vs LRU %.3f",
			repl[0].Energy, repl[1].Energy)
	}
}

func TestFormatters(t *testing.T) {
	s := subsetSuite(t)
	r4, err := s.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFig4(r4)
	for _, want := range []string{"Figure 4", "average", "sha", "patricia"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig4 output missing %q", want)
		}
	}
	if !strings.Contains(Table1(XScaleICache()), "32KB, 32-way, 32B block") {
		t.Error("Table1 missing cache line")
	}
}

func TestExtensionRAMTagShape(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweep in -short mode")
	}
	s := subsetSuite(t)
	rows, err := s.ExtensionRAMTag(context.Background())
	if err != nil {
		t.Fatalf("ExtensionRAMTag: %v", err)
	}
	byKey := map[string]Pair{}
	for _, r := range rows {
		byKey[r.Style.String()+"/"+string(rune('0'+r.Ways/10))+string(rune('0'+r.Ways%10))] = r.WayPlace
		if r.WayPlace.Energy >= 1 {
			t.Errorf("%d-way %v: way-placement failed to save energy", r.Ways, r.Style)
		}
	}
	// On a RAM-tag array the scheme eliminates data reads too, so at
	// equal associativity the relative saving must be far larger than
	// on the CAM array.
	ram8, cam8 := byKey["ram-tag/08"], byKey["cam-tag/08"]
	if ram8.Energy >= cam8.Energy-0.2 {
		t.Errorf("RAM-tag 8-way (%.3f) should save far more than CAM-tag 8-way (%.3f)",
			ram8.Energy, cam8.Energy)
	}
	// More RAM ways -> more parallel reads eliminated.
	if byKey["ram-tag/08"].Energy >= byKey["ram-tag/04"].Energy {
		t.Errorf("RAM-tag relative saving should grow with ways: 8-way %.3f vs 4-way %.3f",
			byKey["ram-tag/08"].Energy, byKey["ram-tag/04"].Energy)
	}
}

func TestExtensionAdaptiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweep in -short mode")
	}
	s := subsetSuite(t)
	rows, err := s.ExtensionAdaptive(context.Background())
	if err != nil {
		t.Fatalf("ExtensionAdaptive: %v", err)
	}
	for _, r := range rows {
		if r.Adaptive.Energy >= 1 {
			t.Errorf("%s: adaptive sizing failed to save energy (%.3f)", r.Bench, r.Adaptive.Energy)
		}
		// The adaptive OS must land within a whisker of the best
		// static area despite starting from a single page.
		if r.Adaptive.Energy > r.Static.Energy+0.03 {
			t.Errorf("%s: adaptive %.3f too far above static %.3f",
				r.Bench, r.Adaptive.Energy, r.Static.Energy)
		}
		if r.FinalSize == 0 || r.FinalSize%1024 != 0 {
			t.Errorf("%s: bad final area %d", r.Bench, r.FinalSize)
		}
	}
}

func TestCSVEmitters(t *testing.T) {
	s := subsetSuite(t)
	r4, err := s.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := CSVFig4(&buf, r4); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 4 benchmarks + average
	if len(lines) != 6 {
		t.Fatalf("fig4 csv has %d lines, want 6:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "benchmark,waymem_energy") {
		t.Errorf("bad header: %s", lines[0])
	}

	r5, err := s.Figure5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CSVFig5(&buf, r5); err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); n != 2+len(Fig5Sizes) {
		t.Errorf("fig5 csv has %d lines", n)
	}
}

func TestExtensionProfileTransferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweep in -short mode")
	}
	s := subsetSuite(t)
	rows, err := s.ExtensionProfileTransfer(context.Background())
	if err != nil {
		t.Fatalf("ExtensionProfileTransfer: %v", err)
	}
	for _, r := range rows {
		// Training on the small input must be nearly as good as the
		// (methodologically forbidden) oracle — the paper's
		// small-train/large-eval protocol depends on it.
		if gap := r.SmallProfile.Energy - r.OracleProfile.Energy; gap > 0.02 {
			t.Errorf("%s: small-input profile loses %.3f to the oracle", r.Bench, gap)
		}
	}
}

// TestFigure4FullSuite is the headline regression test: the complete
// 23-benchmark reproduction of the paper's initial evaluation must
// stay at the published shape.
func TestFigure4FullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	s, err := NewSuite()
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	if len(s.Workloads) != 23 {
		t.Fatalf("suite has %d workloads, want 23", len(s.Workloads))
	}
	r, err := s.Figure4(context.Background())
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	avg := r.Average
	// Paper: "energy savings approach 50%" for way-placement, 32% for
	// way-memoization, average ED product 0.93.
	if avg.WayPlace.Energy < 0.43 || avg.WayPlace.Energy > 0.53 {
		t.Errorf("suite WP energy = %.4f, want ~0.50", avg.WayPlace.Energy)
	}
	if avg.WayMem.Energy < 0.64 || avg.WayMem.Energy > 0.76 {
		t.Errorf("suite WM energy = %.4f, want ~0.68-0.72", avg.WayMem.Energy)
	}
	if avg.WayPlace.ED < 0.92 || avg.WayPlace.ED > 0.94 {
		t.Errorf("suite WP ED = %.4f, want ~0.93", avg.WayPlace.ED)
	}
	for _, row := range r.Rows {
		if row.WayPlace.Energy >= row.WayMem.Energy {
			t.Errorf("%s: WP (%.3f) not below WM (%.3f)",
				row.Bench, row.WayPlace.Energy, row.WayMem.Energy)
		}
		if row.WayPlace.ED >= 1 {
			t.Errorf("%s: WP ED %.3f >= 1", row.Bench, row.WayPlace.ED)
		}
	}
}
