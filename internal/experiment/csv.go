package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters, so the regenerated figures are machine-readable
// (plotting scripts, regression tracking). One file per figure,
// matching the text formatters' content.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// CSVFig4 writes figure 4 as CSV.
func CSVFig4(out io.Writer, r *Fig4Result) error {
	rows := [][]string{{"benchmark", "waymem_energy", "wayplace_energy", "waymem_ed", "wayplace_ed"}}
	for _, row := range append(r.Rows, r.Average) {
		rows = append(rows, []string{row.Bench,
			f(row.WayMem.Energy), f(row.WayPlace.Energy),
			f(row.WayMem.ED), f(row.WayPlace.ED)})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// CSVFig5 writes figure 5 as CSV.
func CSVFig5(out io.Writer, r *Fig5Result) error {
	rows := [][]string{{"scheme", "wp_size_kb", "energy", "ed"}}
	// Way-memoization has no WP area; emit 0 rather than an empty
	// cell so numeric column parsers never see a hole.
	rows = append(rows, []string{"waymem", "0", f(r.WayMem.Energy), f(r.WayMem.ED)})
	for _, p := range r.Points {
		rows = append(rows, []string{"wayplace", fmt.Sprint(p.WPSizeKB), f(p.Energy), f(p.ED)})
	}
	return writeAll(csv.NewWriter(out), rows)
}

// CSVFig6 writes figure 6 as CSV.
func CSVFig6(out io.Writer, cells []Fig6Cell) error {
	rows := [][]string{{"size_kb", "ways",
		"waymem_energy", "wp16_energy", "wp8_energy",
		"waymem_ed", "wp16_ed", "wp8_ed"}}
	for _, c := range cells {
		rows = append(rows, []string{
			fmt.Sprint(c.SizeKB), fmt.Sprint(c.Ways),
			f(c.WayMem.Energy), f(c.WP16.Energy), f(c.WP8.Energy),
			f(c.WayMem.ED), f(c.WP16.ED), f(c.WP8.ED)})
	}
	return writeAll(csv.NewWriter(out), rows)
}
