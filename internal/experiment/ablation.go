package experiment

import (
	"context"
	"fmt"
	"strings"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/sim"
)

// Ablations for the design choices DESIGN.md calls out. Each returns
// suite-average normalised (I-cache energy, ED) pairs on the
// 32KB/32-way cache. The layout and hint ablations use a deliberately
// tight 2KB way-placement area: with the paper's default 16KB area
// every benchmark's whole text is way-placed, so where code sits — and
// how often the fetch stream crosses the area boundary — only matters
// when the area is scarce.
//
// The hint, same-line and replacement ablations are ordinary engine
// cells (the switches ride on engine.RunSpec.OracleHint/NoSameLine and
// cache.Config.Policy), so they are memoised, coalesced into shared
// fetch passes, and runnable against a remote engine. Only the layout
// ablation's custom binaries (original, random, Pettis-Hansen) fall
// outside the engine's cell grid and execute through sim.RunContext
// directly; its profile-guided leg and every baseline still come from
// the engine's memoised run cache.

// AblationRow is one variant's result.
type AblationRow struct {
	Variant string
	Pair
}

// cellSpec reports whether (cfg, prog) is expressible as a standard
// engine cell for w — the scheme's standard binary under the suite's
// base machine, differing only in cell-level fields — and returns
// that cell. Routing such variants through the engine instead of a
// direct sim run makes them memoised, coalesced and remote-runnable.
func (s *Suite) cellSpec(w *Workload, cfg sim.Config, prog *obj.Program) (engine.RunSpec, bool) {
	if prog != w.Placed || cfg.Scheme != energy.WayPlacement {
		return engine.RunSpec{}, false
	}
	want := s.Base
	want.MaxInstrs = MaxInstrs
	norm := cfg
	norm.ICache, norm.Scheme, norm.Style = want.ICache, want.Scheme, want.Style
	norm.WPSize, norm.OracleHint, norm.NoSameLine = want.WPSize, want.OracleHint, want.NoSameLine
	if norm != want {
		return engine.RunSpec{}, false
	}
	return engine.RunSpec{
		Workload: w.Name, ICache: cfg.ICache, Scheme: cfg.Scheme, Style: cfg.Style,
		WPSize: cfg.WPSize, OracleHint: cfg.OracleHint, NoSameLine: cfg.NoSameLine,
	}, true
}

// runVariant executes one workload under a full custom config and
// binary, normalising against the memoised baseline. Variants that
// reduce to a standard cell (the placed binary on the base machine)
// run through the engine's memoised grid.
func (s *Suite) runVariant(ctx context.Context, w *Workload, cfg sim.Config, prog *obj.Program) (Pair, error) {
	baseRes, err := s.RunSpec(ctx, spec(w, cfg.ICache, energy.Baseline, 0))
	if err != nil {
		return Pair{}, err
	}
	base := baseRes.Stats
	var rs *sim.RunStats
	if cell, ok := s.cellSpec(w, cfg, prog); ok {
		res, err := s.RunSpec(ctx, cell)
		if err != nil {
			return Pair{}, err
		}
		rs = res.Stats
	} else if rs, err = sim.RunContext(ctx, prog, cfg); err != nil {
		return Pair{}, err
	}
	if rs.Checksum != base.Checksum {
		return Pair{}, fmt.Errorf("%s: variant changed the checksum: %#x vs %#x",
			w.Name, rs.Checksum, base.Checksum)
	}
	return pairOf(rs, base), nil
}

// averageVariant runs one variant across the suite (in parallel) and
// averages in workload order, so the result is deterministic.
func (s *Suite) averageVariant(ctx context.Context, name string, variant func(*Workload) (sim.Config, *obj.Program, error)) (AblationRow, error) {
	row := AblationRow{Variant: name}
	pairs := make([]Pair, len(s.Workloads))
	idx := make(map[string]int, len(s.Workloads))
	for i, w := range s.Workloads {
		idx[w.Name] = i
	}
	err := s.forEach(ctx, func(ctx context.Context, w *Workload) error {
		cfg, prog, err := variant(w)
		if err != nil {
			return err
		}
		p, err := s.runVariant(ctx, w, cfg, prog)
		if err != nil {
			return err
		}
		pairs[idx[w.Name]] = p
		return nil
	})
	if err != nil {
		return row, err
	}
	for _, p := range pairs {
		addPair(&row.Pair, p)
	}
	n := float64(len(s.Workloads))
	row.Energy /= n
	row.ED /= n
	return row, nil
}

func (s *Suite) wpConfig(wpSize uint32) sim.Config {
	cfg := s.Base
	cfg.ICache = XScaleICache()
	cfg.MaxInstrs = MaxInstrs
	cfg.Scheme = energy.WayPlacement
	cfg.WPSize = wpSize
	return cfg
}

// tightWPSize is the scarce way-placement area used by the layout and
// hint ablations.
const tightWPSize = 2 << 10

// flagVariant is one engine-expressible ablation variant: a cell
// template applied to every workload, normalised against a baseline
// cell on the same cache geometry.
type flagVariant struct {
	name     string
	template engine.RunSpec // Workload filled in per benchmark
}

func hintVariants() []flagVariant {
	wp := engine.RunSpec{ICache: XScaleICache(), Scheme: energy.WayPlacement, WPSize: tightWPSize}
	oracle := wp
	oracle.OracleHint = true
	return []flagVariant{
		{"1-bit way hint", wp},
		{"oracle hint", oracle},
	}
}

func sameLineVariants() []flagVariant {
	wp := engine.RunSpec{ICache: XScaleICache(), Scheme: energy.WayPlacement, WPSize: InitialWPSize}
	off := wp
	off.NoSameLine = true
	return []flagVariant{
		{"same-line skip on", wp},
		{"same-line skip off", off},
	}
}

func replacementVariants() []flagVariant {
	rr := engine.RunSpec{ICache: XScaleICache(), Scheme: energy.WayPlacement, WPSize: InitialWPSize}
	lru := rr
	lru.ICache.Policy = cache.LRU
	return []flagVariant{
		{"round-robin (XScale)", rr},
		{"true LRU", lru},
	}
}

// variantSpecs expands one variant into its grid: a baseline cell and
// a variant cell per workload, stride 2.
func (s *Suite) variantSpecs(v flagVariant) []engine.RunSpec {
	specs := make([]engine.RunSpec, 0, 2*len(s.Workloads))
	for _, w := range s.Workloads {
		cell := v.template
		cell.Workload = w.Name
		specs = append(specs, spec(w, v.template.ICache, energy.Baseline, 0), cell)
	}
	return specs
}

// averageGrid runs one engine-expressible variant across the suite as
// a single batch and averages the normalised pairs in workload order.
func (s *Suite) averageGrid(ctx context.Context, v flagVariant) (AblationRow, error) {
	row := AblationRow{Variant: v.name}
	res, err := s.RunBatch(ctx, s.variantSpecs(v))
	if err != nil {
		return row, err
	}
	for i, w := range s.Workloads {
		base, got := res[2*i].Stats, res[2*i+1].Stats
		if got.Checksum != base.Checksum {
			return row, fmt.Errorf("%s: variant changed the checksum: %#x vs %#x",
				w.Name, got.Checksum, base.Checksum)
		}
		addPair(&row.Pair, pairOf(got, base))
	}
	n := float64(len(s.Workloads))
	row.Energy /= n
	row.ED /= n
	return row, nil
}

// flagAblationRows runs a set of engine-expressible variants in order.
func (s *Suite) flagAblationRows(ctx context.Context, variants []flagVariant) ([]AblationRow, error) {
	rows := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		row, err := s.averageGrid(ctx, v)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationLayout quantifies how much of the saving is the compiler
// pass itself: the way-placement hardware running over the profile-
// guided layout, the original layout, a random (constraint-
// respecting) permutation, and a classical Pettis/Hansen-style
// affinity layout (which optimises adjacency, not front-loading).
func (s *Suite) AblationLayout(ctx context.Context) ([]AblationRow, error) {
	variants := []struct {
		name string
		prog func(*Workload) (*obj.Program, error)
	}{
		{"profile-guided layout", func(w *Workload) (*obj.Program, error) { return w.Placed, nil }},
		{"original layout", func(w *Workload) (*obj.Program, error) { return w.Original, nil }},
		{"random layout", func(w *Workload) (*obj.Program, error) {
			return layout.LinkPermuted(w.Unit, 0xabcdef, TextBase)
		}},
		{"Pettis-Hansen affinity", func(w *Workload) (*obj.Program, error) {
			return layout.LinkPettisHansen(w.Unit, w.Profile, TextBase)
		}},
	}
	var rows []AblationRow
	for _, v := range variants {
		v := v
		row, err := s.averageVariant(ctx, v.name, func(w *Workload) (sim.Config, *obj.Program, error) {
			prog, err := v.prog(w)
			if err != nil {
				return sim.Config{}, nil, err
			}
			return s.wpConfig(tightWPSize), prog, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationHint compares the 1-bit way hint against oracle knowledge
// of the way-placement bit — the cost of predicting instead of
// serialising on the I-TLB.
func (s *Suite) AblationHint(ctx context.Context) ([]AblationRow, error) {
	return s.flagAblationRows(ctx, hintVariants())
}

// AblationSameLine measures the contribution of the same-line
// tag-check skip (section 4.2's "further modification").
func (s *Suite) AblationSameLine(ctx context.Context) ([]AblationRow, error) {
	return s.flagAblationRows(ctx, sameLineVariants())
}

// AblationReplacement checks that the scheme is insensitive to the
// replacement policy (explicit placement bypasses it for hot lines).
func (s *Suite) AblationReplacement(ctx context.Context) ([]AblationRow, error) {
	return s.flagAblationRows(ctx, replacementVariants())
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s (suite average, 32KB/32-way)\n", title)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-24s I$ energy %.1f%%  ED %.3f\n", r.Variant, 100*r.Energy, r.ED)
	}
	return sb.String()
}
