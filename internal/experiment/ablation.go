package experiment

import (
	"context"
	"fmt"
	"strings"

	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/sim"
)

// Ablations for the design choices DESIGN.md calls out. Each returns
// suite-average normalised (I-cache energy, ED) pairs on the
// 32KB/32-way cache. The layout and hint ablations use a deliberately
// tight 2KB way-placement area: with the paper's default 16KB area
// every benchmark's whole text is way-placed, so where code sits — and
// how often the fetch stream crosses the area boundary — only matters
// when the area is scarce.
//
// Variant runs use custom binaries or ablation switches outside the
// engine's cell grid, so they execute through sim.RunContext directly;
// their baselines still come from the engine's memoised run cache.

// AblationRow is one variant's result.
type AblationRow struct {
	Variant string
	Pair
}

// runVariant executes one workload under a full custom config and
// binary, normalising against the memoised baseline.
func (s *Suite) runVariant(ctx context.Context, w *Workload, cfg sim.Config, prog *obj.Program) (Pair, error) {
	baseRes, err := s.RunSpec(ctx, spec(w, cfg.ICache, energy.Baseline, 0))
	if err != nil {
		return Pair{}, err
	}
	base := baseRes.Stats
	rs, err := sim.RunContext(ctx, prog, cfg)
	if err != nil {
		return Pair{}, err
	}
	if rs.Checksum != base.Checksum {
		return Pair{}, fmt.Errorf("%s: variant changed the checksum: %#x vs %#x",
			w.Name, rs.Checksum, base.Checksum)
	}
	return pairOf(rs, base), nil
}

// averageVariant runs one variant across the suite (in parallel) and
// averages in workload order, so the result is deterministic.
func (s *Suite) averageVariant(ctx context.Context, name string, variant func(*Workload) (sim.Config, *obj.Program, error)) (AblationRow, error) {
	row := AblationRow{Variant: name}
	pairs := make([]Pair, len(s.Workloads))
	idx := make(map[string]int, len(s.Workloads))
	for i, w := range s.Workloads {
		idx[w.Name] = i
	}
	err := s.forEach(ctx, func(ctx context.Context, w *Workload) error {
		cfg, prog, err := variant(w)
		if err != nil {
			return err
		}
		p, err := s.runVariant(ctx, w, cfg, prog)
		if err != nil {
			return err
		}
		pairs[idx[w.Name]] = p
		return nil
	})
	if err != nil {
		return row, err
	}
	for _, p := range pairs {
		addPair(&row.Pair, p)
	}
	n := float64(len(s.Workloads))
	row.Energy /= n
	row.ED /= n
	return row, nil
}

func (s *Suite) wpConfig(wpSize uint32) sim.Config {
	cfg := s.Base
	cfg.ICache = XScaleICache()
	cfg.MaxInstrs = MaxInstrs
	cfg.Scheme = energy.WayPlacement
	cfg.WPSize = wpSize
	return cfg
}

// tightWPSize is the scarce way-placement area used by the layout and
// hint ablations.
const tightWPSize = 2 << 10

// AblationLayout quantifies how much of the saving is the compiler
// pass itself: the way-placement hardware running over the profile-
// guided layout, the original layout, a random (constraint-
// respecting) permutation, and a classical Pettis/Hansen-style
// affinity layout (which optimises adjacency, not front-loading).
func (s *Suite) AblationLayout(ctx context.Context) ([]AblationRow, error) {
	variants := []struct {
		name string
		prog func(*Workload) (*obj.Program, error)
	}{
		{"profile-guided layout", func(w *Workload) (*obj.Program, error) { return w.Placed, nil }},
		{"original layout", func(w *Workload) (*obj.Program, error) { return w.Original, nil }},
		{"random layout", func(w *Workload) (*obj.Program, error) {
			return layout.LinkPermuted(w.Unit, 0xabcdef, TextBase)
		}},
		{"Pettis-Hansen affinity", func(w *Workload) (*obj.Program, error) {
			return layout.LinkPettisHansen(w.Unit, w.Profile, TextBase)
		}},
	}
	var rows []AblationRow
	for _, v := range variants {
		v := v
		row, err := s.averageVariant(ctx, v.name, func(w *Workload) (sim.Config, *obj.Program, error) {
			prog, err := v.prog(w)
			if err != nil {
				return sim.Config{}, nil, err
			}
			return s.wpConfig(tightWPSize), prog, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationHint compares the 1-bit way hint against oracle knowledge
// of the way-placement bit — the cost of predicting instead of
// serialising on the I-TLB.
func (s *Suite) AblationHint(ctx context.Context) ([]AblationRow, error) {
	var rows []AblationRow
	for _, oracle := range []bool{false, true} {
		name := "1-bit way hint"
		if oracle {
			name = "oracle hint"
		}
		oracle := oracle
		row, err := s.averageVariant(ctx, name, func(w *Workload) (sim.Config, *obj.Program, error) {
			cfg := s.wpConfig(tightWPSize)
			cfg.OracleHint = oracle
			return cfg, w.Placed, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationSameLine measures the contribution of the same-line
// tag-check skip (section 4.2's "further modification").
func (s *Suite) AblationSameLine(ctx context.Context) ([]AblationRow, error) {
	var rows []AblationRow
	for _, off := range []bool{false, true} {
		name := "same-line skip on"
		if off {
			name = "same-line skip off"
		}
		off := off
		row, err := s.averageVariant(ctx, name, func(w *Workload) (sim.Config, *obj.Program, error) {
			cfg := s.wpConfig(InitialWPSize)
			cfg.NoSameLine = off
			return cfg, w.Placed, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationReplacement checks that the scheme is insensitive to the
// replacement policy (explicit placement bypasses it for hot lines).
func (s *Suite) AblationReplacement(ctx context.Context) ([]AblationRow, error) {
	var rows []AblationRow
	for _, policy := range []struct {
		name string
		p    cache.Policy
	}{{"round-robin (XScale)", cache.RoundRobin}, {"true LRU", cache.LRU}} {
		policy := policy
		row, err := s.averageVariant(ctx, policy.name, func(w *Workload) (sim.Config, *obj.Program, error) {
			cfg := s.wpConfig(InitialWPSize)
			cfg.ICache.Policy = policy.p
			return cfg, w.Placed, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s (suite average, 32KB/32-way)\n", title)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-24s I$ energy %.1f%%  ED %.3f\n", r.Variant, 100*r.Energy, r.ED)
	}
	return sb.String()
}
