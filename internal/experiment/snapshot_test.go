package experiment

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"wayplace/internal/energy"
	"wayplace/internal/engine"
	"wayplace/internal/obs"
)

// TestNewSnapshot drives a small observed suite through a grid and
// checks the snapshot records the grid shape, cache behaviour and
// instrumented totals, and round-trips through the BENCH file format.
func TestNewSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewSuiteOf([]string{"sha", "crc"}, engine.WithObserver(reg))
	if err != nil {
		t.Fatalf("NewSuiteOf: %v", err)
	}
	icfg := XScaleICache()
	specs := []engine.RunSpec{
		{Workload: "sha", ICache: icfg, Scheme: energy.Baseline},
		{Workload: "sha", ICache: icfg, Scheme: energy.WayPlacement, WPSize: InitialWPSize},
		{Workload: "crc", ICache: icfg, Scheme: energy.Baseline},
		{Workload: "sha", ICache: icfg, Scheme: energy.Baseline}, // duplicate: cache hit
	}
	if _, err := s.RunBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}

	sections := []obs.Section{{Name: "grid", Seconds: 1.5}}
	snap := NewSnapshot("wpbench-test", s, reg, 2*time.Second, sections)

	if snap.Schema != obs.SnapshotSchema {
		t.Errorf("schema %q", snap.Schema)
	}
	if snap.Grid.Workloads != 2 {
		t.Errorf("workloads = %d, want 2", snap.Grid.Workloads)
	}
	if snap.Grid.Simulated != 3 || snap.Grid.CacheHits != 1 || snap.Grid.Cells != 4 {
		t.Errorf("grid = %+v, want 3 simulated / 1 hit / 4 cells", snap.Grid)
	}
	if snap.CacheHitRatio != 0.25 {
		t.Errorf("cache-hit ratio = %v, want 0.25", snap.CacheHitRatio)
	}
	if snap.CellsPerSecond != 2 {
		t.Errorf("cells/sec = %v, want 2", snap.CellsPerSecond)
	}
	if snap.Instructions == 0 || snap.InstrsPerSec == 0 {
		t.Error("instrumented instruction totals missing")
	}
	if snap.EnergyByScheme["baseline"] <= 0 || snap.EnergyByScheme["wayplace"] <= 0 {
		t.Errorf("per-scheme energy totals missing: %v", snap.EnergyByScheme)
	}
	if snap.CellSecondsP50 <= 0 || snap.CellSecondsP95 < snap.CellSecondsP50 {
		t.Errorf("cell latency quantiles inconsistent: p50=%v p95=%v",
			snap.CellSecondsP50, snap.CellSecondsP95)
	}
	if len(snap.Sections) != 1 || snap.Sections[0].Name != "grid" {
		t.Errorf("sections = %+v", snap.Sections)
	}

	path := filepath.Join(t.TempDir(), "BENCH_wpbench.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Grid != snap.Grid {
		t.Errorf("grid did not round-trip: %+v vs %+v", back.Grid, snap.Grid)
	}
}

// TestNewSnapshotNilRegistry: the uninstrumented path still records
// grid shape and cache behaviour.
func TestNewSnapshotNilRegistry(t *testing.T) {
	s, err := NewSuiteOf([]string{"crc"})
	if err != nil {
		t.Fatalf("NewSuiteOf: %v", err)
	}
	if _, err := s.RunBatch(context.Background(), []engine.RunSpec{
		{Workload: "crc", ICache: XScaleICache(), Scheme: energy.Baseline},
	}); err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshot("wpbench-test", s, nil, time.Second, nil)
	if snap.Grid.Simulated != 1 || snap.Grid.Cells != 1 {
		t.Errorf("grid = %+v", snap.Grid)
	}
	if snap.Instructions != 0 || snap.EnergyByScheme != nil {
		t.Error("nil registry produced instrumented fields")
	}
}
