// Package experiment reproduces the paper's evaluation: it prepares
// every benchmark exactly as section 5 describes (profile on the
// small input, relink with the way-placement layout, evaluate on the
// large input) and regenerates each figure of section 6.
//
// Binary selection per scheme follows the paper: the baseline and the
// way-memoization machines run the unmodified (original-layout)
// binary — way-memoization is a pure-hardware scheme — while the
// way-placement machine runs the relaid binary.
//
// All simulation cells are scheduled through internal/engine: a
// worker-pool scheduler with a memoised run cache, so the baseline
// cells shared between figures are simulated exactly once and grids
// execute in parallel. Aggregation happens in workload order after
// the grid completes, so every figure is byte-identical regardless of
// the worker count.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"wayplace/internal/api"
	"wayplace/internal/bench"
	"wayplace/internal/cache"
	"wayplace/internal/engine"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
	"wayplace/internal/sim"
)

// TextBase is where program images are linked. It is aligned to the
// largest cache and page size in any experiment, so a way-placement
// area starting at the base maps cleanly onto the cache.
const TextBase = 0x0001_0000

// MaxInstrs bounds any single evaluation run.
const MaxInstrs = 100_000_000

// Workload is one prepared benchmark.
type Workload struct {
	Name     string
	Unit     *obj.Unit // large-input object unit (for relayout ablations)
	Profile  *profile.Profile
	Original *obj.Program // original layout (baseline & way-memoization)
	Placed   *obj.Program // way-placement layout
	// ProfCoverage16K is the profiled fraction of dynamic
	// instructions inside the first 16KB after relayout.
	ProfCoverage16K float64
}

// Prepare builds, profiles and links one benchmark.
func Prepare(name string) (*Workload, error) {
	bm, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	smallUnit, err := bm.Build(bench.Small)
	if err != nil {
		return nil, fmt.Errorf("%s: build small: %w", name, err)
	}
	largeUnit, err := bm.Build(bench.Large)
	if err != nil {
		return nil, fmt.Errorf("%s: build large: %w", name, err)
	}
	smallProg, err := layout.LinkOriginal(smallUnit, TextBase)
	if err != nil {
		return nil, fmt.Errorf("%s: link small: %w", name, err)
	}
	prof, _, err := sim.ProfileRun(smallProg, MaxInstrs)
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", name, err)
	}
	orig, err := layout.LinkOriginal(largeUnit, TextBase)
	if err != nil {
		return nil, fmt.Errorf("%s: link original: %w", name, err)
	}
	placed, err := layout.Link(largeUnit, prof, TextBase)
	if err != nil {
		return nil, fmt.Errorf("%s: way-placement link: %w", name, err)
	}
	return &Workload{
		Name:            name,
		Unit:            largeUnit,
		Profile:         prof,
		Original:        orig,
		Placed:          placed,
		ProfCoverage16K: layout.Coverage(placed, prof, 16<<10),
	}, nil
}

// Runner executes a grid of cells and returns results in input order.
// engine.Engine is the local implementation; serve.RemoteRunner runs
// the same grids against a wpserved instance, so figure sweeps can be
// shared, batched and cached across processes.
type Runner interface {
	Run(ctx context.Context, specs []engine.RunSpec, opts ...engine.Option) ([]*engine.Result, error)
}

// Suite is the prepared benchmark suite wired onto the concurrent
// experiment engine.
type Suite struct {
	Workloads []*Workload
	Base      sim.Config // machine template; I-cache geometry varies

	eng    *engine.Engine
	runner Runner
	mu     sync.Mutex
	byName map[string]*Workload
}

// NewSuite prepares every benchmark (in parallel).
func NewSuite(opts ...engine.Option) (*Suite, error) {
	return NewSuiteOf(bench.Names(), opts...)
}

// NewSuiteOf prepares a subset of benchmarks by name. Engine options
// (engine.WithWorkers, engine.WithProgress, ...) become the defaults
// for every grid the suite runs.
func NewSuiteOf(names []string, opts ...engine.Option) (*Suite, error) {
	s := &Suite{Base: sim.Default(), byName: make(map[string]*Workload, len(names))}
	base := s.Base
	base.MaxInstrs = MaxInstrs
	s.eng = engine.New(s.provide, append([]engine.Option{engine.WithBaseConfig(base)}, opts...)...)
	if err := s.eng.Prepare(context.Background(), names); err != nil {
		return nil, err
	}
	s.Workloads = make([]*Workload, len(names))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, name := range names {
		s.Workloads[i] = s.byName[name]
	}
	return s, nil
}

// provide is the engine's workload provider: the full preparation
// pipeline (build, profile, relink), memoised per name by the engine
// so concurrent cells never duplicate profile/layout work.
func (s *Suite) provide(ctx context.Context, name string) (*engine.Workload, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w, err := Prepare(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.byName[name] = w
	s.mu.Unlock()
	return &engine.Workload{Name: name, Original: w.Original, Placed: w.Placed}, nil
}

// Engine exposes the underlying scheduler (run-cache counters,
// ad hoc grids).
func (s *Suite) Engine() *engine.Engine { return s.eng }

// SetRunner routes standard grids (those run without per-batch engine
// options) through an alternative executor — typically a
// serve.RemoteRunner pointing at a wpserved instance, whose shared
// engine keeps its run cache warm across client processes. Batches
// that carry per-batch options (bespoke base configurations, extra
// callbacks) cannot be expressed remotely and keep running on the
// local engine. A nil runner restores fully local execution.
func (s *Suite) SetRunner(r Runner) { s.runner = r }

// RunSpec executes one simulation cell, returning the result with
// wall time and cache-hit provenance.
func (s *Suite) RunSpec(ctx context.Context, spec engine.RunSpec) (*engine.Result, error) {
	res, err := s.RunBatch(ctx, []engine.RunSpec{spec})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RunBatch executes a grid of cells in parallel, with results in
// input order: on the installed Runner when one is set and the batch
// carries no per-batch options, on the local engine otherwise.
func (s *Suite) RunBatch(ctx context.Context, specs []engine.RunSpec, opts ...engine.Option) ([]*engine.Result, error) {
	if s.runner != nil && len(opts) == 0 {
		return s.runner.Run(ctx, specs)
	}
	return s.eng.Run(ctx, specs, opts...)
}

// RunRequests executes a grid described in the wire schema
// (api.RunRequest) — the form the CLIs parse flags into and wpserved
// accepts over HTTP — after field-level validation.
func (s *Suite) RunRequests(ctx context.Context, reqs []api.RunRequest, opts ...engine.Option) ([]*engine.Result, error) {
	specs, err := api.ToSpecs(reqs)
	if err != nil {
		return nil, err
	}
	return s.RunBatch(ctx, specs, opts...)
}

// WarmupSpecs returns the union of every standard grid the suite's
// figures, extensions and flag ablations submit: the whole evaluation
// expressed as one batch. Submitting it up front lets the engine's
// single-pass grouping coalesce all cells that share a workload and
// fetch stream — roughly two producer passes per workload per cache
// geometry instead of one per cell — after which every individual
// section is a pure run-cache hit. The engine deduplicates cells
// repeated across grids, so the overlap between figures is free.
func (s *Suite) WarmupSpecs() []engine.RunSpec {
	var specs []engine.RunSpec
	specs = append(specs, s.fig4Specs()...)
	specs = append(specs, s.fig5Specs()...)
	specs = append(specs, s.fig6Specs()...)
	specs = append(specs, s.ramTagSpecs()...)
	specs = append(specs, s.adaptiveSpecs()...)
	for _, v := range hintVariants() {
		specs = append(specs, s.variantSpecs(v)...)
	}
	for _, v := range sameLineVariants() {
		specs = append(specs, s.variantSpecs(v)...)
	}
	for _, v := range replacementVariants() {
		specs = append(specs, s.variantSpecs(v)...)
	}
	return specs
}

// forEach runs fn over all workloads in parallel (for ablation and
// extension variants that fall outside the engine's cell grid),
// stopping new work once ctx is cancelled and collecting errors.
func (s *Suite) forEach(ctx context.Context, fn func(context.Context, *Workload) error) error {
	errs := make([]error, len(s.Workloads))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workerCount())
	for i, w := range s.Workloads {
		wg.Add(1)
		go func(i int, w *Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(ctx, w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func workerCount() int { return runtime.GOMAXPROCS(0) }

// XScaleICache is the initial evaluation's I-cache: 32KB, 32-way.
func XScaleICache() cache.Config {
	return cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32, Policy: cache.RoundRobin}
}

// InitialWPSize is the initial evaluation's way-placement area: 16KB.
const InitialWPSize = 16 << 10
