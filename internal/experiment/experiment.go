// Package experiment reproduces the paper's evaluation: it prepares
// every benchmark exactly as section 5 describes (profile on the
// small input, relink with the way-placement layout, evaluate on the
// large input) and regenerates each figure of section 6.
//
// Binary selection per scheme follows the paper: the baseline and the
// way-memoization machines run the unmodified (original-layout)
// binary — way-memoization is a pure-hardware scheme — while the
// way-placement machine runs the relaid binary.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"wayplace/internal/bench"
	"wayplace/internal/cache"
	"wayplace/internal/energy"
	"wayplace/internal/layout"
	"wayplace/internal/obj"
	"wayplace/internal/profile"
	"wayplace/internal/sim"
)

// TextBase is where program images are linked. It is aligned to the
// largest cache and page size in any experiment, so a way-placement
// area starting at the base maps cleanly onto the cache.
const TextBase = 0x0001_0000

// MaxInstrs bounds any single evaluation run.
const MaxInstrs = 100_000_000

// Workload is one prepared benchmark.
type Workload struct {
	Name     string
	Unit     *obj.Unit // large-input object unit (for relayout ablations)
	Profile  *profile.Profile
	Original *obj.Program // original layout (baseline & way-memoization)
	Placed   *obj.Program // way-placement layout
	// ProfCoverage16K is the profiled fraction of dynamic
	// instructions inside the first 16KB after relayout.
	ProfCoverage16K float64
}

// Prepare builds, profiles and links one benchmark.
func Prepare(name string) (*Workload, error) {
	bm, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	smallUnit, err := bm.Build(bench.Small)
	if err != nil {
		return nil, fmt.Errorf("%s: build small: %w", name, err)
	}
	largeUnit, err := bm.Build(bench.Large)
	if err != nil {
		return nil, fmt.Errorf("%s: build large: %w", name, err)
	}
	smallProg, err := layout.LinkOriginal(smallUnit, TextBase)
	if err != nil {
		return nil, fmt.Errorf("%s: link small: %w", name, err)
	}
	prof, _, err := sim.ProfileRun(smallProg, MaxInstrs)
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", name, err)
	}
	orig, err := layout.LinkOriginal(largeUnit, TextBase)
	if err != nil {
		return nil, fmt.Errorf("%s: link original: %w", name, err)
	}
	placed, err := layout.Link(largeUnit, prof, TextBase)
	if err != nil {
		return nil, fmt.Errorf("%s: way-placement link: %w", name, err)
	}
	return &Workload{
		Name:            name,
		Unit:            largeUnit,
		Profile:         prof,
		Original:        orig,
		Placed:          placed,
		ProfCoverage16K: layout.Coverage(placed, prof, 16<<10),
	}, nil
}

// Suite is the prepared benchmark suite plus a run cache.
type Suite struct {
	Workloads []*Workload
	Base      sim.Config // machine template; I-cache geometry varies

	mu   sync.Mutex
	memo map[runKey]*sim.RunStats
}

type runKey struct {
	bench  string
	icfg   cache.Config
	scheme energy.Scheme
	wp     uint32
}

// NewSuite prepares every benchmark (in parallel).
func NewSuite() (*Suite, error) {
	return NewSuiteOf(bench.Names())
}

// NewSuiteOf prepares a subset of benchmarks by name.
func NewSuiteOf(names []string) (*Suite, error) {
	s := &Suite{Base: sim.Default(), memo: make(map[runKey]*sim.RunStats)}
	s.Workloads = make([]*Workload, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s.Workloads[i], errs[i] = Prepare(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Run simulates one workload under one machine configuration,
// memoising results (many figures share the same baseline runs).
func (s *Suite) Run(w *Workload, icfg cache.Config, scheme energy.Scheme, wp uint32) (*sim.RunStats, error) {
	key := runKey{w.Name, icfg, scheme, wp}
	s.mu.Lock()
	if rs, ok := s.memo[key]; ok {
		s.mu.Unlock()
		return rs, nil
	}
	s.mu.Unlock()

	cfg := s.Base
	cfg.ICache = icfg
	cfg.MaxInstrs = MaxInstrs
	cfg.Scheme = scheme
	cfg.WPSize = wp
	prog := w.Original
	if scheme == energy.WayPlacement {
		prog = w.Placed
	}
	rs, err := sim.Run(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%v: %w", w.Name, scheme, err)
	}

	s.mu.Lock()
	s.memo[key] = rs
	s.mu.Unlock()
	return rs, nil
}

// forEach runs fn over all workloads in parallel, collecting errors.
func (s *Suite) forEach(fn func(*Workload) error) error {
	errs := make([]error, len(s.Workloads))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, w := range s.Workloads {
		wg.Add(1)
		go func(i int, w *Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// XScaleICache is the initial evaluation's I-cache: 32KB, 32-way.
func XScaleICache() cache.Config {
	return cache.Config{SizeBytes: 32 << 10, Ways: 32, LineBytes: 32, Policy: cache.RoundRobin}
}

// InitialWPSize is the initial evaluation's way-placement area: 16KB.
const InitialWPSize = 16 << 10
